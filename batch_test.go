package mrpc

import (
	"testing"
	"time"
)

// asyncBatchConfig returns an exactly-once configuration with asynchronous
// call semantics and the given flush size — the shape every batching test
// wants, since only CallAsync can park several calls in one pipeline.
func asyncBatchConfig(flushSize int) Config {
	cfg := ExactlyOnce()
	cfg.Call = CallAsynchronous
	cfg.FlushSize = flushSize
	return cfg
}

// TestBatchFlushSizeOne: FlushSize 1 disables coalescing entirely — even
// inside a pipeline section every message goes out as itself, and no
// OpBatch frame ever reaches the network.
func TestBatchFlushSizeOne(t *testing.T) {
	sys := NewSystem(SystemOptions{})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	cfg := asyncBatchConfig(1)
	if _, err := sys.AddServer(1, cfg, func() App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	client.PipelineBegin()
	var ids []CallID
	for i := 0; i < 4; i++ {
		id, err := client.CallAsync(echo, []byte{byte('a' + i)}, sys.Group(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	client.PipelineEnd()
	for i, id := range ids {
		reply, status, err := client.Collect(id)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
		if want := "echo:" + string(byte('a'+i)); string(reply) != want {
			t.Fatalf("call %d: reply = %q, want %q", i, reply, want)
		}
	}
	if got := sys.Net().Stats().Batches; got != 0 {
		t.Fatalf("FlushSize 1 produced %d batch frames, want 0", got)
	}
}

// TestBatchExactlyFull: a pipeline that parks exactly FlushSize calls
// flushes them as one full batch frame the moment the lane fills — before
// PipelineEnd.
func TestBatchExactlyFull(t *testing.T) {
	sys := NewSystem(SystemOptions{})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	cfg := asyncBatchConfig(3)
	if _, err := sys.AddServer(1, cfg, func() App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	client.PipelineBegin()
	var ids []CallID
	for i := 0; i < 3; i++ {
		id, err := client.CallAsync(echo, []byte{byte('a' + i)}, sys.Group(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The lane reached the cap on the third call: the batch must already
	// be on the wire even though the pipeline section is still open.
	sys.Quiesce()
	if got := sys.Net().Stats().Batches; got < 1 {
		t.Fatalf("full lane did not flush inside the pipeline: Batches = %d, want >= 1", got)
	}
	client.PipelineEnd()
	for i, id := range ids {
		_, status, err := client.Collect(id)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
	}
}

// TestBatchOverflow: parking more calls than FlushSize splits the stream
// into full frames plus a remainder; nothing is lost and every call
// completes.
func TestBatchOverflow(t *testing.T) {
	sys := NewSystem(SystemOptions{})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	cfg := asyncBatchConfig(2)
	if _, err := sys.AddServer(1, cfg, func() App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const calls = 5 // 2 full frames of 2, then a remainder single
	client.PipelineBegin()
	var ids []CallID
	for i := 0; i < calls; i++ {
		id, err := client.CallAsync(echo, []byte{byte('a' + i)}, sys.Group(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	client.PipelineEnd()
	for i, id := range ids {
		reply, status, err := client.Collect(id)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
		if want := "echo:" + string(byte('a'+i)); string(reply) != want {
			t.Fatalf("call %d: reply = %q, want %q", i, reply, want)
		}
	}
	if got := sys.Net().Stats().Batches; got < 2 {
		t.Fatalf("overflowing 5 calls past FlushSize 2 produced %d batch frames, want >= 2", got)
	}
}

// TestBatchInterleavedWaitNoWait: one batch frame carries both a no-wait
// (CallAsync) call and a waiting (Call) call. The blocking Call issued
// inside the pipeline fills the lane to the cap, which flushes the frame
// and lets the Call's own reply come back — waiting and pipelined calls
// compose in a single frame.
func TestBatchInterleavedWaitNoWait(t *testing.T) {
	sys := NewSystem(SystemOptions{})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	cfg := asyncBatchConfig(2)
	if _, err := sys.AddServer(1, cfg, func() App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	client.PipelineBegin()
	id, err := client.CallAsync(echo, []byte("nowait"), sys.Group(1))
	if err != nil {
		t.Fatal(err)
	}
	// The second call fills the FlushSize-2 lane: both requests leave in
	// one frame, so this blocking Call can complete inside the pipeline.
	reply, status, err := client.Call(echo, []byte("wait"), sys.Group(1))
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusOK || string(reply) != "echo:wait" {
		t.Fatalf("waiting call: status = %v reply = %q", status, reply)
	}
	client.PipelineEnd()
	reply, status, err = client.Collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusOK || string(reply) != "echo:nowait" {
		t.Fatalf("no-wait call: status = %v reply = %q", status, reply)
	}
	if got := sys.Net().Stats().Batches; got < 1 {
		t.Fatalf("interleaved calls produced %d batch frames, want >= 1", got)
	}
}

// TestBatchMemberCrashHalfFlushed: a member crashes while a pipeline holds
// a half-flushed batch for it. The parked frame for the dead member is
// dropped by the network; the surviving member's copy flushes at
// PipelineEnd and satisfies acceptance, so every call still completes.
func TestBatchMemberCrashHalfFlushed(t *testing.T) {
	sys := NewSystem(SystemOptions{Membership: MembershipOracle})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	cfg := asyncBatchConfig(8) // large cap: nothing flushes until PipelineEnd
	cfg.RetransTimeout = 5 * time.Millisecond
	// Wait for every functioning member: the crashed member is excused by
	// the membership oracle, but the survivor's real reply is required —
	// so the collected result is deterministic, not a vacuous acceptance.
	cfg.AcceptanceLimit = AcceptAll
	group := sys.Group(1, 2)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	client.PipelineBegin()
	var ids []CallID
	for i := 0; i < 3; i++ {
		id, err := client.CallAsync(echo, []byte{byte('a' + i)}, sys.Group(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Crash member 2 while its lane still holds the unflushed batch.
	n2, _ := sys.Node(2)
	n2.Crash()
	client.PipelineEnd()
	for i, id := range ids {
		reply, status, err := client.Collect(id)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
		if want := "echo:" + string(byte('a'+i)); string(reply) != want {
			t.Fatalf("call %d: reply = %q, want %q", i, reply, want)
		}
	}
}

// TestReconfigureForcesUnflushedBatch is the admission-gate regression
// test: a drain-class reconfiguration racing a pipeline section with
// parked, unflushed calls must force-flush them and drain to completion
// rather than wedge behind the open pipeline hold. CloseAdmission's drain
// barrier calls ForceFlush, so the parked calls reach the servers and
// complete while the pipeline section is still open.
func TestReconfigureForcesUnflushedBatch(t *testing.T) {
	sys := NewSystem(SystemOptions{})
	defer sys.Stop()

	reg, echo := newEchoRegistry()
	cfg := asyncBatchConfig(16) // cap far above the call count: all parked
	if _, err := sys.AddServer(1, cfg, func() App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	client.PipelineBegin()
	var ids []CallID
	for i := 0; i < 4; i++ {
		id, err := client.CallAsync(echo, []byte{byte('a' + i)}, sys.Group(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Switching the call mode is a drain-class transition: admission
	// closes, which must flush the four parked calls or the drain would
	// time out waiting for calls that never left the client.
	syncCfg := cfg
	syncCfg.Call = CallSynchronous
	done := make(chan error, 1)
	go func() { done <- client.Reconfigure(syncCfg) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Reconfigure failed against an unflushed batch: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Reconfigure wedged behind an unflushed pipelined batch")
	}
	client.PipelineEnd()

	// The results were issued under the asynchronous composite; D14 keeps
	// them collectable after the swap to synchronous semantics.
	for i, id := range ids {
		reply, status, err := client.Collect(id)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
		if want := "echo:" + string(byte('a'+i)); string(reply) != want {
			t.Fatalf("call %d: reply = %q, want %q", i, reply, want)
		}
	}
	if got := sys.Net().Stats().Batches; got < 1 {
		t.Fatalf("forced flush produced %d batch frames, want >= 1", got)
	}
}
