module mrpc

go 1.22
