package mrpc_test

// Benchmarks for the TCP transport (internal/nettcp): the same composite
// call path E8 measures on the simulator, now over real loopback sockets,
// and the raw multicast fanout the group call path pays per destination.
// `mrpcbench -bench tcp` snapshots these (plus the nettcp framing
// benchmarks matched by the TCP regex) into BENCH_tcp.json.

import (
	"fmt"
	"testing"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/nettcp"
)

// tcpBenchSystem is benchSystem over real sockets: servers and client in
// one process, every frame through loopback TCP.
func tcpBenchSystem(b *testing.B, cfg mrpc.Config, servers int) (*mrpc.Node, mrpc.Group, mrpc.OpID) {
	b.Helper()
	clk := clock.NewReal()
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Clock:     clk,
		Transport: nettcp.New(clk, nettcp.Options{}),
	})
	b.Cleanup(sys.Stop)
	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	ids := make([]mrpc.ProcID, servers)
	for i := range ids {
		ids[i] = mrpc.ProcID(i + 1)
		if _, err := sys.AddServer(ids[i], cfg, func() mrpc.App { return reg }); err != nil {
			b.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return client, sys.Group(ids...), echo
}

// BenchmarkTCPCall is E8's composite call path over TCP loopback:
// exactly-once semantics, one echo round trip per iteration, group sizes
// 1 and 3. The spread against BenchmarkE8Monolithic/Composite is the
// socket tax (syscalls, framing, kernel loopback) on an otherwise
// identical protocol stack.
func BenchmarkTCPCall(b *testing.B) {
	for _, g := range []int{1, 3} {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			cfg := mrpc.ExactlyOnce()
			cfg.RetransTimeout = 50 * time.Millisecond
			client, group, op := tcpBenchSystem(b, cfg, g)
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, status, err := client.Call(op, payload, group)
				if err != nil || status != mrpc.StatusOK {
					b.Fatalf("call: %v %v", status, err)
				}
			}
		})
	}
}

// BenchmarkTCPMulticastFanout mirrors netsim's BenchmarkMulticastFanout on
// sockets: one Multicast per iteration to g no-op endpoints in the same
// process. Sends are asynchronous behind per-peer queues, so the loop
// quiesces periodically — well under the queue depth — and a dropped
// frame fails the benchmark rather than flattering it.
func BenchmarkTCPMulticastFanout(b *testing.B) {
	for _, g := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			tr := nettcp.New(clock.NewReal(), nettcp.Options{})
			b.Cleanup(tr.Stop)
			group := make(mrpc.Group, 0, g)
			for i := 1; i <= g; i++ {
				id := mrpc.ProcID(i)
				group = append(group, id)
				if _, err := tr.Attach(id, func(*msg.NetMsg) {}); err != nil {
					b.Fatal(err)
				}
			}
			sender, err := tr.Attach(100, func(*msg.NetMsg) {})
			if err != nil {
				b.Fatal(err)
			}
			m := &msg.NetMsg{
				Type: msg.OpCall, ID: 1, Client: 100, Op: 7,
				Args: make([]byte, 64), Server: group, Sender: 100,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sender.Multicast(group, m)
				if i%64 == 63 {
					tr.Quiesce()
				}
			}
			b.StopTimer()
			tr.Quiesce()
			if st := tr.Stats(); st.Dropped > 0 {
				b.Fatalf("%d frames dropped: queues overflowed, numbers are invalid", st.Dropped)
			}
		})
	}
}
