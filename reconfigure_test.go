package mrpc_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mrpc"
	"mrpc/internal/config"
)

// lossyReconfigSystem builds the reconfiguration test bed: three servers and
// one client on a 20% lossy network, running synchronous exactly-once RPC.
func lossyReconfigSystem(t *testing.T) (*mrpc.System, *mrpc.Node, []*ckApp, mrpc.Group) {
	t.Helper()
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{Seed: 7, LossProb: 0.2, MaxDelay: time.Millisecond},
	})
	t.Cleanup(sys.Stop)

	cfg := reconfigExactlyOnce()
	apps := make([]*ckApp, 3)
	for i := range apps {
		app := &ckApp{}
		apps[i] = app
		if _, err := sys.AddServer(mrpc.ProcID(i+1), cfg, func() mrpc.App { return app }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, client, apps, sys.Group(1, 2, 3)
}

// reconfigExactlyOnce is the exactly-once preset tuned for a lossy test net.
func reconfigExactlyOnce() mrpc.Config {
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 5 * time.Millisecond
	return cfg
}

// reconfigReplicated is the replicated-service preset tuned the same way.
func reconfigReplicated() mrpc.Config {
	cfg := mrpc.ReplicatedService()
	cfg.RetransTimeout = 5 * time.Millisecond
	return cfg
}

// callBatch issues calls from `callers` concurrent goroutines, tagging each
// payload with prefix; every call must complete with StatusOK. It returns
// all payloads issued.
func callBatch(t *testing.T, client *mrpc.Node, group mrpc.Group, prefix string, callers, each int) []string {
	t.Helper()
	var mu sync.Mutex
	var payloads []string
	var firstErr error
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p := fmt.Sprintf("%s-g%d-%d", prefix, g, i)
				reply, status, err := client.Call(1, []byte(p), group)
				mu.Lock()
				if firstErr == nil {
					switch {
					case err != nil:
						firstErr = fmt.Errorf("call %s: %v", p, err)
					case status != mrpc.StatusOK:
						firstErr = fmt.Errorf("call %s: status %v", p, status)
					case string(reply) != p:
						firstErr = fmt.Errorf("call %s: reply %q", p, reply)
					}
				}
				payloads = append(payloads, p)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return payloads
}

// TestReconfigureExactlyOnceToReplicatedService is the issue's acceptance
// scenario: a group running synchronous exactly-once RPC under 20% message
// loss is hot-swapped to total-order replicated-service semantics and back,
// with callers running concurrently throughout (including during the swaps).
// No call is dropped or double-executed, and the calls issued under the
// replicated regime are executed in one total order on every server.
func TestReconfigureExactlyOnceToReplicatedService(t *testing.T) {
	sys, client, apps, group := lossyReconfigSystem(t)

	// A background caller runs across both swaps: its synchronous calls
	// block at the admission gate during a drain and complete afterwards —
	// every one must still return OK.
	stop := make(chan struct{})
	bgDone := make(chan error, 1)
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				bgDone <- nil
				return
			default:
			}
			p := fmt.Sprintf("bg-%d", i)
			i++
			_, status, err := client.Call(1, []byte(p), group)
			if err != nil || status != mrpc.StatusOK {
				bgDone <- fmt.Errorf("background call %s: %v %v", p, status, err)
				return
			}
		}
	}()

	// Phase 1: exactly-once.
	callBatch(t, client, group, "p1", 4, 10)

	// Hot-swap the whole group to total-order replicated service.
	if err := sys.Reconfigure(reconfigReplicated()); err != nil {
		t.Fatalf("reconfigure to replicated service: %v", err)
	}
	if got := client.Config().Ordering; got != mrpc.OrderTotal {
		t.Fatalf("post-swap config ordering = %v", got)
	}

	// Phase 2: concurrent callers under the new regime. AcceptAll means a
	// completed call has executed on every server, so after the batch each
	// server log holds each phase-2 payload exactly once, and total order
	// means the payloads' relative order is identical everywhere.
	p2 := callBatch(t, client, group, "p2", 4, 10)

	p2set := make(map[string]bool, len(p2))
	for _, p := range p2 {
		p2set[p] = true
	}
	var orders [3][]string
	for i, app := range apps {
		counts := map[string]int{}
		for _, e := range app.executed() {
			if p2set[e] {
				counts[e]++
				orders[i] = append(orders[i], e)
			}
		}
		for _, p := range p2 {
			if counts[p] != 1 {
				t.Fatalf("server %d executed %s %d times, want exactly once", i+1, p, counts[p])
			}
		}
	}
	for i := 1; i < 3; i++ {
		if strings.Join(orders[i], ",") != strings.Join(orders[0], ",") {
			t.Fatalf("servers disagree on total order:\n s1: %v\n s%d: %v", orders[0], i+1, orders[i])
		}
	}

	// Swap back to exactly-once and keep serving.
	if err := sys.Reconfigure(reconfigExactlyOnce()); err != nil {
		t.Fatalf("reconfigure back: %v", err)
	}
	callBatch(t, client, group, "p3", 4, 10)

	close(stop)
	if err := <-bgDone; err != nil {
		t.Fatal(err)
	}

	// Exactly-once across all phases and both swaps: no server executed any
	// payload twice (migrated duplicate-suppression state covers calls whose
	// retransmissions straddle a swap).
	for i, app := range apps {
		counts := map[string]int{}
		for _, e := range app.executed() {
			counts[e]++
			if counts[e] > 1 {
				t.Fatalf("server %d executed %q %d times", i+1, e, counts[e])
			}
		}
	}
}

// TestReconfigureIllegalTransitionRejected verifies the planner's gate at
// the facade: atomicity changes are rejected with a diagnosable error, the
// configuration is untouched, and the node keeps serving.
func TestReconfigureIllegalTransitionRejected(t *testing.T) {
	sys, client, _, group := lossyReconfigSystem(t)

	atomicCfg := mrpc.AtMostOnce()
	atomicCfg.RetransTimeout = 5 * time.Millisecond
	err := sys.Reconfigure(atomicCfg)
	if !errors.Is(err, config.ErrTransitionAtomic) {
		t.Fatalf("system reconfigure to atomic: err=%v, want ErrTransitionAtomic", err)
	}
	if !strings.Contains(err.Error(), "restart the node") {
		t.Fatalf("error is not diagnosable: %v", err)
	}
	if err := client.Reconfigure(atomicCfg); !errors.Is(err, config.ErrTransitionAtomic) {
		t.Fatalf("node reconfigure to atomic: err=%v", err)
	}
	if got := client.Config().Execution; got != mrpc.ExecConcurrent {
		t.Fatalf("config mutated by rejected reconfigure: execution=%v", got)
	}
	callBatch(t, client, group, "after-reject", 2, 3)
}

// TestReconfigureDownNodeAdoptsConfigOnRecover verifies that a crashed node
// skipped by a system-wide reconfiguration comes back under the new
// configuration.
func TestReconfigureDownNodeAdoptsConfigOnRecover(t *testing.T) {
	sys, client, _, group := lossyReconfigSystem(t)

	srv, _ := sys.Node(3)
	srv.Crash()
	if err := sys.Reconfigure(reconfigReplicated()); err != nil {
		t.Fatalf("reconfigure with node 3 down: %v", err)
	}
	if err := srv.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Config().Ordering; got != mrpc.OrderTotal {
		t.Fatalf("recovered node ordering = %v, want total", got)
	}
	callBatch(t, client, group, "post-recover", 2, 3)
}

// TestReconfigureRandomLegalTransitions walks the enumerated configuration
// space at random under 20% loss: each step picks a random reliable target,
// applies it through System.Reconfigure (with one call deliberately
// in-flight to exercise the drain), and serves a small batch under the new
// regime. Illegal targets must fail with the atomic-transition error and
// leave the system serving.
func TestReconfigureRandomLegalTransitions(t *testing.T) {
	if testing.Short() {
		t.Skip("random-walk stress")
	}
	sys, client, _, group := lossyReconfigSystem(t)
	rng := rand.New(rand.NewSource(42))

	// Unreliable configurations are legal but cannot guarantee completion
	// on a lossy network; the walk stays inside the reliable half.
	var pool []mrpc.Config
	for _, c := range config.Enumerate() {
		if c.Reliable {
			c.RetransTimeout = 5 * time.Millisecond
			pool = append(pool, c)
		}
	}

	call := func(tag string) {
		t.Helper()
		p := fmt.Sprintf("%s-%d", tag, rng.Int())
		cfg := client.Config()
		if cfg.Call == mrpc.CallAsynchronous {
			id, err := client.CallAsync(1, []byte(p), group)
			if err == nil {
				if reply, status, cerr := client.Collect(id); cerr != nil || status != mrpc.StatusOK || string(reply) != p {
					t.Fatalf("%s: %v %v %q", p, status, cerr, reply)
				}
				return
			}
			// The config snapshot raced a call-mode swap and CallAsync
			// rejected the issue before admitting it; Call below works
			// under either mode.
		}
		if reply, status, err := client.Call(1, []byte(p), group); err != nil || status != mrpc.StatusOK || string(reply) != p {
			t.Fatalf("%s: %v %v %q", p, status, err, reply)
		}
	}

	steps := 12
	for i := 0; i < steps; i++ {
		target := pool[rng.Intn(len(pool))]
		t.Logf("step %d: -> %s", i, target)
		if _, err := config.PlanTransition(client.Config(), target); err != nil {
			if !errors.Is(err, config.ErrTransitionAtomic) && !errors.Is(err, config.ErrTransitionAtomicParams) {
				t.Fatalf("step %d: unexpected planner error: %v", i, err)
			}
			if rerr := sys.Reconfigure(target); !errors.Is(rerr, err) {
				t.Fatalf("step %d: system accepted illegal transition: %v", i, rerr)
			}
			continue
		}

		// One call in flight while the swap drains.
		inflight := make(chan struct{})
		go func() {
			defer close(inflight)
			call(fmt.Sprintf("inflight-%d", i))
		}()
		if err := sys.Reconfigure(target); err != nil {
			t.Fatalf("step %d: reconfigure to %s: %v", i, target, err)
		}
		<-inflight
		for j := 0; j < 3; j++ {
			call(fmt.Sprintf("step-%d", i))
		}
	}
}

// TestDetectorCrashRecoverRace drives the heartbeat failure detector's
// lifecycle hard: one server crashes and recovers in a loop while callers
// hammer the group and heartbeats flow, so the endpoint handler's detector
// reads race the start/crash writes. Run under -race this is the regression
// test for the unlocked Node.detector field.
func TestDetectorCrashRecoverRace(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Membership:        mrpc.MembershipDetector,
		HeartbeatInterval: 2 * time.Millisecond,
		Net:               mrpc.NetParams{Seed: 3, LossProb: 0.05},
	})
	defer sys.Stop()

	cfg := reconfigExactlyOnce()
	for i := 1; i <= 2; i++ {
		if _, err := sys.AddServer(mrpc.ProcID(i), cfg, func() mrpc.App { return &ckApp{} }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1, 2)
	flaky, _ := sys.Node(2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Server 1 stays up, acceptance limit is 1: the call
				// completes whether or not server 2 is alive.
				if _, status, err := client.Call(1, []byte(fmt.Sprintf("x%d", i)), group); err != nil || status != mrpc.StatusOK {
					t.Errorf("call: %v %v", status, err)
					return
				}
			}
		}()
	}

	for i := 0; i < 25; i++ {
		flaky.Crash()
		time.Sleep(2 * time.Millisecond)
		if err := flaky.Recover(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
