package mrpc

import (
	"testing"
	"time"

	"mrpc/internal/trace"
)

// TestGraySlowMemberStallsWithoutSuspicion pins the defining property of a
// gray failure (D19): a member that is slow — every message it sends or
// receives delayed well past the normal round-trip, so calls demonstrably
// stall on its lane — but not slow enough to trip the failure detector. The
// detector must stay silent: suspicion is driven by the gap between
// successive heartbeats, and a constant lag preserves their spacing. A
// detector that reported such a member would turn a performance problem
// into a spurious membership change.
func TestGraySlowMemberStallsWithoutSuspicion(t *testing.T) {
	const (
		heartbeat = 3 * time.Millisecond
		suspect   = 150 * time.Millisecond
		grayLag   = 20 * time.Millisecond // well under the threshold
	)
	log := NewTraceLog()
	sys := NewSystem(SystemOptions{
		Membership:        MembershipDetector,
		HeartbeatInterval: heartbeat,
		SuspectAfter:      suspect,
		Trace:             log,
	})
	defer sys.Stop()

	// Accept-all acceptance: a call terminates only once every member has
	// answered, so the gray member's lane bounds the call's latency.
	cfg := ExactlyOnce()
	cfg.AcceptanceLimit = AcceptAll

	reg, echo := newEchoRegistry()
	group := sys.Group(1, 2, 3)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	call := func() time.Duration {
		start := time.Now()
		reply, status, err := client.Call(echo, []byte("hi"), group)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("status = %v, want OK", status)
		}
		if string(reply) != "echo:hi" {
			t.Fatalf("reply = %q", reply)
		}
		return time.Since(start)
	}

	call() // warm up: fast path, all lanes healthy

	// Member 2 turns gray: every message to or from it is delayed by a
	// constant lag. Each call now stalls for at least one full lag (the
	// request into the slow member, its reply back out) while the other
	// two lanes finished long ago.
	sys.Sim().SetGraySlow(2, grayLag)
	stallStart := time.Now()
	for i := 0; i < 3; i++ {
		if d := call(); d < grayLag {
			t.Fatalf("call %d took %v, want >= %v (gray lane must bound the call)", i, d, grayLag)
		}
	}
	stalled := time.Since(stallStart)
	sys.Sim().SetGraySlow(2, 0)

	// The stall window spanned many heartbeat intervals and many suspicion
	// checks — ample opportunity for a naive latency-triggered detector to
	// misfire. Ours must not have: the trace carries no suspicion of
	// anyone, and no live detector believes any peer is down.
	if stalled < 3*grayLag {
		t.Fatalf("stall window only %v; test did not exercise the gray period", stalled)
	}
	sys.Quiesce()
	if n := countKind(log, trace.KSuspect); n != 0 {
		t.Fatalf("detector reported %d suspicion(s) for a gray-slow member, want 0", n)
	}
	for _, id := range append(group, 100) {
		n, ok := sys.Node(id)
		if !ok {
			t.Fatalf("node %d missing", id)
		}
		for _, peer := range group {
			if peer != id && n.Detector() != nil && n.Detector().Down(peer) {
				t.Fatalf("node %d believes %d is down", id, peer)
			}
		}
	}
}
