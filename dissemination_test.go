package mrpc

import (
	"fmt"
	"testing"
	"time"

	"mrpc/internal/trace"
)

// countKind returns how many events of the given kind the log recorded.
func countKind(log *TraceLog, kind trace.Kind) int {
	n := 0
	for _, e := range log.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestTreeDisseminationEndToEnd drives calls through a tree(2)-configured
// group over the wire codec and checks that (a) the calls behave exactly as
// under flat dissemination, (b) the relay tree actually engaged (KRelay
// events at the origin and at interior members), and (c) the client's
// egress stayed O(k): far below the flat g-1 frames per call.
func TestTreeDisseminationEndToEnd(t *testing.T) {
	log := NewTraceLog()
	sys := NewSystem(SystemOptions{
		Net:   NetParams{EncodeOnWire: true},
		Trace: log,
	})
	defer sys.Stop()

	// At-least-once: no Unique Execution, so the client's egress is the
	// dissemination traffic alone (no per-reply OpAck frames).
	cfg := AtLeastOnce()
	cfg.Dissemination = DissTree
	cfg.TreeFanout = 2
	cfg.AcceptanceLimit = AcceptAll
	cfg.RetransTimeout = 200 * time.Millisecond

	reg, echo := newEchoRegistry()
	group := sys.Group(1, 2, 3, 4, 5, 6, 7, 8, 9)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const calls = 20
	for i := 0; i < calls; i++ {
		payload := []byte(fmt.Sprintf("m%d", i))
		reply, status, err := client.Call(echo, payload, group)
		if err != nil {
			t.Fatal(err)
		}
		if status != StatusOK {
			t.Fatalf("call %d: status = %v, want OK", i, status)
		}
		if want := "echo:" + string(payload); string(reply) != want {
			t.Fatalf("call %d: reply = %q, want %q", i, reply, want)
		}
	}
	sys.Quiesce()

	if n := countKind(log, trace.KRelay); n < calls*2 {
		t.Fatalf("KRelay events = %d, want >= %d (origin + interior relays per call)", n, calls*2)
	}

	// The client sent each call to its 2 children, plus at most the odd
	// retransmission — nowhere near the flat g-1 = 8 frames per call.
	node, _ := sys.Node(100)
	egress := node.Link().Stats().Egress
	if egress > int64(calls*(cfg.TreeFanout+2)) {
		t.Fatalf("client egress = %d over %d calls, want ~k=%d per call (flat would be %d)",
			egress, calls, cfg.TreeFanout, calls*(len(group)-1))
	}
}

// TestTreeReparentOnCrash crashes an interior tree node while a call is in
// flight: the origin's window re-delivers the frozen frame to the members
// it adopts (KReparent), and the call still completes against the
// surviving members.
func TestTreeReparentOnCrash(t *testing.T) {
	log := NewTraceLog()
	sys := NewSystem(SystemOptions{
		Net:        NetParams{MinDelay: 60 * time.Millisecond, MaxDelay: 60 * time.Millisecond},
		Membership: MembershipOracle,
		Trace:      log,
	})
	defer sys.Stop()

	// AcceptAll: the call completes only once every surviving member has
	// replied — so servers stranded below the crashed interior node MUST
	// receive the re-delivered frame for the call to finish before the
	// (deliberately long) retransmission timer.
	cfg := ExactlyOnce()
	cfg.Dissemination = DissTree
	cfg.TreeFanout = 2
	cfg.AcceptanceLimit = AcceptAll
	cfg.RetransTimeout = 500 * time.Millisecond

	reg, echo := newEchoRegistry()
	group := sys.Group(1, 2, 3, 4, 5, 6, 7)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		reply  []byte
		status Status
		err    error
	}
	done := make(chan result, 1)
	go func() {
		reply, status, err := client.Call(echo, []byte("hi"), group)
		done <- result{reply, status, err}
	}()

	// The frame is in flight toward the origin's children (60ms links);
	// crash the first child — an interior node whose subtree the origin
	// must adopt.
	time.Sleep(20 * time.Millisecond)
	victim, _ := sys.Node(1)
	victim.Crash()

	start := time.Now()
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != StatusOK {
		t.Fatalf("status = %v, want OK", r.status)
	}
	if string(r.reply) != "echo:hi" {
		t.Fatalf("reply = %q", r.reply)
	}
	// Via re-parent re-delivery the call settles after a few 60ms hops;
	// reaching the stranded subtree through retransmission alone would
	// take the 500ms timer.
	if elapsed := time.Since(start); elapsed > 450*time.Millisecond {
		t.Fatalf("call took %v after the crash; re-parent re-delivery should beat the retransmission timer", elapsed)
	}
	sys.Quiesce()

	if n := countKind(log, trace.KReparent); n < 1 {
		t.Fatalf("KReparent events = %d, want >= 1 (origin adopts the crashed child's subtree)", n)
	}
}
