package mrpc_test

// Second round of end-to-end scenarios: the paper-text optional features
// (delta checkpoints, orphan probing, causal order) and harsher fault
// choreographies (partitions, leader crash).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrpc"
)

// deltaKV is a DeltaCheckpointable key-value app for facade-level tests.
type deltaKV struct {
	mu    sync.Mutex
	data  map[string]string
	dirty map[string]bool
}

func newDeltaKV() *deltaKV {
	return &deltaKV{data: make(map[string]string), dirty: make(map[string]bool)}
}

func (d *deltaKV) Pop(_ *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	r := mrpc.NewReader(args)
	k, v := r.String(), r.String()
	d.mu.Lock()
	d.data[k] = v
	d.dirty[k] = true
	d.mu.Unlock()
	return args
}

func (d *deltaKV) get(k string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.data[k]
}

func (d *deltaKV) encode(m map[string]string) []byte {
	w := mrpc.NewWriter(64)
	w.PutUint32(uint32(len(m)))
	for k, v := range m {
		w.PutString(k)
		w.PutString(v)
	}
	return w.Bytes()
}

func (d *deltaKV) decode(b []byte) map[string]string {
	r := mrpc.NewReader(b)
	n := int(r.Uint32())
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.String()
		m[k] = r.String()
	}
	return m
}

func (d *deltaKV) Snapshot() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = make(map[string]bool)
	return d.encode(d.data)
}

func (d *deltaKV) Restore(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data = d.decode(data)
	d.dirty = make(map[string]bool)
	return nil
}

func (d *deltaKV) Delta() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	changed := make(map[string]string, len(d.dirty))
	for k := range d.dirty {
		changed[k] = d.data[k]
	}
	d.dirty = make(map[string]bool)
	return d.encode(changed)
}

func (d *deltaKV) ApplyDelta(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, v := range d.decode(data) {
		d.data[k] = v
	}
	return nil
}

var _ mrpc.DeltaCheckpointable = (*deltaKV)(nil)

func TestDeltaCheckpointsEndToEnd(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.AtMostOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.AtomicDeltas = true
	cfg.AtomicCompactEvery = 3
	server, err := sys.AddServer(1, cfg, func() mrpc.App { return newDeltaKV() })
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1)

	put := func(k, v string) {
		args := mrpc.NewWriter(32).PutString(k).PutString(v).Bytes()
		if _, status, err := client.Call(1, args, group); err != nil || status != mrpc.StatusOK {
			t.Fatalf("put %s=%s: %v %v", k, v, status, err)
		}
	}
	// Enough writes to cross a compaction boundary (CompactEvery=3).
	for i := 0; i < 8; i++ {
		put(fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))
	}

	server.Crash()
	if err := server.Recover(); err != nil {
		t.Fatal(err)
	}
	app := server.App().(*deltaKV)
	for k, want := range map[string]string{"k0": "v6", "k1": "v7", "k2": "v5"} {
		if got := app.get(k); got != want {
			t.Fatalf("after delta-chain recovery %s = %q, want %q", k, got, want)
		}
	}
	// The recovered service keeps working and checkpointing.
	put("k9", "v9")
	server.Crash()
	if err := server.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := server.App().(*deltaKV).get("k9"); got != "v9" {
		t.Fatalf("k9 = %q after second recovery", got)
	}
}

// slowOrphanApp runs until killed or released; used for probing tests.
type slowOrphanApp struct {
	started chan struct{}
	mu      sync.Mutex
	killed  bool
}

func (s *slowOrphanApp) Pop(th *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	select {
	case s.started <- struct{}{}:
	default:
	}
	select {
	case <-th.Killed():
		s.mu.Lock()
		s.killed = true
		s.mu.Unlock()
		return nil
	case <-time.After(5 * time.Second):
		return args
	}
}

func (s *slowOrphanApp) wasKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

func TestProbingKillsOrphanOfCrashedClientWithoutRecovery(t *testing.T) {
	// The incarnation-based detection of Terminate Orphan only fires when
	// the client RECOVERS and calls again. Probing handles the case the
	// paper's second option exists for: the client crashes and never comes
	// back.
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.AtLeastOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.Orphan = mrpc.OrphanTerminate
	cfg.OrphanProbeInterval = 15 * time.Millisecond
	cfg.OrphanProbeMisses = 2

	app := &slowOrphanApp{started: make(chan struct{}, 1)}
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	released := make(chan struct{})
	go func() {
		defer close(released)
		_, _, _ = client.Call(1, []byte("work"), sys.Group(1))
	}()
	<-app.started
	client.Crash() // and never recovers
	<-released

	deadline := time.Now().Add(5 * time.Second)
	for !app.wasKilled() {
		if time.Now().After(deadline) {
			t.Fatal("orphan of silently-dead client never killed by probing")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPartitionHealingCompletesCall(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 5 * time.Millisecond
	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return reg }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sys.Sim().Partition(100, 1, true)
	done := make(chan mrpc.Status, 1)
	go func() {
		_, status, _ := client.Call(echo, []byte("x"), sys.Group(1))
		done <- status
	}()
	select {
	case <-done:
		t.Fatal("call completed across a partition")
	case <-time.After(30 * time.Millisecond):
	}
	sys.Sim().Partition(100, 1, false)
	select {
	case status := <-done:
		if status != mrpc.StatusOK {
			t.Fatalf("status after healing = %v", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed after the partition healed")
	}
}

func TestTotalOrderLeaderCrashEndToEnd(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{Membership: mrpc.MembershipOracle})
	defer sys.Stop()

	cfg := mrpc.ReplicatedService()
	cfg.RetransTimeout = 5 * time.Millisecond
	cfg.AcceptanceLimit = 2 // survive the leader's absence

	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	group := sys.Group(1, 2, 3)
	servers := make(map[mrpc.ProcID]*mrpc.Node, 3)
	for _, id := range group {
		s, err := sys.AddServer(id, cfg, func() mrpc.App { return reg })
		if err != nil {
			t.Fatal(err)
		}
		servers[id] = s
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, status, _ := client.Call(echo, []byte{byte(i)}, group); status != mrpc.StatusOK {
			t.Fatalf("pre-crash call %d: %v", i, status)
		}
	}
	// Crash the leader (largest id).
	servers[3].Crash()
	for i := 3; i < 6; i++ {
		_, status, err := client.Call(echo, []byte{byte(i)}, group)
		if err != nil || status != mrpc.StatusOK {
			t.Fatalf("post-leader-crash call %d: %v %v", i, status, err)
		}
	}
}

func TestCausalOrderEndToEndFacade(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{Seed: 4, MinDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
	})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.Ordering = mrpc.OrderCausal
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll

	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	group := sys.Group(1, 2, 3)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return reg }); err != nil {
			t.Fatal(err)
		}
	}
	a, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.AddClient(101, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interleaved traffic from two clients under reordering: every call
	// must still complete (no causal deadlock).
	var wg sync.WaitGroup
	for _, c := range []*mrpc.Node{a, b} {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, status, err := c.Call(echo, []byte{byte(i)}, group); err != nil || status != mrpc.StatusOK {
					t.Errorf("client %d call %d: %v %v", c.ID(), i, status, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
