// Command mrpcdemo runs a scripted fault-injection demonstration: a
// replicated counter service under a lossy network, with a server crash
// and recovery mid-run, narrated step by step. It shows the configurable
// group RPC service doing its job end to end: retransmission masking
// loss, unique execution suppressing duplicates, total order keeping the
// replicas identical, and the membership oracle letting acceptance adapt
// to the failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/stub"
)

const opAdd mrpc.OpID = 1

// counter is a replicated counter app; total order keeps replicas equal.
type counter struct {
	mu  sync.Mutex
	val int64
}

func (c *counter) Pop(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
	r := stub.NewReader(args)
	delta := r.Int64()
	c.mu.Lock()
	c.val += delta
	v := c.val
	c.mu.Unlock()
	return stub.NewWriter(8).PutInt64(v).Bytes()
}

func (c *counter) value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

func main() {
	seed := flag.Int64("seed", 1, "network fault seed")
	calls := flag.Int("calls", 30, "number of increments")
	flag.Parse()
	if err := run(*seed, *calls); err != nil {
		fmt.Fprintln(os.Stderr, "mrpcdemo:", err)
		os.Exit(1)
	}
}

func run(seed int64, calls int) error {
	fmt.Println("== configurable group RPC demo: replicated counter, 3 replicas")
	fmt.Println("   config: total order + unique execution + reliable comm + accept ALL")
	fmt.Println("   network: 10% loss, 10% duplication, 0.2–2ms delay")

	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     seed,
			MinDelay: 200 * time.Microsecond,
			MaxDelay: 2 * time.Millisecond,
			LossProb: 0.10,
			DupProb:  0.10,
		},
		Membership: mrpc.MembershipOracle,
	})
	defer sys.Stop()

	cfg := config.ReplicatedService()
	cfg.RetransTimeout = 5 * time.Millisecond
	// Majority acceptance: a recovered follower rejoins the total order at
	// its next incarnation but cannot replay the sequence it missed
	// (state transfer is outside the paper's protocol, see DESIGN.md D4),
	// so the client must not wait for it.
	cfg.AcceptanceLimit = 2

	group := sys.Group(1, 2, 3)
	counters := make(map[mrpc.ProcID]*counter, len(group))
	servers := make(map[mrpc.ProcID]*mrpc.Node, len(group))
	for _, id := range group {
		c := &counter{}
		counters[id] = c
		node, err := sys.AddServer(id, cfg, func() mrpc.App { return c })
		if err != nil {
			return err
		}
		servers[id] = node
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		return err
	}

	crashAt := calls / 3
	recoverAt := 2 * calls / 3
	var sum int64
	for i := 0; i < calls; i++ {
		if i == crashAt {
			fmt.Printf("-- crashing replica 1 before call %d\n", i)
			servers[1].Crash()
		}
		if i == recoverAt {
			fmt.Printf("-- recovering replica 1 before call %d\n", i)
			if err := servers[1].Recover(); err != nil {
				return err
			}
		}
		delta := int64(i + 1)
		sum += delta
		args := stub.NewWriter(8).PutInt64(delta).Bytes()
		reply, status, err := client.Call(opAdd, args, group)
		if err != nil {
			return err
		}
		v := stub.NewReader(reply).Int64()
		fmt.Printf("   call %2d: add %-3d -> status=%-7v replica-value=%d\n", i, delta, status, v)
	}

	// No Quiesce here: the recovered replica legitimately holds calls it
	// cannot order (it missed part of the sequence), so deliveries parked
	// behind them only drain at shutdown.
	sys.Clock().Sleep(100 * time.Millisecond)

	fmt.Println("== final replica states")
	for _, id := range group {
		note := ""
		if counters[id].value() != sum && id == 1 {
			note = "  (missed the sequence while crashed; rejoining an ordered group needs state transfer)"
		}
		fmt.Printf("   replica %d: %d%s\n", id, counters[id].value(), note)
	}
	fmt.Printf("== client-observed sum of increments: %d\n", sum)
	st := sys.Net().Stats()
	fmt.Printf("== network: sent=%d delivered=%d lost=%d duplicated=%d\n",
		st.Sent, st.Delivered, st.Dropped, st.Duplicated)

	if counters[2].value() != sum || counters[3].value() != sum {
		return fmt.Errorf("surviving replicas diverged: %d vs %d (want %d)",
			counters[2].value(), counters[3].value(), sum)
	}
	fmt.Println("== surviving replicas agree: total order held under loss, duplication and a crash")
	return nil
}
