// Command mrpclint statically enforces the framework invariants documented
// in DESIGN.md ("Statically enforced invariants"): table-escape,
// determinism, handler-discipline, goroutine-discipline, and
// priority-constants.
//
// Usage:
//
//	go run ./cmd/mrpclint ./...
//
// The whole module is always analyzed (package arguments are accepted for
// familiarity but do not narrow the scope; examples/ and test files are
// exempt by design). Exit status is 1 when violations are found, 2 when
// the module cannot be loaded.
package main

import (
	"flag"
	"fmt"
	"os"

	"mrpc/internal/lint"
)

func main() {
	quiet := flag.Bool("q", false, "print nothing on success")
	flag.Parse()

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ds, err := lint.LintModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range ds {
		fmt.Println(d)
	}
	if len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "mrpclint: %d violation(s)\n", len(ds))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Println("mrpclint: ok")
	}
}
