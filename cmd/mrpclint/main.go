// Command mrpclint statically enforces the framework invariants documented
// in DESIGN.md ("Statically enforced invariants") — ten rules from
// table-escape to the flow-sensitive pool-safety, lock-order, and
// frozen-flow analyses.
//
// Usage:
//
//	go run ./cmd/mrpclint              # human-readable diagnostics
//	go run ./cmd/mrpclint -json        # machine-readable (CI artifact)
//	go run ./cmd/mrpclint -graph      # lock-order graph in Graphviz DOT
//	go run ./cmd/mrpclint -list        # registered rules, one per line
//	go run ./cmd/mrpclint -rules pool-safety,lock-order
//
// The whole module is always analyzed (package arguments are accepted for
// familiarity but do not narrow the scope; examples/ and test files are
// exempt by design). Exit status is 1 when violations are found, 2 when
// the module cannot be loaded or a flag is invalid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mrpc/internal/lint"
)

// jsonDiag is the -json wire shape of one diagnostic, stable for CI
// consumers.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	quiet := flag.Bool("q", false, "print nothing on success")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array")
	graph := flag.Bool("graph", false, "print the lock-order graph in DOT form and exit")
	list := flag.Bool("list", false, "print the registered rules and exit")
	ruleList := flag.String("rules", "", "comma-separated rule subset to run (default: all)")
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-22s %s\n", r.Name, r.Doc)
		}
		return
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *graph {
		dot, err := lint.ModuleLockGraphDOT(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(dot)
		return
	}

	var names []string
	if *ruleList != "" {
		for _, n := range strings.Split(*ruleList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	ds, err := lint.LintModuleRules(root, names)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *asJSON {
		out := make([]jsonDiag, 0, len(ds))
		for _, d := range ds {
			out = append(out, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range ds {
			fmt.Println(d)
		}
	}
	if len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "mrpclint: %d violation(s)\n", len(ds))
		os.Exit(1)
	}
	if !*quiet && !*asJSON {
		fmt.Println("mrpclint: ok")
	}
}
