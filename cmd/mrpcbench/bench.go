package main

// Benchmark snapshot mode (-bench <label>): runs the repo's Go benchmark
// suite N times as interleaved whole-suite passes — so machine drift during
// the session hits every benchmark roughly equally instead of biasing
// whichever ran last — takes per-benchmark medians, and writes
// BENCH_<label>.json. The JSON snapshots committed at the repo root are the
// machine-readable perf trajectory future PRs regress-check against.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// benchResult holds one benchmark's medians across the passes.
type benchResult struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Samples  int     `json:"samples"`
}

// benchSnapshot is the BENCH_<label>.json document.
type benchSnapshot struct {
	Label     string                 `json:"label"`
	Runs      int                    `json:"runs"`
	Bench     string                 `json:"bench"`
	Benchtime string                 `json:"benchtime"`
	Packages  string                 `json:"packages"`
	Results   map[string]benchResult `json:"results"`
}

// runBenchMode executes the suite and writes the snapshot; it returns the
// output path.
func runBenchMode(label, benchRe, benchtime, pkgs string, runs int) (string, error) {
	samples := make(map[string][][3]float64)
	for i := 0; i < runs; i++ {
		args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchtime", benchtime, pkgs}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return "", fmt.Errorf("go %s: %v", strings.Join(args, " "), err)
		}
		found := 0
		for _, line := range strings.Split(string(out), "\n") {
			name, vals, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			samples[name] = append(samples[name], vals)
			found++
		}
		if found == 0 {
			return "", fmt.Errorf("pass %d produced no benchmark lines", i+1)
		}
		fmt.Fprintf(os.Stderr, "mrpcbench: pass %d/%d done (%d benchmarks)\n", i+1, runs, found)
	}

	snap := benchSnapshot{
		Label: label, Runs: runs, Bench: benchRe, Benchtime: benchtime,
		Packages: pkgs, Results: make(map[string]benchResult, len(samples)),
	}
	for name, ss := range samples {
		snap.Results[name] = benchResult{
			NsOp:     median(ss, 0),
			BOp:      median(ss, 1),
			AllocsOp: median(ss, 2),
			Samples:  len(ss),
		}
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return "", err
	}
	path := "BENCH_" + label + ".json"
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   1000   12345 ns/op   345 B/op   7 allocs/op
//
// Missing metrics are reported as -1 samples and excluded from the median.
func parseBenchLine(line string) (string, [3]float64, bool) {
	vals := [3]float64{-1, -1, -1}
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", vals, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	got := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", vals, false
		}
		switch f[i+1] {
		case "ns/op":
			vals[0] = v
			got = true
		case "B/op":
			vals[1] = v
		case "allocs/op":
			vals[2] = v
		}
	}
	return name, vals, got
}

// median returns the median of the idx-th metric over the samples, skipping
// passes where the metric was absent.
func median(ss [][3]float64, idx int) float64 {
	vs := make([]float64, 0, len(ss))
	for _, s := range ss {
		if s[idx] >= 0 {
			vs = append(vs, s[idx])
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	if n := len(vs); n%2 == 1 {
		return vs[n/2]
	} else {
		return (vs[n/2-1] + vs[n/2]) / 2
	}
}
