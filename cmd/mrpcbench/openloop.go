package main

// Open-loop heavy-traffic benchmark (-open): calls are issued at a fixed
// arrival rate from a schedule that does not slow down when the system
// does — unlike the closed-loop Go benchmarks, where a slow reply delays
// the next arrival and hides queueing. The harness reports achieved
// throughput and completion-latency percentiles, and with -openlabel
// merges the medians into BENCH_<label>.json under the "open" key so the
// batching win lands in the perf trajectory next to the closed-loop
// numbers.
//
// The client issues no-wait (asynchronous) calls; a pool of collector
// goroutines blocks on the results. Arrival bursts within one scheduling
// quantum therefore overlap in the send path, which is exactly the
// traffic shape the per-destination flush queue coalesces.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"mrpc"
)

// openResult is one open-loop run's summary.
type openResult struct {
	RatePerSec   int     `json:"rate_per_sec"`
	DurationSec  float64 `json:"duration_sec"`
	Servers      int     `json:"servers"`
	Issued       int     `json:"issued"`
	Completed    int     `json:"completed"`
	ThroughputPS float64 `json:"throughput_per_sec"`
	P50US        float64 `json:"p50_us"`
	P99US        float64 `json:"p99_us"`
}

// runOpenLoop drives one open-loop pass and returns its summary.
func runOpenLoop(rate, servers int, dur time.Duration) (openResult, error) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	reg := mrpc.NewRegistry()
	op := reg.Register("work", func(_ *mrpc.Thread, args []byte) []byte { return args })

	cfg := mrpc.ExactlyOnce()
	cfg.Call = mrpc.CallAsynchronous
	cfg.RetransTimeout = 50 * time.Millisecond

	members := make([]mrpc.ProcID, 0, servers)
	for i := 1; i <= servers; i++ {
		id := mrpc.ProcID(i)
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return reg }); err != nil {
			return openResult{}, err
		}
		members = append(members, id)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		return openResult{}, err
	}
	group := sys.Group(members...)

	type issued struct {
		id mrpc.CallID
		t0 time.Time
	}
	// The queue is sized for the worst case (every call of the run
	// outstanding at once) so the issuing loop never blocks on it — an
	// open-loop source must not be back-pressured by its own harness.
	queue := make(chan issued, rate*int(dur/time.Second)+rate)

	var (
		latMu sync.Mutex
		lats  []time.Duration
	)
	const collectors = 16
	var wg sync.WaitGroup
	for w := 0; w < collectors; w++ {
		wg.Add(1)
		//lint:ignore goroutine-discipline benchmark collectors; reaped via wg.Wait when the queue closes
		go func() {
			defer wg.Done()
			for it := range queue {
				_, status, err := client.Collect(it.id)
				if err != nil || status != mrpc.StatusOK {
					continue
				}
				lat := time.Since(it.t0) //lint:ignore determinism wall-clock latency is the measurement
				latMu.Lock()
				lats = append(lats, lat)
				latMu.Unlock()
			}
		}()
	}

	interval := time.Second / time.Duration(rate)
	args := []byte("ping")
	start := time.Now() //lint:ignore determinism the open-loop schedule runs in real time by design
	deadline := start.Add(dur)
	next := start
	nIssued := 0
	for {
		now := time.Now() //lint:ignore determinism real-time arrival schedule
		if !now.Before(deadline) {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now)) //lint:ignore determinism real-time arrival schedule
		}
		t0 := time.Now() //lint:ignore determinism wall-clock latency is the measurement
		id, err := client.CallAsync(op, args, group)
		if err != nil {
			return openResult{}, err
		}
		nIssued++
		queue <- issued{id: id, t0: t0}
		// Fixed schedule: a late arrival does not push back the ones after
		// it; the issuer catches up instead of silently lowering the rate.
		next = next.Add(interval)
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start) //lint:ignore determinism wall-clock throughput is the measurement

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res := openResult{
		RatePerSec:  rate,
		DurationSec: elapsed.Seconds(),
		Servers:     servers,
		Issued:      nIssued,
		Completed:   len(lats),
	}
	if len(lats) > 0 {
		res.ThroughputPS = float64(len(lats)) / elapsed.Seconds()
		res.P50US = float64(lats[len(lats)/2]) / float64(time.Microsecond)
		res.P99US = float64(lats[min(len(lats)-1, len(lats)*99/100)]) / float64(time.Microsecond)
	}
	return res, nil
}

// runOpenMode runs the open-loop benchmark `runs` times, takes the median
// pass by p50 latency, prints every pass, and (with a label) merges the
// median into BENCH_<label>.json under the "open" key, preserving the
// closed-loop results already in the file.
func runOpenMode(label string, rate, servers, runs int, dur time.Duration) error {
	if runs < 1 {
		runs = 1
	}
	results := make([]openResult, 0, runs)
	for i := 0; i < runs; i++ {
		r, err := runOpenLoop(rate, servers, dur)
		if err != nil {
			return err
		}
		results = append(results, r)
		fmt.Printf("open pass %d/%d: rate=%d/s achieved=%.0f/s p50=%.0fus p99=%.0fus (%d/%d completed)\n",
			i+1, runs, rate, r.ThroughputPS, r.P50US, r.P99US, r.Completed, r.Issued)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].P50US < results[j].P50US })
	med := results[len(results)/2]
	fmt.Printf("open median: throughput=%.0f/s p50=%.0fus p99=%.0fus\n",
		med.ThroughputPS, med.P50US, med.P99US)

	if label == "" {
		return nil
	}
	path := "BENCH_" + label + ".json"
	doc := make(map[string]any)
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	doc["open"] = med
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("mrpcbench: merged open-loop median into %s\n", path)
	return nil
}
