// Command mrpcbench runs the experiment harness: every figure of the paper
// regenerated from the implementation (E1–E5) and the performance/fault
// characterizations that back its design claims (E6–E15). See DESIGN.md §3
// for the experiment index.
//
// Usage:
//
//	mrpcbench              run every experiment
//	mrpcbench -e E5        run one experiment (E1..E14, E8b)
//	mrpcbench -seed 42     change the fault-injection seed
//
// It doubles as the benchmark snapshot runner (see bench.go):
//
//	mrpcbench -bench pre   run the Go benchmark suite -n times interleaved,
//	                       take medians, write BENCH_pre.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mrpc/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("e", "", "experiment id to run (E1..E14, E8b); empty = all")
		seed = flag.Int64("seed", 7, "fault-injection seed")

		bench     = flag.String("bench", "", "benchmark snapshot label; runs the suite and writes BENCH_<label>.json")
		benchRe   = flag.String("benchre", "E6|E8|MulticastFanout|WireCodec", "benchmark name regex for -bench mode")
		benchN    = flag.Int("n", 5, "interleaved whole-suite passes in -bench mode")
		benchTime = flag.String("benchtime", "1s", "go test -benchtime value in -bench mode")
		benchPkg  = flag.String("pkg", "./...", "package pattern benchmarked in -bench mode")

		open        = flag.Bool("open", false, "run the open-loop heavy-traffic benchmark (see openloop.go)")
		openRate    = flag.Int("rate", 20000, "open-loop arrival rate, calls/s")
		openServers = flag.Int("servers", 3, "open-loop server group size")
		openRuns    = flag.Int("runs", 3, "open-loop passes (median by p50 is reported)")
		openDur     = flag.Duration("dur", 3*time.Second, "open-loop duration per pass")
		openLabel   = flag.String("openlabel", "", "merge the open-loop median into BENCH_<label>.json")
	)
	flag.Parse()

	if *open {
		if err := runOpenMode(*openLabel, *openRate, *openServers, *openRuns, *openDur); err != nil {
			fmt.Fprintf(os.Stderr, "mrpcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *bench != "" {
		// The "tcp" label snapshots the TCP-transport benchmarks (call
		// path, multicast fanout, framing) unless a regex was given.
		benchReSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "benchre" {
				benchReSet = true
			}
		})
		if *bench == "tcp" && !benchReSet {
			*benchRe = "TCP"
		}
		path, err := runBenchMode(*bench, *benchRe, *benchTime, *benchPkg, *benchN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrpcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mrpcbench: wrote %s (medians of %d passes over -bench %q)\n", path, *benchN, *benchRe)
		return
	}

	if *exp != "" {
		r, ok := experiments.ByID(*exp, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "mrpcbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		fmt.Print(r)
		if !r.Pass {
			os.Exit(1)
		}
		return
	}

	failed := 0
	for _, r := range experiments.All(*seed) {
		fmt.Print(r)
		fmt.Println()
		if !r.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mrpcbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
