// Command mrpccheck is the conformance harness driver: it samples the
// configuration space, runs seeded workloads under scripted fault
// schedules, and replays the structured traces through the per-property
// oracles of internal/check.
//
//	mrpccheck -smoke            # CI: a small sampled sweep (default 30 runs)
//	mrpccheck -sweep            # nightly: every configuration under every applicable template
//	mrpccheck -repro seed.json  # re-run a seed artifact twice and compare digests
//
// On a violation the failing scenario is shrunk and written as a seed
// artifact (JSON) for -repro; the exit status is 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mrpc"
	"mrpc/internal/check"
	"mrpc/internal/clock"
	"mrpc/internal/config"
	"mrpc/internal/nettcp"
)

func main() {
	var (
		smoke  = flag.Bool("smoke", false, "run a sampled smoke sweep")
		sweep  = flag.Bool("sweep", false, "run every configuration under every applicable template")
		repro  = flag.String("repro", "", "re-run the seed artifact at this path and verify its digest reproduces")
		seed   = flag.Int64("seed", 1, "master seed for scenario sampling")
		count  = flag.Int("n", 30, "number of scenarios for -smoke")
		outDir = flag.String("out", ".", "directory for seed artifacts written on violation")
		shrink = flag.Int("shrink", 40, "run budget for shrinking a violating scenario (0 disables)")
		tport  = flag.String("transport", "sim", `substrate for -smoke/-sweep: "sim", or "tcp" to run fault-free scenarios over TCP loopback and require each digest to match its simulator replay`)
		tmpl   = flag.String("template", "", `only run scenarios of this template (name prefix, e.g. "churn" or "gray-slow"); generation oversamples until -n matches are found`)
	)
	flag.Parse()

	switch {
	case *repro != "":
		os.Exit(runRepro(*repro))
	case *sweep && *tport == "tcp":
		os.Exit(runCross(filterScenarios(sweepScenarios(*seed), *tmpl, 0), *outDir))
	case *sweep:
		os.Exit(runScenarios(filterScenarios(sweepScenarios(*seed), *tmpl, 0), *outDir, *shrink))
	case *smoke && *tport == "tcp":
		os.Exit(runCross(generateFiltered(*seed, *count, *tmpl), *outDir))
	case *smoke:
		os.Exit(runScenarios(generateFiltered(*seed, *count, *tmpl), *outDir, *shrink))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// filterScenarios keeps the scenarios whose template (name prefix) matches
// tmpl; an empty tmpl keeps everything. A positive max truncates.
func filterScenarios(scs []check.Scenario, tmpl string, max int) []check.Scenario {
	if tmpl == "" {
		return scs
	}
	out := scs[:0]
	for _, sc := range scs {
		if strings.HasPrefix(sc.Name, tmpl) {
			out = append(out, sc)
			if max > 0 && len(out) == max {
				break
			}
		}
	}
	return out
}

// generateFiltered samples until count scenarios of the requested template
// are found (Generate's stream is deterministic, so oversampling keeps the
// kept subsequence stable for a given seed).
func generateFiltered(seed int64, count int, tmpl string) []check.Scenario {
	if tmpl == "" {
		return check.Generate(seed, count)
	}
	// The rarest templates fill ~1/15 of the stream; 40x oversampling finds
	// count matches for any template that can host some configuration.
	return filterScenarios(check.Generate(seed, 40*count), tmpl, count)
}

// runCross executes every cross-transport-safe scenario twice — once on
// the simulator, once over TCP loopback — and requires conforming runs
// with identical digests: the real transport proving the seam against its
// deterministic twin. Simulator-only scenarios (faults, partitions) are
// skipped.
func runCross(scs []check.Scenario, outDir string) int {
	tcpFactory := func(clk clock.Clock) mrpc.Transport {
		return nettcp.New(clk, nettcp.Options{})
	}
	fail, ran := 0, 0
	for i, sc := range scs {
		if !sc.CrossTransportSafe() {
			continue
		}
		ran++
		sim, err := check.Run(sc)
		if err == nil && len(sim.Violations) == 0 {
			var tcp *check.Result
			tcp, err = check.RunOver(sc, tcpFactory)
			switch {
			case err != nil:
			case len(tcp.Violations) > 0:
				err = fmt.Errorf("tcp run: %d violation(s): %s", len(tcp.Violations), tcp.Violations[0])
			case tcp.Digest != sim.Digest:
				err = fmt.Errorf("digest diverges: sim %.12s tcp %.12s", sim.Digest, tcp.Digest)
			}
		} else if err == nil {
			err = fmt.Errorf("sim run: %d violation(s): %s", len(sim.Violations), sim.Violations[0])
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %3d/%d %-20s %v\n", i+1, len(scs), sc.Name, err)
			writeArtifact(outDir, sc)
			fail++
			continue
		}
		fmt.Printf("ok   %3d/%d %-20s sim=tcp digest %.12s\n", i+1, len(scs), sc.Name, sim.Digest)
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "mrpccheck: %d/%d cross-transport scenarios failed\n", fail, ran)
		return 1
	}
	fmt.Printf("mrpccheck: %d cross-transport scenarios conform (digests match the simulator)\n", ran)
	return 0
}

// sweepScenarios samples broadly enough that every enumerated configuration
// appears several times across the templates (Generate skips templates a
// configuration cannot host, so oversample).
func sweepScenarios(seed int64) []check.Scenario {
	return check.Generate(seed, 4*len(config.Enumerate()))
}

func runScenarios(scs []check.Scenario, outDir string, shrinkBudget int) int {
	fail := 0
	for i, sc := range scs {
		res, err := check.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %3d/%d %-20s run error: %v\n", i+1, len(scs), sc.Name, err)
			writeArtifact(outDir, sc)
			fail++
			continue
		}
		if len(res.Violations) > 0 {
			if shrinkBudget > 0 {
				sc, res = check.Shrink(sc, shrinkBudget)
			}
			fmt.Fprintf(os.Stderr, "FAIL %3d/%d %-20s %d violation(s):\n", i+1, len(scs), sc.Name, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "    %s\n", v)
			}
			writeArtifact(outDir, sc)
			fail++
			continue
		}
		fmt.Printf("ok   %3d/%d %-20s digest %.12s\n", i+1, len(scs), sc.Name, res.Digest)
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "mrpccheck: %d/%d scenarios failed\n", fail, len(scs))
		return 1
	}
	fmt.Printf("mrpccheck: %d scenarios conform\n", len(scs))
	return 0
}

func runRepro(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrpccheck: %v\n", err)
		return 2
	}
	var sc check.Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		fmt.Fprintf(os.Stderr, "mrpccheck: %s: %v\n", path, err)
		return 2
	}
	first, err := check.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrpccheck: %s: %v\n", sc.Name, err)
		return 1
	}
	second, err := check.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrpccheck: %s: rerun: %v\n", sc.Name, err)
		return 1
	}
	fmt.Printf("%s: digest %s\n", sc.Name, first.Digest)
	if first.Digest != second.Digest {
		fmt.Fprintf(os.Stderr, "mrpccheck: %s: digest did not reproduce (rerun %s)\n", sc.Name, second.Digest)
		return 1
	}
	for _, v := range first.Violations {
		fmt.Printf("    %s\n", v)
	}
	if len(first.Violations) > 0 {
		fmt.Printf("%s: %d violation(s) reproduced\n", sc.Name, len(first.Violations))
		return 1
	}
	fmt.Printf("%s: conforms; digest reproduced\n", sc.Name)
	return 0
}

func writeArtifact(dir string, sc check.Scenario) {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrpccheck: marshal artifact: %v\n", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("mrpccheck-%s-%d.json", sc.Name, sc.Seed))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mrpccheck: write artifact: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "    seed artifact: %s (mrpccheck -repro %s)\n", path, path)
}
