package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mrpc"
)

// TestParsePeers pins the flag grammar.
func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=127.0.0.1:7101, 2=h:2,100=h:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[1] != "127.0.0.1:7101" || peers[100] != "h:3" {
		t.Fatalf("parsed %v", peers)
	}
	for _, bad := range []string{"", "1", "x=addr", "1=a,1=b"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
	ids, err := parseIDs("3, 1,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("parsed %v", ids)
	}
}

// reserveAddrs picks n distinct listenable localhost addresses and
// releases them; the gap before mrpcnode rebinds is the usual
// ephemeral-port race, acceptably small for a test.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestMultiProcessGroup is the deployment acceptance test: it builds the
// mrpcnode binary, runs a 3-member group as separate OS processes plus a
// client issuing a mixed wait/no-wait workload over TCP localhost, kills
// one member mid-run with SIGKILL and restarts it — and requires the
// client to exit 0 with every call OK.
func TestMultiProcessGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "mrpcnode")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addrs := reserveAddrs(t, 4)
	var parts []string
	for i, id := range []mrpc.ProcID{1, 2, 3, 100} {
		parts = append(parts, fmt.Sprintf("%d=%s", id, addrs[i]))
	}
	peers := strings.Join(parts, ",")

	member := func(id int) *exec.Cmd {
		cmd := exec.Command(bin, "-id", fmt.Sprint(id), "-peers", peers)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("member %d: %v", id, err)
		}
		return cmd
	}
	members := map[int]*exec.Cmd{1: member(1), 2: member(2), 3: member(3)}
	defer func() {
		for _, cmd := range members {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	client := exec.Command(bin, "-id", "100", "-peers", peers,
		"-calls", "100", "-interval", "20ms")
	out := &strings.Builder{}
	client.Stdout = out
	client.Stderr = out
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- client.Wait() }()

	// Kill member 3 mid-workload, then bring a fresh incarnation back on
	// the same address. The client keeps completing calls via the two
	// surviving members (2-of-3 acceptance) and retransmission reattaches
	// the returning one.
	time.Sleep(600 * time.Millisecond)
	members[3].Process.Kill()
	members[3].Wait()
	time.Sleep(600 * time.Millisecond)
	members[3] = member(3)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("client failed: %v\n%s", err, out)
		}
	case <-time.After(60 * time.Second):
		client.Process.Kill()
		t.Fatalf("client hung past 60s\n%s", out)
	}
	if !strings.Contains(out.String(), "100 calls OK") {
		t.Fatalf("client output missing success line:\n%s", out)
	}
}
