// Command mrpcnode runs one process of a group RPC deployment over the
// TCP transport (internal/nettcp): every invocation gets the same static
// peer map (id=host:port pairs) and plays one role in it. An id listed in
// -servers serves the replicated app until it is signalled; any other id
// runs a mixed wait/no-wait client workload against the server group and
// exits 0 only if every call completed OK with a correct reply.
//
// A 3-member group plus one client on localhost:
//
//	P='1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103,100=127.0.0.1:7110'
//	mrpcnode -id 1 -peers "$P" &
//	mrpcnode -id 2 -peers "$P" &
//	mrpcnode -id 3 -peers "$P" &
//	mrpcnode -id 100 -peers "$P" -calls 60
//
// The default configuration is reliable + unique + FIFO-ordered with
// asynchronous call semantics and 2-of-n acceptance, so the workload keeps
// completing while one member is down or restarting: retransmission masks
// the outage and acceptance is satisfied by the surviving members.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/nettcp"
	"mrpc/internal/proc"
	"mrpc/internal/stub"
)

// app is the replicated service: an echo operation (reply correctness is
// checked by the client) and a counter (exercises unique execution under
// retransmission).
type app struct {
	reg *stub.Registry

	mu  sync.Mutex
	val int64

	opEcho mrpc.OpID
	opAdd  mrpc.OpID
}

func newApp() *app {
	a := &app{reg: stub.NewRegistry()}
	a.opEcho = a.reg.Register("echo", func(_ *proc.Thread, args []byte) []byte {
		return args
	})
	a.opAdd = a.reg.Register("add", func(_ *proc.Thread, args []byte) []byte {
		delta := stub.NewReader(args).Int64()
		a.mu.Lock()
		a.val += delta
		v := a.val
		a.mu.Unlock()
		return stub.NewWriter(8).PutInt64(v).Bytes()
	})
	return a
}

func (a *app) Pop(th *proc.Thread, op msg.OpID, args []byte) []byte {
	return a.reg.Pop(th, op, args)
}

func main() {
	var (
		id       = flag.Int("id", 0, "this process's id (must appear in -peers)")
		peerSpec = flag.String("peers", "", "static peer map shared by every process: id=host:port,id=host:port,...")
		servers  = flag.String("servers", "1,2,3", "ids forming the server group; an -id in this list serves, any other runs the client workload")
		accept   = flag.Int("accept", 2, "acceptance limit k: calls complete after k member executions")
		calls    = flag.Int("calls", 60, "client: number of calls in the workload")
		interval = flag.Duration("interval", 20*time.Millisecond, "client: delay between calls (stretches the run across member restarts)")
	)
	flag.Parse()
	if err := run(*id, *peerSpec, *servers, *accept, *calls, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "mrpcnode:", err)
		os.Exit(1)
	}
}

func run(id int, peerSpec, serverSpec string, accept, calls int, interval time.Duration) error {
	peers, err := parsePeers(peerSpec)
	if err != nil {
		return err
	}
	group, err := parseIDs(serverSpec)
	if err != nil {
		return fmt.Errorf("-servers: %w", err)
	}
	self := mrpc.ProcID(id)
	if _, ok := peers[self]; !ok {
		return fmt.Errorf("-id %d has no address in -peers", id)
	}
	for _, m := range group {
		if _, ok := peers[m]; !ok {
			return fmt.Errorf("server %d has no address in -peers", m)
		}
	}

	cfg := mrpc.Config{
		Call:            mrpc.CallAsynchronous,
		Reliable:        true,
		RetransTimeout:  10 * time.Millisecond,
		Unique:          true,
		Execution:       mrpc.ExecConcurrent,
		Ordering:        mrpc.OrderFIFO,
		Orphan:          mrpc.OrphanIgnore,
		AcceptanceLimit: accept,
	}

	clk := clock.NewReal()
	tr := nettcp.New(clk, nettcp.Options{Peers: peers})
	sys := mrpc.NewSystem(mrpc.SystemOptions{Clock: clk, Transport: tr})
	defer sys.Stop()

	serving := false
	for _, m := range group {
		if m == self {
			serving = true
		}
	}
	if serving {
		return serve(sys, tr, self, cfg)
	}
	return workload(sys, clk, self, group, cfg, calls, interval)
}

// serve runs one group member until SIGINT/SIGTERM.
func serve(sys *mrpc.System, tr *nettcp.Transport, self mrpc.ProcID, cfg mrpc.Config) error {
	if _, err := sys.AddServer(self, cfg, func() mrpc.App { return newApp() }); err != nil {
		return err
	}
	fmt.Printf("mrpcnode: member %d serving on %s (%s)\n", self, tr.Addr(self), cfg)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("mrpcnode: member %d stopping\n", self)
	return nil
}

// workload issues a mixed wait/no-wait call stream: two synchronous calls
// (echo, whose reply is verified, then a counter add), then one
// asynchronous echo collected later. Every call must return StatusOK.
func workload(sys *mrpc.System, clk clock.Clock, self mrpc.ProcID,
	members []mrpc.ProcID, cfg mrpc.Config, calls int, interval time.Duration) error {
	n, err := sys.AddClient(self, cfg)
	if err != nil {
		return err
	}
	group := sys.Group(members...)
	ops := newApp() // registered in the same order as the servers: same OpIDs

	type pending struct {
		id   mrpc.CallID
		want byte
	}
	var async []pending
	bad := 0
	for i := 0; i < calls; i++ {
		tag := byte(i + 1)
		switch i % 3 {
		case 0: // synchronous echo, reply checked
			reply, status, err := n.Call(ops.opEcho, []byte{tag}, group)
			if err != nil || status != mrpc.StatusOK || len(reply) != 1 || reply[0] != tag {
				fmt.Fprintf(os.Stderr, "mrpcnode: call %d: status %v reply %v err %v\n",
					i, status, reply, err)
				bad++
			}
		case 1: // synchronous counter add
			args := stub.NewWriter(8).PutInt64(1).Bytes()
			if _, status, err := n.Call(ops.opAdd, args, group); err != nil || status != mrpc.StatusOK {
				fmt.Fprintf(os.Stderr, "mrpcnode: call %d: status %v err %v\n", i, status, err)
				bad++
			}
		case 2: // no-wait echo, collected after the issue loop
			id, err := n.CallAsync(ops.opEcho, []byte{tag}, group)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrpcnode: call %d: %v\n", i, err)
				bad++
				break
			}
			async = append(async, pending{id: id, want: tag})
		}
		if interval > 0 {
			clk.Sleep(interval)
		}
	}
	for _, p := range async {
		reply, status, err := n.Collect(p.id)
		if err != nil || status != mrpc.StatusOK || len(reply) != 1 || reply[0] != p.want {
			fmt.Fprintf(os.Stderr, "mrpcnode: collect %d: status %v reply %v err %v\n",
				p.id, status, reply, err)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d calls failed", bad, calls)
	}
	fmt.Printf("mrpcnode: client %d: %d calls OK (%d collected asynchronously)\n",
		self, calls, len(async))
	return nil
}

// parsePeers parses "1=127.0.0.1:7101,2=host:port,..." into a peer map.
func parsePeers(spec string) (map[mrpc.ProcID]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-peers is required (id=host:port,...)")
	}
	peers := make(map[mrpc.ProcID]string)
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-peers: %q is not id=host:port", part)
		}
		v, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("-peers: bad id %q: %w", id, err)
		}
		if _, dup := peers[mrpc.ProcID(v)]; dup {
			return nil, fmt.Errorf("-peers: id %d listed twice", v)
		}
		peers[mrpc.ProcID(v)] = addr
	}
	return peers, nil
}

// parseIDs parses "1,2,3" into a sorted id list.
func parseIDs(spec string) ([]mrpc.ProcID, error) {
	var ids []mrpc.ProcID
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad id %q: %w", part, err)
		}
		ids = append(ids, mrpc.ProcID(v))
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty id list")
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
