package main

import (
	"strings"
	"testing"
)

// TestTransitionsGolden pins the -transitions output the way the config
// tests pin the -enumerate/198 count: the 198 semantic services crossed
// with the dissemination dimension (flat, tree(2), tree(3) — D17) give 594
// configurations and 352836 ordered pairs, split into 5130 live, 190890
// drain, and 156816 illegal transitions (exactly the pairs that add or
// remove atomic execution, times the 9 dissemination combinations).
func TestTransitionsGolden(t *testing.T) {
	out := transitionMatrix()
	for _, want := range []string{
		"dimensions: 198 semantic services x dissemination {flat, tree(2), tree(3)}",
		"configurations: 594",
		"ordered pairs:  352836",
		"live:             5130",
		"drain:          190890",
		"illegal:        156816",
		"exactly-once -> replicated-service   drain changed: [ordering execution acceptance]",
		"exactly-once -> at-least-once        live  changed: [unique]",
		"exactly-once -> at-most-once         illegal",
		"exactly-once flat -> tree(3)         drain changed: [dissemination]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transition matrix output missing %q:\n%s", want, out)
		}
	}
}
