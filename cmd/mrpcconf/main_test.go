package main

import (
	"strings"
	"testing"
)

// TestTransitionsGolden pins the -transitions output the way the config
// tests pin the -enumerate/198 count: 198 configurations give 39204 ordered
// pairs, split into 1710 live, 20070 drain, and 17424 illegal transitions
// (exactly the pairs that add or remove atomic execution).
func TestTransitionsGolden(t *testing.T) {
	out := transitionMatrix()
	for _, want := range []string{
		"configurations: 198",
		"ordered pairs:  39204",
		"live:            1710",
		"drain:          20070",
		"illegal:        17424",
		"exactly-once -> replicated-service   drain changed: [ordering execution acceptance]",
		"exactly-once -> at-least-once        live  changed: [unique]",
		"exactly-once -> at-most-once         illegal",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transition matrix output missing %q:\n%s", want, out)
		}
	}
}
