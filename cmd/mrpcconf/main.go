// Command mrpcconf inspects the configuration space of the group RPC
// service: the semantic property hierarchy (Figure 2), the structure of a
// configured composite protocol (Figure 3), and the micro-protocol
// dependency graph with its enumeration of legal configurations
// (Figure 4 / the paper's §5 count of 198).
//
// Usage:
//
//	mrpcconf -properties            print Figure 2
//	mrpcconf -registrations         print Figure 3 for a full composite
//	mrpcconf -graph                 print Figure 4 (nodes, edges, choices)
//	mrpcconf -enumerate             count and summarize all legal configs
//	mrpcconf -list                  list every legal configuration
//	mrpcconf -transitions           print the hot-swap transition matrix
//	mrpcconf -profile               run calls and print per-handler costs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/event"
	"mrpc/internal/experiments"
	"mrpc/internal/trace"
)

func main() {
	var (
		properties    = flag.Bool("properties", false, "print the semantic property hierarchy (Figure 2)")
		registrations = flag.Bool("registrations", false, "print a composite protocol's event/handler table (Figure 3)")
		graph         = flag.Bool("graph", false, "print the micro-protocol dependency graph (Figure 4)")
		enumerate     = flag.Bool("enumerate", false, "count the legal configurations (the paper's 198)")
		list          = flag.Bool("list", false, "list every legal configuration")
		transitions   = flag.Bool("transitions", false, "print the live-reconfiguration transition matrix")
		profile       = flag.Bool("profile", false, "run 1000 calls and print per-handler dispatch costs")
		dot           = flag.Bool("dot", false, "emit the Figure 4 dependency graph in Graphviz DOT form")
	)
	flag.Parse()

	if !*properties && !*registrations && !*graph && !*enumerate && !*list && !*transitions && !*profile && !*dot {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*properties, *registrations, *graph, *enumerate, *list, *transitions, *profile, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "mrpcconf:", err)
		os.Exit(1)
	}
}

func run(properties, registrations, graph, enumerate, list, transitions, profile, dot bool) error {
	if properties {
		fmt.Print(experiments.E2Properties())
	}
	if registrations {
		fmt.Print(experiments.E3Registrations())
	}
	if graph {
		printGraph()
	}
	if enumerate {
		fmt.Print(experiments.E4Enumeration())
	}
	if list {
		for i, c := range config.Enumerate() {
			fmt.Printf("%3d  %s  [%s]\n", i+1, c, c.FailureSemantics())
		}
	}
	if transitions {
		fmt.Print(transitionMatrix())
	}
	if profile {
		return runProfile()
	}
	if dot {
		printDot()
	}
	return nil
}

// transitionMatrix summarizes config.PlanTransition over every ordered pair
// of the enumerated configurations — the paper's 198 semantic services
// crossed with the dissemination dimension (flat, tree(2), tree(3); D17) —
// the dynamic companion of the -enumerate count, plus a few named example
// transitions.
func transitionMatrix() string {
	var b strings.Builder
	m := config.EnumerateTransitions()
	fmt.Fprintln(&b, "=== live-reconfiguration transition matrix (ordered pairs of enumerated configs)")
	fmt.Fprintln(&b, "  dimensions: 198 semantic services x dissemination {flat, tree(2), tree(3)}")
	fmt.Fprintf(&b, "  configurations: %d\n", m.Configs)
	fmt.Fprintf(&b, "  ordered pairs:  %d\n", m.Pairs)
	fmt.Fprintf(&b, "  live:           %6d  (swap under the dispatch barrier alone)\n", m.Live)
	fmt.Fprintf(&b, "  drain:          %6d  (in-flight calls complete before the swap)\n", m.Drain)
	fmt.Fprintf(&b, "  illegal:        %6d  (atomicity changes; restart the node instead)\n", m.Illegal)

	tree3 := config.ExactlyOncePreset()
	tree3.Dissemination = config.DissTree
	tree3.TreeFanout = 3
	examples := []struct {
		name     string
		from, to config.Config
	}{
		{"exactly-once -> replicated-service", config.ExactlyOncePreset(), config.ReplicatedService()},
		{"replicated-service -> exactly-once", config.ReplicatedService(), config.ExactlyOncePreset()},
		{"exactly-once -> at-least-once", config.ExactlyOncePreset(), config.AtLeastOncePreset()},
		{"exactly-once -> at-most-once", config.ExactlyOncePreset(), config.AtMostOncePreset()},
		{"exactly-once flat -> tree(3)", config.ExactlyOncePreset(), tree3},
	}
	fmt.Fprintln(&b, "  examples:")
	for _, e := range examples {
		plan, err := config.PlanTransition(e.from, e.to)
		if err != nil {
			fmt.Fprintf(&b, "    %-36s illegal (%v)\n", e.name, err)
			continue
		}
		fmt.Fprintf(&b, "    %-36s %-5s changed: %v\n", e.name, plan.Class, plan.Changed)
	}
	return b.String()
}

// printDot emits Figure 4 as Graphviz DOT: solid edges are requirements,
// dashed red edges exclusions, clustered boxes the choice groups, and the
// shaded nodes the minimal functional set.
func printDot() {
	nodes, groups := config.DependencyGraph()
	fmt.Println("digraph figure4 {")
	fmt.Println("  rankdir=BT;")
	fmt.Println("  node [shape=box, fontname=\"Helvetica\"];")
	inGroup := make(map[string]int)
	for gi, g := range groups {
		for _, m := range g.Members {
			inGroup[m] = gi
		}
	}
	for gi, g := range groups {
		fmt.Printf("  subgraph cluster_%d {\n    label=%q;\n    style=bold;\n", gi, g.Name)
		for _, m := range g.Members {
			fmt.Printf("    %q;\n", m)
		}
		fmt.Println("  }")
	}
	for _, n := range nodes {
		if n.Minimal {
			fmt.Printf("  %q [style=filled, fillcolor=lightgrey];\n", n.Name)
		} else if _, grouped := inGroup[n.Name]; !grouped {
			fmt.Printf("  %q;\n", n.Name)
		}
		for _, req := range n.Requires {
			fmt.Printf("  %q -> %q;\n", n.Name, req)
		}
		for _, ex := range n.Excludes {
			fmt.Printf("  %q -> %q [style=dashed, color=red, label=\"excludes\"];\n", n.Name, ex)
		}
	}
	fmt.Println("}")
}

// runProfile serves 1000 calls through an exactly-once composite with the
// event observer installed, then prints where the dispatch time went.
func runProfile() error {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.Bounded = true
	cfg.TimeBound = 5 * time.Second
	cfg.RetransTimeout = 50 * time.Millisecond
	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	server, err := sys.AddServer(1, cfg, func() mrpc.App { return reg })
	if err != nil {
		return err
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		return err
	}

	prof := trace.NewHandlerProfile()
	observe := func(ev event.Type, handler string, d time.Duration, cancelled bool) {
		prof.Observe(ev, handler, d, cancelled)
	}
	server.Composite().Framework().Bus().SetObserver(observe)
	client.Composite().Framework().Bus().SetObserver(observe)

	group := sys.Group(1)
	for i := 0; i < 1000; i++ {
		if _, status, err := client.Call(echo, []byte("x"), group); err != nil || status != mrpc.StatusOK {
			return fmt.Errorf("profile call %d: %v %v", i, status, err)
		}
	}
	fmt.Println("=== per-handler dispatch profile (1000 exactly-once calls, client+server)")
	fmt.Print(prof.String())
	return nil
}

func printGraph() {
	nodes, groups := config.DependencyGraph()
	fmt.Println("=== Figure 4: micro-protocol dependency graph")
	for _, n := range nodes {
		fmt.Printf("  %-24s", n.Name)
		if n.Minimal {
			fmt.Print(" [minimal set]")
		}
		if len(n.Requires) > 0 {
			fmt.Printf(" requires %v", n.Requires)
		}
		if len(n.Excludes) > 0 {
			fmt.Printf(" excludes %v", n.Excludes)
		}
		fmt.Println()
	}
	fmt.Println("  choice groups (at most one member each):")
	for _, g := range groups {
		req := ""
		if g.Required {
			req = " (exactly one required)"
		}
		fmt.Printf("    %-16s %v%s\n", g.Name, g.Members, req)
	}
}
