// Orphans demonstrates the three orphan-handling options of §4.4.7 with
// the same scripted failure: a client issues a long-running call, crashes
// while the server is executing it (the execution becomes an orphan),
// recovers under a new incarnation, and immediately issues a new call.
//
//   - ignore:             the orphan runs to completion alongside the new
//     call — wasted work and potential interference;
//   - avoid-interference: the new call is admitted only after the orphan
//     drains;
//   - terminate:          the orphan is killed the moment the server hears
//     from the client's new incarnation.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mrpc"
)

const opWork mrpc.OpID = 1

// worker executes opWork for a fixed duration, printing its lifecycle, and
// honours cooperative kill.
type worker struct {
	delay time.Duration
	mu    sync.Mutex
	t0    time.Time
}

func (w *worker) stamp() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.t0.IsZero() {
		w.t0 = time.Now()
	}
	return time.Since(w.t0).Round(time.Millisecond)
}

func (w *worker) Pop(th *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	tag := string(args)
	fmt.Printf("   [%6v] server: %q starts\n", w.stamp(), tag)
	select {
	case <-th.Killed():
		fmt.Printf("   [%6v] server: %q KILLED (orphan terminated)\n", w.stamp(), tag)
		return nil
	case <-time.After(w.delay):
	}
	fmt.Printf("   [%6v] server: %q done\n", w.stamp(), tag)
	return args
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	modes := []struct {
		name   string
		orphan mrpc.Config
	}{
		{"ignore orphans", orphanConfig(mrpc.OrphanIgnore)},
		{"interference avoidance", orphanConfig(mrpc.OrphanAvoidInterference)},
		{"terminate orphan", orphanConfig(mrpc.OrphanTerminate)},
	}
	for _, mode := range modes {
		fmt.Printf("== %s\n", mode.name)
		if err := scenario(mode.orphan); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// orphanConfig is a reliable synchronous at-least-once service with the
// selected orphan-handling property.
func orphanConfig(mode mrpc.OrphanMode) mrpc.Config {
	c := mrpc.AtLeastOnce()
	c.RetransTimeout = 10 * time.Millisecond
	c.Orphan = mode
	return c
}

func scenario(cfg mrpc.Config) error {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	w := &worker{delay: 120 * time.Millisecond}
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return w }); err != nil {
		return err
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		return err
	}
	group := sys.Group(1)

	// 1. The soon-to-be orphan.
	released := make(chan struct{})
	go func() {
		defer close(released)
		_, status, _ := client.Call(opWork, []byte("orphan-call"), group)
		fmt.Printf("   [%6v] client: orphan call returned locally with status %v (client crashed)\n",
			w.stamp(), status)
	}()
	time.Sleep(10 * time.Millisecond) // let the server start executing

	// 2. Client crashes and recovers under a new incarnation.
	fmt.Printf("   [%6v] client: CRASH\n", w.stamp())
	client.Crash()
	<-released
	if err := client.Recover(); err != nil {
		return err
	}
	fmt.Printf("   [%6v] client: recovered (new incarnation)\n", w.stamp())

	// 3. The new incarnation's call.
	t0 := time.Now()
	_, status, err := client.Call(opWork, []byte("new-call"), group)
	if err != nil {
		return err
	}
	fmt.Printf("   [%6v] client: new call finished: status=%v (took %v)\n",
		w.stamp(), status, time.Since(t0).Round(time.Millisecond))

	// 4. Let the orphan drain before tearing the system down.
	time.Sleep(w.delay + 50*time.Millisecond)
	return nil
}
