// Causal-board demonstrates the Causal Order extension: a replicated
// message board where replies-to-messages must never be executed before
// the message they answer, on any replica — even when the network reorders
// them drastically.
//
// Alice posts; Bob polls until he sees Alice's post (the RPC reply carries
// the causal dependency as a vector clock) and then posts an answer. One
// replica receives Alice's traffic over a very slow link, so without
// ordering it would frequently apply Bob's answer before Alice's question.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"mrpc"
)

const (
	opPost mrpc.OpID = 1
	opLast mrpc.OpID = 2
)

// board is one replica: a log of posts plus the latest post by Alice.
type board struct {
	mu    sync.Mutex
	posts []string
	lastA string
}

func (b *board) Pop(_ *mrpc.Thread, op mrpc.OpID, args []byte) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch op {
	case opPost:
		post := string(args)
		b.posts = append(b.posts, post)
		if strings.HasPrefix(post, "alice") {
			b.lastA = post
		}
		return args
	case opLast:
		return []byte(b.lastA)
	default:
		return nil
	}
}

func (b *board) log() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.posts...)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{Seed: 2, MinDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
	})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.Ordering = mrpc.OrderCausal
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll
	fmt.Printf("configuration: %s\n\n", cfg)

	group := sys.Group(1, 2, 3)
	replicas := make([]*board, 0, 3)
	for _, id := range group {
		b := &board{}
		replicas = append(replicas, b)
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return b }); err != nil {
			return err
		}
	}
	alice, err := sys.AddClient(100, cfg)
	if err != nil {
		return err
	}
	bob, err := sys.AddClient(101, cfg)
	if err != nil {
		return err
	}
	// Alice's posts crawl to replica 3; Bob's arrive almost instantly.
	sys.Sim().SetLinkDelay(alice.ID(), 3, 8*time.Millisecond, 12*time.Millisecond)
	sys.Sim().SetLinkDelay(bob.ID(), 3, 100*time.Microsecond, 200*time.Microsecond)

	post := func(c *mrpc.Node, text string) {
		if _, status, err := c.Call(opPost, []byte(text), group); err != nil || status != mrpc.StatusOK {
			log.Fatalf("post %q: %v %v", text, status, err)
		}
	}

	const rounds = 5
	for i := 0; i < rounds; i++ {
		question := fmt.Sprintf("alice: question %d", i)
		post(alice, question)
		// Bob polls until he has seen the question...
		for {
			reply, status, err := bob.Call(opLast, nil, group)
			if err != nil || status != mrpc.StatusOK {
				return fmt.Errorf("poll: %v %v", status, err)
			}
			if string(reply) == question {
				break
			}
		}
		// ...then answers. Causal order guarantees no replica ever shows
		// the answer before the question.
		post(bob, fmt.Sprintf("bob:   answer %d", i))
	}

	time.Sleep(50 * time.Millisecond)
	fmt.Println("replica 3's board (slow link for alice, fast for bob):")
	for _, p := range replicas[2].log() {
		fmt.Printf("  %s\n", p)
	}

	// Verify the invariant on every replica.
	for ri, b := range replicas {
		pos := map[string]int{}
		for i, p := range b.log() {
			pos[p] = i
		}
		for i := 0; i < rounds; i++ {
			q := pos[fmt.Sprintf("alice: question %d", i)]
			a := pos[fmt.Sprintf("bob:   answer %d", i)]
			if a < q {
				return fmt.Errorf("replica %d shows answer %d before its question", ri+1, i)
			}
		}
	}
	fmt.Println("\nevery replica shows each answer after its question: causality held")
	return nil
}
