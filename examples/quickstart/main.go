// Quickstart: a three-member echo group with exactly-once semantics over a
// lossy simulated network. Demonstrates the minimum ceremony: build a
// system, register an operation, add servers and a client, call.
package main

import (
	"fmt"
	"log"
	"time"

	"mrpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A network that loses 10% of messages and delays the rest 0.2–2ms:
	// reliable communication and unique execution are doing real work.
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     1,
			MinDelay: 200 * time.Microsecond,
			MaxDelay: 2 * time.Millisecond,
			LossProb: 0.10,
		},
	})
	defer sys.Stop()

	// The server app: a stub registry with one operation.
	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte {
		return append([]byte("echo: "), args...)
	})

	// Exactly-once group RPC: reliable communication + unique execution.
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 5 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll
	fmt.Printf("configuration: %s\n", cfg)
	fmt.Printf("failure semantics (Figure 1): %s\n\n", cfg.FailureSemantics())

	group := sys.Group(1, 2, 3)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return reg }); err != nil {
			return err
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		return err
	}

	for i := 0; i < 5; i++ {
		payload := fmt.Sprintf("hello %d", i)
		t0 := time.Now()
		reply, status, err := client.Call(echo, []byte(payload), group)
		if err != nil {
			return err
		}
		fmt.Printf("call %d: status=%-4v reply=%-14q latency=%v\n",
			i, status, reply, time.Since(t0).Round(time.Microsecond))
	}

	st := sys.Net().Stats()
	fmt.Printf("\nnetwork: sent=%d delivered=%d lost=%d (loss masked by retransmission)\n",
		st.Sent, st.Delivered, st.Dropped)
	return nil
}
