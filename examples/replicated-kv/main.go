// Replicated-kv builds a fault-tolerant key-value store on the group RPC
// service: three replicas kept identical by the Total Order micro-protocol,
// exactly-once execution under a lossy/duplicating network, and two
// concurrent writers. After the run, all replicas must hold identical
// state even for keys both clients fought over.
//
// It also demonstrates collation: reads use a collation function that
// keeps the reply with the highest version, so a read can be served with
// acceptance-majority instead of ALL.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mrpc"
)

// kvStore is the replica state machine.
type kvStore struct {
	mu   sync.Mutex
	data map[string]string
	ver  map[string]uint64
	ops  []string // applied-operation log, to compare replica histories
}

func newKV() *kvStore {
	return &kvStore{data: make(map[string]string), ver: make(map[string]uint64)}
}

const (
	opPut mrpc.OpID = 1
	opGet mrpc.OpID = 2
)

// Pop implements mrpc.App.
func (kv *kvStore) Pop(_ *mrpc.Thread, op mrpc.OpID, args []byte) []byte {
	r := mrpc.NewReader(args)
	switch op {
	case opPut:
		key, val := r.String(), r.String()
		kv.mu.Lock()
		kv.data[key] = val
		kv.ver[key]++
		v := kv.ver[key]
		kv.ops = append(kv.ops, fmt.Sprintf("put %s=%s", key, val))
		kv.mu.Unlock()
		return mrpc.NewWriter(8).PutUint64(v).Bytes()
	case opGet:
		key := r.String()
		kv.mu.Lock()
		val := kv.data[key]
		v := kv.ver[key]
		kv.mu.Unlock()
		return mrpc.NewWriter(16).PutUint64(v).PutString(val).Bytes()
	default:
		return nil
	}
}

func (kv *kvStore) dump() (map[string]string, []string) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	data := make(map[string]string, len(kv.data))
	for k, v := range kv.data {
		data[k] = v
	}
	return data, append([]string(nil), kv.ops...)
}

// freshestReply keeps the reply with the highest version — the collation
// function for reads.
func freshestReply(accum, reply []byte) []byte {
	if len(accum) == 0 {
		return reply
	}
	if mrpc.NewReader(reply).Uint64() >= mrpc.NewReader(accum).Uint64() {
		return reply
	}
	return accum
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     11,
			MinDelay: 100 * time.Microsecond,
			MaxDelay: 1500 * time.Microsecond,
			LossProb: 0.08,
			DupProb:  0.08,
		},
	})
	defer sys.Stop()

	// Writers: total order so every replica applies the same sequence.
	writeCfg := mrpc.ReplicatedService()
	writeCfg.RetransTimeout = 5 * time.Millisecond
	// Reads: no ordering needed; majority acceptance + freshest-version
	// collation.
	readCfg := mrpc.ExactlyOnce()
	readCfg.RetransTimeout = 5 * time.Millisecond
	readCfg.AcceptanceLimit = 2
	readCfg.Collate = freshestReply

	fmt.Printf("write config: %s\n", writeCfg)
	fmt.Printf("read  config: %s\n\n", readCfg)

	group := sys.Group(1, 2, 3)
	replicas := make([]*kvStore, 0, 3)
	for _, id := range group {
		kv := newKV()
		replicas = append(replicas, kv)
		if _, err := sys.AddServer(id, writeCfg, func() mrpc.App { return kv }); err != nil {
			return err
		}
	}

	w1, err := sys.AddClient(100, writeCfg)
	if err != nil {
		return err
	}
	w2, err := sys.AddClient(101, writeCfg)
	if err != nil {
		return err
	}
	reader, err := sys.AddClient(102, readCfg)
	if err != nil {
		return err
	}

	// Two writers race on the same keys.
	var wg sync.WaitGroup
	put := func(c *mrpc.Node, key, val string) {
		args := mrpc.NewWriter(32).PutString(key).PutString(val).Bytes()
		if _, status, err := c.Call(opPut, args, group); err != nil || status != mrpc.StatusOK {
			log.Fatalf("put %s=%s: %v %v", key, val, status, err)
		}
	}
	for _, w := range []*mrpc.Node{w1, w2} {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				put(w, fmt.Sprintf("k%d", i%4), fmt.Sprintf("from-%d-#%d", w.ID(), i))
			}
		}()
	}
	wg.Wait()

	// Read back through the majority/freshest path.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		args := mrpc.NewWriter(8).PutString(key).Bytes()
		reply, status, err := reader.Call(opGet, args, group)
		if err != nil || status != mrpc.StatusOK {
			return fmt.Errorf("get %s: %v %v", key, status, err)
		}
		r := mrpc.NewReader(reply)
		ver, val := r.Uint64(), r.String()
		fmt.Printf("get %s -> %q (version %d)\n", key, val, ver)
	}

	// All replicas must have applied the identical operation sequence.
	time.Sleep(50 * time.Millisecond)
	_, ops0 := replicas[0].dump()
	for i, kv := range replicas[1:] {
		_, ops := kv.dump()
		if len(ops) != len(ops0) {
			return fmt.Errorf("replica %d applied %d ops, replica 1 applied %d", i+2, len(ops), len(ops0))
		}
		for j := range ops {
			if ops[j] != ops0[j] {
				return fmt.Errorf("replica %d diverged at op %d: %q vs %q", i+2, j, ops[j], ops0[j])
			}
		}
	}
	fmt.Printf("\nall %d replicas applied the identical %d-operation sequence (total order held)\n",
		len(replicas), len(ops0))
	st := sys.Net().Stats()
	fmt.Printf("network: sent=%d delivered=%d lost=%d duplicated=%d\n",
		st.Sent, st.Delivered, st.Dropped, st.Duplicated)
	return nil
}
