// Readone reproduces the paper's §5 example application: a group RPC
// configured for quick response to read-only requests — "at least once"
// semantics, acceptance one, synchronous calls, bounded termination, and
// reliability implemented in the RPC layer.
//
// Five replicas serve a read-only catalog; their links have very different
// latencies. Acceptance-1 returns as soon as the fastest replica answers;
// the same workload under acceptance-ALL shows what the configuration
// saves. Finally the time bound is demonstrated: when every replica is
// partitioned away, the call returns TIMEOUT at the bound instead of
// hanging.
package main

import (
	"fmt"
	"log"
	"time"

	"mrpc"
)

const catalogSize = 64

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newCatalog() *mrpc.Registry {
	reg := mrpc.NewRegistry()
	reg.Register("lookup", func(_ *mrpc.Thread, args []byte) []byte {
		key := mrpc.NewReader(args).Uint32()
		val := fmt.Sprintf("item-%d", key%catalogSize)
		return mrpc.NewWriter(16).PutString(val).Bytes()
	})
	return reg
}

func run() error {
	sys := mrpc.NewSystem(mrpc.SystemOptions{Net: mrpc.NetParams{Seed: 3}})
	defer sys.Stop()

	// The paper's §5 composite: RPC Main || Synchronous Call || Reliable
	// Communication || Bounded Termination(1.0) || Collation(id) ||
	// Acceptance(1).
	cfg := mrpc.ReadOne()
	cfg.TimeBound = 250 * time.Millisecond
	cfg.RetransTimeout = 50 * time.Millisecond
	fmt.Printf("configuration (§5): %s\n\n", cfg)

	reg := newCatalog()
	lookup, _ := reg.Op("lookup")
	group := sys.Group(1, 2, 3, 4, 5)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return reg }); err != nil {
			return err
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		return err
	}
	// Replica i is (2i+1)ms away: replica 1 is local-ish, replica 5 remote.
	for i, id := range group {
		d := time.Duration(2*i+1) * time.Millisecond
		sys.Sim().SetLinkDelay(client.ID(), id, d, d)
	}

	measure := func(label string) time.Duration {
		var total time.Duration
		const calls = 20
		for i := 0; i < calls; i++ {
			args := mrpc.NewWriter(4).PutUint32(uint32(i)).Bytes()
			t0 := time.Now()
			_, status, err := client.Call(lookup, args, group)
			if err != nil || status != mrpc.StatusOK {
				log.Fatalf("%s: call %d failed: %v %v", label, i, status, err)
			}
			total += time.Since(t0)
		}
		mean := total / calls
		fmt.Printf("%-22s mean latency %v\n", label, mean.Round(time.Microsecond))
		return mean
	}

	one := measure("acceptance ONE (§5):")

	cfgAll := cfg
	cfgAll.AcceptanceLimit = mrpc.AcceptAll
	clientAll, err := sys.AddClient(101, cfgAll)
	if err != nil {
		return err
	}
	for i, id := range group {
		d := time.Duration(2*i+1) * time.Millisecond
		sys.Sim().SetLinkDelay(clientAll.ID(), id, d, d)
	}
	client = clientAll
	all := measure("acceptance ALL:")
	fmt.Printf("\nread-one wins by %.1fx on this replica spread\n\n", float64(all)/float64(one))

	// Bounded termination: partition the client from every replica; the
	// call must come back at ~the bound with status TIMEOUT.
	client, err = sys.AddClient(102, cfg)
	if err != nil {
		return err
	}
	for _, id := range group {
		sys.Sim().Partition(client.ID(), id, true)
	}
	args := mrpc.NewWriter(4).PutUint32(0).Bytes()
	t0 := time.Now()
	_, status, err := client.Call(lookup, args, group)
	if err != nil {
		return err
	}
	fmt.Printf("partitioned call: status=%v after %v (bound %v) — bounded termination\n",
		status, time.Since(t0).Round(time.Millisecond), cfg.TimeBound)
	return nil
}
