package mrpc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrpc"
	"mrpc/internal/config"
)

// ckApp is a checkpointable echo/counter app for configurations that
// require atomic execution.
type ckApp struct {
	mu  sync.Mutex
	n   int64
	log []string
}

func (a *ckApp) Pop(_ *mrpc.Thread, _ mrpc.OpID, args []byte) []byte {
	a.mu.Lock()
	a.n++
	a.log = append(a.log, string(args))
	a.mu.Unlock()
	return args
}

func (a *ckApp) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return mrpc.NewWriter(8).PutInt64(a.n).Bytes()
}

func (a *ckApp) Restore(data []byte) error {
	r := mrpc.NewReader(data)
	n := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	a.n = n
	a.mu.Unlock()
	return nil
}

func (a *ckApp) executed() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.log...)
}

// TestAllConfigurationsServeACall boots every one of the 198 legal
// configurations on a perfect network and serves one call through it —
// the breadth guarantee behind "a single configurable system".
func TestAllConfigurationsServeACall(t *testing.T) {
	if testing.Short() {
		t.Skip("boots 198 systems")
	}
	for i, cfg := range config.Enumerate() {
		cfg := cfg
		t.Run(fmt.Sprintf("%03d_%s", i, cfg), func(t *testing.T) {
			t.Parallel()
			cfg.RetransTimeout = 10 * time.Millisecond
			cfg.TimeBound = 5 * time.Second

			sys := mrpc.NewSystem(mrpc.SystemOptions{})
			defer sys.Stop()
			if _, err := sys.AddServer(1, cfg, func() mrpc.App { return &ckApp{} }); err != nil {
				t.Fatal(err)
			}
			client, err := sys.AddClient(100, cfg)
			if err != nil {
				t.Fatal(err)
			}
			group := sys.Group(1)

			if cfg.Call == config.CallAsynchronous {
				id, err := client.CallAsync(1, []byte("x"), group)
				if err != nil {
					t.Fatal(err)
				}
				reply, status, err := client.Collect(id)
				if err != nil || status != mrpc.StatusOK || string(reply) != "x" {
					t.Fatalf("async: %v %v %q", status, err, reply)
				}
				return
			}
			reply, status, err := client.Call(1, []byte("x"), group)
			if err != nil || status != mrpc.StatusOK || string(reply) != "x" {
				t.Fatalf("sync: %v %v %q", status, err, reply)
			}
		})
	}
}

func TestAsyncCallFacade(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.Call = mrpc.CallAsynchronous
	cfg.RetransTimeout = 10 * time.Millisecond
	app := &ckApp{}
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1)

	// Pipeline several calls, collect out of order.
	var ids []mrpc.CallID
	for i := 0; i < 5; i++ {
		id, err := client.CallAsync(1, []byte{byte('a' + i)}, group)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := len(ids) - 1; i >= 0; i-- {
		reply, status, err := client.Collect(ids[i])
		if err != nil || status != mrpc.StatusOK {
			t.Fatalf("collect %d: %v %v", i, status, err)
		}
		if string(reply) != string([]byte{byte('a' + i)}) {
			t.Fatalf("collect %d: reply %q", i, reply)
		}
	}
}

func TestCallAsyncRejectedOnSyncConfig(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	client, err := sys.AddClient(100, mrpc.ExactlyOnce())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.CallAsync(1, nil, sys.Group(1)); err == nil {
		t.Fatal("CallAsync accepted on a synchronous configuration")
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	if _, err := sys.AddClient(1, mrpc.ExactlyOnce()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddClient(1, mrpc.ExactlyOnce()); err == nil {
		t.Fatal("duplicate node id accepted")
	}
}

func TestInvalidConfigRejectedAtAddNode(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	bad := mrpc.ExactlyOnce()
	bad.Ordering = mrpc.OrderTotal
	bad.Reliable = false
	if _, err := sys.AddClient(1, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAddServerRequiresApp(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	if _, err := sys.AddServer(1, mrpc.ExactlyOnce(), nil); err == nil {
		t.Fatal("AddServer accepted a nil app factory")
	}
}

func TestCallOnDownNode(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	client, err := sys.AddClient(100, mrpc.ExactlyOnce())
	if err != nil {
		t.Fatal(err)
	}
	client.Crash()
	if _, status, err := client.Call(1, nil, sys.Group(1)); err == nil || status != mrpc.StatusAborted {
		t.Fatalf("call on down node: %v %v", status, err)
	}
	if err := client.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := client.Recover(); err == nil {
		t.Fatal("Recover on an up node accepted")
	}
}

func TestServerCrashRecoverServesAgain(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 5 * time.Millisecond
	server, err := sys.AddServer(1, cfg, func() mrpc.App { return &ckApp{} })
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1)

	if _, status, _ := client.Call(1, []byte("a"), group); status != mrpc.StatusOK {
		t.Fatalf("pre-crash call: %v", status)
	}

	server.Crash()
	if !server.Down() {
		t.Fatal("server not down")
	}
	// A call issued while the server is down completes after recovery via
	// retransmission.
	done := make(chan mrpc.Status, 1)
	go func() {
		_, status, _ := client.Call(1, []byte("b"), group)
		done <- status
	}()
	time.Sleep(20 * time.Millisecond)
	if err := server.Recover(); err != nil {
		t.Fatal(err)
	}
	select {
	case status := <-done:
		if status != mrpc.StatusOK {
			t.Fatalf("post-recovery call: %v", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed after server recovery")
	}
}

func TestMembershipOracleCompletesCallsOnFailure(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{Membership: mrpc.MembershipOracle})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll
	group := sys.Group(1, 2)
	var servers []*mrpc.Node
	for _, id := range group {
		s, err := sys.AddServer(id, cfg, func() mrpc.App { return &ckApp{} })
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Crash server 2 mid-call: the oracle's failure notification must
	// complete the accept-ALL call with server 1's reply alone.
	servers[1].Crash()
	_, status, err := client.Call(1, []byte("x"), group)
	if err != nil || status != mrpc.StatusOK {
		t.Fatalf("call with failed member: %v %v", status, err)
	}
}

func TestMembershipDetectorEndToEnd(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Membership:        mrpc.MembershipDetector,
		HeartbeatInterval: 5 * time.Millisecond,
		SuspectAfter:      25 * time.Millisecond,
	})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll
	group := sys.Group(1, 2)
	var servers []*mrpc.Node
	for _, id := range group {
		s, err := sys.AddServer(id, cfg, func() mrpc.App { return &ckApp{} })
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	servers[1].Crash()
	// The detector needs SuspectAfter of silence to declare the failure;
	// the pending accept-ALL call then completes.
	done := make(chan mrpc.Status, 1)
	go func() {
		_, status, _ := client.Call(1, []byte("x"), group)
		done <- status
	}()
	select {
	case status := <-done:
		if status != mrpc.StatusOK {
			t.Fatalf("status = %v", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("detector never completed the call")
	}
}

func TestFIFOPipelinedAsyncClients(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     3,
			MinDelay: 100 * time.Microsecond,
			MaxDelay: 3 * time.Millisecond, // heavy reordering
		},
	})
	defer sys.Stop()

	cfg := mrpc.ExactlyOnce()
	cfg.Call = mrpc.CallAsynchronous
	cfg.Ordering = mrpc.OrderFIFO
	cfg.RetransTimeout = 10 * time.Millisecond
	app := &ckApp{}
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1)

	// Pipeline 20 calls without waiting: the network reorders them, FIFO
	// Order must still execute them in issue order.
	const n = 20
	var ids []mrpc.CallID
	for i := 0; i < n; i++ {
		id, err := client.CallAsync(1, []byte(fmt.Sprintf("%02d", i)), group)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, status, _ := client.Collect(id); status != mrpc.StatusOK {
			t.Fatalf("collect: %v", status)
		}
	}
	got := app.executed()
	if len(got) != n {
		t.Fatalf("executed %d, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[i] != fmt.Sprintf("%02d", i) {
			t.Fatalf("execution order %v violates FIFO at %d", got, i)
		}
	}
}

func TestEncodeOnWireEndToEnd(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{EncodeOnWire: true},
	})
	defer sys.Stop()
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	app := &ckApp{}
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reply, status, err := client.Call(1, []byte("marshalled"), sys.Group(1))
	if err != nil || status != mrpc.StatusOK || string(reply) != "marshalled" {
		t.Fatalf("wire-encoded call: %v %v %q", status, err, reply)
	}
}

func TestAtMostOnceStateSurvivesCrashViaCheckpoint(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.AtMostOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	server, err := sys.AddServer(1, cfg, func() mrpc.App { return &ckApp{} })
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group := sys.Group(1)

	for i := 0; i < 3; i++ {
		if _, status, _ := client.Call(1, []byte{byte(i)}, group); status != mrpc.StatusOK {
			t.Fatalf("call %d failed", i)
		}
	}
	server.Crash()
	if err := server.Recover(); err != nil {
		t.Fatal(err)
	}
	app := server.App().(*ckApp)
	app.mu.Lock()
	n := app.n
	app.mu.Unlock()
	if n != 3 {
		t.Fatalf("restored counter = %d, want 3 (checkpoint restored into fresh app)", n)
	}
}

func TestNodeAccessors(t *testing.T) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	cfg := mrpc.ExactlyOnce()
	node, err := sys.AddServer(7, cfg, func() mrpc.App { return &ckApp{} })
	if err != nil {
		t.Fatal(err)
	}
	if node.ID() != 7 {
		t.Fatal("ID")
	}
	if node.Config().String() != cfg.String() {
		t.Fatal("Config")
	}
	if node.App() == nil || node.Composite() == nil {
		t.Fatal("App/Composite")
	}
	if _, ok := sys.Node(7); !ok {
		t.Fatal("Node lookup")
	}
	if _, ok := sys.Node(99); ok {
		t.Fatal("phantom node")
	}
	if sys.Store() == nil || sys.Clock() == nil || sys.Sim() == nil {
		t.Fatal("system accessors")
	}
}
