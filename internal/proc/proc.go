// Package proc models processes (sites) and server threads for the
// configurable group RPC service.
//
// The paper's system model has sites that fail by crashing and later
// recover with a new incarnation number, and server threads that the
// Terminate Orphan micro-protocol can kill. Site captures the former;
// Thread the latter. Go cannot asynchronously kill a goroutine, so Thread
// kill is cooperative (deviation D5 in DESIGN.md): the handler executing a
// server procedure receives the Thread and must observe Killed().
package proc

import (
	"sync"

	"mrpc/internal/msg"
)

// Thread represents one server computation (the execution of a remote
// procedure for one call) or, when started with Go, a background goroutine
// owned by the framework. my_thread() of the pseudocode corresponds to the
// Thread value handed to the procedure; kill(thread) to the Kill method.
type Thread struct {
	id     int64
	client msg.ProcID // client whose call this thread serves
	// done is non-nil only for goroutine-backed threads (Go/Threads.Go);
	// it is closed when the thread's function returns. Set before the
	// goroutine starts and never reassigned.
	done chan struct{}

	mu     sync.Mutex
	killed bool
	// kill is created lazily by the first Killed() call: most threads run
	// to completion without anyone selecting on them, so the common case
	// allocates no channel.
	kill chan struct{}
}

// Go runs fn on its own goroutine bound to a fresh detached Thread and
// returns the Thread. The spawner owns the handle: Kill requests cooperative
// termination (fn observes it via Killed/IsKilled) and Done reports exit.
// All framework goroutines outside internal/proc and internal/netsim are
// spawned through Go or Threads.Go — never with a bare go statement — so
// every long-lived goroutine has a handle through which crash injection and
// shutdown paths can reap it (enforced by mrpclint's goroutine-discipline
// rule).
func Go(fn func(*Thread)) *Thread {
	t := &Thread{done: make(chan struct{})}
	go func() {
		defer close(t.done)
		fn(t)
	}()
	return t
}

// Done returns a channel closed when the function of a goroutine-backed
// thread (started with Go or Threads.Go) has returned. It returns nil for
// threads spawned with Spawn, which have no goroutine of their own.
func (t *Thread) Done() <-chan struct{} { return t.done }

// ID returns the thread identifier.
func (t *Thread) ID() int64 { return t.id }

// Client returns the client whose call the thread is executing.
func (t *Thread) Client() msg.ProcID { return t.client }

// Kill requests termination. It is idempotent and non-blocking; the running
// procedure observes it through Killed.
func (t *Thread) Kill() {
	t.mu.Lock()
	if !t.killed {
		t.killed = true
		if t.kill != nil {
			close(t.kill)
		}
	}
	t.mu.Unlock()
}

// Killed returns a channel closed when the thread has been killed. Server
// procedures select on it (or poll IsKilled) at convenient points.
func (t *Thread) Killed() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.kill == nil {
		t.kill = make(chan struct{})
		if t.killed {
			close(t.kill)
		}
	}
	return t.kill
}

// IsKilled reports whether Kill has been called.
func (t *Thread) IsKilled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed
}

// Threads is a registry of live server threads on one site.
type Threads struct {
	mu   sync.Mutex
	next int64
	live map[int64]*Thread
}

// NewThreads returns an empty registry.
func NewThreads() *Threads {
	return &Threads{live: make(map[int64]*Thread)}
}

// Spawn registers a new thread serving a call from client.
func (r *Threads) Spawn(client msg.ProcID) *Thread {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	t := &Thread{id: r.next, client: client}
	r.live[t.id] = t
	return t
}

// Go runs fn on its own goroutine bound to a new registered thread serving
// client, and removes the thread from the registry when fn returns. Unlike
// a bare go statement the goroutine is reaped by KillAll (site crash).
func (r *Threads) Go(client msg.ProcID, fn func(*Thread)) *Thread {
	t := r.Spawn(client)
	t.done = make(chan struct{})
	go func() {
		defer close(t.done)
		defer r.Finish(t)
		fn(t)
	}()
	return t
}

// Finish removes a completed thread from the registry.
func (r *Threads) Finish(t *Thread) {
	r.mu.Lock()
	delete(r.live, t.id)
	r.mu.Unlock()
}

// KillAll kills every live thread and empties the registry; used on site
// crash. It returns the number of threads killed.
func (r *Threads) KillAll() int {
	r.mu.Lock()
	ts := make([]*Thread, 0, len(r.live))
	for _, t := range r.live {
		ts = append(ts, t)
	}
	r.live = make(map[int64]*Thread)
	r.mu.Unlock()
	for _, t := range ts {
		t.Kill()
	}
	return len(ts)
}

// Live returns the number of live threads.
func (r *Threads) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Site tracks the crash/recovery lifecycle of one process. Incarnation
// numbers increase across recoveries; the orphan-handling micro-protocols
// use them to partition calls into generations.
type Site struct {
	id msg.ProcID

	mu  sync.Mutex
	inc msg.Incarnation
	up  bool
}

// NewSite returns an up site with incarnation 1.
func NewSite(id msg.ProcID) *Site {
	return &Site{id: id, inc: 1, up: true}
}

// ID returns the process id.
func (s *Site) ID() msg.ProcID { return s.id }

// Inc returns the current incarnation number.
func (s *Site) Inc() msg.Incarnation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc
}

// Up reports whether the site is up.
func (s *Site) Up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.up
}

// Crash marks the site down. It reports whether the site was up.
func (s *Site) Crash() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	was := s.up
	s.up = false
	return was
}

// Recover marks the site up under a fresh (strictly larger) incarnation and
// returns it.
func (s *Site) Recover() msg.Incarnation {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inc++
	s.up = true
	return s.inc
}
