package proc

import (
	"testing"
	"time"
)

func TestThreadKill(t *testing.T) {
	r := NewThreads()
	th := r.Spawn(7)
	if th.IsKilled() {
		t.Fatal("fresh thread reports killed")
	}
	if th.Client() != 7 {
		t.Fatalf("client = %d", th.Client())
	}
	th.Kill()
	th.Kill() // idempotent
	if !th.IsKilled() {
		t.Fatal("killed thread reports alive")
	}
	select {
	case <-th.Killed():
	case <-time.After(time.Second):
		t.Fatal("Killed channel not closed")
	}
}

func TestThreadsRegistry(t *testing.T) {
	r := NewThreads()
	t1 := r.Spawn(1)
	t2 := r.Spawn(2)
	if t1.ID() == t2.ID() {
		t.Fatal("thread ids collide")
	}
	if r.Live() != 2 {
		t.Fatalf("live = %d, want 2", r.Live())
	}
	r.Finish(t1)
	r.Finish(t1) // idempotent
	if r.Live() != 1 {
		t.Fatalf("live = %d, want 1", r.Live())
	}
}

func TestKillAll(t *testing.T) {
	r := NewThreads()
	ths := []*Thread{r.Spawn(1), r.Spawn(2), r.Spawn(3)}
	if n := r.KillAll(); n != 3 {
		t.Fatalf("KillAll = %d, want 3", n)
	}
	for i, th := range ths {
		if !th.IsKilled() {
			t.Fatalf("thread %d not killed", i)
		}
	}
	if r.Live() != 0 {
		t.Fatalf("live = %d after KillAll", r.Live())
	}
	if n := r.KillAll(); n != 0 {
		t.Fatalf("second KillAll = %d, want 0", n)
	}
}

func TestSiteLifecycle(t *testing.T) {
	s := NewSite(9)
	if s.ID() != 9 || !s.Up() || s.Inc() != 1 {
		t.Fatalf("fresh site: id=%d up=%t inc=%d", s.ID(), s.Up(), s.Inc())
	}
	if !s.Crash() {
		t.Fatal("Crash on up site returned false")
	}
	if s.Crash() {
		t.Fatal("Crash on down site returned true")
	}
	if s.Up() {
		t.Fatal("site up after crash")
	}
	if inc := s.Recover(); inc != 2 {
		t.Fatalf("recover inc = %d, want 2", inc)
	}
	if !s.Up() || s.Inc() != 2 {
		t.Fatal("site state wrong after recovery")
	}
	s.Crash()
	if inc := s.Recover(); inc != 3 {
		t.Fatalf("second recovery inc = %d, want 3 (strictly increasing)", inc)
	}
}
