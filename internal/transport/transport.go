// Package transport defines the seam between the composite-protocol
// facade and the communication substrate beneath it — the "Net" protocol
// of the paper's stack, reduced to the operations the micro-protocols and
// the system lifecycle actually use.
//
// The paper's central claim is that group RPC semantics are composed from
// micro-protocols independent of the substrate underneath; this package is
// where that independence is enforced in the type system. Two
// implementations exist: internal/netsim, the deterministic in-process
// simulator (fault injection, seeded replay — the conformance harness's
// twin), and internal/nettcp, a real TCP (TLS-optional) transport carrying
// the same length-framed wire encoding between OS processes. The facade
// (package mrpc) holds only these interfaces; simulator-only controls
// (Partition, SetLinkDelay, Params) are reached through the explicit
// System.Sim() escape hatch, so code that needs the simulator says so.
//
// The substrate contract is deliberately weak — unreliable, unordered,
// uncounted: a transport may drop, duplicate, delay or reorder frames
// freely. Reliability, ordering and termination are the micro-protocols'
// job; that is what makes a lossy socket and a seeded simulator
// interchangeable under the same composite.
package transport

import "mrpc/internal/msg"

// Handler receives a delivered message. Each arrival is an independent
// trigger: implementations run it on a pooled per-endpoint worker or a
// fresh goroutine, never behind another arrival's blocked handler (a
// blocked handler — serial execution, a semaphore wait — must not delay an
// unrelated arrival, or composites deadlock on their own traffic). The
// message is shared with other recipients of the same send and must be
// treated as read-only (msg.NetMsg.Mutable gives a private copy).
type Handler func(*msg.NetMsg)

// Stats counts transport-level events since the transport was created.
// One struct serves every implementation so the facade can re-export a
// single stats type; counters a substrate cannot observe stay zero (the
// simulator never reconnects, a socket never rolls a seeded fault).
type Stats struct {
	Sent       int64 // frames offered to the transport (per destination)
	Delivered  int64 // frames handed to a delivery handler
	Dropped    int64 // lost: injected omission faults, full queues, write errors
	Duplicated int64 // injected duplications (simulator only)
	Partition  int64 // drops due to partitions (simulator only)
	DownDrops  int64 // drops due to a down endpoint or unknown destination
	Batches    int64 // OpBatch frames offered (admitted and counted as one unit)
	Reconnects int64 // connections (re)established after a loss (nettcp only)
	Reordered  int64 // messages delayed by a reordering storm window (simulator only)
	Spikes     int64 // deliveries that took a profile latency spike (simulator only)
	GrayDelays int64 // messages delayed by a gray-slow endpoint (simulator only)
	FlapCycles int64 // completed partition flap cycles (simulator only)
}

// EndpointStats counts one endpoint's traffic. Egress is the number of
// frames the endpoint offered toward OTHER processes — self-deliveries are
// excluded, since a loopback push costs the sender nothing on a real NIC —
// counted at admission, before faults or socket errors, so it measures
// what the sender pays, not what the network lets through. Ingress is the
// number of frames actually handed to the endpoint's handler. The
// dissemination work (D17) keys its O(k)-egress assertion on these.
type EndpointStats struct {
	Egress  int64
	Ingress int64
}

// Endpoint is one process's attachment point: the x-kernel-style push
// operations used by the micro-protocols plus the lifecycle controls the
// facade drives on crash and recovery. core.Transport (Push/Multicast) is
// a subset of this interface, so an Endpoint plugs directly beneath the
// flush queue and the disseminator.
type Endpoint interface {
	// ID returns the endpoint's process id.
	ID() msg.ProcID
	// Push sends m to a single destination (Net.push of the paper). The
	// message is frozen, not cloned: the caller and every recipient share
	// one read-only body, and the caller must not mutate m afterwards.
	Push(to msg.ProcID, m *msg.NetMsg)
	// Multicast sends m to every member of the group, including the
	// sender's own process when it is a member (Net.push(server_group,
	// msg)). The message is encoded at most once; every destination
	// shares the frozen body or the immutable wire bytes.
	Multicast(group msg.Group, m *msg.NetMsg)
	// SetHandler replaces the delivery handler (used on process recovery,
	// when a fresh composite protocol instance takes over the endpoint).
	SetHandler(h Handler)
	// SetUp marks the endpoint up or down. A down endpoint neither sends
	// nor receives — frames toward it are dropped at delivery time —
	// modelling a crashed site.
	SetUp(up bool)
	// Up reports whether the endpoint is up.
	Up() bool
	// Stats returns a snapshot of the endpoint's traffic counters.
	Stats() EndpointStats
}

// Transport is the communication substrate: a factory of endpoints plus
// whole-substrate lifecycle. Implementations must allow multiple local
// endpoints (the simulator hosts a whole system; the TCP transport hosts
// every node of an in-process test over real loopback sockets, and exactly
// one endpoint in a production process).
type Transport interface {
	// Attach connects process id with h as its delivery handler (h may be
	// nil until SetHandler). Attaching an id twice is an error.
	Attach(id msg.ProcID, h Handler) (Endpoint, error)
	// Stats returns a snapshot of the transport counters.
	Stats() Stats
	// Quiesce waits until no locally observable delivery work remains in
	// flight: scheduled simulator deliveries, queued outbound frames,
	// running handlers. It cannot speak for remote processes — a frame
	// written to a socket is "done" even though the peer has yet to read
	// it — so cross-process callers poll protocol state on top.
	Quiesce()
	// Stop shuts the transport down: further sends are silently
	// discarded, in-flight deliveries finish, workers are retired.
	Stop()
}
