// Package stub provides the client/server stub layer the paper assumes
// above gRPC: an operation registry that dispatches incoming calls to
// registered procedures, and argument marshalling helpers. From gRPC's
// perspective arguments remain one untyped byte field (§4.1); this package
// is where typed values are packed into and out of it.
package stub

import (
	"fmt"
	"sort"
	"sync"

	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// Handler executes one registered operation. th is the killable thread
// token (nil for locally dispatched test calls); long-running handlers
// should poll th.IsKilled() at convenient points.
type Handler func(th *proc.Thread, args []byte) []byte

// Registry maps operation ids to handlers; it implements core.Server.
type Registry struct {
	mu       sync.RWMutex
	handlers map[msg.OpID]Handler
	names    map[msg.OpID]string
	byName   map[string]msg.OpID
	nextOp   msg.OpID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		handlers: make(map[msg.OpID]Handler),
		names:    make(map[msg.OpID]string),
		byName:   make(map[string]msg.OpID),
		nextOp:   1,
	}
}

// Register adds a named operation and returns its id. Registering the same
// name twice returns the existing id with the handler replaced.
func (r *Registry) Register(name string, h Handler) msg.OpID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if op, ok := r.byName[name]; ok {
		r.handlers[op] = h
		return op
	}
	op := r.nextOp
	r.nextOp++
	r.handlers[op] = h
	r.names[op] = name
	r.byName[name] = op
	return op
}

// RegisterAt adds a named operation under a caller-chosen id (for stable
// wire contracts). It fails if the id or name is taken by another op.
func (r *Registry) RegisterAt(op msg.OpID, name string, h Handler) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.names[op]; ok && existing != name {
		return fmt.Errorf("stub: op %d already registered as %q", op, existing)
	}
	if existing, ok := r.byName[name]; ok && existing != op {
		return fmt.Errorf("stub: name %q already registered as op %d", name, existing)
	}
	r.handlers[op] = h
	r.names[op] = name
	r.byName[name] = op
	if op >= r.nextOp {
		r.nextOp = op + 1
	}
	return nil
}

// Op returns the id registered for name.
func (r *Registry) Op(name string) (msg.OpID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.byName[name]
	return op, ok
}

// Name returns the name registered for op.
func (r *Registry) Name(op msg.OpID) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.names[op]
	return n, ok
}

// Names returns all registered operation names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Pop implements core.Server: it dispatches the call to the registered
// handler. An unknown operation returns an empty result (the RPC layer has
// no error channel for it, as in the paper; applications encode their own
// status in the result bytes — see Writer/Reader).
func (r *Registry) Pop(th *proc.Thread, op msg.OpID, args []byte) []byte {
	r.mu.RLock()
	h, ok := r.handlers[op]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	return h(th, args)
}
