package stub

import (
	"testing"

	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

func TestRegisterAndDispatch(t *testing.T) {
	r := NewRegistry()
	op := r.Register("double", func(_ *proc.Thread, args []byte) []byte {
		return append(args, args...)
	})
	got := r.Pop(nil, op, []byte("ab"))
	if string(got) != "abab" {
		t.Fatalf("result = %q", got)
	}
}

func TestRegisterSameNameReplacesHandler(t *testing.T) {
	r := NewRegistry()
	op1 := r.Register("f", func(_ *proc.Thread, _ []byte) []byte { return []byte("v1") })
	op2 := r.Register("f", func(_ *proc.Thread, _ []byte) []byte { return []byte("v2") })
	if op1 != op2 {
		t.Fatalf("re-registration changed op id: %d vs %d", op1, op2)
	}
	if got := r.Pop(nil, op1, nil); string(got) != "v2" {
		t.Fatalf("result = %q, want v2", got)
	}
}

func TestRegisterAt(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterAt(100, "pinned", func(_ *proc.Thread, _ []byte) []byte { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterAt(100, "other", nil); err == nil {
		t.Fatal("op id reuse with a different name accepted")
	}
	if err := r.RegisterAt(101, "pinned", nil); err == nil {
		t.Fatal("name reuse with a different op id accepted")
	}
	// Auto-assigned ids must not collide with pinned ones.
	auto := r.Register("auto", func(_ *proc.Thread, _ []byte) []byte { return nil })
	if auto == 100 {
		t.Fatal("auto-assigned id collided with pinned id")
	}
}

func TestLookups(t *testing.T) {
	r := NewRegistry()
	op := r.Register("x", func(_ *proc.Thread, _ []byte) []byte { return nil })
	if got, ok := r.Op("x"); !ok || got != op {
		t.Fatal("Op lookup failed")
	}
	if name, ok := r.Name(op); !ok || name != "x" {
		t.Fatal("Name lookup failed")
	}
	if _, ok := r.Op("missing"); ok {
		t.Fatal("Op lookup of missing name succeeded")
	}
	r.Register("a", nil)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "x" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestUnknownOpReturnsNil(t *testing.T) {
	r := NewRegistry()
	if got := r.Pop(nil, msg.OpID(999), []byte("x")); got != nil {
		t.Fatalf("unknown op returned %q", got)
	}
}
