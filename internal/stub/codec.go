package stub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Writer packs typed values into the untyped argument field of an RPC.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the packed buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// PutUint64 appends an unsigned 64-bit integer.
func (w *Writer) PutUint64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// PutInt64 appends a signed 64-bit integer.
func (w *Writer) PutInt64(v int64) *Writer { return w.PutUint64(uint64(v)) }

// PutUint32 appends an unsigned 32-bit integer.
func (w *Writer) PutUint32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// PutFloat64 appends a float64.
func (w *Writer) PutFloat64(v float64) *Writer {
	return w.PutUint64(math.Float64bits(v))
}

// PutBool appends a boolean.
func (w *Writer) PutBool(v bool) *Writer {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
	return w
}

// PutString appends a length-prefixed string.
func (w *Writer) PutString(s string) *Writer {
	w.PutUint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// PutBytes appends a length-prefixed byte slice.
func (w *Writer) PutBytes(b []byte) *Writer {
	w.PutUint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// ErrShortBuffer is recorded by a Reader that runs past the end of input.
var ErrShortBuffer = errors.New("stub: short buffer")

// Reader unpacks values written by a Writer. After use check Err: reads
// past the end return zero values and set the error.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrShortBuffer, n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint64 reads an unsigned 64-bit integer.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a signed 64-bit integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Uint32 reads an unsigned 32-bit integer.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Float64 reads a float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice (copied).
func (r *Reader) Bytes() []byte {
	n := r.Uint32()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
