package stub

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.PutUint64(math.MaxUint64).
		PutInt64(-42).
		PutUint32(7).
		PutFloat64(3.5).
		PutBool(true).
		PutBool(false).
		PutString("héllo").
		PutBytes([]byte{0, 1, 2})

	r := NewReader(w.Bytes())
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Fatalf("uint64 = %d", got)
	}
	if got := r.Int64(); got != -42 {
		t.Fatalf("int64 = %d", got)
	}
	if got := r.Uint32(); got != 7 {
		t.Fatalf("uint32 = %d", got)
	}
	if got := r.Float64(); got != 3.5 {
		t.Fatalf("float64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools wrong")
	}
	if got := r.String(); got != "héllo" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("bytes = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.Uint64(); got != 0 {
		t.Fatalf("short read returned %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", r.Err())
	}
	// Error is sticky: further reads return zero values.
	if r.Uint32() != 0 || r.String() != "" || r.Bytes() != nil || r.Bool() {
		t.Fatal("reads after error returned non-zero values")
	}
}

func TestReaderBytesCopies(t *testing.T) {
	w := NewWriter(8)
	w.PutBytes([]byte("abc"))
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes()
	got[0] = 'z'
	if buf[4] == 'z' { // 4-byte length prefix, then payload
		t.Fatal("Reader.Bytes aliases the input buffer")
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(ss []string, ns []int64, fs []float64) bool {
		w := NewWriter(0)
		for _, s := range ss {
			w.PutString(s)
		}
		for _, n := range ns {
			w.PutInt64(n)
		}
		for _, x := range fs {
			w.PutFloat64(x)
		}
		r := NewReader(w.Bytes())
		for _, s := range ss {
			if r.String() != s {
				return false
			}
		}
		for _, n := range ns {
			if r.Int64() != n {
				return false
			}
		}
		for _, x := range fs {
			got := r.Float64()
			if got != x && !(math.IsNaN(got) && math.IsNaN(x)) {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		r := NewReader(data)
		_ = r.Uint64()
		_ = r.String()
		_ = r.Bytes()
		_ = r.Bool()
		_ = r.Uint32()
		_ = r.Float64()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
