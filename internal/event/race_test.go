package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrpc/internal/clock"
)

// TestDeregisterRacesTrigger hammers Deregister/Register from one set of
// goroutines while another set triggers the same event type continuously.
// The copy-on-write handler slice must keep every in-flight Trigger safe
// (it iterates the snapshot it read) — run under -race this is the
// regression test for the lifecycle layer's detach path, which deregisters
// a live protocol's handlers while dispatch is still running on other
// goroutines.
func TestDeregisterRacesTrigger(t *testing.T) {
	b := New(clock.NewReal())
	var fired atomic.Int64

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Trigger(MsgFromNetwork, nil)
				}
			}
		}()
	}

	names := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 500; i++ {
		for _, name := range names {
			if err := b.Register(MsgFromNetwork, name, DefaultPriority, func(*Occurrence) {
				fired.Add(1)
			}); err != nil {
				t.Fatal(err)
			}
		}
		for _, name := range names {
			b.Deregister(MsgFromNetwork, name)
		}
	}
	close(stop)
	wg.Wait()

	// No handler may survive the final deregistration.
	before := fired.Load()
	b.Trigger(MsgFromNetwork, nil)
	if fired.Load() != before {
		t.Fatalf("handler fired after Deregister")
	}
}

// TestTimeoutCancelRacesFiring arms short timeouts and cancels each one at
// the moment it is due, many times over: whichever side wins, the handler
// must run at most once and cancel must never deadlock or race the firing
// path (the lifecycle layer cancels a protocol's pending timers during
// detach while the clock may be delivering them).
func TestTimeoutCancelRacesFiring(t *testing.T) {
	b := New(clock.NewReal())
	for i := 0; i < 300; i++ {
		var runs atomic.Int64
		done := make(chan struct{})
		cancel := b.RegisterTimeout("racer", time.Millisecond, func(*Occurrence) {
			runs.Add(1)
			close(done)
		})

		// Cancel from another goroutine right around the due time.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			cancel()
		}()
		wg.Wait()

		// Give a won race time to deliver, then verify at-most-once.
		select {
		case <-done:
		case <-time.After(5 * time.Millisecond):
		}
		if n := runs.Load(); n > 1 {
			t.Fatalf("timeout handler ran %d times", n)
		}
	}
}

// TestTimeoutCancelAfterFiringIsNoop re-arms a timeout from its own handler
// (the framework's self-re-arming idiom) and then cancels the stale handle:
// cancelling an already-fired timer must not disturb the re-armed one.
func TestTimeoutCancelAfterFiringIsNoop(t *testing.T) {
	b := New(clock.NewReal())
	fired := make(chan struct{}, 2)
	var second func()
	var mu sync.Mutex
	first := b.RegisterTimeout("rearm", time.Millisecond, func(*Occurrence) {
		fired <- struct{}{}
		mu.Lock()
		second = b.RegisterTimeout("rearm", time.Millisecond, func(*Occurrence) {
			fired <- struct{}{}
		})
		mu.Unlock()
	})

	<-fired
	first() // stale: the timer already fired and re-armed
	select {
	case <-fired:
	case <-time.After(200 * time.Millisecond):
		t.Fatal("re-armed timeout did not fire after stale cancel")
	}
	mu.Lock()
	second()
	mu.Unlock()
}
