//go:build !mrpcdebug

package event

import "sync"

// debugPool is a plain sync.Pool in release builds; the mrpcdebug build tag
// swaps in a checking wrapper that poisons pooled occurrences on Put and
// panics on a dirty Get (pooldebug.go).
type debugPool = sync.Pool

func newPool(f func() any) *debugPool { return &debugPool{New: f} }
