//go:build mrpcdebug

package event

import "testing"

func TestOccPoolDebug(t *testing.T) {
	p := newPool(func() any { return new(Occurrence) })
	o := p.Get().(*Occurrence)
	o.Arg = nil
	p.Put(o)
	if o.Arg != poisonedArg {
		t.Fatal("Put did not poison Arg")
	}
	o.Arg = "stale" // use-after-Put
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected dirty-Get panic")
			}
		}()
		checkPoison(o)
	}()

	q := newPool(func() any { return new(Occurrence) })
	o2 := q.Get().(*Occurrence)
	q.Put(o2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected double-Put panic")
		}
	}()
	q.Put(o2)
}
