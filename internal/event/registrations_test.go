package event

import (
	"testing"

	"mrpc/internal/clock"
)

// The composite-protocol structure dump (Figure 3) and every dispatch both
// read the per-event handler slice, so its order must be a pure function of
// the registration history: ascending priority, ties broken by registration
// order — never map iteration order or any other run-dependent source.
func TestRegistrationsDeterministicOrder(t *testing.T) {
	b := New(clock.NewReal())
	nop := func(*Occurrence) {}
	for _, r := range []struct {
		name string
		prio int
	}{
		{"late-low", 5},
		{"first-high", 40},
		{"tie-a", 10},
		{"tie-b", 10},
		{"tie-c", 10},
		{"default", DefaultPriority},
	} {
		if err := b.Register(CallFromUser, r.name, r.prio, nop); err != nil {
			t.Fatal(err)
		}
	}

	want := []string{"late-low", "tie-a", "tie-b", "tie-c", "first-high", "default"}
	assertOrder := func(want []string) {
		t.Helper()
		// Re-snapshot several times: the order must be stable across calls.
		for i := 0; i < 3; i++ {
			rs := b.Registrations()[CallFromUser]
			if len(rs) != len(want) {
				t.Fatalf("got %d registrations, want %d", len(rs), len(want))
			}
			for j, w := range want {
				if rs[j].Name != w {
					got := make([]string, len(rs))
					for k, r := range rs {
						got[k] = r.Name
					}
					t.Fatalf("snapshot %d: order %v, want %v", i, got, want)
				}
			}
			for j := 1; j < len(rs); j++ {
				if rs[j-1].Priority > rs[j].Priority {
					t.Fatalf("snapshot %d: priorities not ascending: %d before %d",
						i, rs[j-1].Priority, rs[j].Priority)
				}
			}
		}
	}
	assertOrder(want)

	// Deregistering from the middle of a tie group must keep the remaining
	// handlers in their original relative order.
	b.Deregister(CallFromUser, "tie-b")
	assertOrder([]string{"late-low", "tie-a", "tie-c", "first-high", "default"})

	// Re-registering a previously removed name appends at the end of its
	// priority tie group (a fresh registration, not a resurrected slot).
	if err := b.Register(CallFromUser, "tie-b", 10, nop); err != nil {
		t.Fatal(err)
	}
	assertOrder([]string{"late-low", "tie-a", "tie-c", "tie-b", "first-high", "default"})
}
