package event

import (
	"testing"
	"time"

	"mrpc/internal/clock"
)

func TestTriggerPriorityOrder(t *testing.T) {
	b := New(clock.NewReal())
	var order []string
	add := func(name string, prio int) {
		if err := b.Register(MsgFromNetwork, name, prio, func(*Occurrence) {
			order = append(order, name)
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("c", 30)
	add("a", 10)
	add("d", DefaultPriority)
	add("b", 20)
	if !b.Trigger(MsgFromNetwork, nil) {
		t.Fatal("Trigger reported cancellation")
	}
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestTriggerTieBreakByRegistration(t *testing.T) {
	b := New(clock.NewReal())
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		if err := b.Register(CallFromUser, name, 5, func(*Occurrence) {
			order = append(order, name)
		}); err != nil {
			t.Fatal(err)
		}
	}
	b.Trigger(CallFromUser, nil)
	if order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("tie-break order %v, want registration order", order)
	}
}

func TestCancelSkipsRemaining(t *testing.T) {
	b := New(clock.NewReal())
	ran := map[string]bool{}
	b.Register(MsgFromNetwork, "one", 1, func(o *Occurrence) { ran["one"] = true })
	b.Register(MsgFromNetwork, "two", 2, func(o *Occurrence) {
		ran["two"] = true
		o.Cancel()
	})
	b.Register(MsgFromNetwork, "three", 3, func(o *Occurrence) { ran["three"] = true })
	if b.Trigger(MsgFromNetwork, nil) {
		t.Fatal("Trigger did not report cancellation")
	}
	if !ran["one"] || !ran["two"] || ran["three"] {
		t.Fatalf("ran = %v, want one+two only", ran)
	}
}

func TestOnCancelCompensationReverseOrder(t *testing.T) {
	b := New(clock.NewReal())
	var cleanups []string
	b.Register(MsgFromNetwork, "a", 1, func(o *Occurrence) {
		o.OnCancel(func(*Occurrence) { cleanups = append(cleanups, "a") })
	})
	b.Register(MsgFromNetwork, "b", 2, func(o *Occurrence) {
		o.OnCancel(func(*Occurrence) { cleanups = append(cleanups, "b") })
	})
	b.Register(MsgFromNetwork, "c", 3, func(o *Occurrence) { o.Cancel() })
	b.Trigger(MsgFromNetwork, nil)
	if len(cleanups) != 2 || cleanups[0] != "b" || cleanups[1] != "a" {
		t.Fatalf("cleanups = %v, want [b a] (reverse order)", cleanups)
	}
}

func TestOnCancelNotRunOnCompletion(t *testing.T) {
	b := New(clock.NewReal())
	ran := false
	b.Register(MsgFromNetwork, "a", 1, func(o *Occurrence) {
		o.OnCancel(func(*Occurrence) { ran = true })
	})
	b.Trigger(MsgFromNetwork, nil)
	if ran {
		t.Fatal("OnCancel ran although the occurrence completed")
	}
}

func TestDeregister(t *testing.T) {
	b := New(clock.NewReal())
	count := 0
	b.Register(Recovery, "h", 1, func(*Occurrence) { count++ })
	b.Trigger(Recovery, nil)
	b.Deregister(Recovery, "h")
	b.Deregister(Recovery, "h") // idempotent
	b.Trigger(Recovery, nil)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	b := New(clock.NewReal())
	if err := b.Register(Recovery, "h", 1, func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Register(Recovery, "h", 2, func(*Occurrence) {}); err == nil {
		t.Fatal("duplicate (event, name) registration accepted")
	}
	// Same name on a different event is fine.
	if err := b.Register(CallFromUser, "h", 1, func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterTimeoutViaRegisterRejected(t *testing.T) {
	b := New(clock.NewReal())
	if err := b.Register(Timeout, "h", 1, func(*Occurrence) {}); err == nil {
		t.Fatal("Register accepted TIMEOUT")
	}
}

func TestTimeoutFiresOnce(t *testing.T) {
	clk := clock.NewSim()
	b := New(clk)
	count := 0
	b.RegisterTimeout("t", 10*time.Millisecond, func(o *Occurrence) {
		if o.Type != Timeout {
			t.Errorf("occurrence type = %v, want TIMEOUT", o.Type)
		}
		count++
	})
	if b.PendingTimeouts() != 1 {
		t.Fatalf("pending = %d, want 1", b.PendingTimeouts())
	}
	clk.Advance(50 * time.Millisecond)
	if count != 1 {
		t.Fatalf("count = %d, want exactly one firing", count)
	}
	if b.PendingTimeouts() != 0 {
		t.Fatalf("pending = %d after firing, want 0", b.PendingTimeouts())
	}
}

func TestTimeoutPeriodicByReRegistration(t *testing.T) {
	clk := clock.NewSim()
	b := New(clk)
	count := 0
	var handler Handler
	handler = func(*Occurrence) {
		count++
		if count < 3 {
			b.RegisterTimeout("t", 10*time.Millisecond, handler)
		}
	}
	b.RegisterTimeout("t", 10*time.Millisecond, handler)
	clk.Advance(time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (periodic by re-registration)", count)
	}
}

func TestTimeoutCancel(t *testing.T) {
	clk := clock.NewSim()
	b := New(clk)
	fired := false
	cancel := b.RegisterTimeout("t", 10*time.Millisecond, func(*Occurrence) { fired = true })
	cancel()
	cancel() // idempotent
	clk.Advance(time.Second)
	if fired {
		t.Fatal("cancelled timeout fired")
	}
	if b.PendingTimeouts() != 0 {
		t.Fatal("cancelled timeout still pending")
	}
}

func TestCloseStopsTimeoutsAndRegistrations(t *testing.T) {
	clk := clock.NewSim()
	b := New(clk)
	fired := false
	b.RegisterTimeout("t", 10*time.Millisecond, func(*Occurrence) { fired = true })
	b.Close()
	b.Close() // idempotent
	clk.Advance(time.Second)
	if fired {
		t.Fatal("timeout fired after Close")
	}
	if err := b.Register(Recovery, "late", 1, func(*Occurrence) {}); err == nil {
		t.Fatal("Register accepted after Close")
	}
	if c := b.RegisterTimeout("late", time.Millisecond, func(*Occurrence) {}); c == nil {
		t.Fatal("RegisterTimeout returned nil cancel after Close")
	}
}

func TestRegistrationsSnapshot(t *testing.T) {
	b := New(clock.NewReal())
	b.Register(MsgFromNetwork, "x", 7, func(*Occurrence) {})
	b.Register(MsgFromNetwork, "y", 3, func(*Occurrence) {})
	regs := b.Registrations()
	rs := regs[MsgFromNetwork]
	if len(rs) != 2 || rs[0].Name != "y" || rs[1].Name != "x" {
		t.Fatalf("registrations = %+v, want [y x] in dispatch order", rs)
	}
	if rs[0].Priority != 3 {
		t.Fatalf("priority = %d, want 3", rs[0].Priority)
	}
}

func TestEventTypeStrings(t *testing.T) {
	cases := map[Type]string{
		CallFromUser:     "CALL_FROM_USER",
		NewRPCCall:       "NEW_RPC_CALL",
		ReplyFromServer:  "REPLY_FROM_SERVER",
		MsgFromNetwork:   "MSG_FROM_NETWORK",
		Recovery:         "RECOVERY",
		MembershipChange: "MEMBERSHIP_CHANGE",
		Timeout:          "TIMEOUT",
		Type(99):         "EVENT(99)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), got, want)
		}
	}
}

func TestTriggerArgDelivery(t *testing.T) {
	b := New(clock.NewReal())
	var got any
	b.Register(NewRPCCall, "h", 1, func(o *Occurrence) { got = o.Arg })
	b.Trigger(NewRPCCall, 42)
	if got != 42 {
		t.Fatalf("arg = %v, want 42", got)
	}
}

func TestObserver(t *testing.T) {
	b := New(clock.NewReal())
	type obs struct {
		ev        Type
		handler   string
		cancelled bool
	}
	var seen []obs
	b.SetObserver(func(ev Type, handler string, _ time.Duration, cancelled bool) {
		seen = append(seen, obs{ev, handler, cancelled})
	})
	b.Register(Recovery, "first", 1, func(*Occurrence) {})
	b.Register(Recovery, "second", 2, func(o *Occurrence) { o.Cancel() })
	b.Register(Recovery, "third", 3, func(*Occurrence) {})
	b.Trigger(Recovery, nil)
	if len(seen) != 2 {
		t.Fatalf("observed %v, want 2 invocations (third skipped)", seen)
	}
	if seen[0].handler != "first" || seen[0].cancelled ||
		seen[1].handler != "second" || !seen[1].cancelled {
		t.Fatalf("observed %v", seen)
	}
	b.SetObserver(nil) // removable
	b.Trigger(Recovery, nil)
	if len(seen) != 2 {
		t.Fatal("observer ran after removal")
	}
}

func TestObserverCoversTimeouts(t *testing.T) {
	clk := clock.NewSim()
	b := New(clk)
	type obs struct {
		ev      Type
		handler string
	}
	var seen []obs
	b.SetObserver(func(ev Type, handler string, _ time.Duration, _ bool) {
		seen = append(seen, obs{ev, handler})
	})
	b.RegisterTimeout("retrans", 10*time.Millisecond, func(*Occurrence) {})
	clk.Advance(50 * time.Millisecond)
	if len(seen) != 1 || seen[0] != (obs{Timeout, "retrans"}) {
		t.Fatalf("observed %v, want one TIMEOUT/retrans invocation", seen)
	}
}

func TestHandlerMayRegisterDuringDispatch(t *testing.T) {
	// A handler registering another handler for the same event must not
	// affect the in-flight dispatch (snapshot semantics) but must take
	// effect for the next trigger.
	b := New(clock.NewReal())
	lateRuns := 0
	b.Register(Recovery, "first", 1, func(*Occurrence) {
		b.Register(Recovery, "late", 2, func(*Occurrence) { lateRuns++ })
	})
	b.Trigger(Recovery, nil)
	if lateRuns != 0 {
		t.Fatal("handler registered mid-dispatch ran in the same occurrence")
	}
	b.Trigger(Recovery, nil)
	if lateRuns != 1 {
		t.Fatalf("lateRuns = %d, want 1", lateRuns)
	}
}
