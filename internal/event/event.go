// Package event implements the event-driven execution model of the
// composite-protocol framework from Hiltunen & Schlichting (TR 94-28).
//
// Micro-protocols are collections of event handlers registered with a Bus.
// When an event is triggered, all handlers registered for it run
// sequentially on the triggering goroutine, in ascending priority order
// (ties broken by registration order). A handler may cancel the occurrence,
// skipping the remaining handlers — the framework's cancel_event().
//
// TIMEOUT is special, exactly as in the paper: a handler registered for it
// runs once after the given interval and is then automatically deregistered;
// periodic behaviour is obtained by re-registering from within the handler.
package event

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mrpc/internal/clock"
)

// Type identifies an event. The set mirrors §4.3 of the paper.
type Type int

// Event types used by the gRPC composite protocol.
const (
	CallFromUser Type = iota + 1
	NewRPCCall
	ReplyFromServer
	MsgFromNetwork
	Recovery
	MembershipChange
	Timeout
)

var typeNames = map[Type]string{
	CallFromUser:     "CALL_FROM_USER",
	NewRPCCall:       "NEW_RPC_CALL",
	ReplyFromServer:  "REPLY_FROM_SERVER",
	MsgFromNetwork:   "MSG_FROM_NETWORK",
	Recovery:         "RECOVERY",
	MembershipChange: "MEMBERSHIP_CHANGE",
	Timeout:          "TIMEOUT",
}

// String returns the paper's name for the event type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("EVENT(%d)", int(t))
}

// DefaultPriority is assigned when a micro-protocol omits the priority
// parameter; per the paper it is the lowest priority (handlers run last).
const DefaultPriority = 1 << 20

// Occurrence is one triggering of an event, passed to every handler.
type Occurrence struct {
	// Type is the event that occurred.
	Type Type
	// Arg carries the trigger's argument (a *msg.NetMsg, *msg.UserMsg,
	// call id, etc. depending on Type).
	Arg any

	cancelled bool
	cleanups  []func(*Occurrence)
}

// occPool recycles occurrences (and their cleanup slices) across triggers:
// dispatch is the hottest path in the composite, and an occurrence never
// outlives its Trigger call — handlers receive it synchronously and the
// compensation closures run before Trigger returns.
var occPool = newPool(func() any { return new(Occurrence) })

func getOcc(t Type, arg any) *Occurrence {
	o := occPool.Get().(*Occurrence)
	o.Type, o.Arg, o.cancelled = t, arg, false
	return o
}

// putOcc takes ownership of a finished occurrence and recycles it.
//
//lint:owns o
func putOcc(o *Occurrence) {
	o.Arg = nil
	for i := range o.cleanups {
		o.cleanups[i] = nil // do not retain compensation closures
	}
	o.cleanups = o.cleanups[:0]
	occPool.Put(o)
}

// Cancel marks the occurrence cancelled: the remaining handlers registered
// for this event are skipped. This is the framework's cancel_event().
func (o *Occurrence) Cancel() { o.cancelled = true }

// Cancelled reports whether a handler cancelled the occurrence.
func (o *Occurrence) Cancelled() bool { return o.cancelled }

// OnCancel registers a compensation to run (in reverse registration order)
// if a later handler cancels this occurrence. Handlers that acquire
// resources or update counters use it so that cancellation by a
// higher-numbered-priority handler does not leak state — a hazard the
// paper's pseudocode leaves to inspection (deviation D6 in DESIGN.md).
// The compensation receives the occurrence it was registered on, so
// hot-path handlers can register one long-lived callback that reads its
// context from o.Arg instead of allocating a fresh capturing closure per
// event.
func (o *Occurrence) OnCancel(f func(*Occurrence)) { o.cleanups = append(o.cleanups, f) }

// Handler is an event handler. Handlers run on the triggering goroutine.
type Handler func(*Occurrence)

// Registration describes one registered handler; used to dump the
// composite-protocol structure (Figure 3).
type Registration struct {
	Event    Type
	Name     string
	Priority int
	seq      int
	fn       Handler
}

type timeoutEntry struct {
	name  string
	fn    Handler
	timer clock.Timer
}

// Observer receives a record of every handler invocation when installed
// with SetObserver — the introspection hook behind handler-level profiling
// of a composite protocol. It is called synchronously on the dispatching
// goroutine and must be fast.
type Observer func(ev Type, handler string, d time.Duration, cancelled bool)

// Bus is the event framework linked into a composite protocol. It owns the
// handler tables and the timeout machinery. The zero value is not usable;
// construct with New.
type Bus struct {
	clk clock.Clock

	mu sync.RWMutex
	// handlers maps each event to its dispatch slice in priority order. The
	// slices are immutable: Register and Deregister build a fresh sorted
	// slice and swap it in, so Trigger can iterate whatever slice it read
	// without copying or holding the lock.
	handlers map[Type][]*Registration
	timeouts map[*timeoutEntry]struct{}
	observer Observer
	gate     func() func()
	nextSeq  int
	closed   bool
}

// New returns a Bus using clk for TIMEOUT scheduling.
func New(clk clock.Clock) *Bus {
	return &Bus{
		clk:      clk,
		handlers: make(map[Type][]*Registration),
		timeouts: make(map[*timeoutEntry]struct{}),
	}
}

// Register requests that fn be invoked when t occurs, at the given priority
// (lower values run earlier). name identifies the registration for
// Deregister and for structure dumps; (t, name) pairs must be unique.
// Registering for Timeout through this method is an error; use
// RegisterTimeout.
func (b *Bus) Register(t Type, name string, priority int, fn Handler) error {
	if t == Timeout {
		return fmt.Errorf("event: register %q: use RegisterTimeout for TIMEOUT", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("event: register %q: bus closed", name)
	}
	for _, r := range b.handlers[t] {
		if r.Name == name {
			return fmt.Errorf("event: register %q for %v: already registered", name, t)
		}
	}
	r := &Registration{Event: t, Name: name, Priority: priority, seq: b.nextSeq, fn: fn}
	b.nextSeq++
	old := b.handlers[t]
	hs := make([]*Registration, 0, len(old)+1)
	hs = append(hs, old...)
	hs = append(hs, r)
	sort.SliceStable(hs, func(i, j int) bool {
		if hs[i].Priority != hs[j].Priority {
			return hs[i].Priority < hs[j].Priority
		}
		return hs[i].seq < hs[j].seq
	})
	b.handlers[t] = hs
	return nil
}

// Deregister reverses a Register. Unknown names are ignored (deregistering
// twice is harmless, matching the paper's informal semantics).
func (b *Bus) Deregister(t Type, name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	hs := b.handlers[t]
	for i, r := range hs {
		if r.Name == name {
			b.handlers[t] = append(append([]*Registration(nil), hs[:i]...), hs[i+1:]...)
			return
		}
	}
}

// Trigger notifies the framework that t has occurred with argument arg. All
// handlers registered for t execute sequentially on the calling goroutine in
// priority order; a handler may Cancel the occurrence to skip the rest.
// Trigger reports whether the occurrence ran to completion (not cancelled).
func (b *Bus) Trigger(t Type, arg any) bool {
	b.mu.RLock()
	hs := b.handlers[t] // immutable once published; safe to iterate unlocked
	obs := b.observer
	b.mu.RUnlock()

	if len(hs) == 0 {
		return true
	}
	occ := getOcc(t, arg)
	completed := true
	for _, r := range hs {
		if obs != nil {
			t0 := b.clk.Now()
			r.fn(occ)
			obs(t, r.Name, b.clk.Now().Sub(t0), occ.cancelled)
		} else {
			r.fn(occ)
		}
		if occ.cancelled {
			for i := len(occ.cleanups) - 1; i >= 0; i-- {
				occ.cleanups[i](occ)
			}
			completed = false
			break
		}
	}
	putOcc(occ)
	return completed
}

// SetObserver installs (or with nil, removes) the handler-invocation
// observer. Observation adds two clock reads per handler; leave it unset
// on hot paths.
func (b *Bus) SetObserver(o Observer) {
	b.mu.Lock()
	b.observer = o
	b.mu.Unlock()
}

// SetDispatchGate installs a gate every TIMEOUT firing passes through
// before it looks up its registration: the firing goroutine calls gate(),
// runs, and then calls the returned release function. The composite
// framework uses it to make timer dispatch participate in the
// reconfiguration barrier (handlers fired by timers must not run while a
// Composite.Swap is detaching the protocols that registered them).
//
// The gate is captured when a timeout is armed, so it must be installed
// before the first RegisterTimeout call; installing it later leaves
// already-armed timeouts ungated.
func (b *Bus) SetDispatchGate(gate func() func()) {
	b.mu.Lock()
	b.gate = gate
	b.mu.Unlock()
}

// RegisterTimeout arranges for fn to run once, after interval, as a TIMEOUT
// occurrence. Unlike ordinary registrations it is automatically removed when
// it fires; re-register from within fn for periodic behaviour. The returned
// cancel function stops the timeout if it has not fired (idempotent).
func (b *Bus) RegisterTimeout(name string, interval time.Duration, fn Handler) (cancel func()) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return func() {}
	}
	e := &timeoutEntry{name: name, fn: fn}
	b.timeouts[e] = struct{}{}
	gate := b.gate
	e.timer = b.clk.AfterFunc(interval, func() {
		// The gate is entered before b.mu so a gate holder (the swap
		// barrier) can cancel timeouts — which takes b.mu — without
		// deadlocking against a firing that is waiting at the gate.
		if gate != nil {
			release := gate()
			defer release()
		}
		b.mu.Lock()
		if _, live := b.timeouts[e]; !live {
			b.mu.Unlock()
			return
		}
		delete(b.timeouts, e)
		closed := b.closed
		obs := b.observer
		b.mu.Unlock()
		if closed {
			return
		}
		occ := getOcc(Timeout, nil)
		// TIMEOUT firings report to the observer like ordinary dispatch, so
		// handler-level profiling covers retransmission and failure-detector
		// work too.
		if obs != nil {
			t0 := b.clk.Now()
			fn(occ)
			obs(Timeout, e.name, b.clk.Now().Sub(t0), occ.cancelled)
		} else {
			fn(occ)
		}
		putOcc(occ)
	})
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		if _, live := b.timeouts[e]; live {
			delete(b.timeouts, e)
			e.timer.Stop()
		}
		b.mu.Unlock()
	}
}

// PendingTimeouts returns the number of armed TIMEOUT registrations.
func (b *Bus) PendingTimeouts() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.timeouts)
}

// Registrations returns a snapshot of all ordinary registrations, grouped by
// event type in dispatch order. Used to regenerate Figure 3.
func (b *Bus) Registrations() map[Type][]Registration {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[Type][]Registration, len(b.handlers))
	for t, hs := range b.handlers {
		rs := make([]Registration, len(hs))
		for i, h := range hs {
			rs[i] = *h
		}
		out[t] = rs
	}
	return out
}

// Close stops all pending timeouts and rejects future registrations.
// In-flight Trigger calls are unaffected.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for e := range b.timeouts {
		e.timer.Stop()
		delete(b.timeouts, e)
	}
}

// Clock returns the bus's time source, shared with micro-protocols that need
// to measure intervals consistently with their timeouts.
func (b *Bus) Clock() clock.Clock { return b.clk }
