//go:build mrpcdebug

package event

// Debug-build pool checking for dispatch's occurrence pool; the same scheme
// as internal/core's (see core/pooldebug.go): Put poisons the Arg field
// putOcc has scrubbed, Get verifies the sentinel survived and catches
// double-Puts through the checked-out ledger.

import (
	"fmt"
	"sync"
)

// poisonedArg is the sentinel a pooled Occurrence's Arg field holds.
var poisonedArg any = new(struct{ _ [1]byte })

type debugPool struct {
	p      sync.Pool
	mu     sync.Mutex
	pooled map[any]bool // true = currently in the pool
}

func newPool(f func() any) *debugPool {
	return &debugPool{p: sync.Pool{New: f}, pooled: make(map[any]bool)}
}

func (d *debugPool) Get() any {
	x := d.p.Get()
	d.mu.Lock()
	if in, seen := d.pooled[x]; seen && !in {
		d.mu.Unlock()
		panic(fmt.Sprintf("mrpcdebug: pool handed out a checked-out %T (double-Put upstream)", x))
	}
	d.pooled[x] = false
	d.mu.Unlock()
	checkPoison(x)
	return x
}

func (d *debugPool) Put(x any) {
	d.mu.Lock()
	if d.pooled[x] {
		d.mu.Unlock()
		panic(fmt.Sprintf("mrpcdebug: double-Put of %T", x))
	}
	d.pooled[x] = true
	d.mu.Unlock()
	poison(x)
}

func poison(x any) {
	if o, ok := x.(*Occurrence); ok {
		o.Arg = poisonedArg
	}
}

func checkPoison(x any) {
	if o, ok := x.(*Occurrence); ok {
		switch o.Arg {
		case poisonedArg:
			o.Arg = nil
		case nil:
		default:
			panic(fmt.Sprintf("mrpcdebug: dirty Get of %T: object was written while pooled (use-after-Put)", x))
		}
	}
}
