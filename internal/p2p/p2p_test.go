package p2p

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/netsim"
	"mrpc/internal/proc"
)

func pair(t *testing.T, p netsim.Params, opts Options, h Handler) (*Client, *netsim.Network) {
	t.Helper()
	clk := clock.NewReal()
	net := netsim.New(clk, p)
	t.Cleanup(net.Stop)
	srv, err := NewServer(net, 1, opts, h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := NewClient(net, clk, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, net
}

func echo(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
	return append([]byte("r:"), args...)
}

func TestP2PCall(t *testing.T) {
	c, _ := pair(t, netsim.Params{}, Options{}, echo)
	res, status := c.Call(1, 7, []byte("x"))
	if status != msg.StatusOK || string(res) != "r:x" {
		t.Fatalf("call: %v %q", status, res)
	}
}

func TestP2PReliableMasksLoss(t *testing.T) {
	opts := Options{Reliable: true, Unique: true, RetransTimeout: 2 * time.Millisecond}
	var mu sync.Mutex
	execs := make(map[string]int)
	c, _ := pair(t, netsim.Params{
		Seed: 3, LossProb: 0.3,
		MinDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond,
	}, opts, func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		mu.Lock()
		execs[string(args)]++
		mu.Unlock()
		return args
	})

	for i := 0; i < 25; i++ {
		payload := []byte(fmt.Sprintf("c%d", i))
		res, status := c.Call(1, 1, payload)
		if status != msg.StatusOK || string(res) != string(payload) {
			t.Fatalf("call %d: %v %q", i, status, res)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(execs) != 25 {
		t.Fatalf("%d distinct calls executed", len(execs))
	}
	for k, n := range execs {
		if n != 1 {
			t.Fatalf("%s executed %d times (unique execution violated)", k, n)
		}
	}
}

func TestP2PWithoutUniqueMayDuplicate(t *testing.T) {
	opts := Options{Reliable: true, RetransTimeout: time.Millisecond}
	var mu sync.Mutex
	total := 0
	c, _ := pair(t, netsim.Params{
		Seed: 7, DupProb: 0.5,
		MinDelay: 500 * time.Microsecond, MaxDelay: 4 * time.Millisecond,
	}, opts, func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		mu.Lock()
		total++
		mu.Unlock()
		return args
	})

	const calls = 15
	for i := 0; i < calls; i++ {
		if _, status := c.Call(1, 1, []byte{byte(i)}); status != msg.StatusOK {
			t.Fatalf("call %d: %v", i, status)
		}
	}
	// Allow stragglers to execute.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if total <= calls {
		t.Fatalf("executions = %d, want > %d (at-least-once duplicates expected)", total, calls)
	}
}

func TestP2PBoundedTimeout(t *testing.T) {
	opts := Options{Bounded: true, TimeBound: 20 * time.Millisecond}
	c, _ := pair(t, netsim.Params{}, opts, func(th *proc.Thread, _ msg.OpID, args []byte) []byte {
		select {
		case <-th.Killed():
		case <-time.After(200 * time.Millisecond):
		}
		return args
	})
	t0 := time.Now()
	_, status := c.Call(1, 1, []byte("slow"))
	if status != msg.StatusTimeout {
		t.Fatalf("status = %v, want TIMEOUT", status)
	}
	if elapsed := time.Since(t0); elapsed > 150*time.Millisecond {
		t.Fatalf("bounded call took %v", elapsed)
	}
}

func TestP2PCloseAborts(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	defer net.Stop()
	// No server attached: the call hangs until Close.
	c, err := NewClient(net, clk, 100, Options{Reliable: true, RetransTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan msg.Status, 1)
	go func() {
		_, status := c.Call(1, 1, nil)
		done <- status
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case status := <-done:
		if status != msg.StatusAborted {
			t.Fatalf("status = %v, want ABORTED", status)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not abort the pending call")
	}
}

func TestP2PServerRequiresHandler(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	defer net.Stop()
	if _, err := NewServer(net, 1, Options{}, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestP2PConcurrentClients(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	defer net.Stop()
	srv, err := NewServer(net, 1, Options{Unique: true}, echo)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		id := msg.ProcID(100 + i)
		c, err := NewClient(net, clk, id, Options{Reliable: true, Unique: true, RetransTimeout: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, status := c.Call(1, 1, []byte{byte(j)}); status != msg.StatusOK {
					t.Errorf("client call %d: %v", j, status)
					return
				}
			}
		}()
	}
	wg.Wait()
}
