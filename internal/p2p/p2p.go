// Package p2p is the compact point-to-point RPC specialization the paper
// anticipates in §4.1: "Point-to-point RPC can be seen as a special case
// in this implementation, although in practice it would likely be
// implemented separately to obtain a more compact and efficient protocol."
//
// It keeps the configurable *semantics* — reliable communication, bounded
// termination, unique execution — but fuses them into straight-line code:
// no event bus, no handler priorities, no group tables. Ordering,
// acceptance, collation and membership make no sense with a single server
// and are omitted, exactly the specialization the paper describes.
// Experiment E14 measures what the fusion buys over the full composite.
package p2p

import (
	"fmt"
	"sync"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/transport"
)

// Options selects the semantics of a point-to-point endpoint pair. The
// zero value is an unreliable, unbounded, at-least-once client.
type Options struct {
	// Reliable enables retransmission until a reply (or ack) arrives.
	Reliable bool
	// RetransTimeout is the retransmission period (default 20ms).
	RetransTimeout time.Duration
	// Bounded enables per-call deadlines.
	Bounded bool
	// TimeBound is the per-call deadline (default 1s).
	TimeBound time.Duration
	// Unique enables duplicate suppression at the server (exactly-once
	// together with Reliable).
	Unique bool
}

// Handler executes one operation at a p2p server.
type Handler func(th *proc.Thread, op msg.OpID, args []byte) []byte

// Server is the compact point-to-point server.
type Server struct {
	id      msg.ProcID
	ep      transport.Endpoint
	handler Handler
	unique  bool

	mu         sync.Mutex
	oldCalls   map[msg.CallKey]bool
	oldResults map[msg.CallKey][]byte
	threads    *proc.Threads
}

// NewServer attaches a compact server for id to the transport.
func NewServer(net transport.Transport, id msg.ProcID, opts Options, h Handler) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("p2p: handler is required")
	}
	s := &Server{
		id:         id,
		handler:    h,
		unique:     opts.Unique,
		oldCalls:   make(map[msg.CallKey]bool),
		oldResults: make(map[msg.CallKey][]byte),
		threads:    proc.NewThreads(),
	}
	ep, err := net.Attach(id, s.handle)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	return s, nil
}

// Close kills in-flight executions (their replies are suppressed).
func (s *Server) Close() { s.threads.KillAll() }

func (s *Server) handle(m *msg.NetMsg) {
	switch m.Type {
	case msg.OpCall:
		s.handleCall(m)
	case msg.OpAck:
		if s.unique {
			s.mu.Lock()
			delete(s.oldResults, msg.CallKey{Client: m.Client, ID: m.AckID})
			s.mu.Unlock()
		}
	}
}

func (s *Server) handleCall(m *msg.NetMsg) {
	key := m.Key()
	if s.unique {
		s.mu.Lock()
		if res, done := s.oldResults[key]; done {
			s.mu.Unlock()
			s.reply(m, res)
			return
		}
		if s.oldCalls[key] {
			s.mu.Unlock()
			return // in progress: drop the duplicate
		}
		s.oldCalls[key] = true
		s.mu.Unlock()
	}

	th := s.threads.Spawn(m.Client)
	res := s.handler(th, m.Op, m.Args)
	killed := th.IsKilled()
	s.threads.Finish(th)
	if killed {
		if s.unique {
			s.mu.Lock()
			delete(s.oldCalls, key)
			s.mu.Unlock()
		}
		return
	}

	if s.unique {
		s.mu.Lock()
		s.oldResults[key] = res
		s.mu.Unlock()
	}
	s.reply(m, res)
}

func (s *Server) reply(call *msg.NetMsg, res []byte) {
	s.ep.Push(call.Sender, &msg.NetMsg{
		Type:   msg.OpReply,
		ID:     call.ID,
		Client: call.Client,
		Op:     call.Op,
		Args:   res,
		Sender: s.id,
	})
}

// p2pCall is one in-flight call record. Records are recycled through the
// client's freelist: every completion path first dequeues the record from
// the pending table under the client mutex, so each armed record has
// exactly one completer — the done channel (capacity 1) carries exactly
// one token per arming and is safely reusable, with no sync.Once and no
// per-call allocation in steady state.
type p2pCall struct {
	op      msg.OpID
	args    []byte
	to      msg.ProcID
	result  []byte
	status  msg.Status
	done    chan struct{}
	expired clock.Timer
	next    *p2pCall // freelist link
}

// complete finishes a dequeued record. The caller must be its sole owner
// (having removed it from the pending table); nothing may touch the record
// after the token is sent except the parked Call.
func (c *p2pCall) complete(status msg.Status, result []byte) {
	c.status = status
	c.result = result
	c.done <- struct{}{}
}

// Client is the compact point-to-point client.
type Client struct {
	id   msg.ProcID
	ep   transport.Endpoint
	clk  clock.Clock
	opts Options

	mu      sync.Mutex
	nextID  msg.CallID
	pending map[msg.CallID]*p2pCall
	free    *p2pCall

	// loop is the retransmission thread (nil when Reliable is off).
	loop *proc.Thread
}

// NewClient attaches a compact client for id to the transport.
func NewClient(net transport.Transport, clk clock.Clock, id msg.ProcID, opts Options) (*Client, error) {
	if opts.RetransTimeout <= 0 {
		opts.RetransTimeout = 20 * time.Millisecond
	}
	if opts.TimeBound <= 0 {
		opts.TimeBound = time.Second
	}
	c := &Client{
		id:      id,
		clk:     clk,
		opts:    opts,
		nextID:  1,
		pending: make(map[msg.CallID]*p2pCall),
	}
	ep, err := net.Attach(id, c.handle)
	if err != nil {
		return nil, err
	}
	c.ep = ep
	if opts.Reliable {
		c.loop = proc.Go(c.retransmitLoop)
	}
	return c, nil
}

// Close stops the client. Pending calls complete with StatusAborted.
func (c *Client) Close() {
	if c.loop != nil {
		c.loop.Kill()
		<-c.loop.Done()
	}
	c.mu.Lock()
	calls := make([]*p2pCall, 0, len(c.pending))
	for _, pc := range c.pending {
		calls = append(calls, pc)
	}
	c.pending = make(map[msg.CallID]*p2pCall)
	c.mu.Unlock()
	for _, pc := range calls {
		pc.complete(msg.StatusAborted, nil)
	}
}

// Call synchronously invokes op at the server and returns the result and
// status (OK, TIMEOUT with Bounded, or ABORTED after Close).
func (c *Client) Call(server msg.ProcID, op msg.OpID, args []byte) ([]byte, msg.Status) {
	c.mu.Lock()
	pc := c.free
	if pc != nil {
		c.free = pc.next
		pc.next = nil
	} else {
		pc = &p2pCall{done: make(chan struct{}, 1)}
	}
	pc.op, pc.args, pc.to = op, args, server
	id := c.nextID
	c.nextID++
	c.pending[id] = pc
	c.mu.Unlock()

	if c.opts.Bounded {
		pc.expired = c.clk.AfterFunc(c.opts.TimeBound, func() {
			c.expire(id)
		})
	}
	c.ep.Push(server, c.buildCall(id, pc))

	<-pc.done
	if pc.expired != nil {
		pc.expired.Stop()
		pc.expired = nil
	}
	result, status := pc.result, pc.status
	c.mu.Lock()
	pc.args, pc.result = nil, nil
	pc.next = c.free
	c.free = pc
	c.mu.Unlock()
	return result, status
}

// expire times out call id if it is still pending. Dequeue-then-complete
// under the mutex keeps the single-completer invariant: if the reply beat
// the deadline, the record is gone and this is a no-op.
func (c *Client) expire(id msg.CallID) {
	c.mu.Lock()
	pc, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		pc.complete(msg.StatusTimeout, nil)
	}
}

func (c *Client) buildCall(id msg.CallID, pc *p2pCall) *msg.NetMsg {
	return &msg.NetMsg{
		Type:   msg.OpCall,
		ID:     id,
		Client: c.id,
		Op:     pc.op,
		Args:   pc.args,
		Sender: c.id,
	}
}

func (c *Client) handle(m *msg.NetMsg) {
	if m.Type != msg.OpReply {
		return
	}
	if c.opts.Unique {
		c.ep.Push(m.Sender, &msg.NetMsg{
			Type:   msg.OpAck,
			Client: c.id,
			Sender: c.id,
			AckID:  m.ID,
		})
	}
	c.mu.Lock()
	pc, ok := c.pending[m.ID]
	if ok {
		delete(c.pending, m.ID)
	}
	c.mu.Unlock()
	if ok {
		pc.complete(msg.StatusOK, m.Args)
	}
}

func (c *Client) retransmitLoop(th *proc.Thread) {
	for {
		timer := make(chan struct{})
		t := c.clk.AfterFunc(c.opts.RetransTimeout, func() { close(timer) })
		select {
		case <-th.Killed():
			t.Stop()
			return
		case <-timer:
		}
		type resend struct {
			to msg.ProcID
			m  *msg.NetMsg
		}
		var out []resend
		c.mu.Lock()
		// Replies dequeue their record, so everything still pending is
		// unanswered and due for retransmission.
		for id, pc := range c.pending {
			out = append(out, resend{to: pc.to, m: c.buildCall(id, pc)})
		}
		c.mu.Unlock()
		for _, rs := range out {
			c.ep.Push(rs.to, rs.m)
		}
	}
}
