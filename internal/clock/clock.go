// Package clock abstracts time for the RPC service and its substrates.
//
// The micro-protocols (Reliable Communication, Bounded Termination) and the
// simulated network only ever observe time through a Clock, so tests and
// experiments can run either against the real clock or against a simulated
// clock that is advanced manually and deterministically.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Timer is a one-shot timer handle returned by Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer. It reports whether the timer was stopped
	// before firing.
	Stop() bool
}

// Clock is the time source used by all timer-driven components.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules f to run once after d. f runs on its own
	// goroutine (real clock) or on the advancing goroutine (sim clock).
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
}

// After returns a channel on which the clock's current time is sent once,
// after d — the Clock analogue of time.After for select statements.
func After(c Clock, d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.AfterFunc(d, func() { ch <- c.Now() })
	return ch
}

// Real is a Clock backed by package time.
type Real struct{}

var _ Clock = Real{}

// NewReal returns the real clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Sim is a deterministic simulated clock. Time advances only through Advance
// or AdvanceToNext; pending timers fire synchronously on the advancing
// goroutine in deadline order. Sleep blocks until enough simulated time has
// been advanced by another goroutine.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	nextID  int
	timers  map[int]*simTimer
	sleeper []*simSleep
}

var _ Clock = (*Sim)(nil)

type simTimer struct {
	id  int
	at  time.Time
	f   func()
	sim *Sim
}

func (t *simTimer) Stop() bool {
	t.sim.mu.Lock()
	defer t.sim.mu.Unlock()
	if _, ok := t.sim.timers[t.id]; ok {
		delete(t.sim.timers, t.id)
		return true
	}
	return false
}

type simSleep struct {
	at time.Time
	ch chan struct{}
}

// NewSim returns a simulated clock starting at a fixed epoch.
func NewSim() *Sim {
	return &Sim{
		now:    time.Unix(0, 0),
		timers: make(map[int]*simTimer),
	}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc implements Clock.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{id: s.nextID, at: s.now.Add(d), f: f, sim: s}
	s.nextID++
	s.timers[t.id] = t
	return t
}

// Sleep implements Clock. It returns once simulated time has advanced past
// the deadline. Sleeping for a non-positive duration returns immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	sl := &simSleep{at: s.now.Add(d), ch: make(chan struct{})}
	s.sleeper = append(s.sleeper, sl)
	s.mu.Unlock()
	<-sl.ch
}

// Advance moves simulated time forward by d, firing every timer and waking
// every sleeper whose deadline falls within the window, in deadline order.
// Timer callbacks run synchronously on the caller's goroutine and may
// schedule further timers (which also fire if within the window).
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.advanceTo(target)
}

// AdvanceToNext advances directly to the earliest pending timer or sleeper
// deadline, firing it. It reports whether anything was pending.
func (s *Sim) AdvanceToNext() bool {
	s.mu.Lock()
	var earliest time.Time
	found := false
	for _, t := range s.timers {
		if !found || t.at.Before(earliest) {
			earliest, found = t.at, true
		}
	}
	for _, sl := range s.sleeper {
		if !found || sl.at.Before(earliest) {
			earliest, found = sl.at, true
		}
	}
	s.mu.Unlock()
	if !found {
		return false
	}
	s.advanceTo(earliest)
	return true
}

// PendingTimers returns the number of unfired timers. Intended for tests.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

func (s *Sim) advanceTo(target time.Time) {
	for {
		s.mu.Lock()
		// Find the earliest event at or before target.
		var (
			bestTimer *simTimer
			bestSleep *simSleep
		)
		for _, t := range s.timers {
			if t.at.After(target) {
				continue
			}
			if bestTimer == nil || t.at.Before(bestTimer.at) ||
				(t.at.Equal(bestTimer.at) && t.id < bestTimer.id) {
				bestTimer = t
			}
		}
		sort.SliceStable(s.sleeper, func(i, j int) bool {
			return s.sleeper[i].at.Before(s.sleeper[j].at)
		})
		for _, sl := range s.sleeper {
			if !sl.at.After(target) {
				bestSleep = sl
				break
			}
		}

		switch {
		case bestTimer == nil && bestSleep == nil:
			if target.After(s.now) {
				s.now = target
			}
			s.mu.Unlock()
			return
		case bestTimer != nil && (bestSleep == nil || !bestSleep.at.Before(bestTimer.at)):
			if bestTimer.at.After(s.now) {
				s.now = bestTimer.at
			}
			delete(s.timers, bestTimer.id)
			f := bestTimer.f
			s.mu.Unlock()
			f()
		default:
			if bestSleep.at.After(s.now) {
				s.now = bestSleep.at
			}
			for i, sl := range s.sleeper {
				if sl == bestSleep {
					s.sleeper = append(s.sleeper[:i], s.sleeper[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
			close(bestSleep.ch)
		}
	}
}
