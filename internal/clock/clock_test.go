package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	clk := NewReal()
	t0 := clk.Now()
	fired := make(chan struct{})
	clk.AfterFunc(5*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	if clk.Now().Sub(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
}

func TestRealTimerStop(t *testing.T) {
	clk := NewReal()
	fired := make(chan struct{}, 1)
	tm := clk.AfterFunc(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(80 * time.Millisecond):
	}
}

func TestSimAdvanceFiresInOrder(t *testing.T) {
	clk := NewSim()
	var order []int
	clk.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	clk.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	clk.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })

	clk.Advance(15 * time.Millisecond)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after 15ms: fired %v, want [1]", order)
	}
	clk.Advance(100 * time.Millisecond)
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("after 115ms: fired %v, want [1 2 3]", order)
	}
	if got := clk.Now(); got != time.Unix(0, 0).Add(115*time.Millisecond) {
		t.Fatalf("now = %v, want epoch+115ms", got)
	}
}

func TestSimTimerStop(t *testing.T) {
	clk := NewSim()
	fired := false
	tm := clk.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending sim timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	clk.Advance(time.Second)
	if fired {
		t.Fatal("stopped sim timer fired")
	}
}

func TestSimTimerReschedulesWithinAdvance(t *testing.T) {
	clk := NewSim()
	var at []time.Duration
	epoch := clk.Now()
	var tick func()
	tick = func() {
		at = append(at, clk.Now().Sub(epoch))
		if len(at) < 4 {
			clk.AfterFunc(10*time.Millisecond, tick)
		}
	}
	clk.AfterFunc(10*time.Millisecond, tick)
	clk.Advance(100 * time.Millisecond)
	want := []time.Duration{10, 20, 30, 40}
	if len(at) != len(want) {
		t.Fatalf("fired %d times, want %d", len(at), len(want))
	}
	for i, w := range want {
		if at[i] != w*time.Millisecond {
			t.Fatalf("firing %d at %v, want %v", i, at[i], w*time.Millisecond)
		}
	}
}

func TestSimSleep(t *testing.T) {
	clk := NewSim()
	done := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		clk.Sleep(25 * time.Millisecond)
		close(done)
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the sleeper register
	select {
	case <-done:
		t.Fatal("Sleep returned before time advanced")
	default:
	}
	clk.Advance(30 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestSimSleepNonPositive(t *testing.T) {
	clk := NewSim()
	done := make(chan struct{})
	go func() {
		clk.Sleep(0)
		clk.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive Sleep blocked")
	}
}

func TestSimAdvanceToNext(t *testing.T) {
	clk := NewSim()
	if clk.AdvanceToNext() {
		t.Fatal("AdvanceToNext with nothing pending returned true")
	}
	fired := 0
	clk.AfterFunc(7*time.Millisecond, func() { fired++ })
	clk.AfterFunc(3*time.Millisecond, func() { fired++ })
	if !clk.AdvanceToNext() {
		t.Fatal("AdvanceToNext returned false with timers pending")
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got := clk.Now(); got != time.Unix(0, 0).Add(3*time.Millisecond) {
		t.Fatalf("now = %v, want epoch+3ms", got)
	}
	clk.AdvanceToNext()
	if fired != 2 || clk.PendingTimers() != 0 {
		t.Fatalf("fired = %d pending = %d", fired, clk.PendingTimers())
	}
}

func TestSimConcurrentAfterFunc(t *testing.T) {
	clk := NewSim()
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clk.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				fired++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	clk.Advance(time.Second)
	if fired != 50 {
		t.Fatalf("fired = %d, want 50", fired)
	}
}

func TestSimEqualDeadlinesFIFO(t *testing.T) {
	clk := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		clk.AfterFunc(10*time.Millisecond, func() { order = append(order, i) })
	}
	clk.Advance(10 * time.Millisecond)
	for i, got := range order {
		if got != i {
			t.Fatalf("equal-deadline firing order %v, want registration order", order)
		}
	}
}
