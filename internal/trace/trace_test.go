package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderStats(t *testing.T) {
	r := NewRecorder("lat")
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.Percentile(95); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := r.Min(); got != time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := r.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder("empty")
	if r.Mean() != 0 || r.Percentile(50) != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty recorder returned non-zero stats")
	}
	if r.Name() != "empty" {
		t.Fatal("name")
	}
}

func TestRecorderSummary(t *testing.T) {
	r := NewRecorder("x")
	r.Add(time.Millisecond)
	s := r.Summary()
	if !strings.Contains(s, "x:") || !strings.Contains(s, "n=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count = %d", r.Count())
	}
}

type fakeEvent string

func (f fakeEvent) String() string { return string(f) }

func TestHandlerProfile(t *testing.T) {
	p := NewHandlerProfile()
	p.Observe(fakeEvent("MSG"), "RPCMain", 2*time.Millisecond, false)
	p.Observe(fakeEvent("MSG"), "RPCMain", 4*time.Millisecond, false)
	p.Observe(fakeEvent("MSG"), "Unique", time.Millisecond, true)

	stats := p.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	// Sorted by total time descending: RPCMain (6ms) before Unique (1ms).
	if stats[0].Handler != "MSG/RPCMain" || stats[0].Calls != 2 ||
		stats[0].Mean != 3*time.Millisecond || stats[0].Max != 4*time.Millisecond {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	if stats[1].Cancels != 1 {
		t.Fatalf("stats[1] = %+v", stats[1])
	}
	if s := p.String(); !strings.Contains(s, "MSG/RPCMain") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	snap := c.Snapshot()
	snap["a"] = 99
	if c.Get("a") != 5 {
		t.Fatal("snapshot aliases internal map")
	}
}
