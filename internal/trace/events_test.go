package trace

import (
	"strings"
	"sync"
	"testing"

	"mrpc/internal/msg"
)

// TestLogConcurrentRecord checks the emission-ordering contract the
// conformance oracles rely on: under concurrent emitters every event gets a
// unique Seq, Events() is sorted by Seq, and the per-emitter program order
// is preserved in Seq order (the single mutex makes Seq consistent with
// real time).
func TestLogConcurrentRecord(t *testing.T) {
	l := NewLog()
	const emitters = 8
	const perEmitter = 200
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(site msg.ProcID) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				l.Record(Event{Kind: KExecBegin, Site: site, ID: msg.CallID(i)})
			}
		}(msg.ProcID(g + 1))
	}
	wg.Wait()

	events := l.Events()
	if len(events) != emitters*perEmitter {
		t.Fatalf("len = %d, want %d", len(events), emitters*perEmitter)
	}
	if l.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(events))
	}
	lastPerSite := make(map[msg.ProcID]msg.CallID)
	seen := make(map[int64]bool)
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has Seq %d (want dense ascending)", i, e.Seq)
		}
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
		// One emitter's records must appear in its own program order.
		if prev, ok := lastPerSite[e.Site]; ok && e.ID != prev+1 {
			t.Fatalf("site %d emitted id %d after %d: per-emitter order lost", e.Site, e.ID, prev)
		}
		lastPerSite[e.Site] = e.ID
	}
}

// TestLogEventsIsACopy checks Events() snapshots: mutating the returned
// slice does not alias the log's internal state.
func TestLogEventsIsACopy(t *testing.T) {
	l := NewLog()
	l.Record(Event{Kind: KCallIssued})
	snap := l.Events()
	snap[0].Kind = KCrash
	if l.Events()[0].Kind != KCallIssued {
		t.Fatal("Events() aliases the internal slice")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KCallIssued:    "CALL_ISSUED",
		KCallDone:      "CALL_DONE",
		KReplyAccepted: "REPLY_ACCEPTED",
		KExecBegin:     "EXEC_BEGIN",
		KExecEnd:       "EXEC_END",
		KReplySent:     "REPLY_SENT",
		KDupDropped:    "DUP_DROPPED",
		KOrphanKilled:  "ORPHAN_KILLED",
		KCrash:         "CRASH",
		KRecover:       "RECOVER",
		KReconfigure:   "RECONFIGURE",
		KGrayStart:     "GRAY_START",
		KGrayEnd:       "GRAY_END",
		KFlap:          "FLAP",
		KSuspect:       "SUSPECT",
		KSuspectClear:  "SUSPECT_CLEAR",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders as %q", got)
	}
}

func TestEventKeyAndInc(t *testing.T) {
	id := msg.CallID(int64(3)<<32 | 17)
	e := Event{Kind: KExecBegin, Client: 100, ID: id}
	if k := e.Key(); k.Client != 100 || k.ID != id {
		t.Fatalf("Key() = %+v", k)
	}
	if inc := CallInc(id); inc != 3 {
		t.Fatalf("CallInc = %d, want 3", inc)
	}
	if s := e.String(); !strings.Contains(s, "EXEC_BEGIN") || !strings.Contains(s, "100") {
		t.Fatalf("String() = %q", s)
	}
}
