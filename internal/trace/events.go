package trace

import (
	"fmt"
	"sync"

	"mrpc/internal/msg"
)

// Kind classifies a structured trace event. The conformance harness
// (internal/check) replays streams of these events through per-property
// oracles, so each kind marks one semantically meaningful point in a
// call's lifetime rather than a low-level protocol step.
type Kind uint8

// Event kinds. Call-side events are observed at the issuing client's
// site; execution-side events at the server's site; lifecycle events
// (crash, recover, reconfigure) are emitted by the harness driving the
// system.
const (
	// KCallIssued: a client created a new pending call record.
	KCallIssued Kind = iota + 1
	// KCallDone: a pending call reached a terminal status (OK, TIMEOUT
	// or ABORTED) and its waiter was (or will be) woken.
	KCallDone
	// KReplyAccepted: Acceptance folded a (non-duplicate) server reply
	// into the pending call.
	KReplyAccepted
	// KExecBegin: the server procedure is about to run for a call.
	KExecBegin
	// KExecEnd: the server procedure returned for a call.
	KExecEnd
	// KReplySent: the server pushed the call's reply to the client.
	KReplySent
	// KDupDropped: Unique Execution recognized a duplicate request and
	// suppressed re-execution (answering from the retained response or
	// discarding the copy).
	KDupDropped
	// KOrphanKilled: an orphan-handling micro-protocol dropped a held
	// call (stale incarnation) or suppressed the reply of a killed
	// computation.
	KOrphanKilled
	// KCrash: the harness crashed a node.
	KCrash
	// KRecover: the harness recovered a node under a new incarnation.
	KRecover
	// KReconfigure: the harness reconfigured the system; Note carries
	// the transition description. Events before/after this marker ran
	// under different configurations.
	KReconfigure
	// KBatchFlushed: the flush queue coalesced two or more outbound
	// messages into one batch frame (deviation D16). Site is the sender,
	// From the destination; Op carries the batch size.
	KBatchFlushed
	// KBatchDelivered: a batch frame arrived and its sub-messages are
	// about to dispatch sequentially in send order. Site is the receiver,
	// From the sender; Op carries the batch size.
	KBatchDelivered
	// KRelay: a dissemination-tree node forwarded a frozen frame to its
	// children (D17). Site is the relaying node, From the frame's origin;
	// Op carries the number of children relayed to.
	KRelay
	// KReparent: a membership failure re-parented part of a dissemination
	// tree — Site adopted orphaned members and re-delivered its window of
	// in-flight frames to them (D17). From is the failed node; Op carries
	// the number of adopted members.
	KReparent
	// KGrayStart: the harness made a node gray-slow — alive, but with
	// every ingress and egress delayed (D19). Site is the gray node; Note
	// carries the delay. The node is NOT crashed: no KCrash accompanies
	// this, which is precisely what the no-false-suspicion oracle leans
	// on.
	KGrayStart
	// KGrayEnd: the harness cleared a node's gray-slow state.
	KGrayEnd
	// KFlap: the harness started a scripted partition flap — repeated
	// split/heal cycles on one link (D19). Site and From are the link's
	// two ends; Op carries the cycle count; Note the period. The link is
	// healed again by the time the run settles.
	KFlap
	// KSuspect: a failure detector declared a peer down. Site is the
	// observing node, From the suspect. This records the detector's
	// *belief*; ground truth is the KCrash/KRecover lifecycle events, and
	// the gap between the two is what gray failures exploit.
	KSuspect
	// KSuspectClear: a failure detector heard from a suspect again and
	// reinstated it. Site is the observer, From the reinstated peer.
	KSuspectClear
)

var kindNames = [...]string{"", "CALL_ISSUED", "CALL_DONE", "REPLY_ACCEPTED",
	"EXEC_BEGIN", "EXEC_END", "REPLY_SENT", "DUP_DROPPED", "ORPHAN_KILLED",
	"CRASH", "RECOVER", "RECONFIGURE", "BATCH_FLUSHED", "BATCH_DELIVERED",
	"RELAY", "REPARENT", "GRAY_START", "GRAY_END", "FLAP", "SUSPECT",
	"SUSPECT_CLEAR"}

// String returns the event kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && k > 0 {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// Event is one structured trace record. Not every field is meaningful
// for every kind; unused fields are zero.
type Event struct {
	// Seq is the global observation order, assigned by the Log. It is
	// consistent with real time (a single mutex orders all records), so
	// within one site it reflects the site's own event order.
	Seq int64
	// Kind classifies the event.
	Kind Kind
	// Site is the process observing the event (the client for call-side
	// events, the server for execution-side events).
	Site msg.ProcID
	// SiteInc is the observing site's incarnation at emission time.
	SiteInc msg.Incarnation
	// Client and ID identify the call ((client, id) is the global call
	// key; the client's incarnation is embedded in the id's upper bits).
	Client msg.ProcID
	ID     msg.CallID
	// Op is the remote operation (call-issue and execution events).
	Op msg.OpID
	// Status is the terminal status (KCallDone).
	Status msg.Status
	// From is the replying server (KReplyAccepted).
	From msg.ProcID
	// Group is the call's destination group (KCallIssued).
	Group msg.Group
	// VC is the call's causal timestamp (KCallIssued under Causal Order).
	VC msg.VClock
	// Note carries free-form detail (reconfiguration transitions).
	Note string
}

// Key returns the call key the event refers to.
func (e Event) Key() msg.CallKey { return msg.CallKey{Client: e.Client, ID: e.ID} }

// CallInc extracts the issuing client's incarnation from a call id
// (deviation D9: ids embed the incarnation in their upper 32 bits).
func CallInc(id msg.CallID) msg.Incarnation { return msg.Incarnation(id >> 32) }

// String renders a compact single-line form.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s site=%d/%d key=%d:%d op=%d st=%s from=%d %s",
		e.Seq, e.Kind, e.Site, e.SiteInc, e.Client, e.ID, e.Op, e.Status, e.From, e.Note)
}

// Sink receives structured trace events. A nil Sink disables tracing;
// Framework emission sites check for nil before building the event, so
// the disabled path costs one pointer compare.
type Sink interface {
	Record(Event)
}

// Log is the standard Sink: an append-only, mutex-ordered event log.
// Record assigns each event a unique, strictly increasing Seq; because
// all records serialize on one mutex, Seq order is consistent with the
// real-time order of emission (if a happens-before b in the program, a's
// Seq is smaller).
type Log struct {
	mu     sync.Mutex
	seq    int64
	events []Event
}

// NewLog returns an empty event log.
func NewLog() *Log { return &Log{} }

// Record implements Sink.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events in Seq order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}
