// Package trace provides the lightweight measurement utilities used by the
// experiment harness: latency recorders with percentile summaries and
// simple event counters.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates latency samples. It is safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	name    string
	samples []time.Duration
}

// NewRecorder returns an empty recorder labelled name.
func NewRecorder(name string) *Recorder {
	return &Recorder{name: name}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the mean sample, or 0 with no samples.
func (r *Recorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) of the samples,
// or 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (r *Recorder) Min() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	min := r.samples[0]
	for _, s := range r.samples[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// Max returns the largest sample, or 0 with no samples.
func (r *Recorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max time.Duration
	for _, s := range r.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Summary renders "name: n=… mean=… p50=… p95=… p99=… max=…".
func (r *Recorder) Summary() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		r.name, r.Count(), r.Mean().Round(time.Microsecond),
		r.Percentile(50).Round(time.Microsecond),
		r.Percentile(95).Round(time.Microsecond),
		r.Percentile(99).Round(time.Microsecond),
		r.Max().Round(time.Microsecond))
}

// Counters is a labelled set of monotonic counters, safe for concurrent
// use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
