package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// HandlerProfile aggregates per-handler dispatch statistics collected from
// an event.Bus observer: how often each micro-protocol handler ran, how
// long it took, and how often it cancelled the occurrence. Install with
//
//	bus.SetObserver(profile.Observe)
type HandlerProfile struct {
	mu    sync.Mutex
	stats map[string]*handlerStat
}

type handlerStat struct {
	calls     int64
	cancels   int64
	totalTime time.Duration
	maxTime   time.Duration
}

// NewHandlerProfile returns an empty profile.
func NewHandlerProfile() *HandlerProfile {
	return &HandlerProfile{stats: make(map[string]*handlerStat)}
}

// Observe records one handler invocation; its signature matches
// event.Observer (taking the event type as a fmt.Stringer keeps this
// package free of an event dependency).
func (p *HandlerProfile) Observe(ev fmt.Stringer, handler string, d time.Duration, cancelled bool) {
	key := ev.String() + "/" + handler
	p.mu.Lock()
	s, ok := p.stats[key]
	if !ok {
		s = &handlerStat{}
		p.stats[key] = s
	}
	s.calls++
	if cancelled {
		s.cancels++
	}
	s.totalTime += d
	if d > s.maxTime {
		s.maxTime = d
	}
	p.mu.Unlock()
}

// HandlerStat is one row of the profile report.
type HandlerStat struct {
	Handler string
	Calls   int64
	Cancels int64
	Mean    time.Duration
	Max     time.Duration
}

// Stats returns the profile rows sorted by total time, descending.
func (p *HandlerProfile) Stats() []HandlerStat {
	p.mu.Lock()
	type row struct {
		key   string
		stat  handlerStat
		total time.Duration
	}
	rows := make([]row, 0, len(p.stats))
	for k, s := range p.stats {
		rows = append(rows, row{key: k, stat: *s, total: s.totalTime})
	}
	p.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	out := make([]HandlerStat, len(rows))
	for i, r := range rows {
		mean := time.Duration(0)
		if r.stat.calls > 0 {
			mean = r.stat.totalTime / time.Duration(r.stat.calls)
		}
		out[i] = HandlerStat{
			Handler: r.key,
			Calls:   r.stat.calls,
			Cancels: r.stat.cancels,
			Mean:    mean,
			Max:     r.stat.maxTime,
		}
	}
	return out
}

// String renders the profile as a table.
func (p *HandlerProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-50s %8s %8s %10s %10s\n", "event/handler", "calls", "cancels", "mean", "max")
	for _, s := range p.Stats() {
		fmt.Fprintf(&b, "%-50s %8d %8d %10v %10v\n",
			s.Handler, s.Calls, s.Cancels,
			s.Mean.Round(time.Nanosecond), s.Max.Round(time.Nanosecond))
	}
	return b.String()
}
