package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerProfileConcurrent checks Observe under concurrent handler
// completions (the event bus dispatches from many pooled workers): counts
// must not be lost and max must reflect the largest sample.
func TestHandlerProfileConcurrent(t *testing.T) {
	p := NewHandlerProfile()
	const workers = 8
	const perWorker = 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Observe(fakeEvent("MSG"), "RPCMain", time.Duration(w+1)*time.Millisecond, i%2 == 0)
			}
		}(w)
	}
	wg.Wait()

	stats := p.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s := stats[0]
	if s.Calls != workers*perWorker {
		t.Fatalf("calls = %d, want %d", s.Calls, workers*perWorker)
	}
	if s.Cancels != workers*perWorker/2 {
		t.Fatalf("cancels = %d, want %d", s.Cancels, workers*perWorker/2)
	}
	if s.Max != workers*time.Millisecond {
		t.Fatalf("max = %v, want %v", s.Max, workers*time.Millisecond)
	}
}

// TestHandlerProfileEmpty checks an untouched profile renders just the
// header and returns no rows.
func TestHandlerProfileEmpty(t *testing.T) {
	p := NewHandlerProfile()
	if rows := p.Stats(); len(rows) != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	out := p.String()
	if !strings.Contains(out, "event/handler") {
		t.Fatalf("String() = %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 1 {
		t.Fatalf("empty profile rendered %d lines", lines)
	}
}

// TestHandlerProfileSortsByTotalTime checks the report orders rows by
// cumulative time, not call count.
func TestHandlerProfileSortsByTotalTime(t *testing.T) {
	p := NewHandlerProfile()
	// "Cheap" runs often but briefly; "Costly" runs once but long.
	for i := 0; i < 10; i++ {
		p.Observe(fakeEvent("MSG"), "Cheap", time.Microsecond, false)
	}
	p.Observe(fakeEvent("MSG"), "Costly", time.Second, false)
	stats := p.Stats()
	if len(stats) != 2 || stats[0].Handler != "MSG/Costly" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Mean != time.Second {
		t.Fatalf("mean = %v", stats[0].Mean)
	}
}
