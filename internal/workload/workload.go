// Package workload drives configured RPC systems with reproducible client
// workloads for the experiment harness: closed-loop clients, payload
// generators, and crash/recovery scripts.
package workload

import (
	"fmt"
	"sync"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/proc"
	"mrpc/internal/trace"
)

// clockOrReal lets workload values default to wall-clock time while staying
// fully routed through clock.Clock, so a workload can drive a simulated
// system deterministically by injecting the system's Sim clock.
func clockOrReal(c clock.Clock) clock.Clock {
	if c == nil {
		return clock.NewReal()
	}
	return c
}

// Payload generates the argument bytes for the i-th call of a client.
type Payload func(client mrpc.ProcID, call int) []byte

// FixedPayload returns a Payload producing the same bytes every call.
func FixedPayload(b []byte) Payload {
	return func(mrpc.ProcID, int) []byte { return b }
}

// SeqPayload returns a Payload encoding "client:call" for tracing.
func SeqPayload() Payload {
	return func(c mrpc.ProcID, i int) []byte {
		return []byte(fmt.Sprintf("%d:%d", c, i))
	}
}

// ClosedLoop is a workload in which each client issues calls back-to-back
// (optionally separated by think time) until it has completed Calls calls.
type ClosedLoop struct {
	// Op is the operation to invoke.
	Op mrpc.OpID
	// Group is the destination server group.
	Group mrpc.Group
	// Calls is the number of calls per client.
	Calls int
	// Payload generates per-call arguments (default: empty).
	Payload Payload
	// Think pauses between a client's calls.
	Think time.Duration
	// Clock is the time source for pacing and latency measurement
	// (default: the real clock). Inject the system's clock to run the
	// workload under simulated time.
	Clock clock.Clock
}

// Result summarizes one workload execution.
type Result struct {
	Latency  *trace.Recorder
	OK       int
	Timeout  int
	Aborted  int
	Errors   int
	Elapsed  time.Duration
	CallsRun int
}

// Throughput returns completed (OK) calls per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("calls=%d ok=%d timeout=%d aborted=%d err=%d tput=%.0f/s %s",
		r.CallsRun, r.OK, r.Timeout, r.Aborted, r.Errors, r.Throughput(),
		r.Latency.Summary())
}

// Run executes the workload with one goroutine per client node and returns
// the aggregate result.
func (w ClosedLoop) Run(clients []*mrpc.Node) *Result {
	payload := w.Payload
	if payload == nil {
		payload = FixedPayload(nil)
	}
	res := &Result{Latency: trace.NewRecorder("latency")}
	clk := clockOrReal(w.Clock)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	start := clk.Now()
	for _, c := range clients {
		c := c
		wg.Add(1)
		proc.Go(func(_ *proc.Thread) {
			defer wg.Done()
			for i := 0; i < w.Calls; i++ {
				if w.Think > 0 {
					clk.Sleep(w.Think)
				}
				t0 := clk.Now()
				_, status, err := c.Call(w.Op, payload(c.ID(), i), w.Group)
				d := clk.Now().Sub(t0)
				mu.Lock()
				res.CallsRun++
				switch {
				case err != nil:
					res.Errors++
				case status == mrpc.StatusOK:
					res.OK++
					res.Latency.Add(d)
				case status == mrpc.StatusTimeout:
					res.Timeout++
				default:
					res.Aborted++
				}
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	res.Elapsed = clk.Now().Sub(start)
	return res
}

// OpenLoop is a workload in which calls arrive at a fixed rate regardless
// of completions (one goroutine is spawned per arrival, up to MaxInFlight
// outstanding). Unlike ClosedLoop it exposes queueing behaviour: if the
// service cannot keep up, latency grows instead of throughput saturating.
type OpenLoop struct {
	// Op is the operation to invoke.
	Op mrpc.OpID
	// Group is the destination server group.
	Group mrpc.Group
	// Rate is arrivals per second (across all clients).
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// MaxInFlight bounds outstanding calls (default 1024); arrivals beyond
	// the bound are counted as shed.
	MaxInFlight int
	// Payload generates per-call arguments (default: empty).
	Payload Payload
	// Clock is the time source for pacing and latency measurement
	// (default: the real clock).
	Clock clock.Clock
}

// OpenResult extends Result with arrival accounting.
type OpenResult struct {
	Result
	Offered int
	Shed    int
}

// Run generates arrivals round-robin across the clients and returns once
// every accepted call has completed.
func (w OpenLoop) Run(clients []*mrpc.Node) *OpenResult {
	if w.Rate <= 0 || len(clients) == 0 {
		return &OpenResult{Result: Result{Latency: trace.NewRecorder("latency")}}
	}
	if w.MaxInFlight <= 0 {
		w.MaxInFlight = 1024
	}
	payload := w.Payload
	if payload == nil {
		payload = FixedPayload(nil)
	}

	res := &OpenResult{Result: Result{Latency: trace.NewRecorder("latency")}}
	clk := clockOrReal(w.Clock)
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		inflight = make(chan struct{}, w.MaxInFlight)
	)
	launch := func(seq int) {
		res.Offered++
		select {
		case inflight <- struct{}{}:
		default:
			res.Shed++
			return
		}
		c := clients[seq%len(clients)]
		wg.Add(1)
		proc.Go(func(_ *proc.Thread) {
			defer wg.Done()
			defer func() { <-inflight }()
			t0 := clk.Now()
			_, status, err := c.Call(w.Op, payload(c.ID(), seq), w.Group)
			d := clk.Now().Sub(t0)
			mu.Lock()
			res.CallsRun++
			switch {
			case err != nil:
				res.Errors++
			case status == mrpc.StatusOK:
				res.OK++
				res.Latency.Add(d)
			case status == mrpc.StatusTimeout:
				res.Timeout++
			default:
				res.Aborted++
			}
			mu.Unlock()
		})
	}

	// Pace arrivals against the clock in ~1ms batches, so high rates are
	// not capped by timer resolution (a time.Ticker coalesces missed ticks
	// and would silently lower the offered rate).
	start := clk.Now()
	issued := 0
	for {
		elapsed := clk.Now().Sub(start)
		if elapsed >= w.Duration {
			break
		}
		due := int(w.Rate * elapsed.Seconds())
		if max := int(w.Rate * w.Duration.Seconds()); due > max {
			due = max
		}
		for issued < due {
			launch(issued)
			issued++
		}
		clk.Sleep(time.Millisecond)
	}
	wg.Wait()
	res.Elapsed = clk.Now().Sub(start)
	return res
}

// CrashScript crashes and recovers a node on a fixed cadence until stopped:
// after each Up period the node crashes, stays down for Down, then
// recovers. Stop it by closing the returned channel's counterpart.
type CrashScript struct {
	Node *mrpc.Node
	Up   time.Duration
	Down time.Duration
	// Clock is the time source for the cadence (default: the real clock).
	Clock clock.Clock
}

// Run executes the script until stop is closed, then returns the number of
// crash/recover cycles completed. The node is left recovered.
func (cs CrashScript) Run(stop <-chan struct{}) int {
	clk := clockOrReal(cs.Clock)
	cycles := 0
	for {
		select {
		case <-stop:
			if cs.Node.Down() {
				_ = cs.Node.Recover()
			}
			return cycles
		case <-clock.After(clk, cs.Up):
		}
		cs.Node.Crash()
		select {
		case <-stop:
			_ = cs.Node.Recover()
			return cycles
		case <-clock.After(clk, cs.Down):
		}
		if err := cs.Node.Recover(); err == nil {
			cycles++
		}
	}
}
