package workload_test

import (
	"testing"
	"time"

	"mrpc"
	"mrpc/internal/workload"
)

func testSystem(t *testing.T) (*mrpc.System, mrpc.OpID, mrpc.Group) {
	t.Helper()
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	t.Cleanup(sys.Stop)
	reg := mrpc.NewRegistry()
	echo := reg.Register("echo", func(_ *mrpc.Thread, args []byte) []byte { return args })
	group := sys.Group(1)
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return reg }); err != nil {
		t.Fatal(err)
	}
	return sys, echo, group
}

func TestClosedLoopRun(t *testing.T) {
	sys, echo, group := testSystem(t)
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	var clients []*mrpc.Node
	for i := 0; i < 3; i++ {
		c, err := sys.AddClient(mrpc.ProcID(100+i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	res := workload.ClosedLoop{
		Op:      echo,
		Group:   group,
		Calls:   5,
		Payload: workload.SeqPayload(),
	}.Run(clients)

	if res.CallsRun != 15 || res.OK != 15 {
		t.Fatalf("result = %s", res)
	}
	if res.Latency.Count() != 15 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestPayloads(t *testing.T) {
	fixed := workload.FixedPayload([]byte("x"))
	if string(fixed(1, 0)) != "x" || string(fixed(2, 9)) != "x" {
		t.Fatal("FixedPayload")
	}
	seq := workload.SeqPayload()
	if string(seq(7, 3)) != "7:3" {
		t.Fatalf("SeqPayload = %q", seq(7, 3))
	}
}

func TestOpenLoopRun(t *testing.T) {
	sys, echo, group := testSystem(t)
	cfg := mrpc.ExactlyOnce()
	cfg.RetransTimeout = 10 * time.Millisecond
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		t.Fatal(err)
	}

	res := workload.OpenLoop{
		Op:       echo,
		Group:    group,
		Rate:     500,
		Duration: 100 * time.Millisecond,
	}.Run([]*mrpc.Node{client})

	if res.Offered == 0 || res.OK == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.OK+res.Shed+res.Timeout+res.Aborted+res.Errors != res.Offered {
		t.Fatalf("accounting mismatch: %+v", res)
	}
}

func TestOpenLoopDegenerate(t *testing.T) {
	res := workload.OpenLoop{}.Run(nil)
	if res.Offered != 0 || res.OK != 0 {
		t.Fatalf("degenerate run produced work: %+v", res)
	}
}

func TestCrashScript(t *testing.T) {
	sys, _, _ := testSystem(t)
	node, _ := sys.Node(1)

	stop := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		done <- workload.CrashScript{
			Node: node,
			Up:   5 * time.Millisecond,
			Down: 5 * time.Millisecond,
		}.Run(stop)
	}()
	time.Sleep(40 * time.Millisecond)
	close(stop)
	cycles := <-done
	if cycles < 1 {
		t.Fatalf("cycles = %d, want at least one crash/recover", cycles)
	}
	if node.Down() {
		t.Fatal("node left down after script stop")
	}
}
