// Package msg defines the message and identifier types exchanged between
// the user protocol, the gRPC composite protocol, and the underlying
// communication substrate, mirroring the Net_Msgtype / User_Msgtype
// definitions in §4.2 of Hiltunen & Schlichting (TR 94-28).
//
// One deliberate deviation from the paper (D1 in DESIGN.md): call
// identifiers are client-local, so every server-side table is keyed by the
// (client, id) pair. NetMsg therefore carries the originating client
// explicitly, which also lets a message be forwarded (e.g. to the total
// order leader) without losing the identity of the caller.
package msg

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// ProcID identifies a process (site). Zero is not a valid process.
type ProcID int32

// OpID identifies a remote operation registered with the server stub.
type OpID uint32

// CallID is a client-local call identifier; (client, CallID) is globally
// unique within an incarnation sequence.
type CallID int64

// Incarnation numbers client lifetimes across crashes: a recovered client
// uses a strictly larger incarnation, which the orphan-handling
// micro-protocols use to partition calls into generations.
type Incarnation int32

// CallKey is the global identity of a call (deviation D1).
type CallKey struct {
	Client ProcID
	ID     CallID
}

// String renders the key as client:id.
func (k CallKey) String() string { return fmt.Sprintf("%d:%d", k.Client, k.ID) }

// Group identifies a server group by its member processes. The paper treats
// group_id as opaque; here the membership is carried explicitly so the
// substrate can multicast and Total Order can compute the leader.
type Group []ProcID

// NewGroup returns a normalized (sorted, deduplicated) group.
func NewGroup(members ...ProcID) Group {
	g := make(Group, 0, len(members))
	seen := make(map[ProcID]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			g = append(g, m)
		}
	}
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	return g
}

// Contains reports whether p is a member of the group.
func (g Group) Contains(p ProcID) bool {
	for _, m := range g {
		if m == p {
			return true
		}
	}
	return false
}

// Leader returns the member with the largest identifier, excluding any
// members in down — the paper's leader rule for Total Order ("the server
// with the largest unique identifier of all non-failed servers"). It
// returns 0 if no member is up.
func (g Group) Leader(down map[ProcID]bool) ProcID {
	var best ProcID
	for _, m := range g {
		if down[m] {
			continue
		}
		if m > best {
			best = m
		}
	}
	return best
}

// Clone returns an independent copy of the group.
func (g Group) Clone() Group {
	out := make(Group, len(g))
	copy(out, g)
	return out
}

// Equal reports whether two normalized groups have identical membership.
func (g Group) Equal(o Group) bool {
	if len(g) != len(o) {
		return false
	}
	for i := range g {
		if g[i] != o[i] {
			return false
		}
	}
	return true
}

// NetOp is the network message type (Net_Optype in the paper, plus a
// heartbeat type used by the membership substrate).
type NetOp uint8

// Network message types. CALL/REPLY/ACK/ORDER are the paper's
// Net_Optype; HEARTBEAT carries the membership detector; PROBE/PROBE_ACK
// implement the paper's second orphan-detection option (periodically
// probing the client, §4.4.7).
const (
	OpCall NetOp = iota + 1
	OpReply
	OpAck // acknowledges a Reply (client -> server, Unique Execution)
	OpOrder
	OpHeartbeat
	OpProbe
	OpProbeAck
	OpCallAck // acknowledges receipt of a Call (server -> client, Reliable Communication)

	// OpOrderQuery and OpOrderInfo implement the leader-change agreement
	// phase the paper omits from Total Order (§4.4.6): a new leader asks
	// the surviving members for the assignments they know, and they reply
	// with their order tables serialized in Args.
	OpOrderQuery
	OpOrderInfo

	// OpBatch is a frame carrying several coalesced messages to one
	// destination (deviation D16): the flush queue amortizes framing and
	// network admission across the batch. Batch frames are built only by
	// NewBatch (mrpclint: batch-freeze) and never nest.
	OpBatch

	// OpRelayAck aggregates receipt acknowledgements up a dissemination
	// tree (D17): Args carries the ProcIDs of the members covered (encoded
	// by AppendProcIDs), AckID the call being acknowledged, Client the
	// call's originating client. Interior nodes merge their children's
	// covers with their own before forwarding toward the origin, so the
	// origin's Reliable Communication settles a whole subtree per message.
	OpRelayAck
)

var netOpNames = [...]string{"", "CALL", "REPLY", "ACK", "ORDER", "HEARTBEAT", "PROBE", "PROBE_ACK", "CALL_ACK", "ORDER_QUERY", "ORDER_INFO", "BATCH", "RELAY_ACK"}

// String returns the paper's name for the message type.
func (o NetOp) String() string {
	if int(o) < len(netOpNames) && o > 0 {
		return netOpNames[o]
	}
	return fmt.Sprintf("NETOP(%d)", uint8(o))
}

// NetMsg is the message exchanged between gRPC instances over the
// communication substrate (Net_Msgtype).
//
// A message handed to the transport is frozen (Freeze): every recipient —
// including the sender's own retained references and duplicate deliveries —
// shares the same read-only body instead of receiving a deep clone
// (deviation D13 in DESIGN.md). Handlers outside internal/msg and
// internal/netsim must treat a NetMsg as immutable; mrpclint's
// msg-immutability rule enforces this statically. Code that genuinely needs
// a private copy takes Mutable (clone-on-write) or Clone.
type NetMsg struct {
	Type   NetOp
	ID     CallID
	Client ProcID // originating client of the call (deviation D1)
	Op     OpID
	Args   []byte
	Server Group       // identity of the server group
	Sender ProcID      // sender of this message
	Inc    Incarnation // sender's incarnation number (clients)
	AckID  CallID      // id of a call being acknowledged (ACK)
	Order  int64       // total order sequence number (ORDER)
	VC     VClock      // causal timestamp (Causal Order extension)
	Relay  uint8       // dissemination-tree fanout k; 0 = flat (D17)

	// Batch holds the coalesced sub-messages of an OpBatch frame, in send
	// order. Set only by NewBatch (and the codec on decode); the frame and
	// every element are frozen before they can be shared.
	Batch []*NetMsg

	// frozen marks the message shared and immutable. Accessed atomically:
	// Freeze happens-before every share, but concurrent Frozen reads from
	// delivery goroutines must not race the flag itself.
	frozen uint32

	// wire holds the exact encoded frame this message was decoded from
	// (DecodeShared only). A relay that forwards the message re-uses these
	// immutable bytes instead of re-encoding — the dissemination tree's
	// zero-re-encode hop (D17). Never set on a mutable message: Clone (and
	// hence Mutable) drops it, since a modified copy would go stale.
	wire []byte
}

// Key returns the global call key the message refers to.
func (m *NetMsg) Key() CallKey { return CallKey{Client: m.Client, ID: m.ID} }

// Wire returns the encoded frame m was decoded from, or nil when m was
// built locally. The bytes are immutable and shared (D13): a transport may
// forward them verbatim but must never write into them.
func (m *NetMsg) Wire() []byte { return m.wire }

// SetRelay stamps the dissemination-tree fanout on a message about to be
// multicast in tree mode (D17). Only the tree's origin stamps; relays
// forward the frame untouched. Stamping a frozen message would mutate
// shared state, so it panics — the disseminator stamps before the
// transport freezes.
func (m *NetMsg) SetRelay(k int) {
	if m.Frozen() {
		panic("msg: SetRelay on a frozen message")
	}
	m.Relay = uint8(k)
}

// Freeze marks m immutable. The transport freezes every message it accepts
// before sharing it across destinations; from then on all fields are
// read-only.
func (m *NetMsg) Freeze() { atomic.StoreUint32(&m.frozen, 1) }

// Frozen reports whether m has been frozen (is potentially shared).
func (m *NetMsg) Frozen() bool { return atomic.LoadUint32(&m.frozen) == 1 }

// Mutable returns a message that is safe to modify: m itself when it has
// never been frozen, otherwise a deep unfrozen copy (clone-on-write).
func (m *NetMsg) Mutable() *NetMsg {
	if m.Frozen() {
		return m.Clone()
	}
	return m
}

// Clone returns a deep, unfrozen copy with an independent lifetime. The
// elements of a batch frame stay shared (and frozen): a batch is a routing
// envelope, and its sub-messages are immutable by construction.
func (m *NetMsg) Clone() *NetMsg {
	c := *m
	c.frozen = 0
	c.wire = nil // a copy may be modified; retained bytes would go stale
	c.Server = m.Server.Clone()
	c.VC = m.VC.Clone()
	if m.Args != nil {
		c.Args = append([]byte(nil), m.Args...)
	}
	if m.Batch != nil {
		c.Batch = append([]*NetMsg(nil), m.Batch...)
	}
	return &c
}

// NewBatch builds an OpBatch frame coalescing subs (in order) for one
// destination. It freezes every sub-message and the frame itself, so the
// result is immutable from birth — the only state in which a batch may be
// handed to the transport (mrpclint: batch-freeze). Batches do not nest,
// and a batch of one message is legal but pointless; callers should send
// singletons directly.
func NewBatch(sender ProcID, subs []*NetMsg) *NetMsg {
	for _, s := range subs {
		if s.Type == OpBatch {
			panic("msg: batch frames do not nest")
		}
		s.Freeze()
	}
	b := &NetMsg{Type: OpBatch, Sender: sender, Batch: subs}
	b.Freeze()
	return b
}

// String renders a compact human-readable form for traces.
func (m *NetMsg) String() string {
	return fmt.Sprintf("%s key=%s op=%d from=%d inc=%d ack=%d ord=%d |args|=%d",
		m.Type, m.Key(), m.Op, m.Sender, m.Inc, m.AckID, m.Order, len(m.Args))
}

// UserOp is the message type between the user protocol and gRPC
// (User_Optype).
type UserOp uint8

// User message types: Call issues an RPC, Request retrieves the result of a
// previously issued asynchronous call.
const (
	UserCall UserOp = iota + 1
	UserRequest
)

// Status is the return status of a call (Status_type).
type Status uint8

// Call statuses. A call is WAITING until accepted (OK) or timed out;
// ABORTED marks calls released when the local composite shuts down or the
// site crashes (not in the paper, which leaves local-crash cleanup implicit).
const (
	StatusWaiting Status = iota + 1
	StatusOK
	StatusTimeout
	StatusAborted
)

var statusNames = [...]string{"", "WAITING", "OK", "TIMEOUT", "ABORTED"}

// String returns the paper's name for the status.
func (s Status) String() string {
	if int(s) < len(statusNames) && s > 0 {
		return statusNames[s]
	}
	return fmt.Sprintf("STATUS(%d)", uint8(s))
}

// UserMsg is the message exchanged between the user protocol and gRPC
// (User_Msgtype). For a synchronous Call the composite fills Args and Status
// in place before returning to the caller.
type UserMsg struct {
	Type   UserOp
	ID     CallID
	Op     OpID
	Args   []byte
	Server Group
	Status Status

	// Wait is set by the call-semantics micro-protocol during dispatch when
	// the caller must block for the result: the framework then parks on the
	// call's semaphore and collects Args/Status/Op after the dispatch
	// handlers return, outside the reconfiguration barrier, so a parked
	// caller never blocks a swap. A flag instead of a continuation keeps the
	// dispatch path closure-free (the collect logic lives in the framework).
	Wait bool
}
