package msg

import "encoding/binary"

// Dissemination-tree topology (DESIGN.md D17).
//
// Tree mode replaces the flat O(g) multicast with a deterministic k-ary
// spanning tree rooted at the message's origin: the origin sends to at most
// k members, each of whom relays the same frozen frame to its own children.
// The tree is a pure function of (group, origin, k) so every node — and
// every retransmission — derives the identical shape from the frame alone,
// with no negotiation and no per-tree state on the wire beyond the fanout
// byte (NetMsg.Relay).
//
// Shape: the members are group minus the origin, in the group's normalized
// (sorted) order; position j's static parent is the origin for j < k and
// position j/k−1 otherwise, i.e. the classic array heap laid out k-ary.
//
// Failures re-parent deterministically: a member whose static ancestors are
// all down (per the local failure-detector view) is adopted by its first
// live static ancestor — equivalently, the effective tree is the static
// tree with down interior nodes spliced out. Because the effective ancestor
// chain is exactly the live subsequence of the static chain, a live node's
// effective subtree equals its static subtree, which keeps ack-aggregation
// expectations stable across repair.

// treeIndex returns self's position among group\{origin}: −1 for the
// origin itself, −2 when self is in neither role.
func treeIndex(group Group, origin, self ProcID) int {
	if self == origin {
		return -1
	}
	j := 0
	for _, p := range group {
		if p == origin {
			continue
		}
		if p == self {
			return j
		}
		j++
	}
	return -2
}

// treeMember returns the member at tree position j.
func treeMember(group Group, origin ProcID, j int) ProcID {
	i := 0
	for _, p := range group {
		if p == origin {
			continue
		}
		if i == j {
			return p
		}
		i++
	}
	return 0
}

// treeParentIdx returns the static parent position of j (−1 = origin).
func treeParentIdx(j, k int) int {
	if j < k {
		return -1
	}
	return j/k - 1
}

// TreeChildren returns the members self relays to in the k-ary tree of
// group rooted at origin: the live members whose first live static
// ancestor (per down, which may be nil) is self. The result is in the
// group's sorted order. It is empty for leaves and for processes outside
// the tree.
func TreeChildren(group Group, origin, self ProcID, k int, down func(ProcID) bool) Group {
	if k < 1 {
		return nil
	}
	selfIdx := treeIndex(group, origin, self)
	if selfIdx == -2 {
		return nil
	}
	var out Group
	j := 0
	for _, p := range group {
		if p == origin {
			continue
		}
		idx := j
		j++
		if idx == selfIdx || (down != nil && down(p)) {
			continue
		}
		a := treeParentIdx(idx, k)
		for a >= 0 && a != selfIdx && down != nil && down(treeMember(group, origin, a)) {
			a = treeParentIdx(a, k)
		}
		if a == selfIdx {
			out = append(out, p)
		}
	}
	return out
}

// TreeParent returns the node self forwards its aggregated relay ack to:
// its first live static ancestor, or origin when the chain is exhausted.
// Zero when self is the origin or outside the tree.
func TreeParent(group Group, origin, self ProcID, k int, down func(ProcID) bool) ProcID {
	if k < 1 {
		return 0
	}
	selfIdx := treeIndex(group, origin, self)
	if selfIdx < 0 {
		return 0
	}
	a := treeParentIdx(selfIdx, k)
	for a >= 0 {
		p := treeMember(group, origin, a)
		if down == nil || !down(p) {
			return p
		}
		a = treeParentIdx(a, k)
	}
	return origin
}

// TreeSubtree returns the members of self's subtree (strict descendants in
// the static tree — see the package note on why this equals the effective
// subtree of a live node), excluding members reported down. This is the
// coverage an interior node waits for before forwarding its aggregated
// relay ack.
func TreeSubtree(group Group, origin, self ProcID, k int, down func(ProcID) bool) Group {
	if k < 1 {
		return nil
	}
	selfIdx := treeIndex(group, origin, self)
	if selfIdx == -2 {
		return nil
	}
	var out Group
	j := 0
	for _, p := range group {
		if p == origin {
			continue
		}
		idx := j
		j++
		if idx == selfIdx || (down != nil && down(p)) {
			continue
		}
		a := treeParentIdx(idx, k)
		for a >= 0 && a != selfIdx {
			a = treeParentIdx(a, k)
		}
		if a == selfIdx { // reaches −1 for the origin: every live member
			out = append(out, p)
		}
	}
	return out
}

// AppendProcIDs encodes ids (big-endian int32 each) into buf — the Args
// payload of an OpRelayAck frame.
func AppendProcIDs(buf []byte, ids []ProcID) []byte {
	for _, p := range ids {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	return buf
}

// DecodeProcIDs decodes an AppendProcIDs payload; trailing partial entries
// are ignored.
func DecodeProcIDs(buf []byte) []ProcID {
	out := make([]ProcID, 0, len(buf)/4)
	for len(buf) >= 4 {
		out = append(out, ProcID(binary.BigEndian.Uint32(buf)))
		buf = buf[4:]
	}
	return out
}
