package msg

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMsg() *NetMsg {
	return &NetMsg{
		Type:   OpReply,
		ID:     1<<40 | 17,
		Client: 12345,
		Op:     678,
		Args:   []byte("the quick brown fox"),
		Server: NewGroup(1, 2, 3),
		Sender: 54321,
		Inc:    9,
		AckID:  -1,
		Order:  1 << 50,
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := sampleMsg()
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", m, got)
	}
}

func TestCodecEmptyFields(t *testing.T) {
	m := &NetMsg{Type: OpAck}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Args != nil || got.Server != nil {
		t.Fatalf("empty fields decoded non-nil: %+v", got)
	}
	if got.Type != OpAck {
		t.Fatalf("type = %v", got.Type)
	}
}

// TestDecodeShared pins the zero-copy decode contract (DESIGN.md D13): the
// message arrives frozen, its Args borrow the wire buffer directly
// (capacity-clamped so an append cannot spill into trailing bytes), and
// Mutable detaches a private copy. Plain Decode keeps copying.
func TestDecodeShared(t *testing.T) {
	m := sampleMsg()
	wire := m.Encode()

	shared, err := DecodeShared(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Frozen() {
		t.Fatal("DecodeShared returned an unfrozen message")
	}
	if !bytes.Equal(shared.Args, m.Args) {
		t.Fatalf("Args = %q, want %q", shared.Args, m.Args)
	}
	// Aliasing is observable without unsafe: flip a wire byte and the
	// borrowed Args must see it.
	argByte := &shared.Args[0]
	*argByte ^= 0xFF
	if !bytes.Contains(wire, shared.Args) {
		t.Fatal("DecodeShared copied Args instead of borrowing the buffer")
	}
	*argByte ^= 0xFF
	if cap(shared.Args) != len(shared.Args) {
		t.Fatal("borrowed Args not capacity-clamped")
	}

	c := shared.Mutable()
	if c == shared || c.Frozen() || &c.Args[0] == &shared.Args[0] {
		t.Fatal("Mutable() of a shared decode must detach from the wire buffer")
	}

	plain, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Frozen() {
		t.Fatal("Decode must return an unfrozen message")
	}
	plain.Args[0] ^= 0xFF
	if bytes.Contains(wire, plain.Args) {
		t.Fatal("Decode must copy Args out of the wire buffer")
	}
	plain.Args[0] ^= 0xFF
}

func TestEncodedLenExact(t *testing.T) {
	for _, m := range []*NetMsg{sampleMsg(), {Type: OpCall}, {Type: OpHeartbeat, Args: make([]byte, 1000)}} {
		if got := len(m.Encode()); got != m.EncodedLen() {
			t.Fatalf("EncodedLen = %d, actual %d", m.EncodedLen(), got)
		}
	}
}

func TestAppendEncode(t *testing.T) {
	prefix := []byte("prefix")
	m := sampleMsg()
	out := m.AppendEncode(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendEncode clobbered the prefix")
	}
	got, err := Decode(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID {
		t.Fatal("AppendEncode payload corrupt")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("nil: err = %v, want ErrShortMessage", err)
	}
	if _, err := Decode(make([]byte, 10)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short: err = %v, want ErrShortMessage", err)
	}

	good := sampleMsg().Encode()
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: err = %v, want ErrBadVersion", err)
	}

	bad = append([]byte(nil), good...)
	bad[1] = 0 // invalid type
	if _, err := Decode(bad); err == nil {
		t.Fatal("invalid message type accepted")
	}

	// Truncated payload.
	if _, err := Decode(good[:len(good)-1]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("truncated: err = %v, want ErrShortMessage", err)
	}
	// Trailing junk.
	if _, err := Decode(append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("trailing junk: err = %v, want ErrShortMessage", err)
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, id int64, client int32, op uint32, sender int32,
		inc int32, ackid int64, order int64, args []byte, members []int32) bool {
		m := &NetMsg{
			Type:   NetOp(typ%5) + OpCall,
			ID:     CallID(id),
			Client: ProcID(client),
			Op:     OpID(op),
			Sender: ProcID(sender),
			Inc:    Incarnation(inc),
			AckID:  CallID(ackid),
			Order:  order,
		}
		if len(args) > 0 {
			m.Args = args
		}
		if len(members) > 0 {
			if len(members) > 100 {
				members = members[:100]
			}
			g := make(Group, len(members))
			for i, p := range members {
				g[i] = ProcID(p)
			}
			m.Server = g
		}
		got, err := Decode(m.Encode())
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Arbitrary bytes must produce an error or a message, never a panic.
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
