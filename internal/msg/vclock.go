package msg

import (
	"fmt"
	"sort"
	"strings"
)

// VClock is a vector clock mapping a process to the number of its causally
// known calls. It supports the Causal Order micro-protocol — an extension
// beyond the paper's Figure 4 (the paper's §2.2 notes that "other variants
// such as partial or causal order have also been defined").
type VClock map[ProcID]int64

// Clone returns an independent copy (nil stays nil).
func (v VClock) Clone() VClock {
	if v == nil {
		return nil
	}
	out := make(VClock, len(v))
	for p, n := range v {
		out[p] = n
	}
	return out
}

// Get returns the counter for p (0 when absent or nil).
func (v VClock) Get(p ProcID) int64 { return v[p] }

// Merge folds o into v entry-wise with max, returning v (allocating if v
// is nil).
func (v VClock) Merge(o VClock) VClock {
	if len(o) == 0 {
		return v
	}
	if v == nil {
		v = make(VClock, len(o))
	}
	for p, n := range o {
		if n > v[p] {
			v[p] = n
		}
	}
	return v
}

// Equal reports entry-wise equality, treating absent entries as zero.
func (v VClock) Equal(o VClock) bool {
	for p, n := range v {
		if o.Get(p) != n {
			return false
		}
	}
	for p, n := range o {
		if v.Get(p) != n {
			return false
		}
	}
	return true
}

// String renders the clock deterministically for traces.
func (v VClock) String() string {
	ps := make([]ProcID, 0, len(v))
	for p := range v {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", p, v[p])
	}
	b.WriteByte('}')
	return b.String()
}
