package msg

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestVClockBasics(t *testing.T) {
	var v VClock
	if v.Get(1) != 0 {
		t.Fatal("nil clock Get")
	}
	v = v.Merge(VClock{1: 5, 2: 3})
	v = v.Merge(VClock{1: 2, 3: 7})
	want := VClock{1: 5, 2: 3, 3: 7}
	if !v.Equal(want) {
		t.Fatalf("merged = %v, want %v", v, want)
	}
	if v.Merge(nil).Get(1) != 5 {
		t.Fatal("merge nil changed clock")
	}
}

func TestVClockClone(t *testing.T) {
	if VClock(nil).Clone() != nil {
		t.Fatal("nil clone")
	}
	v := VClock{1: 1}
	c := v.Clone()
	c[1] = 9
	if v[1] != 1 {
		t.Fatal("clone aliases")
	}
}

func TestVClockEqual(t *testing.T) {
	if !(VClock{1: 0}).Equal(VClock{}) {
		t.Fatal("zero entries must equal absent entries")
	}
	if (VClock{1: 1}).Equal(VClock{1: 2}) {
		t.Fatal("unequal clocks equal")
	}
	if (VClock{1: 1}).Equal(VClock{2: 1}) {
		t.Fatal("different keys equal")
	}
}

func TestVClockString(t *testing.T) {
	got := VClock{3: 1, 1: 2}.String()
	if got != "{1:2 3:1}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCodecRoundTripWithVC(t *testing.T) {
	m := sampleMsg()
	m.VC = VClock{100: 3, 101: 1, 7: 1 << 40}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", m, got)
	}
	if got.EncodedLen() != len(m.Encode()) {
		t.Fatal("EncodedLen with VC wrong")
	}
}

func TestQuickVClockMergeIsLUB(t *testing.T) {
	// Property: merge is the least upper bound — it dominates both inputs
	// and is dominated by any other common upper bound (checked via
	// idempotence, commutativity and entry-wise max).
	f := func(a, b map[int32]uint32) bool {
		// Counters are non-negative by construction (each process only
		// increments), so the generated inputs are masked accordingly.
		va := make(VClock, len(a))
		for p, n := range a {
			va[ProcID(p)] = int64(n)
		}
		vb := make(VClock, len(b))
		for p, n := range b {
			vb[ProcID(p)] = int64(n)
		}
		m1 := va.Clone().Merge(vb)
		m2 := vb.Clone().Merge(va)
		if !m1.Equal(m2) {
			return false
		}
		for p, n := range va {
			if m1.Get(p) < n {
				return false
			}
		}
		for p, n := range vb {
			if m1.Get(p) < n {
				return false
			}
		}
		for p, n := range m1 {
			if n != max64(va.Get(p), vb.Get(p)) {
				return false
			}
		}
		return m1.Clone().Merge(va).Equal(m1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
