package msg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

func sampleBatch() *NetMsg {
	subs := []*NetMsg{
		{Type: OpCall, ID: 7, Client: 100, Op: 3, Args: []byte("first"),
			Server: NewGroup(1, 2), Sender: 100, Inc: 1},
		{Type: OpCall, ID: 8, Client: 100, Op: 3, Args: []byte("second"),
			Server: NewGroup(1, 2), Sender: 100, Inc: 1},
		{Type: OpCallAck, ID: 5, Client: 100, Sender: 2, AckID: 5},
	}
	return NewBatch(100, subs)
}

func TestNewBatchFreezes(t *testing.T) {
	b := sampleBatch()
	if !b.Frozen() {
		t.Fatal("NewBatch returned an unfrozen frame")
	}
	for i, s := range b.Batch {
		if !s.Frozen() {
			t.Fatalf("sub-message %d not frozen by NewBatch", i)
		}
	}
}

func TestNewBatchRejectsNesting(t *testing.T) {
	inner := sampleBatch()
	defer func() {
		if recover() == nil {
			t.Fatal("NewBatch accepted a nested batch frame")
		}
	}()
	NewBatch(100, []*NetMsg{inner})
}

func TestBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	wire := b.Encode()
	if len(wire) != b.EncodedLen() {
		t.Fatalf("EncodedLen = %d, actual %d", b.EncodedLen(), len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != OpBatch || got.Sender != b.Sender {
		t.Fatalf("frame header mismatch: %+v", got)
	}
	if len(got.Batch) != len(b.Batch) {
		t.Fatalf("decoded %d sub-messages, want %d", len(got.Batch), len(b.Batch))
	}
	for i, want := range b.Batch {
		g := got.Batch[i]
		// Compare the exported fields; frozen state differs by design
		// (Decode copies, so its results start mutable).
		w := want.Clone()
		gc := g.Clone()
		if !reflect.DeepEqual(w, gc) {
			t.Fatalf("sub-message %d mismatch:\n in  %+v\n out %+v", i, w, gc)
		}
	}
}

func TestBatchDecodeShared(t *testing.T) {
	b := sampleBatch()
	wire := b.Encode()
	got, err := DecodeShared(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Frozen() {
		t.Fatal("DecodeShared returned an unfrozen frame")
	}
	for i, s := range got.Batch {
		if !s.Frozen() {
			t.Fatalf("shared-decoded sub-message %d not frozen", i)
		}
		if len(s.Args) > 0 {
			// Sub-message Args must borrow the one shared wire buffer.
			argByte := &s.Args[0]
			*argByte ^= 0xFF
			if !bytes.Contains(wire, s.Args) {
				t.Fatalf("sub-message %d Args copied instead of borrowed", i)
			}
			*argByte ^= 0xFF
			if cap(s.Args) != len(s.Args) {
				t.Fatalf("sub-message %d Args not capacity-clamped", i)
			}
		}
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	b := sampleBatch()
	good := b.Encode()

	// Truncating the frame fails the exact-length check.
	if _, err := Decode(good[:len(good)-1]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("truncated frame: err = %v, want ErrShortMessage", err)
	}

	// Corrupt the count so a sub-frame is missing.
	bad := append([]byte(nil), good...)
	off := fixedHeaderLen // payload starts right after the header (no group/VC)
	binary.BigEndian.PutUint16(bad[off:], uint16(len(b.Batch)+1))
	if _, err := Decode(bad); err == nil {
		t.Fatal("over-counted batch accepted")
	}
	binary.BigEndian.PutUint16(bad[off:], uint16(len(b.Batch)-1))
	if _, err := Decode(bad); err == nil {
		t.Fatal("batch with trailing sub-frame bytes accepted")
	}

	// A nested batch on the wire is rejected even though the codec could
	// mechanically parse it.
	inner := &NetMsg{Type: OpCall, ID: 1, Client: 100, Sender: 100}
	innerBatch := NewBatch(100, []*NetMsg{inner})
	outer := &NetMsg{Type: OpBatch, Sender: 100, Batch: []*NetMsg{innerBatch}}
	if _, err := Decode(outer.Encode()); err == nil {
		t.Fatal("nested batch frame accepted by decode")
	}
}

func TestBatchEncodedLenExact(t *testing.T) {
	one := NewBatch(1, []*NetMsg{{Type: OpAck, ID: 1}})
	if got := len(one.Encode()); got != one.EncodedLen() {
		t.Fatalf("singleton batch: EncodedLen = %d, actual %d", one.EncodedLen(), got)
	}
	empty := NewBatch(1, nil)
	if got := len(empty.Encode()); got != empty.EncodedLen() {
		t.Fatalf("empty batch: EncodedLen = %d, actual %d", empty.EncodedLen(), got)
	}
	if back, err := Decode(empty.Encode()); err != nil || len(back.Batch) != 0 {
		t.Fatalf("empty batch round trip: %v %+v", err, back)
	}
}
