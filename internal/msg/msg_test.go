package msg

import (
	"strings"
	"testing"
)

func TestNewGroupNormalizes(t *testing.T) {
	g := NewGroup(3, 1, 2, 3, 1)
	if len(g) != 3 {
		t.Fatalf("len = %d, want 3 (deduplicated)", len(g))
	}
	for i := 0; i < len(g)-1; i++ {
		if g[i] >= g[i+1] {
			t.Fatalf("group not sorted: %v", g)
		}
	}
}

func TestGroupContains(t *testing.T) {
	g := NewGroup(1, 5, 9)
	if !g.Contains(5) || g.Contains(4) {
		t.Fatalf("Contains misbehaved on %v", g)
	}
}

func TestGroupLeader(t *testing.T) {
	g := NewGroup(2, 7, 4)
	if got := g.Leader(nil); got != 7 {
		t.Fatalf("leader = %d, want 7 (largest id)", got)
	}
	if got := g.Leader(map[ProcID]bool{7: true}); got != 4 {
		t.Fatalf("leader with 7 down = %d, want 4", got)
	}
	if got := g.Leader(map[ProcID]bool{2: true, 4: true, 7: true}); got != 0 {
		t.Fatalf("leader with all down = %d, want 0", got)
	}
}

func TestGroupCloneIndependent(t *testing.T) {
	g := NewGroup(1, 2)
	c := g.Clone()
	c[0] = 99
	if g[0] == 99 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestGroupEqual(t *testing.T) {
	if !NewGroup(1, 2).Equal(NewGroup(2, 1)) {
		t.Fatal("normalized equal groups reported unequal")
	}
	if NewGroup(1, 2).Equal(NewGroup(1, 2, 3)) {
		t.Fatal("different groups reported equal")
	}
	if NewGroup(1, 3).Equal(NewGroup(1, 2)) {
		t.Fatal("different members reported equal")
	}
}

func TestNetMsgClone(t *testing.T) {
	m := &NetMsg{
		Type:   OpCall,
		ID:     7,
		Client: 3,
		Args:   []byte{1, 2, 3},
		Server: NewGroup(1, 2),
	}
	c := m.Clone()
	c.Args[0] = 99
	c.Server[0] = 42
	if m.Args[0] == 99 || m.Server[0] == 42 {
		t.Fatal("Clone shares Args or Server storage")
	}
}

func TestCallKey(t *testing.T) {
	m := &NetMsg{ID: 9, Client: 4}
	if k := m.Key(); k.Client != 4 || k.ID != 9 {
		t.Fatalf("key = %+v", k)
	}
	if s := (CallKey{Client: 4, ID: 9}).String(); s != "4:9" {
		t.Fatalf("key string = %q", s)
	}
}

func TestEnumStrings(t *testing.T) {
	if OpCall.String() != "CALL" || OpReply.String() != "REPLY" ||
		OpAck.String() != "ACK" || OpOrder.String() != "ORDER" ||
		OpHeartbeat.String() != "HEARTBEAT" {
		t.Fatal("NetOp names wrong")
	}
	if !strings.Contains(NetOp(42).String(), "42") {
		t.Fatal("unknown NetOp string")
	}
	if StatusWaiting.String() != "WAITING" || StatusOK.String() != "OK" ||
		StatusTimeout.String() != "TIMEOUT" || StatusAborted.String() != "ABORTED" {
		t.Fatal("Status names wrong")
	}
	if !strings.Contains(Status(42).String(), "42") {
		t.Fatal("unknown Status string")
	}
}

func TestNetMsgString(t *testing.T) {
	m := &NetMsg{Type: OpCall, ID: 1, Client: 2, Sender: 3, Args: []byte("abc")}
	s := m.String()
	if !strings.Contains(s, "CALL") || !strings.Contains(s, "2:1") {
		t.Fatalf("String() = %q", s)
	}
}
