package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
)

// Wire format (big-endian):
//
//	byte    version (1)
//	byte    type
//	byte    relay (dissemination-tree fanout; 0 = flat)
//	int64   id
//	int32   client
//	uint32  op
//	int32   sender
//	int32   inc
//	int64   ackid
//	int64   order
//	uint16  len(server) followed by int32 members
//	uint32  len(args)   followed by raw bytes
//	uint16  len(vc)     followed by (int32 proc, uint64 counter) pairs
//
// The codec exists so the simulated network can optionally carry encoded
// bytes (exercising the same marshalling work a real transport would), and
// so the stub layer has a stable contract to test against.

const wireVersion = 1

// Encoding errors.
var (
	ErrShortMessage = errors.New("msg: short message")
	ErrBadVersion   = errors.New("msg: unknown wire version")
)

const fixedHeaderLen = 1 + 1 + 1 + 8 + 4 + 4 + 4 + 4 + 8 + 8 + 2 + 4 + 2

// An OpBatch frame reuses the v1 layout unchanged: its payload occupies the
// args slot (the uint32 length counts the payload bytes), and consists of a
// uint16 sub-frame count followed by uint32-length-prefixed standard
// encodings. Batch frames carry no Args of their own and never nest.

// batchPayloadLen returns the size of the batch payload in the args slot.
func (m *NetMsg) batchPayloadLen() int {
	n := 2
	for _, s := range m.Batch {
		n += 4 + s.EncodedLen()
	}
	return n
}

// EncodedLen returns the exact encoded size of m.
func (m *NetMsg) EncodedLen() int {
	args := len(m.Args)
	if m.Type == OpBatch {
		args = m.batchPayloadLen()
	}
	return fixedHeaderLen + 4*len(m.Server) + args + 12*len(m.VC)
}

// Encode serializes m into a fresh buffer.
func (m *NetMsg) Encode() []byte {
	buf := make([]byte, 0, m.EncodedLen())
	return m.AppendEncode(buf)
}

// AppendEncode serializes m, appending to buf and returning the result.
func (m *NetMsg) AppendEncode(buf []byte) []byte {
	buf = append(buf, wireVersion, byte(m.Type), m.Relay)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.ID))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Client))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Op))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Sender))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Inc))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.AckID))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Order))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Server)))
	if m.Type == OpBatch {
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.batchPayloadLen()))
	} else {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Args)))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.VC)))
	for _, p := range m.Server {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
	}
	if m.Type == OpBatch {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Batch)))
		for _, s := range m.Batch {
			buf = binary.BigEndian.AppendUint32(buf, uint32(s.EncodedLen()))
			buf = s.AppendEncode(buf)
		}
	} else {
		buf = append(buf, m.Args...)
	}
	if len(m.VC) > 0 {
		// The deterministic key order needs a sorted scratch slice; keep it
		// on the stack for realistic clock sizes so the hot encode path
		// stays allocation-free (slices.Sort, unlike sort.Slice, does not
		// allocate its comparator).
		var kbuf [32]ProcID
		procs := kbuf[:0]
		if len(m.VC) > len(kbuf) {
			procs = make([]ProcID, 0, len(m.VC))
		}
		for p := range m.VC {
			procs = append(procs, p)
		}
		slices.Sort(procs)
		for _, p := range procs {
			buf = binary.BigEndian.AppendUint32(buf, uint32(p))
			buf = binary.BigEndian.AppendUint64(buf, uint64(m.VC[p]))
		}
	}
	return buf
}

// Decode parses a message previously produced by Encode. Every
// variable-length field is copied out of buf, so the caller may recycle it.
func Decode(buf []byte) (*NetMsg, error) {
	return decode(buf, false)
}

// DecodeShared parses like Decode but borrows Args directly from buf
// (capacity-clamped) instead of copying, and returns the message already
// frozen: the caller is declaring that buf is immutable for as long as any
// borrower may retain the arguments. The simulated network uses it on the
// encode-once multicast path, where every delivery of one send shares a
// single wire buffer (deviation D13).
func DecodeShared(buf []byte) (*NetMsg, error) {
	m, err := decode(buf, true)
	if err == nil {
		m.Freeze()
	}
	return m, err
}

func decode(buf []byte, shareArgs bool) (*NetMsg, error) {
	if len(buf) < fixedHeaderLen {
		return nil, ErrShortMessage
	}
	if buf[0] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[0])
	}
	m := &NetMsg{Type: NetOp(buf[1]), Relay: buf[2]}
	if m.Type < OpCall || m.Type > OpRelayAck {
		return nil, fmt.Errorf("msg: invalid message type %d", buf[1])
	}
	if shareArgs {
		// Remember the exact frame for zero-re-encode relaying (D17): the
		// caller declared buf immutable, and the decode below proves buf is
		// exactly this message's encoding.
		m.wire = buf[:len(buf):len(buf)]
	}
	off := 3
	m.ID = CallID(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	m.Client = ProcID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	m.Op = OpID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	m.Sender = ProcID(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	m.Inc = Incarnation(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	m.AckID = CallID(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	m.Order = int64(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	nGroup := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	nArgs := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	nVC := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) != off+4*nGroup+nArgs+12*nVC {
		return nil, fmt.Errorf("%w: have %d want %d bytes", ErrShortMessage,
			len(buf), off+4*nGroup+nArgs+12*nVC)
	}
	if nGroup > 0 {
		m.Server = make(Group, nGroup)
		for i := 0; i < nGroup; i++ {
			m.Server[i] = ProcID(binary.BigEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	if m.Type == OpBatch {
		if nArgs < 2 {
			return nil, fmt.Errorf("%w: truncated batch payload", ErrShortMessage)
		}
		payload := buf[off : off+nArgs]
		off += nArgs
		count := int(binary.BigEndian.Uint16(payload))
		p := 2
		// Clamp the capacity hint by what the payload could possibly hold
		// (each sub-frame costs at least its 4-byte length prefix): a
		// corrupt count must not drive allocation beyond the bytes that
		// actually arrived.
		capHint := count
		if most := (len(payload) - p) / 4; capHint > most {
			capHint = most
		}
		m.Batch = make([]*NetMsg, 0, capHint)
		for i := 0; i < count; i++ {
			if len(payload)-p < 4 {
				return nil, fmt.Errorf("%w: truncated batch payload", ErrShortMessage)
			}
			sl := int(binary.BigEndian.Uint32(payload[p:]))
			p += 4
			if len(payload)-p < sl {
				return nil, fmt.Errorf("%w: truncated batch sub-frame %d", ErrShortMessage, i)
			}
			sub, err := decode(payload[p:p+sl:p+sl], shareArgs)
			if err != nil {
				return nil, fmt.Errorf("msg: batch sub-frame %d: %w", i, err)
			}
			p += sl
			if sub.Type == OpBatch {
				return nil, fmt.Errorf("msg: batch sub-frame %d: batch frames do not nest", i)
			}
			if shareArgs {
				// Sub-messages borrow from the shared wire buffer exactly
				// like a top-level DecodeShared would; they are frozen for
				// the same reason.
				sub.Freeze()
			}
			m.Batch = append(m.Batch, sub)
		}
		if p != len(payload) {
			return nil, fmt.Errorf("msg: batch payload has %d trailing bytes", len(payload)-p)
		}
	} else if nArgs > 0 {
		if shareArgs {
			m.Args = buf[off : off+nArgs : off+nArgs]
		} else {
			m.Args = append([]byte(nil), buf[off:off+nArgs]...)
		}
		off += nArgs
	}
	if nVC > 0 {
		m.VC = make(VClock, nVC)
		for i := 0; i < nVC; i++ {
			p := ProcID(binary.BigEndian.Uint32(buf[off:]))
			off += 4
			if _, dup := m.VC[p]; dup {
				return nil, fmt.Errorf("msg: duplicate vector-clock entry for process %d", p)
			}
			m.VC[p] = int64(binary.BigEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return m, nil
}
