package msg

import (
	"fmt"
	"testing"
)

// benchWireMsg builds a message shaped like a causal-order group call: a
// 3-member group, a mid-size payload, and a vector clock with vcN entries.
// The VC is the codec's only map-shaped field, so it is where per-encode
// allocation pressure hides (the key sort).
func benchWireMsg(vcN int) *NetMsg {
	m := &NetMsg{
		Type: OpCall, ID: 1 << 33, Client: 100, Op: 7,
		Args: make([]byte, 256), Server: NewGroup(1, 2, 3), Sender: 100, Inc: 2,
	}
	if vcN > 0 {
		m.VC = make(VClock, vcN)
		for i := 0; i < vcN; i++ {
			m.VC[ProcID(i+1)] = int64(i * 13)
		}
	}
	return m
}

// BenchmarkWireCodecEncode measures AppendEncode into a reused buffer as
// the vector clock grows (vc0 is the non-causal configurations' shape).
func BenchmarkWireCodecEncode(b *testing.B) {
	for _, vcN := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("vc%d", vcN), func(b *testing.B) {
			m := benchWireMsg(vcN)
			buf := make([]byte, 0, m.EncodedLen())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = m.AppendEncode(buf[:0])
			}
		})
	}
}

// BenchmarkWireCodecDecode measures the copying decode used off the shared
// wire path.
func BenchmarkWireCodecDecode(b *testing.B) {
	for _, vcN := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("vc%d", vcN), func(b *testing.B) {
			wire := benchWireMsg(vcN).Encode()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
