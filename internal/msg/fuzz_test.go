package msg

import (
	"reflect"
	"testing"
)

// goldenFrames are encoded frames covering the wire format's variable
// parts: bare header, args, group, vector clock, and a batch envelope.
// They seed every decode fuzz target now that frames arrive from real
// sockets (internal/nettcp), not just the simulator's round-trip.
func goldenFrames() [][]byte {
	plain := sampleMsg()
	withVC := sampleMsg()
	withVC.VC = VClock{1: 2, 3: 4}
	withGroup := sampleMsg()
	withGroup.Server = NewGroup(1, 2, 3)
	batch := NewBatch(7, []*NetMsg{sampleMsg(), sampleMsg()})
	return [][]byte{
		(&NetMsg{Type: OpHeartbeat}).Encode(),
		plain.Encode(),
		withVC.Encode(),
		withGroup.Encode(),
		batch.Encode(),
	}
}

// FuzzDecode ensures arbitrary bytes never panic the wire decoder, and
// that anything it accepts re-encodes to the identical byte string
// (decode∘encode is the identity on valid messages).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(sampleMsg().Encode())
	withVC := sampleMsg()
	withVC.VC = VClock{1: 2, 3: 4}
	f.Add(withVC.Encode())
	f.Add((&NetMsg{Type: OpHeartbeat}).Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := m.Encode()
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d != input %d", len(re), len(data))
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not idempotent:\n %+v\n %+v", m, m2)
		}
	})
}

// FuzzWireDecode exercises DecodeShared — the path every socket frame
// takes (internal/nettcp) and the simulator's EncodeOnWire path. Contract
// under fuzzing: truncated, corrupt, or oversized-length inputs error,
// never panic; an accepted message is frozen, remembers its exact wire
// frame for zero-re-encode relaying, and its variable-length fields are
// bounded by the bytes that actually arrived (no length prefix may drive
// allocation past the input).
func FuzzWireDecode(f *testing.F) {
	for _, frame := range goldenFrames() {
		f.Add(frame)
		if len(frame) > 3 {
			f.Add(frame[:len(frame)-3]) // truncated
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShared(data)
		if err != nil {
			return
		}
		if !m.Frozen() {
			t.Fatal("DecodeShared returned an unfrozen message")
		}
		if w := m.Wire(); len(w) != len(data) {
			t.Fatalf("Wire() remembers %d bytes, input was %d", len(w), len(data))
		}
		if 4*len(m.Server) > len(data) || 12*len(m.VC) > len(data) || len(m.Args) > len(data) {
			t.Fatalf("fields exceed input: %d group, %d vc, %d args from %d bytes",
				len(m.Server), len(m.VC), len(m.Args), len(data))
		}
		if re := m.Encode(); len(re) != len(data) {
			t.Fatalf("re-encode length %d != input %d", len(re), len(data))
		}
	})
}

// FuzzBatchDecode targets the OpBatch envelope: the uint16 sub-frame count
// and per-sub uint32 length prefixes (which never nest). Corrupt counts
// and lengths must error without panicking or allocating past the
// payload; accepted batches hold only frozen, non-batch sub-messages.
func FuzzBatchDecode(f *testing.F) {
	batch := NewBatch(7, []*NetMsg{sampleMsg(), sampleMsg()})
	golden := batch.Encode()
	f.Add(golden)
	f.Add(golden[:len(golden)-2]) // truncated sub-frame
	empty := NewBatch(7, nil).Encode()
	f.Add(empty)
	// Oversized count: claim 0xffff subs in a payload holding two.
	corrupt := append([]byte(nil), golden...)
	corrupt[fixedHeaderLen] = 0xff
	corrupt[fixedHeaderLen+1] = 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeShared(data)
		if err != nil || m.Type != OpBatch {
			return
		}
		// Each sub-frame costs at least its length prefix plus the fixed
		// header, so an accepted batch is bounded by the input size.
		if len(m.Batch)*(4+fixedHeaderLen) > len(data) {
			t.Fatalf("%d sub-frames from %d input bytes", len(m.Batch), len(data))
		}
		for i, sub := range m.Batch {
			if sub.Type == OpBatch {
				t.Fatalf("sub-frame %d is a nested batch", i)
			}
			if !sub.Frozen() {
				t.Fatalf("sub-frame %d not frozen", i)
			}
		}
		if re := m.Encode(); len(re) != len(data) {
			t.Fatalf("re-encode length %d != input %d", len(re), len(data))
		}
	})
}
