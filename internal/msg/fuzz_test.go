package msg

import (
	"reflect"
	"testing"
)

// FuzzDecode ensures arbitrary bytes never panic the wire decoder, and
// that anything it accepts re-encodes to the identical byte string
// (decode∘encode is the identity on valid messages).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(sampleMsg().Encode())
	withVC := sampleMsg()
	withVC.VC = VClock{1: 2, 3: 4}
	f.Add(withVC.Encode())
	f.Add((&NetMsg{Type: OpHeartbeat}).Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := m.Encode()
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d != input %d", len(re), len(data))
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode not idempotent:\n %+v\n %+v", m, m2)
		}
	})
}
