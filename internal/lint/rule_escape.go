package lint

import (
	"go/ast"
	"go/types"
)

// checkTableEscape analyzes every function literal that takes a
// *core.ClientRecord or *core.ServerRecord parameter — the shape of every
// scoped table callback (WithClient/WithServer, EachClient/EachServer,
// ClientTx.Each/ServerTx.Each) — and flags record pointers that outlive the
// callback. The shard mutex is held only for the callback's duration
// (DESIGN.md §4); a pointer stashed in a field, global, or channel, or
// escaping via return, is a record that will later be read or written
// without its lock.
//
// Escapes tracked (intraprocedural, one level of aliasing):
//
//   - assignment of the record (or an alias) to a struct field or a
//     package-level variable, and sends on channels, inside the callback;
//   - return of the record from the callback itself;
//   - assignment to a variable of the enclosing function which that
//     function then returns, stores in a field/global, or sends.
//
// Collecting records into an enclosing-function local that is consumed and
// dropped there (the wake-outside-the-locks pattern) is legal and not
// flagged, provided only immutable record fields are touched after the
// callback — that part of the rule remains a code-review obligation.
// Passing the record to a module function is checked one level deep via its
// summary: a callee that stores the parameter in a field, global, channel,
// or closure counts as an escape at the call site.
func checkTableEscape(a *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		// Full node stack (ast.Inspect pairs every true-returning visit
		// with an f(nil) pop), scanned backwards for the enclosing function.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				if kind, params := recordParams(p, lit); kind != "" {
					ds = append(ds, analyzeRecordClosure(a, p, lit, enclosingFunc(stack), kind, params)...)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return ds
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, or nil at top level.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// recordParams returns the record kind and the parameter objects of a
// closure that receives table record pointers, or "" if it receives none.
func recordParams(p *Package, lit *ast.FuncLit) (string, map[types.Object]bool) {
	params := make(map[types.Object]bool)
	kind := ""
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if k := recordPointee(obj.Type()); k != "" {
				params[obj] = true
				kind = k
			}
		}
	}
	if len(params) == 0 {
		return "", nil
	}
	return kind, params
}

func analyzeRecordClosure(a *Analysis, p *Package, lit *ast.FuncLit, outer ast.Node, kind string, tainted map[types.Object]bool) []Diagnostic {
	var ds []Diagnostic
	diag := func(pos ast.Node, what string) {
		ds = append(ds, Diagnostic{
			Pos:  p.Fset.Position(pos.Pos()),
			Rule: "table-escape",
			Message: "*" + kind + " obtained in a scoped table callback " + what +
				"; it is unprotected once the shard lock is released",
		})
	}

	// outerTainted maps enclosing-function locals that received the record
	// to the expression that stored it (for the second pass).
	outerTainted := make(map[types.Object]bool)

	isTainted := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				return tainted[obj] || outerTainted[obj]
			}
		}
		if call, ok := e.(*ast.CallExpr); ok {
			// append(xs, rec...) taints the result.
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, a := range call.Args {
					a = ast.Unparen(a)
					if id, ok := a.(*ast.Ident); ok {
						if obj := p.Info.Uses[id]; obj != nil && (tainted[obj] || outerTainted[obj]) {
							return true
						}
					}
				}
			}
		}
		return false
	}

	declaredInClosure := func(obj types.Object) bool {
		return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isTainted(rhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					diag(n, "is stored in a field")
				case *ast.IndexExpr:
					// Storing into an element of a global or field-held
					// container escapes; a closure-local container only
					// taints the container.
					switch base := ast.Unparen(lhs.X).(type) {
					case *ast.SelectorExpr:
						diag(n, "is stored in a field")
					case *ast.Ident:
						if obj := p.Info.Uses[base]; obj != nil {
							if isGlobalVar(obj) {
								diag(n, "is stored in a global")
							} else if declaredInClosure(obj) {
								tainted[obj] = true
							} else {
								outerTainted[obj] = true
							}
						}
					}
				case *ast.Ident:
					obj := p.Info.Defs[lhs]
					if obj == nil {
						obj = p.Info.Uses[lhs]
					}
					if obj == nil || obj.Name() == "_" {
						continue
					}
					if isGlobalVar(obj) {
						diag(n, "is stored in a global")
					} else if declaredInClosure(obj) {
						tainted[obj] = true
					} else {
						outerTainted[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			if isTainted(n.Value) {
				diag(n, "is sent on a channel")
			}
		case *ast.CallExpr:
			// One level interprocedural: a module callee whose summary says
			// it stores this parameter escapes the record just as a direct
			// field write here would.
			fi := a.calleeInfo(p, n)
			if fi == nil {
				return true
			}
			sum := a.summaryOf(fi)
			for i, arg := range n.Args {
				if !isTainted(arg) {
					continue
				}
				k := i
				if k >= len(sum.params) {
					k = len(sum.params) - 1 // variadic tail
				}
				if k >= 0 && k < len(sum.escapesParam) && sum.escapesParam[k] {
					diag(n, "is stored by "+fi.decl.Name.Name+" (callee summary)")
				}
			}
		case *ast.ReturnStmt:
			// Only returns of this closure itself; nested literals get their
			// own analysis if they carry record params, and plain nested
			// closures returning the record still hand it at most to code
			// running inside the callback.
			for _, r := range n.Results {
				if isTainted(r) {
					diag(n, "escapes via return")
				}
			}
			return true
		}
		return true
	})

	// Second pass: how does the enclosing function use the locals the
	// callback stored the record in?
	if outer == nil || len(outerTainted) == 0 {
		return ds
	}
	var body *ast.BlockStmt
	switch o := outer.(type) {
	case *ast.FuncDecl:
		body = o.Body
	case *ast.FuncLit:
		body = o.Body
	}
	if body == nil {
		return ds
	}
	usesOuterTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && outerTainted[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == lit {
			return false // already analyzed
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if usesOuterTainted(r) {
					diag(n, "escapes via return from the enclosing function")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				rhs = ast.Unparen(rhs)
				id, ok := rhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id]
				if obj == nil || !outerTainted[obj] {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					diag(n, "is stored in a field")
				case *ast.Ident:
					if lobj := p.Info.Uses[lhs]; lobj != nil && isGlobalVar(lobj) {
						diag(n, "is stored in a global")
					}
				}
			}
		case *ast.SendStmt:
			v := ast.Unparen(n.Value)
			if id, ok := v.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && outerTainted[obj] {
					diag(n, "is sent on a channel")
				}
			}
		}
		return true
	})
	return ds
}

func isGlobalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
