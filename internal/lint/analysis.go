package lint

// Analysis is the shared substrate behind the flow-sensitive rules: a
// module-wide function index, a demand-computed summary cache (pool
// ownership, escapes, lock sets), and the lock graph accumulated while
// lock-order runs. One Analysis spans every package of a lint run, so a
// summary computed for core.getServerRec while linting internal/core is
// reused when rpcmain's callers are analyzed.
//
// Functions are keyed by a stable fully-qualified name rather than by
// *types.Func identity: each package is type-checked separately against
// export data, so the object for core.PutUserMsg seen from a client package
// is not the object created when core itself was checked.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type Analysis struct {
	pkgs []*Package

	funcs     map[string]*funcInfo
	summaries map[string]*summary
	computing map[string]bool

	// lock graph, filled in by rule lock-order
	lockEdges map[lockEdge][]token.Position

	triggerLockSet map[string]bool
	triggerLockRun bool
}

type funcInfo struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
}

type lockEdge struct{ from, to string }

// NewAnalysis indexes every function declaration of the given packages.
func NewAnalysis(pkgs []*Package) *Analysis {
	a := &Analysis{
		pkgs:      pkgs,
		funcs:     make(map[string]*funcInfo),
		summaries: make(map[string]*summary),
		computing: make(map[string]bool),
		lockEdges: make(map[lockEdge][]token.Position),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				if key == "" {
					continue
				}
				a.funcs[key] = &funcInfo{key: key, pkg: p, decl: fd}
			}
		}
	}
	return a
}

// funcKey names a function or method unambiguously across packages:
// "pkg/path.Name" or "pkg/path.(Type).Name" (pointerness of the receiver is
// deliberately erased — a method set has one body either way).
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if pkg, typ := recvNamed(fn); typ != "" {
		return pkg + ".(" + typ + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeFunc resolves the static callee of a call, or nil for calls through
// function values, interfaces (no devirtualization — see DESIGN.md §6), and
// type conversions.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[fun]; ok && s.Kind() != types.MethodVal {
			return nil
		}
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeInfo returns the in-module declaration of a call's static callee, if
// the module defines it (stdlib and interface calls return nil).
func (a *Analysis) calleeInfo(p *Package, call *ast.CallExpr) *funcInfo {
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return nil
		}
	}
	return a.funcs[funcKey(fn)]
}

// pkgShort maps a module package path to the short name used in lock-graph
// nodes and diagnostics: mrpc/internal/core -> core, mrpc -> mrpc.
func pkgShort(path string) string {
	if s, ok := strings.CutPrefix(path, "mrpc/internal/"); ok {
		return s
	}
	if s, ok := strings.CutPrefix(path, "mrpc/cmd/"); ok {
		return s
	}
	if strings.HasPrefix(path, "mrpc/internal/lint/testdata/") {
		return path[strings.LastIndex(path, "/")+1:]
	}
	return path
}

// --- pool and lock site classification ------------------------------------

// poolMethod returns "Get" or "Put" when the call invokes that method on a
// sync.Pool (any pool — the module's eight and fixture-local ones alike).
func poolMethod(p *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if pkg, typ := recvNamed(fn); pkg == "sync" && typ == "Pool" {
		if n := fn.Name(); n == "Get" || n == "Put" {
			return n
		}
	}
	return ""
}

// poolGetSource reports whether an expression draws a fresh value from a
// pool: `pool.Get().(*T)` or a call to a function whose summary returns a
// fresh pooled value.
func (a *Analysis) poolGetSource(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		if call, ok := ast.Unparen(ta.X).(*ast.CallExpr); ok {
			return poolMethod(p, call) == "Get"
		}
		return false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if fi := a.calleeInfo(p, call); fi != nil {
			return a.summaryOf(fi).returnsFresh
		}
	}
	return false
}

// lockOp is one classified Lock/Unlock call site.
type lockOp struct {
	node    string // graph node; "" when the mutex is untracked (a local)
	acquire bool
	try     bool
	pos     token.Pos
}

// lockSite classifies a call as a mutex operation. The node identity is
// (package, owner type, field) for mutex fields, (package, var) for
// package-level mutexes; both table shard types collapse into the single
// node core.tableShard (the 16 shards are acquired in a fixed order by
// lockAll and count as one rank in the lock order). Locally declared
// mutexes get node "" and participate only in the missing-unlock check.
func lockSite(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return lockOp{}, false
	}
	if pkg, typ := recvNamed(fn); pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return lockOp{}, false
	}
	op := lockOp{pos: call.Pos()}
	switch fn.Name() {
	case "Lock", "RLock":
		op.acquire = true
	case "TryLock", "TryRLock":
		op.acquire, op.try = true, true
	case "Unlock", "RUnlock":
	default:
		return lockOp{}, false
	}
	op.node = lockNode(p, sel.X)
	return op, true
}

// lockNode names the mutex an expression denotes, or "" if untracked.
func lockNode(p *Package, x ast.Expr) string {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; !ok || s.Kind() != types.FieldVal {
			return ""
		}
		t := p.Info.TypeOf(x.X)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		pkg := named.Obj().Pkg().Path()
		if !inScope(pkg) && !strings.HasPrefix(pkg, "mrpc") {
			return ""
		}
		owner := named.Obj().Name()
		if pkg == corePath && (owner == "clientShard" || owner == "serverShard") {
			return "core.tableShard"
		}
		return pkgShort(pkg) + "." + owner + "." + x.Sel.Name
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil || !isGlobalVar(obj) || obj.Pkg() == nil {
			return ""
		}
		if !strings.HasPrefix(obj.Pkg().Path(), "mrpc") {
			return ""
		}
		return pkgShort(obj.Pkg().Path()) + "." + obj.Name()
	}
	return ""
}
