// Package lint implements mrpclint, a static analyzer that enforces the
// framework invariants the composite-protocol design depends on but which
// the Go type system cannot express (see DESIGN.md "Statically enforced
// invariants"):
//
//   - table-escape: *ClientRecord/*ServerRecord pointers obtained inside a
//     scoped table callback (WithClient/WithServer/Each*/ClientTx/ServerTx)
//     must not be stored in fields, globals, or channels, or escape via
//     return — outside the callback the shard mutex no longer protects them.
//   - determinism: wall-clock and global-randomness calls (time.Now,
//     time.Sleep, time.After, math/rand top-level functions, ...) are banned
//     outside internal/clock; netsim replay depends on the injected clock.
//   - handler-discipline: event handlers registered with Bus.Register or
//     Bus.RegisterTimeout must not call Bus.Trigger synchronously
//     (re-entrant dispatch) and must not call lockAll/unlockAll.
//   - goroutine-discipline: bare go statements outside internal/proc and
//     internal/netsim must go through proc.Go / proc.(*Threads).Go so crash
//     injection can reap the goroutine.
//   - priority-constants: priorities passed to Bus.Register must reference
//     named constants, not magic ints.
//   - msg-immutability: fields of a msg.NetMsg must not be written outside
//     internal/msg and internal/netsim — messages are frozen on send and
//     shared by every recipient (DESIGN.md D13), so a handler mutating one
//     would corrupt its peers.
//   - batch-freeze: batch frames may only be built by msg.NewBatch, which
//     freezes the sub-messages and the frame before handoff (DESIGN.md D16)
//     — hand-rolled NetMsg{Type: OpBatch} literals, literals setting the
//     Batch field, and writes through .Batch are rejected outside
//     internal/msg.
//
// The analysis is intraprocedural and syntax-plus-types driven; a sound
// escape or call-graph analysis is out of scope. A violation that is
// deliberate is silenced with a directive on the same or preceding line:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

type rule struct {
	name string
	run  func(*Package) []Diagnostic
}

// rules are run in order; diagnostics are position-sorted afterwards.
var rules = []rule{
	{"table-escape", checkTableEscape},
	{"determinism", checkDeterminism},
	{"handler-discipline", checkHandlerDiscipline},
	{"goroutine-discipline", checkGoroutineDiscipline},
	{"priority-constants", checkPriorityConstants},
	{"msg-immutability", checkMsgImmutability},
	{"batch-freeze", checkBatchFreeze},
}

// inScope reports whether a package path is subject to the invariants. The
// examples/ tree models third-party user code and is out of scope (it is
// not even loaded); everything else in the module is in.
func inScope(path string) bool {
	return path == "mrpc" ||
		strings.HasPrefix(path, "mrpc/internal/") ||
		strings.HasPrefix(path, "mrpc/cmd/")
}

// Analyze runs every rule over one package and returns the surviving
// diagnostics, position-sorted, with //lint:ignore directives applied.
func Analyze(p *Package) []Diagnostic {
	var ds []Diagnostic
	for _, r := range rules {
		ds = append(ds, r.run(p)...)
	}
	malformed := applyIgnores(p, &ds)
	ds = append(ds, malformed...)
	sortDiagnostics(ds)
	return ds
}

// LintModule analyzes every in-scope package of the module rooted at root.
func LintModule(root string) ([]Diagnostic, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	var ds []Diagnostic
	for _, p := range pkgs {
		ds = append(ds, Analyze(p)...)
	}
	sortDiagnostics(ds)
	return ds, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Rule < ds[j].Rule
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	rule string
	line int // last line of the comment; suppresses this line and the next
}

// applyIgnores filters *ds in place, dropping diagnostics suppressed by a
// well-formed //lint:ignore directive on the same or the preceding line. It
// returns extra diagnostics for malformed directives.
func applyIgnores(p *Package, ds *[]Diagnostic) []Diagnostic {
	byFile := make(map[string][]ignoreDirective)
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.End())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     p.Fset.Position(c.Pos()),
						Rule:    "lint-directive",
						Message: "malformed //lint:ignore directive: want `//lint:ignore <rule> <reason>`",
					})
					continue
				}
				byFile[pos.Filename] = append(byFile[pos.Filename],
					ignoreDirective{rule: fields[0], line: pos.Line})
			}
		}
	}

	kept := (*ds)[:0]
	for _, d := range *ds {
		suppressed := false
		for _, ig := range byFile[d.Pos.Filename] {
			if (ig.rule == d.Rule || ig.rule == "*") &&
				(ig.line == d.Pos.Line || ig.line == d.Pos.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	*ds = kept
	return malformed
}

// --- shared type helpers --------------------------------------------------

const (
	corePath  = "mrpc/internal/core"
	eventPath = "mrpc/internal/event"
)

// pkgLevelObj returns the object a selector resolves to, if it is a
// package-level declaration (function or variable) of some package.
func pkgLevelObj(p *Package, sel *ast.SelectorExpr) types.Object {
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	return obj
}

// busMethod returns the name of the event.Bus method a call invokes, or "".
func busMethod(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if pkg, name := recvNamed(fn); pkg == eventPath && name == "Bus" {
		return fn.Name()
	}
	return ""
}

// bindingMethod returns the name of the core.Binding method a call invokes,
// or "". Binding.On / Binding.After forward to Bus.Register /
// Bus.RegisterTimeout with lifecycle tracking, so every rule that inspects
// registrations must see through them — otherwise converting a protocol to
// the Binding idiom would silently drop it from the analysis.
func bindingMethod(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if pkg, name := recvNamed(fn); pkg == corePath && name == "Binding" {
		return fn.Name()
	}
	return ""
}

// recvNamed returns the package path and type name of a method's receiver
// (dereferencing a pointer receiver), or "", "".
func recvNamed(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// recordPointee returns "ClientRecord" or "ServerRecord" when t is a pointer
// to one of core's table record types, else "".
func recordPointee(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != corePath {
		return ""
	}
	if n := named.Obj().Name(); n == "ClientRecord" || n == "ServerRecord" {
		return n
	}
	return ""
}

// stringArg returns the literal value of a string argument, or fallback.
func stringArg(e ast.Expr, fallback string) string {
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		return strings.Trim(lit.Value, "`\"")
	}
	return fallback
}
