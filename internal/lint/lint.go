// Package lint implements mrpclint, a static analyzer that enforces the
// framework invariants the composite-protocol design depends on but which
// the Go type system cannot express (see DESIGN.md "Statically enforced
// invariants"):
//
//   - table-escape: *ClientRecord/*ServerRecord pointers obtained inside a
//     scoped table callback (WithClient/WithServer/Each*/ClientTx/ServerTx)
//     must not be stored in fields, globals, or channels, escape via
//     return, or be handed to a helper whose summary stores them — outside
//     the callback the shard mutex no longer protects them.
//   - determinism: wall-clock and global-randomness calls (time.Now,
//     time.Sleep, time.After, math/rand top-level functions, ...) are banned
//     outside internal/clock; netsim replay depends on the injected clock.
//   - handler-discipline: event handlers registered with Bus.Register or
//     Bus.RegisterTimeout must not call Bus.Trigger synchronously
//     (re-entrant dispatch) and must not call lockAll/unlockAll — directly,
//     or through a helper one call deep.
//   - goroutine-discipline: bare go statements outside internal/proc and
//     internal/netsim must go through proc.Go / proc.(*Threads).Go so crash
//     injection can reap the goroutine.
//   - priority-constants: priorities passed to Bus.Register must reference
//     named constants, not magic ints.
//   - msg-immutability: fields of a msg.NetMsg must not be written outside
//     internal/msg and internal/netsim — messages are frozen on send and
//     shared by every recipient (DESIGN.md D13), so a handler mutating one
//     would corrupt its peers.
//   - batch-freeze: batch frames may only be built by msg.NewBatch, which
//     freezes the sub-messages and the frame before handoff (DESIGN.md D16)
//     — hand-rolled NetMsg{Type: OpBatch} literals, literals setting the
//     Batch field, and writes through .Batch are rejected outside
//     internal/msg.
//   - pool-safety: values drawn from the module's sync.Pools are tracked
//     through a per-function dataflow lattice plus call summaries:
//     use-after-Put, double-Put, and Put of a value that escaped to a
//     field/global/channel/closure are rejected; ownership handoff is
//     declared with a //lint:owns annotation on the accepting function.
//   - lock-order: a module-wide static graph over the named mutexes must
//     stay acyclic; mutexes may not be acquired inside scoped table
//     callbacks; a Lock released on some exits but not all is flagged.
//   - frozen-flow: inside internal/msg and internal/netsim (where
//     msg-immutability does not apply), writing a NetMsg field after
//     Freeze() was called on a path reaching the write is rejected.
//
// The first seven rules are syntax-plus-types driven; pool-safety,
// lock-order, and frozen-flow run on a shared analysis substrate — a
// per-function CFG (cfg.go), a forward dataflow engine (dataflow.go), and a
// module-wide call-graph summary cache (analysis.go, summary.go) — which
// also lends table-escape and handler-discipline one level of
// interprocedural depth. A violation that is deliberate is silenced with a
// directive on the same or preceding line:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

type rule struct {
	name string
	doc  string
	run  func(*Analysis, *Package) []Diagnostic
	// module runs once after every package's run, over shared state the
	// per-package passes accumulated (the lock graph's cycle check).
	module func(*Analysis) []Diagnostic
}

// rules are run in order; diagnostics are position-sorted afterwards.
var rules = []rule{
	{name: "table-escape", run: checkTableEscape,
		doc: "table records must not outlive their scoped callback"},
	{name: "determinism", run: checkDeterminism,
		doc: "wall clock and global randomness are banned outside internal/clock"},
	{name: "handler-discipline", run: checkHandlerDiscipline,
		doc: "handlers must not re-enter dispatch or take whole-table locks"},
	{name: "goroutine-discipline", run: checkGoroutineDiscipline,
		doc: "goroutines must be spawned through proc so crashes can reap them"},
	{name: "priority-constants", run: checkPriorityConstants,
		doc: "registration priorities must be named constants"},
	{name: "msg-immutability", run: checkMsgImmutability,
		doc: "NetMsg fields must not be written outside internal/msg and netsim"},
	{name: "batch-freeze", run: checkBatchFreeze,
		doc: "batch frames may only be built by msg.NewBatch"},
	{name: "pool-safety", run: checkPoolSafety,
		doc: "pooled values: no use-after-Put, double-Put, or Put of an escaped value"},
	{name: "lock-order", run: checkLockOrder, module: checkLockCycles,
		doc: "the named-mutex graph stays acyclic; no locks in scoped callbacks"},
	{name: "frozen-flow", run: checkFrozenFlow,
		doc: "no NetMsg writes or relay stamps after Freeze inside internal/msg and netsim"},
}

// RuleInfo describes one registered rule (for cmd/mrpclint -list).
type RuleInfo struct {
	Name string
	Doc  string
}

// Rules lists the registry in registration order.
func Rules() []RuleInfo {
	out := make([]RuleInfo, len(rules))
	for i, r := range rules {
		out[i] = RuleInfo{Name: r.name, Doc: r.doc}
	}
	return out
}

// KnownRule reports whether name is a registered rule.
func KnownRule(name string) bool {
	for _, r := range rules {
		if r.name == name {
			return true
		}
	}
	return false
}

// inScope reports whether a package path is subject to the invariants. The
// examples/ tree models third-party user code and is out of scope (it is
// not even loaded); everything else in the module is in.
func inScope(path string) bool {
	return path == "mrpc" ||
		strings.HasPrefix(path, "mrpc/internal/") ||
		strings.HasPrefix(path, "mrpc/cmd/")
}

// Analyze runs every rule over one package in isolation — the fixture
// harness's entry point. Cross-package summaries are unavailable; module
// rules (the lock-cycle check) still run over the single package's graph.
func Analyze(p *Package) []Diagnostic {
	return AnalyzeModule([]*Package{p}, nil)
}

// AnalyzeModule runs the registry over a set of packages sharing one
// Analysis, so summaries computed in one package serve callers in another
// and the lock graph spans the module. only, when non-nil, restricts the
// run to the named rules (malformed //lint:ignore directives are always
// reported).
func AnalyzeModule(pkgs []*Package, only map[string]bool) []Diagnostic {
	a := NewAnalysis(pkgs)
	var ds []Diagnostic
	for _, r := range rules {
		if only != nil && !only[r.name] {
			continue
		}
		for _, p := range pkgs {
			ds = append(ds, r.run(a, p)...)
		}
		if r.module != nil {
			ds = append(ds, r.module(a)...)
		}
	}
	malformed := applyIgnores(pkgs, &ds)
	ds = append(ds, malformed...)
	sortDiagnostics(ds)
	return ds
}

// LintModule analyzes every in-scope package of the module rooted at root.
func LintModule(root string) ([]Diagnostic, error) {
	return LintModuleRules(root, nil)
}

// LintModuleRules analyzes the module with an optional rule subset.
func LintModuleRules(root string, ruleNames []string) ([]Diagnostic, error) {
	var only map[string]bool
	if len(ruleNames) > 0 {
		only = make(map[string]bool, len(ruleNames))
		for _, n := range ruleNames {
			if !KnownRule(n) {
				return nil, fmt.Errorf("unknown rule %q (see mrpclint -list)", n)
			}
			only[n] = true
		}
	}
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	return AnalyzeModule(pkgs, only), nil
}

// ModuleLockGraphDOT loads the module and renders its lock-order graph in
// DOT form (cmd/mrpclint -graph; the committed copy lives in DESIGN.md §6).
func ModuleLockGraphDOT(root string) (string, error) {
	l, err := NewLoader(root)
	if err != nil {
		return "", err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return "", err
	}
	a := NewAnalysis(pkgs)
	for _, p := range pkgs {
		checkLockOrder(a, p) // diagnostics discarded; this accumulates edges
	}
	return a.LockGraphDOT(), nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Rule < ds[j].Rule
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	rule string
	line int // last line of the comment; suppresses this line and the next
}

// applyIgnores filters *ds in place, dropping diagnostics suppressed by a
// well-formed //lint:ignore directive on the same or the preceding line in
// any of the given packages. It returns extra diagnostics for malformed
// directives (missing rule or missing reason).
func applyIgnores(pkgs []*Package, ds *[]Diagnostic) []Diagnostic {
	byFile := make(map[string][]ignoreDirective)
	var malformed []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					pos := p.Fset.Position(c.End())
					fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:     p.Fset.Position(c.Pos()),
							Rule:    "lint-directive",
							Message: "malformed //lint:ignore directive: want `//lint:ignore <rule> <reason>`",
						})
						continue
					}
					byFile[pos.Filename] = append(byFile[pos.Filename],
						ignoreDirective{rule: fields[0], line: pos.Line})
				}
			}
		}
	}

	kept := (*ds)[:0]
	for _, d := range *ds {
		suppressed := false
		for _, ig := range byFile[d.Pos.Filename] {
			if (ig.rule == d.Rule || ig.rule == "*") &&
				(ig.line == d.Pos.Line || ig.line == d.Pos.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	*ds = kept
	return malformed
}

// --- shared type helpers --------------------------------------------------

const (
	corePath  = "mrpc/internal/core"
	eventPath = "mrpc/internal/event"
)

// pkgLevelObj returns the object a selector resolves to, if it is a
// package-level declaration (function or variable) of some package.
func pkgLevelObj(p *Package, sel *ast.SelectorExpr) types.Object {
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	return obj
}

// busMethod returns the name of the event.Bus method a call invokes, or "".
func busMethod(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if pkg, name := recvNamed(fn); pkg == eventPath && name == "Bus" {
		return fn.Name()
	}
	return ""
}

// bindingMethod returns the name of the core.Binding method a call invokes,
// or "". Binding.On / Binding.After forward to Bus.Register /
// Bus.RegisterTimeout with lifecycle tracking, so every rule that inspects
// registrations must see through them — otherwise converting a protocol to
// the Binding idiom would silently drop it from the analysis.
func bindingMethod(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if pkg, name := recvNamed(fn); pkg == corePath && name == "Binding" {
		return fn.Name()
	}
	return ""
}

// recvNamed returns the package path and type name of a method's receiver
// (dereferencing a pointer receiver), or "", "".
func recvNamed(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// recordPointee returns "ClientRecord" or "ServerRecord" when t is a pointer
// to one of core's table record types, else "".
func recordPointee(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != corePath {
		return ""
	}
	if n := named.Obj().Name(); n == "ClientRecord" || n == "ServerRecord" {
		return n
	}
	return ""
}

// stringArg returns the literal value of a string argument, or fallback.
func stringArg(e ast.Expr, fallback string) string {
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		return strings.Trim(lit.Value, "`\"")
	}
	return fallback
}
