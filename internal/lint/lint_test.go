package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The loader shells out to `go list -export` once; every test shares it.
var (
	loadOnce sync.Once
	shared   *Loader
	loadErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loadOnce.Do(func() {
		var root string
		root, loadErr = FindModuleRoot(".")
		if loadErr != nil {
			return
		}
		shared, loadErr = NewLoader(root)
	})
	if loadErr != nil {
		t.Fatalf("loader: %v", loadErr)
	}
	return shared
}

// wantRe matches expectation markers in fixture sources:
//
//	// want "substring"       — a diagnostic on this line
//	// want:+1 "substring"    — a diagnostic N lines below (for positions
//	                            where a trailing comment cannot sit, such as
//	                            the line of a //lint:ignore directive)
var wantRe = regexp.MustCompile(`// want(:[+-]\d+)? "([^"]+)"`)

// checkFixture type-checks internal/lint/testdata/<dir> under an in-scope
// import path, runs Analyze, and requires an exact match between the
// diagnostics and the fixture's want markers, line by line.
func checkFixture(t *testing.T, dir string) {
	t.Helper()
	l := testLoader(t)
	fixDir := filepath.Join(l.root, "internal", "lint", "testdata", dir)
	entries, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(fixDir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixDir)
	}

	pkg, err := l.Check("mrpc/internal/lint/testdata/"+dir, files)
	if err != nil {
		t.Fatal(err)
	}
	got := Analyze(pkg)

	// file:line -> outstanding expectations / diagnostics.
	wants := make(map[string][]string)
	for _, name := range files {
		rel, err := filepath.Rel(l.root, name)
		if err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				target := i + 1
				if m[1] != "" {
					off, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", rel, i+1, m[1])
					}
					target += off
				}
				key := fmt.Sprintf("%s:%d", filepath.ToSlash(rel), target)
				wants[key] = append(wants[key], m[2])
			}
		}
	}

	diags := make(map[string][]Diagnostic)
	for _, d := range got {
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(d.Pos.Filename), d.Pos.Line)
		diags[key] = append(diags[key], d)
	}

	keys := make(map[string]bool)
	for k := range wants {
		keys[k] = true
	}
	for k := range diags {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		ws, ds := wants[k], diags[k]
		used := make([]bool, len(ds))
	nextWant:
		for _, w := range ws {
			for i, d := range ds {
				if !used[i] && strings.Contains(d.Rule+": "+d.Message, w) {
					used[i] = true
					continue nextWant
				}
			}
			t.Errorf("%s: expected diagnostic matching %q, got none", k, w)
		}
		for i, d := range ds {
			if !used[i] {
				t.Errorf("%s: unexpected diagnostic: %s: %s", k, d.Rule, d.Message)
			}
		}
	}
}

// fixtureDirs maps every registered rule to the testdata directory that
// exercises it; TestEveryRuleHasFixture keeps the two in lockstep.
var fixtureDirs = map[string]string{
	"table-escape":         "escape",
	"determinism":          "determinism",
	"handler-discipline":   "handler",
	"goroutine-discipline": "goroutine",
	"priority-constants":   "priority",
	"msg-immutability":     "msgimmut",
	"batch-freeze":         "batchfreeze",
	"pool-safety":          "pool",
	"lock-order":           "lockorder",
	"frozen-flow":          "frozenflow",
}

func TestTableEscapeFixture(t *testing.T)         { checkFixture(t, "escape") }
func TestDeterminismFixture(t *testing.T)         { checkFixture(t, "determinism") }
func TestHandlerDisciplineFixture(t *testing.T)   { checkFixture(t, "handler") }
func TestGoroutineDisciplineFixture(t *testing.T) { checkFixture(t, "goroutine") }
func TestPriorityConstantsFixture(t *testing.T)   { checkFixture(t, "priority") }
func TestMsgImmutabilityFixture(t *testing.T)     { checkFixture(t, "msgimmut") }
func TestBatchFreezeFixture(t *testing.T)         { checkFixture(t, "batchfreeze") }
func TestPoolSafetyFixture(t *testing.T)          { checkFixture(t, "pool") }
func TestLockOrderFixture(t *testing.T)           { checkFixture(t, "lockorder") }
func TestFrozenFlowFixture(t *testing.T)          { checkFixture(t, "frozenflow") }
func TestIgnoreDirectives(t *testing.T)           { checkFixture(t, "ignore") }

// TestEveryRuleHasFixture fails when a rule is registered without a fixture
// (or a fixture names a rule that no longer exists), and when a fixture
// directory carries no want markers for its rule — an accidentally
// always-clean fixture proves nothing.
func TestEveryRuleHasFixture(t *testing.T) {
	l := testLoader(t)
	for _, r := range Rules() {
		dir, ok := fixtureDirs[r.Name]
		if !ok {
			t.Errorf("rule %s has no fixture directory; add one and map it in fixtureDirs", r.Name)
			continue
		}
		entries, err := os.ReadDir(filepath.Join(l.root, "internal", "lint", "testdata", dir))
		if err != nil {
			t.Errorf("rule %s: fixture dir: %v", r.Name, err)
			continue
		}
		found := false
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(l.root, "internal", "lint", "testdata", dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if wantRe.Match(src) {
				found = true
			}
		}
		if !found {
			t.Errorf("rule %s: fixture %s has no want markers", r.Name, dir)
		}
	}
	for name := range fixtureDirs {
		if !KnownRule(name) {
			t.Errorf("fixtureDirs names unregistered rule %s", name)
		}
	}
}

// TestModuleIsClean is the acceptance gate: the tree this test ships with
// must carry zero violations (modulo annotated //lint:ignore sites). The
// whole module is analyzed as one unit, so cross-package summaries and the
// module-wide lock graph are in force.
func TestModuleIsClean(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range AnalyzeModule(pkgs, nil) {
		t.Errorf("%s", d)
	}
}

// TestRuleRegistry pins the -list output: rule names, order, and one-line
// docs are part of the tool's interface (testdata/rules.golden).
func TestRuleRegistry(t *testing.T) {
	l := testLoader(t)
	var b strings.Builder
	for _, r := range Rules() {
		fmt.Fprintf(&b, "%-22s %s\n", r.Name, r.Doc)
	}
	goldenPath := filepath.Join(l.root, "internal", "lint", "testdata", "rules.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("rule registry drifted from testdata/rules.golden:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

// TestInScope pins the analysis surface: the module root, internal/ and
// cmd/ are linted; examples/ models user code and is exempt.
func TestInScope(t *testing.T) {
	for path, want := range map[string]bool{
		"mrpc":                     true,
		"mrpc/internal/core":       true,
		"mrpc/cmd/mrpclint":        true,
		"mrpc/examples/quickstart": false,
		"fmt":                      false,
	} {
		if got := inScope(path); got != want {
			t.Errorf("inScope(%q) = %v, want %v", path, got, want)
		}
	}
}
