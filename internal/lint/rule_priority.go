package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// checkPriorityConstants flags Bus.Register and Binding.On calls whose
// priority argument does not reference a named constant. Handler priorities
// order the whole composite protocol's dispatch (DESIGN.md §3); a magic int
// hides that ordering relationship from the reader and from grep.
func checkPriorityConstants(_ *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var registrar string
			switch {
			case busMethod(p, call) == "Register" && len(call.Args) == 4:
				registrar = "Bus.Register"
			case bindingMethod(p, call) == "On" && len(call.Args) == 4:
				registrar = "Binding.On"
			default:
				return true
			}
			prio := call.Args[2]
			if !referencesNamedConst(p, prio) {
				ds = append(ds, Diagnostic{
					Pos:  p.Fset.Position(prio.Pos()),
					Rule: "priority-constants",
					Message: "priority `" + exprString(p, prio) +
						"` passed to " + registrar + " must reference a named constant",
				})
			}
			return true
		})
	}
	return ds
}

// referencesNamedConst reports whether the expression mentions at least one
// declared (non-universe) named constant, e.g. PrioReliable or
// event.DefaultPriority — including in compound forms like PrioReliable+2.
func referencesNamedConst(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := p.Info.Uses[id].(*types.Const); ok && c.Pkg() != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

func exprString(p *Package, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
