package lint

import (
	"go/ast"
)

// goroutineAllowed are the packages that may use bare go statements:
// internal/proc owns the Thread abstraction that makes goroutines reapable,
// and internal/netsim's delivery goroutines are tracked by its own Quiesce
// accounting. (Test files are never loaded.)
var goroutineAllowed = map[string]bool{
	"mrpc/internal/proc":   true,
	"mrpc/internal/netsim": true,
}

// checkGoroutineDiscipline flags bare go statements. Goroutines spawned via
// proc.Go / proc.(*Threads).Go carry a Thread handle, so crash injection
// (Threads.KillAll) and shutdown paths can reap them; a bare go statement
// is invisible to both.
func checkGoroutineDiscipline(_ *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) || goroutineAllowed[p.Path] {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				ds = append(ds, Diagnostic{
					Pos:  p.Fset.Position(g.Pos()),
					Rule: "goroutine-discipline",
					Message: "bare go statement; spawn through proc.Go or " +
						"proc.(*Threads).Go so the goroutine can be reaped",
				})
			}
			return true
		})
	}
	return ds
}
