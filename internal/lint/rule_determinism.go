package lint

import (
	"go/ast"
	"go/types"
)

// bannedTime are the package-level time functions that read or wait on the
// wall clock. Deterministic replay under netsim requires every time
// observation to flow through the injected clock.Clock, so these are banned
// outside internal/clock (which implements Real on top of them).
var bannedTime = map[string]string{
	"Now":       "clock.Clock.Now",
	"Sleep":     "clock.Clock.Sleep",
	"After":     "clock.After",
	"AfterFunc": "clock.Clock.AfterFunc",
	"Since":     "clock.Clock.Now and Time.Sub",
	"Until":     "clock.Clock.Now and Time.Sub",
	"Tick":      "clock.Clock.AfterFunc",
	"NewTimer":  "clock.Clock.AfterFunc",
	"NewTicker": "clock.Clock.AfterFunc",
}

// allowedRand are the math/rand constructors for explicitly seeded
// generators; everything else package-level draws from the unseeded global
// source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// checkDeterminism flags wall-clock and global-randomness references.
func checkDeterminism(_ *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) || p.Path == "mrpc/internal/clock" {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkgLevelObj(p, sel)
			if obj == nil {
				return true
			}
			// Types (rand.Rand, time.Duration) and constants are fine; only
			// the package-level functions touch the wall clock / global rng.
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if repl, banned := bannedTime[obj.Name()]; banned {
					ds = append(ds, Diagnostic{
						Pos:  p.Fset.Position(sel.Pos()),
						Rule: "determinism",
						Message: "time." + obj.Name() + " bypasses the seeded clock; use " +
							repl + " (internal/clock)",
					})
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[obj.Name()] {
					ds = append(ds, Diagnostic{
						Pos:  p.Fset.Position(sel.Pos()),
						Rule: "determinism",
						Message: "rand." + obj.Name() + " draws from the global source; use a " +
							"rand.New(rand.NewSource(seed)) instance",
					})
				}
			}
			return true
		})
	}
	return ds
}
