package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the module's packages. Imports (both
// standard library and intra-module) are resolved from compiled export data
// produced by `go list -export`, so the loader needs only the Go toolchain
// already required to build the repo — no dependencies beyond the standard
// library.
type Loader struct {
	Fset *token.FileSet

	root    string
	mods    []listedPackage   // module packages, in `go list` order
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// NewLoader builds export data for the module rooted at root and every
// dependency, and prepares an importer over it.
func NewLoader(root string) (*Loader, error) {
	cmd := exec.Command("go", "list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard", "./...")
	cmd.Dir = root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list -export: %v\n%s", err, errb.String())
	}

	l := &Loader{
		Fset:    token.NewFileSet(),
		root:    root,
		exports: make(map[string]string),
	}
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && inModule(p.ImportPath) {
			l.mods = append(l.mods, p)
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l, nil
}

func inModule(path string) bool {
	return path == "mrpc" || strings.HasPrefix(path, "mrpc/")
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// LoadModule type-checks every analyzable module package (examples/ model
// third-party user code and are skipped; testdata never appears in go list).
func (l *Loader) LoadModule() ([]*Package, error) {
	var pkgs []*Package
	for _, p := range l.mods {
		if strings.HasPrefix(p.ImportPath, "mrpc/examples/") {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.Check(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses and type-checks the given files as one package with the
// given import path. File names in positions are reported relative to the
// module root when possible.
func (l *Loader) Check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		display := name
		if rel, err := filepath.Rel(l.root, name); err == nil && !strings.HasPrefix(rel, "..") {
			display = rel
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var terrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, len(terrs))
		for _, e := range terrs {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("lint: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Info: info, Pkg: tpkg}, nil
}
