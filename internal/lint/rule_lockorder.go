package lint

// Rule lock-order: a module-wide static lock graph over the named mutexes
// (mutex-typed struct fields and package-level mutex vars; the 16 table
// shard locks collapse to the single node core.tableShard). Three checks:
//
//  1. order — while any tracked mutex is (may-)held, acquiring another —
//     directly or through a resolvable callee's transitive lock set, with
//     Bus.Trigger standing for every registered handler — adds an edge;
//     the module graph must be acyclic. Cycles are reported once each by
//     the module-level pass.
//  2. scoped callbacks — a function literal passed to the scoped table API
//     (Framework.WithClient/WithServer/EachClient/EachServer/ClientTx/
//     ServerTx, tx.Each, and the internal shard helpers) runs under a shard
//     mutex; acquiring any mutex inside one is rejected outright.
//  3. missing unlock — a Lock whose mutex is held at some exits of the
//     function but not all (a forgotten early-return path) is flagged.
//     Helpers that exit holding on EVERY path (lockAll) and functions that
//     release on every path are both fine by construction.
//
// Interface calls are not devirtualized and function-typed values are not
// resolved; both under-approximate the graph (documented in DESIGN.md §6).
// RLock counts as an acquire of the same node — ordering discipline does
// not distinguish read from write acquisition.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

type lockFact struct {
	may  map[string]bool
	must map[string]bool
}

func cloneLockFact(f lockFact) lockFact {
	g := lockFact{may: make(map[string]bool, len(f.may)), must: make(map[string]bool, len(f.must))}
	for k := range f.may {
		g.may[k] = true
	}
	for k := range f.must {
		g.must[k] = true
	}
	return g
}

func joinLockFact(dst, src lockFact) bool {
	changed := false
	for k := range src.may {
		if !dst.may[k] {
			dst.may[k] = true
			changed = true
		}
	}
	for k := range dst.must {
		if !src.must[k] {
			delete(dst.must, k)
			changed = true
		}
	}
	return changed
}

func checkLockOrder(a *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) {
		return nil
	}
	var out diagSet
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lockFlow(a, p, fd.Body, &out)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lockFlow(a, p, lit.Body, &out)
			}
			return true
		})
		checkScopedCallbacks(a, p, f, &out)
	}
	return out.ds
}

// lockFlow runs the held-set analysis over one function body, recording
// graph edges into the shared Analysis and flagging mixed-exit locks.
func lockFlow(a *Analysis, p *Package, body *ast.BlockStmt, out *diagSet) {
	c := buildCFG(body)

	// Syntactic acquire sites (non-try, non-deferred), for mixed-exit
	// attribution.
	sites := make(map[string]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := lockSite(p, n); ok && op.acquire && !op.try && op.node != "" {
				if _, dup := sites[op.node]; !dup {
					sites[op.node] = op.pos
				}
			}
		}
		return true
	})

	transfer := func(atom ast.Node, f lockFact) {
		switch atom.(type) {
		case *ast.DeferStmt:
			return // effect replays at exit
		case *ast.GoStmt:
			return // runs on another goroutine
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A directly invoked function literal — an IIFE, or a deferred
			// `func() { ... }()` replayed at exit — runs inline: its lock
			// effects (the loop-release idiom pairing a loop of Locks with
			// one deferred closure of Unlocks) apply to this held set.
			if flit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				for _, arg := range call.Args {
					ast.Inspect(arg, visit)
				}
				ast.Inspect(flit.Body, visit)
				return false
			}
			if op, ok := lockSite(p, call); ok {
				if op.node == "" {
					return true
				}
				if op.acquire {
					for held := range f.may {
						a.addLockEdge(held, op.node, p.Fset.Position(op.pos))
					}
					f.may[op.node] = true
					if !op.try {
						f.must[op.node] = true
					}
				} else {
					delete(f.may, op.node)
					delete(f.must, op.node)
				}
				return true
			}
			var callee map[string]bool
			if busMethod(p, call) == "Trigger" {
				callee = a.triggerLocks()
			} else if fi := a.calleeInfo(p, call); fi != nil {
				callee = a.summaryOf(fi).locks
			}
			for node := range callee {
				for held := range f.may {
					a.addLockEdge(held, node, p.Fset.Position(call.Pos()))
				}
			}
			return true
		}
		ast.Inspect(atom, visit)
	}

	fns := flowFuncs[lockFact]{clone: cloneLockFact, join: joinLockFact, transfer: transfer}
	entry := lockFact{may: map[string]bool{}, must: map[string]bool{}}
	in := runForward(c, entry, fns)
	exitIn, ok := in[c.exit]
	if !ok {
		return // exit unreachable (infinite loop)
	}
	exitOut := applyBlock(c.exit, exitIn, fns)
	for node, pos := range sites {
		if exitOut.may[node] && !exitOut.must[node] {
			out.add(p, pos, "lock-order",
				"mutex "+node+" is not released on every path from this Lock "+
					"(early return without Unlock? prefer defer)")
		}
	}
}

// scopedCallbackMethods maps (core receiver type, method) pairs whose
// function-literal argument runs under a table shard mutex.
var scopedCallbackMethods = map[string]map[string]bool{
	"Framework":   {"WithClient": true, "WithServer": true, "EachClient": true, "EachServer": true, "ClientTx": true, "ServerTx": true},
	"ClientTx":    {"Each": true},
	"ServerTx":    {"Each": true},
	"clientTable": {"with": true, "each": true},
	"serverTable": {"with": true, "each": true},
}

func checkScopedCallbacks(a *Analysis, p *Package, f *ast.File, out *diagSet) {
	lits := localFuncLits(p, f)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		pkg, typ := recvNamed(fn)
		if pkg != corePath || !scopedCallbackMethods[typ][fn.Name()] {
			return true
		}
		lit := resolveFuncLit(p, call.Args[len(call.Args)-1], lits)
		if lit == nil {
			return true
		}
		where := typ + "." + fn.Name()
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.GoStmt); ok {
				return false // spawned work does not hold the shard lock
			}
			inner, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := lockSite(p, inner); ok {
				if op.acquire {
					name := op.node
					if name == "" {
						name = "a mutex"
					}
					out.add(p, inner.Pos(), "lock-order",
						"acquires "+name+" inside a "+where+" callback; the shard mutex is "+
							"held — take locks before entering, or collect and act after")
				}
				return true
			}
			if fi := a.calleeInfo(p, inner); fi != nil {
				sum := a.summaryOf(fi)
				if len(sum.locks) > 0 {
					nodes := make([]string, 0, len(sum.locks))
					for node := range sum.locks {
						nodes = append(nodes, node)
					}
					sort.Strings(nodes)
					out.add(p, inner.Pos(), "lock-order",
						"acquires "+strings.Join(nodes, ", ")+" via "+fi.decl.Name.Name+
							" inside a "+where+" callback; the shard mutex is held")
				}
			}
			return true
		})
		return true
	})
}

// --- module-wide graph ----------------------------------------------------

func (a *Analysis) addLockEdge(from, to string, pos token.Position) {
	if from == to {
		return // tableShard self-edges: lockAll's fixed shard order
	}
	a.lockEdges[lockEdge{from, to}] = append(a.lockEdges[lockEdge{from, to}], pos)
}

// checkLockCycles reports each elementary cycle of the accumulated lock
// graph once, anchored at the lexicographically smallest node.
func checkLockCycles(a *Analysis) []Diagnostic {
	adj := make(map[string][]string)
	for e := range a.lockEdges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	var ds []Diagnostic
	seen := make(map[string]bool)
	// DFS from each node; a back edge to the root yields a cycle. Bounded:
	// the graph is tiny (tens of nodes).
	var path []string
	onPath := make(map[string]bool)
	var dfs func(root, cur string)
	dfs = func(root, cur string) {
		for _, next := range adj[cur] {
			if next == root {
				cycle := append(append([]string{}, path...), root)
				key := strings.Join(cycle, "→")
				if seen[key] {
					continue
				}
				seen[key] = true
				edge := lockEdge{cycle[len(cycle)-2], root}
				if len(cycle) == 2 {
					edge = lockEdge{root, root}
				}
				poss := a.lockEdges[edge]
				pos := token.Position{Filename: "lock-graph"}
				if len(poss) > 0 {
					pos = poss[0]
				}
				ds = append(ds, Diagnostic{
					Pos:  pos,
					Rule: "lock-order",
					Message: fmt.Sprintf("lock-order cycle: %s — a thread holding %s can block "+
						"behind one holding %s", strings.Join(cycle, " → "), cycle[0], cycle[len(cycle)-2]),
				})
				continue
			}
			if next < root || onPath[next] {
				continue // canonical start: only cycles rooted at their min node
			}
			path = append(path, next)
			onPath[next] = true
			dfs(root, next)
			onPath[next] = false
			path = path[:len(path)-1]
		}
	}
	for _, n := range nodes {
		path = []string{n}
		onPath = map[string]bool{n: true}
		dfs(n, n)
	}
	return ds
}

// LockGraphDOT renders the accumulated lock graph in Graphviz DOT form,
// nodes and edges sorted for a stable, committable output.
func (a *Analysis) LockGraphDOT() string {
	nodeSet := make(map[string]bool)
	edges := make([]lockEdge, 0, len(a.lockEdges))
	for e := range a.lockEdges {
		nodeSet[e.from], nodeSet[e.to] = true, true
		edges = append(edges, e)
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, n := range nodes {
		fmt.Fprintf(&b, "\t%q;\n", n)
	}
	for _, e := range edges {
		fmt.Fprintf(&b, "\t%q -> %q;\n", e.from, e.to)
	}
	b.WriteString("}\n")
	return b.String()
}
