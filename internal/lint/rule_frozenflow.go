package lint

// Rule frozen-flow: the flow-sensitive upgrade of msg-immutability for the
// packages that the whitelist exempts. msg-immutability bans NetMsg field
// writes everywhere OUTSIDE internal/msg and internal/netsim; inside them,
// writes are the point — but only before the message freezes. This rule
// tracks, per function, the *NetMsg variables on which Freeze() has been
// called on some path (including the result of and the sub-messages handed
// to msg.NewBatch, which freezes them); any later field write, element
// write, delete, in-place append, or SetRelay stamp (the dissemination
// tree's field write in method clothing, D17) through such a variable is a
// diagnostic.
//
// Clone() and Mutable() launder a frozen value into a writable one, so
// their results are untracked. Parameters start unfrozen: a function that
// writes a message it received is the constructor idiom (codec Decode), and
// cross-function freezing is the caller's flow to check.

import (
	"go/ast"
	"go/types"
)

func modelsMsgInternal(path string) bool {
	return path == "mrpc/internal/msg" || path == "mrpc/internal/netsim" ||
		path == "mrpc/internal/lint/testdata/frozenflow"
}

type frozenFact map[types.Object]bool

func cloneFrozenFact(f frozenFact) frozenFact {
	g := make(frozenFact, len(f))
	for k := range f {
		g[k] = true
	}
	return g
}

func joinFrozenFact(dst, src frozenFact) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

func checkFrozenFlow(a *Analysis, p *Package) []Diagnostic {
	if !modelsMsgInternal(p.Path) {
		return nil
	}
	var out diagSet
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				frozenFlow(a, p, fd.Body, &out)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				frozenFlow(a, p, lit.Body, &out)
			}
			return true
		})
	}
	return out.ds
}

func frozenFlow(a *Analysis, p *Package, body *ast.BlockStmt, out *diagSet) {
	c := buildCFG(body)

	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.Info.Uses[id]; obj != nil {
			return obj
		}
		return p.Info.Defs[id]
	}

	// netMsgMethod returns the method name when call is m.<Name>() on a
	// *NetMsg receiver whose base is an identifier, plus that identifier's
	// object.
	netMsgMethod := func(call *ast.CallExpr) (string, types.Object) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", nil
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return "", nil
		}
		if pkg, typ := recvNamed(fn); pkg != "mrpc/internal/msg" || typ != "NetMsg" {
			return "", nil
		}
		return fn.Name(), objOf(sel.X)
	}
	isNewBatch := func(call *ast.CallExpr) bool {
		fn := calleeFunc(p, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "mrpc/internal/msg" &&
			fn.Name() == "NewBatch" && fn.Type().(*types.Signature).Recv() == nil
	}

	// flag writes through a frozen base. e is the written expression (the
	// assignment target or builtin argument).
	checkWrite := func(e ast.Expr, f frozenFact, what string) {
		sel, field := msgFieldTarget(p, e)
		if sel == nil {
			return
		}
		base := ast.Unparen(sel.X)
		if ix, ok := base.(*ast.IndexExpr); ok {
			base = ast.Unparen(ix.X) // subs[i].Field after NewBatch(subs)
		}
		obj := objOf(base)
		if obj == nil || !f[obj] {
			return
		}
		out.add(p, sel.Pos(), "frozen-flow",
			what+" of NetMsg field "+field+" after "+obj.Name()+" was frozen on this path; "+
				"a frozen message may already be shared with other recipients (DESIGN.md D13)")
	}

	transfer := func(atom ast.Node, f frozenFact) {
		if _, ok := atom.(*ast.GoStmt); ok {
			return
		}
		// Writes first: `m.F = x` on an already-frozen m flags even if the
		// same atom refreezes something.
		switch n := atom.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs, f, "write")
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, f, "write")
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if obj := objOf(e); obj != nil {
					delete(f, obj) // rebound each iteration
				}
			}
			return
		}
		ast.Inspect(atom, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) > 0 {
				if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
					switch id.Name {
					case "delete":
						checkWrite(call.Args[0], f, "delete through")
					case "append":
						checkWrite(call.Args[0], f, "append to")
					}
					return true
				}
			}
			if name, obj := netMsgMethod(call); obj != nil {
				switch name {
				case "Freeze":
					f[obj] = true
				case "SetRelay":
					// The relay stamp (D17) is a field write in method
					// clothing; at run time it panics on a frozen frame.
					if f[obj] {
						out.add(p, call.Pos(), "frozen-flow",
							"SetRelay on "+obj.Name()+" after it was frozen on this path; "+
								"the tree origin must stamp the fanout before the transport freezes the frame (DESIGN.md D17)")
					}
				}
			}
			if isNewBatch(call) && len(call.Args) >= 2 {
				// NewBatch freezes the sub-messages it is handed.
				if obj := objOf(call.Args[1]); obj != nil {
					f[obj] = true
				}
			}
			return true
		})
		// Assignments: aliases propagate frozenness; Clone/Mutable results
		// and any other rebinding clear it.
		if as, ok := atom.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(id)
				if obj == nil {
					continue
				}
				switch {
				case objOf(rhs) != nil && f[objOf(rhs)]:
					f[obj] = true
				case isFreshFromNewBatch(p, rhs):
					f[obj] = true
				default:
					delete(f, obj)
				}
			}
		}
	}

	fns := flowFuncs[frozenFact]{clone: cloneFrozenFact, join: joinFrozenFact, transfer: transfer}
	in := runForward(c, frozenFact{}, fns)
	if exitIn, ok := in[c.exit]; ok {
		applyBlock(c.exit, exitIn, fns)
	}
}

// isFreshFromNewBatch reports whether an expression is a direct
// msg.NewBatch(...) call — its result is born frozen.
func isFreshFromNewBatch(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "mrpc/internal/msg" &&
		fn.Name() == "NewBatch"
}
