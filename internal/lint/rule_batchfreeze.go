package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// checkBatchFreeze enforces that msg.NewBatch is the only producer of batch
// frames (DESIGN.md deviation D16): NewBatch freezes every sub-message and
// the frame itself before handoff, so a batch is immutable from birth. A
// hand-rolled frame could still be mutated after its sub-messages were
// shared with the flusher's per-destination queue — the exact corruption
// msg-immutability exists to prevent, entered through the constructor-shaped
// hole that rule leaves open. Outside internal/msg the rule rejects
//
//   - a NetMsg composite literal that sets the Batch field or gives Type
//     the value msg.OpBatch,
//   - any assignment through a .Batch selector (direct or element write).
func checkBatchFreeze(_ *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) || p.Path == "mrpc/internal/msg" ||
		p.Path == "mrpc/internal/lint/testdata/frozenflow" {
		return nil
	}
	var ds []Diagnostic
	flag := func(pos ast.Node, what string) {
		ds = append(ds, Diagnostic{
			Pos:  p.Fset.Position(pos.Pos()),
			Rule: "batch-freeze",
			Message: what + ": batch frames are frozen at construction and may only be " +
				"built by msg.NewBatch (DESIGN.md D16)",
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isNetMsgLit(p, n) {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch {
					case key.Name == "Batch":
						flag(kv, "NetMsg literal sets Batch")
					case key.Name == "Type" && isOpBatch(p, kv.Value):
						flag(kv, "NetMsg literal with Type OpBatch")
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, field := msgFieldTarget(p, lhs); sel != nil && field == "Batch" {
						flag(sel, "write through .Batch")
					}
				}
			}
			return true
		})
	}
	return ds
}

// isNetMsgLit reports whether a composite literal's type is msg.NetMsg.
func isNetMsgLit(p *Package, lit *ast.CompositeLit) bool {
	t := p.Info.TypeOf(lit)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "mrpc/internal/msg" && named.Obj().Name() == "NetMsg"
}

// isOpBatch reports whether an expression resolves to the msg.OpBatch
// constant (directly or through a local constant declared equal to it).
func isOpBatch(p *Package, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := p.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	if c.Pkg().Path() == "mrpc/internal/msg" && c.Name() == "OpBatch" {
		return true
	}
	// A renamed constant with the same type and value is the same hole.
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "mrpc/internal/msg" || named.Obj().Name() != "NetOp" {
		return false
	}
	op, ok := named.Obj().Pkg().Scope().Lookup("OpBatch").(*types.Const)
	return ok && constant.Compare(op.Val(), token.EQL, c.Val())
}
