package lint

// Control-flow graphs over ast.Stmt — the spine of the flow-sensitive rules
// (pool-safety, lock-order, frozen-flow). The CFG is deliberately modest: it
// models exactly the control constructs this module uses (no goto, no
// fallthrough in linted code) and leaves expression-level ordering to the
// transfer functions, which walk each atom's AST in source order.

import "go/ast"

// block is one basic block. atoms are executed in order; each atom is either
// a simple statement (*ast.AssignStmt, *ast.ExprStmt, ...), a control
// expression hoisted out of its construct (an if/for condition, a switch
// dispatch), or — in the exit block only — a bare *ast.CallExpr replayed
// from a defer.
type block struct {
	atoms []ast.Node
	succs []*block
	index int // position in cfg.blocks, for deterministic iteration
}

// cfg is the control-flow graph of one function body. Function literals
// nested in the body are not descended into: a literal executes elsewhere
// (or never), so it appears only as an atom of the block that creates it and
// is analyzed as its own function.
type cfg struct {
	entry  *block
	exit   *block
	blocks []*block
}

// buildCFG lowers a function body. Deferred calls are replayed as atoms of
// the exit block in reverse registration order — an approximation (a defer
// registered on one path replays on all), but the module's defers are
// unconditional mutex releases and pool returns, for which "runs at every
// exit" is exactly the semantics the analyses want.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	b.cur = b.c.entry
	b.stmtList(body.List)
	b.edge(b.cur, b.c.exit) // fall off the end
	// Replay defers at exit, last registered first.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.c.exit.atoms = append(b.c.exit.atoms, b.defers[i])
	}
	return b.c
}

type loopFrame struct {
	label   string
	breakTo *block
	contTo  *block
}

type cfgBuilder struct {
	c      *cfg
	cur    *block
	loops  []loopFrame
	defers []*ast.CallExpr
	label  string // pending label for the next loop/switch
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) atom(n ast.Node) {
	if n != nil {
		b.cur.atoms = append(b.cur.atoms, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		b.atom(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.atom(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.atoms = append(head.atoms, s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, contTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		if s.Post != nil {
			post.atoms = append(post.atoms, s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt atom models per-iteration rebinding of the key and
		// value variables; it sits in the loop header so it executes on the
		// path into every iteration.
		head.atoms = append(head.atoms, s)
		b.edge(head, body)
		b.edge(head, after)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, contTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.atom(s.Init)
		}
		if s.Tag != nil {
			b.atom(s.Tag)
		}
		b.caseDispatch(label, s.Body.List, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt) {
			return cc.List, cc.Body
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.atom(s.Init)
		}
		b.atom(s.Assign)
		b.caseDispatch(label, s.Body.List, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt) {
			return nil, cc.Body
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		dispatch := b.cur
		after := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			body := b.newBlock()
			b.edge(dispatch, body)
			b.cur = body
			if comm.Comm != nil {
				b.atom(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			b.edge(dispatch, after) // select{} blocks forever; keep the graph connected
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.atom(s)
		b.edge(b.cur, b.c.exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		// Argument evaluation happens here; the call's effect replays at exit.
		b.atom(s)
		b.defers = append(b.defers, s.Call)

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, ExprStmt, IncDecStmt, DeclStmt, SendStmt, GoStmt, ...
		b.atom(s)
	}
}

// caseDispatch lowers switch-shaped constructs: one dispatch block holding
// all guard expressions (over-approximating their evaluation), an edge to
// each clause body, and an edge past the construct unless a default exists.
func (b *cfgBuilder) caseDispatch(label string, clauses []ast.Stmt, split func(*ast.CaseClause) ([]ast.Expr, []ast.Stmt)) {
	dispatch := b.cur
	after := b.newBlock()
	hasDefault := false
	b.loops = append(b.loops, loopFrame{label: label, breakTo: after})
	for _, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		exprs, body := split(cc)
		for _, e := range exprs {
			dispatch.atoms = append(dispatch.atoms, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(dispatch, blk)
		b.cur = blk
		b.stmtList(body)
		b.edge(b.cur, after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	want := ""
	if s.Label != nil {
		want = s.Label.Name
	}
	find := func(cont bool) *block {
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if cont && fr.contTo == nil {
				continue // break-only frame (switch/select)
			}
			if want == "" || fr.label == want {
				if cont {
					return fr.contTo
				}
				return fr.breakTo
			}
		}
		return nil
	}
	switch s.Tok.String() {
	case "break":
		if t := find(false); t != nil {
			b.edge(b.cur, t)
		}
	case "continue":
		if t := find(true); t != nil {
			b.edge(b.cur, t)
		}
	case "goto":
		// Not used in linted code; treat as an exit so analysis stays sound
		// for facts that must hold on every path.
		b.edge(b.cur, b.c.exit)
	}
	b.cur = b.newBlock() // unreachable continuation
}

func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}
