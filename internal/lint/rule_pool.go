package lint

// Rule pool-safety: flow-sensitive lifetime tracking for values drawn from
// the module's sync.Pools (DESIGN.md D16's zero-alloc call path). A value
// obtained by `pool.Get().(*T)` — or from a helper whose summary returns a
// fresh pooled value — is tracked through the function's CFG:
//
//	Live ──Put/release-helper──▶ Released   any later use is use-after-Put;
//	                                        a later Put is a double-Put
//	Live ──store to field of a non-local, global, channel send, closure
//	       capture, go-statement handoff──▶ Escaped
//	                                        a later Put is flagged: another
//	                                        reference may still be live
//	Live ──passed to a //lint:owns callee, returned to the caller──▶ untracked
//	                                        (ownership moved; the accepting
//	                                        side is now responsible)
//
// The lattice is a may-analysis (joins union the states), so a Put that is
// only sometimes preceded by another Put still flags. Handing a tracked
// value to a call without a release/owns/escape summary is a borrow and
// changes nothing — that is the hot path's dominant idiom (Trigger's event
// argument, handler closures).
import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	psLive uint8 = 1 << iota
	psReleased
	psEscaped
)

type poolFact map[types.Object]uint8

func clonePoolFact(f poolFact) poolFact {
	g := make(poolFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func joinPoolFact(dst, src poolFact) bool {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

func checkPoolSafety(a *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) {
		return nil
	}
	var out diagSet
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				poolFlow(a, p, fd.Body, &out)
			}
		}
		// Function literals are their own analysis unit (a value drawn
		// inside a callback lives and dies there); the enclosing unit sees
		// the literal only as a capture point.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				poolFlow(a, p, lit.Body, &out)
			}
			return true
		})
	}
	return out.ds
}

// relKind classifies what a call site does to one of its pooled arguments.
type relKind int

const (
	relPut    relKind = iota + 1 // pool.Put or a helper that releases
	relOwns                      // //lint:owns transfer
	relEscape                    // helper stores it beyond its locals
)

type relArg struct {
	kind relKind
	pos  token.Pos
}

func poolFlow(a *Analysis, p *Package, body *ast.BlockStmt, out *diagSet) {
	c := buildCFG(body)

	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.Info.Uses[id]; obj != nil {
			return obj
		}
		return p.Info.Defs[id]
	}
	isLocal := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				obj := objOf(x)
				return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
			default:
				return false
			}
		}
	}

	transfer := func(atom ast.Node, f poolFact) {
		switch n := atom.(type) {
		case *ast.RangeStmt:
			checkPoolUses(p, n.X, f, nil, out)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if obj := objOf(e); obj != nil {
					delete(f, obj) // rebound every iteration
				}
			}
			return
		case *ast.DeferStmt:
			// Arguments are evaluated now; the call's effect replays at the
			// exit block (see buildCFG).
			for _, arg := range n.Call.Args {
				checkPoolUses(p, arg, f, nil, out)
			}
			return
		case *ast.GoStmt:
			checkPoolUses(p, n.Call, f, nil, out)
			escapeTrackedIn(p, n, f)
			return
		case *ast.ReturnStmt:
			checkPoolUses(p, n, f, nil, out)
			for _, r := range n.Results {
				if obj := objOf(r); obj != nil {
					delete(f, obj) // ownership moves to the caller
				}
			}
			return
		}

		// Generic atom: classify call effects, check uses, apply escapes,
		// releases, then sources/aliases (assignment last, as evaluated).
		rels := make(map[*ast.Ident]relArg)
		skip := make(map[*ast.Ident]bool)
		collectRelArgs(a, p, atom, rels)
		for id := range rels {
			skip[id] = true
		}
		if as, ok := atom.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					skip[id] = true
				}
			}
		}
		checkPoolUses(p, atom, f, skip, out)

		// Escapes.
		ast.Inspect(atom, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				escapeTrackedIn(p, n.Body, f)
				return false
			case *ast.SendStmt:
				if obj := objOf(n.Value); obj != nil && f[obj]&psLive != 0 {
					f[obj] |= psEscaped
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if obj := objOf(el); obj != nil && f[obj]&psLive != 0 {
						f[obj] |= psEscaped
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isB := p.Info.Uses[id].(*types.Builtin); isB && len(n.Args) > 1 {
						for _, arg := range n.Args[1:] {
							if obj := objOf(arg); obj != nil && f[obj]&psLive != 0 && !isLocal(n.Args[0]) {
								f[obj] |= psEscaped
							}
						}
					}
				}
			}
			return true
		})
		if as, ok := atom.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				obj := objOf(rhs)
				if obj == nil || f[obj] == 0 {
					continue
				}
				switch lhs := ast.Unparen(as.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					if !isLocal(lhs.X) {
						f[obj] |= psEscaped
					}
				case *ast.IndexExpr:
					if !isLocal(lhs.X) {
						f[obj] |= psEscaped
					}
				case *ast.StarExpr:
					f[obj] |= psEscaped
				case *ast.Ident:
					if lo := p.Info.Uses[lhs]; lo != nil && isGlobalVar(lo) {
						f[obj] |= psEscaped
					}
				}
			}
		}

		// Releases and ownership transfers.
		for id, rel := range rels {
			obj := objOf(id)
			if obj == nil {
				continue
			}
			st, tracked := f[obj]
			if !tracked {
				continue
			}
			switch rel.kind {
			case relOwns:
				delete(f, obj)
			case relEscape:
				f[obj] |= psEscaped
			case relPut:
				switch {
				case st&psReleased != 0:
					out.add(p, rel.pos, "pool-safety",
						"pooled value "+obj.Name()+" is returned to its pool twice (double-Put)")
				case st&psEscaped != 0:
					out.add(p, rel.pos, "pool-safety",
						"pooled value "+obj.Name()+" is returned to its pool after a reference "+
							"escaped (field/global/channel/closure); the escapee would alias a recycled object")
				}
				f[obj] = psReleased
			}
		}

		// Sources, aliases, kills.
		if as, ok := atom.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(id)
				if obj == nil {
					continue
				}
				switch {
				case a.poolGetSource(p, rhs):
					f[obj] = psLive
				case objOf(rhs) != nil && f[objOf(rhs)] != 0:
					f[obj] = f[objOf(rhs)] // alias carries the state
				default:
					delete(f, obj) // rebound to something untracked
				}
			}
		}
		if ds, ok := atom.(*ast.DeclStmt); ok {
			if gd, ok := ds.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && a.poolGetSource(p, vs.Values[i]) {
							if obj := p.Info.Defs[name]; obj != nil {
								f[obj] = psLive
							}
						}
					}
				}
			}
		}
	}

	fns := flowFuncs[poolFact]{clone: clonePoolFact, join: joinPoolFact, transfer: transfer}
	in := runForward(c, poolFact{}, fns)
	if exitIn, ok := in[c.exit]; ok {
		applyBlock(c.exit, exitIn, fns) // replayed defers (deferred Puts)
	}
}

// collectRelArgs finds, within one atom, every identifier handed to a pool
// Put or to a callee whose summary releases/owns/escapes that parameter.
func collectRelArgs(a *Analysis, p *Package, atom ast.Node, rels map[*ast.Ident]relArg) {
	ast.Inspect(atom, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if poolMethod(p, call) == "Put" && len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				rels[id] = relArg{kind: relPut, pos: call.Pos()}
			}
			return true
		}
		fi := a.calleeInfo(p, call)
		if fi == nil {
			return true
		}
		sum := a.summaryOf(fi)
		for j, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			k := j
			if k >= len(sum.params) {
				k = len(sum.params) - 1
			}
			if k < 0 {
				continue
			}
			switch {
			case sum.ownsParam[k]:
				rels[id] = relArg{kind: relOwns, pos: call.Pos()}
			case sum.releasesParam[k]:
				rels[id] = relArg{kind: relPut, pos: call.Pos()}
			case sum.escapesParam[k]:
				if _, have := rels[id]; !have {
					rels[id] = relArg{kind: relEscape, pos: call.Pos()}
				}
			}
		}
		return true
	})
}

// checkPoolUses flags every read of a Released value within n. skip lists
// identifiers that are themselves the release/assignment target this atom
// (they get the more specific double-Put/rebind treatment instead).
func checkPoolUses(p *Package, n ast.Node, f poolFact, skip map[*ast.Ident]bool, out *diagSet) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if f[obj]&psReleased != 0 {
			out.add(p, id.Pos(), "pool-safety",
				"pooled value "+obj.Name()+" is used after being returned to its pool "+
					"(use-after-Put); the pool may already have handed it to another goroutine")
		}
		return true
	})
}

// escapeTrackedIn marks every tracked value referenced under n as escaped —
// used for closure captures and go-statement handoffs, whose execution
// context outlives (or races) the current flow.
func escapeTrackedIn(p *Package, n ast.Node, f poolFact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				if f[obj]&psLive != 0 {
					f[obj] |= psEscaped
				}
			}
		}
		return true
	})
}
