package lint

import (
	"go/ast"
	"go/types"
)

// checkHandlerDiscipline analyzes the body of every function literal
// registered as an event handler (Bus.Register's fourth argument,
// Bus.RegisterTimeout's third, and their lifecycle-tracked equivalents
// Binding.On's fourth and Binding.After's third — directly, or through a
// local variable bound to a literal) and flags:
//
//   - synchronous Bus.Trigger calls: handlers run to completion on the
//     triggering goroutine, so a Trigger from inside a handler re-enters
//     dispatch beneath the current occurrence. Deliberate cascades (RPC
//     Main's CALL_FROM_USER -> NEW_RPC_CALL) carry a //lint:ignore.
//   - lockAll/unlockAll calls: whole-table locking from dispatch context
//     inverts the table/dispatch lock order; handlers needing a consistent
//     view use ClientTx/ServerTx.
//
// Function literals that the handler hands to deferred-execution APIs
// (Register, RegisterTimeout, AfterFunc) run outside the handler and are
// not attributed to it; they are analyzed on their own when registered.
// The analysis sees one call level deep: a helper whose summary triggers
// dispatch or takes the whole-table locks is flagged at its call site
// (a Trigger two helpers down is still invisible).
func checkHandlerDiscipline(a *Analysis, p *Package) []Diagnostic {
	if !inScope(p.Path) {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		lits := localFuncLits(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var handlerArg ast.Expr
			var name string
			switch busMethod(p, call) {
			case "Register":
				if len(call.Args) == 4 {
					handlerArg = call.Args[3]
					name = stringArg(call.Args[1], "handler")
				}
			case "RegisterTimeout":
				if len(call.Args) == 3 {
					handlerArg = call.Args[2]
					name = stringArg(call.Args[0], "handler")
				}
			}
			switch bindingMethod(p, call) {
			case "On":
				if len(call.Args) == 4 {
					handlerArg = call.Args[3]
					name = stringArg(call.Args[1], "handler")
				}
			case "After":
				if len(call.Args) == 3 {
					handlerArg = call.Args[2]
					name = stringArg(call.Args[0], "handler")
				}
			}
			if handlerArg == nil {
				return true
			}
			lit := resolveFuncLit(p, handlerArg, lits)
			if lit == nil {
				return true
			}
			ds = append(ds, analyzeHandlerBody(a, p, lit.Body, name)...)
			return true
		})

		// Micro-protocol lifecycle entry points run either on the plain
		// configuration path (before Start) or inside the reconfiguration
		// barrier (Composite.Swap), where dispatch is excluded — the same
		// context as a handler, with the same restrictions: no synchronous
		// Trigger (would dispatch under the write-held barrier) and no
		// lockAll/unlockAll. Handler literals the entry point registers are
		// skipped here; they are analyzed above under their own names.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !isLifecycleEntryPoint(fd.Name.Name) {
				continue
			}
			name := fd.Name.Name
			if t := receiverTypeName(fd); t != "" {
				name = t + "." + name
			}
			ds = append(ds, analyzeHandlerBody(a, p, fd.Body, name)...)
		}
	}
	return ds
}

// isLifecycleEntryPoint reports whether a method name is one of the
// MicroProtocol lifecycle entry points that run under the reconfiguration
// barrier (or on the pre-Start configuration path).
func isLifecycleEntryPoint(name string) bool {
	switch name {
	case "Attach", "Detach", "ExportState", "ImportState", "Adopt":
		return true
	}
	return false
}

// receiverTypeName extracts the bare receiver type name of a method decl.
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// localFuncLits maps local variables to the function literal they are bound
// to by a simple `x := func(...)` or `var x = func(...)`, so handlers named
// before registration (the re-registering timeout pattern) resolve too.
func localFuncLits(p *Package, f *ast.File) map[types.Object]*ast.FuncLit {
	m := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						obj := p.Info.Defs[id]
						if obj == nil {
							// Self-referencing handlers are declared first and
							// assigned with plain `=`.
							obj = p.Info.Uses[id]
						}
						if obj != nil {
							m[obj] = lit
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if lit, ok := v.(*ast.FuncLit); ok && i < len(n.Names) {
					if obj := p.Info.Defs[n.Names[i]]; obj != nil {
						m[obj] = lit
					}
				}
			}
		}
		return true
	})
	return m
}

func resolveFuncLit(p *Package, e ast.Expr, lits map[types.Object]*ast.FuncLit) *ast.FuncLit {
	switch e := e.(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return lits[obj]
		}
	}
	return nil
}

func analyzeHandlerBody(a *Analysis, p *Package, body ast.Node, name string) []Diagnostic {
	var ds []Diagnostic
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// The spawned body runs on another goroutine, not inside
				// this dispatch; rule goroutine-discipline covers the spawn.
				return false
			case *ast.CallExpr:
				deferred := false
				switch busMethod(p, n) {
				case "Trigger":
					ds = append(ds, Diagnostic{
						Pos:  p.Fset.Position(n.Pos()),
						Rule: "handler-discipline",
						Message: "handler " + name + " calls Bus.Trigger synchronously " +
							"(re-entrant dispatch)",
					})
				case "Register", "RegisterTimeout":
					deferred = true
				}
				switch bindingMethod(p, n) {
				case "On", "After":
					deferred = true
				}
				if deferred {
					// Deferred execution: analyze the registered literal as
					// its own handler (the outer Inspect already does), but
					// keep walking the non-literal arguments.
					for _, arg := range n.Args {
						if _, isLit := arg.(*ast.FuncLit); !isLit {
							walk(arg)
						}
					}
					return false
				}
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isTableLockAll(sel.Sel.Name) {
					ds = append(ds, lockAllDiag(p, n, name))
				} else if id, ok := n.Fun.(*ast.Ident); ok && isTableLockAll(id.Name) {
					ds = append(ds, lockAllDiag(p, n, name))
				}
				// AfterFunc callbacks run from the clock, not this dispatch.
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "AfterFunc" {
					for _, arg := range n.Args {
						if _, isLit := arg.(*ast.FuncLit); !isLit {
							walk(arg)
						}
					}
					return false
				}
				// One level deep: a helper that itself triggers dispatch or
				// takes the whole-table locks carries the violation to this
				// call site. The scoped table API is exempt — ClientTx/
				// ServerTx ARE the sanctioned way to lock the whole table,
				// releasing before they return.
				if fn := calleeFunc(p, n); fn != nil {
					if pkg, typ := recvNamed(fn); pkg == corePath && scopedCallbackMethods[typ][fn.Name()] {
						return true
					}
				}
				if fi := a.calleeInfo(p, n); fi != nil {
					sum := a.summaryOf(fi)
					if sum.directTrigger {
						ds = append(ds, Diagnostic{
							Pos:  p.Fset.Position(n.Pos()),
							Rule: "handler-discipline",
							Message: "handler " + name + " calls " + fi.decl.Name.Name +
								", which calls Bus.Trigger synchronously (re-entrant dispatch)",
						})
					}
					if sum.directLockAll {
						ds = append(ds, Diagnostic{
							Pos:  p.Fset.Position(n.Pos()),
							Rule: "handler-discipline",
							Message: "handler " + name + " calls " + fi.decl.Name.Name +
								", which calls lockAll/unlockAll; use ClientTx/ServerTx " +
								"for a consistent table view",
						})
					}
				}
			}
			return true
		})
	}
	walk(body)
	return ds
}

func isTableLockAll(name string) bool { return name == "lockAll" || name == "unlockAll" }

func lockAllDiag(p *Package, call *ast.CallExpr, name string) Diagnostic {
	return Diagnostic{
		Pos:  p.Fset.Position(call.Pos()),
		Rule: "handler-discipline",
		Message: "handler " + name + " calls lockAll/unlockAll; use ClientTx/ServerTx " +
			"for a consistent table view",
	}
}
