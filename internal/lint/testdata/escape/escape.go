// Fixture for the table-escape rule: record pointers handed to scoped
// table callbacks must not outlive the callback.
package escape

import (
	"mrpc/internal/core"
	"mrpc/internal/msg"
)

type holder struct{ rec *core.ClientRecord }

var global *core.ClientRecord

func fieldStore(fw *core.Framework, h *holder, id msg.CallID) {
	fw.WithClient(id, func(rec *core.ClientRecord) {
		h.rec = rec // want "is stored in a field"
	})
}

func globalStore(fw *core.Framework, id msg.CallID) {
	fw.WithClient(id, func(rec *core.ClientRecord) {
		global = rec // want "is stored in a global"
	})
}

func channelSend(fw *core.Framework, id msg.CallID, ch chan *core.ClientRecord) {
	fw.WithClient(id, func(rec *core.ClientRecord) {
		ch <- rec // want "is sent on a channel"
	})
}

// each stands in for any callback-taking helper: the rule keys on the
// closure's parameter type, not on the callee.
func each(f func(rec *core.ServerRecord) *core.ServerRecord) { _ = f }

func returnEscape() {
	each(func(rec *core.ServerRecord) *core.ServerRecord {
		return rec // want "escapes via return"
	})
}

func aliasEscape(fw *core.Framework, id msg.CallID) {
	fw.WithClient(id, func(rec *core.ClientRecord) {
		alias := rec
		global = alias // want "is stored in a global"
	})
}

func enclosingReturn(fw *core.Framework, id msg.CallID) *core.ClientRecord {
	var out *core.ClientRecord
	fw.WithClient(id, func(rec *core.ClientRecord) {
		out = rec
	})
	return out // want "escapes via return from the enclosing function"
}

// legalWake is the sanctioned wake-outside-the-locks pattern: records
// collected into an enclosing local, consumed there, and dropped.
func legalWake(fw *core.Framework, id msg.CallID) int {
	var wake []*core.ClientRecord
	fw.WithClient(id, func(rec *core.ClientRecord) {
		wake = append(wake, rec)
	})
	n := 0
	for _, r := range wake {
		if r != nil {
			n++
		}
	}
	return n
}
