// Fixture for the //lint:ignore escape hatch: well-formed directives
// suppress on the same or the next line; a directive without a reason is
// itself a diagnostic and suppresses nothing.
package ignore

import "time"

const tick = time.Millisecond

func sleeps() {
	//lint:ignore determinism fixture exercises the preceding-line form
	time.Sleep(tick)

	time.Sleep(tick) //lint:ignore determinism fixture exercises the same-line form

	//lint:ignore * fixture exercises the wildcard form
	time.Sleep(tick)

	// want:+1 "malformed //lint:ignore directive"
	//lint:ignore determinism
	time.Sleep(tick) // want "time.Sleep bypasses the seeded clock"

	//lint:ignore goroutine-discipline fixture: wrong rule does not suppress
	time.Sleep(tick) // want "time.Sleep bypasses the seeded clock"
}
