// Fixture for the msg-immutability rule: messages are frozen on send and
// shared by every recipient (DESIGN.md D13), so outside internal/msg and
// internal/netsim a NetMsg is read-only.
package msgimmut

import "mrpc/internal/msg"

func fieldWrite(m *msg.NetMsg) {
	m.Args = []byte{1} // want "write of msg.NetMsg field Args"
	m.Order = 7        // want "write of msg.NetMsg field Order"
	m.Order++          // want "write of msg.NetMsg field Order"
	m.Order += 2       // want "write of msg.NetMsg field Order"
}

func valueWrite(m msg.NetMsg) {
	m.Sender = 3 // want "write of msg.NetMsg field Sender"
}

func nestedWrite(ev struct{ Msg *msg.NetMsg }) {
	ev.Msg.Inc = 2 // want "write of msg.NetMsg field Inc"
}

func elementWrite(m *msg.NetMsg) {
	m.Args[0] = 9         // want "write of msg.NetMsg field Args"
	m.VC[1] = 4           // want "write of msg.NetMsg field VC"
	m.Server[0] = 2       // want "write of msg.NetMsg field Server"
	delete(m.VC, 1)       // want "delete through of msg.NetMsg field VC"
	_ = append(m.Args, 1) // want "append to of msg.NetMsg field Args"
}

func ignored(m *msg.NetMsg) {
	//lint:ignore msg-immutability fixture demonstrates the escape hatch
	m.Order = 1
}

// legal: composite-literal construction, reads, method calls, writes to a
// local copy of a *slice taken from the message, and other message-shaped
// types (UserMsg is caller-owned, not shared).
func legal(m *msg.NetMsg, um *msg.UserMsg) *msg.NetMsg {
	fresh := &msg.NetMsg{Type: msg.OpReply, ID: m.ID, Args: m.Args}
	order := m.Order
	order++
	um.Args = m.Args
	um.Status = msg.StatusOK
	args := m.Args
	args = append(args[:0:0], args...)
	_ = args
	_ = m.Key()
	return fresh.Mutable()
}
