// Fixture for the goroutine-discipline rule: bare go statements are banned
// outside internal/proc and internal/netsim.
package goroutine

func spawn(work func()) {
	go work() // want "bare go statement"
	done := make(chan struct{})
	go func() { // want "bare go statement"
		defer close(done)
		work()
	}()
	<-done
}
