// Fixture for the batch-freeze rule: msg.NewBatch is the only legal
// producer of OpBatch frames (DESIGN.md D16) — it freezes every
// sub-message and the frame itself before handoff to the transport.
package batchfreeze

import "mrpc/internal/msg"

const opAlias = msg.OpBatch

func handRolled(sender msg.ProcID, subs []*msg.NetMsg) *msg.NetMsg {
	return &msg.NetMsg{
		Type:  msg.OpBatch, // want "NetMsg literal with Type OpBatch"
		Batch: subs,        // want "NetMsg literal sets Batch"
	}
}

func aliasedType() msg.NetMsg {
	return msg.NetMsg{Type: opAlias} // want "NetMsg literal with Type OpBatch"
}

func fieldWrite(m *msg.NetMsg, subs []*msg.NetMsg) {
	m.Batch = subs   // want "write through .Batch" // want "write of msg.NetMsg field Batch"
	m.Batch[0] = nil // want "write through .Batch" // want "write of msg.NetMsg field Batch"
}

func ignored(m *msg.NetMsg) {
	//lint:ignore * fixture demonstrates the escape hatch
	m.Batch = nil
}

// legal: NewBatch, reads, non-batch literals, and other Type values.
func legal(sender msg.ProcID, subs []*msg.NetMsg) *msg.NetMsg {
	b := msg.NewBatch(sender, subs)
	n := len(b.Batch)
	_ = n
	for _, s := range b.Batch {
		_ = s
	}
	reply := &msg.NetMsg{Type: msg.OpReply, Sender: sender}
	_ = reply
	return b
}
