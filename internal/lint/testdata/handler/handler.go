// Fixture for the handler-discipline rule: registered event handlers must
// not Trigger synchronously or take the whole-table locks.
package handler

import (
	"time"

	"mrpc/internal/event"
)

const prio = 1
const tick = time.Millisecond

func lockAll()   {}
func unlockAll() {}

func retrigger(bus *event.Bus) {
	_ = bus.Register(event.CallFromUser, "fixture.retrigger", prio,
		func(o *event.Occurrence) {
			bus.Trigger(event.NewRPCCall, nil) // want "calls Bus.Trigger synchronously"
		})
}

func locker(bus *event.Bus) {
	_ = bus.Register(event.CallFromUser, "fixture.locker", prio,
		func(o *event.Occurrence) {
			lockAll()         // want "calls lockAll/unlockAll"
			defer unlockAll() // want "calls lockAll/unlockAll"
		})
}

// namedHandler binds the literal to a local first; the rule resolves it.
func namedHandler(bus *event.Bus) {
	h := func(o *event.Occurrence) {
		bus.Trigger(event.NewRPCCall, nil) // want "calls Bus.Trigger synchronously"
	}
	_ = bus.Register(event.CallFromUser, "fixture.named", prio, h)
}

func timeoutHandler(bus *event.Bus) {
	cancel := bus.RegisterTimeout("fixture.timeout", tick,
		func(o *event.Occurrence) {
			bus.Trigger(event.Recovery, nil) // want "calls Bus.Trigger synchronously"
		})
	cancel()
}

// registering another handler from a handler is deferred execution: the
// inner literal is analyzed on its own, not attributed to the outer one.
func nested(bus *event.Bus) {
	_ = bus.Register(event.CallFromUser, "fixture.outer", prio,
		func(o *event.Occurrence) {
			_ = bus.Register(event.Recovery, "fixture.inner", prio,
				func(o *event.Occurrence) {
					bus.Trigger(event.NewRPCCall, nil) // want "calls Bus.Trigger synchronously"
				})
		})
}
