// Fixture for the priority-constants rule: Bus.Register priorities must
// reference named constants.
package priority

import "mrpc/internal/event"

const prioFixture = 3

func register(bus *event.Bus, h event.Handler) {
	_ = bus.Register(event.CallFromUser, "fixture.magic", 7, h) // want "must reference a named constant"
	_ = bus.Register(event.CallFromUser, "fixture.sum", 2+5, h) // want "must reference a named constant"
	_ = bus.Register(event.CallFromUser, "fixture.named", prioFixture, h)
	_ = bus.Register(event.CallFromUser, "fixture.offset", prioFixture+1, h)
	_ = bus.Register(event.CallFromUser, "fixture.default", event.DefaultPriority, h)
}
