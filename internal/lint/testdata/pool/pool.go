// Fixture for the pool-safety rule: values drawn from a sync.Pool are
// tracked through the CFG; use-after-Put, double-Put, and Put-after-escape
// are violations, while borrows, deferred Puts, returns, and //lint:owns
// handoffs are the sanctioned idioms.
package pool

import (
	"sync"

	"mrpc/internal/core"
	"mrpc/internal/msg"
)

type box struct {
	n    int
	next *box
}

var (
	boxPool   = sync.Pool{New: func() any { return new(box) }}
	eventPool = sync.Pool{New: func() any { return new(core.NetEvent) }}
)

var sink *box

// Seeded bug (ISSUE 7): reading a *NetEvent after it went back to the pool.
func useAfterPut() *msg.NetMsg {
	ev := eventPool.Get().(*core.NetEvent)
	ev.Msg, ev.Thread = nil, nil
	eventPool.Put(ev)
	return ev.Msg // want "use-after-Put"
}

func doublePut() {
	b := boxPool.Get().(*box)
	b.n = 0
	boxPool.Put(b)
	boxPool.Put(b) // want "double-Put"
}

func escapePut() {
	b := boxPool.Get().(*box)
	sink = b
	boxPool.Put(b) // want "after a reference escaped"
}

// The lattice is a may-analysis: a Put on only one branch still poisons the
// merge point.
func maybePut(cond bool) {
	b := boxPool.Get().(*box)
	if cond {
		boxPool.Put(b)
	}
	b.n++ // want "use-after-Put"
}

// release recycles its argument; callers see this through its summary.
func release(b *box) {
	b.next = nil
	boxPool.Put(b)
}

func helperRelease() {
	b := boxPool.Get().(*box)
	release(b)
	_ = b.n // want "use-after-Put"
}

// getBox returns a freshly drawn value; callers track the result.
func getBox() *box { return boxPool.Get().(*box) }

func freshFromHelper() *box {
	b := getBox()
	boxPool.Put(b)
	return b // want "use-after-Put"
}

func closureEscape() func() int {
	b := boxPool.Get().(*box)
	get := func() int { return b.n }
	boxPool.Put(b) // want "after a reference escaped"
	return get
}

// consume takes ownership of b (and is responsible for the eventual pool
// return on every path, which this fixture deliberately does not model).
//
//lint:owns b
func consume(b *box) {
	if b.n > 0 {
		boxPool.Put(b)
	}
}

// ownsHandoff is clean: the //lint:owns contract moves responsibility to
// consume, so the caller-side tracking ends at the call.
func ownsHandoff() {
	b := boxPool.Get().(*box)
	b.n = 1
	consume(b)
}

// borrow only reads; handing a tracked value to it changes nothing.
func borrow(b *box) int { return b.n }

// cleanCycle is the hot-path idiom: draw, fill, lend, release.
func cleanCycle() int {
	b := boxPool.Get().(*box)
	b.n = 7
	n := borrow(b)
	boxPool.Put(b)
	return n
}

// deferredPut is clean: the deferred release replays at function exit,
// after every use.
func deferredPut() int {
	b := boxPool.Get().(*box)
	defer boxPool.Put(b)
	b.n++
	return b.n
}

// returnFresh is clean: returning a tracked value moves ownership to the
// caller.
func returnFresh() *core.NetEvent {
	ev := eventPool.Get().(*core.NetEvent)
	return ev
}
