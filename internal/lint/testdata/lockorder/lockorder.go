// Fixture for the lock-order rule: the named-mutex graph must stay acyclic,
// no mutex may be acquired inside a scoped table callback, and a Lock
// released on some exits but not all is a leak.
package lockorder

import (
	"sync"

	"mrpc/internal/core"
	"mrpc/internal/msg"
)

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// lockAB establishes the order a -> b.
func lockAB(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

// lockBA closes the cycle: b -> a. The module pass reports it once, at the
// acquisition that completes it.
func lockBA(p *pair) {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "lock-order cycle"
	defer p.a.Unlock()
}

// disp models a dispatch barrier living next to the table layer.
type disp struct {
	dispatchMu sync.RWMutex
}

// Seeded bug (ISSUE 7): taking a dispatch-shaped mutex inside a scoped
// table callback, where the shard mutex is already held.
func scopedAcquire(fw *core.Framework, id msg.CallID, d *disp) {
	fw.WithClient(id, func(rec *core.ClientRecord) {
		d.dispatchMu.RLock() // want "inside a Framework.WithClient callback"
		defer d.dispatchMu.RUnlock()
		_ = rec
	})
}

// lockDisp acquires the barrier; scoped callbacks must not reach it even
// one call away.
func lockDisp(d *disp) {
	d.dispatchMu.Lock()
	defer d.dispatchMu.Unlock()
}

func scopedAcquireViaHelper(fw *core.Framework, key msg.CallKey, d *disp) {
	fw.WithServer(key, func(rec *core.ServerRecord) {
		lockDisp(d) // want "via lockDisp inside a Framework.WithServer callback"
		_ = rec
	})
}

// missingUnlock holds a on the early return but releases it on the fall
// through: a mixed-exit leak.
func missingUnlock(p *pair, cond bool) bool {
	p.a.Lock() // want "not released on every path"
	if cond {
		return false
	}
	p.a.Unlock()
	return true
}

// allPathsHeld is the lockAll shape: every exit holds a. Deliberate
// exit-holding helpers are not mixed-exit and are not flagged.
func allPathsHeld(p *pair) {
	p.a.Lock()
}

func allPathsRelease(p *pair) {
	p.a.Unlock()
}

// loopRelease pairs a loop of Locks with one deferred closure of Unlocks —
// the id-ordered multi-node barrier idiom. Clean: the deferred literal runs
// inline at exit.
func loopRelease(ps []*pair) {
	for _, p := range ps {
		p.a.Lock()
	}
	defer func() {
		for i := len(ps) - 1; i >= 0; i-- {
			ps[i].a.Unlock()
		}
	}()
}

// scopedClean collects under the shard lock and acts after — the sanctioned
// pattern.
func scopedClean(fw *core.Framework, d *disp) {
	var woken []*core.ClientRecord
	fw.EachClient(func(rec *core.ClientRecord) {
		woken = append(woken, rec)
	})
	lockDisp(d)
	_ = woken
}
