// Fixture for the frozen-flow rule. This package stands in for
// internal/msg and internal/netsim (the packages exempt from the blanket
// msg-immutability rule): writes to a NetMsg are legal right up to the
// Freeze() call on some path, and violations after it.
package frozenflow

import "mrpc/internal/msg"

// Seeded bug (ISSUE 7): a field write after the message froze.
func postFreezeWrite(m *msg.NetMsg) {
	m.Freeze()
	m.Order = 1 // want "after m was frozen on this path"
}

// The analysis is path-sensitive at joins: frozen on one branch poisons the
// merge point.
func branchFreeze(m *msg.NetMsg, send bool) {
	if send {
		m.Freeze()
	}
	m.Order = 2 // want "after m was frozen on this path"
}

func mapDelete(m *msg.NetMsg, p msg.ProcID) {
	m.Freeze()
	delete(m.VC, p) // want "delete through"
}

func sliceAppend(m *msg.NetMsg) {
	m.Freeze()
	m.Args = append(m.Args, 0) // want "write" // want "append to"
}

// Aliases carry frozenness.
func aliasWrite(m *msg.NetMsg) {
	m.Freeze()
	n := m
	n.Order = 3 // want "after n was frozen on this path"
}

// NewBatch freezes both its result and the sub-messages handed to it.
func batchSubs(sender msg.ProcID, subs []*msg.NetMsg) *msg.NetMsg {
	b := msg.NewBatch(sender, subs)
	subs[0].Order = 4 // want "after subs was frozen on this path"
	return b
}

func batchResult(sender msg.ProcID, subs []*msg.NetMsg) *msg.NetMsg {
	b := msg.NewBatch(sender, subs)
	b.Order = 5 // want "after b was frozen on this path"
	return b
}

// The constructor idiom is clean: fill first, freeze last.
func build(order int64) *msg.NetMsg {
	m := &msg.NetMsg{Type: msg.OpOrder}
	m.Order = order
	m.VC = msg.VClock{}
	m.Freeze()
	return m
}

// Clone and Mutable launder a frozen message into a private writable copy.
func launder(m *msg.NetMsg) *msg.NetMsg {
	m.Freeze()
	c := m.Clone()
	c.Order = 6
	w := m.Mutable()
	w.Order = 7
	return w
}

// SetRelay is the dissemination tree's field write in method clothing
// (D17): stamping a frozen frame would mutate state already shared with
// other recipients, so the method panics at run time and the flow rule
// flags it statically.
func relayAfterFreeze(m *msg.NetMsg) {
	m.Freeze()
	m.SetRelay(2) // want "SetRelay on m after it was frozen on this path"
}

// Frozen on one branch poisons the stamp at the join, like any write.
func relayBranchFreeze(m *msg.NetMsg, send bool) {
	if send {
		m.Freeze()
	}
	m.SetRelay(3) // want "SetRelay on m after it was frozen on this path"
}

// The disseminator idiom is clean: the origin stamps the fanout first and
// the transport freezes afterwards.
func relayThenFreeze(m *msg.NetMsg) {
	m.SetRelay(3)
	m.Freeze()
}

// Freezing only after the last write, under a branch that returns early, is
// clean: no path reaches a write after its Freeze.
func freezeThenReturn(m *msg.NetMsg, ready bool) {
	m.Order = 8
	if ready {
		m.Freeze()
		return
	}
	m.Order = 9
}
