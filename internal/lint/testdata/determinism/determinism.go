// Fixture for the determinism rule: wall-clock and global-randomness calls
// are banned outside internal/clock.
package determinism

import (
	"math/rand"
	"time"
)

// Duration constants are values, not clock reads.
const interval = 5 * time.Millisecond

func clocky() time.Duration {
	t0 := time.Now()             // want "time.Now bypasses the seeded clock"
	time.Sleep(interval)         // want "time.Sleep bypasses the seeded clock"
	<-time.After(interval)       // want "time.After bypasses the seeded clock"
	t := time.NewTimer(interval) // want "time.NewTimer bypasses the seeded clock"
	t.Stop()
	return time.Since(t0) // want "time.Since bypasses the seeded clock"
}

func randy() int {
	r := rand.New(rand.NewSource(1)) // seeded generator: allowed
	n := r.Intn(10)                  // method on an instance: allowed
	return n + rand.Intn(10)         // want "rand.Intn draws from the global source"
}
