package lint

import (
	"go/ast"
	"go/types"
)

// checkMsgImmutability enforces the frozen-message invariant of the
// zero-copy transport (DESIGN.md deviation D13): a message handed to the
// network is shared by every recipient — including duplicate deliveries and
// the sender's own retained references — so fields of a msg.NetMsg must not
// be written outside internal/msg and internal/netsim. The rule rejects
//
//   - field assignment (m.Args = ..., m.Order += 1, m.Order++),
//   - element and map writes through a message field (m.Args[0] = ...,
//     m.VC[p] = ..., delete(m.VC, p)),
//   - append with a message field as its first argument (append may write
//     into the shared backing array in place).
//
// Construction via composite literal is unaffected; code that genuinely
// needs a private copy spells it msg.NetMsg.Mutable() (clone-on-write) or
// Clone() and builds a fresh message from it.
func checkMsgImmutability(_ *Analysis, p *Package) []Diagnostic {
	// Inside internal/msg and internal/netsim (and the frozen-flow fixture
	// tree that stands in for them) writes are legal until Freeze; the
	// flow-sensitive frozen-flow rule takes over there.
	if !inScope(p.Path) || modelsMsgInternal(p.Path) {
		return nil
	}
	var ds []Diagnostic
	flag := func(pos ast.Node, field, what string) {
		ds = append(ds, Diagnostic{
			Pos:  p.Fset.Position(pos.Pos()),
			Rule: "msg-immutability",
			Message: what + " of msg.NetMsg field " + field + ": messages are frozen and " +
				"shared on send (DESIGN.md D13); construct a new message, or take " +
				"Mutable()/Clone() for a private copy",
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, field := msgFieldTarget(p, lhs); sel != nil {
						flag(sel, field, "write")
					}
				}
			case *ast.IncDecStmt:
				if sel, field := msgFieldTarget(p, n.X); sel != nil {
					flag(sel, field, "write")
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || len(n.Args) == 0 {
					return true
				}
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				switch id.Name {
				case "delete":
					if sel, field := netMsgField(p, n.Args[0]); sel != nil {
						flag(sel, field, "delete through")
					}
				case "append":
					if sel, field := netMsgField(p, n.Args[0]); sel != nil {
						flag(sel, field, "append to")
					}
				}
			}
			return true
		})
	}
	return ds
}

// msgFieldTarget reports whether an assignment target writes a NetMsg
// field, directly (m.F = ...) or through an element (m.F[i] = ...). It
// returns the offending selector and field name, or nil.
func msgFieldTarget(p *Package, e ast.Expr) (*ast.SelectorExpr, string) {
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ix.X
	}
	return netMsgField(p, e)
}

// netMsgField returns (selector, field name) when e selects a field of a
// value of type msg.NetMsg or *msg.NetMsg, else (nil, "").
func netMsgField(p *Package, e ast.Expr) (*ast.SelectorExpr, string) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	// Only field selections count; method values on NetMsg are fine.
	if s, ok := p.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	t := p.Info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, ""
	}
	if named.Obj().Pkg().Path() != "mrpc/internal/msg" || named.Obj().Name() != "NetMsg" {
		return nil, ""
	}
	return sel, sel.Sel.Name
}
