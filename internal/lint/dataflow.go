package lint

// A tiny forward dataflow engine over the CFGs of cfg.go. Facts are
// analysis-defined; the engine only needs clone/join/transfer. Transfer
// functions may emit diagnostics — because blocks are re-visited until
// fixpoint, emitters must deduplicate (see diagSet).
//
// Termination: every client fact is a finite map over the function's
// objects/locks with monotone joins, so the fixpoint exists; a generous
// iteration cap guards against a non-monotone client bug turning into a
// hang of the whole lint run.

import (
	"go/ast"
	"go/token"
)

type flowFuncs[F any] struct {
	clone    func(F) F
	join     func(dst F, src F) bool // dst ∪= src; reports whether dst changed
	transfer func(atom ast.Node, f F)
}

// runForward propagates facts from entry to fixpoint and returns the final
// in-fact of every block (exit included). entry is the fact at function
// entry; it is not aliased by the engine.
func runForward[F any](c *cfg, entry F, fns flowFuncs[F]) map[*block]F {
	in := make(map[*block]F, len(c.blocks))
	seen := make(map[*block]bool, len(c.blocks))
	in[c.entry] = fns.clone(entry)
	seen[c.entry] = true

	work := []*block{c.entry}
	cap := len(c.blocks)*64 + 256
	for len(work) > 0 && cap > 0 {
		cap--
		blk := work[0]
		work = work[1:]

		out := fns.clone(in[blk])
		for _, a := range blk.atoms {
			fns.transfer(a, out)
		}
		for _, succ := range blk.succs {
			if !seen[succ] {
				seen[succ] = true
				in[succ] = fns.clone(out)
				work = append(work, succ)
				continue
			}
			if fns.join(in[succ], out) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// applyBlock runs the transfer function over one block's atoms starting from
// a clone of the given fact, returning the out-fact. Used to compute exit
// facts (in-fact of exit + its replayed defer atoms).
func applyBlock[F any](blk *block, f F, fns flowFuncs[F]) F {
	out := fns.clone(f)
	for _, a := range blk.atoms {
		fns.transfer(a, out)
	}
	return out
}

// diagSet deduplicates diagnostics emitted from transfer functions, which
// run multiple times per atom during fixpoint iteration.
type diagSet struct {
	seen map[diagKey]bool
	ds   []Diagnostic
}

type diagKey struct {
	pos token.Pos
	msg string
}

func (s *diagSet) add(p *Package, pos token.Pos, rule, msg string) {
	if s.seen == nil {
		s.seen = make(map[diagKey]bool)
	}
	k := diagKey{pos, rule + msg}
	if s.seen[k] {
		return
	}
	s.seen[k] = true
	s.ds = append(s.ds, Diagnostic{Pos: p.Fset.Position(pos), Rule: rule, Message: msg})
}
