package lint

// Function summaries: the one-level (transitively memoized) interprocedural
// layer of the substrate. A summary answers, for one declared function:
//
//   - which parameters it releases back to a sync.Pool (directly or via a
//     callee that does),
//   - which parameters it takes ownership of, declared by the //lint:owns
//     annotation (see DESIGN.md §6) or inherited by forwarding the value to
//     an owning callee,
//   - which parameters it stores beyond its own locals (fields of non-local
//     values, globals, channels, captures, goroutine handoff),
//   - whether it returns a freshly drawn pooled value,
//   - which named mutexes it (transitively) acquires, and whether it calls
//     Bus.Trigger or lockAll/unlockAll directly.
//
// Summaries are computed on demand and memoized; recursion is cut by
// returning the partial (zero) summary for a function currently being
// computed, which under-approximates on call cycles — the module's release
// helpers and lock helpers are leaf-ish, so nothing is lost in practice.

import (
	"go/ast"
	"go/types"
	"strings"
)

type summary struct {
	params        []types.Object // nil for unnamed parameters
	releasesParam []bool
	escapesParam  []bool
	ownsParam     []bool
	returnsFresh  bool
	locks         map[string]bool // lock-graph nodes transitively acquired
	directTrigger bool
	directLockAll bool
}

var emptySummary = &summary{locks: map[string]bool{}}

func (a *Analysis) summaryOf(fi *funcInfo) *summary {
	if s, ok := a.summaries[fi.key]; ok {
		return s
	}
	if a.computing[fi.key] {
		return emptySummary
	}
	a.computing[fi.key] = true
	s := a.computeSummary(fi)
	delete(a.computing, fi.key)
	a.summaries[fi.key] = s
	return s
}

// ownsNames parses a //lint:owns annotation out of a doc comment:
//
//	//lint:owns <param> [<param>...]
//
// naming the parameters whose pooled value the function takes ownership of.
// Callers stop tracking the value at the call; the function (and what it
// hands the value to) becomes responsible for the eventual pool return.
func ownsNames(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var names []string
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "lint:owns"); ok {
			names = append(names, strings.Fields(rest)...)
		}
	}
	return names
}

func (a *Analysis) computeSummary(fi *funcInfo) *summary {
	p, fd := fi.pkg, fi.decl
	s := &summary{locks: make(map[string]bool)}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			s.params = append(s.params, nil)
			continue
		}
		for _, name := range field.Names {
			s.params = append(s.params, p.Info.Defs[name])
		}
	}
	n := len(s.params)
	s.releasesParam = make([]bool, n)
	s.escapesParam = make([]bool, n)
	s.ownsParam = make([]bool, n)
	for _, name := range ownsNames(fd.Doc) {
		for i, obj := range s.params {
			if obj != nil && obj.Name() == name {
				s.ownsParam[i] = true
			}
		}
	}

	paramIdx := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return -1
		}
		for i, po := range s.params {
			if po == obj {
				return i
			}
		}
		return -1
	}
	escapeAllParamsIn := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if i := paramIdx(id); i >= 0 {
					s.escapesParam[i] = true
				}
			}
			return true
		})
	}

	fresh := make(map[types.Object]bool) // locals assigned from a pool Get

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// A capture outlives this call as far as the caller can tell.
			escapeAllParamsIn(node.Body)
			return false
		case *ast.GoStmt:
			// Handed to another goroutine.
			escapeAllParamsIn(node)
			return false
		case *ast.SendStmt:
			if i := paramIdx(node.Value); i >= 0 {
				s.escapesParam[i] = true
			}
		case *ast.CompositeLit:
			for _, el := range node.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if i := paramIdx(el); i >= 0 {
					s.escapesParam[i] = true
				}
			}
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i, rhs := range node.Rhs {
				lhs := ast.Unparen(node.Lhs[i])
				if a.poolGetSource(p, rhs) {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							fresh[obj] = true
						} else if obj := p.Info.Uses[id]; obj != nil {
							fresh[obj] = true
						}
					}
					continue
				}
				pi := paramIdx(rhs)
				if pi < 0 {
					continue
				}
				switch lhs := lhs.(type) {
				case *ast.SelectorExpr:
					if !localBase(p, fd, lhs.X) {
						s.escapesParam[pi] = true
					}
				case *ast.IndexExpr:
					if !localBase(p, fd, lhs.X) {
						s.escapesParam[pi] = true
					}
				case *ast.StarExpr:
					s.escapesParam[pi] = true
				case *ast.Ident:
					if obj := p.Info.Uses[lhs]; obj != nil && isGlobalVar(obj) {
						s.escapesParam[pi] = true
					}
				}
			}
		case *ast.CallExpr:
			if poolMethod(p, node) == "Put" && len(node.Args) == 1 {
				if i := paramIdx(node.Args[0]); i >= 0 {
					s.releasesParam[i] = true
				}
				return true
			}
			switch busMethod(p, node) {
			case "Trigger":
				s.directTrigger = true
			}
			if isLockAllCall(node) {
				s.directLockAll = true
			}
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
					// append(container, param): escapes unless the slice is local.
					for _, arg := range node.Args[1:] {
						if i := paramIdx(arg); i >= 0 && !localBase(p, fd, node.Args[0]) {
							s.escapesParam[i] = true
						}
					}
					return true
				}
			}
			if fi2 := a.calleeInfo(p, node); fi2 != nil {
				sub := a.summaryOf(fi2)
				for j, arg := range node.Args {
					i := paramIdx(arg)
					if i < 0 {
						continue
					}
					k := j
					if k >= len(sub.params) {
						k = len(sub.params) - 1 // variadic tail
					}
					if k < 0 {
						continue
					}
					if sub.releasesParam[k] {
						s.releasesParam[i] = true
					}
					if sub.ownsParam[k] {
						s.ownsParam[i] = true
					}
					if sub.escapesParam[k] {
						s.escapesParam[i] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				if a.poolGetSource(p, r) {
					s.returnsFresh = true
				} else if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && fresh[obj] {
						s.returnsFresh = true
					}
				}
			}
		}
		return true
	})

	a.collectLocks(p, fd.Body, s.locks)
	return s
}

// localBase peels selectors, indexes, derefs and calls off an expression and
// reports whether the base is a variable declared inside the function body —
// a store through such a base stays local as far as the caller can observe.
// (A local pointer into a shared structure defeats this; the module's
// ownership-transferring entry points carry //lint:owns instead of relying
// on escape inference.)
func localBase(p *Package, fd *ast.FuncDecl, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
		default:
			return false
		}
	}
}

// isLockAllCall matches direct calls to the whole-table lockAll/unlockAll
// helpers by name (they are unexported core functions; name matching keeps
// the check cheap and is exact within the module).
func isLockAllCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return isTableLockAll(fun.Name)
	case *ast.SelectorExpr:
		return isTableLockAll(fun.Sel.Name)
	}
	return false
}

// collectLocks unions into out the lock-graph nodes acquired anywhere in
// body: direct Lock/RLock sites plus the transitive lock sets of resolvable
// callees. Nested function literals and go statements are excluded (they
// run in another context); a Bus.Trigger call pulls in the locks of every
// registered handler literal, the dispatch layer's dynamic edge.
func (a *Analysis) collectLocks(p *Package, body ast.Node, out map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if op, ok := lockSite(p, n); ok {
				if op.acquire && op.node != "" {
					out[op.node] = true
				}
				return true
			}
			if busMethod(p, n) == "Trigger" {
				for node := range a.triggerLocks() {
					out[node] = true
				}
			}
			if fi := a.calleeInfo(p, n); fi != nil {
				for node := range a.summaryOf(fi).locks {
					out[node] = true
				}
			}
		}
		return true
	})
}

// triggerLocks returns (and caches) the union of the lock sets of every
// event-handler literal registered anywhere in the analyzed packages: the
// static stand-in for "whatever dispatch may run".
func (a *Analysis) triggerLocks() map[string]bool {
	if a.triggerLockRun {
		return a.triggerLockSet
	}
	a.triggerLockRun = true
	a.triggerLockSet = make(map[string]bool)
	for _, p := range a.pkgs {
		for _, f := range p.Files {
			lits := localFuncLits(p, f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lit := handlerLitOf(p, call, lits); lit != nil {
					a.collectLocks(p, lit.Body, a.triggerLockSet)
				}
				return true
			})
		}
	}
	return a.triggerLockSet
}

// handlerLitOf resolves the handler literal a registration call installs
// (Bus.Register/RegisterTimeout and Binding.On/After), or nil.
func handlerLitOf(p *Package, call *ast.CallExpr, lits map[types.Object]*ast.FuncLit) *ast.FuncLit {
	var arg ast.Expr
	switch busMethod(p, call) {
	case "Register":
		if len(call.Args) == 4 {
			arg = call.Args[3]
		}
	case "RegisterTimeout":
		if len(call.Args) == 3 {
			arg = call.Args[2]
		}
	}
	switch bindingMethod(p, call) {
	case "On":
		if len(call.Args) == 4 {
			arg = call.Args[3]
		}
	case "After":
		if len(call.Args) == 3 {
			arg = call.Args[2]
		}
	}
	if arg == nil {
		return nil
	}
	return resolveFuncLit(p, arg, lits)
}
