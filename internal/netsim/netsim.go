// Package netsim provides the unreliable communication substrate beneath
// the gRPC composite protocol — the "Net" protocol of the paper's protocol
// stack, reimplemented as an in-process simulated network.
//
// The paper assumes an asynchronous system whose communication layer can
// experience omission and performance failures. netsim therefore injects,
// under a seeded random source: message loss, duplication, variable delay
// (which also yields reordering), and link partitions. Endpoints can be
// taken down and brought back up to model site crashes.
//
// Substitution note (DESIGN.md §2): the micro-protocols observe the network
// only through push operations and message-arrival events, so an
// adversarial simulated transport exercises the same — in fact strictly
// more — failure-handling code paths as the authors' LAN.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

// Params configures the fault and delay model of a Network.
type Params struct {
	// Seed initializes the fault-injection random source.
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message delivery delay.
	MinDelay, MaxDelay time.Duration
	// LossProb is the probability a given delivery is dropped.
	LossProb float64
	// DupProb is the probability a given delivery is duplicated once.
	DupProb float64
	// EncodeOnWire, when set, round-trips every message through the binary
	// codec, exercising marshalling exactly as a byte transport would.
	EncodeOnWire bool
}

// Stats counts network-level events since the network was created.
type Stats struct {
	Sent       int64 // messages offered to the network (per destination)
	Delivered  int64
	Dropped    int64 // lost to injected omission failures
	Duplicated int64
	Partition  int64 // drops due to partitions
	DownDrops  int64 // drops due to a crashed endpoint
}

// Handler receives a delivered message. Each delivery runs on its own
// goroutine, matching the composite protocol's assumption that message
// arrivals are independent event triggers.
type Handler func(*msg.NetMsg)

type link struct{ a, b msg.ProcID }

func linkKey(a, b msg.ProcID) link {
	if a > b {
		a, b = b, a
	}
	return link{a, b}
}

// dirLink is a directed link for one-way partitions.
type dirLink struct{ from, to msg.ProcID }

type linkDelay struct{ min, max time.Duration }

// Network is a simulated network connecting endpoints by process id.
type Network struct {
	clk    clock.Clock
	params Params

	mu          sync.Mutex
	rng         *rand.Rand
	eps         map[msg.ProcID]*Endpoint
	partitioned map[link]bool
	oneWay      map[dirLink]bool
	delays      map[link]linkDelay
	stopped     bool

	wg sync.WaitGroup

	sent, delivered, dropped, duplicated, partition, downDrops atomic.Int64
}

// New creates a network with the given fault model, using clk for delays.
func New(clk clock.Clock, p Params) *Network {
	if p.MaxDelay < p.MinDelay {
		p.MaxDelay = p.MinDelay
	}
	return &Network{
		clk:         clk,
		params:      p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		eps:         make(map[msg.ProcID]*Endpoint),
		partitioned: make(map[link]bool),
		oneWay:      make(map[dirLink]bool),
		delays:      make(map[link]linkDelay),
	}
}

// Endpoint is one process's attachment point; it provides the x-kernel-style
// push operations used by the micro-protocols.
type Endpoint struct {
	net *Network
	id  msg.ProcID

	mu      sync.Mutex
	handler Handler
	up      bool
}

// Attach connects process id to the network with h as its delivery handler.
// Attaching an id twice is an error.
func (n *Network) Attach(id msg.ProcID, h Handler) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.eps[id]; ok {
		return nil, fmt.Errorf("netsim: process %d already attached", id)
	}
	e := &Endpoint{net: n, id: id, handler: h, up: true}
	n.eps[id] = e
	return e, nil
}

// ID returns the endpoint's process id.
func (e *Endpoint) ID() msg.ProcID { return e.id }

// SetHandler replaces the delivery handler (used on process recovery, when
// a fresh composite protocol instance takes over the endpoint).
func (e *Endpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// SetUp marks the endpoint up or down. A down endpoint neither sends nor
// receives: messages in flight toward it are dropped at delivery time,
// modelling a crashed site.
func (e *Endpoint) SetUp(up bool) {
	e.mu.Lock()
	e.up = up
	e.mu.Unlock()
}

// Up reports whether the endpoint is up.
func (e *Endpoint) Up() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.up
}

// Push sends m to a single destination (Net.push of the paper). The message
// is cloned, so the caller may reuse it.
func (e *Endpoint) Push(to msg.ProcID, m *msg.NetMsg) {
	e.net.send(e, to, m)
}

// Multicast sends m to every member of the group, including the sender's
// own process if it is a member (the paper's Net.push(server_group, msg)).
func (e *Endpoint) Multicast(group msg.Group, m *msg.NetMsg) {
	for _, to := range group {
		e.net.send(e, to, m)
	}
}

// Partition blocks (or with blocked=false, unblocks) direct communication
// between a and b in both directions.
func (n *Network) Partition(a, b msg.ProcID, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if blocked {
		n.partitioned[linkKey(a, b)] = true
	} else {
		delete(n.partitioned, linkKey(a, b))
	}
}

// PartitionOneWay blocks (or unblocks) messages from "from" to "to" only;
// traffic in the opposite direction is unaffected. One-way partitions
// model asymmetric failures (a dead uplink, a misconfigured route) that
// make failure detection genuinely hard.
func (n *Network) PartitionOneWay(from, to msg.ProcID, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if blocked {
		n.oneWay[dirLink{from: from, to: to}] = true
	} else {
		delete(n.oneWay, dirLink{from: from, to: to})
	}
}

// SetLinkDelay overrides the delay bounds on the (a, b) link in both
// directions; used by experiments with heterogeneous server latencies.
func (n *Network) SetLinkDelay(a, b msg.ProcID, min, max time.Duration) {
	if max < min {
		max = min
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delays[linkKey(a, b)] = linkDelay{min: min, max: max}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Partition:  n.partition.Load(),
		DownDrops:  n.downDrops.Load(),
	}
}

// Stop shuts the network down and waits for all in-flight deliveries to
// finish. Further sends are silently discarded.
func (n *Network) Stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Quiesce waits for all deliveries currently in flight to complete without
// stopping the network. Tests use it to reach a stable state.
func (n *Network) Quiesce() {
	n.wg.Wait()
}

func (n *Network) send(from *Endpoint, to msg.ProcID, m *msg.NetMsg) {
	from.mu.Lock()
	senderUp := from.up
	from.mu.Unlock()
	if !senderUp {
		return // a crashed site sends nothing
	}

	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.sent.Add(1)
	if n.partitioned[linkKey(from.id, to)] || n.oneWay[dirLink{from: from.id, to: to}] {
		n.partition.Add(1)
		n.mu.Unlock()
		return
	}
	dest, ok := n.eps[to]
	if !ok {
		n.downDrops.Add(1)
		n.mu.Unlock()
		return
	}

	copies := 1
	if n.params.LossProb > 0 && n.rng.Float64() < n.params.LossProb {
		copies = 0
		n.dropped.Add(1)
	} else if n.params.DupProb > 0 && n.rng.Float64() < n.params.DupProb {
		copies = 2
		n.duplicated.Add(1)
	}
	d := n.delays[linkKey(from.id, to)]
	if d.max == 0 && d.min == 0 {
		d = linkDelay{min: n.params.MinDelay, max: n.params.MaxDelay}
	}
	var first, second time.Duration
	roll := func() time.Duration {
		delay := d.min
		if span := d.max - d.min; span > 0 {
			delay += time.Duration(n.rng.Int63n(int64(span) + 1))
		}
		return delay
	}
	if copies >= 1 {
		first = roll()
	}
	if copies == 2 {
		second = roll()
	}
	n.mu.Unlock()

	if copies >= 1 {
		n.scheduleDelivery(dest, m.Clone(), first)
	}
	if copies == 2 {
		n.scheduleDelivery(dest, m.Clone(), second)
	}
}

func (n *Network) scheduleDelivery(dest *Endpoint, m *msg.NetMsg, delay time.Duration) {
	n.wg.Add(1)
	if delay <= 0 {
		// A plain `go` over a method call avoids the per-delivery closure
		// allocation the capturing variant would need — this is the hot path
		// of every zero-delay configuration.
		go n.deliver(dest, m)
		return
	}
	n.clk.AfterFunc(delay, func() {
		// Handlers may block (serial execution, semaphores); never run them
		// on the clock's timer goroutine.
		go n.deliver(dest, m)
	})
}

// deliver hands m to dest's handler on the calling goroutine; each delivery
// runs on a goroutine of its own (see scheduleDelivery).
func (n *Network) deliver(dest *Endpoint, m *msg.NetMsg) {
	defer n.wg.Done()
	if n.params.EncodeOnWire {
		decoded, err := msg.Decode(m.Encode())
		if err != nil {
			// A codec failure is a bug, not a simulated fault; surface
			// it loudly rather than silently dropping.
			panic(fmt.Sprintf("netsim: wire codec round-trip: %v", err))
		}
		m = decoded
	}
	dest.mu.Lock()
	h, up := dest.handler, dest.up
	dest.mu.Unlock()
	if !up || h == nil {
		n.downDrops.Add(1)
		return
	}
	n.delivered.Add(1)
	h(m)
}
