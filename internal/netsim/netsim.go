// Package netsim provides the unreliable communication substrate beneath
// the gRPC composite protocol — the "Net" protocol of the paper's protocol
// stack, reimplemented as an in-process simulated network.
//
// The paper assumes an asynchronous system whose communication layer can
// experience omission and performance failures. netsim therefore injects,
// under seeded random sources: message loss, duplication, variable delay
// (which also yields reordering), and link partitions. Endpoints can be
// taken down and brought back up to model site crashes.
//
// The send/deliver path is built for group traffic (deviation D13 in
// DESIGN.md): a multicast is admitted under a single critical section of
// the network lock, the message is frozen and shared by every destination
// instead of deep-cloned per member, fault rolls come from deterministic
// per-directed-link generators derived from Params.Seed, and with
// EncodeOnWire set the message is encoded once per send with each delivery
// decoding from the shared immutable wire bytes. Deliveries run on pooled
// per-endpoint workers; an arrival never waits behind another arrival's
// blocked handler.
//
// Substitution note (DESIGN.md §2): the micro-protocols observe the network
// only through push operations and message-arrival events, so an
// adversarial simulated transport exercises the same — in fact strictly
// more — failure-handling code paths as the authors' LAN.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/transport"
)

// netsim is one implementation of the transport seam; internal/nettcp is
// the other. Code above the seam (the facade, core, experiments) holds
// only the interfaces — simulator-only fault controls (Partition,
// SetLinkDelay, Params) are reached through mrpc's System.Sim().
var (
	_ transport.Transport = (*Network)(nil)
	_ transport.Endpoint  = (*Endpoint)(nil)
)

// Params configures the fault and delay model of a Network.
type Params struct {
	// Seed initializes the fault-injection random sources. Each directed
	// link derives its own generator from Seed, so the loss/dup/delay
	// sequence one link observes depends only on that link's traffic.
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message delivery delay.
	MinDelay, MaxDelay time.Duration
	// LossProb is the probability a given delivery is dropped.
	LossProb float64
	// DupProb is the probability a given delivery is duplicated once.
	DupProb float64
	// Reorder configures network-wide bounded reordering storms; a
	// per-link LinkProfile.Reorder overrides it for that direction.
	Reorder ReorderParams
	// EncodeOnWire, when set, round-trips every message through the binary
	// codec, exercising marshalling exactly as a byte transport would. The
	// encode happens once per send; every delivery decodes from the shared
	// wire bytes.
	EncodeOnWire bool
}

// Stats counts network-level events since the network was created. It is
// the shared transport-seam stats type; the simulator never bumps
// Reconnects (there is no connection to lose).
type Stats = transport.Stats

// EndpointStats counts one endpoint's traffic (see transport.EndpointStats
// for the egress/ingress accounting rules the dissemination work relies
// on).
type EndpointStats = transport.EndpointStats

// Handler receives a delivered message. Each arrival is an independent
// trigger: it runs on a pooled per-endpoint worker or a fresh goroutine,
// never behind another arrival's blocked handler. The message is shared
// with other recipients of the same send and must be treated as read-only
// (msg.NetMsg.Mutable gives a private copy).
type Handler = transport.Handler

type link struct{ a, b msg.ProcID }

func linkKey(a, b msg.ProcID) link {
	if a > b {
		a, b = b, a
	}
	return link{a, b}
}

// dirLink is a directed link: fault state and one-way partitions are
// per-direction.
type dirLink struct{ from, to msg.ProcID }

type linkDelay struct{ min, max time.Duration }

// linkState is the fault-injection state of one directed link. Each link
// rolls from its own seeded generator, so the pseudo-random sequence it
// observes depends only on its own traffic order — and the rolls happen
// under the link's lock, not the network lock.
type linkState struct {
	mu  sync.Mutex
	rng *rand.Rand
	// storm is the number of remaining messages in the current reordering
	// storm window (0 when no storm is active); see ReorderParams.
	storm int
}

// linkSeed mixes the network seed with the directed link identity
// (SplitMix64 finalizer) so links get independent, reproducible streams.
func linkSeed(seed int64, from, to msg.ProcID) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(uint32(from))<<32|uint64(uint32(to)))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Network is a simulated network connecting endpoints by process id.
type Network struct {
	clk    clock.Clock
	params Params

	mu          sync.Mutex
	eps         map[msg.ProcID]*Endpoint
	partitioned map[link]bool
	oneWay      map[dirLink]bool
	delays      map[link]linkDelay
	profiles    map[dirLink]LinkProfile // adversarial per-direction profiles (D19)
	gray        map[msg.ProcID]time.Duration
	links       map[dirLink]*linkState // lazily created, only for links that roll
	stopped     bool

	// In-flight delivery accounting. A WaitGroup cannot express the
	// Quiesce contract: retransmission timers call Add concurrently with
	// Wait at a zero counter (disallowed), and counting only at schedule
	// time would let Quiesce return while an admitted message sits
	// uncounted between releasing mu and scheduling. Instead each
	// admitted destination is counted under mu, so a message is visible
	// to a concurrent waiter before admission completes.
	flightMu sync.Mutex
	flightC  sync.Cond // signalled when inflight drops to zero
	inflight int

	sent, delivered, dropped, duplicated, partition, downDrops, batches atomic.Int64
	reordered, spikes, grayDelays, flapCycles                           atomic.Int64
}

// addFlight records k admitted deliveries. Send paths call it while
// holding n.mu, which orders the count against Quiesce.
func (n *Network) addFlight(k int) {
	n.flightMu.Lock()
	n.inflight += k
	n.flightMu.Unlock()
}

// doneFlight retires one delivery (delivered, dropped by a fault roll, or
// discarded at a retired endpoint).
func (n *Network) doneFlight() {
	n.flightMu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.flightC.Broadcast()
	}
	n.flightMu.Unlock()
}

// waitFlight blocks until no admitted delivery remains in flight.
func (n *Network) waitFlight() {
	n.flightMu.Lock()
	for n.inflight > 0 {
		n.flightC.Wait()
	}
	n.flightMu.Unlock()
}

// New creates a network with the given fault model, using clk for delays.
func New(clk clock.Clock, p Params) *Network {
	if p.MaxDelay < p.MinDelay {
		p.MaxDelay = p.MinDelay
	}
	n := &Network{
		clk:         clk,
		params:      p,
		eps:         make(map[msg.ProcID]*Endpoint),
		partitioned: make(map[link]bool),
		oneWay:      make(map[dirLink]bool),
		delays:      make(map[link]linkDelay),
		profiles:    make(map[dirLink]LinkProfile),
		gray:        make(map[msg.ProcID]time.Duration),
		links:       make(map[dirLink]*linkState),
	}
	n.flightC.L = &n.flightMu
	return n
}

// delivery is one scheduled arrival: the shared frozen message, or — with
// EncodeOnWire — the shared wire bytes to decode at delivery time.
type delivery struct {
	m    *msg.NetMsg
	wire []byte
}

// maxIdleWorkers bounds how many idle delivery workers an endpoint parks.
// Two cover the common call/ack (or call/retransmission) bursts without
// keeping a goroutine per historical peak alive.
const maxIdleWorkers = 2

// Endpoint is one process's attachment point; it provides the x-kernel-style
// push operations used by the micro-protocols.
type Endpoint struct {
	net *Network
	id  msg.ProcID

	mu      sync.Mutex
	handler Handler
	up      bool

	// Delivery worker pool. The mailbox is claim-based: dispatch enqueues
	// only after reserving a parked worker (idle is decremented first), so
	// queue length never exceeds the workers committed to draining it and
	// a blocked handler can never delay an unrelated arrival — a message
	// that finds no idle worker gets a fresh goroutine.
	wmu    sync.Mutex
	idle   int
	closed bool
	mail   chan delivery

	egress, ingress atomic.Int64
}

// Attach connects process id to the network with h as its delivery handler.
// Attaching an id twice is an error.
func (n *Network) Attach(id msg.ProcID, h Handler) (transport.Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.eps[id]; ok {
		return nil, fmt.Errorf("netsim: process %d already attached", id)
	}
	e := &Endpoint{
		net:     n,
		id:      id,
		handler: h,
		up:      true,
		mail:    make(chan delivery, maxIdleWorkers),
	}
	n.eps[id] = e
	return e, nil
}

// ID returns the endpoint's process id.
func (e *Endpoint) ID() msg.ProcID { return e.id }

// SetHandler replaces the delivery handler (used on process recovery, when
// a fresh composite protocol instance takes over the endpoint).
func (e *Endpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// SetUp marks the endpoint up or down. A down endpoint neither sends nor
// receives: messages in flight toward it are dropped at delivery time,
// modelling a crashed site.
func (e *Endpoint) SetUp(up bool) {
	e.mu.Lock()
	e.up = up
	e.mu.Unlock()
}

// Stats returns a snapshot of the endpoint's traffic counters.
func (e *Endpoint) Stats() EndpointStats {
	return EndpointStats{Egress: e.egress.Load(), Ingress: e.ingress.Load()}
}

// Up reports whether the endpoint is up.
func (e *Endpoint) Up() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.up
}

// Push sends m to a single destination (Net.push of the paper). The message
// is frozen, not cloned: the caller and every recipient share one read-only
// body, and the caller must not mutate m afterwards (take msg.NetMsg.Mutable
// for a writable copy; mrpclint enforces the discipline in-module).
func (e *Endpoint) Push(to msg.ProcID, m *msg.NetMsg) {
	e.net.send(e, to, m)
}

// Multicast sends m to every member of the group, including the sender's
// own process if it is a member (the paper's Net.push(server_group, msg)).
// The whole group is admitted under one critical section of the network
// lock, and every member shares the same frozen message (or, with
// EncodeOnWire, the same once-encoded wire bytes).
func (e *Endpoint) Multicast(group msg.Group, m *msg.NetMsg) {
	e.net.multicast(e, group, m)
}

// Partition blocks (or with blocked=false, unblocks) direct communication
// between a and b in both directions.
func (n *Network) Partition(a, b msg.ProcID, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if blocked {
		n.partitioned[linkKey(a, b)] = true
	} else {
		delete(n.partitioned, linkKey(a, b))
	}
}

// PartitionOneWay blocks (or unblocks) messages from "from" to "to" only;
// traffic in the opposite direction is unaffected. One-way partitions
// model asymmetric failures (a dead uplink, a misconfigured route) that
// make failure detection genuinely hard.
func (n *Network) PartitionOneWay(from, to msg.ProcID, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if blocked {
		n.oneWay[dirLink{from: from, to: to}] = true
	} else {
		delete(n.oneWay, dirLink{from: from, to: to})
	}
}

// SetLinkDelay overrides the delay bounds on the (a, b) link in both
// directions; used by experiments with heterogeneous server latencies.
func (n *Network) SetLinkDelay(a, b msg.ProcID, min, max time.Duration) {
	if max < min {
		max = min
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delays[linkKey(a, b)] = linkDelay{min: min, max: max}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Partition:  n.partition.Load(),
		DownDrops:  n.downDrops.Load(),
		Batches:    n.batches.Load(),
		Reordered:  n.reordered.Load(),
		Spikes:     n.spikes.Load(),
		GrayDelays: n.grayDelays.Load(),
		FlapCycles: n.flapCycles.Load(),
	}
}

// Stop shuts the network down, waits for all in-flight deliveries to
// finish, and retires the parked delivery workers. Further sends are
// silently discarded.
func (n *Network) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		n.waitFlight()
		return
	}
	n.stopped = true
	eps := make([]*Endpoint, 0, len(n.eps))
	for _, e := range n.eps {
		eps = append(eps, e)
	}
	n.mu.Unlock()

	n.waitFlight() // all deliveries done: no dispatch can be in flight
	for _, e := range eps {
		e.wmu.Lock()
		if !e.closed {
			e.closed = true
			close(e.mail)
		}
		e.wmu.Unlock()
	}
}

// Quiesce waits for all deliveries currently in flight to complete without
// stopping the network. Tests use it to reach a stable state.
func (n *Network) Quiesce() {
	n.waitFlight()
}

// admitted is one destination that passed admission: its endpoint, the
// delay bounds in force, the adversarial-profile knobs resolved for the
// direction, and the link's fault state (nil when the link has nothing to
// roll — no loss, no duplication, no jitter, no spikes, no storms).
type admitted struct {
	dest    *Endpoint
	ls      *linkState
	d       linkDelay
	prof    LinkProfile   // zero value when the direction has no profile
	reorder ReorderParams // profile override or Params.Reorder
	gray    time.Duration // deterministic gray-slow delay (sender + receiver)
}

// admitOne performs the under-lock part of sending to one destination:
// partition check, endpoint lookup, delay-bound lookup, lazy link-state
// creation. It returns ok=false when the message will not travel (the
// corresponding counter has then been bumped). Callers hold n.mu.
func (n *Network) admitOne(from, to msg.ProcID) (admitted, bool) {
	n.sent.Add(1)
	if n.partitioned[linkKey(from, to)] || n.oneWay[dirLink{from: from, to: to}] {
		n.partition.Add(1)
		return admitted{}, false
	}
	dest, ok := n.eps[to]
	if !ok {
		n.downDrops.Add(1)
		return admitted{}, false
	}
	d := n.delays[linkKey(from, to)]
	prof, hasProf := n.profiles[dirLink{from: from, to: to}]
	if hasProf {
		d = linkDelay{min: prof.MinDelay, max: prof.MaxDelay}
	} else if d.max == 0 && d.min == 0 {
		d = linkDelay{min: n.params.MinDelay, max: n.params.MaxDelay}
	}
	reorder := n.params.Reorder
	if prof.Reorder.active() {
		reorder = prof.Reorder
	}
	a := admitted{dest: dest, d: d, prof: prof, reorder: reorder,
		gray: n.gray[from] + n.gray[to]}
	if n.params.LossProb > 0 || n.params.DupProb > 0 || d.max > d.min ||
		prof.SpikeProb > 0 || reorder.active() {
		k := dirLink{from: from, to: to}
		ls, ok := n.links[k]
		if !ok {
			ls = &linkState{rng: rand.New(rand.NewSource(linkSeed(n.params.Seed, from, to)))}
			n.links[k] = ls
		}
		a.ls = ls
	}
	return a, true
}

// send is the single-destination path (Push).
func (n *Network) send(from *Endpoint, to msg.ProcID, m *msg.NetMsg) {
	from.mu.Lock()
	senderUp := from.up
	from.mu.Unlock()
	if !senderUp {
		return // a crashed site sends nothing
	}
	m.Freeze()
	if m.Type == msg.OpBatch {
		n.batches.Add(1)
	}

	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	if to != from.id {
		from.egress.Add(1)
	}
	a, ok := n.admitOne(from.id, to)
	if ok {
		n.addFlight(1)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	d := delivery{m: m}
	if n.params.EncodeOnWire {
		if w := m.Wire(); w != nil {
			d = delivery{wire: w} // relayed frame: forward the shared bytes (D17)
		} else {
			d = delivery{wire: m.Encode()}
		}
	}
	n.transmit(a, d)
}

// multicast admits the whole group under one critical section of n.mu,
// encodes at most once, then rolls per-link faults and schedules
// deliveries outside the lock.
func (n *Network) multicast(from *Endpoint, group msg.Group, m *msg.NetMsg) {
	from.mu.Lock()
	senderUp := from.up
	from.mu.Unlock()
	if !senderUp {
		return
	}
	m.Freeze()

	// The plan stays on the stack for realistic group sizes.
	var planBuf [8]admitted
	plan := planBuf[:0]
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	for _, to := range group {
		if to != from.id {
			from.egress.Add(1)
		}
		if a, ok := n.admitOne(from.id, to); ok {
			plan = append(plan, a)
		}
	}
	n.addFlight(len(plan))
	n.mu.Unlock()
	if len(plan) == 0 {
		return
	}

	d := delivery{m: m}
	if n.params.EncodeOnWire {
		if w := m.Wire(); w != nil {
			d = delivery{wire: w} // relayed frame: forward the shared bytes (D17)
		} else {
			d = delivery{wire: m.Encode()} // encode once for the whole group
		}
	}
	for _, a := range plan {
		n.transmit(a, d)
	}
}

// transmit rolls the link's faults under the link lock and schedules the
// surviving deliveries. The roll order is fixed — loss, duplication,
// jitter, spike, storm — and lost messages consume only the loss roll, so
// a link's pseudo-random sequence depends only on its own traffic order
// (the determinism contract the conformance harness shrinks against).
func (n *Network) transmit(a admitted, d delivery) {
	copies := 1
	first, second := a.d.min, a.d.min
	if a.ls != nil {
		a.ls.mu.Lock()
		rng := a.ls.rng
		if n.params.LossProb > 0 && rng.Float64() < n.params.LossProb {
			copies = 0
			n.dropped.Add(1)
		} else if n.params.DupProb > 0 && rng.Float64() < n.params.DupProb {
			copies = 2
			n.duplicated.Add(1)
		}
		if span := a.d.max - a.d.min; span > 0 {
			if copies >= 1 {
				first += time.Duration(rng.Int63n(int64(span) + 1))
			}
			if copies == 2 {
				second += time.Duration(rng.Int63n(int64(span) + 1))
			}
		}
		if copies >= 1 && a.prof.SpikeProb > 0 {
			if rng.Float64() < a.prof.SpikeProb {
				first += a.prof.SpikeDelay
				n.spikes.Add(1)
			}
			if copies == 2 && rng.Float64() < a.prof.SpikeProb {
				second += a.prof.SpikeDelay
				n.spikes.Add(1)
			}
		}
		if copies >= 1 && a.reorder.active() {
			if a.ls.storm == 0 && rng.Float64() < a.reorder.Prob {
				a.ls.storm = a.reorder.Window
			}
			if a.ls.storm > 0 {
				a.ls.storm-- // one slot per message, not per copy
				n.reordered.Add(1)
				first += time.Duration(rng.Int63n(int64(a.reorder.Spread) + 1))
				if copies == 2 {
					second += time.Duration(rng.Int63n(int64(a.reorder.Spread) + 1))
				}
			}
		}
		a.ls.mu.Unlock()
	}
	// Settle the admission-time count against the roll: a lost copy is
	// retired here, a duplicate gains a count while the original's is
	// still held (so the total never passes through zero mid-transmit).
	if copies == 0 {
		n.doneFlight()
		return
	}
	// Deterministic additions draw no randomness: serialization time under
	// a bandwidth cap, and the gray-slow delay of either end.
	if a.prof.BytesPerSec > 0 {
		ser := time.Duration(wireSize(d) * int64(time.Second) / a.prof.BytesPerSec)
		first += ser
		second += ser
	}
	if a.gray > 0 {
		first += a.gray
		second += a.gray
		n.grayDelays.Add(1)
	}
	if copies == 2 {
		n.addFlight(1)
	}
	n.scheduleDelivery(a.dest, d, first)
	if copies == 2 {
		n.scheduleDelivery(a.dest, d, second)
	}
}

func (n *Network) scheduleDelivery(dest *Endpoint, d delivery, delay time.Duration) {
	if delay <= 0 {
		dest.dispatch(d)
		return
	}
	n.clk.AfterFunc(delay, func() {
		// Handlers may block (serial execution, semaphores); never run them
		// on the clock's timer goroutine.
		dest.dispatch(d)
	})
}

// dispatch hands d to a parked worker when one is free to claim it, and
// spawns a fresh worker goroutine otherwise. The fresh worker parks after
// its delivery if the idle quota allows, so a busy endpoint converges to a
// small pool that spawns nothing in steady state — while a blocked handler
// never delays the next arrival, which simply gets its own goroutine.
func (e *Endpoint) dispatch(d delivery) {
	e.wmu.Lock()
	if e.closed {
		// Stop already retired the pool (only reachable for sends racing
		// Stop on an already-counted delivery): drop.
		e.wmu.Unlock()
		e.net.doneFlight()
		return
	}
	if e.idle > 0 {
		e.idle-- // reserve the worker: the mailbox send below cannot block
		e.wmu.Unlock()
		e.mail <- d
		return
	}
	e.wmu.Unlock()
	// A plain `go` over a method call avoids the closure + thread-handle
	// allocations proc.Go would add — this is the hot path of every
	// zero-delay configuration. netsim is exempt from the
	// goroutine-discipline rule: the network quiesces its workers through
	// its in-flight count, and endpoint crashes are observed at delivery
	// via `up`.
	go e.work(d)
}

// work delivers first, then joins the endpoint's worker pool: park (up to
// the idle quota) and drain claimed deliveries until the pool is retired.
func (e *Endpoint) work(first delivery) {
	d := first
	for {
		e.net.deliverTo(e, d)
		e.wmu.Lock()
		if e.closed || e.idle >= maxIdleWorkers {
			e.wmu.Unlock()
			return
		}
		e.idle++
		e.wmu.Unlock()
		var ok bool
		if d, ok = <-e.mail; !ok {
			return
		}
	}
}

// deliverTo hands a delivery to dest's handler on the calling goroutine,
// decoding from the shared wire bytes first when the codec is on.
func (n *Network) deliverTo(dest *Endpoint, d delivery) {
	defer n.doneFlight()
	m := d.m
	if d.wire != nil {
		// Args are borrowed from the shared immutable buffer, not copied;
		// the buffer is never recycled, so retained Args stay valid (D13).
		decoded, err := msg.DecodeShared(d.wire)
		if err != nil {
			// A codec failure is a bug, not a simulated fault; surface
			// it loudly rather than silently dropping.
			panic(fmt.Sprintf("netsim: wire codec round-trip: %v", err))
		}
		m = decoded
	}
	dest.mu.Lock()
	h, up := dest.handler, dest.up
	dest.mu.Unlock()
	if !up || h == nil {
		n.downDrops.Add(1)
		return
	}
	n.delivered.Add(1)
	dest.ingress.Add(1)
	h(m)
}
