package netsim

import (
	"fmt"
	"testing"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/transport"
)

// TestMulticastEgressCounters pins the O(k) sender-egress claim of D17 with
// the per-endpoint counters: a flat multicast to a g-member group costs the
// sender g-1 egress frames, while a tree(k) dissemination costs the origin
// exactly k and every relaying member at most k — and every non-origin
// member still receives the frame exactly once.
func TestMulticastEgressCounters(t *testing.T) {
	const g, k = 16, 3
	for _, wire := range []bool{false, true} {
		t.Run(fmt.Sprintf("wire=%v", wire), func(t *testing.T) {
			group := make(msg.Group, 0, g)
			for i := 1; i <= g; i++ {
				group = append(group, msg.ProcID(i))
			}
			origin := group[0]

			// Flat: one multicast to the whole group, self excluded from egress.
			n := New(clock.NewSim(), Params{EncodeOnWire: wire})
			eps := make(map[msg.ProcID]transport.Endpoint, g)
			for _, id := range group {
				e, err := n.Attach(id, func(*msg.NetMsg) {})
				if err != nil {
					t.Fatal(err)
				}
				eps[id] = e
			}
			m := &msg.NetMsg{
				Type: msg.OpCall, ID: 1, Client: origin, Op: 7,
				Args: []byte("x"), Server: group, Sender: origin,
			}
			eps[origin].Multicast(group, m)
			n.Quiesce()
			if got := eps[origin].Stats().Egress; got != g-1 {
				t.Fatalf("flat sender egress = %d, want g-1 = %d", got, g-1)
			}
			for _, id := range group {
				if got := eps[id].Stats().Ingress; got != 1 {
					t.Fatalf("flat member %d ingress = %d, want 1", id, got)
				}
			}
			n.Stop()

			// Tree(k): the origin pushes to its k children only; each member
			// relays the shared frame to its own children.
			n = New(clock.NewSim(), Params{EncodeOnWire: wire})
			eps = make(map[msg.ProcID]transport.Endpoint, g)
			for _, id := range group {
				id := id
				var ep transport.Endpoint
				e, err := n.Attach(id, func(m *msg.NetMsg) {
					if m.Relay == 0 {
						return
					}
					ch := msg.TreeChildren(m.Server, m.Sender, id, int(m.Relay), nil)
					if len(ch) > 0 {
						ep.Multicast(ch, m)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				ep = e
				eps[id] = e
			}
			m = &msg.NetMsg{
				Type: msg.OpCall, ID: 2, Client: origin, Op: 7,
				Args: []byte("x"), Server: group, Sender: origin,
			}
			m.SetRelay(k)
			eps[origin].Multicast(msg.TreeChildren(group, origin, origin, k, nil), m)
			n.Quiesce()
			if got := eps[origin].Stats().Egress; got != k {
				t.Fatalf("tree origin egress = %d, want k = %d", got, k)
			}
			for _, id := range group {
				st := eps[id].Stats()
				if st.Egress > k {
					t.Fatalf("tree member %d egress = %d, want <= k = %d", id, st.Egress, k)
				}
				wantIn := int64(1)
				if id == origin {
					wantIn = 0
				}
				if st.Ingress != wantIn {
					t.Fatalf("tree member %d ingress = %d, want %d", id, st.Ingress, wantIn)
				}
			}
			n.Stop()
		})
	}
}
