package netsim

import (
	"fmt"
	"testing"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

// BenchmarkMulticastFanout measures the transport send+deliver path as the
// group size grows: one Multicast per iteration to g no-op endpoints, with
// the wire codec off ("plain") and on ("wire"). This fanout is what the
// composite protocol pays on every group call, so per-destination costs
// (lock round-trips, clones, encodes, goroutine spawns) show up here first.
func BenchmarkMulticastFanout(b *testing.B) {
	for _, wire := range []bool{false, true} {
		mode := "plain"
		if wire {
			mode = "wire"
		}
		for _, g := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/g%d", mode, g), func(b *testing.B) {
				n := New(clock.NewReal(), Params{EncodeOnWire: wire})
				defer n.Stop()
				group := make(msg.Group, 0, g)
				for i := 1; i <= g; i++ {
					id := msg.ProcID(i)
					group = append(group, id)
					if _, err := n.Attach(id, func(*msg.NetMsg) {}); err != nil {
						b.Fatal(err)
					}
				}
				sender, err := n.Attach(100, func(*msg.NetMsg) {})
				if err != nil {
					b.Fatal(err)
				}
				m := &msg.NetMsg{
					Type: msg.OpCall, ID: 1, Client: 100, Op: 7,
					Args: make([]byte, 64), Server: group, Sender: 100,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sender.Multicast(group, m)
				}
				b.StopTimer()
				n.Quiesce()
			})
		}
	}
}
