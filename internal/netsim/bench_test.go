package netsim

import (
	"fmt"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/transport"
)

// BenchmarkMulticastFanout measures the transport send+deliver path as the
// group size grows: one Multicast per iteration to g no-op endpoints, with
// the wire codec off ("plain") and on ("wire"). This fanout is what the
// composite protocol pays on every group call, so per-destination costs
// (lock round-trips, clones, encodes, goroutine spawns) show up here first.
func BenchmarkMulticastFanout(b *testing.B) {
	for _, wire := range []bool{false, true} {
		mode := "plain"
		if wire {
			mode = "wire"
		}
		for _, g := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/g%d", mode, g), func(b *testing.B) {
				n := New(clock.NewReal(), Params{EncodeOnWire: wire})
				defer n.Stop()
				group := make(msg.Group, 0, g)
				for i := 1; i <= g; i++ {
					id := msg.ProcID(i)
					group = append(group, id)
					if _, err := n.Attach(id, func(*msg.NetMsg) {}); err != nil {
						b.Fatal(err)
					}
				}
				sender, err := n.Attach(100, func(*msg.NetMsg) {})
				if err != nil {
					b.Fatal(err)
				}
				m := &msg.NetMsg{
					Type: msg.OpCall, ID: 1, Client: 100, Op: 7,
					Args: make([]byte, 64), Server: group, Sender: 100,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sender.Multicast(group, m)
				}
				b.StopTimer()
				n.Quiesce()
			})
		}
	}
}

// BenchmarkMulticastDissemination extends the fanout story to large groups
// (g in {32, 64, 128}) and compares flat dissemination against the k-ary
// relay tree of D17: in tree mode the sender pushes one frame to at most k
// children and each member's handler relays the shared frozen frame onward
// with msg.TreeChildren — zero re-encode, zero clone.
//
// Every link carries a fixed 100ms delay, so deliveries (and relays) land
// on runtime timers OUTSIDE the timed region: the loop measures exactly
// what the sender's goroutine pays per multicast — admission, egress
// fan-out, and (in wire mode) the single encode — which is the O(g) vs
// O(k) claim under test. The backlog is drained untimed every benchChunk
// iterations so pending timers stay bounded at any b.N. Run it with a
// fixed iteration count (-benchtime 1000x, the mrpcbench -bench tree
// snapshot recipe); duration-based benchtime ramps b.N far beyond what the
// drain phases make sensible.
func BenchmarkMulticastDissemination(b *testing.B) {
	const fanout = 3
	const benchChunk = 1000
	const origin = msg.ProcID(1000) // outside the member ID range at every g
	for _, tree := range []bool{false, true} {
		mode := "flat"
		if tree {
			mode = fmt.Sprintf("tree%d", fanout)
		}
		for _, wire := range []bool{false, true} {
			codec := "plain"
			if wire {
				codec = "wire"
			}
			for _, g := range []int{32, 64, 128} {
				b.Run(fmt.Sprintf("%s/%s/g%d", mode, codec, g), func(b *testing.B) {
					n := New(clock.NewReal(), Params{
						EncodeOnWire: wire,
						MinDelay:     100 * time.Millisecond,
						MaxDelay:     100 * time.Millisecond,
					})
					defer n.Stop()
					group := make(msg.Group, 0, g)
					for i := 1; i <= g; i++ {
						group = append(group, msg.ProcID(i))
					}
					for _, id := range group {
						id := id
						var ep transport.Endpoint
						h := func(*msg.NetMsg) {}
						if tree {
							h = func(m *msg.NetMsg) {
								if m.Relay == 0 {
									return
								}
								ch := msg.TreeChildren(m.Server, m.Sender, id, int(m.Relay), nil)
								if len(ch) > 0 {
									ep.Multicast(ch, m)
								}
							}
						}
						e, err := n.Attach(id, h)
						if err != nil {
							b.Fatal(err)
						}
						ep = e
					}
					sender, err := n.Attach(origin, func(*msg.NetMsg) {})
					if err != nil {
						b.Fatal(err)
					}
					m := &msg.NetMsg{
						Type: msg.OpCall, ID: 1, Client: origin, Op: 7,
						Args: make([]byte, 64), Server: group, Sender: origin,
					}
					var roots msg.Group
					if tree {
						m.SetRelay(fanout)
						roots = msg.TreeChildren(group, origin, origin, fanout, nil)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if i > 0 && i%benchChunk == 0 {
							b.StopTimer()
							n.Quiesce()
							b.StartTimer()
						}
						if tree {
							sender.Multicast(roots, m)
						} else {
							sender.Multicast(group, m)
						}
					}
					b.StopTimer()
					n.Quiesce()
				})
			}
		}
	}
}
