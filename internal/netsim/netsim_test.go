package netsim

import (
	"sync"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/transport"
)

// collector accumulates delivered messages for one endpoint.
type collector struct {
	mu   sync.Mutex
	msgs []*msg.NetMsg
}

func (c *collector) handle(m *msg.NetMsg) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func attach(t *testing.T, n *Network, id msg.ProcID) (transport.Endpoint, *collector) {
	t.Helper()
	c := &collector{}
	ep, err := n.Attach(id, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	return ep, c
}

func call(id msg.CallID) *msg.NetMsg {
	return &msg.NetMsg{Type: msg.OpCall, ID: id, Client: 1, Sender: 1}
}

func TestPerfectDelivery(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)

	for i := 0; i < 10; i++ {
		a.Push(2, call(msg.CallID(i)))
	}
	n.Quiesce()
	if cb.count() != 10 {
		t.Fatalf("delivered %d, want 10", cb.count())
	}
	st := n.Stats()
	if st.Sent != 10 || st.Delivered != 10 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	attach(t, n, 1)
	if _, err := n.Attach(1, nil); err == nil {
		t.Fatal("second Attach of id 1 accepted")
	}
}

// TestSendFreezesAndShares pins the D13 contract: the transport does not
// clone per destination — every recipient shares the sender's (now frozen)
// message, and a writable copy is obtained explicitly via Mutable.
func TestSendFreezesAndShares(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)
	_, cc := attach(t, n, 3)

	m := call(1)
	m.Args = []byte{1, 2, 3}
	a.Multicast(msg.NewGroup(2, 3), m)
	n.Quiesce()
	if !m.Frozen() {
		t.Fatal("sent message not frozen")
	}
	cb.mu.Lock()
	cc.mu.Lock()
	defer cb.mu.Unlock()
	defer cc.mu.Unlock()
	if cb.msgs[0] != m || cc.msgs[0] != m {
		t.Fatal("recipients did not share the sender's message")
	}
	if c := m.Mutable(); c == m || c.Frozen() || &c.Args[0] == &m.Args[0] {
		t.Fatal("Mutable() of a frozen message must be an independent copy")
	}
}

func TestLossIsInjected(t *testing.T) {
	n := New(clock.NewReal(), Params{Seed: 1, LossProb: 0.5})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)

	const sent = 400
	for i := 0; i < sent; i++ {
		a.Push(2, call(msg.CallID(i)))
	}
	n.Quiesce()
	got := cb.count()
	if got == sent || got == 0 {
		t.Fatalf("delivered %d of %d with 50%% loss", got, sent)
	}
	// Rough binomial bounds: 400 trials, p=0.5 → expect 200 ± 60.
	if got < 140 || got > 260 {
		t.Fatalf("delivered %d of %d, far from 50%%", got, sent)
	}
	st := n.Stats()
	if st.Dropped != int64(sent-got) {
		t.Fatalf("dropped = %d, want %d", st.Dropped, sent-got)
	}
}

func TestDuplicationIsInjected(t *testing.T) {
	n := New(clock.NewReal(), Params{Seed: 2, DupProb: 0.5})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)

	const sent = 200
	for i := 0; i < sent; i++ {
		a.Push(2, call(msg.CallID(i)))
	}
	n.Quiesce()
	st := n.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates with 50% dup probability")
	}
	if got := cb.count(); got != sent+int(st.Duplicated) {
		t.Fatalf("delivered %d, want %d + %d dups", got, sent, st.Duplicated)
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		n := New(clock.NewReal(), Params{Seed: 42, LossProb: 0.3, DupProb: 0.2})
		defer n.Stop()
		a, _ := attach(t, n, 1)
		attach(t, n, 2)
		for i := 0; i < 300; i++ {
			a.Push(2, call(msg.CallID(i)))
		}
		n.Quiesce()
		st := n.Stats()
		return st.Dropped, st.Duplicated
	}
	d1, p1 := run()
	d2, p2 := run()
	if d1 != d2 || p1 != p2 {
		t.Fatalf("same seed, different fault pattern: (%d,%d) vs (%d,%d)", d1, p1, d2, p2)
	}
}

func TestMulticastReachesAllMembersIncludingSender(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, ca := attach(t, n, 1)
	_, cb := attach(t, n, 2)
	_, cc := attach(t, n, 3)

	a.Multicast(msg.NewGroup(1, 2, 3), call(1))
	n.Quiesce()
	if ca.count() != 1 || cb.count() != 1 || cc.count() != 1 {
		t.Fatalf("multicast delivered %d/%d/%d, want 1/1/1", ca.count(), cb.count(), cc.count())
	}
}

func TestPartition(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, ca := attach(t, n, 1)
	b, cb := attach(t, n, 2)

	n.Partition(1, 2, true)
	a.Push(2, call(1))
	b.Push(1, call(2))
	n.Quiesce()
	if ca.count() != 0 || cb.count() != 0 {
		t.Fatal("partitioned link delivered")
	}
	if st := n.Stats(); st.Partition != 2 {
		t.Fatalf("partition drops = %d, want 2", st.Partition)
	}

	n.Partition(1, 2, false)
	a.Push(2, call(3))
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatal("healed partition did not deliver")
	}
}

func TestPartitionOneWay(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, ca := attach(t, n, 1)
	b, cb := attach(t, n, 2)

	n.PartitionOneWay(1, 2, true)
	a.Push(2, call(1)) // blocked direction
	b.Push(1, call(2)) // open direction
	n.Quiesce()
	if cb.count() != 0 {
		t.Fatal("blocked direction delivered")
	}
	if ca.count() != 1 {
		t.Fatal("open direction did not deliver")
	}

	n.PartitionOneWay(1, 2, false)
	a.Push(2, call(3))
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatal("healed one-way partition did not deliver")
	}
}

func TestDownEndpointNeitherSendsNorReceives(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	b, cb := attach(t, n, 2)

	b.SetUp(false)
	if b.Up() {
		t.Fatal("Up() after SetUp(false)")
	}
	a.Push(2, call(1)) // toward down endpoint: dropped
	b.Push(1, call(2)) // from down endpoint: dropped
	n.Quiesce()
	if cb.count() != 0 {
		t.Fatal("down endpoint received")
	}
	st := n.Stats()
	if st.DownDrops != 1 {
		t.Fatalf("down drops = %d, want 1 (send from down endpoint is silent)", st.DownDrops)
	}

	b.SetUp(true)
	a.Push(2, call(3))
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatal("recovered endpoint did not receive")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	a.Push(99, call(1))
	n.Quiesce()
	if st := n.Stats(); st.DownDrops != 1 {
		t.Fatalf("stats = %+v, want one down-drop", st)
	}
}

func TestDelaysAreApplied(t *testing.T) {
	n := New(clock.NewReal(), Params{Seed: 1, MinDelay: 10 * time.Millisecond, MaxDelay: 15 * time.Millisecond})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	done := make(chan time.Time, 1)
	if _, err := n.Attach(2, func(*msg.NetMsg) { done <- time.Now() }); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	a.Push(2, call(1))
	at := <-done
	if d := at.Sub(t0); d < 10*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 10ms", d)
	}
}

func TestLinkDelayOverride(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	done := make(chan time.Time, 1)
	if _, err := n.Attach(2, func(*msg.NetMsg) { done <- time.Now() }); err != nil {
		t.Fatal(err)
	}
	n.SetLinkDelay(1, 2, 20*time.Millisecond, 20*time.Millisecond)
	t0 := time.Now()
	a.Push(2, call(1))
	at := <-done
	if d := at.Sub(t0); d < 20*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 20ms (link override)", d)
	}
}

func TestEncodeOnWire(t *testing.T) {
	n := New(clock.NewReal(), Params{EncodeOnWire: true})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)

	m := call(7)
	m.Args = []byte("payload")
	m.Server = msg.NewGroup(1, 2)
	a.Push(2, m)
	n.Quiesce()
	cb.mu.Lock()
	defer cb.mu.Unlock()
	got := cb.msgs[0]
	if got.ID != 7 || string(got.Args) != "payload" || !got.Server.Equal(m.Server) {
		t.Fatalf("wire round trip corrupted message: %+v", got)
	}
}

func TestSendAfterStopDiscarded(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)
	n.Stop()
	a.Push(2, call(1))
	if cb.count() != 0 {
		t.Fatal("message delivered after Stop")
	}
}

func TestSetHandlerReplaces(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	ep, old := attach(t, n, 2)
	fresh := &collector{}
	ep.SetHandler(fresh.handle)
	a.Push(2, call(1))
	n.Quiesce()
	if old.count() != 0 || fresh.count() != 1 {
		t.Fatalf("old=%d fresh=%d, want 0/1", old.count(), fresh.count())
	}
	if ep.ID() != 2 {
		t.Fatalf("ID = %d", ep.ID())
	}
}

func TestGraySlowDelaysBothDirections(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	b, _ := attach(t, n, 2)
	done := make(chan time.Time, 1)
	if _, err := n.Attach(3, func(*msg.NetMsg) { done <- time.Now() }); err != nil {
		t.Fatal(err)
	}

	n.SetGraySlow(2, 15*time.Millisecond)
	t0 := time.Now()
	b.Push(3, call(1)) // egress of the gray endpoint
	if d := (<-done).Sub(t0); d < 15*time.Millisecond {
		t.Fatalf("gray egress delivered after %v, want >= 15ms", d)
	}
	a.Push(2, call(2)) // ingress of the gray endpoint
	n.Quiesce()
	if st := n.Stats(); st.GrayDelays != 2 {
		t.Fatalf("gray delays = %d, want 2", st.GrayDelays)
	}

	// Traffic not touching the gray endpoint is unaffected, and clearing
	// the state restores normal latency.
	t0 = time.Now()
	a.Push(3, call(3))
	if d := (<-done).Sub(t0); d >= 15*time.Millisecond {
		t.Fatalf("bystander link delayed %v by a gray endpoint", d)
	}
	n.SetGraySlow(2, 0)
	a.Push(2, call(4))
	n.Quiesce()
	if st := n.Stats(); st.GrayDelays != 2 {
		t.Fatalf("gray delays after clear = %d, want 2", st.GrayDelays)
	}
}

func TestLinkProfileAsymmetric(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	done1 := make(chan time.Time, 1)
	done2 := make(chan time.Time, 1)
	e1, err := n.Attach(1, func(*msg.NetMsg) { done1 <- time.Now() })
	if err != nil {
		t.Fatal(err)
	}
	e2, err := n.Attach(2, func(*msg.NetMsg) { done2 <- time.Now() })
	if err != nil {
		t.Fatal(err)
	}
	// Profiles are directed: 2→1 is a slow downlink, 1→2 stays fast.
	n.SetLinkProfile(2, 1, LinkProfile{MinDelay: 20 * time.Millisecond, MaxDelay: 20 * time.Millisecond})

	t0 := time.Now()
	e2.Push(1, call(1))
	if d := (<-done1).Sub(t0); d < 20*time.Millisecond {
		t.Fatalf("profiled direction delivered after %v, want >= 20ms", d)
	}
	t0 = time.Now()
	e1.Push(2, call(2))
	if d := (<-done2).Sub(t0); d >= 20*time.Millisecond {
		t.Fatalf("unprofiled reverse direction delayed %v", d)
	}
}

func TestLinkProfileBandwidth(t *testing.T) {
	n := New(clock.NewReal(), Params{})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	done := make(chan time.Time, 1)
	if _, err := n.Attach(2, func(*msg.NetMsg) { done <- time.Now() }); err != nil {
		t.Fatal(err)
	}
	n.SetLinkProfile(1, 2, LinkProfile{BytesPerSec: 100_000})

	m := call(1)
	m.Args = make([]byte, 2000) // ≥ 2000 bytes on the wire → ≥ 20ms at 100kB/s
	t0 := time.Now()
	a.Push(2, m)
	if d := (<-done).Sub(t0); d < 20*time.Millisecond {
		t.Fatalf("2kB at 100kB/s delivered after %v, want >= 20ms", d)
	}
}

func TestLinkProfileSpikes(t *testing.T) {
	n := New(clock.NewReal(), Params{Seed: 5})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)
	n.SetLinkProfile(1, 2, LinkProfile{SpikeProb: 0.5, SpikeDelay: time.Millisecond})

	const sent = 200
	for i := 0; i < sent; i++ {
		a.Push(2, call(msg.CallID(i)))
	}
	n.Quiesce()
	if got := cb.count(); got != sent {
		t.Fatalf("spikes lost messages: delivered %d of %d", got, sent)
	}
	st := n.Stats()
	// Rough binomial bounds: 200 trials, p=0.5 → expect 100 ± 45.
	if st.Spikes < 55 || st.Spikes > 145 {
		t.Fatalf("spikes = %d of %d, far from 50%%", st.Spikes, sent)
	}
}

func TestReorderStormPermutesWithinWindow(t *testing.T) {
	n := New(clock.NewReal(), Params{Seed: 9,
		Reorder: ReorderParams{Prob: 1, Window: 16, Spread: 30 * time.Millisecond}})
	defer n.Stop()
	a, _ := attach(t, n, 1)
	_, cb := attach(t, n, 2)

	const sent = 12
	for i := 0; i < sent; i++ {
		a.Push(2, call(msg.CallID(i)))
	}
	n.Quiesce()
	if got := cb.count(); got != sent {
		t.Fatalf("storm lost messages: delivered %d of %d", got, sent)
	}
	if st := n.Stats(); st.Reordered != sent {
		t.Fatalf("reordered = %d, want %d", st.Reordered, sent)
	}
	cb.mu.Lock()
	inversions := 0
	for i := 1; i < len(cb.msgs); i++ {
		if cb.msgs[i].ID < cb.msgs[i-1].ID {
			inversions++
		}
	}
	cb.mu.Unlock()
	if inversions == 0 {
		t.Fatal("a full-window storm with 30ms spread produced no inversions")
	}
}
