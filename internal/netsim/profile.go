package netsim

import (
	"time"

	"mrpc/internal/msg"
)

// This file is the adversarial-profile engine (DESIGN.md D19): per-directed-
// link WAN profiles, bounded reordering storms, gray-slow endpoints and
// flapping partitions. Every stochastic choice rolls on the existing
// per-link seeded generators (linkState.rng), in a fixed order per admitted
// message — loss, duplication, jitter, spike, storm — so a seed fully
// determines the fault pattern and shrinking stays reproducible.
// Deterministic additions (gray delay, serialization time) consume no
// randomness at all, which keeps every other link's stream untouched.

// ReorderParams configures bounded reordering storms on a link. A storm
// starts with probability Prob per surviving message; while active, each of
// the next Window messages (including the trigger) gains an extra delay
// drawn uniformly from [0, Spread], which permutes delivery order within a
// bounded burst instead of smearing every message. Zero values disable the
// feature.
type ReorderParams struct {
	// Prob is the per-message probability that a storm window opens.
	Prob float64
	// Window is the number of messages a storm affects.
	Window int
	// Spread bounds the extra delay drawn per stormed message.
	Spread time.Duration
}

func (r ReorderParams) active() bool { return r.Prob > 0 && r.Window > 0 && r.Spread > 0 }

// LinkProfile shapes one *directed* link — profiles are asymmetric by
// construction, so an uplink and its downlink can differ (WAN asymmetry,
// a saturated reverse path). A profile overrides the network-wide delay
// bounds and SetLinkDelay for its direction.
type LinkProfile struct {
	// MinDelay and MaxDelay bound the uniform base delay for this
	// direction (replacing Params.MinDelay/MaxDelay and SetLinkDelay).
	MinDelay, MaxDelay time.Duration
	// SpikeProb is the probability a delivery takes a latency spike —
	// a heavy-tailed WAN-like distribution on top of the uniform base.
	SpikeProb float64
	// SpikeDelay is the extra delay a spiked delivery incurs.
	SpikeDelay time.Duration
	// BytesPerSec, when positive, adds a deterministic serialization
	// delay of size/BytesPerSec per delivery (bandwidth constraint).
	BytesPerSec int64
	// Reorder overrides Params.Reorder for this direction.
	Reorder ReorderParams
}

// SetLinkProfile installs a profile on the directed link from→to. The
// reverse direction is unaffected (set it separately for symmetric links).
// Installing a profile does not reset the link's fault generator, so a
// profile can be changed mid-run without perturbing other links.
func (n *Network) SetLinkProfile(from, to msg.ProcID, p LinkProfile) {
	if p.MaxDelay < p.MinDelay {
		p.MaxDelay = p.MinDelay
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.profiles[dirLink{from: from, to: to}] = p
}

// ClearLinkProfile removes the directed profile from→to, restoring the
// network-wide delay model for that direction.
func (n *Network) ClearLinkProfile(from, to msg.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.profiles, dirLink{from: from, to: to})
}

// SetGraySlow makes endpoint id gray-slow: every delivery into or out of
// it gains the fixed extra delay d, on top of whatever the link's delay
// model produces. d = 0 clears the state. The delay is deterministic — it
// draws no randomness — so graying a member never perturbs any link's
// fault stream. A gray member keeps sending and receiving (heartbeats
// included, just late), which is exactly what makes it adversarial: it
// stalls lanes that wait on it while a threshold-based failure detector,
// seeing steady if delayed heartbeats, never reports it down.
func (n *Network) SetGraySlow(id msg.ProcID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.gray, id)
	} else {
		n.gray[id] = d
	}
}

// StartFlap runs `cycles` scripted split/heal cycles on the a↔b link, each
// of length `period` (blocked for period/2, healed for period/2), driven by
// the network clock. It returns immediately; the returned channel closes
// once every cycle has run and the link is healed. Flapping composes with
// every other profile: admission checks the partition state in force at
// send time, so a flap that outpaces retransmission (or a failure
// detector's convergence) intermittently starves a link without ever
// presenting a stable failure.
func (n *Network) StartFlap(a, b msg.ProcID, period time.Duration, cycles int) <-chan struct{} {
	done := make(chan struct{})
	if cycles <= 0 || period <= 0 {
		close(done)
		return done
	}
	half := period / 2
	if half <= 0 {
		half = 1
	}
	var cycle func(remaining int)
	cycle = func(remaining int) {
		if remaining == 0 {
			n.Partition(a, b, false) // end healed, whatever happened before
			close(done)
			return
		}
		n.Partition(a, b, true)
		n.clk.AfterFunc(half, func() {
			n.Partition(a, b, false)
			n.flapCycles.Add(1)
			n.clk.AfterFunc(half, func() { cycle(remaining - 1) })
		})
	}
	cycle(cycles)
	return done
}

// wireSize estimates the on-the-wire size of a delivery for bandwidth
// accounting: exact when the codec is on (the shared wire bytes), the
// codec's computed frame length otherwise.
func wireSize(d delivery) int64 {
	if d.wire != nil {
		return int64(len(d.wire))
	}
	return int64(d.m.EncodedLen())
}
