package netsim

import (
	"runtime"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

// These tests pin the per-directed-link fault model: every directed link
// derives its own random source from Params.Seed, so the loss/dup/delay
// sequence a link observes depends only on that link's traffic — not on
// what any other link carries, and not on goroutine scheduling.

// outcomes returns, per CallID, how many copies a collector received.
// Delivery order is scheduler-dependent, but per-message copy counts are
// not.
func outcomes(c *collector) map[msg.CallID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	got := make(map[msg.CallID]int, len(c.msgs))
	for _, m := range c.msgs {
		got[m.ID]++
	}
	return got
}

func sameOutcomes(a, b map[msg.CallID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for id, n := range a {
		if b[id] != n {
			return false
		}
	}
	return true
}

// TestLinkFaultIndependence is the core determinism suite: identical runs
// agree message-by-message, and a link's fault sequence is a function of
// its own traffic only.
func TestLinkFaultIndependence(t *testing.T) {
	const sent = 300
	params := Params{Seed: 7, LossProb: 0.3, DupProb: 0.2}

	// run sends `sent` calls 1→2; when withNoise is set it interleaves a
	// call 1→3 after every 1→2 send. It returns link 1→2's per-message
	// outcome and the final stats.
	run := func(withNoise bool) (map[msg.CallID]int, Stats) {
		n := New(clock.NewReal(), params)
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		attach(t, n, 3)
		for i := 0; i < sent; i++ {
			a.Push(2, call(msg.CallID(i)))
			if withNoise {
				a.Push(3, call(msg.CallID(1000+i)))
			}
		}
		n.Quiesce()
		return outcomes(cb), n.Stats()
	}

	t.Run("identical runs agree per message", func(t *testing.T) {
		o1, st1 := run(false)
		o2, st2 := run(false)
		if st1 != st2 {
			t.Fatalf("same seed, different stats: %+v vs %+v", st1, st2)
		}
		if !sameOutcomes(o1, o2) {
			t.Fatal("same seed, different per-message drop/dup decisions")
		}
		if st1.Dropped == 0 || st1.Duplicated == 0 {
			t.Fatalf("faults not exercised: %+v", st1)
		}
	})

	t.Run("other links do not perturb a link's sequence", func(t *testing.T) {
		quiet, _ := run(false)
		noisy, _ := run(true)
		// Link 1→2 saw the same messages in the same order both times;
		// the extra 1→3 traffic must not shift its fault decisions.
		if !sameOutcomes(quiet, noisy) {
			t.Fatal("traffic on 1→3 changed the fault sequence on 1→2")
		}
	})
}

// TestDeterminismUnderPartition extends the guarantee to runs that toggle
// partitions mid-stream: partition drops are deterministic, and messages
// admitted after the heal continue the link's fault sequence identically.
func TestDeterminismUnderPartition(t *testing.T) {
	run := func() (map[msg.CallID]int, Stats) {
		n := New(clock.NewReal(), Params{Seed: 11, LossProb: 0.25, DupProb: 0.25})
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		for i := 0; i < 100; i++ {
			a.Push(2, call(msg.CallID(i)))
		}
		n.Partition(1, 2, true)
		for i := 100; i < 150; i++ {
			a.Push(2, call(msg.CallID(i))) // all blocked, no RNG consumed
		}
		n.Partition(1, 2, false)
		for i := 150; i < 250; i++ {
			a.Push(2, call(msg.CallID(i)))
		}
		n.Quiesce()
		return outcomes(cb), n.Stats()
	}
	o1, st1 := run()
	o2, st2 := run()
	if st1 != st2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", st1, st2)
	}
	if !sameOutcomes(o1, o2) {
		t.Fatal("same seed, different decisions across a partition cycle")
	}
	if st1.Partition != 50 {
		t.Fatalf("partition drops = %d, want 50", st1.Partition)
	}
	for i := 100; i < 150; i++ {
		if o1[msg.CallID(i)] != 0 {
			t.Fatalf("message %d delivered through a partition", i)
		}
	}
}

// TestDeterminismUnderOneWayPartition checks the directed variant: blocking
// 1→2 must not consume randomness on — or otherwise perturb — the reverse
// link 2→1.
func TestDeterminismUnderOneWayPartition(t *testing.T) {
	run := func(block bool) (map[msg.CallID]int, Stats) {
		n := New(clock.NewReal(), Params{Seed: 13, LossProb: 0.3, DupProb: 0.1})
		defer n.Stop()
		a, ca := attach(t, n, 1)
		b, _ := attach(t, n, 2)
		if block {
			n.PartitionOneWay(1, 2, true)
		}
		for i := 0; i < 200; i++ {
			a.Push(2, call(msg.CallID(i)))      // blocked when block is set
			b.Push(1, call(msg.CallID(1000+i))) // always open
		}
		n.Quiesce()
		return outcomes(ca), n.Stats()
	}
	open, stOpen := run(false)
	blocked, stBlocked := run(true)
	// The open direction's fault sequence is identical whether or not the
	// opposite direction is blocked.
	if !sameOutcomes(open, blocked) {
		t.Fatal("blocking 1→2 changed the fault sequence on 2→1")
	}
	if stBlocked.Partition != 200 {
		t.Fatalf("one-way partition drops = %d, want 200", stBlocked.Partition)
	}
	if stOpen.Partition != 0 {
		t.Fatalf("unexpected partition drops in open run: %d", stOpen.Partition)
	}
}

// deliveryOrder drains every pending sim-clock timer one deadline at a
// time, waiting for each batch of fired deliveries to land (across all the
// given collectors) before firing the next, so each collector's recorded
// order IS the delivery schedule of its endpoint. It returns the first
// collector's order.
func deliveryOrder(clk *clock.Sim, cs ...*collector) []msg.CallID {
	count := func() int {
		total := 0
		for _, c := range cs {
			total += c.count()
		}
		return total
	}
	total := count()
	pending := clk.PendingTimers()
	for pending > 0 {
		clk.AdvanceToNext()
		now := clk.PendingTimers()
		total += pending - now
		pending = now
		for count() < total {
			runtime.Gosched()
		}
	}
	c := cs[0]
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]msg.CallID, len(c.msgs))
	for i, m := range c.msgs {
		ids[i] = m.ID
	}
	return ids
}

// TestReorderScheduleDeterminism extends the link-independence guarantee
// to reordering storms: identical seeds produce identical delivery
// schedules (not just identical drop/dup decisions), and a storm on one
// link does not shift another link's schedule.
func TestReorderScheduleDeterminism(t *testing.T) {
	params := Params{Seed: 21, MinDelay: time.Millisecond, MaxDelay: time.Millisecond,
		Reorder: ReorderParams{Prob: 1, Window: 1 << 20, Spread: 5 * time.Millisecond}}

	run := func(withNoise bool) []msg.CallID {
		clk := clock.NewSim()
		n := New(clk, params)
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		_, c3 := attach(t, n, 3)
		for i := 0; i < 60; i++ {
			a.Push(2, call(msg.CallID(i)))
			if withNoise {
				a.Push(3, call(msg.CallID(1000+i)))
			}
		}
		order := deliveryOrder(clk, cb, c3)
		n.Quiesce()
		return order
	}

	o1, o2 := run(false), run(false)
	if len(o1) != 60 {
		t.Fatalf("delivered %d of 60", len(o1))
	}
	if !slicesEqual(o1, o2) {
		t.Fatalf("same seed, different delivery schedule:\n%v\n%v", o1, o2)
	}
	sorted := true
	for i := 1; i < len(o1); i++ {
		if o1[i] < o1[i-1] {
			sorted = false
		}
	}
	if sorted {
		t.Fatal("storm did not permute the delivery schedule")
	}
	if noisy := run(true); !slicesEqual(o1, noisy) {
		t.Fatalf("storm traffic on 1→3 shifted link 1→2's schedule:\n%v\n%v", o1, noisy)
	}
}

func slicesEqual(a, b []msg.CallID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFlapScheduleDeterminism scripts a flapping partition on the sim
// clock: the set of messages that pass, the partition-drop count and the
// cycle count are exact functions of the schedule.
func TestFlapScheduleDeterminism(t *testing.T) {
	run := func() (delivered map[msg.CallID]int, st Stats) {
		clk := clock.NewSim()
		n := New(clk, Params{})
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		done := n.StartFlap(1, 2, 10*time.Millisecond, 3)
		// Pushes every 2.5ms across three 10ms cycles: blocked halves are
		// [0,5), [10,15), [20,25); healed halves the other four windows.
		for i := 0; i < 12; i++ {
			a.Push(2, call(msg.CallID(i)))
			n.Quiesce() // zero-delay deliveries land before the clock moves
			clk.Advance(2500 * time.Microsecond)
		}
		for clk.PendingTimers() > 0 {
			clk.AdvanceToNext()
		}
		<-done
		n.Quiesce()
		return outcomes(cb), n.Stats()
	}
	o1, st1 := run()
	o2, st2 := run()
	if st1 != st2 || !sameOutcomes(o1, o2) {
		t.Fatalf("same flap script, different outcome: %+v vs %+v", st1, st2)
	}
	if st1.FlapCycles != 3 {
		t.Fatalf("flap cycles = %d, want 3", st1.FlapCycles)
	}
	if st1.Partition != 6 {
		t.Fatalf("partition drops = %d, want 6 (pushes landing in blocked halves)", st1.Partition)
	}
	for _, id := range []msg.CallID{2, 3, 6, 7, 10, 11} {
		if o1[id] != 1 {
			t.Fatalf("push %d fell in a healed half but was not delivered: %v", id, o1)
		}
	}
	for _, id := range []msg.CallID{0, 1, 4, 5, 8, 9} {
		if o1[id] != 0 {
			t.Fatalf("push %d fell in a blocked half but was delivered: %v", id, o1)
		}
	}
}

// TestFlapDoesNotPerturbOtherLinks extends TestLinkFaultIndependence to
// flap cycles: flapping 1↔2 must not consume randomness on — or otherwise
// perturb — the fault sequence of 1→3.
func TestFlapDoesNotPerturbOtherLinks(t *testing.T) {
	run := func(flap bool) map[msg.CallID]int {
		n := New(clock.NewReal(), Params{Seed: 31, LossProb: 0.3, DupProb: 0.2})
		defer n.Stop()
		a, _ := attach(t, n, 1)
		attach(t, n, 2)
		_, cc := attach(t, n, 3)
		var done <-chan struct{}
		if flap {
			done = n.StartFlap(1, 2, 2*time.Millisecond, 3)
		}
		for i := 0; i < 200; i++ {
			a.Push(2, call(msg.CallID(i)))
			a.Push(3, call(msg.CallID(1000+i)))
		}
		if flap {
			<-done
		}
		n.Quiesce()
		return outcomes(cc)
	}
	quiet := run(false)
	flappy := run(true)
	if !sameOutcomes(quiet, flappy) {
		t.Fatal("flapping 1↔2 changed the fault sequence on 1→3")
	}
}

// TestReorderFaultIndependence runs the original independence check with a
// reordering storm in force: storm rolls come from the same per-link
// stream, so cross-link isolation must survive them too.
func TestReorderFaultIndependence(t *testing.T) {
	params := Params{Seed: 17, LossProb: 0.2, DupProb: 0.1,
		Reorder: ReorderParams{Prob: 0.2, Window: 4, Spread: time.Millisecond}}
	run := func(withNoise bool) map[msg.CallID]int {
		n := New(clock.NewReal(), params)
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		attach(t, n, 3)
		for i := 0; i < 300; i++ {
			a.Push(2, call(msg.CallID(i)))
			if withNoise {
				a.Push(3, call(msg.CallID(1000+i)))
			}
		}
		n.Quiesce()
		return outcomes(cb)
	}
	o1, o2 := run(false), run(false)
	if !sameOutcomes(o1, o2) {
		t.Fatal("same seed, different decisions with storms in force")
	}
	if noisy := run(true); !sameOutcomes(o1, noisy) {
		t.Fatal("storm traffic on 1→3 changed the fault sequence on 1→2")
	}
}
