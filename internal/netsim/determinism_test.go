package netsim

import (
	"testing"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

// These tests pin the per-directed-link fault model: every directed link
// derives its own random source from Params.Seed, so the loss/dup/delay
// sequence a link observes depends only on that link's traffic — not on
// what any other link carries, and not on goroutine scheduling.

// outcomes returns, per CallID, how many copies a collector received.
// Delivery order is scheduler-dependent, but per-message copy counts are
// not.
func outcomes(c *collector) map[msg.CallID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	got := make(map[msg.CallID]int, len(c.msgs))
	for _, m := range c.msgs {
		got[m.ID]++
	}
	return got
}

func sameOutcomes(a, b map[msg.CallID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for id, n := range a {
		if b[id] != n {
			return false
		}
	}
	return true
}

// TestLinkFaultIndependence is the core determinism suite: identical runs
// agree message-by-message, and a link's fault sequence is a function of
// its own traffic only.
func TestLinkFaultIndependence(t *testing.T) {
	const sent = 300
	params := Params{Seed: 7, LossProb: 0.3, DupProb: 0.2}

	// run sends `sent` calls 1→2; when withNoise is set it interleaves a
	// call 1→3 after every 1→2 send. It returns link 1→2's per-message
	// outcome and the final stats.
	run := func(withNoise bool) (map[msg.CallID]int, Stats) {
		n := New(clock.NewReal(), params)
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		attach(t, n, 3)
		for i := 0; i < sent; i++ {
			a.Push(2, call(msg.CallID(i)))
			if withNoise {
				a.Push(3, call(msg.CallID(1000+i)))
			}
		}
		n.Quiesce()
		return outcomes(cb), n.Stats()
	}

	t.Run("identical runs agree per message", func(t *testing.T) {
		o1, st1 := run(false)
		o2, st2 := run(false)
		if st1 != st2 {
			t.Fatalf("same seed, different stats: %+v vs %+v", st1, st2)
		}
		if !sameOutcomes(o1, o2) {
			t.Fatal("same seed, different per-message drop/dup decisions")
		}
		if st1.Dropped == 0 || st1.Duplicated == 0 {
			t.Fatalf("faults not exercised: %+v", st1)
		}
	})

	t.Run("other links do not perturb a link's sequence", func(t *testing.T) {
		quiet, _ := run(false)
		noisy, _ := run(true)
		// Link 1→2 saw the same messages in the same order both times;
		// the extra 1→3 traffic must not shift its fault decisions.
		if !sameOutcomes(quiet, noisy) {
			t.Fatal("traffic on 1→3 changed the fault sequence on 1→2")
		}
	})
}

// TestDeterminismUnderPartition extends the guarantee to runs that toggle
// partitions mid-stream: partition drops are deterministic, and messages
// admitted after the heal continue the link's fault sequence identically.
func TestDeterminismUnderPartition(t *testing.T) {
	run := func() (map[msg.CallID]int, Stats) {
		n := New(clock.NewReal(), Params{Seed: 11, LossProb: 0.25, DupProb: 0.25})
		defer n.Stop()
		a, _ := attach(t, n, 1)
		_, cb := attach(t, n, 2)
		for i := 0; i < 100; i++ {
			a.Push(2, call(msg.CallID(i)))
		}
		n.Partition(1, 2, true)
		for i := 100; i < 150; i++ {
			a.Push(2, call(msg.CallID(i))) // all blocked, no RNG consumed
		}
		n.Partition(1, 2, false)
		for i := 150; i < 250; i++ {
			a.Push(2, call(msg.CallID(i)))
		}
		n.Quiesce()
		return outcomes(cb), n.Stats()
	}
	o1, st1 := run()
	o2, st2 := run()
	if st1 != st2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", st1, st2)
	}
	if !sameOutcomes(o1, o2) {
		t.Fatal("same seed, different decisions across a partition cycle")
	}
	if st1.Partition != 50 {
		t.Fatalf("partition drops = %d, want 50", st1.Partition)
	}
	for i := 100; i < 150; i++ {
		if o1[msg.CallID(i)] != 0 {
			t.Fatalf("message %d delivered through a partition", i)
		}
	}
}

// TestDeterminismUnderOneWayPartition checks the directed variant: blocking
// 1→2 must not consume randomness on — or otherwise perturb — the reverse
// link 2→1.
func TestDeterminismUnderOneWayPartition(t *testing.T) {
	run := func(block bool) (map[msg.CallID]int, Stats) {
		n := New(clock.NewReal(), Params{Seed: 13, LossProb: 0.3, DupProb: 0.1})
		defer n.Stop()
		a, ca := attach(t, n, 1)
		b, _ := attach(t, n, 2)
		if block {
			n.PartitionOneWay(1, 2, true)
		}
		for i := 0; i < 200; i++ {
			a.Push(2, call(msg.CallID(i)))      // blocked when block is set
			b.Push(1, call(msg.CallID(1000+i))) // always open
		}
		n.Quiesce()
		return outcomes(ca), n.Stats()
	}
	open, stOpen := run(false)
	blocked, stBlocked := run(true)
	// The open direction's fault sequence is identical whether or not the
	// opposite direction is blocked.
	if !sameOutcomes(open, blocked) {
		t.Fatal("blocking 1→2 changed the fault sequence on 2→1")
	}
	if stBlocked.Partition != 200 {
		t.Fatalf("one-way partition drops = %d, want 200", stBlocked.Partition)
	}
	if stOpen.Partition != 0 {
		t.Fatalf("unexpected partition drops in open run: %d", stOpen.Partition)
	}
}
