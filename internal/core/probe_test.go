package core

import (
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

// probedNode builds a server with probing Terminate Orphan on a sim clock.
func probedNode(t *testing.T, net *memNet, clk *clock.Sim) (*testNode, *gateServer) {
	t.Helper()
	gate := newGateServer()
	n := addNode(t, net, 1, nodeOpts{server: gate, clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&TerminateOrphan{ProbeInterval: 10 * time.Millisecond, ProbeMisses: 2})
	return n, gate
}

func TestProbeKillsSilentClient(t *testing.T) {
	clk := clock.NewSim()
	net := newMemNet()
	net.async = true
	n, gate := probedNode(t, net, clk)
	group := msg.NewGroup(1)

	// A call from client 100 starts executing; the client then goes
	// silent (no node 100 is attached, so probes go unanswered).
	go n.fw.HandleNet(callMsg(100, mkID(1, 1), 1, group, "work"))
	<-gate.entered

	// Three probe intervals: probes at t=10,20 count misses 1,2; at t=30
	// the threshold (2) is exceeded and the computation is killed.
	for i := 0; i < 4; i++ {
		clk.Advance(10 * time.Millisecond)
		net.wait()
	}
	waitUntil(t, func() bool { return len(gate.killedTags()) == 1 })
	if got := gate.killedTags(); got[0] != "work" {
		t.Fatalf("killed %v", got)
	}
	if probes := net.countSent(msg.OpProbe, 100); probes < 2 {
		t.Fatalf("probes sent = %d, want >= 2", probes)
	}
	net.wait()
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("killed call left a record")
	}
}

func TestProbeAckKeepsClientAlive(t *testing.T) {
	clk := clock.NewSim()
	net := newMemNet()
	net.async = true
	n, gate := probedNode(t, net, clk)

	// The client node answers probes (its own Terminate Orphan registers
	// the responder).
	addNode(t, net, 100, nodeOpts{clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&TerminateOrphan{ProbeInterval: 10 * time.Millisecond, ProbeMisses: 2})

	group := msg.NewGroup(1)
	go n.fw.HandleNet(callMsg(100, mkID(1, 1), 1, group, "work"))
	<-gate.entered

	// Many probe rounds: the live client acks each, so no kill.
	for i := 0; i < 10; i++ {
		clk.Advance(10 * time.Millisecond)
		net.wait()
	}
	if got := gate.killedTags(); len(got) != 0 {
		t.Fatalf("live client's computation killed: %v", got)
	}
	if acks := net.countSent(msg.OpProbeAck, 1); acks == 0 {
		t.Fatal("no probe acks observed")
	}

	gate.release <- struct{}{}
	waitUntil(t, func() bool { return len(gate.completed()) == 1 })
	net.wait()
}

func TestProbeStopsWhenNoWorkPending(t *testing.T) {
	clk := clock.NewSim()
	net := newMemNet()
	n, _ := probedNode(t, net, clk)
	_ = n

	// No client work at all: intervals pass, no probes are sent.
	for i := 0; i < 5; i++ {
		clk.Advance(10 * time.Millisecond)
	}
	if probes := net.countSent(msg.OpProbe, 0); probes != 0 {
		t.Fatalf("probes sent with no pending work: %d", probes)
	}
}
