package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
)

// TestConcurrentClientsUnderLoss drives many client goroutines through one
// framework against a lossy asynchronous transport, with cross-record Tx
// sweeps (Acceptance's failure sweep, Terminate Orphan's incarnation kill
// sweep) racing the per-call shard traffic. It is the scoped table layer's
// -race workout: every path — WithClient/WithServer on the hot path,
// EachClient from the retransmitter, ClientTx/ServerTx from the sweeps, and
// the Take* ownership transfers on completion — runs concurrently.
func TestConcurrentClientsUnderLoss(t *testing.T) {
	const (
		goroutines = 8
		callsEach  = 20
		lossPct    = 20
	)

	net := newMemNet()
	net.async = true

	// Deterministic loss of Call/Reply traffic; retransmission recovers it.
	var (
		lmu sync.Mutex
		rng = rand.New(rand.NewSource(42))
	)
	net.setHook(func(_ msg.ProcID, m *msg.NetMsg) bool {
		if m.Type != msg.OpCall && m.Type != msg.OpReply {
			return false
		}
		lmu.Lock()
		defer lmu.Unlock()
		return rng.Intn(100) < lossPct
	})

	group := msg.NewGroup(1, 2)
	protos := func() []MicroProtocol {
		return []MicroProtocol{
			&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 2}, &Collation{},
			&ReliableCommunication{RetransTimeout: 2 * time.Millisecond},
			&UniqueExecution{}, &TerminateOrphan{},
		}
	}
	srv1 := addNode(t, net, 1, nodeOpts{server: echoServer()}, protos()...)
	addNode(t, net, 2, nodeOpts{server: echoServer()}, protos()...)
	client := addNode(t, net, 100, nodeOpts{}, protos()...)
	client.fw.Start() // exercise the immutable-after-start regime too

	var wg sync.WaitGroup
	errs := make(chan error, goroutines+2)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				payload := fmt.Sprintf("g%d-c%d", g, i)
				um := client.fw.Call(1, []byte(payload), group)
				if um.Status != msg.StatusOK {
					errs <- fmt.Errorf("call %s: status %v", payload, um.Status)
					return
				}
				if string(um.Args) != "r:"+payload {
					errs <- fmt.Errorf("call %s: reply %q", payload, um.Args)
					return
				}
			}
		}(g)
	}

	// Acceptance's failure sweep holds every client shard; a failure of a
	// process outside the group must not complete (or corrupt) any call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			client.bus.Trigger(event.MembershipChange,
				member.Change{Kind: member.Failure, Who: 99})
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Terminate Orphan's incarnation detection: a burst of calls from a
	// fake client followed by a newer incarnation forces the ServerTx kill
	// sweep at server 1 while real calls are in flight there.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 10; round++ {
			for i := 0; i < 5; i++ {
				inc := msg.Incarnation(round + 1)
				id := msg.CallID(int64(inc)<<32 | int64(i+1))
				srv1.fw.HandleNet(callMsg(200, id, inc, msg.NewGroup(1), "orphan"))
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	net.wait()

	if n := client.fw.PendingCalls(); n != 0 {
		t.Fatalf("%d client records leaked", n)
	}
}
