package core

import (
	"sync"
	"testing"

	"mrpc/internal/clock"
	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// memNet is a deterministic in-memory transport for micro-protocol tests:
// by default it delivers synchronously on the sender's goroutine (so a test
// observes a complete causal chain from one call), and can be switched to
// asynchronous delivery for concurrency tests. A hook may inspect and
// suppress individual deliveries.
type memNet struct {
	mu       sync.Mutex
	handlers map[msg.ProcID]func(*msg.NetMsg)
	hook     func(to msg.ProcID, m *msg.NetMsg) bool // true = drop
	sent     []sentRec
	async    bool
	wg       sync.WaitGroup
}

type sentRec struct {
	To msg.ProcID
	M  *msg.NetMsg
}

func newMemNet() *memNet {
	return &memNet{handlers: make(map[msg.ProcID]func(*msg.NetMsg))}
}

func (n *memNet) setHook(h func(to msg.ProcID, m *msg.NetMsg) bool) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// sentLog returns a snapshot of every send attempted (including dropped).
func (n *memNet) sentLog() []sentRec {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]sentRec(nil), n.sent...)
}

// countSent counts sends of the given type to the given destination
// (to == 0 matches any destination).
func (n *memNet) countSent(typ msg.NetOp, to msg.ProcID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, s := range n.sent {
		if s.M.Type == typ && (to == 0 || s.To == to) {
			count++
		}
	}
	return count
}

func (n *memNet) deliver(to msg.ProcID, m *msg.NetMsg) {
	c := m.Clone()
	n.mu.Lock()
	n.sent = append(n.sent, sentRec{To: to, M: c})
	hook := n.hook
	h := n.handlers[to]
	async := n.async
	n.mu.Unlock()

	if hook != nil && hook(to, c) {
		return
	}
	if h == nil {
		return
	}
	if async {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			h(c.Clone())
		}()
		return
	}
	h(c.Clone())
}

// wait blocks until all asynchronous deliveries have been handled.
func (n *memNet) wait() { n.wg.Wait() }

type memEP struct {
	n *memNet
}

var _ Transport = memEP{}

func (e memEP) Push(to msg.ProcID, m *msg.NetMsg) { e.n.deliver(to, m) }

func (e memEP) Multicast(group msg.Group, m *msg.NetMsg) {
	for _, to := range group {
		e.n.deliver(to, m)
	}
}

// testNode bundles one framework with its plumbing.
type testNode struct {
	fw   *Framework
	site *proc.Site
	bus  *event.Bus
}

type nodeOpts struct {
	server     Server
	membership member.Service
	clk        clock.Clock
}

// addNode attaches a framework for process id to the net with the given
// micro-protocols.
func addNode(t *testing.T, net *memNet, id msg.ProcID, opts nodeOpts, protos ...MicroProtocol) *testNode {
	t.Helper()
	if opts.clk == nil {
		opts.clk = clock.NewReal()
	}
	site := proc.NewSite(id)
	bus := event.New(opts.clk)
	fw, err := NewFramework(Options{
		Site:       site,
		Bus:        bus,
		Net:        memEP{n: net},
		Server:     opts.server,
		Membership: opts.membership,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range protos {
		if err := p.Attach(fw); err != nil {
			t.Fatalf("attach %s: %v", p.Name(), err)
		}
	}
	net.mu.Lock()
	net.handlers[id] = fw.HandleNet
	net.mu.Unlock()
	t.Cleanup(fw.Close)
	return &testNode{fw: fw, site: site, bus: bus}
}

// echoServer returns its arguments with a prefix.
func echoServer() Server {
	return ServerFunc(func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		return append([]byte("r:"), args...)
	})
}

// recordingServer logs executed payloads.
type recordingServer struct {
	mu  sync.Mutex
	log []string
}

func (r *recordingServer) Pop(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
	r.mu.Lock()
	r.log = append(r.log, string(args))
	r.mu.Unlock()
	return args
}

func (r *recordingServer) executed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}

// gateServer blocks each execution until released, for concurrency and
// orphan tests. It honours cooperative kill.
type gateServer struct {
	entered chan string
	release chan struct{}

	mu     sync.Mutex
	done   []string
	killed []string
}

func newGateServer() *gateServer {
	return &gateServer{
		entered: make(chan string, 64),
		release: make(chan struct{}, 64),
	}
}

func (g *gateServer) Pop(th *proc.Thread, _ msg.OpID, args []byte) []byte {
	tag := string(args)
	g.entered <- tag
	if th != nil {
		select {
		case <-g.release:
		case <-th.Killed():
			g.mu.Lock()
			g.killed = append(g.killed, tag)
			g.mu.Unlock()
			return nil
		}
	} else {
		<-g.release
	}
	g.mu.Lock()
	g.done = append(g.done, tag)
	g.mu.Unlock()
	return args
}

func (g *gateServer) completed() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.done...)
}

func (g *gateServer) killedTags() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.killed...)
}

// minimalClient returns the client-side micro-protocols of the minimal
// functional set with acceptance k.
func minimalClient(k int) []MicroProtocol {
	return []MicroProtocol{
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: k}, &Collation{},
	}
}

// callMsg builds a Call message for direct injection at a server.
func callMsg(client msg.ProcID, id msg.CallID, inc msg.Incarnation, group msg.Group, payload string) *msg.NetMsg {
	return &msg.NetMsg{
		Type:   msg.OpCall,
		ID:     id,
		Client: client,
		Op:     1,
		Args:   []byte(payload),
		Server: group,
		Sender: client,
		Inc:    inc,
	}
}
