package core

import (
	"sync"
	"testing"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/stable"
)

// deltaState is a DeltaCheckpointable key-value map that tracks dirty keys.
type deltaState struct {
	mu    sync.Mutex
	data  map[string]string
	dirty map[string]bool
}

func newDeltaState() *deltaState {
	return &deltaState{data: make(map[string]string), dirty: make(map[string]bool)}
}

func (d *deltaState) set(k, v string) {
	d.mu.Lock()
	d.data[k] = v
	d.dirty[k] = true
	d.mu.Unlock()
}

func (d *deltaState) get(k string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.data[k]
}

func encodeKV(m map[string]string) []byte {
	var out []byte
	for k, v := range m {
		out = append(out, byte(len(k)))
		out = append(out, k...)
		out = append(out, byte(len(v)))
		out = append(out, v...)
	}
	return out
}

func decodeKV(b []byte) map[string]string {
	m := make(map[string]string)
	for i := 0; i < len(b); {
		kl := int(b[i])
		k := string(b[i+1 : i+1+kl])
		i += 1 + kl
		vl := int(b[i])
		v := string(b[i+1 : i+1+vl])
		i += 1 + vl
		m[k] = v
	}
	return m
}

func (d *deltaState) Snapshot() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = make(map[string]bool) // a full snapshot subsumes pending deltas
	return encodeKV(d.data)
}

func (d *deltaState) Restore(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data = decodeKV(data)
	d.dirty = make(map[string]bool)
	return nil
}

func (d *deltaState) Delta() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	changed := make(map[string]string, len(d.dirty))
	for k := range d.dirty {
		changed[k] = d.data[k]
	}
	d.dirty = make(map[string]bool)
	return encodeKV(changed)
}

func (d *deltaState) ApplyDelta(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for k, v := range decodeKV(data) {
		d.data[k] = v
	}
	return nil
}

func deltaAtomicNode(t *testing.T, compactEvery int) (*testNode, *deltaState, *stable.Store, *stable.Log) {
	t.Helper()
	net := newMemNet()
	store := stable.NewStore(clock.NewReal(), 0)
	log := &stable.Log{}
	state := newDeltaState()

	srv := ServerFunc(func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		kv := decodeKV(args)
		for k, v := range kv {
			state.set(k, v)
		}
		return args
	})
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&SerialExecution{},
		&AtomicExecution{Store: store, State: state, Deltas: true, Log: log, CompactEvery: compactEvery})
	return n, state, store, log
}

func putCall(id msg.CallID, k, v string) *msg.NetMsg {
	return callMsg(100, id, 1, msg.NewGroup(1), string(encodeKV(map[string]string{k: v})))
}

func TestAtomicDeltaCheckpointChain(t *testing.T) {
	n, state, store, log := deltaAtomicNode(t, 100)

	n.fw.HandleNet(putCall(1, "a", "1")) // first checkpoint: full snapshot
	n.fw.HandleNet(putCall(2, "b", "2")) // delta
	n.fw.HandleNet(putCall(3, "a", "3")) // delta
	if got := log.DeltaCount(); got != 2 {
		t.Fatalf("delta count = %d, want 2 (base + 2 deltas)", got)
	}
	// Deltas are much smaller than snapshots would be: each wrote one key.
	if store.Writes() != 3 {
		t.Fatalf("writes = %d", store.Writes())
	}

	// Crash: perturb the volatile state, then recover from the chain.
	state.set("a", "garbage")
	state.set("b", "garbage")
	n.site.Crash()
	n.site.Recover()
	n.fw.Recover()
	if state.get("a") != "3" || state.get("b") != "2" {
		t.Fatalf("state after chain recovery: a=%q b=%q", state.get("a"), state.get("b"))
	}
}

func TestAtomicDeltaCompaction(t *testing.T) {
	n, state, store, log := deltaAtomicNode(t, 2)

	for i, kv := range []struct{ k, v string }{
		{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"},
	} {
		n.fw.HandleNet(putCall(msg.CallID(i+1), kv.k, kv.v))
	}
	// Chain: full(a) ; delta(b) ; delta(c) ; compact -> full snapshot.
	if got := log.DeltaCount(); got != 0 {
		t.Fatalf("delta count after compaction = %d, want 0", got)
	}
	// Superseded chain members were released: only the live chain remains.
	base, ok, deltas := log.Chain()
	if !ok || len(deltas) != 0 {
		t.Fatalf("chain = (%v, %v, %v)", base, ok, deltas)
	}
	if _, err := store.Load(base); err != nil {
		t.Fatalf("live base unreadable: %v", err)
	}

	state.set("a", "garbage")
	n.site.Crash()
	n.site.Recover()
	n.fw.Recover()
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"} {
		if got := state.get(k); got != want {
			t.Fatalf("%s = %q, want %q", k, got, want)
		}
	}
}

func TestAtomicDeltaRequiresCapableState(t *testing.T) {
	net := newMemNet()
	store := stable.NewStore(clock.NewReal(), 0)
	fwOpts := nodeOpts{server: echoServer()}
	n := addNode(t, net, 1, fwOpts, &RPCMain{})
	// checkpointState implements Checkpointable but not DeltaCheckpointable.
	err := (&AtomicExecution{
		Store: store, State: &checkpointState{}, Deltas: true, Log: &stable.Log{},
	}).Attach(n.fw)
	if err == nil {
		t.Fatal("delta mode accepted a non-delta state")
	}
	err = (&AtomicExecution{Store: store, State: newDeltaState(), Deltas: true}).Attach(n.fw)
	if err == nil {
		t.Fatal("delta mode accepted a nil log")
	}
}
