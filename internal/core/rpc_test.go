package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

func TestSyncCallRoundTrip(t *testing.T) {
	net := newMemNet()
	addNode(t, net, 1, nodeOpts{server: echoServer()},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	client := addNode(t, net, 100, nodeOpts{}, minimalClient(1)...)

	um := client.fw.Call(1, []byte("hi"), msg.NewGroup(1))
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v, want OK", um.Status)
	}
	if string(um.Args) != "r:hi" {
		t.Fatalf("reply = %q", um.Args)
	}
	if client.fw.PendingCalls() != 0 {
		t.Fatal("client record not collected")
	}
}

func TestCallIDsEmbedIncarnation(t *testing.T) {
	net := newMemNet()
	client := addNode(t, net, 100, nodeOpts{}, minimalClient(1)...)

	rec := client.fw.NewClientRec(1, nil, msg.NewGroup(1), nil)
	if rec.ID>>32 != 1 {
		t.Fatalf("call id %d does not embed incarnation 1", rec.ID)
	}
	client.site.Crash()
	client.site.Recover()
	client.fw.Recover()
	rec2 := client.fw.NewClientRec(1, nil, msg.NewGroup(1), nil)
	if rec2.ID>>32 != 2 {
		t.Fatalf("post-recovery call id %d does not embed incarnation 2", rec2.ID)
	}
}

func TestAsynchronousCall(t *testing.T) {
	net := newMemNet()
	net.async = true
	gate := newGateServer()
	addNode(t, net, 1, nodeOpts{server: gate},
		&RPCMain{}, &AsynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	client := addNode(t, net, 100, nodeOpts{},
		&RPCMain{}, &AsynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})

	um := client.fw.Call(1, []byte("work"), msg.NewGroup(1))
	if um.Status != msg.StatusWaiting {
		t.Fatalf("async issue returned status %v, want WAITING", um.Status)
	}
	id := um.ID

	<-gate.entered
	gate.release <- struct{}{}

	res := client.fw.Request(id)
	if res.Status != msg.StatusOK || string(res.Args) != "work" {
		t.Fatalf("collected %v %q", res.Status, res.Args)
	}
	// A second Request for the same id finds nothing.
	res2 := client.fw.Request(id)
	if res2.Status != msg.StatusAborted {
		t.Fatalf("re-collect status = %v, want ABORTED", res2.Status)
	}
	net.wait()
}

func TestCollationFoldsEachReplyOnce(t *testing.T) {
	net := newMemNet()
	group := msg.NewGroup(1, 2, 3)
	for _, id := range group {
		id := id
		addNode(t, net, id, nodeOpts{server: ServerFunc(
			func(_ *proc.Thread, _ msg.OpID, _ []byte) []byte {
				return []byte{byte(id)}
			})},
			&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	}
	concat := func(accum, reply []byte) []byte { return append(accum, reply...) }
	client := addNode(t, net, 100, nodeOpts{},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: AcceptAll},
		&Collation{Func: concat, Init: nil})

	um := client.fw.Call(1, nil, group)
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v", um.Status)
	}
	if len(um.Args) != 3 {
		t.Fatalf("collated %d replies, want 3: %v", len(um.Args), um.Args)
	}
	for _, id := range group {
		if !bytes.Contains(um.Args, []byte{byte(id)}) {
			t.Fatalf("reply of server %d missing from %v", id, um.Args)
		}
	}
}

func TestAcceptanceKStopsCollation(t *testing.T) {
	net := newMemNet()
	group := msg.NewGroup(1, 2, 3)
	for _, id := range group {
		addNode(t, net, id, nodeOpts{server: echoServer()},
			&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	}
	concat := func(accum, reply []byte) []byte { return append(accum, 'x') }
	client := addNode(t, net, 100, nodeOpts{},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 2},
		&Collation{Func: concat})

	um := client.fw.Call(1, nil, group)
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v", um.Status)
	}
	// Synchronous delivery: servers 1 and 2 complete the call; server 3's
	// reply arrives after completion and must be filtered before collation.
	if got := len(um.Args); got != 2 {
		t.Fatalf("collation ran %d times, want exactly 2 (acceptance k=2)", got)
	}
}

func TestAcceptanceSkipsKnownDownMembers(t *testing.T) {
	net := newMemNet()
	oracle := member.NewOracle()
	group := msg.NewGroup(1, 2)
	addNode(t, net, 1, nodeOpts{server: echoServer(), membership: oracle},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: AcceptAll}, &Collation{})
	// Server 2 exists but is already known failed.
	client := addNode(t, net, 100, nodeOpts{membership: oracle},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: AcceptAll}, &Collation{})
	oracle.Fail(2)

	um := client.fw.Call(1, []byte("x"), group)
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v; call should complete without the failed member", um.Status)
	}
}

func TestAcceptanceCompletesOnMembershipFailure(t *testing.T) {
	net := newMemNet()
	oracle := member.NewOracle()
	group := msg.NewGroup(1, 2)
	addNode(t, net, 1, nodeOpts{server: echoServer(), membership: oracle},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: AcceptAll}, &Collation{})
	// Server 2's deliveries are dropped: it will never reply.
	net.setHook(func(to msg.ProcID, m *msg.NetMsg) bool { return to == 2 })
	client := addNode(t, net, 100, nodeOpts{membership: oracle},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: AcceptAll}, &Collation{})

	done := make(chan *msg.UserMsg, 1)
	go func() { done <- client.fw.Call(1, []byte("x"), group) }()
	select {
	case <-done:
		t.Fatal("call completed although member 2 never replied")
	case <-time.After(20 * time.Millisecond):
	}
	oracle.Fail(2)
	select {
	case um := <-done:
		if um.Status != msg.StatusOK {
			t.Fatalf("status = %v", um.Status)
		}
	case <-time.After(time.Second):
		t.Fatal("membership failure did not complete the call")
	}
}

func TestAcceptanceAllMembersDownCompletesVacuously(t *testing.T) {
	net := newMemNet()
	oracle := member.NewOracle()
	oracle.Fail(1)
	client := addNode(t, net, 100, nodeOpts{membership: oracle},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	um := client.fw.Call(1, nil, msg.NewGroup(1))
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v; a call to an all-failed group must not hang", um.Status)
	}
}

func TestBoundedTerminationTimesOut(t *testing.T) {
	clk := clock.NewSim()
	net := newMemNet()
	// No server attached: the call can never complete.
	client := addNode(t, net, 100, nodeOpts{clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&BoundedTermination{TimeBound: 50 * time.Millisecond})

	done := make(chan *msg.UserMsg, 1)
	go func() { done <- client.fw.Call(1, nil, msg.NewGroup(1)) }()
	waitForWaiters(t, client)
	clk.Advance(49 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("call timed out before the bound")
	default:
	}
	clk.Advance(2 * time.Millisecond)
	select {
	case um := <-done:
		if um.Status != msg.StatusTimeout {
			t.Fatalf("status = %v, want TIMEOUT", um.Status)
		}
	case <-time.After(time.Second):
		t.Fatal("bounded call did not terminate")
	}
}

// waitForWaiters blocks until the client framework has a pending call whose
// semaphore has a waiter (the call has been issued and the caller parked).
func waitForWaiters(t *testing.T, n *testNode) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for {
		waiting := false
		n.fw.EachClient(func(r *ClientRecord) {
			if r.Sem.Waiters() > 0 {
				waiting = true
			}
		})
		if waiting {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no parked caller appeared")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestReliableRetransmitsUntilReply(t *testing.T) {
	clk := clock.NewSim()
	net := newMemNet()
	net.async = true
	srv := &recordingServer{}
	addNode(t, net, 1, nodeOpts{server: srv, clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{})

	// Drop the first two Call deliveries.
	var mu sync.Mutex
	drops := 2
	net.setHook(func(to msg.ProcID, m *msg.NetMsg) bool {
		if m.Type != msg.OpCall {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if drops > 0 {
			drops--
			return true
		}
		return false
	})

	client := addNode(t, net, 100, nodeOpts{clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&ReliableCommunication{RetransTimeout: 10 * time.Millisecond},
		&UniqueExecution{})

	done := make(chan *msg.UserMsg, 1)
	go func() { done <- client.fw.Call(1, []byte("p"), msg.NewGroup(1)) }()
	waitForWaiters(t, client)

	for i := 0; i < 5; i++ {
		clk.Advance(10 * time.Millisecond)
		net.wait()
	}
	select {
	case um := <-done:
		if um.Status != msg.StatusOK {
			t.Fatalf("status = %v", um.Status)
		}
	case <-time.After(time.Second):
		t.Fatal("retransmission never delivered the call")
	}
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("executed %v, want exactly one execution", got)
	}

	// After the reply (which Reliable Communication treats as the ack),
	// further timer firings must not resend.
	sent := net.countSent(msg.OpCall, 1)
	clk.Advance(100 * time.Millisecond)
	net.wait()
	if got := net.countSent(msg.OpCall, 1); got != sent {
		t.Fatalf("retransmissions continued after reply: %d -> %d", sent, got)
	}
}

func TestReliablePendingRetransmitsUntilReply(t *testing.T) {
	// While a call is pending, a receipt acknowledgement alone must NOT
	// stop retransmission: the retransmitted call is also how a lost
	// reply is recovered (deviation D11).
	clk := clock.NewSim()
	net := newMemNet()
	client := addNode(t, net, 100, nodeOpts{clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&ReliableCommunication{RetransTimeout: 10 * time.Millisecond})

	done := make(chan *msg.UserMsg, 1)
	go func() { done <- client.fw.Call(1, nil, msg.NewGroup(1)) }()
	waitForWaiters(t, client)

	var id msg.CallID
	client.fw.EachClient(func(r *ClientRecord) { id = r.ID })

	client.fw.HandleNet(&msg.NetMsg{Type: msg.OpCallAck, Client: 100, Sender: 1, AckID: id})
	before := net.countSent(msg.OpCall, 1)
	clk.Advance(50 * time.Millisecond)
	if got := net.countSent(msg.OpCall, 1); got == before {
		t.Fatal("retransmission stopped on receipt-ack while the reply is still missing")
	}

	client.fw.Close()
	if um := <-done; um.Status != msg.StatusAborted {
		t.Fatalf("status = %v, want ABORTED after Close", um.Status)
	}
}

func TestReliableLingersUntilAllMembersReceive(t *testing.T) {
	// After the call completes via one member, retransmission continues
	// to a member that never received the call — until its receipt
	// acknowledgement arrives (deviation D11: the ordering protocols need
	// every member to receive every call).
	clk := clock.NewSim()
	net := newMemNet()
	net.async = true
	addNode(t, net, 1, nodeOpts{server: echoServer(), clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&ReliableCommunication{RetransTimeout: 10 * time.Millisecond})
	// Member 2's deliveries are dropped entirely.
	net.setHook(func(to msg.ProcID, m *msg.NetMsg) bool { return to == 2 })
	client := addNode(t, net, 100, nodeOpts{clk: clk},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&ReliableCommunication{RetransTimeout: 10 * time.Millisecond})

	um := client.fw.Call(1, []byte("x"), msg.NewGroup(1, 2))
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v", um.Status)
	}
	id := um.ID

	// The call is complete, yet lingering retransmission keeps offering
	// the call to member 2.
	before := net.countSent(msg.OpCall, 2)
	clk.Advance(50 * time.Millisecond)
	net.wait()
	after := net.countSent(msg.OpCall, 2)
	if after == before {
		t.Fatal("no lingering retransmission to the member that missed the call")
	}

	// Member 2 finally acknowledges receipt: lingering stops.
	client.fw.HandleNet(&msg.NetMsg{Type: msg.OpCallAck, Client: 100, Sender: 2, AckID: id})
	before = net.countSent(msg.OpCall, 2)
	clk.Advance(100 * time.Millisecond)
	net.wait()
	if got := net.countSent(msg.OpCall, 2); got != before {
		t.Fatalf("lingering continued after receipt: %d -> %d", before, got)
	}
}

func TestCloseAbortsPendingCalls(t *testing.T) {
	net := newMemNet()
	client := addNode(t, net, 100, nodeOpts{}, minimalClient(1)...)
	done := make(chan *msg.UserMsg, 1)
	go func() { done <- client.fw.Call(1, nil, msg.NewGroup(1)) }()
	waitForWaiters(t, client)
	client.fw.Close()
	select {
	case um := <-done:
		if um.Status != msg.StatusAborted {
			t.Fatalf("status = %v, want ABORTED", um.Status)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the pending call")
	}
}

func TestRecoveryUpdatesIncarnation(t *testing.T) {
	net := newMemNet()
	n := addNode(t, net, 1, nodeOpts{}, minimalClient(1)...)
	if n.fw.Inc() != 1 {
		t.Fatalf("inc = %d", n.fw.Inc())
	}
	n.site.Crash()
	n.site.Recover()
	n.fw.Recover()
	if n.fw.Inc() != 2 {
		t.Fatalf("inc after recovery = %d, want 2", n.fw.Inc())
	}
}

func TestForwardUpWaitsForAllHoldBits(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv}, &RPCMain{})
	n.fw.SetHold(HoldFIFO) // simulate an ordering property being configured

	key := msg.CallKey{Client: 100, ID: 1}
	n.fw.PutServerRec(&ServerRecord{Key: key, Op: 1, Args: []byte("x"), Client: 100})

	n.fw.ForwardUp(key, HoldMain)
	if got := srv.executed(); len(got) != 0 {
		t.Fatal("executed before all hold bits satisfied")
	}
	n.fw.ForwardUp(key, HoldFIFO)
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("executed %v, want one execution after both bits", got)
	}
	// Duplicate bit-setting must not re-execute.
	n.fw.ForwardUp(key, HoldFIFO)
	if got := srv.executed(); len(got) != 1 {
		t.Fatal("re-executed on duplicate ForwardUp")
	}
}

func TestMainDropsDuplicateStoreWhileInProgress(t *testing.T) {
	net := newMemNet()
	net.async = true
	gate := newGateServer()
	n := addNode(t, net, 1, nodeOpts{server: gate},
		&RPCMain{}) // no Unique Execution: Main's own guard is under test

	m := callMsg(100, 1, 1, msg.NewGroup(1), "a")
	go n.fw.HandleNet(m.Clone())
	<-gate.entered

	// Duplicate delivery while the original is executing.
	n.fw.HandleNet(m.Clone())
	if got := n.fw.PendingServerCalls(); got != 1 {
		t.Fatalf("pending server calls = %d, want 1 (duplicate dropped)", got)
	}
	gate.release <- struct{}{}
	deadline := time.Now().Add(time.Second)
	for len(gate.completed()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("completed %v, want one", gate.completed())
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := gate.completed(); len(got) != 1 {
		t.Fatalf("completed %v, want one", got)
	}
}

func TestUserMsgStatusOnUnknownRequest(t *testing.T) {
	net := newMemNet()
	client := addNode(t, net, 100, nodeOpts{},
		&RPCMain{}, &AsynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	um := client.fw.Request(12345)
	if um.Status != msg.StatusAborted {
		t.Fatalf("status = %v, want ABORTED for unknown id", um.Status)
	}
}

func TestEventRegistrationsMatchFigure3(t *testing.T) {
	net := newMemNet()
	n := addNode(t, net, 1, nodeOpts{server: echoServer()},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&ReliableCommunication{RetransTimeout: time.Hour},
		&UniqueExecution{})
	regs := n.bus.Registrations()

	netOrder := regs[event.MsgFromNetwork]
	var names []string
	for _, r := range netOrder {
		names = append(names, r.Name)
	}
	want := []string{
		"ReliableComm.msgFromNet",
		"UniqueExec.msgFromNet",
		"RPCMain.msgFromNet",
		"Acceptance.dedupe",
		"Collation.msgFromNet",
		"Acceptance.complete",
	}
	if len(names) != len(want) {
		t.Fatalf("network handlers %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("network handler order %v, want %v", names, want)
		}
	}
}
