package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/stable"
)

// mkID builds a call id the way a real client does (deviation D9): the
// incarnation in the upper bits, a dense sequence below.
func mkID(inc msg.Incarnation, seq int64) msg.CallID {
	return msg.CallID(int64(inc)<<32 | seq)
}

// retryUntilEntered redelivers m (modelling client retransmission) until
// the gate server admits an execution.
func retryUntilEntered(t *testing.T, n *testNode, gate *gateServer, m *msg.NetMsg) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		go n.fw.HandleNet(m.Clone())
		select {
		case tag := <-gate.entered:
			return tag
		case <-time.After(5 * time.Millisecond):
		}
	}
	t.Fatal("call never admitted")
	return ""
}

func TestInterferenceAvoidanceDefersNewGeneration(t *testing.T) {
	net := newMemNet()
	net.async = true
	gate := newGateServer()
	n := addNode(t, net, 1, nodeOpts{server: gate},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&InterferenceAvoidance{})
	group := msg.NewGroup(1)

	// Old-generation call starts executing.
	go n.fw.HandleNet(callMsg(100, mkID(1, 1), 1, group, "old"))
	<-gate.entered

	// New-generation call while the old is pending: dropped.
	newCall := callMsg(100, mkID(2, 1), 2, group, "new")
	n.fw.HandleNet(newCall.Clone())
	if got := n.fw.PendingServerCalls(); got != 1 {
		t.Fatalf("pending = %d, want 1 (new-generation call dropped)", got)
	}

	// More old-generation calls are also refused now (starvation
	// avoidance: the entry is in the draining state).
	n.fw.HandleNet(callMsg(100, mkID(1, 2), 1, group, "old-late"))
	if got := n.fw.PendingServerCalls(); got != 1 {
		t.Fatalf("pending = %d; old-generation call admitted while draining", got)
	}

	// Old generation drains; the retransmitted new-generation call is now
	// admitted and executes.
	gate.release <- struct{}{}
	waitUntil(t, func() bool { return len(gate.completed()) == 1 })

	retryUntilEntered(t, n, gate, newCall)
	gate.release <- struct{}{}
	waitUntil(t, func() bool { return len(gate.completed()) == 2 })
	if got := gate.completed(); got[1] != "new" {
		t.Fatalf("completed %v", got)
	}
	net.wait()
}

func TestInterferenceAvoidanceDropsOldGenerationAfterSwitch(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&InterferenceAvoidance{})
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, mkID(2, 1), 2, group, "gen2"))  // admits generation 2
	n.fw.HandleNet(callMsg(100, mkID(1, 9), 1, group, "stale")) // generation 1: dropped
	if got := srv.executed(); len(got) != 1 || got[0] != "gen2" {
		t.Fatalf("executed %v, want [gen2]", got)
	}
}

func TestInterferenceAvoidanceUncountsCancelledCalls(t *testing.T) {
	// A duplicate admitted (counted) by IA and then cancelled by Unique
	// Execution must be uncounted — otherwise the generation would never
	// drain (deviation D6).
	net := newMemNet()
	net.async = true
	gate := newGateServer()
	n := addNode(t, net, 1, nodeOpts{server: gate},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&InterferenceAvoidance{}, &UniqueExecution{})
	group := msg.NewGroup(1)

	m := callMsg(100, mkID(1, 1), 1, group, "c1")
	go n.fw.HandleNet(m.Clone())
	<-gate.entered
	// Duplicate: counted by IA at priority 15, cancelled by Unique at 20.
	n.fw.HandleNet(m.Clone())

	gate.release <- struct{}{}
	waitUntil(t, func() bool { return len(gate.completed()) == 1 })
	net.wait()

	// If the count leaked, the generation switch would be deferred
	// forever. Verify a new generation is admitted (retransmission covers
	// the window before IA's reply handler decrements the count).
	retryUntilEntered(t, n, gate, callMsg(100, mkID(2, 1), 2, group, "gen2"))
	gate.release <- struct{}{}
	waitUntil(t, func() bool { return len(gate.completed()) == 2 })
	net.wait()
}

func TestTerminateOrphanKillsOldGeneration(t *testing.T) {
	net := newMemNet()
	net.async = true
	gate := newGateServer()
	n := addNode(t, net, 1, nodeOpts{server: gate},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&TerminateOrphan{})
	group := msg.NewGroup(1)

	go n.fw.HandleNet(callMsg(100, mkID(1, 1), 1, group, "orphan"))
	<-gate.entered

	// New incarnation arrives: the orphan is killed, the new call runs.
	go n.fw.HandleNet(callMsg(100, mkID(2, 1), 2, group, "new"))
	<-gate.entered
	gate.release <- struct{}{}

	waitUntil(t, func() bool { return len(gate.killedTags()) == 1 })
	if got := gate.killedTags(); got[0] != "orphan" {
		t.Fatalf("killed %v", got)
	}
	waitUntil(t, func() bool { return len(gate.completed()) == 1 })
	if got := gate.completed(); got[0] != "new" {
		t.Fatalf("completed %v", got)
	}
	// The orphan's reply is suppressed: only the new call replied.
	net.wait()
	if got := net.countSent(msg.OpReply, 100); got != 1 {
		t.Fatalf("replies = %d, want 1 (orphan reply suppressed)", got)
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("records left behind")
	}
}

func TestTerminateOrphanDropsStaleIncarnationCalls(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&TerminateOrphan{})
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, mkID(3, 1), 3, group, "inc3"))
	n.fw.HandleNet(callMsg(100, mkID(2, 9), 2, group, "stale"))
	if got := srv.executed(); len(got) != 1 || got[0] != "inc3" {
		t.Fatalf("executed %v", got)
	}
}

func TestSerialExecutionOneAtATime(t *testing.T) {
	net := newMemNet()
	net.async = true

	var cur, max atomic.Int32
	srv := ServerFunc(func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return args
	})
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&SerialExecution{})
	group := msg.NewGroup(1)

	for i := 0; i < 16; i++ {
		n.fw.HandleNet(callMsg(100, msg.CallID(i+1), 1, group, fmt.Sprintf("c%d", i)))
	}
	net.wait()
	waitUntil(t, func() bool { return n.fw.PendingServerCalls() == 0 })
	if got := max.Load(); got != 1 {
		t.Fatalf("max concurrency = %d, want 1 under serial execution", got)
	}
	if !n.fw.SerialEnabled() {
		t.Fatal("SerialEnabled() = false")
	}
}

func TestConcurrentExecutionWithoutSerial(t *testing.T) {
	net := newMemNet()
	net.async = true
	gate := newGateServer()
	n := addNode(t, net, 1, nodeOpts{server: gate},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{})
	group := msg.NewGroup(1)

	go n.fw.HandleNet(callMsg(100, 1, 1, group, "a"))
	go n.fw.HandleNet(callMsg(100, 2, 1, group, "b"))
	// Both must enter concurrently (no serialization).
	<-gate.entered
	<-gate.entered
	gate.release <- struct{}{}
	gate.release <- struct{}{}
	waitUntil(t, func() bool { return len(gate.completed()) == 2 })
	net.wait()
}

func TestSerialExecutionWithTotalOrderNoDeadlock(t *testing.T) {
	// Regression test for the admission-order deadlock (deviation D3):
	// call A is admitted first but ordered second; with slot-at-delivery
	// semantics B would starve behind A forever.
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &SerialExecution{}, &TotalOrder{})
	group := msg.NewGroup(1, 3) // leader is 3, elsewhere

	n.fw.HandleNet(callMsg(100, 1, 1, group, "A")) // admitted first
	n.fw.HandleNet(callMsg(101, 1, 1, group, "B")) // admitted second
	// The leader ordered B before A.
	n.fw.HandleNet(&msg.NetMsg{Type: msg.OpOrder, ID: 1, Client: 101, Server: group, Sender: 3, Order: 1})
	n.fw.HandleNet(&msg.NetMsg{Type: msg.OpOrder, ID: 1, Client: 100, Server: group, Sender: 3, Order: 2})

	waitUntil(t, func() bool { return len(srv.executed()) == 2 })
	got := srv.executed()
	if got[0] != "B" || got[1] != "A" {
		t.Fatalf("executed %v, want [B A] (leader's order)", got)
	}
}

// checkpointState is a minimal Checkpointable for Atomic Execution tests.
type checkpointState struct {
	mu        sync.Mutex
	value     []byte
	snapshots int
	restores  int
}

func (c *checkpointState) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snapshots++
	return append([]byte(nil), c.value...)
}

func (c *checkpointState) Restore(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restores++
	c.value = append([]byte(nil), data...)
	return nil
}

func (c *checkpointState) set(v []byte) {
	c.mu.Lock()
	c.value = append([]byte(nil), v...)
	c.mu.Unlock()
}

func (c *checkpointState) get() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.value...)
}

func TestAtomicExecutionCheckpointsAndRestores(t *testing.T) {
	net := newMemNet()
	store := stable.NewStore(clock.NewReal(), 0)
	cell := &stable.Cell{}
	state := &checkpointState{}

	srv := ServerFunc(func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		state.set(args)
		return args
	})
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&SerialExecution{},
		&AtomicExecution{Store: store, Cell: cell, State: state})
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, 1, 1, group, "v1"))
	if _, ok := cell.Get(); !ok {
		t.Fatal("no checkpoint recorded after the call")
	}
	if store.Writes() != 1 {
		t.Fatalf("writes = %d", store.Writes())
	}

	n.fw.HandleNet(callMsg(100, 2, 1, group, "v2"))
	if store.Writes() != 2 {
		t.Fatalf("writes = %d", store.Writes())
	}
	// The superseded checkpoint is released: only one block remains.
	addr, _ := cell.Get()
	if _, err := store.Load(addr); err != nil {
		t.Fatalf("latest checkpoint unreadable: %v", err)
	}

	// Crash: volatile state perturbed, recovery restores the checkpoint.
	state.set([]byte("garbage"))
	n.site.Crash()
	n.site.Recover()
	n.fw.Recover()
	if got := string(state.get()); got != "v2" {
		t.Fatalf("state after recovery = %q, want v2", got)
	}
	if state.restores != 1 {
		t.Fatalf("restores = %d", state.restores)
	}
}

func TestAtomicExecutionRecoveryWithoutCheckpoint(t *testing.T) {
	net := newMemNet()
	store := stable.NewStore(clock.NewReal(), 0)
	cell := &stable.Cell{}
	state := &checkpointState{}
	n := addNode(t, net, 1, nodeOpts{server: echoServer()},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&SerialExecution{},
		&AtomicExecution{Store: store, Cell: cell, State: state})

	// Recovery before any checkpoint: must not panic or restore.
	n.fw.Recover()
	if state.restores != 0 {
		t.Fatalf("restores = %d, want 0", state.restores)
	}
}

func TestAtomicExecutionRequiresDeps(t *testing.T) {
	net := newMemNet()
	site := proc.NewSite(1)
	fw, err := NewFramework(Options{
		Site: site,
		Bus:  event.New(clock.NewReal()),
		Net:  memEP{n: net},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	if err := (&AtomicExecution{}).Attach(fw); err == nil {
		t.Fatal("AtomicExecution.Attach accepted nil deps")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
