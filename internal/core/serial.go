package core

// SerialExecution forces the server to process calls one at a time
// (§4.4.5), a prerequisite of the checkpoint-based Atomic Execution.
//
// Deviation D3: the paper wraps a semaphore around message delivery (and,
// as written, registers the P at the lowest priority — after the call has
// already executed). Acquiring the slot in admission order also deadlocks
// when an ordering micro-protocol schedules an earlier-admitted call after
// a later-admitted one: the slot's holder waits for a call that is stuck
// behind the slot. Here the property is instead enforced at execution time:
// ForwardUp queues eligible calls and executes them strictly one at a time
// in eligibility order, which composes with FIFO and Total Order.
type SerialExecution struct{}

var _ MicroProtocol = (*SerialExecution)(nil)

// Name implements MicroProtocol.
func (*SerialExecution) Name() string { return "Serial Execution" }

func (*SerialExecution) spec() any { return struct{}{} }

// Attach implements MicroProtocol.
func (*SerialExecution) Attach(fw *Framework) error {
	fw.EnableSerial()
	return nil
}

// Detach implements MicroProtocol. The serial drain queue is empty whenever
// Detach runs (only before Start or under the reconfiguration barrier, with
// no call executing), so flipping the flag off is safe.
func (*SerialExecution) Detach(fw *Framework) {
	fw.DisableSerial()
}
