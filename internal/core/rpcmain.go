package core

import (
	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// RPCMain handles the main control flow of an RPC on both the client and
// server sides (§4.4.1): it stores call requests in the tables, sends
// requests and replies over the network, and drives procedure execution via
// ForwardUp. It does not block user threads — that is the job of the
// call-semantics micro-protocols.
type RPCMain struct {
	b *Binding
}

var _ MicroProtocol = (*RPCMain)(nil)

// Name implements MicroProtocol.
func (*RPCMain) Name() string { return "RPC Main" }

func (*RPCMain) spec() any { return struct{}{} }

// Attach implements MicroProtocol.
func (r *RPCMain) Attach(fw *Framework) error {
	fw.SetHold(HoldMain)
	b := NewBinding(fw)
	r.b = b

	// Server side: a Call arriving from the network is recorded in sRPC and
	// offered to forward_up under the MAIN property. The cancellation
	// compensation is one long-lived closure reading its key from the
	// occurrence: capturing the key per event would allocate on every call.
	dropHeldCall := func(o *event.Occurrence) {
		fw.DropServerCall(o.Arg.(*NetEvent).Msg.Key())
	}
	b.On(event.MsgFromNetwork, "RPCMain.msgFromNet", PrioMain,
		func(o *event.Occurrence) {
			ev := o.Arg.(*NetEvent)
			m := ev.Msg
			if m.Type != msg.OpCall {
				return
			}
			key := m.Key()
			rec := getServerRec()
			*rec = ServerRecord{
				Key:    key,
				Op:     m.Op,
				Args:   m.Args,
				Server: m.Server,
				Client: m.Client,
				Inc:    m.Inc,
				Thread: ev.Thread,
				Msg:    m,
			}
			if !fw.PutServerRec(rec) {
				// Already held (e.g. a retransmission racing the original
				// while an ordering protocol defers it). Without Unique
				// Execution nothing else filters this; drop the copy to
				// keep the table consistent.
				releaseServerRec(rec)
				o.Cancel()
				return
			}
			o.OnCancel(dropHeldCall)
			fw.ForwardUp(key, HoldMain)
		})

	// Client side: a Call from the user protocol is recorded in pRPC,
	// announced via NEW_RPC_CALL, and multicast to the server group.
	b.On(event.CallFromUser, "RPCMain.msgFromUser", PrioCallMain,
		func(o *event.Occurrence) {
			um := o.Arg.(*msg.UserMsg)
			if um.Type != msg.UserCall {
				return
			}
			// The vector clock is stamped before the record is published so
			// the record is complete the moment other handlers can see it.
			var vc msg.VClock
			if fw.CausalEnabled() {
				vc = fw.StampOutgoingCall()
			}
			rec := fw.NewClientRec(um.Op, um.Args, um.Server, vc)
			um.ID = rec.ID
			um.Status = msg.StatusWaiting

			// The paper's one deliberate event cascade: announcing the new
			// call runs the NEW_RPC_CALL chain (Reliable Communication,
			// Bounded Termination, ...) to completion before the request is
			// multicast. NEW_RPC_CALL handlers never trigger CALL_FROM_USER,
			// so the recursion is one level deep by construction. The id
			// rides in a pooled box: boxing the int64 into the event
			// argument directly would allocate on every call.
			ib := callIDPool.Get().(*msg.CallID)
			*ib = rec.ID
			//lint:ignore handler-discipline NEW_RPC_CALL cascade is the paper's design; no cycle back into CALL_FROM_USER
			fw.Bus().Trigger(event.NewRPCCall, ib)
			callIDPool.Put(ib)

			call := &msg.NetMsg{
				Type:   msg.OpCall,
				ID:     rec.ID,
				Client: fw.Self(),
				Op:     rec.Op,
				Args:   um.Args,
				Server: rec.Server,
				Sender: fw.Self(),
				Inc:    fw.Inc(),
				VC:     rec.VC,
			}
			fw.Net().Multicast(rec.Server, call)
		})

	b.On(event.Recovery, "RPCMain.handleRecovery", event.DefaultPriority,
		func(o *event.Occurrence) {
			fw.SetInc(o.Arg.(msg.Incarnation))
		})

	return b.Err()
}

// Detach implements MicroProtocol.
func (r *RPCMain) Detach(fw *Framework) {
	r.b.Detach()
	fw.ClearHold(HoldMain)
}

// SynchronousCall implements synchronous RPC semantics (§4.4.2): the
// calling thread blocks on the call's semaphore until the call completes
// (accepted, timed out, or aborted), then collects the result. The handler
// only raises the UserMsg's Wait flag; Framework.CollectUserMsg does the
// blocking after dispatch — outside the reconfiguration barrier, so a
// parked caller never delays a swap.
type SynchronousCall struct {
	b *Binding
}

var _ MicroProtocol = (*SynchronousCall)(nil)

// Name implements MicroProtocol.
func (*SynchronousCall) Name() string { return "Synchronous Call" }

func (*SynchronousCall) spec() any { return struct{}{} }

// Attach implements MicroProtocol.
func (sc *SynchronousCall) Attach(fw *Framework) error {
	b := NewBinding(fw)
	sc.b = b
	// Default priority: runs after RPC Main has created the record and
	// sent the request.
	b.On(event.CallFromUser, "SynchronousCall.msgFromUser", event.DefaultPriority,
		func(o *event.Occurrence) {
			um := o.Arg.(*msg.UserMsg)
			if um.Type != msg.UserCall {
				return
			}
			um.Wait = fw.HasClient(um.ID)
		})
	// The synchronous composite normally has no uncollected results, but a
	// reconfiguration that switches the call mode can leave some behind
	// (issued asynchronously, completed, not yet requested when the swap
	// landed). Serving UserRequest here keeps those collectable (D14).
	b.On(event.CallFromUser, "SynchronousCall.request", event.DefaultPriority,
		collectRequest(fw))
	return b.Err()
}

// Detach implements MicroProtocol.
func (sc *SynchronousCall) Detach(*Framework) { sc.b.Detach() }

// AsynchronousCall implements asynchronous RPC semantics (§4.4.2): the
// caller is not blocked when the call is issued; it later retrieves the
// result with a Request message, blocking only then if the result is not
// yet available (again via the Wait flag, outside the barrier).
type AsynchronousCall struct {
	b *Binding
}

var _ MicroProtocol = (*AsynchronousCall)(nil)

// Name implements MicroProtocol.
func (*AsynchronousCall) Name() string { return "Asynchronous Call" }

func (*AsynchronousCall) spec() any { return struct{}{} }

// Attach implements MicroProtocol.
func (ac *AsynchronousCall) Attach(fw *Framework) error {
	b := NewBinding(fw)
	ac.b = b
	b.On(event.CallFromUser, "AsynchronousCall.msgFromUser", event.DefaultPriority,
		collectRequest(fw))
	return b.Err()
}

// collectRequest builds the UserRequest handler shared by both
// call-semantics micro-protocols: raise the Wait flag so the framework
// blocks until the outstanding call completes and surrenders its record to
// the requester. The asynchronous protocol registers it as its Request
// primitive; the synchronous one registers it so results left uncollected
// by a call-mode reconfiguration stay reachable.
func collectRequest(fw *Framework) func(*event.Occurrence) {
	return func(o *event.Occurrence) {
		um := o.Arg.(*msg.UserMsg)
		if um.Type != msg.UserRequest {
			return
		}
		if fw.HasClient(um.ID) {
			um.Wait = true
		} else {
			// Unknown or already-collected call.
			um.Status = msg.StatusAborted
		}
	}
}

// Detach implements MicroProtocol.
func (ac *AsynchronousCall) Detach(*Framework) { ac.b.Detach() }
