package core

import (
	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/sem"
)

// RPCMain handles the main control flow of an RPC on both the client and
// server sides (§4.4.1): it stores call requests in the tables, sends
// requests and replies over the network, and drives procedure execution via
// ForwardUp. It does not block user threads — that is the job of the
// call-semantics micro-protocols.
type RPCMain struct{}

var _ MicroProtocol = RPCMain{}

// Name implements MicroProtocol.
func (RPCMain) Name() string { return "RPC Main" }

// Attach implements MicroProtocol.
func (RPCMain) Attach(fw *Framework) error {
	fw.SetHold(HoldMain)

	// Server side: a Call arriving from the network is recorded in sRPC and
	// offered to forward_up under the MAIN property.
	if err := fw.Bus().Register(event.MsgFromNetwork, "RPCMain.msgFromNet", PrioMain,
		func(o *event.Occurrence) {
			ev := o.Arg.(*NetEvent)
			m := ev.Msg
			if m.Type != msg.OpCall {
				return
			}
			key := m.Key()
			rec := &ServerRecord{
				Key:    key,
				Op:     m.Op,
				Args:   m.Args,
				Server: m.Server,
				Client: m.Client,
				Inc:    m.Inc,
				Thread: ev.Thread,
			}
			if !fw.PutServerRec(rec) {
				// Already held (e.g. a retransmission racing the original
				// while an ordering protocol defers it). Without Unique
				// Execution nothing else filters this; drop the copy to
				// keep the table consistent.
				o.Cancel()
				return
			}
			o.OnCancel(func() { fw.DropServerCall(key) })
			fw.ForwardUp(key, HoldMain)
		}); err != nil {
		return err
	}

	// Client side: a Call from the user protocol is recorded in pRPC,
	// announced via NEW_RPC_CALL, and multicast to the server group.
	if err := fw.Bus().Register(event.CallFromUser, "RPCMain.msgFromUser", PrioCallMain,
		func(o *event.Occurrence) {
			um := o.Arg.(*msg.UserMsg)
			if um.Type != msg.UserCall {
				return
			}
			// The vector clock is stamped before the record is published so
			// the record is complete the moment other handlers can see it.
			var vc msg.VClock
			if fw.CausalEnabled() {
				vc = fw.StampOutgoingCall()
			}
			rec := fw.NewClientRec(um.Op, um.Args, um.Server, vc)
			um.ID = rec.ID
			um.Status = msg.StatusWaiting

			// The paper's one deliberate event cascade: announcing the new
			// call runs the NEW_RPC_CALL chain (Reliable Communication,
			// Bounded Termination, ...) to completion before the request is
			// multicast. NEW_RPC_CALL handlers never trigger CALL_FROM_USER,
			// so the recursion is one level deep by construction.
			//lint:ignore handler-discipline NEW_RPC_CALL cascade is the paper's design; no cycle back into CALL_FROM_USER
			fw.Bus().Trigger(event.NewRPCCall, rec.ID)

			call := &msg.NetMsg{
				Type:   msg.OpCall,
				ID:     rec.ID,
				Client: fw.Self(),
				Op:     rec.Op,
				Args:   um.Args,
				Server: rec.Server,
				Sender: fw.Self(),
				Inc:    fw.Inc(),
				VC:     rec.VC,
			}
			fw.Net().Multicast(rec.Server, call)
		}); err != nil {
		return err
	}

	return fw.Bus().Register(event.Recovery, "RPCMain.handleRecovery", event.DefaultPriority,
		func(o *event.Occurrence) {
			fw.SetInc(o.Arg.(msg.Incarnation))
		})
}

// SynchronousCall implements synchronous RPC semantics (§4.4.2): the
// calling thread blocks on the call's semaphore until the call completes
// (accepted, timed out, or aborted), then collects the result.
type SynchronousCall struct{}

var _ MicroProtocol = SynchronousCall{}

// Name implements MicroProtocol.
func (SynchronousCall) Name() string { return "Synchronous Call" }

// Attach implements MicroProtocol.
func (SynchronousCall) Attach(fw *Framework) error {
	// Default priority: runs after RPC Main has created the record and
	// sent the request.
	return fw.Bus().Register(event.CallFromUser, "SynchronousCall.msgFromUser", event.DefaultPriority,
		func(o *event.Occurrence) {
			um := o.Arg.(*msg.UserMsg)
			if um.Type != msg.UserCall {
				return
			}
			var s *sem.Sem
			fw.WithClient(um.ID, func(rec *ClientRecord) { s = rec.Sem })
			if s == nil {
				return
			}
			s.P()
			// Take transfers record ownership; the shard mutex pairing gives
			// the happens-before that makes the lock-free reads below safe.
			rec, ok := fw.TakeClient(um.ID)
			if !ok {
				return
			}
			um.Args = rec.Args
			um.Status = rec.Status
		})
}

// AsynchronousCall implements asynchronous RPC semantics (§4.4.2): the
// caller is not blocked when the call is issued; it later retrieves the
// result with a Request message, blocking only then if the result is not
// yet available.
type AsynchronousCall struct{}

var _ MicroProtocol = AsynchronousCall{}

// Name implements MicroProtocol.
func (AsynchronousCall) Name() string { return "Asynchronous Call" }

// Attach implements MicroProtocol.
func (AsynchronousCall) Attach(fw *Framework) error {
	return fw.Bus().Register(event.CallFromUser, "AsynchronousCall.msgFromUser", event.DefaultPriority,
		func(o *event.Occurrence) {
			um := o.Arg.(*msg.UserMsg)
			if um.Type != msg.UserRequest {
				return
			}
			var s *sem.Sem
			fw.WithClient(um.ID, func(rec *ClientRecord) { s = rec.Sem })
			if s == nil {
				// Unknown or already-collected call.
				um.Status = msg.StatusAborted
				return
			}
			s.P()
			rec, ok := fw.TakeClient(um.ID)
			if !ok {
				um.Status = msg.StatusAborted
				return
			}
			um.Args = rec.Args
			um.Status = rec.Status
			um.Op = rec.Op
		})
}
