package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// TerminateOrphan implements the second orphan-handling option (§4.4.7):
// orphans are killed as soon as they are detected. The paper names two
// detection approaches and both are implemented:
//
//  1. incarnation detection (always on): receiving a message from a newer
//     incarnation of a client proves the previous incarnation died, so
//     every thread still executing that client's old calls is killed and
//     its held calls dropped;
//  2. probing (enabled by ProbeInterval > 0): while a client has work in
//     progress the server probes it periodically; a client that misses
//     ProbeMisses consecutive probes is presumed crashed and its
//     computations are killed. A live client's composite answers probes
//     automatically (this micro-protocol registers the responder on both
//     sides, like every other micro-protocol in the symmetric composite).
//
// Deviation D5: Go threads are killed cooperatively — the thread token is
// marked killed, the execution slot and tables are cleaned up immediately,
// and the running procedure observes the kill at its next cancellation
// point; its reply is suppressed either way.
type TerminateOrphan struct {
	// ProbeInterval enables probing detection when positive.
	ProbeInterval time.Duration
	// ProbeMisses is how many consecutive unanswered probes declare the
	// client dead (default 3).
	ProbeMisses int
}

var _ MicroProtocol = TerminateOrphan{}

type toEntry struct {
	inc     msg.Incarnation
	threads map[int64]*proc.Thread
	missed  int // consecutive unanswered probes
}

// Name implements MicroProtocol.
func (TerminateOrphan) Name() string { return "Terminate Orphan" }

// Attach implements MicroProtocol.
func (to TerminateOrphan) Attach(fw *Framework) error {
	var (
		mu   sync.Mutex
		info = make(map[msg.ProcID]*toEntry)
	)
	if to.ProbeMisses <= 0 {
		to.ProbeMisses = 3
	}

	if err := fw.Bus().Register(event.MsgFromNetwork, "TerminateOrphan.msgFromNet", PrioOrphan,
		func(o *event.Occurrence) {
			ev := o.Arg.(*NetEvent)
			m := ev.Msg
			if m.Type != msg.OpCall || ev.Thread == nil {
				return
			}
			client := m.Client
			th := ev.Thread

			mu.Lock()
			ci, ok := info[client]
			if !ok {
				ci = &toEntry{inc: m.Inc, threads: make(map[int64]*proc.Thread)}
				info[client] = ci
			}
			switch {
			case ci.inc > m.Inc:
				// The call itself is an orphan of a dead incarnation.
				mu.Unlock()
				o.Cancel()
				return
			case ci.inc < m.Inc:
				// Newer incarnation detected: everything running for the
				// old one is an orphan. Kill it.
				orphans := ci.threads
				ci.inc = m.Inc
				ci.threads = map[int64]*proc.Thread{th.ID(): th}
				mu.Unlock()
				for _, t := range orphans {
					t.Kill()
				}
				fw.dropCallsOlderThan(client, m.Inc)
			default:
				ci.threads[th.ID()] = th
				mu.Unlock()
			}
			o.OnCancel(func() {
				mu.Lock()
				delete(ci.threads, th.ID())
				mu.Unlock()
			})
		}); err != nil {
		return err
	}

	if err := fw.Bus().Register(event.ReplyFromServer, "TerminateOrphan.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := o.Arg.(msg.CallKey)
			var th *proc.Thread
			fw.WithServer(key, func(rec *ServerRecord) { th = rec.Thread })
			if th == nil {
				return
			}
			mu.Lock()
			if ci, ok := info[key.Client]; ok {
				delete(ci.threads, th.ID())
			}
			mu.Unlock()
		}); err != nil {
		return err
	}

	// Probing detection (§4.4.7, second option).
	if err := fw.Bus().Register(event.MsgFromNetwork, "TerminateOrphan.probes", PrioOrphan,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpProbe:
				// Client side: prove liveness.
				fw.Net().Push(m.Sender, &msg.NetMsg{
					Type:   msg.OpProbeAck,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
				})
			case msg.OpProbeAck:
				mu.Lock()
				if ci, ok := info[m.Sender]; ok {
					ci.missed = 0
				}
				mu.Unlock()
			}
		}); err != nil {
		return err
	}
	if to.ProbeInterval <= 0 {
		return nil
	}
	var probe event.Handler
	probe = func(*event.Occurrence) {
		var (
			targets []msg.ProcID
			dead    []msg.ProcID
			orphans []*proc.Thread
		)
		mu.Lock()
		for client, ci := range info {
			if len(ci.threads) == 0 {
				ci.missed = 0
				continue
			}
			ci.missed++
			if ci.missed > to.ProbeMisses {
				// Presumed crashed: kill its computations. If the client
				// is in fact alive (false suspicion), its retransmissions
				// re-execute the calls later.
				for _, t := range ci.threads {
					orphans = append(orphans, t)
				}
				ci.threads = make(map[int64]*proc.Thread)
				ci.missed = 0
				dead = append(dead, client)
				continue
			}
			targets = append(targets, client)
		}
		mu.Unlock()
		for _, t := range orphans {
			t.Kill()
		}
		for _, client := range targets {
			fw.Net().Push(client, &msg.NetMsg{
				Type:   msg.OpProbe,
				Sender: fw.Self(),
				Inc:    fw.Inc(),
			})
		}
		for _, client := range dead {
			fw.dropCallsOlderThan(client, maxInc)
		}
		fw.Bus().RegisterTimeout("TerminateOrphan.probe", to.ProbeInterval, probe)
	}
	fw.Bus().RegisterTimeout("TerminateOrphan.probe", to.ProbeInterval, probe)
	return nil
}

// dropCallsOlderThan removes every held call of client with an incarnation
// older than inc, killing its thread and releasing its execution slot —
// the cleanup companion of Terminate Orphan's kill sweep.
func (fw *Framework) dropCallsOlderThan(client msg.ProcID, inc msg.Incarnation) {
	// The kill sweep must see one consistent snapshot of the client's held
	// calls — a call racing in from the dead incarnation must not slip
	// between shards — so it collects the keys under a full-table Tx.
	var keys []msg.CallKey
	fw.ServerTx(func(tx ServerTx) {
		tx.Each(func(r *ServerRecord) {
			if r.Client == client && r.Inc < inc {
				keys = append(keys, r.Key)
			}
		})
	})
	for _, k := range keys {
		fw.DropServerCall(k)
	}
}
