package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/trace"
)

// TerminateOrphan implements the second orphan-handling option (§4.4.7):
// orphans are killed as soon as they are detected. The paper names two
// detection approaches and both are implemented:
//
//  1. incarnation detection (always on): receiving a message from a newer
//     incarnation of a client proves the previous incarnation died, so
//     every thread still executing that client's old calls is killed and
//     its held calls dropped;
//  2. probing (enabled by ProbeInterval > 0): while a client has work in
//     progress the server probes it periodically; a client that misses
//     ProbeMisses consecutive probes is presumed crashed and its
//     computations are killed. A live client's composite answers probes
//     automatically (this micro-protocol registers the responder on both
//     sides, like every other micro-protocol in the symmetric composite).
//
// Deviation D5: Go threads are killed cooperatively — the thread token is
// marked killed, the execution slot and tables are cleaned up immediately,
// and the running procedure observes the kill at its next cancellation
// point; its reply is suppressed either way.
type TerminateOrphan struct {
	// ProbeInterval enables probing detection when positive.
	ProbeInterval time.Duration
	// ProbeMisses is how many consecutive unanswered probes declare the
	// client dead (default 3).
	ProbeMisses int

	b  *Binding
	mu sync.Mutex
	// info migrates across a probe-parameter swap so threads executing
	// old-generation calls remain killable by the successor instance.
	info map[msg.ProcID]*toEntry
}

var _ MicroProtocol = (*TerminateOrphan)(nil)
var _ Stateful = (*TerminateOrphan)(nil)

type toEntry struct {
	inc     msg.Incarnation
	threads map[int64]*proc.Thread
	missed  int // consecutive unanswered probes
}

// Name implements MicroProtocol.
func (*TerminateOrphan) Name() string { return "Terminate Orphan" }

func (to *TerminateOrphan) params() (time.Duration, int) {
	misses := to.ProbeMisses
	if misses <= 0 {
		misses = 3
	}
	return to.ProbeInterval, misses
}

func (to *TerminateOrphan) spec() any {
	interval, misses := to.params()
	return struct {
		interval time.Duration
		misses   int
	}{interval, misses}
}

// ExportState implements Stateful.
func (to *TerminateOrphan) ExportState() any {
	to.mu.Lock()
	defer to.mu.Unlock()
	return to.info
}

// ImportState implements Stateful.
func (to *TerminateOrphan) ImportState(state any) {
	to.mu.Lock()
	to.info = state.(map[msg.ProcID]*toEntry)
	to.mu.Unlock()
}

// Attach implements MicroProtocol.
func (to *TerminateOrphan) Attach(fw *Framework) error {
	probeInterval, probeMisses := to.params()
	b := NewBinding(fw)
	to.b = b
	to.info = make(map[msg.ProcID]*toEntry)

	b.On(event.MsgFromNetwork, "TerminateOrphan.msgFromNet", PrioOrphan,
		func(o *event.Occurrence) {
			ev := o.Arg.(*NetEvent)
			m := ev.Msg
			if m.Type != msg.OpCall || ev.Thread == nil {
				return
			}
			client := m.Client
			th := ev.Thread

			to.mu.Lock()
			ci, ok := to.info[client]
			if !ok {
				ci = &toEntry{inc: m.Inc, threads: make(map[int64]*proc.Thread)}
				to.info[client] = ci
			}
			switch {
			case ci.inc > m.Inc:
				// The call itself is an orphan of a dead incarnation.
				to.mu.Unlock()
				o.Cancel()
				return
			case ci.inc < m.Inc:
				// Newer incarnation detected: everything running for the
				// old one is an orphan. Kill it.
				orphans := ci.threads
				ci.inc = m.Inc
				ci.threads = map[int64]*proc.Thread{th.ID(): th}
				to.mu.Unlock()
				for _, t := range orphans {
					t.Kill()
				}
				fw.dropCallsOlderThan(client, m.Inc)
			default:
				ci.threads[th.ID()] = th
				to.mu.Unlock()
			}
			o.OnCancel(func(*event.Occurrence) {
				to.mu.Lock()
				delete(ci.threads, th.ID())
				to.mu.Unlock()
			})
		})

	b.On(event.ReplyFromServer, "TerminateOrphan.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := *o.Arg.(*msg.CallKey)
			var th *proc.Thread
			fw.WithServer(key, func(rec *ServerRecord) { th = rec.Thread })
			if th == nil {
				return
			}
			to.mu.Lock()
			if ci, ok := to.info[key.Client]; ok {
				delete(ci.threads, th.ID())
			}
			to.mu.Unlock()
		})

	// Probing detection (§4.4.7, second option).
	b.On(event.MsgFromNetwork, "TerminateOrphan.probes", PrioOrphan,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpProbe:
				// Client side: prove liveness.
				fw.Net().Push(m.Sender, &msg.NetMsg{
					Type:   msg.OpProbeAck,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
				})
			case msg.OpProbeAck:
				to.mu.Lock()
				if ci, ok := to.info[m.Sender]; ok {
					ci.missed = 0
				}
				to.mu.Unlock()
			}
		})
	if probeInterval <= 0 {
		return b.Err()
	}
	var probe event.Handler
	probe = func(*event.Occurrence) {
		var (
			targets []msg.ProcID
			dead    []msg.ProcID
			orphans []*proc.Thread
		)
		to.mu.Lock()
		for client, ci := range to.info {
			if len(ci.threads) == 0 {
				ci.missed = 0
				continue
			}
			ci.missed++
			if ci.missed > probeMisses {
				// Presumed crashed: kill its computations. If the client
				// is in fact alive (false suspicion), its retransmissions
				// re-execute the calls later.
				for _, t := range ci.threads {
					orphans = append(orphans, t)
				}
				ci.threads = make(map[int64]*proc.Thread)
				ci.missed = 0
				dead = append(dead, client)
				continue
			}
			targets = append(targets, client)
		}
		to.mu.Unlock()
		for _, t := range orphans {
			t.Kill()
		}
		for _, client := range targets {
			fw.Net().Push(client, &msg.NetMsg{
				Type:   msg.OpProbe,
				Sender: fw.Self(),
				Inc:    fw.Inc(),
			})
		}
		for _, client := range dead {
			fw.dropCallsOlderThan(client, maxInc)
		}
		b.After("TerminateOrphan.probe", probeInterval, probe)
	}
	b.After("TerminateOrphan.probe", probeInterval, probe)
	return b.Err()
}

// Detach implements MicroProtocol.
func (to *TerminateOrphan) Detach(*Framework) { to.b.Detach() }

// dropCallsOlderThan removes every held call of client with an incarnation
// older than inc, killing its thread and releasing its execution slot —
// the cleanup companion of Terminate Orphan's kill sweep.
func (fw *Framework) dropCallsOlderThan(client msg.ProcID, inc msg.Incarnation) {
	// The kill sweep must see one consistent snapshot of the client's held
	// calls — a call racing in from the dead incarnation must not slip
	// between shards — so it collects the keys under a full-table Tx.
	var keys []msg.CallKey
	fw.ServerTx(func(tx ServerTx) {
		tx.Each(func(r *ServerRecord) {
			if r.Client == client && r.Inc < inc {
				keys = append(keys, r.Key)
			}
		})
	})
	for _, k := range keys {
		// Emit the kill only when the drop actually landed: if the call's
		// execution won the race and took its own record, its reply is
		// legitimate and must not be flagged as an escaped orphan.
		if fw.DropServerCall(k) && fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KOrphanKilled, Client: k.Client, ID: k.ID})
		}
	}
}
