package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/sem"
)

// BoundedTermination guarantees that every call terminates within a
// specified time bound (§4.4.3): if the call has not been accepted by the
// deadline it returns to the client with status TIMEOUT.
type BoundedTermination struct {
	// TimeBound is the per-call deadline.
	TimeBound time.Duration
}

var _ MicroProtocol = BoundedTermination{}

// Name implements MicroProtocol.
func (BoundedTermination) Name() string { return "Bounded Termination" }

// Attach implements MicroProtocol.
func (b BoundedTermination) Attach(fw *Framework) error {
	if b.TimeBound <= 0 {
		b.TimeBound = time.Second
	}

	// The paper keeps an unbounded FIFO queue of call ids and registers
	// one TIMEOUT per call; the queue head always corresponds to the
	// oldest armed timeout, so one dequeue per firing is exactly the
	// paper's pairing.
	var (
		mu    sync.Mutex
		queue []msg.CallID
	)
	return fw.Bus().Register(event.NewRPCCall, "BoundedTerm.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := o.Arg.(msg.CallID)
			mu.Lock()
			queue = append(queue, id)
			mu.Unlock()
			fw.Bus().RegisterTimeout("BoundedTerm.handleTimeout", b.TimeBound,
				func(*event.Occurrence) {
					mu.Lock()
					if len(queue) == 0 {
						mu.Unlock()
						return
					}
					qid := queue[0]
					queue = queue[1:]
					mu.Unlock()
					fw.timeoutCall(qid)
				})
		})
}

// timeoutCall marks a still-pending call TIMEOUT and wakes its caller.
func (fw *Framework) timeoutCall(id msg.CallID) {
	var s *sem.Sem
	fw.WithClient(id, func(rec *ClientRecord) {
		if rec.Status == msg.StatusWaiting {
			rec.Status = msg.StatusTimeout
			s = rec.Sem
		}
	})
	if s != nil {
		s.V()
	}
}
