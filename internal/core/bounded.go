package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/sem"
	"mrpc/internal/trace"
)

// BoundedTermination guarantees that every call terminates within a
// specified time bound (§4.4.3): if the call has not been accepted by the
// deadline it returns to the client with status TIMEOUT.
type BoundedTermination struct {
	// TimeBound is the per-call deadline (default 1s).
	TimeBound time.Duration

	b  *Binding
	mu sync.Mutex
	// The paper keeps an unbounded FIFO queue of call ids and registers
	// one TIMEOUT per call; the queue head always corresponds to the
	// oldest armed timeout, so one dequeue per firing is exactly the
	// paper's pairing.
	queue []msg.CallID
}

var _ MicroProtocol = (*BoundedTermination)(nil)
var _ Stateful = (*BoundedTermination)(nil)

// Name implements MicroProtocol.
func (*BoundedTermination) Name() string { return "Bounded Termination" }

func (bt *BoundedTermination) bound() time.Duration {
	if bt.TimeBound <= 0 {
		return time.Second
	}
	return bt.TimeBound
}

func (bt *BoundedTermination) spec() any {
	return struct{ bound time.Duration }{bt.bound()}
}

// ExportState implements Stateful.
func (bt *BoundedTermination) ExportState() any {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.queue
}

// ImportState implements Stateful: the still-queued ids (calls whose old
// deadline had not fired at swap time) are re-armed under the new bound,
// preserving the one-timer-per-queued-id pairing. Completed calls among
// them are harmless — their timeout finds no waiting record and no-ops.
func (bt *BoundedTermination) ImportState(state any) {
	ids := state.([]msg.CallID)
	bt.mu.Lock()
	bt.queue = ids
	bt.mu.Unlock()
	for range ids {
		bt.arm()
	}
}

// arm schedules one deadline firing; each firing times out the queue head.
// Arming through the binding means a pending deadline dies with Detach
// instead of firing into a detached protocol.
func (bt *BoundedTermination) arm() {
	fw := bt.b.fw
	bt.b.After("BoundedTerm.handleTimeout", bt.bound(),
		func(*event.Occurrence) {
			bt.mu.Lock()
			if len(bt.queue) == 0 {
				bt.mu.Unlock()
				return
			}
			qid := bt.queue[0]
			bt.queue = bt.queue[1:]
			bt.mu.Unlock()
			fw.timeoutCall(qid)
		})
}

// Attach implements MicroProtocol.
func (bt *BoundedTermination) Attach(fw *Framework) error {
	b := NewBinding(fw)
	bt.b = b
	bt.queue = nil

	b.On(event.NewRPCCall, "BoundedTerm.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := *o.Arg.(*msg.CallID)
			bt.mu.Lock()
			bt.queue = append(bt.queue, id)
			bt.mu.Unlock()
			bt.arm()
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (bt *BoundedTermination) Detach(*Framework) { bt.b.Detach() }

// timeoutCall marks a still-pending call TIMEOUT and wakes its caller.
func (fw *Framework) timeoutCall(id msg.CallID) {
	var s *sem.Sem
	fw.WithClient(id, func(rec *ClientRecord) {
		if rec.Status == msg.StatusWaiting {
			rec.Status = msg.StatusTimeout
			s = rec.Sem
		}
	})
	if s != nil {
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KCallDone, Client: fw.Self(), ID: id,
				Status: msg.StatusTimeout})
		}
		s.V()
	}
}
