package core

import (
	"testing"

	"mrpc/internal/msg"
)

func causalNode(t *testing.T, net *memNet, id msg.ProcID) (*testNode, *recordingServer) {
	t.Helper()
	srv := &recordingServer{}
	n := addNode(t, net, id, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &CausalOrder{})
	return n, srv
}

// causalCall builds a Call with an explicit vector timestamp.
func causalCall(client msg.ProcID, id msg.CallID, inc msg.Incarnation,
	group msg.Group, payload string, vc msg.VClock) *msg.NetMsg {
	m := callMsg(client, id, inc, group, payload)
	m.VC = vc
	return m
}

func TestCausalDeliversClientSequenceInOrder(t *testing.T) {
	net := newMemNet()
	n, srv := causalNode(t, net, 1)
	group := msg.NewGroup(1)

	// Client 100's second call arrives first: held.
	n.fw.HandleNet(causalCall(100, 2, 1, group, "c2", msg.VClock{100: 2}))
	if got := srv.executed(); len(got) != 0 {
		t.Fatalf("executed %v before causal predecessor", got)
	}
	// The first call arrives: both run, in order.
	n.fw.HandleNet(causalCall(100, 1, 1, group, "c1", msg.VClock{100: 1}))
	got := srv.executed()
	if len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Fatalf("executed %v, want [c1 c2]", got)
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("held records remain")
	}
}

func TestCausalCrossClientDependency(t *testing.T) {
	net := newMemNet()
	n, srv := causalNode(t, net, 1)
	group := msg.NewGroup(1)

	// Client 101's call was issued after it learned of client 100's first
	// call (T includes 100:1), but arrives before it: held.
	n.fw.HandleNet(causalCall(101, 1, 1, group, "b1", msg.VClock{101: 1, 100: 1}))
	if got := srv.executed(); len(got) != 0 {
		t.Fatalf("executed %v before cross-client dependency", got)
	}
	// An unrelated call from client 102 is NOT blocked (concurrent calls
	// may interleave — weaker than total order).
	n.fw.HandleNet(causalCall(102, 1, 1, group, "d1", msg.VClock{102: 1}))
	if got := srv.executed(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("executed %v, want [d1]", got)
	}
	// The dependency arrives: b1 drains after it.
	n.fw.HandleNet(causalCall(100, 1, 1, group, "a1", msg.VClock{100: 1}))
	got := srv.executed()
	if len(got) != 3 || got[1] != "a1" || got[2] != "b1" {
		t.Fatalf("executed %v, want [d1 a1 b1]", got)
	}
}

func TestCausalRepliesCarryDeliveredVector(t *testing.T) {
	net := newMemNet()
	n, _ := causalNode(t, net, 1)
	group := msg.NewGroup(1)

	n.fw.HandleNet(causalCall(100, 1, 1, group, "a1", msg.VClock{100: 1}))
	var replyVC msg.VClock
	for _, s := range net.sentLog() {
		if s.M.Type == msg.OpReply {
			replyVC = s.M.VC
		}
	}
	if replyVC.Get(100) != 1 {
		t.Fatalf("reply VC = %v, want {100:1}", replyVC)
	}
}

func TestCausalClientStampsAndLearns(t *testing.T) {
	// End-to-end through two clients and one server: client B calls after
	// observing A's reply; B's call must carry knowledge of A's call.
	net := newMemNet()
	causalNode(t, net, 1)
	protos := func() []MicroProtocol {
		return []MicroProtocol{
			&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
			&UniqueExecution{}, &CausalOrder{},
		}
	}
	clientA := addNode(t, net, 100, nodeOpts{}, protos()...)
	clientB := addNode(t, net, 101, nodeOpts{}, protos()...)
	group := msg.NewGroup(1)

	if um := clientA.fw.Call(1, []byte("a1"), group); um.Status != msg.StatusOK {
		t.Fatalf("a1: %v", um.Status)
	}
	// B has not seen anything from A: its first call carries only itself.
	if um := clientB.fw.Call(1, []byte("b1"), group); um.Status != msg.StatusOK {
		t.Fatalf("b1: %v", um.Status)
	}
	// B's second call must causally follow a1, which B learned about from
	// the server's reply to b1 (the server had executed a1 first).
	var lastCallVC msg.VClock
	for _, s := range net.sentLog() {
		if s.M.Type == msg.OpCall && s.M.Client == 101 && s.M.ID != 0 {
			lastCallVC = s.M.VC
		}
	}
	_ = lastCallVC
	if um := clientB.fw.Call(1, []byte("b2"), group); um.Status != msg.StatusOK {
		t.Fatalf("b2: %v", um.Status)
	}
	for _, s := range net.sentLog() {
		if s.M.Type == msg.OpCall && s.M.Client == 101 {
			lastCallVC = s.M.VC
		}
	}
	if lastCallVC.Get(100) != 1 || lastCallVC.Get(101) != 2 {
		t.Fatalf("b2 timestamp = %v, want knowledge of a1 and own seq 2", lastCallVC)
	}
}

func TestCausalNewIncarnationResets(t *testing.T) {
	net := newMemNet()
	n, srv := causalNode(t, net, 1)
	group := msg.NewGroup(1)

	n.fw.HandleNet(causalCall(100, mkID(1, 1), 1, group, "inc1-c1", msg.VClock{100: 1}))
	// A held call of incarnation 1 (waiting for its predecessor that will
	// never come).
	n.fw.HandleNet(causalCall(100, mkID(1, 3), 1, group, "inc1-c3", msg.VClock{100: 3}))
	// Incarnation 2 restarts numbering; the held inc-1 call is dead.
	n.fw.HandleNet(causalCall(100, mkID(2, 1), 2, group, "inc2-c1", msg.VClock{100: 1}))
	got := srv.executed()
	if len(got) != 2 || got[0] != "inc1-c1" || got[1] != "inc2-c1" {
		t.Fatalf("executed %v, want [inc1-c1 inc2-c1]", got)
	}
	// Stale incarnation afterwards: dropped.
	n.fw.HandleNet(causalCall(100, mkID(1, 4), 1, group, "stale", msg.VClock{100: 4}))
	if len(srv.executed()) != 2 {
		t.Fatal("stale incarnation executed")
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("records left")
	}
}

func TestCausalDuplicateDoesNotDoubleDeliver(t *testing.T) {
	net := newMemNet()
	n, srv := causalNode(t, net, 1)
	group := msg.NewGroup(1)

	m := causalCall(100, 1, 1, group, "c1", msg.VClock{100: 1})
	n.fw.HandleNet(m.Clone())
	n.fw.HandleNet(m.Clone()) // duplicate: Unique resends, causal must not bump again
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("executed %v", got)
	}
	// The successor is still deliverable exactly once.
	n.fw.HandleNet(causalCall(100, 2, 1, group, "c2", msg.VClock{100: 2}))
	if got := srv.executed(); len(got) != 2 || got[1] != "c2" {
		t.Fatalf("executed %v, want [c1 c2]", got)
	}
}
