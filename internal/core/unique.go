package core

import (
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// UniqueExecution guarantees that a call is not executed more than once at
// each server (§4.4.5): the server remembers calls it has seen (OldCalls)
// and retains its response (OldResults) until the client acknowledges it; a
// duplicate request is answered from the stored response or, if execution
// is in progress, simply discarded. Combined with Reliable Communication
// this lifts "at least once" to "exactly once" semantics.
//
// As in the paper, OldCalls entries are retained indefinitely so that a
// straggler duplicate arriving after the acknowledgement is still
// recognized as old; the table is bounded by the number of distinct calls
// served in the incarnation.
type UniqueExecution struct {
	b  *Binding
	mu sync.Mutex
	// oldCalls/oldResults migrate across a swap: the no-double-execution
	// guarantee must hold for calls that executed before the swap too.
	oldCalls   map[msg.CallKey]bool
	oldResults map[msg.CallKey][]byte
}

var _ MicroProtocol = (*UniqueExecution)(nil)
var _ Stateful = (*UniqueExecution)(nil)

// uniqueState is UniqueExecution's exported migration state.
type uniqueState struct {
	oldCalls   map[msg.CallKey]bool
	oldResults map[msg.CallKey][]byte
}

// Name implements MicroProtocol.
func (*UniqueExecution) Name() string { return "Unique Execution" }

func (*UniqueExecution) spec() any { return struct{}{} }

// ExportState implements Stateful.
func (u *UniqueExecution) ExportState() any {
	u.mu.Lock()
	defer u.mu.Unlock()
	return uniqueState{oldCalls: u.oldCalls, oldResults: u.oldResults}
}

// ImportState implements Stateful.
func (u *UniqueExecution) ImportState(state any) {
	s := state.(uniqueState)
	u.mu.Lock()
	u.oldCalls = s.oldCalls
	u.oldResults = s.oldResults
	u.mu.Unlock()
}

// executed reports whether key has been executed here (seen and not merely
// in progress — a retained or acknowledged response exists, or the call is
// recorded as old without a pending sRPC record).
func (u *UniqueExecution) executed(key msg.CallKey) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.oldCalls[key]
}

// Attach implements MicroProtocol.
func (u *UniqueExecution) Attach(fw *Framework) error {
	b := NewBinding(fw)
	u.b = b
	u.oldCalls = make(map[msg.CallKey]bool)
	u.oldResults = make(map[msg.CallKey][]byte)

	// Publish the executed-call predicate: a freshly attached ordering
	// protocol must not sequence duplicates of calls that executed before
	// it attached (see Framework.AlreadyExecuted).
	fw.SetExecutedQuery(u.executed)

	// Retain the response until the client's ACK (priority 1: before
	// Atomic Execution's checkpoint on the same event).
	b.On(event.ReplyFromServer, "UniqueExec.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := *o.Arg.(*msg.CallKey)
			var (
				args []byte
				ok   bool
			)
			ok = fw.WithServer(key, func(rec *ServerRecord) { args = rec.Args })
			if ok {
				u.mu.Lock()
				u.oldResults[key] = args
				u.mu.Unlock()
			}
		})

	// One long-lived cancellation compensation (it reads its key from the
	// occurrence) instead of a per-event capturing closure; see D6.
	forgetOnCancel := func(o *event.Occurrence) {
		key := o.Arg.(*NetEvent).Msg.Key()
		u.mu.Lock()
		delete(u.oldCalls, key)
		u.mu.Unlock()
	}

	b.On(event.MsgFromNetwork, "UniqueExec.msgFromNet", PrioUnique,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpCall:
				key := m.Key()
				u.mu.Lock()
				if res, done := u.oldResults[key]; done {
					u.mu.Unlock()
					// Already executed and unacknowledged: resend the
					// retained response.
					if fw.Tracing() {
						fw.Emit(trace.Event{Kind: trace.KDupDropped, Client: m.Client, ID: m.ID})
					}
					fw.Net().Push(m.Sender, &msg.NetMsg{
						Type:   msg.OpReply,
						ID:     m.ID,
						Client: m.Client,
						Op:     m.Op,
						Args:   res,
						Server: m.Server,
						Sender: fw.Self(),
						Inc:    fw.Inc(),
					})
					o.Cancel()
					return
				}
				if u.oldCalls[key] {
					u.mu.Unlock()
					// Execution in progress (or acknowledged): discard.
					if fw.Tracing() {
						fw.Emit(trace.Event{Kind: trace.KDupDropped, Client: m.Client, ID: m.ID})
					}
					o.Cancel()
					return
				}
				u.oldCalls[key] = true
				u.mu.Unlock()
				// If a later handler cancels this delivery (the call never
				// executes now), forget it so a retransmission can succeed
				// (deviation D6).
				o.OnCancel(forgetOnCancel)

			case msg.OpReply:
				// Client side: acknowledge the response so the server can
				// release it.
				fw.Net().Push(m.Sender, &msg.NetMsg{
					Type:   msg.OpAck,
					Client: m.Client,
					Server: m.Server,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
					AckID:  m.ID,
				})

			case msg.OpAck:
				u.mu.Lock()
				delete(u.oldResults, msg.CallKey{Client: m.Client, ID: m.AckID})
				u.mu.Unlock()
			}
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (u *UniqueExecution) Detach(fw *Framework) {
	u.b.Detach()
	fw.SetExecutedQuery(nil)
}
