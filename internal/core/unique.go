package core

import (
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// UniqueExecution guarantees that a call is not executed more than once at
// each server (§4.4.5): the server remembers calls it has seen (OldCalls)
// and retains its response (OldResults) until the client acknowledges it; a
// duplicate request is answered from the stored response or, if execution
// is in progress, simply discarded. Combined with Reliable Communication
// this lifts "at least once" to "exactly once" semantics.
//
// As in the paper, OldCalls entries are retained indefinitely so that a
// straggler duplicate arriving after the acknowledgement is still
// recognized as old; the table is bounded by the number of distinct calls
// served in the incarnation.
type UniqueExecution struct{}

var _ MicroProtocol = UniqueExecution{}

// Name implements MicroProtocol.
func (UniqueExecution) Name() string { return "Unique Execution" }

// Attach implements MicroProtocol.
func (UniqueExecution) Attach(fw *Framework) error {
	var (
		mu         sync.Mutex
		oldCalls   = make(map[msg.CallKey]bool)
		oldResults = make(map[msg.CallKey][]byte)
	)

	// Retain the response until the client's ACK (priority 1: before
	// Atomic Execution's checkpoint on the same event).
	if err := fw.Bus().Register(event.ReplyFromServer, "UniqueExec.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := o.Arg.(msg.CallKey)
			var (
				args []byte
				ok   bool
			)
			ok = fw.WithServer(key, func(rec *ServerRecord) { args = rec.Args })
			if ok {
				mu.Lock()
				oldResults[key] = args
				mu.Unlock()
			}
		}); err != nil {
		return err
	}

	return fw.Bus().Register(event.MsgFromNetwork, "UniqueExec.msgFromNet", PrioUnique,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpCall:
				key := m.Key()
				mu.Lock()
				if res, done := oldResults[key]; done {
					mu.Unlock()
					// Already executed and unacknowledged: resend the
					// retained response.
					fw.Net().Push(m.Sender, &msg.NetMsg{
						Type:   msg.OpReply,
						ID:     m.ID,
						Client: m.Client,
						Op:     m.Op,
						Args:   res,
						Server: m.Server,
						Sender: fw.Self(),
						Inc:    fw.Inc(),
					})
					o.Cancel()
					return
				}
				if oldCalls[key] {
					mu.Unlock()
					// Execution in progress (or acknowledged): discard.
					o.Cancel()
					return
				}
				oldCalls[key] = true
				mu.Unlock()
				// If a later handler cancels this delivery (the call never
				// executes now), forget it so a retransmission can succeed
				// (deviation D6).
				o.OnCancel(func() {
					mu.Lock()
					delete(oldCalls, key)
					mu.Unlock()
				})

			case msg.OpReply:
				// Client side: acknowledge the response so the server can
				// release it.
				fw.Net().Push(m.Sender, &msg.NetMsg{
					Type:   msg.OpAck,
					Client: m.Client,
					Server: m.Server,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
					AckID:  m.ID,
				})

			case msg.OpAck:
				mu.Lock()
				delete(oldResults, msg.CallKey{Client: m.Client, ID: m.AckID})
				mu.Unlock()
			}
		})
}
