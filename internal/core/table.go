package core

import (
	"sync"

	"mrpc/internal/msg"
)

// This file is the call-table layer: the pRPC (client-side) and sRPC
// (server-side) tables of the paper, held as power-of-two sharded maps with
// one mutex per shard and accessed exclusively through the scoped API on
// Framework (WithClient/WithServer, EachClient/EachServer, ClientTx/
// ServerTx, and the insert/remove helpers).
//
// The paper guards each table with a single process-wide mutex
// (pRPC_mutex/sRPC_mutex) and leaves the discipline to "callers must hold
// the mutex" comments. Sharding removes the process-wide serialization on
// the hot path — concurrent calls with different ids proceed on different
// shards — and the scoped API removes the held-lock-by-convention bug
// class: a lock can no longer leak out of the function that took it.
//
// Rules (see DESIGN.md §4):
//
//   - A scoped callback runs under its record's shard mutex. It must not
//     call back into the table layer and must not trigger events; it may
//     read and write the record's mutable fields.
//   - Record fields split into immutable-after-insert (ClientRecord: ID,
//     Op, CallArgs, Server, Sem, VC, the Pending slice structure;
//     ServerRecord: Key, Op, Client, Server, Inc, Thread) and mutable
//     (ClientRecord: Args, NRes, Status, Pending entries;
//     ServerRecord: Args, hold, executing). Immutable fields may be read
//     without the shard lock; mutable fields only inside a scoped callback
//     — or after Take*, which transfers ownership of the record to the
//     caller (and, with it, the right to scrub and repool the record).
//   - Each* iterates shard by shard, locking one shard at a time: cheap,
//     but records inserted or removed concurrently in shards not yet
//     visited may or may not be seen. Handlers that need a consistent
//     cross-record view (Acceptance's failure sweep, Terminate Orphan's
//     kill sweep, Close's abort sweep) use ClientTx/ServerTx, which hold
//     every shard for the duration of the callback.

// tableShardBits sets the shard count. 16 shards keeps the per-framework
// footprint trivial (two small maps per shard) while exceeding the core
// counts this runtime targets; contention halves with every extra bit if a
// profile ever demands more.
const (
	tableShardBits = 4
	tableShards    = 1 << tableShardBits
)

// shardIndex distributes hash keys over the shards (Fibonacci hashing: the
// multiplier is 2^64/phi, and the top bits of the product are well mixed
// even for the dense sequential call ids the D9 scheme produces).
func shardIndex(h uint64) int {
	return int((h * 0x9E3779B97F4A7C15) >> (64 - tableShardBits))
}

func clientShardOf(id msg.CallID) int {
	return shardIndex(uint64(id))
}

func serverShardOf(key msg.CallKey) int {
	// Incarnation occupies the CallID's upper 32 bits (D9), so folding the
	// client id into them keeps distinct clients' dense sequences apart.
	return shardIndex(uint64(key.ID) ^ uint64(uint32(key.Client))<<32)
}

// --- client table (pRPC) --------------------------------------------------

type clientShard struct {
	mu   sync.Mutex
	recs map[msg.CallID]*ClientRecord
}

type clientTable struct {
	shards [tableShards]clientShard
}

func (t *clientTable) init() {
	for i := range t.shards {
		t.shards[i].recs = make(map[msg.CallID]*ClientRecord)
	}
}

func (t *clientTable) with(id msg.CallID, f func(*ClientRecord)) bool {
	s := &t.shards[clientShardOf(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[id]
	if ok {
		f(r)
	}
	return ok
}

func (t *clientTable) put(rec *ClientRecord) {
	s := &t.shards[clientShardOf(rec.ID)]
	s.mu.Lock()
	s.recs[rec.ID] = rec
	s.mu.Unlock()
}

func (t *clientTable) take(id msg.CallID) (*ClientRecord, bool) {
	s := &t.shards[clientShardOf(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[id]
	if ok {
		delete(s.recs, id)
	}
	return r, ok
}

func (t *clientTable) each(f func(*ClientRecord)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, r := range s.recs {
			f(r)
		}
		s.mu.Unlock()
	}
}

func (t *clientTable) len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.recs)
		s.mu.Unlock()
	}
	return n
}

func (t *clientTable) lockAll() {
	for i := range t.shards {
		t.shards[i].mu.Lock()
	}
}

func (t *clientTable) unlockAll() {
	for i := tableShards - 1; i >= 0; i-- {
		t.shards[i].mu.Unlock()
	}
}

// --- server table (sRPC) --------------------------------------------------

type serverShard struct {
	mu   sync.Mutex
	recs map[msg.CallKey]*ServerRecord
}

type serverTable struct {
	shards [tableShards]serverShard
}

func (t *serverTable) init() {
	for i := range t.shards {
		t.shards[i].recs = make(map[msg.CallKey]*ServerRecord)
	}
}

func (t *serverTable) with(key msg.CallKey, f func(*ServerRecord)) bool {
	s := &t.shards[serverShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	if ok {
		f(r)
	}
	return ok
}

// putIfAbsent inserts rec unless a record with its key is already held, and
// reports whether the insert happened (false = duplicate).
func (t *serverTable) putIfAbsent(rec *ServerRecord) bool {
	s := &t.shards[serverShardOf(rec.Key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.recs[rec.Key]; dup {
		return false
	}
	s.recs[rec.Key] = rec
	return true
}

func (t *serverTable) take(key msg.CallKey) (*ServerRecord, bool) {
	s := &t.shards[serverShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	if ok {
		delete(s.recs, key)
	}
	return r, ok
}

func (t *serverTable) each(f func(*ServerRecord)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, r := range s.recs {
			f(r)
		}
		s.mu.Unlock()
	}
}

func (t *serverTable) len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.recs)
		s.mu.Unlock()
	}
	return n
}

func (t *serverTable) lockAll() {
	for i := range t.shards {
		t.shards[i].mu.Lock()
	}
}

func (t *serverTable) unlockAll() {
	for i := tableShards - 1; i >= 0; i-- {
		t.shards[i].mu.Unlock()
	}
}

// --- scoped access API ----------------------------------------------------

// WithClient runs f with the pending call record for id under the record's
// shard mutex and reports whether the record was present. f must not call
// back into the table layer and must not trigger events.
func (fw *Framework) WithClient(id msg.CallID, f func(*ClientRecord)) bool {
	return fw.clients.with(id, f)
}

// WithServer runs f with the held call record for key under the record's
// shard mutex and reports whether the record was present. f must not call
// back into the table layer and must not trigger events.
func (fw *Framework) WithServer(key msg.CallKey, f func(*ServerRecord)) bool {
	return fw.servers.with(key, f)
}

// EachClient runs f for every pending call record, locking one shard at a
// time. Records inserted or removed concurrently may or may not be visited;
// use ClientTx for a consistent cross-record view.
func (fw *Framework) EachClient(f func(*ClientRecord)) {
	fw.clients.each(f)
}

// EachServer runs f for every held call record, locking one shard at a
// time. Records inserted or removed concurrently may or may not be visited;
// use ServerTx for a consistent cross-record view.
func (fw *Framework) EachServer(f func(*ServerRecord)) {
	fw.servers.each(f)
}

// ClientTx is a multi-record view of the pRPC table with every shard locked:
// no call can be inserted, removed, or mutated elsewhere while it is open.
type ClientTx struct {
	t *clientTable
}

// Get returns the pending call record for id.
func (tx ClientTx) Get(id msg.CallID) (*ClientRecord, bool) {
	r, ok := tx.t.shards[clientShardOf(id)].recs[id]
	return r, ok
}

// Each runs f for every pending call record.
func (tx ClientTx) Each(f func(*ClientRecord)) {
	for i := range tx.t.shards {
		for _, r := range tx.t.shards[i].recs {
			f(r)
		}
	}
}

// Remove deletes the record for id.
func (tx ClientTx) Remove(id msg.CallID) {
	delete(tx.t.shards[clientShardOf(id)].recs, id)
}

// ClientTx runs f with every client shard locked, for handlers that need
// cross-record atomicity (Acceptance's failure sweep, Close's abort sweep).
// f must not call back into the table layer outside tx, must not trigger
// events, and must not block; Tx spans are the one place the whole table is
// serialized, so keep them short.
func (fw *Framework) ClientTx(f func(tx ClientTx)) {
	fw.clients.lockAll()
	defer fw.clients.unlockAll()
	f(ClientTx{t: &fw.clients})
}

// ServerTx is a multi-record view of the sRPC table with every shard locked.
type ServerTx struct {
	t *serverTable
}

// Get returns the held call record for key.
func (tx ServerTx) Get(key msg.CallKey) (*ServerRecord, bool) {
	r, ok := tx.t.shards[serverShardOf(key)].recs[key]
	return r, ok
}

// Each runs f for every held call record.
func (tx ServerTx) Each(f func(*ServerRecord)) {
	for i := range tx.t.shards {
		for _, r := range tx.t.shards[i].recs {
			f(r)
		}
	}
}

// Remove deletes the record for key.
func (tx ServerTx) Remove(key msg.CallKey) {
	delete(tx.t.shards[serverShardOf(key)].recs, key)
}

// ServerTx runs f with every server shard locked, for handlers that need
// cross-record atomicity (Terminate Orphan's kill sweep, recovery sweeps).
// The same restrictions as ClientTx apply.
func (fw *Framework) ServerTx(f func(tx ServerTx)) {
	fw.servers.lockAll()
	defer fw.servers.unlockAll()
	f(ServerTx{t: &fw.servers})
}
