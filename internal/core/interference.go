package core

import (
	"math"
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// InterferenceAvoidance implements the first orphan-handling option
// (§4.4.7): when a client recovers and issues calls under a new incarnation
// number, execution of the new-generation calls is deferred until every
// pending call of the old generation (the orphans) has finished. Rather
// than queueing the new calls, they are dropped and the client's
// retransmission eventually delivers them — so Reliable Communication is a
// dependency (Figure 4).
//
// Paper-fidelity note: the pseudocode, after deciding a call belongs to a
// blocked new generation, neither counts nor cancels it, which would let
// RPC Main execute it anyway; the prose ("simply dropping them") makes the
// intent clear, so this implementation cancels such calls explicitly.
//
// The micro-protocol has no parameters, so a reconfiguration that keeps it
// reuses the attached instance (its generation counters included); it is
// only detached when orphan handling itself changes, and then its counts
// are meaningless to the successor.
type InterferenceAvoidance struct {
	b    *Binding
	mu   sync.Mutex
	info map[msg.ProcID]*iaEntry
}

var _ MicroProtocol = (*InterferenceAvoidance)(nil)

type iaEntry struct {
	inc     msg.Incarnation // current generation; maxInc while draining
	count   int             // old-generation calls still in progress
	nextInc msg.Incarnation // generation to admit once drained
}

const maxInc = msg.Incarnation(math.MaxInt32)

// Name implements MicroProtocol.
func (*InterferenceAvoidance) Name() string { return "Interference Avoidance" }

func (*InterferenceAvoidance) spec() any { return struct{}{} }

// Attach implements MicroProtocol.
func (ia *InterferenceAvoidance) Attach(fw *Framework) error {
	b := NewBinding(fw)
	ia.b = b
	ia.info = make(map[msg.ProcID]*iaEntry)

	unblockIfDrained := func(ci *iaEntry) {
		if ci.count == 0 && ci.inc == maxInc {
			ci.inc = ci.nextInc
		}
	}

	b.On(event.MsgFromNetwork, "InterferenceAvoid.msgFromNet", PrioOrphan,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpCall {
				return
			}
			client := m.Client
			ia.mu.Lock()
			ci, ok := ia.info[client]
			if !ok {
				ci = &iaEntry{inc: m.Inc, nextInc: m.Inc}
				ia.info[client] = ci
			}
			if ci.inc > m.Inc {
				// Old generation (or draining): drop; retransmission will
				// redeliver new-generation calls once drained.
				ia.mu.Unlock()
				o.Cancel()
				return
			}
			if ci.inc < m.Inc {
				ci.nextInc = m.Inc
				if ci.count == 0 {
					ci.inc = m.Inc
				} else {
					// Enter draining state: no more old-generation calls
					// are admitted either (starvation avoidance).
					ci.inc = maxInc
					ia.mu.Unlock()
					o.Cancel()
					return
				}
			}
			// ci.inc == m.Inc: admit and count.
			ci.count++
			ia.mu.Unlock()
			o.OnCancel(func(*event.Occurrence) {
				// A later handler dropped the call (duplicate, ordering):
				// it will never produce a reply, so uncount it.
				ia.mu.Lock()
				ci.count--
				unblockIfDrained(ci)
				ia.mu.Unlock()
			})
		})

	b.On(event.ReplyFromServer, "InterferenceAvoid.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := *o.Arg.(*msg.CallKey)
			ia.mu.Lock()
			if ci, ok := ia.info[key.Client]; ok {
				ci.count--
				unblockIfDrained(ci)
			}
			ia.mu.Unlock()
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (ia *InterferenceAvoidance) Detach(*Framework) { ia.b.Detach() }
