package core

import (
	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// CollateFunc folds one server reply into the accumulated result
// (cum_func in §4.4.4). It must not retain either slice.
type CollateFunc func(accum, reply []byte) []byte

// LastReply is the identity collation of the paper's §5 example: the
// accumulated result is simply the most recent reply.
func LastReply(_, reply []byte) []byte { return reply }

// Collation implements collation semantics (§4.4.4): the user-provided
// function combines the replies of the group members into the single result
// returned to the caller, starting from Init.
type Collation struct {
	Func CollateFunc
	Init []byte
}

var _ MicroProtocol = Collation{}

// Name implements MicroProtocol.
func (Collation) Name() string { return "Collation" }

// Attach implements MicroProtocol.
func (c Collation) Attach(fw *Framework) error {
	if c.Func == nil {
		c.Func = LastReply
	}

	if err := fw.Bus().Register(event.NewRPCCall, "Collation.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := o.Arg.(msg.CallID)
			fw.WithClient(id, func(rec *ClientRecord) {
				rec.Args = c.Init
			})
		}); err != nil {
		return err
	}

	// Runs after Acceptance's dedupe stage (which cancels duplicate
	// replies) and before its completion stage (which wakes the caller),
	// so each distinct reply is folded exactly once and the caller never
	// races the fold — deviation D2.
	return fw.Bus().Register(event.MsgFromNetwork, "Collation.msgFromNet", PrioCollation,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpReply {
				return
			}
			fw.WithClient(m.ID, func(rec *ClientRecord) {
				rec.Args = c.Func(rec.Args, m.Args)
			})
		})
}
