package core

import (
	"reflect"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// CollateFunc folds one server reply into the accumulated result
// (cum_func in §4.4.4). It must not retain either slice.
type CollateFunc func(accum, reply []byte) []byte

// LastReply is the identity collation of the paper's §5 example: the
// accumulated result is simply the most recent reply.
func LastReply(_, reply []byte) []byte { return reply }

// Collation implements collation semantics (§4.4.4): the user-provided
// function combines the replies of the group members into the single result
// returned to the caller, starting from Init.
type Collation struct {
	Func CollateFunc
	Init []byte

	b *Binding
}

var _ MicroProtocol = (*Collation)(nil)

// Name implements MicroProtocol.
func (*Collation) Name() string { return "Collation" }

func (c *Collation) fn() CollateFunc {
	if c.Func == nil {
		return LastReply
	}
	return c.Func
}

func (c *Collation) spec() any {
	// Functions are not comparable; their code pointers are — good enough
	// to detect "same collation" across a reconfiguration.
	return struct {
		fn   uintptr
		init string
	}{reflect.ValueOf(c.fn()).Pointer(), string(c.Init)}
}

// Attach implements MicroProtocol.
func (c *Collation) Attach(fw *Framework) error {
	fold := c.fn()
	b := NewBinding(fw)
	c.b = b

	b.On(event.NewRPCCall, "Collation.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := *o.Arg.(*msg.CallID)
			fw.WithClient(id, func(rec *ClientRecord) {
				rec.Args = c.Init
			})
		})

	// Runs after Acceptance's dedupe stage (which cancels duplicate
	// replies) and before its completion stage (which wakes the caller),
	// so each distinct reply is folded exactly once and the caller never
	// races the fold — deviation D2.
	b.On(event.MsgFromNetwork, "Collation.msgFromNet", PrioCollation,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpReply {
				return
			}
			fw.WithClient(m.ID, func(rec *ClientRecord) {
				rec.Args = fold(rec.Args, m.Args)
			})
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (c *Collation) Detach(*Framework) { c.b.Detach() }
