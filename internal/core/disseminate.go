package core

import (
	"sync"
	"sync/atomic"

	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// Disseminator is the configurable dissemination layer between the flush
// queue and the raw transport (DESIGN.md D17). In flat mode it is a
// pass-through. In tree mode a group multicast is sent only to this node's
// children in the deterministic k-ary tree rooted at the sender
// (msg.TreeChildren); every member that receives the frame relays the same
// frozen bytes to its own children, so sender egress is O(k) instead of
// O(g) and no hop re-encodes or clones (the frame's retained wire bytes
// travel verbatim — netsim forwards msg.Wire()).
//
// Receipt acknowledgements aggregate along the same tree: a leaf sends one
// OpRelayAck covering itself to its parent; an interior node waits until
// its subtree is covered, then forwards a single merged ack — so the
// origin's Reliable Communication settles O(k) messages instead of O(g).
// Aggregation is purely an optimization: Reliable's per-member
// retransmission (direct, flat) remains the correctness backstop for any
// frame or ack the tree loses.
//
// Failure repair is deterministic and local (D17): when the failure
// detector reports a member down, each node recomputes its effective
// children — a member whose static ancestors are all down is adopted by
// its first live ancestor — and re-delivers its window of recently relayed
// frames to the members it newly adopted. Divergent views between nodes
// can at worst duplicate a delivery (suppressed by the receipt window and
// Unique Execution), never mutate a frame.
type Disseminator struct {
	fw  *Framework
	net Transport // the raw substrate below

	// fanout is the tree fanout k; 0 or 1 selects flat dissemination.
	// Written only post-swap under the reconfiguration barrier
	// (SetTreeFanout), read on every multicast — hence atomic.
	fanout atomic.Int32

	// relayMu guards the relay window: a bounded ring of recently
	// originated/relayed frames, indexed by identity, holding each frame's
	// relay fan-out set and its ack-aggregation state. Sends and trace
	// emissions happen outside the lock.
	relayMu sync.Mutex
	entries map[relayKey]*relayEntry
	ring    [relayWindow]relayKey
	ringPos int
}

// relayWindow bounds how many in-flight frames a node can re-deliver
// during tree repair. Older frames fall to Reliable's retransmission.
const relayWindow = 64

// relayKey is the identity of a disseminated frame: the call key alone is
// not enough because ORDER frames for one call are distinct per sequence
// number and per origin.
type relayKey struct {
	t      msg.NetOp
	client msg.ProcID
	id     msg.CallID
	order  int64
	origin msg.ProcID
}

func keyOf(m *msg.NetMsg) relayKey {
	return relayKey{t: m.Type, client: m.Client, id: m.ID, order: m.Order, origin: m.Sender}
}

// relayEntry is one window slot: the frozen frame (retained for re-parent
// re-delivery) plus, for Call frames, the ack-aggregation state.
type relayEntry struct {
	key    relayKey
	m      *msg.NetMsg
	sentTo msg.Group // members this node has relayed or re-delivered to

	// Ack aggregation (Call frames on non-origin nodes only): expect is
	// the live static subtree below this node at receipt time; covered
	// collects the members whose receipt has been reported (self
	// included); acked flips once the merged ack has been forwarded.
	expect  msg.Group
	covered map[msg.ProcID]bool
	acked   bool
}

func newDisseminator(fw *Framework, net Transport, fanout int) *Disseminator {
	d := &Disseminator{fw: fw, net: net, entries: make(map[relayKey]*relayEntry)}
	d.fanout.Store(int32(fanout))
	return d
}

var _ Transport = (*Disseminator)(nil)

// SetFanout reconfigures the dissemination mode (0/1 = flat, k ≥ 2 =
// tree). Dissemination swaps are drain-class, so no stamped frame is in
// flight when this runs.
func (d *Disseminator) SetFanout(k int) { d.fanout.Store(int32(k)) }

// Fanout returns the current tree fanout (0 = flat).
func (d *Disseminator) Fanout() int { return int(d.fanout.Load()) }

// Push implements Transport: point-to-point sends bypass the tree.
func (d *Disseminator) Push(to msg.ProcID, m *msg.NetMsg) { d.net.Push(to, m) }

// Multicast implements Transport. In tree mode a group-addressed frame is
// stamped with the fanout and sent to this node's children only; everything
// else (flat mode, frames already frozen elsewhere, tiny groups, frames not
// addressed to the group they are multicast to) goes out flat.
func (d *Disseminator) Multicast(group msg.Group, m *msg.NetMsg) {
	k := int(d.fanout.Load())
	if k < 2 || len(group) <= k || m.Type == msg.OpBatch || m.Frozen() ||
		m.Sender != d.fw.Self() || !m.Server.Equal(group) {
		d.net.Multicast(group, m)
		return
	}
	self := d.fw.Self()
	m.SetRelay(k)
	down := d.downFn()
	children := msg.TreeChildren(group, self, self, k, down)
	if len(children) == 0 {
		// Every member is down (per the local view); send flat so the
		// frame still reaches anyone the view is wrong about.
		d.net.Multicast(group, m)
		return
	}
	// Register before sending: the origin re-delivers from its window too
	// when a child fails before relaying.
	d.remember(m, children, nil)
	d.net.Multicast(children, m)
	if group.Contains(self) {
		d.net.Push(self, m) // the origin's own delivery skips the tree
	}
	if d.fw.Tracing() {
		d.fw.Emit(trace.Event{Kind: trace.KRelay, From: self, Client: m.Client,
			ID: m.ID, Op: msg.OpID(len(children))})
	}
}

// downFn returns the membership view as a predicate, or nil when no member
// is currently reported down (the tree helpers take the cheap static path).
func (d *Disseminator) downFn() func(msg.ProcID) bool {
	ms := d.fw.Membership()
	if ms == nil {
		return nil
	}
	return ms.Down
}

// remember inserts a window entry for m, evicting the oldest ring slot.
func (d *Disseminator) remember(m *msg.NetMsg, sentTo msg.Group, expect msg.Group) *relayEntry {
	e := &relayEntry{key: keyOf(m), m: m, sentTo: sentTo, expect: expect}
	d.relayMu.Lock()
	if old, ok := d.entries[e.key]; ok {
		d.relayMu.Unlock()
		return old // lost the race: keep the first receipt's state
	}
	if evict := d.ring[d.ringPos]; evict != (relayKey{}) {
		delete(d.entries, evict)
	}
	d.ring[d.ringPos] = e.key
	d.ringPos = (d.ringPos + 1) % relayWindow
	d.entries[e.key] = e
	d.relayMu.Unlock()
	return e
}

// HandleRelay is the receive-side hook, called by the framework for every
// delivered frame with a relay stamp. On first receipt the frame is
// forwarded — the same frozen bytes — to this node's children, and for
// Call frames the receipt ack is started up the tree. Duplicates are not
// re-relayed. The frame is always dispatched to the composite afterwards;
// relaying is invisible to the micro-protocols.
func (d *Disseminator) HandleRelay(m *msg.NetMsg) {
	self := d.fw.Self()
	k := int(m.Relay)
	if k < 1 || m.Sender == self || !m.Server.Contains(self) {
		return
	}
	key := keyOf(m)
	d.relayMu.Lock()
	_, dup := d.entries[key]
	d.relayMu.Unlock()
	if dup {
		// A duplicate delivery means the origin is retransmitting through
		// the tree (e.g. a leader re-disseminating an ORDER assignment a
		// nudge asked for) or the network duplicated the frame. Relay it
		// onward — the tree is acyclic, so this cannot loop, and a subtree
		// that lost the first wave stays reachable through origin resends —
		// but do not re-register or re-ack.
		if ch := msg.TreeChildren(m.Server, m.Sender, self, k, d.downFn()); len(ch) > 0 {
			d.net.Multicast(ch, m)
		}
		return
	}

	group, origin := m.Server, m.Sender
	down := d.downFn()
	children := msg.TreeChildren(group, origin, self, k, down)
	var expect msg.Group
	if m.Type == msg.OpCall {
		expect = msg.TreeSubtree(group, origin, self, k, down)
	}
	e := d.remember(m, children, expect)

	if len(children) > 0 {
		d.net.Multicast(children, m)
		if d.fw.Tracing() {
			d.fw.Emit(trace.Event{Kind: trace.KRelay, From: origin, Client: m.Client,
				ID: m.ID, Op: msg.OpID(len(children))})
		}
	}
	if m.Type == msg.OpCall {
		d.relayMu.Lock()
		if e.covered == nil {
			e.covered = make(map[msg.ProcID]bool, len(expect)+1)
		}
		e.covered[self] = true
		send, cover := d.maybeAggregateLocked(e)
		d.relayMu.Unlock()
		if send {
			d.sendRelayAck(e, cover, k, down)
		}
	}
}

// ConsumeRelayAck handles an arriving OpRelayAck. At the call's origin it
// reports false so the frame dispatches to Reliable Communication; on an
// interior node it merges the child's cover into the aggregation state and
// forwards one merged ack once the subtree is covered (or forwards the ack
// verbatim toward the origin when the window has no entry). Returns true
// when the frame was consumed here.
func (d *Disseminator) ConsumeRelayAck(m *msg.NetMsg) bool {
	if m.Client == d.fw.Self() {
		return false
	}
	key := relayKey{t: msg.OpCall, client: m.Client, id: m.AckID, origin: m.Client}
	d.relayMu.Lock()
	e, ok := d.entries[key]
	if !ok {
		d.relayMu.Unlock()
		// No aggregation state (evicted, or the ack outran the call):
		// forward the frozen ack verbatim to the origin — correct, merely
		// unaggregated.
		d.net.Push(m.Client, m)
		return true
	}
	if e.covered == nil {
		e.covered = make(map[msg.ProcID]bool)
	}
	for _, p := range msg.DecodeProcIDs(m.Args) {
		e.covered[p] = true
	}
	send, cover := d.maybeAggregateLocked(e)
	k := int(e.m.Relay)
	d.relayMu.Unlock()
	if send {
		d.sendRelayAck(e, cover, k, d.downFn())
	}
	return true
}

// maybeAggregateLocked decides whether e's merged ack should be forwarded
// now: every live member of the expected subtree (and self) is covered and
// no ack has gone out yet. Caller holds relayMu; the cover snapshot is
// returned so the send happens outside the lock.
func (d *Disseminator) maybeAggregateLocked(e *relayEntry) (bool, []msg.ProcID) {
	if e.acked || e.covered == nil {
		return false, nil
	}
	down := d.downFn()
	for _, p := range e.expect {
		if !e.covered[p] && (down == nil || !down(p)) {
			return false, nil
		}
	}
	e.acked = true
	cover := make([]msg.ProcID, 0, len(e.covered))
	for p := range e.covered {
		cover = append(cover, p)
	}
	return true, cover
}

// sendRelayAck forwards the merged cover one hop up the tree (to the first
// live ancestor, or the origin itself).
func (d *Disseminator) sendRelayAck(e *relayEntry, cover []msg.ProcID, k int, down func(msg.ProcID) bool) {
	self := d.fw.Self()
	parent := msg.TreeParent(e.m.Server, e.key.origin, self, k, down)
	if parent == 0 {
		parent = e.key.origin
	}
	d.net.Push(parent, &msg.NetMsg{
		Type:   msg.OpRelayAck,
		Client: e.key.client,
		Sender: self,
		Inc:    d.fw.Inc(),
		AckID:  e.key.id,
		Args:   msg.AppendProcIDs(nil, cover),
	})
}

// OnMembership repairs the in-flight window after a failure: recompute the
// effective children for every windowed frame and re-deliver the frozen
// bytes to members this node newly adopted (KReparent). A recovery needs no
// action — re-integration is Reliable's retransmission's job.
func (d *Disseminator) OnMembership(c member.Change) {
	if c.Kind != member.Failure {
		return
	}
	self := d.fw.Self()
	down := d.downFn()
	type redeliver struct {
		m       *msg.NetMsg
		adopted msg.Group
	}
	var work []redeliver
	d.relayMu.Lock()
	for _, e := range d.entries {
		k := int(e.m.Relay)
		if k < 1 || (self != e.key.origin && !e.m.Server.Contains(self)) {
			continue
		}
		children := msg.TreeChildren(e.m.Server, e.key.origin, self, k, down)
		var adopted msg.Group
		for _, p := range children {
			if !e.sentTo.Contains(p) {
				adopted = append(adopted, p)
			}
		}
		if len(adopted) == 0 {
			continue
		}
		e.sentTo = append(e.sentTo, adopted...)
		work = append(work, redeliver{m: e.m, adopted: adopted})
	}
	// The failed member can no longer ack; pending aggregations may now be
	// complete without it.
	type ackWork struct {
		e     *relayEntry
		cover []msg.ProcID
		k     int
	}
	var acks []ackWork
	for _, e := range d.entries {
		if send, cover := d.maybeAggregateLocked(e); send {
			acks = append(acks, ackWork{e: e, cover: cover, k: int(e.m.Relay)})
		}
	}
	d.relayMu.Unlock()

	for _, w := range work {
		d.net.Multicast(w.adopted, w.m)
		if d.fw.Tracing() {
			d.fw.Emit(trace.Event{Kind: trace.KReparent, From: c.Who,
				Client: w.m.Client, ID: w.m.ID, Op: msg.OpID(len(w.adopted))})
		}
	}
	for _, a := range acks {
		d.sendRelayAck(a.e, a.cover, a.k, down)
	}
}
