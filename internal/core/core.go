// Package core implements the paper's primary contribution: the gRPC
// composite protocol — an event-driven framework holding the shared call
// tables, plus the thirteen micro-protocols that each realize one semantic
// property of (group) RPC and are configured together into a service
// (Hiltunen & Schlichting, TR 94-28, §3–§5).
//
// A Framework instance is one site's half of the composite protocol. It is
// deliberately symmetric: the same configured composite runs at clients and
// servers, with the client-side tables (pRPC) and server-side tables (sRPC)
// simply remaining empty on sites that play only one role — exactly the
// structure of the pseudocode, where each micro-protocol contains both its
// client- and server-side handlers.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/sem"
	"mrpc/internal/trace"
)

// HoldIndex names a slot of the HOLD array (ready_index in the paper):
// a property that must be satisfied before a call may be passed up to the
// server. RPC Main always holds; the ordering micro-protocols add theirs.
type HoldIndex int

// HOLD array slots.
const (
	HoldMain HoldIndex = iota
	HoldFIFO
	HoldTotal
	HoldCausal
	numHold
)

// Handler priorities for MSG_FROM_NETWORK, ascending = earlier. The values
// implement the ordering discussed in DESIGN.md §4 (including deviations
// D2 and D3 relative to the paper's numbers).
const (
	PrioAssignOrder    = 5   // Total Order: leader assigns sequence numbers
	PrioReliable       = 10  // Reliable Communication: ack bookkeeping (first, as in the paper)
	PrioOrphan         = 15  // Interference Avoidance / Terminate Orphan
	PrioUnique         = 20  // Unique Execution: drop duplicates
	PrioMain           = 30  // RPC Main: table maintenance, forwarding
	PrioAcceptDedupe   = 35  // Acceptance: duplicate-reply filtering (D2)
	PrioCollation      = 40  // Collation: fold the reply into the result
	PrioAcceptComplete = 45  // Acceptance: completion + waking the caller (D2)
	PrioOrder          = 100 // FIFO / Total Order: delivery ordering
)

// Handler priorities for CALL_FROM_USER and REPLY_FROM_SERVER. These two
// events have short chains: RPC Main records and sends a call before the
// call-semantics micro-protocols (DefaultPriority) block on it, and the
// per-protocol reply bookkeeping runs before Atomic Execution's
// checkpoint accounting.
const (
	PrioCallMain      = 1 // RPC Main: record the call, announce NEW_RPC_CALL, multicast
	PrioReplyBookkeep = 1 // ordering/unique/orphan protocols: per-reply bookkeeping
	PrioReplyAtomic   = 2 // Atomic Execution: runs after the bookkeeping handlers
)

// Transport is the underlying communication protocol ("Net" in the paper):
// unreliable, unordered point-to-point and multicast sends.
// netsim.Endpoint implements it.
type Transport interface {
	Push(to msg.ProcID, m *msg.NetMsg)
	Multicast(group msg.Group, m *msg.NetMsg)
}

// Server is the user protocol above gRPC on the server side. Pop executes
// the remote procedure (the x-kernel Server.pop): it receives the thread
// token for cooperative kill (may be consulted for cancellation), the
// operation id, and the marshalled arguments, and returns the marshalled
// result. Pop is called synchronously on the goroutine driving the call.
type Server interface {
	Pop(th *proc.Thread, op msg.OpID, args []byte) []byte
}

// ServerFunc adapts a function to the Server interface.
type ServerFunc func(th *proc.Thread, op msg.OpID, args []byte) []byte

// Pop implements Server.
func (f ServerFunc) Pop(th *proc.Thread, op msg.OpID, args []byte) []byte {
	return f(th, op, args)
}

// PendingEntry tracks one server's progress on one client call
// (waiting_list entries: acked by Reliable Communication, done by
// Acceptance).
type PendingEntry struct {
	Acked bool
	Done  bool
}

// ClientRecord is a pending remote procedure call at the client
// (Client_Record).
type ClientRecord struct {
	ID       msg.CallID
	Op       msg.OpID
	CallArgs []byte // input parameters, as sent (and resent) to the group
	Args     []byte // collated output parameters
	Server   msg.Group
	Sem      *sem.Sem // the client thread waits here
	NRes     int      // number of responses still required
	// Pending tracks each member's progress in lockstep with Server:
	// Pending[i] is Server[i]'s entry. A slice keyed by group index
	// replaces the paper's waiting_list map — groups are small enough that
	// the linear scan beats hashing, and the backing array recycles with
	// the record (D16).
	Pending []PendingEntry
	Status  msg.Status
	VC      msg.VClock // causal timestamp of the call (Causal Order only)
}

// PendingFor returns the pending entry for member p, or nil when p is not
// in the call's group. The pointer aliases the record's Pending slice: use
// it only inside the scoped callback (or under Take* ownership) that
// yielded the record.
func (r *ClientRecord) PendingFor(p msg.ProcID) *PendingEntry {
	for i, q := range r.Server {
		if q == p {
			return &r.Pending[i]
		}
	}
	return nil
}

// ServerRecord is a pending client call at a server (Server_Record).
type ServerRecord struct {
	Key    msg.CallKey
	Op     msg.OpID
	Args   []byte
	Server msg.Group
	Client msg.ProcID
	Inc    msg.Incarnation
	Thread *proc.Thread
	// Msg is the (frozen) network message that admitted the call. Retained
	// so a reconfiguration swap can re-home a call still held by a detached
	// ordering protocol (Sequencer.Adopt needs the original message).
	Msg *msg.NetMsg

	hold      [numHold]bool
	executing bool
}

// NetEvent is the argument of MSG_FROM_NETWORK occurrences: the delivered
// message plus, for Call messages, the thread token under which the
// procedure will execute.
type NetEvent struct {
	Msg    *msg.NetMsg
	Thread *proc.Thread
}

// --- steady-state object pools (D16) --------------------------------------
//
// The call path recycles its fixed-shape envelopes and records through
// sync.Pools, so a steady-state call allocates only what genuinely escapes
// it: the wire messages and the group snapshot they reference. Recycling
// leans on ownership rules enforced elsewhere — Take* transfers sole
// ownership of a record and the table-escape lint keeps scoped pointers
// from leaking — so the owner may scrub and repool. Slices that escape
// into frozen wire messages (a record's Server snapshot, a relEntry's
// group) are dropped at release, never reused: a recycled backing array
// would mutate a frozen message.

var (
	clientRecPool = newPool(func() any { return new(ClientRecord) })
	serverRecPool = newPool(func() any { return new(ServerRecord) })
	netEventPool  = newPool(func() any { return new(NetEvent) })
	userMsgPool   = newPool(func() any { return new(msg.UserMsg) })
	callKeyPool   = newPool(func() any { return new(msg.CallKey) })
	callIDPool    = newPool(func() any { return new(msg.CallID) })
)

// releaseClientRec scrubs and recycles a collected call record. The
// semaphore is kept only when certainly quiescent: Close can race a stray
// V onto an already-completed record, and such a semaphore is dropped
// rather than poisoning a future call with a phantom unit.
func releaseClientRec(rec *ClientRecord) {
	s := rec.Sem
	if s != nil && (s.Count() != 0 || s.Waiters() != 0) {
		s = nil
	}
	*rec = ClientRecord{Sem: s, Pending: rec.Pending[:0]}
	clientRecPool.Put(rec)
}

// getServerRec returns a scrubbed server record ready to fill.
func getServerRec() *ServerRecord { return serverRecPool.Get().(*ServerRecord) }

// releaseServerRec scrubs and recycles a server record the caller owns
// (obtained via TakeServer).
func releaseServerRec(rec *ServerRecord) {
	*rec = ServerRecord{}
	serverRecPool.Put(rec)
}

// PutUserMsg recycles a UserMsg obtained from Call, CallAdmitted or
// Request once the caller has copied out the fields it needs. Optional —
// an unreturned message is simply garbage collected.
//
//lint:owns um
func PutUserMsg(um *msg.UserMsg) {
	*um = msg.UserMsg{}
	userMsgPool.Put(um)
}

func getUserMsg() *msg.UserMsg { return userMsgPool.Get().(*msg.UserMsg) }

// Options configures a Framework.
type Options struct {
	Site       *proc.Site // identity + incarnation source (required)
	Bus        *event.Bus // event framework (required)
	Net        Transport  // communication substrate (required)
	Server     Server     // user protocol; nil on pure clients
	Membership member.Service
	// Trace, when non-nil, receives structured trace events at the
	// semantically meaningful points of every call's lifetime (issue,
	// completion, execution, reply, duplicate suppression, orphan kills).
	// The conformance harness replays these through its property oracles;
	// a nil sink costs one pointer compare per site.
	Trace trace.Sink
	// FlushSize caps how many outbound messages one batch frame of the
	// flush queue coalesces (deviation D16); 0 selects the default.
	FlushSize int
	// TreeFanout selects the dissemination mode (D17): 0 or 1 sends every
	// group multicast flat; k ≥ 2 disseminates over a deterministic k-ary
	// relay tree, dropping sender egress from O(g) to O(k).
	TreeFanout int
}

// Framework is the composite-protocol framework: shared data structures,
// the HOLD array, and the control-flow plumbing shared by all
// micro-protocols.
//
// Shared state falls into three regimes:
//
//   - the call tables (clients/servers), sharded and reached only through
//     the scoped API in table.go;
//   - configuration (hold, causal, serialMode), written by micro-protocol
//     Attach/Detach calls either before Start or under the reconfiguration
//     barrier (Composite.Swap holds dispatchMu exclusively while every
//     dispatch path holds it shared), so runtime reads need no further
//     synchronization;
//   - runtime scalars with their own discipline (nextSeq and inc are
//     atomics; the causal vector and the serial drain queue keep dedicated
//     mutexes because they are genuinely mutated on the hot path).
type Framework struct {
	site       *proc.Site
	bus        *event.Bus
	net        Transport // the flush queue wrapping the real transport (D16)
	flusher    *Flusher
	dissem     *Disseminator // dissemination layer under the flush queue (D17)
	server     Server
	membership member.Service
	threads    *proc.Threads
	sink       trace.Sink

	// Call tables (pRPC and sRPC, §4.2), sharded; see table.go.
	clients clientTable
	servers serverTable
	nextSeq atomic.Int64

	hold [numHold]bool // HOLD array: properties every call must satisfy

	// started flips when configuration freezes (Start); the configuration
	// mutators refuse to run after it unless the reconfiguration barrier is
	// held (reconfiguring, set by Composite.Swap under dispatchMu).
	started       atomic.Bool
	reconfiguring atomic.Bool

	// dispatchMu is the reconfiguration barrier: every dispatch entry point
	// (network delivery, user calls, timer firings, membership changes,
	// recovery) holds it shared for the duration of the trigger, and
	// Composite.Swap holds it exclusively while detaching and attaching
	// micro-protocols — so a swap observes a composite with no handler
	// mid-flight.
	dispatchMu sync.RWMutex

	// Admission gate: Reconfigure closes it to stop admitting NEW_RPC_CALL
	// while draining. admitActive counts callers between gate entry and the
	// end of their CALL_FROM_USER dispatch, so CloseAdmission can wait out
	// stragglers that passed the gate but have not yet created their call
	// record.
	admitMu     sync.Mutex
	admitCond   *sync.Cond
	admitClosed bool
	admitActive int

	// executedQuery, installed by Unique Execution, reports whether a call
	// key has already been executed here; a freshly attached ordering
	// protocol consults it to avoid sequencing duplicates of pre-swap calls.
	executedQuery func(msg.CallKey) bool

	// Causal Order state (extension; see causal.go). vc is the CBCAST
	// vector: this process's own entry counts calls it has issued, other
	// entries count calls delivered (executed) from those clients.
	causal bool
	vcMu   sync.Mutex
	vc     msg.VClock

	// Serial Execution state (deviation D3): when serialMode is set,
	// eligible calls execute one at a time through a drain queue rather
	// than the paper's semaphore around delivery — which, as written,
	// acquires the slot in admission order and therefore deadlocks when an
	// ordering protocol schedules an earlier-admitted call after a
	// later-admitted one.
	serialMode bool
	serialMu   sync.Mutex
	serialBusy bool
	serialQ    []msg.CallKey

	// inc caches the current incarnation (updated by RPC Main's recovery
	// handler, read when stamping outgoing calls).
	inc atomic.Int32

	unsubscribe func()
	closed      bool
	cmu         sync.Mutex
}

// NewFramework constructs the framework. Micro-protocols are then attached
// via their Attach functions, after which the composite is live.
func NewFramework(opts Options) (*Framework, error) {
	if opts.Site == nil || opts.Bus == nil || opts.Net == nil {
		return nil, fmt.Errorf("core: site, bus and net are required")
	}
	ms := opts.Membership
	if ms == nil {
		ms = member.NewStatic()
	}
	fw := &Framework{
		site:       opts.Site,
		bus:        opts.Bus,
		server:     opts.Server,
		membership: ms,
		threads:    proc.NewThreads(),
		sink:       opts.Trace,
	}
	// Every sender goes through the flush queue, which sits on the
	// dissemination layer, which sits on the raw transport; Net() hands out
	// the top of the stack, so micro-protocols coalesce and disseminate
	// without knowing either exists.
	fw.dissem = newDisseminator(fw, opts.Net, opts.TreeFanout)
	fw.flusher = newFlusher(fw, fw.dissem, opts.FlushSize)
	fw.net = fw.flusher
	fw.clients.init()
	fw.servers.init()
	fw.nextSeq.Store(1)
	fw.inc.Store(int32(opts.Site.Inc()))
	fw.admitCond = sync.NewCond(&fw.admitMu)
	// Timer firings must participate in the reconfiguration barrier; the
	// gate is installed before any micro-protocol can arm a timeout.
	fw.bus.SetDispatchGate(func() func() {
		fw.dispatchMu.RLock()
		return fw.dispatchMu.RUnlock
	})
	fw.unsubscribe = ms.Subscribe(func(c member.Change) {
		// Tree repair first: re-delivering the window before the protocols
		// react means a handler that retransmits sees the repaired tree.
		fw.dissem.OnMembership(c)
		fw.dispatchMu.RLock()
		defer fw.dispatchMu.RUnlock()
		fw.bus.Trigger(event.MembershipChange, c)
	})
	return fw, nil
}

// Start freezes the framework's configuration: the configuration mutators
// (SetHold, EnableSerial, EnableCausal and their Clear/Disable inverses)
// panic from here on unless the reconfiguration barrier is held, which is
// what lets the hot path read hold/causal/serialMode without locks.
// NewComposite calls it after the last Attach.
func (fw *Framework) Start() { fw.started.Store(true) }

// mustConfigure guards the configuration mutators: they may run before
// Start (initial composite assembly) or under the reconfiguration barrier
// (Composite.Swap holds dispatchMu exclusively, so no dispatch observes a
// half-configured framework), and nowhere else.
func (fw *Framework) mustConfigure(what string) {
	if fw.started.Load() && !fw.reconfiguring.Load() {
		panic("core: " + what + " on a live composite — micro-protocol configuration mutates only before Start or under the reconfiguration barrier (Composite.Swap)")
	}
}

// Self returns this site's process id.
func (fw *Framework) Self() msg.ProcID { return fw.site.ID() }

// Tracing reports whether a structured trace sink is installed; emission
// sites guard on it so the disabled path builds no event.
func (fw *Framework) Tracing() bool { return fw.sink != nil }

// Emit stamps the event with this site's identity and incarnation and
// records it. Callers guard with Tracing; a nil sink is still tolerated.
func (fw *Framework) Emit(e trace.Event) {
	if fw.sink == nil {
		return
	}
	e.Site = fw.Self()
	e.SiteInc = fw.Inc()
	fw.sink.Record(e)
}

// Bus returns the event framework.
func (fw *Framework) Bus() *event.Bus { return fw.bus }

// Net returns the communication substrate.
func (fw *Framework) Net() Transport { return fw.net }

// Membership returns the membership service.
func (fw *Framework) Membership() member.Service { return fw.membership }

// Threads returns the server-thread registry.
func (fw *Framework) Threads() *proc.Threads { return fw.threads }

// Inc returns the incarnation number stamped on outgoing calls.
func (fw *Framework) Inc() msg.Incarnation {
	return msg.Incarnation(fw.inc.Load())
}

// SetInc updates the cached incarnation (RPC Main's recovery handler).
func (fw *Framework) SetInc(i msg.Incarnation) {
	fw.inc.Store(int32(i))
}

// SetHold marks index as a property every call must satisfy before being
// passed to the server (HOLD[index] = true at micro-protocol init).
// Configuration mutator (before Start or under the swap barrier).
func (fw *Framework) SetHold(index HoldIndex) {
	fw.mustConfigure("SetHold")
	fw.hold[index] = true
}

// ClearHold reverses SetHold when the owning micro-protocol detaches.
// Configuration mutator (before Start or under the swap barrier).
func (fw *Framework) ClearHold(index HoldIndex) {
	fw.mustConfigure("ClearHold")
	fw.hold[index] = false
}

// EnableSerial switches the framework to serial execution: eligible calls
// are executed one at a time, in eligibility order. Configuration mutator
// (before Start or under the swap barrier).
func (fw *Framework) EnableSerial() {
	fw.mustConfigure("EnableSerial")
	fw.serialMode = true
}

// DisableSerial reverses EnableSerial when Serial Execution detaches.
// Configuration mutator (before Start or under the swap barrier).
func (fw *Framework) DisableSerial() {
	fw.mustConfigure("DisableSerial")
	fw.serialMode = false
}

// SetExecutedQuery installs (or with nil, removes) Unique Execution's
// executed-call predicate; see Framework.AlreadyExecuted. Configuration
// mutator (before Start or under the swap barrier).
func (fw *Framework) SetExecutedQuery(q func(msg.CallKey) bool) {
	fw.mustConfigure("SetExecutedQuery")
	fw.executedQuery = q
}

// AlreadyExecuted reports whether the call identified by key has already
// executed at this server, according to Unique Execution's dedup tables
// (false when Unique Execution is not configured). A freshly attached
// ordering protocol uses it to recognize duplicates of calls that executed
// before the protocol attached: sequencing such a duplicate would reserve a
// slot no reply will ever release.
func (fw *Framework) AlreadyExecuted(key msg.CallKey) bool {
	return fw.executedQuery != nil && fw.executedQuery(key)
}

// --- Causal Order support (extension; see causal.go) ---------------------

// EnableCausal switches on causal timestamping: outgoing calls carry a
// vector clock and replies carry the server's delivered-vector.
// Configuration mutator (before Start or under the swap barrier).
func (fw *Framework) EnableCausal() {
	fw.mustConfigure("EnableCausal")
	fw.causal = true
	fw.vcMu.Lock()
	fw.vc = make(msg.VClock)
	fw.vcMu.Unlock()
}

// DisableCausal reverses EnableCausal when Causal Order detaches.
// Configuration mutator (before Start or under the swap barrier).
func (fw *Framework) DisableCausal() {
	fw.mustConfigure("DisableCausal")
	fw.causal = false
	fw.vcMu.Lock()
	fw.vc = nil
	fw.vcMu.Unlock()
}

// RestoreVC replaces the causal vector with a previously exported snapshot
// (Causal Order state migration). Configuration mutator.
func (fw *Framework) RestoreVC(v msg.VClock) {
	fw.mustConfigure("RestoreVC")
	fw.vcMu.Lock()
	fw.vc = v
	fw.vcMu.Unlock()
}

// CausalEnabled reports whether causal timestamping is on.
func (fw *Framework) CausalEnabled() bool { return fw.causal }

// StampOutgoingCall advances this process's own entry and returns the
// vector timestamp for a new call (CBCAST send rule).
func (fw *Framework) StampOutgoingCall() msg.VClock {
	fw.vcMu.Lock()
	defer fw.vcMu.Unlock()
	fw.vc[fw.Self()]++
	return fw.vc.Clone()
}

// MergeVC folds a received timestamp into the local vector (clients learn
// about other clients' executed calls from reply timestamps).
func (fw *Framework) MergeVC(o msg.VClock) {
	if len(o) == 0 {
		return
	}
	fw.vcMu.Lock()
	fw.vc = fw.vc.Merge(o)
	fw.vcMu.Unlock()
}

// VCSnapshot returns a copy of the local vector.
func (fw *Framework) VCSnapshot() msg.VClock {
	fw.vcMu.Lock()
	defer fw.vcMu.Unlock()
	return fw.vc.Clone()
}

// CausalDeliverable applies the CBCAST delivery condition for a call from
// client with timestamp t: t[client] is the next undelivered call of that
// client and every other dependency is already delivered.
func (fw *Framework) CausalDeliverable(client msg.ProcID, t msg.VClock) bool {
	fw.vcMu.Lock()
	defer fw.vcMu.Unlock()
	if t.Get(client) != fw.vc.Get(client)+1 {
		return false
	}
	for q, n := range t {
		if q == client {
			continue
		}
		if n > fw.vc.Get(q) {
			return false
		}
	}
	return true
}

// BumpDelivered records the delivery (execution) of one more call from
// client.
func (fw *Framework) BumpDelivered(client msg.ProcID) {
	fw.vcMu.Lock()
	fw.vc[client]++
	fw.vcMu.Unlock()
}

// ResetDelivered zeroes the delivered count for client (a recovered
// client's fresh incarnation restarts its call numbering).
func (fw *Framework) ResetDelivered(client msg.ProcID) {
	fw.vcMu.Lock()
	delete(fw.vc, client)
	fw.vcMu.Unlock()
}

// SerialEnabled reports whether serial execution is configured.
func (fw *Framework) SerialEnabled() bool { return fw.serialMode }

// --- pRPC table (client side) -------------------------------------------

// NewClientRec allocates a call id and inserts a fully initialized pending
// record for a call to group; vc is the call's causal timestamp (nil
// without Causal Order). The record is built before it becomes reachable,
// so no caller-side locking is needed.
func (fw *Framework) NewClientRec(op msg.OpID, args []byte, group msg.Group, vc msg.VClock) *ClientRecord {
	// Call ids embed the incarnation number in their upper bits (deviation
	// D9): a recovered client's fresh calls can therefore never collide
	// with its pre-crash calls in server-side tables, while ids stay dense
	// within one incarnation (which FIFO Order's id+1 arithmetic needs).
	// The paper leaves id freshness across recoveries unspecified.
	id := msg.CallID(int64(fw.Inc())<<32 | (fw.nextSeq.Add(1) - 1))
	// The input args double as the initial output value, matching the
	// paper's single args field; Collation replaces them with its init
	// value before any reply arrives (deviation D7: retransmissions use
	// CallArgs so the collation accumulator never leaks onto the wire).
	rec := clientRecPool.Get().(*ClientRecord)
	s := rec.Sem
	if s == nil {
		s = sem.New(0)
	}
	pending := rec.Pending[:0]
	for range group {
		pending = append(pending, PendingEntry{})
	}
	*rec = ClientRecord{
		ID:       id,
		Op:       op,
		CallArgs: args,
		Args:     args,
		Server:   group.Clone(),
		Sem:      s,
		Pending:  pending,
		Status:   msg.StatusWaiting,
		VC:       vc,
	}
	fw.clients.put(rec)
	if fw.Tracing() {
		fw.Emit(trace.Event{Kind: trace.KCallIssued, Client: fw.Self(), ID: id,
			Op: op, Group: rec.Server, VC: vc})
	}
	return rec
}

// TakeClient removes and returns the record for id, transferring ownership:
// the record is unreachable afterwards, so the caller may read its fields
// without further locking.
func (fw *Framework) TakeClient(id msg.CallID) (*ClientRecord, bool) {
	return fw.clients.take(id)
}

// HasClient reports whether a pending call record for id exists.
func (fw *Framework) HasClient(id msg.CallID) bool {
	return fw.clients.with(id, func(*ClientRecord) {})
}

// PendingCalls returns the number of outstanding client calls.
func (fw *Framework) PendingCalls() int { return fw.clients.len() }

// --- sRPC table (server side) ---------------------------------------------

// PutServerRec inserts rec unless a record with its key is already held,
// and reports whether the insert happened (false = duplicate). rec must be
// fully initialized: it is reachable by other goroutines on return.
//
// The table takes ownership on the true path; on the false path the caller
// still holds the only reference and typically releases it. That
// conditional handoff is declared, not inferred:
//
//lint:owns rec
func (fw *Framework) PutServerRec(rec *ServerRecord) bool {
	return fw.servers.putIfAbsent(rec)
}

// TakeServer removes and returns the record for key, transferring
// ownership (see TakeClient).
func (fw *Framework) TakeServer(key msg.CallKey) (*ServerRecord, bool) {
	return fw.servers.take(key)
}

// PendingServerCalls returns the number of calls held at this server.
func (fw *Framework) PendingServerCalls() int { return fw.servers.len() }

// DropServerCall removes a held call that an ordering or orphan
// micro-protocol has decided to discard (duplicate of an executed call,
// stale generation, ...): the record is deleted and its thread finished.
// It reports whether a record was actually dropped (false when the call
// already completed or was dropped by someone else).
func (fw *Framework) DropServerCall(key msg.CallKey) bool {
	rec, ok := fw.servers.take(key)
	if !ok {
		return false
	}
	if rec.Thread != nil {
		rec.Thread.Kill()
		fw.threads.Finish(rec.Thread)
	}
	releaseServerRec(rec)
	return true
}

// --- control flow ---------------------------------------------------------

// ForwardUp records that property index is satisfied for the call and, once
// every property in HOLD is satisfied, executes the procedure and sends the
// reply — the forward_up procedure exported by RPC Main (§4.4.1). With
// Serial Execution configured, eligible calls are instead queued and
// executed one at a time in eligibility order (deviation D3).
func (fw *Framework) ForwardUp(key msg.CallKey, index HoldIndex) {
	execute := false
	fw.WithServer(key, func(rec *ServerRecord) {
		rec.hold[index] = true
		execute = !rec.executing
		for i := HoldIndex(0); i < numHold; i++ {
			if fw.hold[i] && !rec.hold[i] {
				execute = false
			}
		}
		if execute {
			rec.executing = true
		}
	})
	if !execute {
		return
	}

	if !fw.serialMode {
		fw.executeCall(key)
		return
	}

	fw.serialMu.Lock()
	if fw.serialBusy {
		fw.serialQ = append(fw.serialQ, key)
		fw.serialMu.Unlock()
		return
	}
	fw.serialBusy = true
	fw.serialMu.Unlock()

	fw.executeCall(key)
	for {
		fw.serialMu.Lock()
		if len(fw.serialQ) == 0 {
			fw.serialBusy = false
			fw.serialMu.Unlock()
			return
		}
		next := fw.serialQ[0]
		fw.serialQ = fw.serialQ[1:]
		fw.serialMu.Unlock()
		fw.executeCall(next)
	}
}

// executeCall runs the procedure for an eligible call and sends the reply.
func (fw *Framework) executeCall(key msg.CallKey) {
	var (
		args   []byte
		op     msg.OpID
		th     *proc.Thread
		client msg.ProcID
		server msg.Group
	)
	if !fw.WithServer(key, func(rec *ServerRecord) {
		args, op, th = rec.Args, rec.Op, rec.Thread
		client, server = rec.Client, rec.Server
	}) {
		// Dropped (orphan sweep, stale duplicate) after becoming eligible.
		return
	}

	var result []byte
	if fw.server != nil && (th == nil || !th.IsKilled()) {
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KExecBegin, Client: key.Client, ID: key.ID, Op: op})
		}
		result = fw.server.Pop(th, op, args)
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KExecEnd, Client: key.Client, ID: key.ID, Op: op})
		}
	}

	if th != nil && th.IsKilled() {
		// Terminate Orphan (or a crash) killed the computation: suppress
		// the reply.
		if r, ok := fw.TakeServer(key); ok {
			releaseServerRec(r)
		}
		fw.threads.Finish(th)
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KOrphanKilled, Client: key.Client, ID: key.ID})
		}
		return
	}

	fw.WithServer(key, func(rec *ServerRecord) { rec.Args = result })

	// REPLY_FROM_SERVER runs while the record is still in sRPC (Unique
	// Execution and the ordering protocols read it); then the record is
	// removed and the reply pushed — the paper's order, with its
	// read-after-delete slip fixed. The key rides in a pooled box: boxing
	// the 16-byte struct into the event argument directly would allocate
	// on every reply.
	kb := callKeyPool.Get().(*msg.CallKey)
	*kb = key
	fw.bus.Trigger(event.ReplyFromServer, kb)
	callKeyPool.Put(kb)

	// With Causal Order, the reply carries the server's delivered-vector
	// (which already includes this call): merging it at the client makes
	// subsequent calls causally follow everything executed before this
	// reply.
	var replyVC msg.VClock
	if fw.causal {
		replyVC = fw.VCSnapshot()
	}
	reply := &msg.NetMsg{
		Type:   msg.OpReply,
		ID:     key.ID,
		Client: key.Client,
		Op:     op,
		Args:   result,
		Server: server,
		Sender: fw.Self(),
		Inc:    fw.Inc(),
		VC:     replyVC,
	}
	srec, held := fw.TakeServer(key)
	if held {
		releaseServerRec(srec)
	}
	if th != nil {
		fw.threads.Finish(th)
	}
	if !held || (th != nil && th.IsKilled()) {
		// The record was taken away mid-execution (an orphan sweep dropped
		// the call) or the thread was killed after the procedure returned:
		// the computation is an exterminated orphan, so its reply must not
		// escape. Without this check a kill landing between the post-Pop
		// test and the push would leak the reply.
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KOrphanKilled, Client: key.Client, ID: key.ID})
		}
		return
	}
	if fw.Tracing() {
		fw.Emit(trace.Event{Kind: trace.KReplySent, Client: key.Client, ID: key.ID, Op: op})
	}
	fw.net.Push(client, reply)
}

// --- reconfiguration machinery --------------------------------------------

// CloseAdmission stops admitting new calls: Call blocks at the admission
// gate until OpenAdmission. It returns only once every caller that had
// already passed the gate has finished its CALL_FROM_USER dispatch, so
// after CloseAdmission returns, the set of pending client calls is exactly
// what WaitingClientCalls sees — nothing is about to appear. Batch frames
// parked in the flush queue (an open pipeline racing the reconfiguration)
// are force-flushed last: their calls already have records — the admission
// count stays sound mid-batch — but the drain barrier needs them on the
// wire, not wedged in a lane.
func (fw *Framework) CloseAdmission() {
	fw.admitMu.Lock()
	fw.admitClosed = true
	for fw.admitActive > 0 {
		fw.admitCond.Wait()
	}
	fw.admitMu.Unlock()
	fw.flusher.ForceFlush()
}

// Flush force-flushes every lane of the flush queue (partial batches
// included). Tests and the facade's drain paths use it to push parked
// traffic onto the wire without closing admission.
func (fw *Framework) Flush() { fw.flusher.ForceFlush() }

// PipelineBegin opens a pipeline hold on the flush queue: no-wait calls
// issued until PipelineEnd park per destination and go out as batch
// frames. Holds nest; a full lane (FlushSize) flushes early, and a
// drain-class reconfiguration force-flushes parked frames regardless.
func (fw *Framework) PipelineBegin() { fw.flusher.PipelineBegin() }

// PipelineEnd closes a pipeline hold and flushes everything parked once
// the last hold is gone.
func (fw *Framework) PipelineEnd() { fw.flusher.PipelineEnd() }

// SetFlushSize changes the flush queue's batch size cap (live
// reconfiguration of Config.FlushSize).
func (fw *Framework) SetFlushSize(n int) { fw.flusher.SetMax(n) }

// SetTreeFanout changes the dissemination mode (reconfiguration of
// Config.Dissemination, D17): 0/1 = flat, k ≥ 2 = k-ary relay tree.
// Dissemination swaps are drain-class, so this runs with no frame in
// flight.
func (fw *Framework) SetTreeFanout(k int) { fw.dissem.SetFanout(k) }

// TreeFanout returns the current dissemination fanout (0 = flat).
func (fw *Framework) TreeFanout() int { return fw.dissem.Fanout() }

// OpenAdmission reopens the admission gate, waking blocked callers.
func (fw *Framework) OpenAdmission() {
	fw.admitMu.Lock()
	fw.admitClosed = false
	fw.admitCond.Broadcast()
	fw.admitMu.Unlock()
}

// admitEnter blocks while the admission gate is closed, then counts the
// caller as active until admitExit.
func (fw *Framework) admitEnter() {
	fw.admitMu.Lock()
	for fw.admitClosed {
		fw.admitCond.Wait()
	}
	fw.admitActive++
	fw.admitMu.Unlock()
}

func (fw *Framework) admitExit() {
	fw.admitMu.Lock()
	fw.admitActive--
	if fw.admitActive == 0 {
		fw.admitCond.Broadcast()
	}
	fw.admitMu.Unlock()
}

// WaitingClientCalls returns the number of pending client calls still
// waiting for completion. Completed-but-uncollected asynchronous records do
// not count: they are inert (no retransmission, no reply expected) and
// safely survive a swap for later Collect.
func (fw *Framework) WaitingClientCalls() int {
	n := 0
	fw.EachClient(func(r *ClientRecord) {
		if r.Status == msg.StatusWaiting {
			n++
		}
	})
	return n
}

// rehomeHeldCalls re-homes every non-executing sRPC record after a swap
// changed the ordering property: ordering hold bits are reset and each call
// is offered to the new ordering protocol (seq) as if it had just arrived,
// or — with no ordering configured — released for execution. Runs under the
// swap barrier; records are processed in deterministic (client, id) order.
func (fw *Framework) rehomeHeldCalls(seq Sequencer) {
	type held struct {
		key msg.CallKey
		m   *msg.NetMsg
	}
	var calls []held
	fw.ServerTx(func(tx ServerTx) {
		tx.Each(func(r *ServerRecord) {
			if r.executing {
				// Impossible under the barrier (execution happens inside a
				// dispatch, which the barrier excludes); left untouched if it
				// ever were.
				return
			}
			r.hold[HoldFIFO] = false
			r.hold[HoldTotal] = false
			r.hold[HoldCausal] = false
			calls = append(calls, held{key: r.Key, m: r.Msg})
		})
	})
	sort.Slice(calls, func(i, j int) bool {
		if calls[i].key.Client != calls[j].key.Client {
			return calls[i].key.Client < calls[j].key.Client
		}
		return calls[i].key.ID < calls[j].key.ID
	})
	for _, c := range calls {
		if seq != nil && c.m != nil {
			seq.Adopt(c.key, c.m)
		} else {
			fw.ForwardUp(c.key, HoldMain)
		}
	}
}

// HandleNet is the delivery entry point wired to the transport: it turns an
// arriving message into a MSG_FROM_NETWORK occurrence. A batch frame is
// unpacked here, its sub-messages dispatched sequentially in send order
// under one barrier acquisition — the transport contract is unordered, so
// serializing what used to race as independent deliveries only narrows the
// interleavings (D16). For Call messages a thread token is created first,
// so the orphan micro-protocols can track and kill the computation.
func (fw *Framework) HandleNet(m *msg.NetMsg) {
	fw.cmu.Lock()
	if fw.closed {
		fw.cmu.Unlock()
		return
	}
	fw.cmu.Unlock()

	// Dissemination-tree hooks (D17) run before the reconfiguration
	// barrier: relaying only touches the raw transport, and keeping the
	// frozen bytes moving during a drain helps the drain finish. A relay
	// ack addressed to another node's call is consumed here; everything
	// else still dispatches below.
	if m.Type == msg.OpRelayAck {
		if fw.dissem.ConsumeRelayAck(m) {
			return
		}
	} else if m.Relay != 0 {
		fw.dissem.HandleRelay(m)
	}

	fw.dispatchMu.RLock()
	defer fw.dispatchMu.RUnlock()

	if m.Type == msg.OpBatch {
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KBatchDelivered, From: m.Sender,
				Op: msg.OpID(len(m.Batch))})
		}
		for _, sub := range m.Batch {
			fw.handleOne(sub)
		}
		return
	}
	fw.handleOne(m)
}

// handleOne dispatches one (non-batch) delivered message. The caller holds
// the dispatch barrier shared.
func (fw *Framework) handleOne(m *msg.NetMsg) {
	// The event envelope is pooled: handlers receive it synchronously and
	// must not retain it past their return (handler discipline), so it can
	// be scrubbed and recycled as soon as the trigger completes.
	ev := netEventPool.Get().(*NetEvent)
	ev.Msg, ev.Thread = m, nil
	if m.Type == msg.OpCall {
		ev.Thread = fw.threads.Spawn(m.Client)
	}
	completed := fw.bus.Trigger(event.MsgFromNetwork, ev)
	if !completed && ev.Thread != nil {
		// The occurrence was cancelled (duplicate, stale generation, ...):
		// retire this delivery's token unless a stored record adopted it.
		owned := false
		thread := ev.Thread
		fw.WithServer(m.Key(), func(rec *ServerRecord) {
			owned = rec.Thread == thread
		})
		if !owned {
			fw.threads.Finish(thread)
		}
	}
	ev.Msg, ev.Thread = nil, nil
	netEventPool.Put(ev)
}

// Call issues a synchronous (or, with Asynchronous Call configured,
// asynchronous) RPC to group. It triggers CALL_FROM_USER and returns the
// user message, whose ID, Args and Status fields have been filled in by the
// configured call-semantics micro-protocol. The caller passes the admission
// gate first (a reconfiguration drain may hold it closed briefly), and any
// blocking wait happens in the Collect continuation after dispatch, outside
// the reconfiguration barrier.
func (fw *Framework) Call(op msg.OpID, args []byte, group msg.Group) *msg.UserMsg {
	um := getUserMsg()
	um.Type, um.Op, um.Args, um.Server = msg.UserCall, op, args, group
	fw.admitEnter()
	fw.dispatchMu.RLock()
	fw.bus.Trigger(event.CallFromUser, um)
	fw.dispatchMu.RUnlock()
	fw.admitExit()
	fw.CollectUserMsg(um)
	return um
}

// AdmitEnter passes the admission gate without issuing a call, blocking
// while a reconfiguration drain holds it closed. While a caller is inside
// the gate a drain-class swap cannot complete, so the node's call-mode
// configuration is stable — the facade uses this to make its mode check
// atomic with the submission. Pair with AdmitExit; do not block in between.
func (fw *Framework) AdmitEnter() { fw.admitEnter() }

// AdmitExit releases AdmitEnter's hold on the admission gate.
func (fw *Framework) AdmitExit() { fw.admitExit() }

// CallAdmitted is Call for a caller that already holds the admission gate
// via AdmitEnter. It dispatches the call but does not run the Collect
// continuation; the caller runs it, if set, after releasing the gate.
func (fw *Framework) CallAdmitted(op msg.OpID, args []byte, group msg.Group) *msg.UserMsg {
	um := getUserMsg()
	um.Type, um.Op, um.Args, um.Server = msg.UserCall, op, args, group
	fw.dispatchMu.RLock()
	fw.bus.Trigger(event.CallFromUser, um)
	fw.dispatchMu.RUnlock()
	return um
}

// CollectUserMsg runs the blocking collect step for a dispatched user
// message whose Wait flag is set: park on the call's semaphore, then move
// the result into um and retire the record. Call and Request run it
// themselves; CallAdmitted callers run it after releasing the admission
// gate. It happens outside the dispatch barrier, so a parked caller never
// delays a swap.
func (fw *Framework) CollectUserMsg(um *msg.UserMsg) {
	if !um.Wait {
		return
	}
	um.Wait = false
	var s *sem.Sem
	fw.WithClient(um.ID, func(rec *ClientRecord) { s = rec.Sem })
	if s == nil {
		// Unknown or already-collected call.
		um.Status = msg.StatusAborted
		return
	}
	s.P()
	// Take transfers record ownership; the shard mutex pairing gives the
	// happens-before that makes the lock-free reads below safe.
	rec, ok := fw.TakeClient(um.ID)
	if !ok {
		um.Status = msg.StatusAborted
		return
	}
	um.Args = rec.Args
	um.Status = rec.Status
	um.Op = rec.Op
	releaseClientRec(rec)
}

// Request retrieves the result of a previously issued asynchronous call,
// blocking until it is available (Asynchronous Call micro-protocol).
// Collecting needs no admission (it creates no new call); the blocking wait
// happens outside the barrier, like Call's.
func (fw *Framework) Request(id msg.CallID) *msg.UserMsg {
	um := getUserMsg()
	um.Type, um.ID = msg.UserRequest, id
	fw.dispatchMu.RLock()
	fw.bus.Trigger(event.CallFromUser, um)
	fw.dispatchMu.RUnlock()
	fw.CollectUserMsg(um)
	return um
}

// Recover delivers the RECOVERY event with the site's new incarnation.
func (fw *Framework) Recover() {
	fw.SetInc(fw.site.Inc())
	fw.dispatchMu.RLock()
	defer fw.dispatchMu.RUnlock()
	fw.bus.Trigger(event.Recovery, fw.site.Inc())
}

// Close shuts the composite down: pending client calls are aborted (their
// waiters wake with StatusAborted), live server threads are killed, timers
// are stopped, and the membership subscription is dropped.
func (fw *Framework) Close() {
	fw.cmu.Lock()
	if fw.closed {
		fw.cmu.Unlock()
		return
	}
	fw.closed = true
	fw.cmu.Unlock()

	// Wake callers blocked at the admission gate (a Reconfigure interrupted
	// by shutdown must not strand them).
	fw.OpenAdmission()

	if fw.unsubscribe != nil {
		fw.unsubscribe()
	}
	fw.bus.Close()

	// Abort every pending call atomically (a call issued concurrently with
	// Close either completes normally or is aborted here, never missed),
	// then wake the parked callers outside the table locks. Only calls
	// aborted here are woken: completed-but-uncollected records already
	// carry their completion unit, and a gratuitous second V would leave a
	// phantom unit behind on a semaphore the record pool might reuse.
	var wake []*ClientRecord
	fw.ClientTx(func(tx ClientTx) {
		tx.Each(func(r *ClientRecord) {
			if r.Status == msg.StatusWaiting {
				r.Status = msg.StatusAborted
				wake = append(wake, r)
			}
		})
	})
	for _, r := range wake {
		if fw.Tracing() {
			fw.Emit(trace.Event{Kind: trace.KCallDone, Client: fw.Self(), ID: r.ID,
				Status: msg.StatusAborted})
		}
		r.Sem.V()
	}

	fw.threads.KillAll()
}
