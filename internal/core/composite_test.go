package core

import (
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

func TestCompositeAssembly(t *testing.T) {
	net := newMemNet()
	protos := []MicroProtocol{
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&ReliableCommunication{RetransTimeout: time.Hour},
		&BoundedTermination{TimeBound: time.Hour},
		&UniqueExecution{}, &SerialExecution{}, &FIFOOrder{},
		&InterferenceAvoidance{},
	}
	comp, err := NewComposite(Options{
		Site:   proc.NewSite(1),
		Bus:    event.New(clock.NewReal()),
		Net:    memEP{n: net},
		Server: echoServer(),
	}, protos...)
	if err != nil {
		t.Fatal(err)
	}
	defer comp.Close()

	names := comp.Protocols()
	want := []string{"RPC Main", "Synchronous Call", "Acceptance", "Collation",
		"Reliable Communication", "Bounded Termination", "Unique Execution",
		"Serial Execution", "FIFO Order", "Interference Avoidance"}
	if len(names) != len(want) {
		t.Fatalf("protocols = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("protocols[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if comp.Framework() == nil || comp.Framework().Threads() == nil {
		t.Fatal("accessors")
	}

	// Every remaining Name() for completeness.
	for _, p := range []MicroProtocol{&AsynchronousCall{}, &AtomicExecution{},
		&TotalOrder{}, &CausalOrder{}, &TerminateOrphan{}} {
		if p.Name() == "" {
			t.Fatal("empty protocol name")
		}
	}
}

func TestCompositeAttachFailureCloses(t *testing.T) {
	net := newMemNet()
	// Atomic Execution without deps fails to attach; NewComposite must
	// surface the error.
	_, err := NewComposite(Options{
		Site: proc.NewSite(1),
		Bus:  event.New(clock.NewReal()),
		Net:  memEP{n: net},
	}, &RPCMain{}, &AtomicExecution{})
	if err == nil {
		t.Fatal("NewComposite accepted a failing micro-protocol")
	}
}

func TestNewFrameworkRequiredOptions(t *testing.T) {
	if _, err := NewFramework(Options{}); err == nil {
		t.Fatal("NewFramework accepted empty options")
	}
}

func TestTakeServerRec(t *testing.T) {
	net := newMemNet()
	n := addNode(t, net, 1, nodeOpts{server: echoServer()}, &RPCMain{})
	key := msg.CallKey{Client: 9, ID: 9}
	if !n.fw.PutServerRec(&ServerRecord{Key: key}) {
		t.Fatal("PutServerRec rejected a fresh key")
	}
	if n.fw.PutServerRec(&ServerRecord{Key: key}) {
		t.Fatal("PutServerRec accepted a duplicate key")
	}
	if _, ok := n.fw.TakeServer(key); !ok {
		t.Fatal("TakeServer missed the stored record")
	}
	if n.fw.WithServer(key, func(*ServerRecord) {}) {
		t.Fatal("record survived TakeServer")
	}
}
