package core

import (
	"fmt"

	"mrpc/internal/event"
	"mrpc/internal/stable"
)

// Checkpointable is server state that Atomic Execution can snapshot to
// stable storage and restore after a crash.
type Checkpointable interface {
	// Snapshot serializes the complete (volatile and stable) server state.
	Snapshot() []byte
	// Restore replaces the state with a previously snapshotted one.
	Restore(data []byte) error
}

// DeltaCheckpointable additionally supports incremental checkpoints — the
// optimization the paper sketches for servers with large state (§4.4.5:
// "storing the changes ('deltas') from one checkpoint to the next").
type DeltaCheckpointable interface {
	Checkpointable
	// Delta serializes the changes since the previous Delta or Snapshot
	// call and resets the change tracker. In delta mode Snapshot must
	// reset the tracker too (a full snapshot subsumes pending changes).
	Delta() []byte
	// ApplyDelta replays one delta on top of the current state.
	ApplyDelta(data []byte) error
}

// AtomicExecution makes execution of the server procedure atomic within
// the RPC layer (§4.4.5): after every completed call it checkpoints the
// server state to stable storage, and on recovery it restarts the server
// from the last checkpoint, so a call interrupted by a crash leaves no
// partial effects. It requires Serial Execution (calls are processed one at
// a time, so a checkpoint is always taken at a call boundary).
//
// Cell and Log must outlive crashes: the orchestrator that recreates the
// composite on recovery passes the same Cell/Log (and Store) to the new
// instance, which is how the paper's "stable address" variables old/new
// survive.
//
// With Deltas enabled and a DeltaCheckpointable state, only the changes of
// each call are written, with a full snapshot every CompactEvery deltas to
// bound recovery time.
//
// Reconfiguration: the transition planner refuses any swap that adds,
// removes, or re-parameterizes Atomic Execution on a live node — the
// checkpoint chain's consistency with the in-memory state cannot be
// re-established mid-incarnation (see DESIGN.md D14). A swap that keeps the
// same atomic configuration keeps the same attached instance.
type AtomicExecution struct {
	Store *stable.Store
	Cell  *stable.Cell
	State Checkpointable

	// Deltas enables incremental checkpoints; State must implement
	// DeltaCheckpointable and Log must be non-nil.
	Deltas bool
	// Log is the crash-surviving checkpoint chain (Deltas mode only).
	Log *stable.Log
	// CompactEvery bounds the chain length (default 16).
	CompactEvery int

	b *Binding
}

var _ MicroProtocol = (*AtomicExecution)(nil)

// Name implements MicroProtocol.
func (*AtomicExecution) Name() string { return "Atomic Execution" }

func (a *AtomicExecution) compactEvery() int {
	if a.CompactEvery <= 0 {
		return 16
	}
	return a.CompactEvery
}

func (a *AtomicExecution) spec() any {
	// State is an interface; in every supported configuration its dynamic
	// type is a pointer, so identity comparison is well-defined.
	return struct {
		store   *stable.Store
		cell    *stable.Cell
		log     *stable.Log
		state   Checkpointable
		deltas  bool
		compact int
	}{a.Store, a.Cell, a.Log, a.State, a.Deltas, a.compactEvery()}
}

// Attach implements MicroProtocol.
func (a *AtomicExecution) Attach(fw *Framework) error {
	if a.Store == nil || a.State == nil {
		return fmt.Errorf("atomic execution: store and state are required")
	}
	compactEvery := a.compactEvery()
	var deltaState DeltaCheckpointable
	if a.Deltas {
		ds, ok := a.State.(DeltaCheckpointable)
		if !ok {
			return fmt.Errorf("atomic execution: delta mode requires DeltaCheckpointable state")
		}
		if a.Log == nil {
			return fmt.Errorf("atomic execution: delta mode requires a checkpoint log")
		}
		deltaState = ds
	} else if a.Cell == nil {
		return fmt.Errorf("atomic execution: cell is required")
	}
	b := NewBinding(fw)
	a.b = b

	// Priority 2: runs after Unique Execution has retained the response
	// (the paper registers it second as well).
	b.On(event.ReplyFromServer, "AtomicExec.handleReply", PrioReplyAtomic,
		func(*event.Occurrence) {
			if deltaState == nil {
				addr := a.Store.Checkpoint(a.State.Snapshot())
				prev, had := a.Cell.Get()
				a.Cell.Set(addr)
				if had {
					a.Store.Release(prev)
				}
				return
			}
			_, hasBase, _ := a.Log.Chain()
			if !hasBase || a.Log.DeltaCount() >= compactEvery {
				// First checkpoint of a chain, or compaction point: write
				// a full snapshot and release the superseded chain.
				addr := a.Store.Checkpoint(deltaState.Snapshot())
				for _, old := range a.Log.Reset(addr) {
					a.Store.Release(old)
				}
				return
			}
			a.Log.Append(a.Store.Checkpoint(deltaState.Delta()))
		})

	b.On(event.Recovery, "AtomicExec.handleRecovery", event.DefaultPriority,
		func(*event.Occurrence) {
			if deltaState == nil {
				addr, ok := a.Cell.Get()
				if !ok {
					return // crashed before the first checkpoint
				}
				data, err := a.Store.Load(addr)
				if err != nil {
					// The checkpoint the cell points at must exist; a miss
					// is a harness bug, not a simulated fault.
					panic(fmt.Sprintf("atomic execution: recovery load: %v", err))
				}
				if err := a.State.Restore(data); err != nil {
					panic(fmt.Sprintf("atomic execution: restore: %v", err))
				}
				return
			}
			base, ok, deltas := a.Log.Chain()
			if !ok {
				return
			}
			data, err := a.Store.Load(base)
			if err != nil {
				panic(fmt.Sprintf("atomic execution: recovery base load: %v", err))
			}
			if err := deltaState.Restore(data); err != nil {
				panic(fmt.Sprintf("atomic execution: base restore: %v", err))
			}
			for i, da := range deltas {
				d, err := a.Store.Load(da)
				if err != nil {
					panic(fmt.Sprintf("atomic execution: delta %d load: %v", i, err))
				}
				if err := deltaState.ApplyDelta(d); err != nil {
					panic(fmt.Sprintf("atomic execution: delta %d apply: %v", i, err))
				}
			}
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (a *AtomicExecution) Detach(*Framework) { a.b.Detach() }
