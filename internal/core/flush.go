package core

import (
	"sync"

	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// defaultFlushSize caps how many messages one batch frame carries when the
// configuration does not say otherwise.
const defaultFlushSize = 16

// Flusher is the per-destination flush queue between the micro-protocols
// and the transport (deviation D16). Every outbound message — call
// multicasts, retransmissions, acks, replies, ordering traffic — passes
// through it; only the failure detector's heartbeats bypass it (they are
// pushed on the raw endpoint by the facade).
//
// The policy is immediate-when-idle: a message that finds its destination
// queue idle claims the drainer role and sends on the caller's goroutine,
// so the uncontended path adds no latency and no batching machinery.
// Messages arriving while a drain is in progress park in the queue and go
// out together as one frozen batch frame on the drainer's next loop
// iteration — batching depth adapts to concurrency, with no flusher
// goroutine and no idle timer. A pipeline hold (PipelineBegin/End) parks
// messages deliberately, up to the size cap; ForceFlush (CloseAdmission,
// PipelineEnd) empties every queue regardless of holds so a drain-class
// reconfiguration can never wedge behind a parked batch.
type Flusher struct {
	fw  *Framework
	net Transport // the real transport beneath the queues

	mu     sync.Mutex
	max    int // batch size cap (Config.FlushSize)
	holds  int // open pipeline holds; >0 parks messages below the cap
	queues map[msg.ProcID]*destQueue
}

// destQueue is one destination's pending lane.
type destQueue struct {
	pending []*msg.NetMsg
	active  bool // a drainer is committed to this queue
	forced  bool // ForceFlush wants the lane empty despite holds
}

func newFlusher(fw *Framework, net Transport, max int) *Flusher {
	if max <= 0 {
		max = defaultFlushSize
	}
	return &Flusher{
		fw:     fw,
		net:    net,
		max:    max,
		queues: make(map[msg.ProcID]*destQueue),
	}
}

// SetMax changes the batch size cap (live reconfiguration).
func (f *Flusher) SetMax(max int) {
	if max <= 0 {
		max = defaultFlushSize
	}
	f.mu.Lock()
	f.max = max
	f.mu.Unlock()
}

// queueOf returns (creating on first use) the destination's lane.
// Callers hold f.mu.
func (f *Flusher) queueOf(to msg.ProcID) *destQueue {
	q := f.queues[to]
	if q == nil {
		q = &destQueue{}
		f.queues[to] = q
	}
	return q
}

// Push implements Transport: enqueue for one destination and drain unless
// a drainer is already committed or a pipeline hold parks the lane.
func (f *Flusher) Push(to msg.ProcID, m *msg.NetMsg) {
	f.mu.Lock()
	q := f.queueOf(to)
	q.pending = append(q.pending, m)
	if q.active || (f.holds > 0 && len(q.pending) < f.max) {
		f.mu.Unlock()
		return
	}
	q.active = true
	f.mu.Unlock()
	f.drain(to, q, false)
}

// Multicast implements Transport. When every destination lane is idle and
// no pipeline is open, the multicast goes straight to the transport — the
// encode-once, single-admission group path (D13) stays intact. Otherwise
// the frozen message is enqueued per member and rides each lane's batch.
func (f *Flusher) Multicast(group msg.Group, m *msg.NetMsg) {
	f.mu.Lock()
	direct := f.holds == 0
	if direct {
		for _, to := range group {
			if q := f.queues[to]; q != nil && len(q.pending) > 0 {
				direct = false
				break
			}
		}
	}
	if direct {
		f.mu.Unlock()
		f.net.Multicast(group, m)
		return
	}
	// The message joins several lanes at once and must be immutable from
	// here on, exactly as if the transport had accepted it.
	m.Freeze()
	var claimedBuf [8]claimedLane
	claimed := claimedBuf[:0]
	for _, to := range group {
		q := f.queueOf(to)
		q.pending = append(q.pending, m)
		if q.active || (f.holds > 0 && len(q.pending) < f.max) {
			continue
		}
		q.active = true
		claimed = append(claimed, claimedLane{to, q})
	}
	f.mu.Unlock()
	for _, c := range claimed {
		f.drain(c.to, c.q, false)
	}
}

// claimedLane pairs a destination with its queue, captured under f.mu so
// drains after unlock never touch the lane map.
type claimedLane struct {
	to msg.ProcID
	q  *destQueue
}

// drain sends the destination's pending messages until the lane empties
// (or a pipeline hold parks the remainder below the cap). The caller must
// have set q.active under f.mu; drain clears it before returning. Singleton
// takes are sent as themselves — batching never costs the lone message a
// frame — and larger takes go out as one NewBatch frame.
func (f *Flusher) drain(to msg.ProcID, q *destQueue, force bool) {
	for {
		f.mu.Lock()
		n := len(q.pending)
		if n == 0 || (!force && !q.forced && f.holds > 0 && n < f.max) {
			if n == 0 {
				q.forced = false
			}
			q.active = false
			f.mu.Unlock()
			return
		}
		if n > f.max {
			n = f.max
		}
		var single *msg.NetMsg
		var subs []*msg.NetMsg
		if n == 1 {
			single = q.pending[0]
		} else {
			// NewBatch retains the slice, so the batch gets its own copy;
			// the cost amortizes across the batch.
			subs = make([]*msg.NetMsg, n)
			copy(subs, q.pending[:n])
		}
		rem := copy(q.pending, q.pending[n:])
		for i := rem; i < len(q.pending); i++ {
			q.pending[i] = nil
		}
		q.pending = q.pending[:rem]
		f.mu.Unlock()

		if single != nil {
			f.net.Push(to, single)
			continue
		}
		f.net.Push(to, msg.NewBatch(f.fw.Self(), subs))
		if f.fw.Tracing() {
			f.fw.Emit(trace.Event{Kind: trace.KBatchFlushed, From: to, Op: msg.OpID(len(subs))})
		}
	}
}

// PipelineBegin opens a pipeline hold: subsequent messages park in their
// lanes (up to the size cap) instead of flushing immediately. Holds nest.
func (f *Flusher) PipelineBegin() {
	f.mu.Lock()
	f.holds++
	f.mu.Unlock()
}

// PipelineEnd closes a pipeline hold and, once the last hold is gone,
// flushes everything parked.
func (f *Flusher) PipelineEnd() {
	f.mu.Lock()
	if f.holds > 0 {
		f.holds--
	}
	last := f.holds == 0
	f.mu.Unlock()
	if last {
		f.ForceFlush()
	}
}

// ForceFlush empties every lane regardless of pipeline holds. Lanes with a
// committed drainer are marked forced — the drainer's next loop iteration
// takes the remainder instead of parking it — so on return every message
// enqueued before the call is either sent or owned by a drainer that will
// send it. CloseAdmission relies on this: a drain-class reconfiguration
// must observe the parked calls on the wire, not wedged in a queue.
func (f *Flusher) ForceFlush() {
	var claimedBuf [8]claimedLane
	claimed := claimedBuf[:0]
	f.mu.Lock()
	for to, q := range f.queues {
		if len(q.pending) == 0 {
			continue
		}
		if q.active {
			q.forced = true
			continue
		}
		q.active = true
		claimed = append(claimed, claimedLane{to, q})
	}
	f.mu.Unlock()
	for _, c := range claimed {
		f.drain(c.to, c.q, true)
	}
}
