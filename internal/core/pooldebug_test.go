//go:build mrpcdebug

package core

import (
	"testing"

	"mrpc/internal/msg"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic (%s), got none", want)
		}
	}()
	f()
}

func TestPoolDebugDoublePut(t *testing.T) {
	p := newPool(func() any { return new(NetEvent) })
	ev := p.Get().(*NetEvent)
	p.Put(ev)
	mustPanic(t, "double-Put", func() { p.Put(ev) })
}

func TestPoolDebugDirtyGet(t *testing.T) {
	p := newPool(func() any { return new(NetEvent) })
	ev := p.Get().(*NetEvent)
	p.Put(ev)
	ev.Msg = new(msg.NetMsg) // use-after-Put scribbles over the sentinel
	mustPanic(t, "dirty Get", func() { checkPoison(ev) })
}

func TestPoolDebugCleanCycle(t *testing.T) {
	p := newPool(func() any { return new(ClientRecord) })
	rec := p.Get().(*ClientRecord)
	if rec.NRes != 0 {
		t.Fatalf("fresh record not zeroed: NRes=%d", rec.NRes)
	}
	rec.NRes = 3
	*rec = ClientRecord{}
	p.Put(rec)
	if rec.NRes != poisonInt {
		t.Fatalf("Put did not poison: NRes=%d", rec.NRes)
	}
	got := p.Get().(*ClientRecord)
	if got == rec && got.NRes != 0 {
		t.Fatalf("Get did not restore the sentinel field: NRes=%d", got.NRes)
	}
}

func TestPoolDebugPoisonAllShapes(t *testing.T) {
	// Every pooled type round-trips poison -> check cleanly.
	for _, x := range []any{
		new(ClientRecord), new(ServerRecord), new(NetEvent),
		new(msg.UserMsg), new(msg.CallKey), new(msg.CallID), new(relEntry),
	} {
		poison(x)
		checkPoison(x)
	}
}
