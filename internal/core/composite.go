package core

import "fmt"

// MicroProtocol is a software module implementing one well-defined property
// of the RPC service. Attach registers its event handlers with the
// framework; a configured set of micro-protocols linked with one Framework
// forms a composite protocol.
type MicroProtocol interface {
	// Name returns the micro-protocol's name as used in the paper.
	Name() string
	// Attach registers the micro-protocol's event handlers and initializes
	// its shared-state contributions (HOLD slots, semaphores).
	Attach(fw *Framework) error
}

// Composite is a fully assembled composite protocol: the framework plus its
// configured micro-protocols.
type Composite struct {
	fw     *Framework
	protos []MicroProtocol
}

// NewComposite links the given micro-protocols with a fresh framework. The
// order of protos determines registration order, which breaks priority ties
// deterministically.
func NewComposite(opts Options, protos ...MicroProtocol) (*Composite, error) {
	fw, err := NewFramework(opts)
	if err != nil {
		return nil, err
	}
	for _, p := range protos {
		if err := p.Attach(fw); err != nil {
			fw.Close()
			return nil, fmt.Errorf("attach %s: %w", p.Name(), err)
		}
	}
	fw.Start()
	return &Composite{fw: fw, protos: protos}, nil
}

// Framework returns the composite's framework.
func (c *Composite) Framework() *Framework { return c.fw }

// Protocols returns the names of the configured micro-protocols in
// registration order.
func (c *Composite) Protocols() []string {
	names := make([]string, len(c.protos))
	for i, p := range c.protos {
		names[i] = p.Name()
	}
	return names
}

// Close shuts the composite down (see Framework.Close).
func (c *Composite) Close() { c.fw.Close() }
