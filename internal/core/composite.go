package core

import (
	"fmt"
	"sync"
)

// MicroProtocol is a software module implementing one well-defined property
// of the RPC service, with a uniform lifecycle. Attach registers its event
// handlers with the framework; Detach reverses Attach completely; a
// configured set of micro-protocols linked with one Framework forms a
// composite protocol. Protocols with migratable cross-call state also
// implement Stateful, and ordering protocols implement Sequencer (see
// lifecycle.go).
type MicroProtocol interface {
	// Name returns the micro-protocol's name as used in the paper.
	Name() string
	// Attach registers the micro-protocol's event handlers and initializes
	// its shared-state contributions (HOLD slots, semaphores). An instance
	// is attached to at most one framework, at most once.
	Attach(fw *Framework) error
	// Detach deregisters everything Attach registered — handlers, pending
	// timeouts, HOLD slots, framework modes — leaving the framework as if
	// the protocol had never been attached. It runs only before Start or
	// under the reconfiguration barrier.
	Detach(fw *Framework)
}

// Composite is a fully assembled composite protocol: the framework plus its
// configured micro-protocols. After Start, the protocol set changes only
// through Swap.
type Composite struct {
	fw *Framework

	mu     sync.Mutex // guards protos against concurrent Swap/Protocols
	protos []MicroProtocol
}

// NewComposite links the given micro-protocols with a fresh framework. The
// order of protos determines registration order, which breaks priority ties
// deterministically.
func NewComposite(opts Options, protos ...MicroProtocol) (*Composite, error) {
	fw, err := NewFramework(opts)
	if err != nil {
		return nil, err
	}
	for _, p := range protos {
		if err := p.Attach(fw); err != nil {
			fw.Close()
			return nil, fmt.Errorf("attach %s: %w", p.Name(), err)
		}
	}
	fw.Start()
	return &Composite{fw: fw, protos: protos}, nil
}

// Framework returns the composite's framework.
func (c *Composite) Framework() *Framework { return c.fw }

// Protocols returns the names of the configured micro-protocols in
// registration order.
func (c *Composite) Protocols() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.protos))
	for i, p := range c.protos {
		names[i] = p.Name()
	}
	return names
}

// Protocol returns the attached micro-protocol instance with the given
// name, or nil.
func (c *Composite) Protocol(name string) MicroProtocol {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.protos {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// Swap replaces the composite's micro-protocol set with next, under the
// reconfiguration barrier: it acquires the framework's dispatch lock
// exclusively (no handler, timer firing, call admission or network delivery
// is mid-flight), detaches every protocol not re-selected, attaches the new
// ones with state migrated from their predecessors, re-homes server-side
// calls still held by a detached ordering protocol, and releases the
// barrier.
//
// An instance in next whose name and configuration parameters match an
// attached instance is not churned: the attached instance — its state,
// handlers and timers — stays, and the new instance is discarded.
//
// Swap does not drain: the caller (the reconfiguration engine in the mrpc
// facade) is responsible for closing admission and draining first when the
// transition requires it. Swap itself only guarantees that the composite is
// never observed half-configured.
func (c *Composite) Swap(next []MicroProtocol) error {
	fw := c.fw

	fw.dispatchMu.Lock()
	fw.reconfiguring.Store(true)
	defer func() {
		fw.reconfiguring.Store(false)
		fw.dispatchMu.Unlock()
	}()

	c.mu.Lock()
	old := c.protos
	c.mu.Unlock()

	oldByName := make(map[string]MicroProtocol, len(old))
	for _, p := range old {
		oldByName[p.Name()] = p
	}

	// Decide which attached instances survive: same protocol, same
	// parameters.
	kept := make(map[string]bool, len(next))
	for _, p := range next {
		if prev, ok := oldByName[p.Name()]; ok && sameSpec(prev, p) {
			kept[p.Name()] = true
		}
	}

	// Detach the delta in reverse attach order (mirror-image teardown).
	orderingChanged := false
	for i := len(old) - 1; i >= 0; i-- {
		p := old[i]
		if kept[p.Name()] {
			continue
		}
		if _, isSeq := p.(Sequencer); isSeq {
			orderingChanged = true
		}
		p.Detach(fw)
	}

	// Attach the new set (kept instances take their predecessor's place),
	// migrating state from replaced instances of the same protocol.
	final := make([]MicroProtocol, 0, len(next))
	var newSeq Sequencer
	for _, p := range next {
		prev := oldByName[p.Name()]
		if kept[p.Name()] {
			final = append(final, prev)
			if s, ok := prev.(Sequencer); ok {
				newSeq = s
			}
			continue
		}
		if err := p.Attach(fw); err != nil {
			// A validated configuration's Attach must not fail on a live
			// framework (the only errors are duplicate registrations and
			// missing Atomic Execution dependencies, both excluded by
			// transition planning); if it does, the composite is broken
			// beyond repair here.
			return fmt.Errorf("reconfigure: attach %s: %w", p.Name(), err)
		}
		if s, ok := p.(Sequencer); ok {
			orderingChanged = true
			newSeq = s
		}
		if prev != nil {
			from, fok := prev.(Stateful)
			to, tok := p.(Stateful)
			if fok && tok {
				to.ImportState(from.ExportState())
			}
		}
		final = append(final, p)
	}

	// Calls admitted under the old ordering regime and still held in sRPC
	// are re-homed under the new one.
	if orderingChanged {
		fw.rehomeHeldCalls(newSeq)
	}

	c.mu.Lock()
	c.protos = final
	c.mu.Unlock()
	return nil
}

// Close shuts the composite down (see Framework.Close).
func (c *Composite) Close() { c.fw.Close() }
