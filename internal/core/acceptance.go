package core

import (
	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/sem"
	"mrpc/internal/trace"
)

// AcceptAll is an acceptance limit larger than any group, i.e. "all
// functioning servers must respond" (the paper clamps the limit to the
// group size).
const AcceptAll = 1 << 30

// Acceptance implements acceptance semantics (§4.4.5): a group call
// completes successfully once Limit servers have replied. Members known to
// be failed (per the membership service) are not waited for; with no
// membership service the set of members is effectively constant and the
// call completes only via enough replies or bounded termination — exactly
// the paper's discussion.
//
// Deviation D2: the micro-protocol registers two network handlers, a
// dedupe stage before Collation and a completion stage after it, so the
// caller is never woken before the final reply has been folded in.
//
// Per-call progress lives in the client records (Pending/NRes), so nothing
// migrates across a reconfiguration — and a swap that changes Limit only
// affects calls admitted after it (in-flight calls keep the threshold
// stamped at issue time).
type Acceptance struct {
	Limit int

	b *Binding
}

var _ MicroProtocol = (*Acceptance)(nil)

// Name implements MicroProtocol.
func (*Acceptance) Name() string { return "Acceptance" }

func (a *Acceptance) limit() int {
	if a.Limit <= 0 {
		return 1
	}
	return a.Limit
}

func (a *Acceptance) spec() any {
	return struct{ limit int }{a.limit()}
}

// Attach implements MicroProtocol.
func (a *Acceptance) Attach(fw *Framework) error {
	limit := a.limit()
	b := NewBinding(fw)
	a.b = b

	b.On(event.NewRPCCall, "Acceptance.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := *o.Arg.(*msg.CallID)
			complete := false
			var s *sem.Sem
			fw.WithClient(id, func(rec *ClientRecord) {
				alive := 0
				for i, p := range rec.Server {
					if fw.Membership().Down(p) {
						rec.Pending[i].Done = true
					} else {
						rec.Pending[i].Done = false
						alive++
					}
				}
				rec.NRes = limit
				if alive < rec.NRes {
					rec.NRes = alive
				}
				complete = rec.NRes <= 0 && rec.Status == msg.StatusWaiting
				if complete {
					// Degenerate group (every member failed): accept vacuously
					// rather than hang a call no reply can ever complete.
					rec.Status = msg.StatusOK
					s = rec.Sem
				}
			})
			if complete {
				if fw.Tracing() {
					fw.Emit(trace.Event{Kind: trace.KCallDone, Client: fw.Self(), ID: id,
						Status: msg.StatusOK})
				}
				s.V()
			}
		})

	// Stage 1 (before Collation): filter replies that must not be folded —
	// unknown calls, duplicate replies from the same server, and any reply
	// arriving after the call already completed.
	b.On(event.MsgFromNetwork, "Acceptance.dedupe", PrioAcceptDedupe,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpReply {
				return
			}
			fold := false
			fw.WithClient(m.ID, func(rec *ClientRecord) {
				if rec.Status != msg.StatusWaiting {
					return
				}
				e := rec.PendingFor(m.Sender)
				if e == nil || e.Done {
					return
				}
				e.Done = true
				rec.NRes--
				fold = true
			})
			if !fold {
				o.Cancel()
				return
			}
			if fw.Tracing() {
				fw.Emit(trace.Event{Kind: trace.KReplyAccepted, Client: m.Client,
					ID: m.ID, From: m.Sender})
			}
		})

	// Stage 2 (after Collation): if the acceptance threshold has been
	// reached, complete the call and wake the waiting client thread.
	b.On(event.MsgFromNetwork, "Acceptance.complete", PrioAcceptComplete,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpReply {
				return
			}
			complete := false
			var s *sem.Sem
			fw.WithClient(m.ID, func(rec *ClientRecord) {
				complete = rec.NRes <= 0 && rec.Status == msg.StatusWaiting
				if complete {
					rec.Status = msg.StatusOK
					s = rec.Sem
				}
			})
			if complete {
				if fw.Tracing() {
					fw.Emit(trace.Event{Kind: trace.KCallDone, Client: m.Client, ID: m.ID,
						Status: msg.StatusOK})
				}
				s.V()
			}
		})

	// A server failure may satisfy the acceptance condition for pending
	// calls (all remaining live members have already replied).
	b.On(event.MembershipChange, "Acceptance.serverFailure", event.DefaultPriority,
		func(o *event.Occurrence) {
			c := o.Arg.(member.Change)
			if c.Kind != member.Failure {
				return
			}
			// The failure must count against every pending call exactly once,
			// including calls racing in concurrently — a cross-record sweep,
			// so it runs as a Tx rather than shard by shard.
			var wake []*ClientRecord
			fw.ClientTx(func(tx ClientTx) {
				tx.Each(func(rec *ClientRecord) {
					e := rec.PendingFor(c.Who)
					if e == nil || e.Done {
						return
					}
					e.Done = true
					rec.NRes--
					if rec.NRes <= 0 && rec.Status == msg.StatusWaiting {
						rec.Status = msg.StatusOK
						wake = append(wake, rec)
					}
				})
			})
			for _, rec := range wake {
				if fw.Tracing() {
					fw.Emit(trace.Event{Kind: trace.KCallDone, Client: fw.Self(), ID: rec.ID,
						Status: msg.StatusOK})
				}
				rec.Sem.V()
			}
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (a *Acceptance) Detach(*Framework) { a.b.Detach() }
