package core

import (
	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
)

// AcceptAll is an acceptance limit larger than any group, i.e. "all
// functioning servers must respond" (the paper clamps the limit to the
// group size).
const AcceptAll = 1 << 30

// Acceptance implements acceptance semantics (§4.4.5): a group call
// completes successfully once Limit servers have replied. Members known to
// be failed (per the membership service) are not waited for; with no
// membership service the set of members is effectively constant and the
// call completes only via enough replies or bounded termination — exactly
// the paper's discussion.
//
// Deviation D2: the micro-protocol registers two network handlers, a
// dedupe stage before Collation and a completion stage after it, so the
// caller is never woken before the final reply has been folded in.
type Acceptance struct {
	Limit int
}

var _ MicroProtocol = Acceptance{}

// Name implements MicroProtocol.
func (Acceptance) Name() string { return "Acceptance" }

// Attach implements MicroProtocol.
func (a Acceptance) Attach(fw *Framework) error {
	if a.Limit <= 0 {
		a.Limit = 1
	}

	if err := fw.Bus().Register(event.NewRPCCall, "Acceptance.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := o.Arg.(msg.CallID)
			fw.LockP()
			rec, ok := fw.ClientRec(id)
			if !ok {
				fw.UnlockP()
				return
			}
			alive := 0
			for p, e := range rec.Pending {
				if fw.Membership().Down(p) {
					e.Done = true
				} else {
					e.Done = false
					alive++
				}
			}
			rec.NRes = a.Limit
			if alive < rec.NRes {
				rec.NRes = alive
			}
			complete := rec.NRes <= 0 && rec.Status == msg.StatusWaiting
			if complete {
				// Degenerate group (every member failed): accept vacuously
				// rather than hang a call no reply can ever complete.
				rec.Status = msg.StatusOK
			}
			fw.UnlockP()
			if complete {
				rec.Sem.V()
			}
		}); err != nil {
		return err
	}

	// Stage 1 (before Collation): filter replies that must not be folded —
	// unknown calls, duplicate replies from the same server, and any reply
	// arriving after the call already completed.
	if err := fw.Bus().Register(event.MsgFromNetwork, "Acceptance.dedupe", PrioAcceptDedupe,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpReply {
				return
			}
			fw.LockP()
			defer fw.UnlockP()
			rec, ok := fw.ClientRec(m.ID)
			if !ok || rec.Status != msg.StatusWaiting {
				o.Cancel()
				return
			}
			e, ok := rec.Pending[m.Sender]
			if !ok || e.Done {
				o.Cancel()
				return
			}
			e.Done = true
			rec.NRes--
		}); err != nil {
		return err
	}

	// Stage 2 (after Collation): if the acceptance threshold has been
	// reached, complete the call and wake the waiting client thread.
	if err := fw.Bus().Register(event.MsgFromNetwork, "Acceptance.complete", PrioAcceptComplete,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpReply {
				return
			}
			fw.LockP()
			rec, ok := fw.ClientRec(m.ID)
			complete := ok && rec.NRes <= 0 && rec.Status == msg.StatusWaiting
			if complete {
				rec.Status = msg.StatusOK
			}
			fw.UnlockP()
			if complete {
				rec.Sem.V()
			}
		}); err != nil {
		return err
	}

	// A server failure may satisfy the acceptance condition for pending
	// calls (all remaining live members have already replied).
	return fw.Bus().Register(event.MembershipChange, "Acceptance.serverFailure", event.DefaultPriority,
		func(o *event.Occurrence) {
			c := o.Arg.(member.Change)
			if c.Kind != member.Failure {
				return
			}
			var wake []*ClientRecord
			fw.LockP()
			fw.ClientRecs(func(rec *ClientRecord) {
				e, ok := rec.Pending[c.Who]
				if !ok || e.Done {
					return
				}
				e.Done = true
				rec.NRes--
				if rec.NRes <= 0 && rec.Status == msg.StatusWaiting {
					rec.Status = msg.StatusOK
					wake = append(wake, rec)
				}
			})
			fw.UnlockP()
			for _, rec := range wake {
				rec.Sem.V()
			}
		})
}
