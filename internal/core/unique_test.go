package core

import (
	"testing"

	"mrpc/internal/msg"
)

// uniqueServerNode builds a server with Unique Execution and a recording
// app, returning both.
func uniqueServerNode(t *testing.T, net *memNet) (*testNode, *recordingServer) {
	t.Helper()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{})
	return n, srv
}

func TestUniqueExecutionDropsDuplicateInProgressAndExecuted(t *testing.T) {
	net := newMemNet()
	n, srv := uniqueServerNode(t, net)
	group := msg.NewGroup(1)

	m := callMsg(100, 1, 1, group, "a")
	n.fw.HandleNet(m.Clone()) // executes synchronously
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("executed %v", got)
	}

	// Duplicate after execution: answered from the retained result, not
	// re-executed.
	before := net.countSent(msg.OpReply, 100)
	n.fw.HandleNet(m.Clone())
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("duplicate re-executed: %v", got)
	}
	if got := net.countSent(msg.OpReply, 100); got != before+1 {
		t.Fatalf("retained result not resent: %d replies, want %d", got, before+1)
	}
}

func TestUniqueExecutionReleasesResultOnAck(t *testing.T) {
	net := newMemNet()
	n, srv := uniqueServerNode(t, net)
	group := msg.NewGroup(1)

	m := callMsg(100, 1, 1, group, "a")
	n.fw.HandleNet(m.Clone())

	// The client acknowledges; the retained result is released.
	n.fw.HandleNet(&msg.NetMsg{Type: msg.OpAck, Client: 100, Sender: 100, AckID: 1})

	// A straggler duplicate now hits OldCalls: discarded silently (no
	// reply, no execution).
	before := net.countSent(msg.OpReply, 100)
	n.fw.HandleNet(m.Clone())
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("straggler duplicate re-executed: %v", got)
	}
	if got := net.countSent(msg.OpReply, 100); got != before {
		t.Fatalf("straggler duplicate answered: %d replies", got)
	}
}

func TestUniqueExecutionClientAcksReplies(t *testing.T) {
	net := newMemNet()
	addNode(t, net, 1, nodeOpts{server: echoServer()},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{})
	client := addNode(t, net, 100, nodeOpts{},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{})

	um := client.fw.Call(1, []byte("x"), msg.NewGroup(1))
	if um.Status != msg.StatusOK {
		t.Fatalf("status = %v", um.Status)
	}
	if got := net.countSent(msg.OpAck, 1); got != 1 {
		t.Fatalf("ACKs sent = %d, want 1", got)
	}
}

func TestUniqueExecutionDistinctClientsSameID(t *testing.T) {
	// Two different clients may use the same call id (deviation D1): the
	// server must treat them as distinct calls.
	net := newMemNet()
	n, srv := uniqueServerNode(t, net)
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, 1, 1, group, "from-100"))
	n.fw.HandleNet(callMsg(101, 1, 1, group, "from-101"))
	if got := srv.executed(); len(got) != 2 {
		t.Fatalf("executed %v, want both clients' calls", got)
	}
}

func TestUniqueExecutionCompensatesOnLaterCancel(t *testing.T) {
	// If a later handler cancels the delivery (here: a stale incarnation
	// dropped by Terminate Orphan at the orphan priority — wait, orphan
	// runs BEFORE unique; use FIFO's stale-call drop instead), the
	// OldCalls entry must be removed so a retransmission can execute.
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &FIFOOrder{})
	group := msg.NewGroup(1)

	// Establish FIFO state: call 5 executes (next becomes 6).
	n.fw.HandleNet(callMsg(100, 5, 1, group, "five"))
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("executed %v", got)
	}

	// Call 4 arrives late: FIFO drops it (id < next) — cancelling the
	// occurrence AFTER Unique Execution recorded it. The compensation must
	// remove it from OldCalls; verify by checking the server sends nothing
	// and the call is NOT remembered as in-progress (a second delivery
	// behaves identically rather than being swallowed as a duplicate).
	m4 := callMsg(100, 4, 1, group, "four")
	n.fw.HandleNet(m4.Clone())
	n.fw.HandleNet(m4.Clone())
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("stale call executed: %v", got)
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("dropped call left a server record")
	}
}
