package core

import (
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// CausalOrder guarantees that causally related calls are executed in
// causal order by every group member. It is an extension beyond the
// paper's Figure 4 — §2.2 notes that "other variants such as partial or
// causal order have also been defined" — implemented as a CBCAST-style
// vector-clock protocol:
//
//   - a client's k-th call carries a timestamp T with T[client] = k and
//     T[q] = the number of q's calls the client causally knows about
//     (learned by merging the delivered-vectors servers attach to their
//     replies);
//   - a server executes the call only when T[client] is the next
//     undelivered call of that client and every other entry of T is
//     already delivered; otherwise the call is held.
//
// Causality therefore flows through replies: if client B issues a call
// after seeing a reply that reflects client A's call, every server
// executes A's call first. Calls with no causal relation may execute in
// different orders at different members — strictly weaker than Total
// Order, strictly stronger than FIFO (a client's own calls are trivially
// causally related).
//
// Like FIFO and Total Order it requires Reliable Communication and Unique
// Execution. A recovered client restarts its numbering; the server resets
// the client's delivered count when it first hears the new incarnation,
// dropping any held calls of dead incarnations.
//
// Constraint: a client of a causally ordered service must address all its
// calls to the same group. CBCAST numbering is per-process, so a call sent
// to a subgroup would leave gaps in the sequence the other members wait
// for.
type CausalOrder struct{}

var _ MicroProtocol = CausalOrder{}

// Name implements MicroProtocol.
func (CausalOrder) Name() string { return "Causal Order" }

type causalHeld struct {
	vc     msg.VClock
	client msg.ProcID
}

// Attach implements MicroProtocol.
func (CausalOrder) Attach(fw *Framework) error {
	fw.EnableCausal()
	fw.SetHold(HoldCausal)

	var (
		mu   sync.Mutex
		held = make(map[msg.CallKey]causalHeld)
		incs = make(map[msg.ProcID]msg.Incarnation)
	)

	// popDeliverable removes and returns one held call that has become
	// deliverable, if any.
	popDeliverable := func() (msg.CallKey, bool) {
		mu.Lock()
		defer mu.Unlock()
		for key, h := range held {
			if fw.CausalDeliverable(h.client, h.vc) {
				delete(held, key)
				return key, true
			}
		}
		return msg.CallKey{}, false
	}

	// Client side: learn the server's delivered-vector so the next call
	// causally follows what the reply reflects. Registered early (before
	// Acceptance's dedupe stage) so even replies that arrive after the
	// call completed still contribute their knowledge.
	if err := fw.Bus().Register(event.MsgFromNetwork, "CausalOrder.replyMerge", PrioReliable+2,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type == msg.OpReply {
				fw.MergeVC(m.VC)
			}
		}); err != nil {
		return err
	}

	if err := fw.Bus().Register(event.MsgFromNetwork, "CausalOrder.msgFromNet", PrioOrder,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpCall:
				key := m.Key()
				client := m.Client

				mu.Lock()
				known, seen := incs[client]
				switch {
				case !seen || m.Inc > known:
					// First contact with this incarnation: its numbering
					// starts afresh; held calls of older incarnations are
					// dead.
					incs[client] = m.Inc
					var stale []msg.CallKey
					for k, h := range held {
						if h.client == client {
							stale = append(stale, k)
						}
					}
					for _, k := range stale {
						delete(held, k)
					}
					mu.Unlock()
					fw.ResetDelivered(client)
					for _, k := range stale {
						fw.DropServerCall(k)
					}
				case m.Inc < known:
					mu.Unlock()
					o.Cancel()
					return
				default:
					mu.Unlock()
				}

				if fw.CausalDeliverable(client, m.VC) {
					fw.ForwardUp(key, HoldCausal)
					return
				}
				mu.Lock()
				held[key] = causalHeld{vc: m.VC, client: client}
				mu.Unlock()
				o.OnCancel(func() {
					mu.Lock()
					delete(held, key)
					mu.Unlock()
				})
			}
		}); err != nil {
		return err
	}

	return fw.Bus().Register(event.ReplyFromServer, "CausalOrder.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := o.Arg.(msg.CallKey)
			var client msg.ProcID
			if !fw.WithServer(key, func(rec *ServerRecord) { client = rec.Client }) {
				return
			}
			fw.BumpDelivered(client)
			// Release one newly deliverable held call; its own reply event
			// releases the next, draining any chain without recursion
			// fan-out.
			if next, ok := popDeliverable(); ok {
				fw.ForwardUp(next, HoldCausal)
			}
		})
}
