package core

import (
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// CausalOrder guarantees that causally related calls are executed in
// causal order by every group member. It is an extension beyond the
// paper's Figure 4 — §2.2 notes that "other variants such as partial or
// causal order have also been defined" — implemented as a CBCAST-style
// vector-clock protocol:
//
//   - a client's k-th call carries a timestamp T with T[client] = k and
//     T[q] = the number of q's calls the client causally knows about
//     (learned by merging the delivered-vectors servers attach to their
//     replies);
//   - a server executes the call only when T[client] is the next
//     undelivered call of that client and every other entry of T is
//     already delivered; otherwise the call is held.
//
// Causality therefore flows through replies: if client B issues a call
// after seeing a reply that reflects client A's call, every server
// executes A's call first. Calls with no causal relation may execute in
// different orders at different members — strictly weaker than Total
// Order, strictly stronger than FIFO (a client's own calls are trivially
// causally related).
//
// Like FIFO and Total Order it requires Reliable Communication and Unique
// Execution. A recovered client restarts its numbering; the server resets
// the client's delivered count when it first hears the new incarnation,
// dropping any held calls of dead incarnations.
//
// Constraint: a client of a causally ordered service must address all its
// calls to the same group. CBCAST numbering is per-process, so a call sent
// to a subgroup would leave gaps in the sequence the other members wait
// for.
type CausalOrder struct {
	b  *Binding
	mu sync.Mutex
	// held/incs migrate across a causal→causal swap together with the
	// framework's delivered-vector (causalState), so the delivery condition
	// resumes exactly where the predecessor left off.
	held map[msg.CallKey]causalHeld
	incs map[msg.ProcID]msg.Incarnation
}

var _ MicroProtocol = (*CausalOrder)(nil)
var _ Stateful = (*CausalOrder)(nil)
var _ Sequencer = (*CausalOrder)(nil)

// Name implements MicroProtocol.
func (*CausalOrder) Name() string { return "Causal Order" }

func (*CausalOrder) spec() any { return struct{}{} }

type causalHeld struct {
	vc     msg.VClock
	client msg.ProcID
}

// causalState is CausalOrder's exported migration state.
type causalState struct {
	held map[msg.CallKey]causalHeld
	incs map[msg.ProcID]msg.Incarnation
	vc   msg.VClock
}

// ExportState implements Stateful.
func (c *CausalOrder) ExportState() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return causalState{held: c.held, incs: c.incs, vc: c.b.fw.VCSnapshot()}
}

// ImportState implements Stateful.
func (c *CausalOrder) ImportState(state any) {
	s := state.(causalState)
	c.mu.Lock()
	c.held = s.held
	c.incs = s.incs
	c.mu.Unlock()
	c.b.fw.RestoreVC(s.vc)
}

// Adopt implements Sequencer: a call admitted to sRPC before this instance
// attached re-enters the causal delivery condition. With a fresh vector
// the incarnation bookkeeping starts over; the reconfiguration engine
// adopts calls in (client, id) order, so each client's earliest held call
// seeds its sequence.
func (c *CausalOrder) Adopt(key msg.CallKey, m *msg.NetMsg) {
	fw := c.b.fw
	client := m.Client
	c.mu.Lock()
	known, seen := c.incs[client]
	switch {
	case !seen || m.Inc > known:
		c.incs[client] = m.Inc
		var stale []msg.CallKey
		for k, h := range c.held {
			if h.client == client {
				stale = append(stale, k)
			}
		}
		for _, k := range stale {
			delete(c.held, k)
		}
		c.mu.Unlock()
		fw.ResetDelivered(client)
		for _, k := range stale {
			fw.DropServerCall(k)
		}
	case m.Inc < known:
		c.mu.Unlock()
		fw.DropServerCall(key)
		return
	default:
		c.mu.Unlock()
	}

	if fw.CausalDeliverable(client, m.VC) {
		fw.ForwardUp(key, HoldCausal)
		return
	}
	c.mu.Lock()
	c.held[key] = causalHeld{vc: m.VC, client: client}
	c.mu.Unlock()
}

// popDeliverable removes and returns one held call that has become
// deliverable, if any.
func (c *CausalOrder) popDeliverable(fw *Framework) (msg.CallKey, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, h := range c.held {
		if fw.CausalDeliverable(h.client, h.vc) {
			delete(c.held, key)
			return key, true
		}
	}
	return msg.CallKey{}, false
}

// Attach implements MicroProtocol.
func (c *CausalOrder) Attach(fw *Framework) error {
	fw.EnableCausal()
	fw.SetHold(HoldCausal)
	b := NewBinding(fw)
	c.b = b
	c.held = make(map[msg.CallKey]causalHeld)
	c.incs = make(map[msg.ProcID]msg.Incarnation)

	// Client side: learn the server's delivered-vector so the next call
	// causally follows what the reply reflects. Registered early (before
	// Acceptance's dedupe stage) so even replies that arrive after the
	// call completed still contribute their knowledge.
	b.On(event.MsgFromNetwork, "CausalOrder.replyMerge", PrioReliable+2,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type == msg.OpReply {
				fw.MergeVC(m.VC)
			}
		})

	b.On(event.MsgFromNetwork, "CausalOrder.msgFromNet", PrioOrder,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpCall:
				key := m.Key()
				client := m.Client

				c.mu.Lock()
				known, seen := c.incs[client]
				switch {
				case !seen || m.Inc > known:
					// First contact with this incarnation: its numbering
					// starts afresh; held calls of older incarnations are
					// dead.
					c.incs[client] = m.Inc
					var stale []msg.CallKey
					for k, h := range c.held {
						if h.client == client {
							stale = append(stale, k)
						}
					}
					for _, k := range stale {
						delete(c.held, k)
					}
					c.mu.Unlock()
					fw.ResetDelivered(client)
					for _, k := range stale {
						fw.DropServerCall(k)
					}
				case m.Inc < known:
					c.mu.Unlock()
					o.Cancel()
					return
				default:
					c.mu.Unlock()
				}

				if fw.CausalDeliverable(client, m.VC) {
					fw.ForwardUp(key, HoldCausal)
					return
				}
				c.mu.Lock()
				c.held[key] = causalHeld{vc: m.VC, client: client}
				c.mu.Unlock()
				o.OnCancel(func(*event.Occurrence) {
					c.mu.Lock()
					delete(c.held, key)
					c.mu.Unlock()
				})
			}
		})

	b.On(event.ReplyFromServer, "CausalOrder.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := *o.Arg.(*msg.CallKey)
			var client msg.ProcID
			if !fw.WithServer(key, func(rec *ServerRecord) { client = rec.Client }) {
				return
			}
			fw.BumpDelivered(client)
			// Release one newly deliverable held call; its own reply event
			// releases the next, draining any chain without recursion
			// fan-out.
			if next, ok := c.popDeliverable(fw); ok {
				fw.ForwardUp(next, HoldCausal)
			}
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (c *CausalOrder) Detach(fw *Framework) {
	c.b.Detach()
	fw.ClearHold(HoldCausal)
	fw.DisableCausal()
}
