package core

import (
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// FIFOOrder guarantees that the calls of each client are served in issue
// order at every server (§4.4.6). Per the paper it deliberately tolerates
// duplicate and concurrent execution (unique execution is a separate
// property), tracking only a per-client next-expected call id within the
// client's current incarnation.
//
// Initialization of the per-client sequence follows the paper by default:
// the first call that *arrives* defines the starting point. That is sound
// for synchronous clients (call k+1 is only issued after call k completed
// everywhere it will ever be observed from) and lets a restarted server
// resynchronize, but it is a liveness hazard for *pipelined* asynchronous
// clients — a reordered first batch would make the server adopt a later
// call as the start and drop the earlier ones forever. StrictInit fixes
// that by expecting each incarnation's sequence to start at its first call
// (which the D9 id scheme makes recognizable); the configuration layer
// enables it automatically for asynchronous-call services.
type FIFOOrder struct {
	// StrictInit makes the expected sequence of a newly seen incarnation
	// start at its first call instead of at the first call to arrive.
	StrictInit bool
}

var _ MicroProtocol = FIFOOrder{}

type fifoEntry struct {
	inc  msg.Incarnation
	next msg.CallID
}

// Name implements MicroProtocol.
func (FIFOOrder) Name() string { return "FIFO Order" }

// firstCallID is the id a client's incarnation assigns to its first call
// under the D9 scheme (incarnation in the upper 32 bits, sequence 1).
func firstCallID(inc msg.Incarnation) msg.CallID {
	return msg.CallID(int64(inc)<<32 | 1)
}

// Attach implements MicroProtocol.
func (f FIFOOrder) Attach(fw *Framework) error {
	fw.SetHold(HoldFIFO)

	var (
		mu         sync.Mutex
		inProgress = make(map[msg.ProcID]*fifoEntry)
	)
	start := func(m *msg.NetMsg) msg.CallID {
		if f.StrictInit {
			return firstCallID(m.Inc)
		}
		return m.ID
	}

	if err := fw.Bus().Register(event.MsgFromNetwork, "FIFOOrder.msgFromNet", PrioOrder,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpCall {
				return
			}
			key := m.Key()
			mu.Lock()
			ip, seen := inProgress[m.Client]
			if !seen {
				ip = &fifoEntry{inc: m.Inc, next: start(m)}
				inProgress[m.Client] = ip
			} else {
				if ip.inc > m.Inc || (ip.inc == m.Inc && m.ID < ip.next) {
					mu.Unlock()
					// Stale incarnation or already-served call: discard
					// (Main's cancellation cleanup drops the record).
					o.Cancel()
					return
				}
				if ip.inc < m.Inc {
					ip.inc = m.Inc
					ip.next = start(m)
				}
			}
			isNext := m.ID == ip.next
			mu.Unlock()
			if isNext {
				fw.ForwardUp(key, HoldFIFO)
			}
		}); err != nil {
		return err
	}

	return fw.Bus().Register(event.ReplyFromServer, "FIFOOrder.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := o.Arg.(msg.CallKey)
			var inc msg.Incarnation
			if !fw.WithServer(key, func(rec *ServerRecord) { inc = rec.Inc }) {
				return
			}
			mu.Lock()
			advanced := false
			if ip := inProgress[key.Client]; ip != nil && ip.inc == inc && ip.next == key.ID {
				ip.next = key.ID + 1
				advanced = true
			}
			mu.Unlock()
			if advanced {
				// If the successor is already held, release it (ForwardUp
				// no-ops when it is not here yet; its own arrival handler
				// will find next already advanced).
				fw.ForwardUp(msg.CallKey{Client: key.Client, ID: key.ID + 1}, HoldFIFO)
			}
		})
}
