package core

import (
	"sync"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// FIFOOrder guarantees that the calls of each client are served in issue
// order at every server (§4.4.6). Per the paper it deliberately tolerates
// duplicate and concurrent execution (unique execution is a separate
// property), tracking only a per-client next-expected call id within the
// client's current incarnation.
//
// Initialization of the per-client sequence follows the paper by default:
// the first call that *arrives* defines the starting point. That is sound
// for synchronous clients (call k+1 is only issued after call k completed
// everywhere it will ever be observed from) and lets a restarted server
// resynchronize, but it is a liveness hazard for *pipelined* asynchronous
// clients — a reordered first batch would make the server adopt a later
// call as the start and drop the earlier ones forever. StrictInit fixes
// that by expecting each incarnation's sequence to start at its first call
// (which the D9 id scheme makes recognizable); the configuration layer
// enables it automatically for asynchronous-call services.
type FIFOOrder struct {
	// StrictInit makes the expected sequence of a newly seen incarnation
	// start at its first call instead of at the first call to arrive.
	StrictInit bool

	b  *Binding
	mu sync.Mutex
	// inProgress migrates across a swap (a FIFO→FIFO parameter change must
	// not forget where each client's sequence stands).
	inProgress map[msg.ProcID]*fifoEntry
}

var _ MicroProtocol = (*FIFOOrder)(nil)
var _ Stateful = (*FIFOOrder)(nil)
var _ Sequencer = (*FIFOOrder)(nil)

type fifoEntry struct {
	inc  msg.Incarnation
	next msg.CallID
}

// Name implements MicroProtocol.
func (*FIFOOrder) Name() string { return "FIFO Order" }

func (f *FIFOOrder) spec() any {
	return struct{ strict bool }{f.StrictInit}
}

// ExportState implements Stateful.
func (f *FIFOOrder) ExportState() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inProgress
}

// ImportState implements Stateful.
func (f *FIFOOrder) ImportState(state any) {
	f.mu.Lock()
	f.inProgress = state.(map[msg.ProcID]*fifoEntry)
	f.mu.Unlock()
}

// firstCallID is the id a client's incarnation assigns to its first call
// under the D9 scheme (incarnation in the upper 32 bits, sequence 1).
func firstCallID(inc msg.Incarnation) msg.CallID {
	return msg.CallID(int64(inc)<<32 | 1)
}

func (f *FIFOOrder) start(m *msg.NetMsg) msg.CallID {
	if f.StrictInit {
		return firstCallID(m.Inc)
	}
	return m.ID
}

// admit applies the FIFO delivery rule to an arriving (or adopted) call.
// It returns release=true when the call is next in its client's sequence
// (the caller forwards it up) and stale=true when the call belongs to a
// dead incarnation or an already-served position (the caller discards it).
func (f *FIFOOrder) admit(m *msg.NetMsg) (release, stale bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ip, seen := f.inProgress[m.Client]
	if !seen {
		ip = &fifoEntry{inc: m.Inc, next: f.start(m)}
		f.inProgress[m.Client] = ip
	} else {
		if ip.inc > m.Inc || (ip.inc == m.Inc && m.ID < ip.next) {
			return false, true
		}
		if ip.inc < m.Inc {
			ip.inc = m.Inc
			ip.next = f.start(m)
		}
	}
	return m.ID == ip.next, false
}

// Adopt implements Sequencer: a call admitted to sRPC before this instance
// attached is offered to the FIFO rule as if it had just arrived. Stale
// calls are dropped from the table directly (there is no occurrence to
// cancel). The reconfiguration engine adopts calls in (client, id) order,
// so a freshly initialized sequence adopts each client's earliest held call
// as its starting point.
func (f *FIFOOrder) Adopt(key msg.CallKey, m *msg.NetMsg) {
	release, stale := f.admit(m)
	switch {
	case stale:
		f.fw().DropServerCall(key)
	case release:
		f.fw().ForwardUp(key, HoldFIFO)
	}
}

func (f *FIFOOrder) fw() *Framework { return f.b.fw }

// Attach implements MicroProtocol.
func (f *FIFOOrder) Attach(fw *Framework) error {
	fw.SetHold(HoldFIFO)
	b := NewBinding(fw)
	f.b = b
	f.inProgress = make(map[msg.ProcID]*fifoEntry)

	b.On(event.MsgFromNetwork, "FIFOOrder.msgFromNet", PrioOrder,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpCall {
				return
			}
			release, stale := f.admit(m)
			switch {
			case stale:
				// Stale incarnation or already-served call: discard
				// (Main's cancellation cleanup drops the record).
				o.Cancel()
			case release:
				fw.ForwardUp(m.Key(), HoldFIFO)
			}
		})

	b.On(event.ReplyFromServer, "FIFOOrder.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			key := *o.Arg.(*msg.CallKey)
			var inc msg.Incarnation
			if !fw.WithServer(key, func(rec *ServerRecord) { inc = rec.Inc }) {
				return
			}
			f.mu.Lock()
			advanced := false
			if ip := f.inProgress[key.Client]; ip != nil && ip.inc == inc && ip.next == key.ID {
				ip.next = key.ID + 1
				advanced = true
			}
			f.mu.Unlock()
			if advanced {
				// If the successor is already held, release it (ForwardUp
				// no-ops when it is not here yet; its own arrival handler
				// will find next already advanced).
				fw.ForwardUp(msg.CallKey{Client: key.Client, ID: key.ID + 1}, HoldFIFO)
			}
		})
	return b.Err()
}

// Detach implements MicroProtocol.
func (f *FIFOOrder) Detach(fw *Framework) {
	f.b.Detach()
	fw.ClearHold(HoldFIFO)
}
