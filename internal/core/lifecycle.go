package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// Stateful is implemented by micro-protocols with cross-call state that must
// survive a reconfiguration swap (sequencer positions, dedup tables,
// transmission state). When Composite.Swap replaces a protocol with a new
// instance of the same kind, it calls ExportState on the detached instance
// and ImportState on the freshly attached one, under the swap barrier — the
// importing instance is attached but no dispatch is running, so neither call
// needs to synchronize against handlers.
type Stateful interface {
	// ExportState returns the instance's migratable state. The instance is
	// detached afterwards; ownership of the returned value transfers.
	ExportState() any
	// ImportState replaces the freshly attached instance's state with one
	// previously exported by an instance of the same protocol.
	ImportState(state any)
}

// Sequencer is implemented by the ordering micro-protocols (FIFO, Total,
// Causal). After a swap changes the ordering property, calls that were
// admitted to sRPC under the old regime are re-homed: Adopt offers the new
// ordering protocol such a call — identified by its key and the original
// network message — exactly as if it had just arrived, except that the
// record already exists and cancellation is expressed by dropping it.
type Sequencer interface {
	Adopt(key msg.CallKey, m *msg.NetMsg)
}

// specer is implemented by every micro-protocol: spec returns a comparable
// value capturing the protocol's configuration parameters (not its runtime
// state). Two instances with equal names and equal specs are interchangeable,
// which is what lets Composite.Swap keep an attached instance — state, timers
// and all — when the new configuration re-selects the same protocol.
type specer interface {
	spec() any
}

// sameSpec reports whether b can take over a's role without a detach/attach
// cycle.
func sameSpec(a, b MicroProtocol) bool {
	if a.Name() != b.Name() {
		return false
	}
	as, aok := a.(specer)
	bs, bok := b.(specer)
	if !aok || !bok {
		return false
	}
	return as.spec() == bs.spec()
}

// Binding tracks everything one micro-protocol instance has registered with
// the framework while attached: (event, name) handler registrations and
// armed timeouts. Detach tears all of it down and, crucially, stops the
// paper's self-re-arming timer idiom — a timer handler that re-registers
// itself through the binding finds the binding dead and the chain ends.
//
// A Binding is owned by exactly one protocol instance and is created in its
// Attach; all methods are safe for concurrent use (timer handlers re-arm
// from the dispatch goroutine while Detach may run on the swap goroutine).
type Binding struct {
	fw  *Framework
	err error

	mu       sync.Mutex
	regs     []bindingReg
	timers   map[*bindingTimer]struct{}
	detached bool
}

type bindingReg struct {
	t    event.Type
	name string
}

type bindingTimer struct {
	cancel func()
}

// NewBinding returns a binding attached to fw. Micro-protocols create one at
// the top of Attach and register everything through it.
func NewBinding(fw *Framework) *Binding {
	return &Binding{fw: fw, timers: make(map[*bindingTimer]struct{})}
}

// On registers fn for event t through the binding (see Bus.Register). The
// first registration error is retained and returned by Err; later calls
// after an error are no-ops, so Attach bodies can chain registrations and
// check once.
func (b *Binding) On(t event.Type, name string, priority int, fn event.Handler) {
	b.mu.Lock()
	if b.err != nil || b.detached {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	//lint:ignore priority-constants forwarding shim: the named constant is checked at the Binding.On call site
	if err := b.fw.Bus().Register(t, name, priority, fn); err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	if b.detached {
		// Detach raced the registration; undo it.
		b.mu.Unlock()
		b.fw.Bus().Deregister(t, name)
		return
	}
	b.regs = append(b.regs, bindingReg{t: t, name: name})
	b.mu.Unlock()
}

// After arms a TIMEOUT through the binding (see Bus.RegisterTimeout). Once
// the binding is detached, After becomes a no-op and pending timers are
// cancelled — the self-re-arming retransmission/probe/nudge idiom therefore
// dies with its protocol instead of firing into a composite that no longer
// contains it.
func (b *Binding) After(name string, interval time.Duration, fn event.Handler) {
	b.mu.Lock()
	if b.detached {
		b.mu.Unlock()
		return
	}
	h := &bindingTimer{}
	b.timers[h] = struct{}{}
	b.mu.Unlock()

	cancel := b.fw.Bus().RegisterTimeout(name, interval, func(o *event.Occurrence) {
		b.mu.Lock()
		_, live := b.timers[h]
		delete(b.timers, h)
		b.mu.Unlock()
		if !live {
			return
		}
		fn(o)
	})

	b.mu.Lock()
	h.cancel = cancel
	detached := b.detached
	b.mu.Unlock()
	if detached {
		// Detach raced the arming; the handle is already out of b.timers
		// (Detach cleared the map), so the wrapper will refuse to run, but
		// stop the underlying timer too.
		cancel()
	}
}

// Err returns the first registration error, if any. Attach bodies return it
// after their last On call.
func (b *Binding) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Detach deregisters every handler and cancels every pending timer the
// binding tracks, and marks the binding dead so late re-arms are dropped.
// Idempotent.
func (b *Binding) Detach() {
	b.mu.Lock()
	if b.detached {
		b.mu.Unlock()
		return
	}
	b.detached = true
	regs := b.regs
	b.regs = nil
	var cancels []func()
	for h := range b.timers {
		if h.cancel != nil {
			cancels = append(cancels, h.cancel)
		}
		// A handle with no cancel yet is mid-arming; After observes
		// b.detached and stops the timer itself.
	}
	b.timers = make(map[*bindingTimer]struct{})
	b.mu.Unlock()

	for _, r := range regs {
		b.fw.Bus().Deregister(r.t, r.name)
	}
	for _, c := range cancels {
		c()
	}
}
