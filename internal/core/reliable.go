package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// ReliableCommunication implements reliable communication (§4.4.3) by
// retransmitting each call to every group member that has neither replied
// nor acknowledged it. Combined with RPC Main it yields unbounded
// termination: the client keeps trying until it hears back.
//
// Deviation D11: the paper drives retransmission off the pRPC record,
// which the call-semantics micro-protocol deletes as soon as the call is
// accepted — so with acceptance < ALL, a member that lost the call would
// never receive it, breaking the "every server receives the same set of
// messages" property the ordering protocols rely on (Figure 2). Here the
// micro-protocol owns its transmission state independently of the call's
// lifetime: servers acknowledge receipt of every Call (the paper's "some
// other form of acknowledgment"), and the client retransmits until every
// member has acknowledged — lingering past the call's local completion,
// bounded by LingerRounds for calls the client has abandoned.
type ReliableCommunication struct {
	// RetransTimeout is the retransmission period (default 20ms).
	RetransTimeout time.Duration
	// LingerRounds bounds how many retransmission rounds an entry
	// survives after its call record is gone (completed or timed out);
	// members still unacked then are presumed crashed (default 128).
	LingerRounds int

	b  *Binding
	mu sync.Mutex
	// live/seen migrate across a reconfiguration swap (relState): lingering
	// retransmission continues under the new instance, and the server-side
	// receipt record keeps duplicate acks flowing.
	live map[msg.CallID]*relEntry
	seen map[msg.CallKey]bool // server side: calls already received
}

var _ MicroProtocol = (*ReliableCommunication)(nil)
var _ Stateful = (*ReliableCommunication)(nil)

// relEntry is one call's transmission state. Two acknowledgement levels
// matter: received (the member has the call — it acknowledged receipt or
// replied) and replied (the member's response arrived here). While the
// call is pending, retransmission continues to members that have not
// REPLIED, because a retransmitted call is also how a lost reply is
// recovered (Unique Execution resends the retained result; without it the
// call re-executes, which is what at-least-once means). Once the caller
// has moved on, the lingering phase only needs every member to have
// RECEIVED the call (the ordering protocols' same-set property).
type relEntry struct {
	id    msg.CallID
	op    msg.OpID
	args  []byte
	group msg.Group
	vc    msg.VClock
	// acks holds relReceived/relReplied bits per member, in lockstep with
	// group (acks[i] belongs to group[i]) — a slice instead of a map so a
	// pooled entry's backing array is reused across calls.
	acks   []uint8
	linger int
}

// relEntryPool recycles transmission-state entries. group is dropped (not
// reused) on release: it aliases the call record's Server slice, which may
// still back frozen wire messages.
var relEntryPool = newPool(func() any { return new(relEntry) })

func getRelEntry() *relEntry { return relEntryPool.Get().(*relEntry) }

func releaseRelEntry(e *relEntry) {
	*e = relEntry{acks: e.acks[:0]}
	relEntryPool.Put(e)
}

const (
	relReceived = 1 << iota // the member has the call
	relReplied              // the member's response arrived here
)

// relState is ReliableCommunication's exported migration state.
type relState struct {
	live map[msg.CallID]*relEntry
	seen map[msg.CallKey]bool
}

// Name implements MicroProtocol.
func (*ReliableCommunication) Name() string { return "Reliable Communication" }

func (r *ReliableCommunication) params() (time.Duration, int) {
	t := r.RetransTimeout
	if t <= 0 {
		t = 20 * time.Millisecond
	}
	n := r.LingerRounds
	if n <= 0 {
		n = 128
	}
	return t, n
}

func (r *ReliableCommunication) spec() any {
	t, n := r.params()
	return struct {
		t time.Duration
		n int
	}{t, n}
}

// ExportState implements Stateful.
func (r *ReliableCommunication) ExportState() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return relState{live: r.live, seen: r.seen}
}

// ImportState implements Stateful.
func (r *ReliableCommunication) ImportState(state any) {
	s := state.(relState)
	r.mu.Lock()
	r.live = s.live
	r.seen = s.seen
	r.mu.Unlock()
}

// Outstanding returns the number of calls still being (re)transmitted,
// including lingering entries. The reconfiguration engine waits for zero
// before a drain-barrier swap, so every member has received every pre-swap
// call and no pre-swap duplicate can surface afterwards.
func (r *ReliableCommunication) Outstanding() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Attach implements MicroProtocol.
func (r *ReliableCommunication) Attach(fw *Framework) error {
	retrans, lingerRounds := r.params()
	b := NewBinding(fw)
	r.b = b
	r.live = make(map[msg.CallID]*relEntry)
	r.seen = make(map[msg.CallKey]bool)

	mark := func(id msg.CallID, from msg.ProcID, reply bool) {
		r.mu.Lock()
		if e, ok := r.live[id]; ok {
			bits := uint8(relReceived)
			if reply {
				bits |= relReplied
			}
			for i, p := range e.group {
				if p == from {
					e.acks[i] |= bits
					break
				}
			}
		}
		r.mu.Unlock()
	}

	b.On(event.NewRPCCall, "ReliableComm.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := *o.Arg.(*msg.CallID)
			var e *relEntry
			fw.WithClient(id, func(rec *ClientRecord) {
				e = getRelEntry()
				acks := e.acks[:0]
				for range rec.Server {
					acks = append(acks, 0)
				}
				*e = relEntry{
					id:   rec.ID,
					op:   rec.Op,
					args: rec.CallArgs, // original input args (deviation D7)
					// The record's Server slice is immutable after insert and
					// its backing is dropped (never scrubbed) when the record
					// is repooled, so sharing it here is safe — no clone.
					group: rec.Server,
					vc:    rec.VC, // retransmissions carry the original timestamp
					acks:  acks,
				}
				for i := range rec.Pending {
					rec.Pending[i].Acked = false
				}
			})
			if e == nil {
				return
			}
			r.mu.Lock()
			r.live[id] = e
			r.mu.Unlock()
		})

	b.On(event.MsgFromNetwork, "ReliableComm.msgFromNet", PrioReliable,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpCall:
				// Server side: acknowledge receipt of a REdelivered call
				// (a duplicate means the client is still retransmitting to
				// us) so the client can settle this member even while
				// execution is deferred by an ordering protocol. The first
				// delivery is not acknowledged: on the fast path the reply
				// itself settles the member, keeping the extra message off
				// the common case.
				key := m.Key()
				r.mu.Lock()
				dup := r.seen[key]
				if !dup {
					r.seen[key] = true
				}
				r.mu.Unlock()
				if dup {
					fw.Net().Push(m.Sender, &msg.NetMsg{
						Type:   msg.OpCallAck,
						Client: m.Client,
						Server: m.Server,
						Sender: fw.Self(),
						Inc:    fw.Inc(),
						AckID:  m.ID,
					})
				}
			case msg.OpReply:
				mark(m.ID, m.Sender, true)
				fw.WithClient(m.ID, func(rec *ClientRecord) {
					if e := rec.PendingFor(m.Sender); e != nil {
						e.Acked = true
					}
				})
			case msg.OpCallAck:
				// A member acknowledged receipt of our Call.
				mark(m.AckID, m.Sender, false)
				fw.WithClient(m.AckID, func(rec *ClientRecord) {
					if e := rec.PendingFor(m.Sender); e != nil {
						e.Acked = true
					}
				})
			case msg.OpRelayAck:
				// A dissemination subtree acknowledged receipt in one merged
				// message (D17): Args carries the covered members. Only the
				// call's origin dispatches this — interior tree nodes consume
				// and aggregate relay acks before dispatch.
				covered := msg.DecodeProcIDs(m.Args)
				for _, p := range covered {
					mark(m.AckID, p, false)
				}
				fw.WithClient(m.AckID, func(rec *ClientRecord) {
					for _, p := range covered {
						if e := rec.PendingFor(p); e != nil {
							e.Acked = true
						}
					}
				})
			}
		})

	// Periodic retransmission: a TIMEOUT handler that re-registers itself,
	// the paper's idiom for repetition. Re-arming through the binding means
	// the chain dies when the protocol detaches.
	var handleTimeout event.Handler
	handleTimeout = func(*event.Occurrence) {
		type resend struct {
			to msg.ProcID
			m  *msg.NetMsg
		}
		var out []resend
		r.mu.Lock()
		for id, e := range r.live {
			pending := fw.HasClient(id)
			// While pending, a member is settled only once it replied;
			// afterwards, receipt suffices (see relEntry).
			need := uint8(relReplied)
			if !pending {
				need = relReceived
				// The caller has moved on (accepted or timed out); keep
				// redelivering for a bounded while so slow members still
				// receive the call, then presume the rest crashed.
				e.linger++
				if e.linger > lingerRounds {
					delete(r.live, id)
					releaseRelEntry(e)
					continue
				}
			}
			done := true
			for i := range e.group {
				if e.acks[i]&need == 0 {
					done = false
					break
				}
			}
			if done {
				delete(r.live, id)
				releaseRelEntry(e)
				continue
			}
			for i, p := range e.group {
				if e.acks[i]&need != 0 {
					continue
				}
				out = append(out, resend{to: p, m: &msg.NetMsg{
					Type:   msg.OpCall,
					ID:     e.id,
					Client: fw.Self(),
					Op:     e.op,
					Args:   e.args,
					Server: e.group,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
					VC:     e.vc,
				}})
			}
		}
		r.mu.Unlock()
		for _, rs := range out {
			fw.Net().Push(rs.to, rs.m)
		}
		b.After("ReliableComm.handleTimeout", retrans, handleTimeout)
	}
	b.After("ReliableComm.handleTimeout", retrans, handleTimeout)
	return b.Err()
}

// Detach implements MicroProtocol.
func (r *ReliableCommunication) Detach(*Framework) { r.b.Detach() }
