package core

import (
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/msg"
)

// ReliableCommunication implements reliable communication (§4.4.3) by
// retransmitting each call to every group member that has neither replied
// nor acknowledged it. Combined with RPC Main it yields unbounded
// termination: the client keeps trying until it hears back.
//
// Deviation D11: the paper drives retransmission off the pRPC record,
// which the call-semantics micro-protocol deletes as soon as the call is
// accepted — so with acceptance < ALL, a member that lost the call would
// never receive it, breaking the "every server receives the same set of
// messages" property the ordering protocols rely on (Figure 2). Here the
// micro-protocol owns its transmission state independently of the call's
// lifetime: servers acknowledge receipt of every Call (the paper's "some
// other form of acknowledgment"), and the client retransmits until every
// member has acknowledged — lingering past the call's local completion,
// bounded by LingerRounds for calls the client has abandoned.
type ReliableCommunication struct {
	// RetransTimeout is the retransmission period (default 20ms).
	RetransTimeout time.Duration
	// LingerRounds bounds how many retransmission rounds an entry
	// survives after its call record is gone (completed or timed out);
	// members still unacked then are presumed crashed (default 128).
	LingerRounds int
}

var _ MicroProtocol = ReliableCommunication{}

// relEntry is one call's transmission state. Two acknowledgement levels
// matter: received (the member has the call — it acknowledged receipt or
// replied) and replied (the member's response arrived here). While the
// call is pending, retransmission continues to members that have not
// REPLIED, because a retransmitted call is also how a lost reply is
// recovered (Unique Execution resends the retained result; without it the
// call re-executes, which is what at-least-once means). Once the caller
// has moved on, the lingering phase only needs every member to have
// RECEIVED the call (the ordering protocols' same-set property).
type relEntry struct {
	id     msg.CallID
	op     msg.OpID
	args   []byte
	group  msg.Group
	vc     msg.VClock
	acks   map[msg.ProcID]uint8 // relReceived/relReplied bits per member
	linger int
}

const (
	relReceived = 1 << iota // the member has the call
	relReplied              // the member's response arrived here
)

// Name implements MicroProtocol.
func (ReliableCommunication) Name() string { return "Reliable Communication" }

// Attach implements MicroProtocol.
func (r ReliableCommunication) Attach(fw *Framework) error {
	if r.RetransTimeout <= 0 {
		r.RetransTimeout = 20 * time.Millisecond
	}
	if r.LingerRounds <= 0 {
		r.LingerRounds = 128
	}

	var (
		mu   sync.Mutex
		live = make(map[msg.CallID]*relEntry)
		seen = make(map[msg.CallKey]bool) // server side: calls already received
	)

	mark := func(id msg.CallID, from msg.ProcID, reply bool) {
		mu.Lock()
		if e, ok := live[id]; ok {
			bits := uint8(relReceived)
			if reply {
				bits |= relReplied
			}
			e.acks[from] |= bits
		}
		mu.Unlock()
	}

	if err := fw.Bus().Register(event.NewRPCCall, "ReliableComm.handleNewCall", event.DefaultPriority,
		func(o *event.Occurrence) {
			id := o.Arg.(msg.CallID)
			var e *relEntry
			fw.WithClient(id, func(rec *ClientRecord) {
				e = &relEntry{
					id:    rec.ID,
					op:    rec.Op,
					args:  rec.CallArgs, // original input args (deviation D7)
					group: rec.Server.Clone(),
					vc:    rec.VC, // retransmissions carry the original timestamp
					acks:  make(map[msg.ProcID]uint8, len(rec.Server)),
				}
				for p, entry := range rec.Pending {
					entry.Acked = false
					rec.Pending[p] = entry
				}
			})
			if e == nil {
				return
			}
			mu.Lock()
			live[id] = e
			mu.Unlock()
		}); err != nil {
		return err
	}

	if err := fw.Bus().Register(event.MsgFromNetwork, "ReliableComm.msgFromNet", PrioReliable,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			switch m.Type {
			case msg.OpCall:
				// Server side: acknowledge receipt of a REdelivered call
				// (a duplicate means the client is still retransmitting to
				// us) so the client can settle this member even while
				// execution is deferred by an ordering protocol. The first
				// delivery is not acknowledged: on the fast path the reply
				// itself settles the member, keeping the extra message off
				// the common case.
				key := m.Key()
				mu.Lock()
				dup := seen[key]
				if !dup {
					seen[key] = true
				}
				mu.Unlock()
				if dup {
					fw.Net().Push(m.Sender, &msg.NetMsg{
						Type:   msg.OpCallAck,
						Client: m.Client,
						Server: m.Server,
						Sender: fw.Self(),
						Inc:    fw.Inc(),
						AckID:  m.ID,
					})
				}
			case msg.OpReply:
				mark(m.ID, m.Sender, true)
				fw.WithClient(m.ID, func(rec *ClientRecord) {
					if e, ok := rec.Pending[m.Sender]; ok {
						e.Acked = true
						rec.Pending[m.Sender] = e
					}
				})
			case msg.OpCallAck:
				// A member acknowledged receipt of our Call.
				mark(m.AckID, m.Sender, false)
				fw.WithClient(m.AckID, func(rec *ClientRecord) {
					if e, ok := rec.Pending[m.Sender]; ok {
						e.Acked = true
						rec.Pending[m.Sender] = e
					}
				})
			}
		}); err != nil {
		return err
	}

	// Periodic retransmission: a TIMEOUT handler that re-registers itself,
	// the paper's idiom for repetition.
	var handleTimeout event.Handler
	handleTimeout = func(*event.Occurrence) {
		type resend struct {
			to msg.ProcID
			m  *msg.NetMsg
		}
		var out []resend
		mu.Lock()
		for id, e := range live {
			pending := fw.HasClient(id)
			// While pending, a member is settled only once it replied;
			// afterwards, receipt suffices (see relEntry).
			need := uint8(relReplied)
			if !pending {
				need = relReceived
				// The caller has moved on (accepted or timed out); keep
				// redelivering for a bounded while so slow members still
				// receive the call, then presume the rest crashed.
				e.linger++
				if e.linger > r.LingerRounds {
					delete(live, id)
					continue
				}
			}
			done := true
			for _, p := range e.group {
				if e.acks[p]&need == 0 {
					done = false
					break
				}
			}
			if done {
				delete(live, id)
				continue
			}
			for _, p := range e.group {
				if e.acks[p]&need != 0 {
					continue
				}
				out = append(out, resend{to: p, m: &msg.NetMsg{
					Type:   msg.OpCall,
					ID:     e.id,
					Client: fw.Self(),
					Op:     e.op,
					Args:   e.args,
					Server: e.group,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
					VC:     e.vc,
				}})
			}
		}
		mu.Unlock()
		for _, rs := range out {
			fw.Net().Push(rs.to, rs.m)
		}
		fw.Bus().RegisterTimeout("ReliableComm.handleTimeout", r.RetransTimeout, handleTimeout)
	}
	fw.Bus().RegisterTimeout("ReliableComm.handleTimeout", r.RetransTimeout, handleTimeout)
	return nil
}
