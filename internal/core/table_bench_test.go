package core

import (
	"fmt"
	"sync"
	"testing"

	"mrpc/internal/clock"
	"mrpc/internal/event"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// BenchmarkTableOps measures the call-table layer in isolation: each caller
// loops insert → scoped update → take, the table ops of one RPC's client
// side. Run with -cpu N to surface contention: with GOMAXPROCS=1 a short
// critical section is never preempted, so any lock design measures the
// same; with more Ps than cores the holder does get preempted and a
// process-wide mutex stalls every caller where shards stall 1/16th of them.
func BenchmarkTableOps(b *testing.B) {
	for _, callers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("callers%d", callers), func(b *testing.B) {
			fw, err := NewFramework(Options{
				Site: proc.NewSite(1),
				Bus:  event.New(clock.NewReal()),
				Net:  memEP{n: newMemNet()},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer fw.Close()
			group := msg.NewGroup(1)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / callers
			if per == 0 {
				per = 1
			}
			for c := 0; c < callers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						rec := fw.NewClientRec(1, nil, group, nil)
						fw.WithClient(rec.ID, func(r *ClientRecord) {
							r.NRes = 1
						})
						if _, ok := fw.TakeClient(rec.ID); !ok {
							b.Error("record vanished")
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
