package core

import (
	"fmt"
	"sync"
	"time"

	"mrpc/internal/event"
	"mrpc/internal/member"
	"mrpc/internal/msg"
	"mrpc/internal/stub"
)

// TotalOrder guarantees that the calls of all clients are processed in the
// same total order by every group member (§4.4.6). One member — the leader,
// defined as the non-failed server with the largest identifier — assigns
// sequence numbers to calls and disseminates them in ORDER messages; every
// member executes calls strictly in sequence-number order.
//
// The paper's implementation assumes Reliable Communication and Unique
// Execution are configured and Bounded Termination is not; the dependency
// graph in internal/config enforces this.
//
// Leader change implements the agreement phase the paper omits "for
// brevity" (§4.4.6): the new leader queries the surviving members for the
// assignments they have seen (ORDER_QUERY/ORDER_INFO), merges their order
// tables, adopts a sequence number above everything reported, and
// re-disseminates the merged assignments — so an assignment the failed
// leader managed to deliver to any surviving member is preserved rather
// than renumbered divergently. Fresh assignments are deferred for
// AgreementDelay while the query round completes. This is crash-stop
// agreement over fair-lossy links (the query round itself is retried by
// the nudge timer), not partition-tolerant consensus; see DESIGN.md D4.
type TotalOrder struct {
	// NudgeInterval is how often a follower re-forwards calls that are
	// still waiting for a sequence number to the current leader (default
	// 20ms). The paper relies on client retransmissions to trigger this
	// forwarding; with receipt-acknowledged reliable communication (D11)
	// those stop, so order-message loss is recovered by the group itself.
	NudgeInterval time.Duration
	// AgreementDelay is how long a new leader collects ORDER_INFO replies
	// before assigning fresh sequence numbers (default 3x NudgeInterval).
	AgreementDelay time.Duration

	b  *Binding
	st *totalState
}

var _ MicroProtocol = (*TotalOrder)(nil)
var _ Stateful = (*TotalOrder)(nil)
var _ Sequencer = (*TotalOrder)(nil)

type totalState struct {
	mu        sync.Mutex
	oldOrders map[msg.CallKey]int64       // assigned sequence numbers seen
	waiting   map[msg.CallKey]*msg.NetMsg // full call, for re-forwarding
	ready     map[int64]msg.CallKey
	nextOrder int64                // leader: next number to assign
	nextEntry int64                // all: next number allowed to execute
	groups    map[string]msg.Group // groups observed, for leader takeover
	syncing   bool                 // new leader collecting ORDER_INFO; defer assignments
}

// encodeOrders serializes a (key -> order) table for ORDER_INFO.
func encodeOrders(orders map[msg.CallKey]int64) []byte {
	w := stub.NewWriter(16 * len(orders))
	w.PutUint32(uint32(len(orders)))
	for k, ord := range orders {
		w.PutUint32(uint32(k.Client))
		w.PutInt64(int64(k.ID))
		w.PutInt64(ord)
	}
	return w.Bytes()
}

// decodeOrders parses an ORDER_INFO payload.
func decodeOrders(data []byte) map[msg.CallKey]int64 {
	r := stub.NewReader(data)
	n := int(r.Uint32())
	out := make(map[msg.CallKey]int64, n)
	for i := 0; i < n; i++ {
		client := msg.ProcID(r.Uint32())
		id := msg.CallID(r.Int64())
		ord := r.Int64()
		if r.Err() != nil {
			return out
		}
		out[msg.CallKey{Client: client, ID: id}] = ord
	}
	return out
}

func groupKey(g msg.Group) string { return fmt.Sprint(g) }

// leader computes the group leader, treating members the membership
// service reports failed as down.
func (fw *Framework) totalLeader(g msg.Group) msg.ProcID {
	down := make(map[msg.ProcID]bool)
	for _, p := range g {
		if fw.Membership().Down(p) {
			down[p] = true
		}
	}
	return g.Leader(down)
}

// Name implements MicroProtocol.
func (*TotalOrder) Name() string { return "Total Order" }

func (to *TotalOrder) params() (nudge, agreement time.Duration) {
	nudge = to.NudgeInterval
	if nudge <= 0 {
		nudge = 20 * time.Millisecond
	}
	agreement = to.AgreementDelay
	if agreement <= 0 {
		agreement = 3 * nudge
	}
	return nudge, agreement
}

func (to *TotalOrder) spec() any {
	n, a := to.params()
	return struct{ n, a time.Duration }{n, a}
}

// ExportState implements Stateful.
func (to *TotalOrder) ExportState() any { return to.st }

// ImportState implements Stateful. Runs under the swap barrier, after
// Attach: subsequent dispatch acquires the barrier shared, which orders the
// replacement before every handler read.
func (to *TotalOrder) ImportState(state any) { to.st = state.(*totalState) }

// assign gives key a sequence number (reusing a previously seen assignment)
// and disseminates it.
func (to *TotalOrder) assign(fw *Framework, key msg.CallKey, group msg.Group) {
	st := to.st
	st.mu.Lock()
	ord, ok := st.oldOrders[key]
	if !ok {
		ord = st.nextOrder
		st.oldOrders[key] = ord
		st.nextOrder++
	}
	st.mu.Unlock()
	fw.Net().Multicast(group, &msg.NetMsg{
		Type:   msg.OpOrder,
		ID:     key.ID,
		Client: key.Client,
		Server: group,
		Sender: fw.Self(),
		Inc:    fw.Inc(),
		Order:  ord,
	})
}

// applyOrder records an assignment and releases/drops a held call
// accordingly (the body of the paper's ORDER handling).
func (to *TotalOrder) applyOrder(fw *Framework, key msg.CallKey, order int64) {
	st := to.st
	st.mu.Lock()
	if st.nextOrder < order+1 {
		st.nextOrder = order + 1
	}
	if _, ok := st.oldOrders[key]; !ok {
		st.oldOrders[key] = order
	}
	if _, held := st.waiting[key]; !held {
		st.mu.Unlock()
		return
	}
	delete(st.waiting, key)
	switch {
	case order == st.nextEntry:
		st.mu.Unlock()
		fw.ForwardUp(key, HoldTotal)
	case order < st.nextEntry:
		st.mu.Unlock()
		fw.DropServerCall(key)
	default:
		st.ready[order] = key
		st.mu.Unlock()
	}
}

// Adopt implements Sequencer: a call admitted to sRPC before this instance
// attached (or before a swap replaced its predecessor) re-enters the
// ordering pipeline — the leader assigns it a number, and the call is held
// until its slot comes up, exactly as for a fresh arrival.
func (to *TotalOrder) Adopt(key msg.CallKey, m *msg.NetMsg) {
	fw := to.fw()
	st := to.st
	st.mu.Lock()
	st.groups[groupKey(m.Server)] = m.Server.Clone()
	syncing := st.syncing
	st.mu.Unlock()

	if fw.totalLeader(m.Server) == fw.Self() && !syncing {
		to.assign(fw, key, m.Server)
	}

	st.mu.Lock()
	ord, ok := st.oldOrders[key]
	if !ok {
		st.waiting[key] = m
		st.mu.Unlock()
		return
	}
	switch {
	case ord < st.nextEntry:
		st.mu.Unlock()
		fw.DropServerCall(key)
	case ord == st.nextEntry:
		st.mu.Unlock()
		fw.ForwardUp(key, HoldTotal)
	default:
		st.ready[ord] = key
		st.mu.Unlock()
	}
}

func (to *TotalOrder) fw() *Framework { return to.b.fw }

// Attach implements MicroProtocol.
func (to *TotalOrder) Attach(fw *Framework) error {
	fw.SetHold(HoldTotal)
	nudgeInterval, agreementDelay := to.params()
	b := NewBinding(fw)
	to.b = b
	to.st = &totalState{
		oldOrders: make(map[msg.CallKey]int64),
		waiting:   make(map[msg.CallKey]*msg.NetMsg),
		ready:     make(map[int64]msg.CallKey),
		nextOrder: 1,
		nextEntry: 1,
		groups:    make(map[string]msg.Group),
	}

	// The leader assigns sequence numbers as soon as a Call arrives
	// (before any other processing); followers holding an unordered call
	// nudge the leader when the client retransmits.
	b.On(event.MsgFromNetwork, "TotalOrder.assignOrder", PrioAssignOrder,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			if m.Type != msg.OpCall {
				return
			}
			key := m.Key()
			st := to.st
			st.mu.Lock()
			st.groups[groupKey(m.Server)] = m.Server.Clone()
			_, known := st.oldOrders[key]
			_, isWaiting := st.waiting[key]
			syncing := st.syncing
			st.mu.Unlock()

			// A duplicate of a call that executed before this instance
			// attached (a pre-reconfiguration call) must not be sequenced:
			// no reply will ever advance past its slot, which would stall
			// the whole entry sequence. Known or waiting keys pass — those
			// are live calls (re-announcing a known order is the lost-ORDER
			// recovery path; Unique marks held calls as seen long before
			// they execute, so "seen" alone doesn't mean executed).
			if !known && !isWaiting && fw.AlreadyExecuted(key) {
				return
			}

			if fw.totalLeader(m.Server) == fw.Self() {
				if !syncing {
					to.assign(fw, key, m.Server)
				}
				// While syncing, assignment is deferred; the follower
				// nudge timers re-deliver the call once the agreement
				// round is over.
			} else if isWaiting {
				fw.Net().Push(fw.totalLeader(m.Server), m)
			}
			// Unlike the paper, duplicates of already-executed calls are
			// NOT cancelled here: doing so (before Unique Execution's
			// handler) would suppress the retained-response resend that
			// recovers from a lost reply (deviation D8). The ordered
			// handler below drops them after Unique has had its chance.
		})

	b.On(event.MsgFromNetwork, "TotalOrder.msgFromNet", PrioOrder,
		func(o *event.Occurrence) {
			m := o.Arg.(*NetEvent).Msg
			st := to.st
			switch m.Type {
			case msg.OpCall:
				key := m.Key()
				st.mu.Lock()
				ord, ok := st.oldOrders[key]
				if !ok {
					st.waiting[key] = m
					st.mu.Unlock()
					o.OnCancel(func(*event.Occurrence) {
						st.mu.Lock()
						delete(st.waiting, key)
						st.mu.Unlock()
					})
					return
				}
				switch {
				case ord < st.nextEntry:
					st.mu.Unlock()
					o.Cancel()
				case ord == st.nextEntry:
					st.mu.Unlock()
					fw.ForwardUp(key, HoldTotal)
				default:
					st.ready[ord] = key
					st.mu.Unlock()
				}

			case msg.OpOrder:
				to.applyOrder(fw, m.Key(), m.Order)

			case msg.OpOrderQuery:
				// A new leader is collecting assignments: report ours.
				st.mu.Lock()
				payload := encodeOrders(st.oldOrders)
				st.mu.Unlock()
				fw.Net().Push(m.Sender, &msg.NetMsg{
					Type:   msg.OpOrderInfo,
					Server: m.Server,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
					Args:   payload,
				})

			case msg.OpOrderInfo:
				// Merge a member's assignments; re-disseminate anything we
				// learned so every member converges on the merged table.
				reported := decodeOrders(m.Args)
				var learned []msg.CallKey
				st.mu.Lock()
				for k, ord := range reported {
					if st.nextOrder < ord+1 {
						st.nextOrder = ord + 1
					}
					if _, ok := st.oldOrders[k]; !ok {
						st.oldOrders[k] = ord
						learned = append(learned, k)
					}
				}
				orders := make(map[msg.CallKey]int64, len(learned))
				for _, k := range learned {
					orders[k] = st.oldOrders[k]
				}
				st.mu.Unlock()
				for _, k := range learned {
					fw.Net().Multicast(m.Server, &msg.NetMsg{
						Type:   msg.OpOrder,
						ID:     k.ID,
						Client: k.Client,
						Server: m.Server,
						Sender: fw.Self(),
						Inc:    fw.Inc(),
						Order:  orders[k],
					})
					to.applyOrder(fw, k, orders[k])
				}
			}
		})

	b.On(event.ReplyFromServer, "TotalOrder.handleReply", PrioReplyBookkeep,
		func(o *event.Occurrence) {
			st := to.st
			st.mu.Lock()
			st.nextEntry++
			key, ok := st.ready[st.nextEntry]
			if ok {
				delete(st.ready, st.nextEntry)
			}
			st.mu.Unlock()
			if ok {
				fw.ForwardUp(key, HoldTotal)
			}
		})

	// A follower holding unordered calls periodically re-forwards them to
	// the current leader, recovering lost ORDER messages (and lost
	// leader-bound calls) without relying on client retransmission. The
	// re-arm goes through the binding, so the chain ends at Detach.
	var nudge event.Handler
	nudge = func(*event.Occurrence) {
		st := to.st
		st.mu.Lock()
		var resend []*msg.NetMsg
		for _, m := range st.waiting {
			resend = append(resend, m)
		}
		st.mu.Unlock()
		for _, m := range resend {
			leader := fw.totalLeader(m.Server)
			if leader != 0 && leader != fw.Self() {
				fw.Net().Push(leader, m)
			}
		}
		b.After("TotalOrder.nudge", nudgeInterval, nudge)
	}
	b.After("TotalOrder.nudge", nudgeInterval, nudge)

	// Leader takeover with the agreement phase the paper omits (see the
	// type comment): the new leader first queries survivors for their
	// assignments, then — after AgreementDelay — assigns fresh numbers to
	// whatever is still unordered.
	b.On(event.MembershipChange, "TotalOrder.leaderChange", event.DefaultPriority,
		func(o *event.Occurrence) {
			c := o.Arg.(member.Change)
			if c.Kind != member.Failure {
				return
			}
			st := to.st
			st.mu.Lock()
			groups := make([]msg.Group, 0, len(st.groups))
			for _, g := range st.groups {
				groups = append(groups, g)
			}
			maxAssigned := int64(0)
			for _, ord := range st.oldOrders {
				if ord > maxAssigned {
					maxAssigned = ord
				}
			}
			if st.nextOrder <= maxAssigned {
				st.nextOrder = maxAssigned + 1
			}
			st.mu.Unlock()

			var leading []msg.Group
			for _, g := range groups {
				if g.Contains(c.Who) && fw.totalLeader(g) == fw.Self() {
					leading = append(leading, g)
				}
			}
			if len(leading) == 0 {
				return
			}

			// Agreement round: collect the survivors' order tables before
			// assigning anything new.
			st.mu.Lock()
			st.syncing = true
			st.mu.Unlock()
			for _, g := range leading {
				fw.Net().Multicast(g, &msg.NetMsg{
					Type:   msg.OpOrderQuery,
					Server: g,
					Sender: fw.Self(),
					Inc:    fw.Inc(),
				})
			}
			b.After("TotalOrder.agreementDone", agreementDelay,
				func(*event.Occurrence) {
					st := to.st
					st.mu.Lock()
					st.syncing = false
					type pend struct {
						key msg.CallKey
						grp msg.Group
					}
					var pending []pend
					for k, m := range st.waiting {
						pending = append(pending, pend{key: k, grp: m.Server})
					}
					st.mu.Unlock()
					for _, g := range leading {
						for _, p := range pending {
							if p.grp.Equal(g) {
								to.assign(fw, p.key, g)
							}
						}
					}
				})
		})

	return b.Err()
}

// Detach implements MicroProtocol.
func (to *TotalOrder) Detach(fw *Framework) {
	to.b.Detach()
	fw.ClearHold(HoldTotal)
}
