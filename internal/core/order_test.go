package core

import (
	"testing"
	"time"

	"mrpc/internal/member"
	"mrpc/internal/msg"
)

// fifoNode builds a server with FIFO Order (and its dependencies' handlers
// that matter server-side: Unique Execution).
func fifoNode(t *testing.T, net *memNet) (*testNode, *recordingServer) {
	t.Helper()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &FIFOOrder{})
	return n, srv
}

func TestFIFOHoldsSuccessorUntilPredecessorExecutes(t *testing.T) {
	net := newMemNet()
	n, srv := fifoNode(t, net)
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, 1, 1, group, "c1")) // executes, next=2
	n.fw.HandleNet(callMsg(100, 3, 1, group, "c3")) // held: 3 != next(2)
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("executed %v, want only c1 (c3 must be held)", got)
	}
	if n.fw.PendingServerCalls() != 1 {
		t.Fatal("held call not retained in sRPC")
	}

	n.fw.HandleNet(callMsg(100, 2, 1, group, "c2")) // executes 2, then 3
	want := []string{"c1", "c2", "c3"}
	got := srv.executed()
	if len(got) != 3 {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("records left after draining")
	}
}

func TestFIFOPerClientIndependence(t *testing.T) {
	net := newMemNet()
	n, srv := fifoNode(t, net)
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, 2, 1, group, "a2")) // first seen from 100: next=2, executes
	n.fw.HandleNet(callMsg(101, 7, 1, group, "b7")) // first seen from 101: next=7, executes
	n.fw.HandleNet(callMsg(101, 8, 1, group, "b8")) // executes
	n.fw.HandleNet(callMsg(100, 3, 1, group, "a3")) // executes
	if got := srv.executed(); len(got) != 4 {
		t.Fatalf("executed %v", got)
	}
}

func TestFIFODropsAlreadyServedAndStaleIncarnation(t *testing.T) {
	net := newMemNet()
	n, srv := fifoNode(t, net)
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, 5, 2, group, "five"))
	// Already served id (without Unique's tables knowing: strip via new
	// payload) — id < next.
	n.fw.HandleNet(callMsg(100, 4, 2, group, "four"))
	// Stale incarnation.
	n.fw.HandleNet(callMsg(100, 9, 1, group, "old-inc"))
	if got := srv.executed(); len(got) != 1 || got[0] != "five" {
		t.Fatalf("executed %v, want [five]", got)
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("dropped calls left records")
	}
}

func TestFIFONewIncarnationResetsSequence(t *testing.T) {
	net := newMemNet()
	n, srv := fifoNode(t, net)
	group := msg.NewGroup(1)

	n.fw.HandleNet(callMsg(100, 5, 1, group, "inc1-5"))
	n.fw.HandleNet(callMsg(100, 1, 2, group, "inc2-1")) // new incarnation: reset
	n.fw.HandleNet(callMsg(100, 2, 2, group, "inc2-2"))
	want := []string{"inc1-5", "inc2-1", "inc2-2"}
	got := srv.executed()
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("executed %v, want %v", got, want)
		}
	}
}

func TestFIFOStrictInitHoldsReorderedOpening(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &FIFOOrder{StrictInit: true})
	group := msg.NewGroup(1)

	// The client's opening batch arrives reordered: seq 3, then 2, then 1.
	n.fw.HandleNet(callMsg(100, mkID(1, 3), 1, group, "c3"))
	n.fw.HandleNet(callMsg(100, mkID(1, 2), 1, group, "c2"))
	if got := srv.executed(); len(got) != 0 {
		t.Fatalf("executed %v before the incarnation's first call", got)
	}
	n.fw.HandleNet(callMsg(100, mkID(1, 1), 1, group, "c1"))
	got := srv.executed()
	want := []string{"c1", "c2", "c3"}
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("executed %v, want %v", got, want)
		}
	}

	// A new incarnation's opening batch behaves the same.
	n.fw.HandleNet(callMsg(100, mkID(2, 2), 2, group, "i2c2"))
	if len(srv.executed()) != 3 {
		t.Fatal("new incarnation's second call ran before its first")
	}
	n.fw.HandleNet(callMsg(100, mkID(2, 1), 2, group, "i2c1"))
	got = srv.executed()
	if len(got) != 5 || got[3] != "i2c1" || got[4] != "i2c2" {
		t.Fatalf("executed %v", got)
	}
}

// totalGroup builds a 3-server group with Total Order; returns nodes and
// their recorders. Servers are 1..3; leader is 3.
func totalGroup(t *testing.T, net *memNet, ms member.Service) ([]*testNode, []*recordingServer) {
	t.Helper()
	var nodes []*testNode
	var srvs []*recordingServer
	for id := msg.ProcID(1); id <= 3; id++ {
		srv := &recordingServer{}
		n := addNode(t, net, id, nodeOpts{server: srv, membership: ms},
			&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
			&UniqueExecution{}, &TotalOrder{})
		nodes = append(nodes, n)
		srvs = append(srvs, srv)
	}
	return nodes, srvs
}

func TestTotalOrderAllReplicasSameSequence(t *testing.T) {
	net := newMemNet()
	_, srvs := totalGroup(t, net, nil)
	group := msg.NewGroup(1, 2, 3)
	client := addNode(t, net, 100, nodeOpts{},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: AcceptAll}, &Collation{},
		&UniqueExecution{})

	for i := 0; i < 5; i++ {
		um := client.fw.Call(1, []byte{byte('a' + i)}, group)
		if um.Status != msg.StatusOK {
			t.Fatalf("call %d: %v", i, um.Status)
		}
	}
	first := srvs[0].executed()
	if len(first) != 5 {
		t.Fatalf("replica 1 executed %v", first)
	}
	for i, srv := range srvs[1:] {
		got := srv.executed()
		if len(got) != len(first) {
			t.Fatalf("replica %d executed %d, want %d", i+2, len(got), len(first))
		}
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("replica %d order %v, want %v", i+2, got, first)
			}
		}
	}
}

func TestTotalOrderFollowerBuffersUntilOrder(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	// A lone follower (id 1 in a group whose leader, id 3, is elsewhere
	// and unreachable through the hook).
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &TotalOrder{})
	group := msg.NewGroup(1, 3)

	n.fw.HandleNet(callMsg(100, 1, 1, group, "c1"))
	if got := srv.executed(); len(got) != 0 {
		t.Fatalf("follower executed %v without an order", got)
	}
	if n.fw.PendingServerCalls() != 1 {
		t.Fatal("unordered call not buffered")
	}

	// The leader's ORDER message arrives: sequence number 1 = next entry.
	n.fw.HandleNet(&msg.NetMsg{
		Type: msg.OpOrder, ID: 1, Client: 100, Server: group, Sender: 3, Order: 1,
	})
	if got := srv.executed(); len(got) != 1 || got[0] != "c1" {
		t.Fatalf("executed %v after order", got)
	}
}

func TestTotalOrderOutOfOrderSequencing(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &TotalOrder{})
	group := msg.NewGroup(1, 3)

	// Orders arrive before some calls and out of sequence.
	n.fw.HandleNet(callMsg(100, 1, 1, group, "c1"))
	n.fw.HandleNet(callMsg(100, 2, 1, group, "c2"))
	// Order for c2 first (sequence 2): cannot run yet.
	n.fw.HandleNet(&msg.NetMsg{Type: msg.OpOrder, ID: 2, Client: 100, Server: group, Sender: 3, Order: 2})
	if len(srv.executed()) != 0 {
		t.Fatal("executed before sequence 1 was ordered")
	}
	// Order for c1 (sequence 1): now both run, in sequence order.
	n.fw.HandleNet(&msg.NetMsg{Type: msg.OpOrder, ID: 1, Client: 100, Server: group, Sender: 3, Order: 1})
	got := srv.executed()
	if len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Fatalf("executed %v, want [c1 c2]", got)
	}
}

func TestTotalOrderLeaderAssignsAndExecutes(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	// This node IS the leader (highest id in the group).
	n := addNode(t, net, 3, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &TotalOrder{})
	group := msg.NewGroup(1, 3)

	n.fw.HandleNet(callMsg(100, 1, 1, group, "c1"))
	if got := srv.executed(); len(got) != 1 {
		t.Fatalf("leader executed %v", got)
	}
	// The leader must have multicast an ORDER message to the group.
	if got := net.countSent(msg.OpOrder, 1); got != 1 {
		t.Fatalf("orders sent to follower = %d, want 1", got)
	}
}

func TestTotalOrderRetransmissionForwardedToLeader(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 1, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &TotalOrder{})
	group := msg.NewGroup(1, 3)

	m := callMsg(100, 1, 1, group, "c1")
	n.fw.HandleNet(m.Clone()) // buffered, waiting for order
	// The client retransmits; the follower nudges the leader.
	before := net.countSent(msg.OpCall, 3)
	n.fw.HandleNet(m.Clone())
	if got := net.countSent(msg.OpCall, 3); got != before+1 {
		t.Fatalf("retransmission not forwarded to leader: %d -> %d", before, got)
	}
}

func TestTotalOrderLeaderTakeover(t *testing.T) {
	net := newMemNet()
	oracle := member.NewOracle()
	srv := &recordingServer{}
	// Node 2 will become leader of {1,2,3} once 3 fails.
	n := addNode(t, net, 2, nodeOpts{server: srv, membership: oracle},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &TotalOrder{})
	group := msg.NewGroup(1, 2, 3)

	// A call arrives but the (old) leader never orders it.
	n.fw.HandleNet(callMsg(100, 1, 1, group, "c1"))
	if len(srv.executed()) != 0 {
		t.Fatal("executed without an order")
	}

	// Leader 3 fails: node 2 takes over and assigns the pending call.
	oracle.Fail(3)
	deadline := time.Now().Add(time.Second)
	for len(srv.executed()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("new leader did not sequence the pending call")
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.executed(); got[0] != "c1" {
		t.Fatalf("executed %v", got)
	}
}

func TestTotalOrderAgreementPreservesOldLeaderAssignments(t *testing.T) {
	// The scenario the paper's omitted agreement phase exists for: the old
	// leader assigned orders that reached only SOME members before it
	// crashed. Without agreement, the new leader would renumber those
	// calls first-come-first-served and replicas could execute them in
	// different orders. With the query round, the new leader learns the
	// old assignments from the survivor that has them and preserves them.
	net := newMemNet()
	oracle := member.NewOracle()
	srv1 := &recordingServer{}
	srv2 := &recordingServer{}
	protos := func(s Server) []MicroProtocol {
		return []MicroProtocol{
			&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
			&UniqueExecution{},
			&TotalOrder{NudgeInterval: 5 * time.Millisecond, AgreementDelay: 15 * time.Millisecond},
		}
	}
	n1 := addNode(t, net, 1, nodeOpts{server: srv1, membership: oracle}, protos(srv1)...)
	n2 := addNode(t, net, 2, nodeOpts{server: srv2, membership: oracle}, protos(srv2)...)
	group := msg.NewGroup(1, 2, 3) // leader is 3 (never attached: "crashed")

	// Both members hold calls X (client 100) and Y (client 101), neither
	// ordered yet from their perspective...
	x := callMsg(100, 1, 1, group, "X")
	y := callMsg(101, 1, 1, group, "Y")
	for _, n := range []*testNode{n1, n2} {
		n.fw.HandleNet(x.Clone())
		n.fw.HandleNet(y.Clone())
	}
	// ...but the old leader's ORDER messages (Y first, then X!) reached
	// member 1 ONLY — and only the one for Y before the crash.
	n1.fw.HandleNet(&msg.NetMsg{Type: msg.OpOrder, ID: 1, Client: 101, Server: group, Sender: 3, Order: 1})
	waitUntil(t, func() bool { return len(srv1.executed()) == 1 })
	if got := srv1.executed(); got[0] != "Y" {
		t.Fatalf("member 1 executed %v", got)
	}
	if len(srv2.executed()) != 0 {
		t.Fatal("member 2 executed without an order")
	}

	// The leader fails. Member 2 becomes leader; without agreement it
	// would assign order 1 to whichever call nudges first (possibly X),
	// diverging from member 1's history [Y, ...].
	oracle.Fail(3)

	waitUntil(t, func() bool {
		return len(srv1.executed()) == 2 && len(srv2.executed()) == 2
	})
	got1, got2 := srv1.executed(), srv2.executed()
	if got1[0] != "Y" || got1[1] != "X" {
		t.Fatalf("member 1 executed %v, want [Y X]", got1)
	}
	if got2[0] != "Y" || got2[1] != "X" {
		t.Fatalf("member 2 executed %v, want [Y X] (old leader's assignment preserved)", got2)
	}
}

func TestTotalOrderDuplicateOfExecutedCallDropped(t *testing.T) {
	net := newMemNet()
	srv := &recordingServer{}
	n := addNode(t, net, 3, nodeOpts{server: srv},
		&RPCMain{}, &SynchronousCall{}, &Acceptance{Limit: 1}, &Collation{},
		&UniqueExecution{}, &TotalOrder{})
	group := msg.NewGroup(3)

	m := callMsg(100, 1, 1, group, "c1")
	n.fw.HandleNet(m.Clone())
	if len(srv.executed()) != 1 {
		t.Fatal("first delivery did not execute")
	}
	// Duplicate: Unique Execution resends the retained result (deviation
	// D8 keeps that path alive); no re-execution, no leftover record.
	before := net.countSent(msg.OpReply, 100)
	n.fw.HandleNet(m.Clone())
	if len(srv.executed()) != 1 {
		t.Fatal("duplicate re-executed under total order")
	}
	if got := net.countSent(msg.OpReply, 100); got != before+1 {
		t.Fatalf("retained result not resent under total order: %d", got-before)
	}
	if n.fw.PendingServerCalls() != 0 {
		t.Fatal("duplicate left a record")
	}
}
