//go:build mrpcdebug

package core

// Debug builds replace the raw sync.Pools with a checking wrapper: Put
// scribbles a sentinel into a field the release path has scrubbed and
// records the object as pooled; Get panics when the sentinel was disturbed
// (a use-after-Put wrote to the object while it sat in the pool) or when
// the pool hands an object out twice without an intervening Put (a
// double-Put gave two goroutines the same envelope). Objects born fresh
// from New carry the zero value and pass unexamined. Enable with:
//
//	go test -tags mrpcdebug ./internal/core ./internal/event

import (
	"fmt"
	"sync"

	"mrpc/internal/msg"
)

const (
	poisonInt   = -0x6b6b6b6b // fits int32 and wider
	poisonInt64 = -0x6b6b6b6b6b6b6b6b
	poisonOp    = msg.UserOp(0x6b) // UserOp is a uint8
)

// poisonedNetMsg is the sentinel a pooled NetEvent's Msg field points at.
var poisonedNetMsg = new(msg.NetMsg)

type debugPool struct {
	p      sync.Pool
	mu     sync.Mutex
	pooled map[any]bool // true = currently in the pool
}

func newPool(f func() any) *debugPool {
	return &debugPool{p: sync.Pool{New: f}, pooled: make(map[any]bool)}
}

func (d *debugPool) Get() any {
	x := d.p.Get()
	d.mu.Lock()
	if in, seen := d.pooled[x]; seen && !in {
		d.mu.Unlock()
		panic(fmt.Sprintf("mrpcdebug: pool handed out a checked-out %T (double-Put upstream)", x))
	}
	d.pooled[x] = false
	d.mu.Unlock()
	checkPoison(x)
	return x
}

func (d *debugPool) Put(x any) {
	d.mu.Lock()
	if d.pooled[x] {
		d.mu.Unlock()
		panic(fmt.Sprintf("mrpcdebug: double-Put of %T", x))
	}
	d.pooled[x] = true
	d.mu.Unlock()
	poison(x)
}

// poison scribbles the sentinel into one field per pooled type — a field
// the release path scrubs to zero, never one it deliberately retains
// (ClientRecord.Sem, the Pending/acks backing arrays).
func poison(x any) {
	switch v := x.(type) {
	case *ClientRecord:
		v.NRes = poisonInt
	case *ServerRecord:
		v.Client = msg.ProcID(poisonInt)
	case *NetEvent:
		v.Msg = poisonedNetMsg
	case *msg.UserMsg:
		v.Type = poisonOp
	case *msg.CallKey:
		v.ID = poisonInt64
	case *msg.CallID:
		*v = poisonInt64
	case *relEntry:
		v.id = poisonInt64
	}
}

// checkPoison verifies the sentinel survived the object's stay in the pool
// and restores the zero value. Zero means fresh-from-New; anything else is
// a write that happened after Put.
func checkPoison(x any) {
	dirty := func() {
		panic(fmt.Sprintf("mrpcdebug: dirty Get of %T: object was written while pooled (use-after-Put)", x))
	}
	switch v := x.(type) {
	case *ClientRecord:
		switch v.NRes {
		case poisonInt:
			v.NRes = 0
		case 0:
		default:
			dirty()
		}
	case *ServerRecord:
		switch v.Client {
		case msg.ProcID(poisonInt):
			v.Client = 0
		case 0:
		default:
			dirty()
		}
	case *NetEvent:
		switch v.Msg {
		case poisonedNetMsg:
			v.Msg = nil
		case nil:
		default:
			dirty()
		}
	case *msg.UserMsg:
		switch v.Type {
		case poisonOp:
			v.Type = 0
		case 0:
		default:
			dirty()
		}
	case *msg.CallKey:
		switch v.ID {
		case poisonInt64:
			v.ID = 0
		case 0:
		default:
			dirty()
		}
	case *msg.CallID:
		switch *v {
		case poisonInt64:
			*v = 0
		case 0:
		default:
			dirty()
		}
	case *relEntry:
		switch v.id {
		case poisonInt64:
			v.id = 0
		case 0:
		default:
			dirty()
		}
	}
}
