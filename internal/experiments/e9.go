package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/trace"
)

// E9Loss sweeps the message-loss probability and measures completion
// latency and the retransmission traffic of Reliable Communication — the
// behaviour that turns an unreliable substrate into reliable RPC.
func E9Loss(seed int64) *Report {
	r := &Report{ID: "E9", Title: "loss-rate sweep: latency and retransmissions (Reliable Communication)"}
	r.addf("%-8s %-12s %-12s %-12s %-14s", "loss", "mean", "p95", "max", "msgs/call")

	var means []time.Duration
	for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		rec, msgsPerCall := lossRun(seed, loss)
		means = append(means, rec.Mean())
		r.addf("%-8.2f %-12v %-12v %-12v %-14.1f", loss,
			rec.Mean().Round(time.Microsecond), rec.Percentile(95).Round(time.Microsecond),
			rec.Max().Round(time.Microsecond), msgsPerCall)
	}
	// Directional check: heavy loss must cost materially more than no loss.
	r.Pass = means[len(means)-1] > means[0]
	r.notef("3 servers, acceptance ALL, retransmit every 5ms")
	return r
}

func lossRun(seed int64, loss float64) (*trace.Recorder, float64) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     seed,
			MinDelay: 200 * time.Microsecond,
			MaxDelay: 1 * time.Millisecond,
			LossProb: loss,
		},
	})
	defer sys.Stop()

	cfg := config.ExactlyOncePreset()
	cfg.RetransTimeout = 5 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll

	group := sys.Group(1, 2, 3)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return echoApp{} }); err != nil {
			panic(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}

	const calls = 50
	rec := trace.NewRecorder("latency")
	for i := 0; i < calls; i++ {
		t0 := sys.Clock().Now()
		_, status, err := client.Call(opEcho, []byte("x"), group)
		if err != nil || status != mrpc.StatusOK {
			panic("lossRun: unexpected call failure")
		}
		rec.Add(sys.Clock().Now().Sub(t0))
	}
	stats := sys.Net().Stats()
	return rec, float64(stats.Sent) / float64(calls)
}
