package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/config"
)

// ablationCase is one step of the micro-protocol cost ladder.
type ablationCase struct {
	Name string
	Cfg  mrpc.Config
}

// AblationCases returns the E6 ladder: the minimal functional composite,
// then one additional micro-protocol (or dependency-closed set) at a time.
func AblationCases() []ablationCase {
	minimal := mrpc.Config{
		Call:            config.CallSynchronous,
		Execution:       config.ExecConcurrent,
		Ordering:        config.OrderNone,
		Orphan:          config.OrphanIgnore,
		AcceptanceLimit: 1,
	}
	with := func(f func(*mrpc.Config)) mrpc.Config {
		c := minimal
		c.RetransTimeout = 50 * time.Millisecond
		c.TimeBound = 5 * time.Second
		f(&c)
		return c
	}
	return []ablationCase{
		{"minimal (Main+Sync+Accept+Collate)", with(func(*mrpc.Config) {})},
		{"+Reliable Communication", with(func(c *mrpc.Config) { c.Reliable = true })},
		{"+Bounded Termination", with(func(c *mrpc.Config) { c.Bounded = true })},
		{"+Unique Execution", with(func(c *mrpc.Config) { c.Unique = true })},
		{"+Serial Execution", with(func(c *mrpc.Config) { c.Execution = config.ExecSerial })},
		{"+Atomic Execution", with(func(c *mrpc.Config) { c.Execution = config.ExecAtomic })},
		{"+Interference Avoidance", with(func(c *mrpc.Config) { c.Orphan = config.OrphanAvoidInterference })},
		{"+Terminate Orphan", with(func(c *mrpc.Config) { c.Orphan = config.OrphanTerminate })},
		{"+FIFO Order (w/ R+U)", with(func(c *mrpc.Config) {
			c.Reliable, c.Unique, c.Ordering = true, true, config.OrderFIFO
		})},
		{"+Total Order (w/ R+U)", with(func(c *mrpc.Config) {
			c.Reliable, c.Unique, c.Ordering = true, true, config.OrderTotal
		})},
		{"full (R+B+U+Serial+FIFO+TermOrphan)", with(func(c *mrpc.Config) {
			c.Reliable, c.Bounded, c.Unique = true, true, true
			c.Execution = config.ExecSerial
			c.Ordering = config.OrderFIFO
			c.Orphan = config.OrphanTerminate
		})},
	}
}

// AblationCall measures the mean in-process call latency of one
// configuration over a perfect zero-delay network (so the measured cost is
// the composite protocol itself, not simulated wire time).
func AblationCall(cfg mrpc.Config, calls int) time.Duration {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	server, client := mustPair(sys, cfg)
	_ = server
	group := sys.Group(1)

	// Warm up.
	for i := 0; i < 50; i++ {
		if _, status, err := client.Call(opEcho, nil, group); err != nil || status != mrpc.StatusOK {
			panic("AblationCall: warmup failure")
		}
	}
	t0 := sys.Clock().Now()
	for i := 0; i < calls; i++ {
		if _, status, err := client.Call(opEcho, nil, group); err != nil || status != mrpc.StatusOK {
			panic("AblationCall: call failure")
		}
	}
	return sys.Clock().Now().Sub(t0) / time.Duration(calls)
}

// E6Ablation measures the incremental per-call cost of each
// micro-protocol — the quantitative side of the paper's claim that the
// event-driven structure "facilitates configurability without adversely
// affecting programmability" (and, we add, performance).
func E6Ablation() *Report {
	r := &Report{ID: "E6", Title: "micro-protocol ablation: per-call cost of each property"}
	const calls = 2000

	var base time.Duration
	r.addf("%-38s %-12s %-10s", "configuration", "us/call", "vs minimal")
	for i, c := range AblationCases() {
		d := AblationCall(c.Cfg, calls)
		if i == 0 {
			base = d
		}
		ratio := 1.0
		if base > 0 {
			ratio = float64(d) / float64(base)
		}
		r.addf("%-38s %-12.1f %.2fx", c.Name, float64(d.Nanoseconds())/1e3, ratio)
	}
	r.Pass = true
	return r
}

// mustPair adds one echo server (id 1) and one client (id 100) with cfg.
func mustPair(sys *mrpc.System, cfg mrpc.Config) (*mrpc.Node, *mrpc.Node) {
	var server *mrpc.Node
	var err error
	if cfg.Execution == config.ExecAtomic {
		server, err = sys.AddServer(1, cfg, func() mrpc.App { return newCountingApp() })
	} else {
		server, err = sys.AddServer(1, cfg, func() mrpc.App { return echoApp{} })
	}
	if err != nil {
		panic(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	return server, client
}
