package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/trace"
)

// E10Acceptance sweeps the acceptance limit k over a 5-member group with
// heterogeneous server latencies: the call latency of acceptance-k tracks
// the k-th fastest member, quantifying the acceptance spectrum between the
// paper's ONE and ALL endpoints.
func E10Acceptance(seed int64) *Report {
	r := &Report{ID: "E10", Title: "acceptance policy sweep: k-of-5 latency under heterogeneous delays"}
	r.addf("%-6s %-12s %-12s %-12s", "k", "mean", "p50", "p95")

	var means []time.Duration
	for k := 1; k <= 5; k++ {
		rec := acceptanceRun(seed, k)
		means = append(means, rec.Mean())
		r.addf("%-6d %-12v %-12v %-12v", k,
			rec.Mean().Round(time.Microsecond),
			rec.Percentile(50).Round(time.Microsecond),
			rec.Percentile(95).Round(time.Microsecond))
	}
	// Directional check: k=5 must be materially slower than k=1 and the
	// endpoints must bracket the middle.
	r.Pass = means[0] < means[4] && means[0] <= means[2] && means[2] <= means[4]*2
	r.notef("server i one-way delay = (2i+1)ms, i=0..4")
	return r
}

func acceptanceRun(seed int64, k int) *trace.Recorder {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{Seed: seed},
	})
	defer sys.Stop()

	cfg := config.ExactlyOncePreset()
	cfg.RetransTimeout = 200 * time.Millisecond
	cfg.AcceptanceLimit = k

	group := sys.Group(1, 2, 3, 4, 5)
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return echoApp{} }); err != nil {
			panic(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	for i, id := range group {
		d := time.Duration(2*i+1) * time.Millisecond
		sys.Sim().SetLinkDelay(client.ID(), id, d, d)
	}

	rec := trace.NewRecorder("latency")
	for i := 0; i < 25; i++ {
		t0 := sys.Clock().Now()
		_, status, err := client.Call(opEcho, nil, group)
		if err != nil || status != mrpc.StatusOK {
			panic("acceptanceRun: unexpected call failure")
		}
		rec.Add(sys.Clock().Now().Sub(t0))
	}
	return rec
}
