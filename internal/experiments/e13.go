package experiments

import (
	"fmt"
	"sync"
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// E13Causal demonstrates the Causal Order extension (DESIGN.md): client A
// writes, client B reads until it observes A's write (creating a causal
// chain through the reply), then B writes. Every replica must then execute
// A's write before B's — a guarantee no-ordering cannot give under message
// reordering, and that total order gives only at the price of a sequencer.
//
// The experiment counts causality violations per replica over many rounds
// for none / causal / total configurations.
func E13Causal(seed int64) *Report {
	r := &Report{ID: "E13", Title: "causal order (extension): cross-client causality under reordering"}
	r.Pass = true

	const rounds = 20
	r.addf("%-8s %-12s %-12s", "order", "violations", "tput-ish(calls)")
	for _, mode := range []config.OrderMode{config.OrderNone, config.OrderCausal, config.OrderTotal} {
		violations, calls := causalRun(seed, mode, rounds)
		switch mode {
		case config.OrderCausal, config.OrderTotal:
			if violations != 0 {
				r.Pass = false
			}
		}
		r.addf("%-8s %-12d %-12d", mode, violations, calls)
	}
	r.notef("%d rounds of A-write -> B-read-until-observed -> B-write; 3 replicas, 0.1–3ms delays", rounds)
	r.notef("violations under 'none' are expected (and show the hazard); causal and total must have none")
	return r
}

// causalBoard is a register + execution log: writes record their tag,
// reads return the latest A-stream tag; the log records write tags in
// execution order.
type causalBoard struct {
	mu    sync.Mutex
	lastA string
	log   []string
}

const (
	opBoardWrite msg.OpID = 11
	opBoardRead  msg.OpID = 12
)

func (b *causalBoard) Pop(_ *proc.Thread, op msg.OpID, args []byte) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch op {
	case opBoardWrite:
		tag := string(args)
		if len(tag) > 0 && tag[0] == 'A' {
			b.lastA = tag
		}
		b.log = append(b.log, tag)
		return args
	case opBoardRead:
		return []byte(b.lastA)
	default:
		return nil
	}
}

func (b *causalBoard) executed() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.log...)
}

func causalRun(seed int64, mode config.OrderMode, rounds int) (violations, calls int) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     seed,
			MinDelay: 100 * time.Microsecond,
			MaxDelay: 3 * time.Millisecond,
		},
	})
	defer sys.Stop()

	cfg := mrpc.Config{
		Call:            config.CallSynchronous,
		Reliable:        true,
		RetransTimeout:  20 * time.Millisecond,
		Unique:          true,
		Execution:       config.ExecConcurrent,
		Ordering:        mode,
		Orphan:          config.OrphanIgnore,
		AcceptanceLimit: 1,
	}

	group := sys.Group(1, 2, 3)
	boards := make([]*causalBoard, 0, len(group))
	for _, id := range group {
		b := &causalBoard{}
		boards = append(boards, b)
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return b }); err != nil {
			panic(err)
		}
	}
	clientA, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	// B reads with acceptance ALL and a freshest-tag collation, so one
	// round of reads observes A's write as soon as any replica executed
	// it, and the reply VCs of every replica are merged (the causal edge).
	// All of B's calls address the full group: CBCAST numbering is
	// per-process, so a causally ordered service must keep one group.
	bCfg := cfg
	bCfg.AcceptanceLimit = mrpc.AcceptAll
	bCfg.Collate = freshestTag
	clientB, err := sys.AddClient(101, bCfg)
	if err != nil {
		panic(err)
	}
	// Asymmetric links make the hazard reliable: A's writes crawl toward
	// replica 3 while B's reach it almost instantly, so without ordering
	// B's causally-later write overtakes A's there nearly every round.
	sys.Sim().SetLinkDelay(clientA.ID(), 3, 6*time.Millisecond, 9*time.Millisecond)
	sys.Sim().SetLinkDelay(clientB.ID(), 3, 100*time.Microsecond, 200*time.Microsecond)

	mustCall := func(c *mrpc.Node, op msg.OpID, args []byte, g mrpc.Group) []byte {
		reply, status, err := c.Call(op, args, g)
		if err != nil || status != mrpc.StatusOK {
			panic(fmt.Sprintf("causalRun: call failed: %v %v", status, err))
		}
		calls++
		return reply
	}

	for i := 0; i < rounds; i++ {
		aTag := fmt.Sprintf("A:%d", i)
		mustCall(clientA, opBoardWrite, []byte(aTag), group)
		// B reads until it observes A's write: the reply that showed it
		// carries the causal dependency.
		for string(mustCall(clientB, opBoardRead, nil, group)) != aTag {
		}
		mustCall(clientB, opBoardWrite, []byte(fmt.Sprintf("B:%d", i)), group)
	}

	// Drain: every replica eventually executes all 2*rounds writes.
	clk := sys.Clock()
	deadline := clk.Now().Add(10 * time.Second)
	for {
		done := true
		for _, b := range boards {
			if len(b.executed()) < 2*rounds {
				done = false
			}
		}
		if done || clk.Now().After(deadline) {
			break
		}
		clk.Sleep(2 * time.Millisecond)
	}

	for _, b := range boards {
		log := b.executed()
		pos := make(map[string]int, len(log))
		for i, tag := range log {
			pos[tag] = i
		}
		for i := 0; i < rounds; i++ {
			a, aok := pos[fmt.Sprintf("A:%d", i)]
			bb, bok := pos[fmt.Sprintf("B:%d", i)]
			if !aok || !bok || a > bb {
				violations++
			}
		}
	}
	return violations, calls
}

// freshestTag keeps the tag with the larger sequence suffix ("A:7" beats
// "A:3"); empty replies never win.
func freshestTag(accum, reply []byte) []byte {
	if len(reply) == 0 {
		return accum
	}
	if len(accum) == 0 {
		return reply
	}
	return maxTagBytes(accum, reply)
}

func maxTagBytes(a, b []byte) []byte {
	var na, nb int
	fmt.Sscanf(string(a[2:]), "%d", &na)
	fmt.Sscanf(string(b[2:]), "%d", &nb)
	if nb >= na {
		return b
	}
	return a
}
