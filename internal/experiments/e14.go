package experiments

import (
	"runtime"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/config"
	"mrpc/internal/msg"
	"mrpc/internal/p2p"
	"mrpc/internal/proc"
)

// E14PointToPoint quantifies the paper's §4.1 remark that point-to-point
// RPC "would likely be implemented separately to obtain a more compact and
// efficient protocol": the compact p2p specialization (same exactly-once
// semantics, fused code) against the full composite protocol serving a
// single server, over the same zero-delay network.
func E14PointToPoint() *Report {
	r := &Report{ID: "E14", Title: "§4.1 point-to-point specialization vs group composite (1 server)"}
	const calls = 2000

	// Interleave the two measurements A/B/A/B and compare per-side minima:
	// a single pass per side is at the mercy of scheduler and frequency
	// drift between the two timing windows, which on a busy host is larger
	// than the specialization gap being measured. Timing noise is strictly
	// additive (preemption only ever lengthens a window), so the minimum
	// over interleaved passes is the robust estimator of each side's true
	// cost. (The bench snapshot runner interleaves whole-suite passes for
	// the same reason.)
	const passes = 5
	cfg := config.ExactlyOncePreset()
	cfg.RetransTimeout = 50 * time.Millisecond
	compactS := make([]time.Duration, 0, passes)
	compositeS := make([]time.Duration, 0, passes)
	for i := 0; i < passes; i++ {
		// Collect garbage before each timing window (as testing.B does
		// between benchmarks) so heap debt from earlier experiments is not
		// charged to whichever side runs first.
		runtime.GC()
		compactS = append(compactS, p2pCallCost(calls))
		runtime.GC()
		compositeS = append(compositeS, AblationCall(cfg, calls))
	}
	compact := minDuration(compactS)
	composite := minDuration(compositeS)

	r.addf("%-38s %-12s", "implementation", "us/call")
	r.addf("%-38s %-12.1f", "compact p2p (fused, exactly-once)", float64(compact.Nanoseconds())/1e3)
	r.addf("%-38s %-12.1f", "composite gRPC (1-member group)", float64(composite.Nanoseconds())/1e3)
	if compact > 0 {
		r.notef("specialization speedup: %.2fx — the efficiency the paper trades for generality", float64(composite)/float64(compact))
	}
	r.Pass = compact < composite
	return r
}

// minDuration returns the smallest of a non-empty sample set.
func minDuration(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

func p2pCallCost(calls int) time.Duration {
	clk := clock.NewReal()
	net := mrpc.NewSimNet(clk, mrpc.NetParams{})
	defer net.Stop()

	opts := p2p.Options{Reliable: true, Unique: true, RetransTimeout: 50 * time.Millisecond}
	srv, err := p2p.NewServer(net, 1, opts, func(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
		return args
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	client, err := p2p.NewClient(net, clk, 100, opts)
	if err != nil {
		panic(err)
	}
	defer client.Close()

	for i := 0; i < 50; i++ {
		client.Call(1, 1, nil)
	}
	t0 := clk.Now()
	for i := 0; i < calls; i++ {
		if _, status := client.Call(1, 1, nil); status != msg.StatusOK {
			panic("p2pCallCost: call failed")
		}
	}
	return clk.Now().Sub(t0) / time.Duration(calls)
}
