package experiments

import (
	"fmt"
	"sort"
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/event"
)

// E2Properties regenerates Figure 2: the semantic properties of group RPC,
// their variants, and the logical dependencies between them — printed from
// the same data structure the validator is checked against.
func E2Properties() *Report {
	r := &Report{ID: "E2", Title: "Figure 2: semantic properties of group RPC"}
	for _, p := range config.PropertyGraph() {
		line := fmt.Sprintf("%-18s variants: %v", p.Name, p.Variants)
		if len(p.DependsOn) > 0 {
			line += fmt.Sprintf("  depends on: %v", p.DependsOn)
		}
		r.Lines = append(r.Lines, line)
	}
	r.Pass = len(config.PropertyGraph()) == 9
	return r
}

// E3Registrations regenerates Figure 3: the structure of a composite
// protocol as the table of events and the micro-protocol handlers invoked
// for each, in dispatch order — dumped from a live composite rather than
// transcribed.
func E3Registrations() *Report {
	r := &Report{ID: "E3", Title: "Figure 3: composite protocol structure (event -> handlers)"}

	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	cfg := mrpc.Config{
		Call:            config.CallSynchronous,
		Reliable:        true,
		RetransTimeout:  50 * time.Millisecond,
		Bounded:         true,
		TimeBound:       time.Second,
		Unique:          true,
		Execution:       config.ExecConcurrent,
		Ordering:        config.OrderNone,
		Orphan:          config.OrphanIgnore,
		AcceptanceLimit: 1,
	}
	node, err := sys.AddServer(1, cfg, func() mrpc.App { return echoApp{} })
	if err != nil {
		panic(err)
	}

	r.addf("micro-protocols: %v", node.Composite().Protocols())
	regs := node.Composite().Framework().Bus().Registrations()
	types := make([]event.Type, 0, len(regs))
	for t := range regs {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		r.addf("%s:", t)
		for _, reg := range regs[t] {
			prio := fmt.Sprintf("%d", reg.Priority)
			if reg.Priority == event.DefaultPriority {
				prio = "default"
			}
			r.addf("  %-34s priority %s", reg.Name, prio)
		}
	}
	// The paper's Figure 3 example: RPC Main handles the network message
	// first among the depicted protocols; Synchronous Call handles the
	// user call after RPC Main (plus its request-collection handler, which
	// serves results a call-mode reconfiguration left uncollected).
	r.Pass = len(regs[event.MsgFromNetwork]) >= 4 && len(regs[event.CallFromUser]) == 3
	return r
}

// E4Enumeration regenerates the §5 configuration count: enumerating every
// legal micro-protocol combination under the Figure 4 dependency graph
// must yield exactly 2 x 3 x 3 x 11 = 198 services, and each enumerated
// configuration must also pass the independent graph-level check.
func E4Enumeration() *Report {
	r := &Report{ID: "E4", Title: "Figure 4 / §5: dependency graph and configuration count"}

	all := config.Enumerate()
	cluster := config.CommClusterCount()

	graphOK := 0
	for _, c := range all {
		if len(config.CheckAgainstGraph(c.SelectedProtocols())) == 0 {
			graphOK++
		}
	}

	r.addf("call semantics choices:                       2")
	r.addf("orphan handling choices:                      3")
	r.addf("execution property choices:                   3")
	r.addf("unique/reliable/termination/ordering cluster: %d (paper: 11)", cluster)
	r.addf("total legal configurations:                   %d (paper: 2*3*3*11 = 198)", len(all))
	r.addf("configurations passing the Figure 4 graph check: %d", graphOK)

	byFailure := map[string]int{}
	for _, c := range all {
		byFailure[c.FailureSemantics().String()]++
	}
	keys := make([]string, 0, len(byFailure))
	for k := range byFailure {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.addf("  with %-16s semantics: %d", k, byFailure[k])
	}

	r.Pass = cluster == 11 && len(all) == 198 && graphOK == len(all)
	return r
}

// All runs every experiment (E1–E12) and returns the reports in order.
// seed makes the fault injection reproducible.
func All(seed int64) []*Report {
	return []*Report{
		E1FailureSemantics(seed),
		E2Properties(),
		E3Registrations(),
		E4Enumeration(),
		E5ReadOne(seed),
		E6Ablation(),
		E7Ordering(seed),
		E8Monolithic(),
		E8GroupThroughput(),
		E9Loss(seed),
		E10Acceptance(seed),
		E11Orphans(),
		E12Bounded(),
		E13Causal(seed),
		E14PointToPoint(),
		E15Saturation(),
	}
}

// ByID runs a single experiment by its id (case-sensitive, e.g. "E5").
func ByID(id string, seed int64) (*Report, bool) {
	switch id {
	case "E1":
		return E1FailureSemantics(seed), true
	case "E2":
		return E2Properties(), true
	case "E3":
		return E3Registrations(), true
	case "E4":
		return E4Enumeration(), true
	case "E5":
		return E5ReadOne(seed), true
	case "E6":
		return E6Ablation(), true
	case "E7":
		return E7Ordering(seed), true
	case "E8":
		return E8Monolithic(), true
	case "E8b":
		return E8GroupThroughput(), true
	case "E9":
		return E9Loss(seed), true
	case "E10":
		return E10Acceptance(seed), true
	case "E11":
		return E11Orphans(), true
	case "E12":
		return E12Bounded(), true
	case "E13":
		return E13Causal(seed), true
	case "E14":
		return E14PointToPoint(), true
	case "E15":
		return E15Saturation(), true
	default:
		return nil, false
	}
}
