package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/workload"
)

// E15Saturation drives the exactly-once composite with an open-loop
// arrival process at increasing rates: unlike the closed-loop experiments,
// this exposes queueing — beyond the service's capacity, latency and shed
// arrivals grow instead of throughput.
func E15Saturation() *Report {
	r := &Report{ID: "E15", Title: "open-loop saturation: offered rate vs completed rate and latency"}
	r.addf("%-12s %-12s %-12s %-12s %-8s", "offered/s", "completed/s", "mean", "p95", "shed")

	type point struct {
		offered float64
		tput    float64
	}
	var pts []point
	for _, rate := range []float64{2000, 16000, 64000, 256000} {
		res := saturationRun(rate)
		r.addf("%-12.0f %-12.0f %-12v %-12v %-8d", rate, res.Throughput(),
			res.Latency.Mean().Round(time.Microsecond),
			res.Latency.Percentile(95).Round(time.Microsecond), res.Shed)
		pts = append(pts, point{offered: rate, tput: res.Throughput()})
	}
	// Directional check: completed rate tracks low offered rates and falls
	// below the highest offered rate (the service saturates).
	r.Pass = pts[0].tput > pts[0].offered*0.5 && pts[len(pts)-1].tput < pts[len(pts)-1].offered
	r.notef("1 server, exactly-once, 4 client processes, 300ms of arrivals per point")
	return r
}

func saturationRun(rate float64) *workload.OpenResult {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := config.ExactlyOncePreset()
	cfg.RetransTimeout = 100 * time.Millisecond
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return echoApp{} }); err != nil {
		panic(err)
	}
	clients := make([]*mrpc.Node, 0, 4)
	for i := 0; i < 4; i++ {
		c, err := sys.AddClient(mrpc.ProcID(100+i), cfg)
		if err != nil {
			panic(err)
		}
		clients = append(clients, c)
	}

	return workload.OpenLoop{
		Op:          opEcho,
		Group:       sys.Group(1),
		Rate:        rate,
		Duration:    300 * time.Millisecond,
		MaxInFlight: 256,
	}.Run(clients)
}
