package experiments

import (
	"fmt"
	"strings"
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/workload"
)

// E7Ordering compares the three ordering configurations under concurrent
// multi-client load and checks the ordering property each one promises:
//
//   - none:  no cross-server guarantee (divergence is expected and
//     reported, not asserted — a lucky schedule may agree);
//   - fifo:  every server executes each client's calls in issue order;
//   - total: every server executes all calls in the same total order.
func E7Ordering(seed int64) *Report {
	r := &Report{ID: "E7", Title: "ordering: none vs FIFO vs total (consistency + throughput)"}
	r.Pass = true

	const (
		nClients = 4
		nCalls   = 25
	)
	r.addf("%-8s %-12s %-16s %-16s", "order", "tput/s", "fifo-consistent", "totally-ordered")

	for _, mode := range []config.OrderMode{config.OrderNone, config.OrderFIFO, config.OrderTotal} {
		logs, res := orderingRun(seed, mode, nClients, nCalls)
		fifoOK := checkFIFO(logs, nClients, nCalls)
		totalOK := checkTotal(logs)

		switch mode {
		case config.OrderFIFO:
			if !fifoOK {
				r.Pass = false
			}
		case config.OrderTotal:
			if !fifoOK || !totalOK {
				r.Pass = false
			}
		}
		r.addf("%-8s %-12.0f %-16s %-16s", mode, res.Throughput(), yesNo(fifoOK), yesNo(totalOK))
	}
	r.notef("%d clients x %d calls, 3 servers; every server executes every call", nClients, nCalls)
	return r
}

func orderingRun(seed int64, mode config.OrderMode, nClients, nCalls int) ([][]string, *workload.Result) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     seed,
			MinDelay: 100 * time.Microsecond,
			MaxDelay: 2 * time.Millisecond,
		},
	})
	defer sys.Stop()

	cfg := mrpc.Config{
		Call:           config.CallSynchronous,
		Reliable:       true,
		RetransTimeout: 20 * time.Millisecond,
		Unique:         true,
		Execution:      config.ExecConcurrent,
		Ordering:       mode,
		Orphan:         config.OrphanIgnore,
		// Acceptance ONE: the client races ahead of the slower servers, so
		// later calls genuinely overtake earlier ones in the network — the
		// contention the ordering protocols exist to resolve.
		AcceptanceLimit: 1,
	}

	group := sys.Group(1, 2, 3)
	apps := make([]*traceApp, 0, len(group))
	for _, id := range group {
		app := &traceApp{}
		apps = append(apps, app)
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return app }); err != nil {
			panic(err)
		}
	}
	clients := make([]*mrpc.Node, 0, nClients)
	for i := 0; i < nClients; i++ {
		c, err := sys.AddClient(mrpc.ProcID(100+i), cfg)
		if err != nil {
			panic(err)
		}
		clients = append(clients, c)
	}

	res := workload.ClosedLoop{
		Op:      opTrace,
		Group:   group,
		Calls:   nCalls,
		Payload: workload.SeqPayload(),
	}.Run(clients)

	// Wait until every server has executed every call (with acceptance ONE
	// the slower servers are still draining when the clients finish).
	clk := sys.Clock()
	deadline := clk.Now().Add(5 * time.Second)
	want := nClients * nCalls
	for {
		done := true
		for _, a := range apps {
			if len(a.snapshot()) < want {
				done = false
			}
		}
		if done || clk.Now().After(deadline) {
			break
		}
		clk.Sleep(2 * time.Millisecond)
	}

	logs := make([][]string, len(apps))
	for i, a := range apps {
		logs[i] = a.snapshot()
	}
	return logs, res
}

// checkFIFO verifies each client's calls appear in issue order (0,1,2,...)
// in every server log.
func checkFIFO(logs [][]string, nClients, nCalls int) bool {
	for _, log := range logs {
		next := make(map[string]int, nClients)
		for _, entry := range log {
			parts := strings.SplitN(entry, ":", 2)
			if len(parts) != 2 {
				return false
			}
			client := parts[0]
			var seq int
			fmt.Sscanf(parts[1], "%d", &seq)
			if seq != next[client] {
				return false
			}
			next[client] = seq + 1
		}
		for _, n := range next {
			if n != nCalls {
				return false
			}
		}
	}
	return true
}

// checkTotal verifies all server logs are identical sequences.
func checkTotal(logs [][]string) bool {
	if len(logs) == 0 {
		return true
	}
	first := logs[0]
	for _, log := range logs[1:] {
		if len(log) != len(first) {
			return false
		}
		for i := range log {
			if log[i] != first[i] {
				return false
			}
		}
	}
	return true
}
