package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/trace"
)

// E12Bounded sweeps the Bounded Termination deadline against a server with
// a fixed 20ms service time: deadlines shorter than the service time must
// return TIMEOUT within roughly the bound; longer deadlines must succeed.
func E12Bounded() *Report {
	r := &Report{ID: "E12", Title: "bounded termination: deadline sweep vs 20ms service time"}
	r.addf("%-10s %-6s %-9s %-14s", "bound", "ok", "timeout", "mean-latency")

	type outcome struct {
		bound    time.Duration
		ok, tout int
		mean     time.Duration
	}
	var outs []outcome
	for _, bound := range []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond,
	} {
		ok, tout, rec := boundedRun(bound)
		outs = append(outs, outcome{bound: bound, ok: ok, tout: tout, mean: rec.Mean()})
		r.addf("%-10v %-6d %-9d %-14v", bound, ok, tout, rec.Mean().Round(time.Microsecond))
	}
	// Bounds below the service time must time out; bounds above must
	// succeed, and every timed-out call must return near its bound.
	r.Pass = outs[0].tout > 0 && outs[0].ok == 0 &&
		outs[len(outs)-1].ok > 0 && outs[len(outs)-1].tout == 0
	r.notef("a timed-out call returns with status TIMEOUT; the server's execution is not recalled (at-least-once)")
	return r
}

func boundedRun(bound time.Duration) (ok, tout int, rec *trace.Recorder) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := config.ReadOne()
	cfg.TimeBound = bound
	cfg.RetransTimeout = 100 * time.Millisecond

	app := newSlowApp(sys.Clock(), 20*time.Millisecond)
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		panic(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	group := sys.Group(1)

	rec = trace.NewRecorder("latency")
	for i := 0; i < 10; i++ {
		t0 := sys.Clock().Now()
		_, status, err := client.Call(opSlow, []byte{byte(i)}, group)
		if err != nil {
			panic(err)
		}
		rec.Add(sys.Clock().Now().Sub(t0))
		switch status {
		case mrpc.StatusOK:
			ok++
		case mrpc.StatusTimeout:
			tout++
		}
	}
	return ok, tout, rec
}
