package experiments

import (
	"fmt"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/config"
	"mrpc/internal/proc"
)

// E11Orphans exercises the three orphan-handling options (§4.4.7) with the
// same scripted failure: a client issues a slow call, crashes while the
// server is executing it (creating an orphan), recovers under a new
// incarnation, and issues a fresh call.
//
//   - ignore orphans:         the new call may run concurrently with the
//     orphan (interference), which completes and is wasted work;
//   - interference avoidance: the new call executes only after the orphan
//     has drained;
//   - terminate orphan:       the orphan is killed on detection of the new
//     incarnation.
func E11Orphans() *Report {
	r := &Report{ID: "E11", Title: "orphan handling: ignore vs avoid-interference vs terminate"}
	r.Pass = true
	r.addf("%-22s %-16s %-14s %-12s", "policy", "orphan outcome", "interference", "expected")

	for _, mode := range []config.OrphanMode{config.OrphanIgnore, config.OrphanAvoidInterference, config.OrphanTerminate} {
		killed, interfered, completed := orphanRun(mode)

		outcome := "completed"
		if killed {
			outcome = "killed"
		} else if !completed {
			outcome = "lost"
		}
		var ok bool
		switch mode {
		case config.OrphanIgnore:
			ok = completed && interfered
		case config.OrphanAvoidInterference:
			ok = completed && !interfered
		case config.OrphanTerminate:
			ok = killed
		}
		if !ok {
			r.Pass = false
		}
		r.addf("%-22s %-16s %-14s %-12s", mode, outcome, yesNo(interfered), passMark(ok))
	}
	r.notef("orphan service time 80ms; client crashes ~0ms into it and immediately recovers")
	return r
}

// orphanRun returns whether the orphan was killed, whether the new call's
// execution overlapped the orphan's, and whether the orphan ran to
// completion.
func orphanRun(mode config.OrphanMode) (killed, interfered, completed bool) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	cfg := mrpc.Config{
		Call:            config.CallSynchronous,
		Reliable:        true,
		RetransTimeout:  10 * time.Millisecond,
		Execution:       config.ExecConcurrent,
		Ordering:        config.OrderNone,
		Orphan:          mode,
		AcceptanceLimit: 1,
	}

	app := newSlowApp(sys.Clock(), 80*time.Millisecond)
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		panic(err)
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	group := sys.Group(1)

	// 1. Issue the soon-to-be-orphan call; it is aborted locally when the
	// client crashes but keeps executing at the server.
	released := make(chan struct{})
	proc.Go(func(_ *proc.Thread) {
		defer close(released)
		_, _, _ = client.Call(opSlow, []byte("orphan"), group)
	})
	if !waitFor(sys.Clock(), func() bool {
		_, ok := findEvent(app.snapshot(), "orphan", "start")
		return ok
	}, time.Second) {
		panic("orphanRun: orphan never started")
	}

	// 2. Crash and immediately recover the client.
	client.Crash()
	<-released
	if err := client.Recover(); err != nil {
		panic(err)
	}

	// 3. Issue the new-incarnation call; synchronous, so this returns when
	// it has executed.
	if _, status, err := client.Call(opSlow, []byte("new"), group); err != nil || status != mrpc.StatusOK {
		panic(fmt.Sprintf("orphanRun(%v): new call failed: status=%v err=%v", mode, status, err))
	}

	// 4. Let the orphan drain (complete or observe its kill).
	waitFor(sys.Clock(), func() bool {
		ev := app.snapshot()
		_, ended := findEvent(ev, "orphan", "end")
		_, wasKilled := findEvent(ev, "orphan", "killed")
		return ended || wasKilled
	}, time.Second)

	events := app.snapshot()
	_, killed = findEvent(events, "orphan", "killed")
	orphanEnd, completed := findEvent(events, "orphan", "end")
	newStart, newStarted := findEvent(events, "new", "start")
	if completed && newStarted {
		interfered = newStart.at.Before(orphanEnd.at)
	}
	return killed, interfered, completed
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(clk clock.Clock, cond func() bool, limit time.Duration) bool {
	deadline := clk.Now().Add(limit)
	for {
		if cond() {
			return true
		}
		if clk.Now().After(deadline) {
			return false
		}
		clk.Sleep(time.Millisecond)
	}
}
