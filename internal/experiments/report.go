// Package experiments contains the harness that regenerates every figure
// of the paper (E1–E5) and the performance/fault characterizations that
// back its design claims (E6–E12). Each experiment returns a Report with
// the same rows the paper's figure presents plus a machine-checkable pass
// flag; cmd/mrpcbench prints them and the test suite asserts them.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"strings"
)

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	Lines []string
	Notes []string
	Pass  bool
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "=== %s: %s [%s]\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
