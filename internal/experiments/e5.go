package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/trace"
)

// E5ReadOne regenerates the paper's §5 example: a group RPC configured for
// quick response to read-only requests ("at least once" semantics,
// acceptance one, synchronous calls, bounded termination, reliability in
// the RPC layer). With heterogeneous server latencies, acceptance-1 should
// track the fastest member while acceptance-ALL tracks the slowest —
// the design claim that motivates configurable acceptance.
func E5ReadOne(seed int64) *Report {
	r := &Report{ID: "E5", Title: "§5 example: read-optimized service (acceptance 1 vs ALL)"}

	lat1 := readOneRun(seed, false)
	latAll := readOneRun(seed, true)

	r.addf("%-14s %-12s %-12s %-12s", "acceptance", "mean", "p50", "p95")
	r.addf("%-14s %-12v %-12v %-12v", "ONE (paper §5)",
		lat1.Mean().Round(time.Microsecond), lat1.Percentile(50).Round(time.Microsecond), lat1.Percentile(95).Round(time.Microsecond))
	r.addf("%-14s %-12v %-12v %-12v", "ALL",
		latAll.Mean().Round(time.Microsecond), latAll.Percentile(50).Round(time.Microsecond), latAll.Percentile(95).Round(time.Microsecond))
	if lat1.Mean() > 0 {
		r.notef("ALL/ONE mean latency ratio: %.1fx (servers span 1–9ms one-way)", float64(latAll.Mean())/float64(lat1.Mean()))
	}
	r.Pass = lat1.Mean() < latAll.Mean()
	return r
}

func readOneRun(seed int64, all bool) *trace.Recorder {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{Seed: seed},
	})
	defer sys.Stop()

	// Five servers with increasingly slow links: one-way delay 1ms..9ms.
	group := sys.Group(1, 2, 3, 4, 5)
	cfg := config.ReadOne()
	cfg.TimeBound = 2 * time.Second
	cfg.RetransTimeout = 100 * time.Millisecond
	if all {
		cfg.AcceptanceLimit = mrpc.AcceptAll
	}
	for _, id := range group {
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return echoApp{} }); err != nil {
			panic(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	for i, id := range group {
		d := time.Duration(2*i+1) * time.Millisecond
		sys.Sim().SetLinkDelay(client.ID(), id, d, d)
	}

	rec := trace.NewRecorder("latency")
	for i := 0; i < 30; i++ {
		t0 := sys.Clock().Now()
		_, status, err := client.Call(opEcho, []byte("read"), group)
		if err != nil || status != mrpc.StatusOK {
			panic("readOneRun: unexpected call failure")
		}
		rec.Add(sys.Clock().Now().Sub(t0))
	}
	return rec
}
