package experiments

import (
	"sync"
	"time"

	"mrpc/internal/clock"

	"mrpc"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/stub"
)

// Operation ids shared by the experiment apps (stable across nodes).
const (
	opEcho  mrpc.OpID = 1
	opInc   mrpc.OpID = 2
	opPair  mrpc.OpID = 3
	opTrace mrpc.OpID = 4
	opSlow  mrpc.OpID = 5
)

// echoApp returns its arguments; the basic latency workload.
type echoApp struct{}

func (echoApp) Pop(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
	return append([]byte(nil), args...)
}

// countingApp counts executions per distinct payload — the unique-execution
// probe of E1. One shared instance persists across the experiment (the
// servers never crash in the unique test).
type countingApp struct {
	mu      sync.Mutex
	perCall map[string]int
	total   int
}

func newCountingApp() *countingApp {
	return &countingApp{perCall: make(map[string]int)}
}

func (c *countingApp) Pop(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
	c.mu.Lock()
	c.perCall[string(args)]++
	c.total++
	c.mu.Unlock()
	return args
}

// maxExecutions returns the largest execution count over distinct calls,
// and the total number of executions.
func (c *countingApp) maxExecutions() (maxPer, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.perCall {
		if n > maxPer {
			maxPer = n
		}
	}
	return maxPer, c.total
}

// Snapshot implements mrpc.Checkpointable (so the app can run under atomic
// execution configurations).
func (c *countingApp) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := stub.NewWriter(64)
	w.PutInt64(int64(c.total))
	w.PutUint32(uint32(len(c.perCall)))
	for k, v := range c.perCall {
		w.PutString(k)
		w.PutInt64(int64(v))
	}
	return w.Bytes()
}

// Restore implements mrpc.Checkpointable.
func (c *countingApp) Restore(data []byte) error {
	r := stub.NewReader(data)
	total := int(r.Int64())
	n := int(r.Uint32())
	perCall := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := r.String()
		perCall[k] = int(r.Int64())
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.total = total
	c.perCall = perCall
	c.mu.Unlock()
	return nil
}

// durable is stable application state that survives crashes (modelling
// data the server has already written to disk), shared between successive
// app incarnations of one node.
type durable struct {
	mu   sync.Mutex
	a, b int64
}

func (d *durable) read() (int64, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.a, d.b
}

// pairApp is the atomicity probe of E1: the pair operation performs two
// durable writes (a++ then b++) whose invariant is a == b at every call
// boundary. Arming crashPoint makes the next pair call signal the
// experiment between the writes and park until killed — the moment the
// experiment crashes the server — leaving a == b+1 durably unless Atomic
// Execution rolls the state back.
type pairApp struct {
	d *durable

	clk clock.Clock

	mu         sync.Mutex
	armed      bool
	reached    chan struct{} // signalled when the crash point is reached
	maxParking time.Duration
}

func newPairApp(clk clock.Clock, d *durable) *pairApp {
	return &pairApp{clk: clk, d: d, maxParking: 5 * time.Second}
}

// arm makes the next pair call stop at the crash point; the returned
// channel is closed when it gets there.
func (p *pairApp) arm() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed = true
	p.reached = make(chan struct{})
	return p.reached
}

func (p *pairApp) Pop(th *proc.Thread, op msg.OpID, args []byte) []byte {
	if op != opPair {
		return nil
	}
	p.d.mu.Lock()
	p.d.a++
	p.d.mu.Unlock()

	p.mu.Lock()
	armed := p.armed
	var reached chan struct{}
	if armed {
		p.armed = false
		reached = p.reached
	}
	p.mu.Unlock()
	if armed {
		close(reached)
		// Park at the crash point until the experiment crashes the node
		// (observed as a thread kill). The second write never happens in
		// this incarnation — exactly a crash between two disk writes.
		if th != nil {
			select {
			case <-th.Killed():
			case <-clock.After(p.clk, p.maxParking):
			}
			return nil
		}
		p.clk.Sleep(p.maxParking)
		return nil
	}

	p.d.mu.Lock()
	p.d.b++
	p.d.mu.Unlock()
	return []byte("ok")
}

// Snapshot implements mrpc.Checkpointable over the durable state.
func (p *pairApp) Snapshot() []byte {
	a, b := p.d.read()
	return stub.NewWriter(16).PutInt64(a).PutInt64(b).Bytes()
}

// Restore implements mrpc.Checkpointable: recovery rolls the durable state
// back to the checkpoint (the paper's load()).
func (p *pairApp) Restore(data []byte) error {
	r := stub.NewReader(data)
	a := r.Int64()
	b := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	p.d.mu.Lock()
	p.d.a, p.d.b = a, b
	p.d.mu.Unlock()
	return nil
}

// traceApp appends each executed call's payload (a "client:seq" tag) to a
// per-server log — the ordering probe of E7.
type traceApp struct {
	mu  sync.Mutex
	log []string
}

func (t *traceApp) Pop(_ *proc.Thread, _ msg.OpID, args []byte) []byte {
	t.mu.Lock()
	t.log = append(t.log, string(args))
	t.mu.Unlock()
	return args
}

func (t *traceApp) snapshot() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.log...)
}

// slowEvent is one lifecycle event of a slowApp execution.
type slowEvent struct {
	tag  string // payload tag
	kind string // "start", "end", "killed"
	at   time.Time
}

// slowApp executes calls with a fixed service time, records start/end/kill
// events, and honours cooperative kill — the orphan probe of E11.
type slowApp struct {
	clk   clock.Clock
	delay time.Duration

	mu     sync.Mutex
	events []slowEvent
}

func newSlowApp(clk clock.Clock, delay time.Duration) *slowApp {
	return &slowApp{clk: clk, delay: delay}
}

func (s *slowApp) record(tag, kind string) {
	s.mu.Lock()
	s.events = append(s.events, slowEvent{tag: tag, kind: kind, at: s.clk.Now()})
	s.mu.Unlock()
}

func (s *slowApp) Pop(th *proc.Thread, _ msg.OpID, args []byte) []byte {
	tag := string(args)
	s.record(tag, "start")
	deadline := clock.After(s.clk, s.delay)
	if th != nil {
		select {
		case <-th.Killed():
			s.record(tag, "killed")
			return nil
		case <-deadline:
		}
	} else {
		<-deadline
	}
	s.record(tag, "end")
	return args
}

func (s *slowApp) snapshot() []slowEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]slowEvent(nil), s.events...)
}

// find returns the first event with the given tag and kind.
func findEvent(events []slowEvent, tag, kind string) (slowEvent, bool) {
	for _, e := range events {
		if e.tag == tag && e.kind == kind {
			return e, true
		}
	}
	return slowEvent{}, false
}
