package experiments

import (
	"fmt"
	"time"

	"mrpc"
	"mrpc/internal/config"
	"mrpc/internal/proc"
)

// E1FailureSemantics regenerates Figure 1: the traditional failure
// semantics (at least once / exactly once / at most once) arise as
// combinations of the unique-execution and atomic-execution properties.
//
// Two probes per configuration:
//
//   - unique probe: a duplicate-inducing network (loss + duplication +
//     aggressive retransmission) drives distinct calls at a counting
//     server; the max executions per call shows whether unique execution
//     holds.
//   - atomic probe: a server crash is injected between the two durable
//     writes of a pair operation whose invariant is a == b at call
//     boundaries; whether the invariant holds after recovery shows whether
//     atomic execution holds.
func E1FailureSemantics(seed int64) *Report {
	r := &Report{ID: "E1", Title: "Figure 1: failure semantics as {unique, atomic} combinations"}

	rows := []struct {
		name       string
		cfg        mrpc.Config
		wantUnique bool
		wantAtomic bool
	}{
		{"at least once", config.AtLeastOncePreset(), false, false},
		{"exactly once", config.ExactlyOncePreset(), true, false},
		{"at most once", config.AtMostOncePreset(), true, true},
	}

	r.addf("%-15s %-12s %-12s %-14s %-10s", "semantics", "unique-exec", "atomic-exec", "max-exec/call", "invariant")
	r.Pass = true
	for _, row := range rows {
		maxPer, total, calls := uniqueProbe(row.cfg, seed)
		violated := atomicProbe(row.cfg)

		gotUnique := maxPer <= 1
		gotAtomic := !violated
		ok := gotUnique == row.wantUnique && gotAtomic == row.wantAtomic
		if !ok {
			r.Pass = false
		}
		inv := "holds"
		if violated {
			inv = "broken"
		}
		r.addf("%-15s %-12s %-12s %-14d %-10s %s",
			row.name, yesNo(row.wantUnique), yesNo(row.wantAtomic), maxPer, inv, passMark(ok))
		r.notef("%s: %d executions for %d distinct calls", row.name, total, calls)
	}
	return r
}

func yesNo(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}

func passMark(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

// uniqueProbe returns the maximum executions observed for any single call,
// the total executions, and the number of distinct calls issued.
func uniqueProbe(cfg mrpc.Config, seed int64) (maxPer, total, calls int) {
	sys := mrpc.NewSystem(mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     seed,
			MinDelay: 500 * time.Microsecond,
			MaxDelay: 6 * time.Millisecond,
			LossProb: 0.25,
			DupProb:  0.30,
		},
	})
	defer sys.Stop()

	app := newCountingApp()
	if _, err := sys.AddServer(1, cfg, func() mrpc.App { return app }); err != nil {
		panic(err)
	}
	ccfg := cfg
	// Retransmit faster than the delay spread so duplicates are guaranteed
	// even without the network's own duplication.
	ccfg.RetransTimeout = 2 * time.Millisecond
	client, err := sys.AddClient(100, ccfg)
	if err != nil {
		panic(err)
	}

	const n = 25
	group := sys.Group(1)
	for i := 0; i < n; i++ {
		if _, status, err := client.Call(opInc, []byte(fmt.Sprintf("call-%d", i)), group); err != nil || status != mrpc.StatusOK {
			panic(fmt.Sprintf("uniqueProbe: call %d: status=%v err=%v", i, status, err))
		}
	}
	// Let straggler duplicates drain before reading the counters.
	sys.Quiesce()
	sys.Clock().Sleep(20 * time.Millisecond)
	sys.Quiesce()
	maxPer, total = app.maxExecutions()
	return maxPer, total, n
}

// atomicProbe crashes the server between the two durable writes of a pair
// call and reports whether the a == b invariant is broken after recovery
// and the call's eventual completion.
func atomicProbe(cfg mrpc.Config) bool {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()

	d := &durable{}
	scfg := cfg
	server, err := sys.AddServer(1, scfg, func() mrpc.App { return newPairApp(sys.Clock(), d) })
	if err != nil {
		panic(err)
	}
	ccfg := cfg
	// Slow retransmission: no duplicate may slip in between arming the
	// crash point and the crash itself.
	ccfg.RetransTimeout = 50 * time.Millisecond
	client, err := sys.AddClient(100, ccfg)
	if err != nil {
		panic(err)
	}
	group := sys.Group(1)

	for i := 0; i < 3; i++ {
		if _, status, err := client.Call(opPair, nil, group); err != nil || status != mrpc.StatusOK {
			panic(fmt.Sprintf("atomicProbe: warmup call %d: status=%v err=%v", i, status, err))
		}
	}

	app, ok := server.App().(*pairApp)
	if !ok {
		panic("atomicProbe: unexpected app type")
	}
	reached := app.arm()
	done := make(chan struct{})
	proc.Go(func(_ *proc.Thread) {
		defer close(done)
		// This call parks at the crash point, dies with the server, and
		// completes via retransmission after recovery.
		_, _, _ = client.Call(opPair, nil, group)
	})
	<-reached
	server.Crash()
	if err := server.Recover(); err != nil {
		panic(err)
	}
	<-done

	sys.Quiesce()
	a, b := d.read()
	return a != b
}
