package experiments

import (
	"time"

	"mrpc"
	"mrpc/internal/baseline"
	"mrpc/internal/clock"
	"mrpc/internal/config"
	"mrpc/internal/msg"
)

// E8Monolithic measures the cost of configurability: the composite
// protocol (exactly-once, acceptance 1, synchronous) against a monolithic
// RPC with the identical semantics fused into two tight loops, over the
// same zero-delay simulated network.
func E8Monolithic() *Report {
	r := &Report{ID: "E8", Title: "composition overhead vs monolithic baseline (same semantics)"}
	const calls = 2000

	mono := monolithicCall(calls)
	cfg := config.ExactlyOncePreset()
	cfg.RetransTimeout = 50 * time.Millisecond
	comp := AblationCall(cfg, calls)

	r.addf("%-34s %-12s", "implementation", "us/call")
	r.addf("%-34s %-12.1f", "monolithic (fused)", float64(mono.Nanoseconds())/1e3)
	r.addf("%-34s %-12.1f", "composite (micro-protocols)", float64(comp.Nanoseconds())/1e3)
	if mono > 0 {
		r.notef("composition overhead: %.2fx", float64(comp)/float64(mono))
	}
	// The composite should cost more, but within a small constant factor;
	// an order of magnitude would contradict the paper's practicality
	// claim.
	r.Pass = comp < 20*mono
	return r
}

func monolithicCall(calls int) time.Duration {
	clk := clock.NewReal()
	net := mrpc.NewSimNet(clk, mrpc.NetParams{})
	defer net.Stop()

	_, err := baseline.NewServer(net, 1, func(_ msg.OpID, args []byte) []byte {
		return append([]byte(nil), args...)
	})
	if err != nil {
		panic(err)
	}
	client, err := baseline.NewClient(net, clk, 100, 50*time.Millisecond)
	if err != nil {
		panic(err)
	}
	defer client.Close()

	group := msg.NewGroup(1)
	for i := 0; i < 50; i++ {
		client.Call(opEcho, nil, group, 1)
	}
	t0 := clk.Now()
	for i := 0; i < calls; i++ {
		client.Call(opEcho, nil, group, 1)
	}
	return clk.Now().Sub(t0) / time.Duration(calls)
}

// E8GroupThroughput is the group-size sweep companion: calls/s of the
// composite vs the baseline for 1, 3 and 5 servers, acceptance ALL.
func E8GroupThroughput() *Report {
	r := &Report{ID: "E8b", Title: "composite vs monolithic: group-size sweep (acceptance ALL)"}
	const calls = 500
	r.addf("%-8s %-16s %-16s %-10s", "servers", "mono us/call", "composite us/call", "ratio")
	for _, n := range []int{1, 3, 5} {
		mono := monolithicGroupCall(n, calls)
		comp := compositeGroupCall(n, calls)
		ratio := 0.0
		if mono > 0 {
			ratio = float64(comp) / float64(mono)
		}
		r.addf("%-8d %-16.1f %-16.1f %.2fx", n,
			float64(mono.Nanoseconds())/1e3, float64(comp.Nanoseconds())/1e3, ratio)
	}
	r.Pass = true
	return r
}

func monolithicGroupCall(n, calls int) time.Duration {
	clk := clock.NewReal()
	net := mrpc.NewSimNet(clk, mrpc.NetParams{})
	defer net.Stop()
	ids := make([]msg.ProcID, n)
	for i := range ids {
		ids[i] = msg.ProcID(i + 1)
		if _, err := baseline.NewServer(net, ids[i], func(_ msg.OpID, args []byte) []byte {
			return args
		}); err != nil {
			panic(err)
		}
	}
	client, err := baseline.NewClient(net, clk, 100, 50*time.Millisecond)
	if err != nil {
		panic(err)
	}
	defer client.Close()
	group := msg.NewGroup(ids...)
	for i := 0; i < 20; i++ {
		client.Call(opEcho, nil, group, n)
	}
	t0 := clk.Now()
	for i := 0; i < calls; i++ {
		client.Call(opEcho, nil, group, n)
	}
	return clk.Now().Sub(t0) / time.Duration(calls)
}

func compositeGroupCall(n, calls int) time.Duration {
	sys := mrpc.NewSystem(mrpc.SystemOptions{})
	defer sys.Stop()
	cfg := config.ExactlyOncePreset()
	cfg.RetransTimeout = 50 * time.Millisecond
	cfg.AcceptanceLimit = mrpc.AcceptAll
	ids := make([]mrpc.ProcID, n)
	for i := range ids {
		ids[i] = mrpc.ProcID(i + 1)
		if _, err := sys.AddServer(ids[i], cfg, func() mrpc.App { return echoApp{} }); err != nil {
			panic(err)
		}
	}
	client, err := sys.AddClient(100, cfg)
	if err != nil {
		panic(err)
	}
	group := sys.Group(ids...)
	for i := 0; i < 20; i++ {
		if _, status, err := client.Call(opEcho, nil, group); err != nil || status != mrpc.StatusOK {
			panic("compositeGroupCall: warmup failure")
		}
	}
	t0 := sys.Clock().Now()
	for i := 0; i < calls; i++ {
		if _, status, err := client.Call(opEcho, nil, group); err != nil || status != mrpc.StatusOK {
			panic("compositeGroupCall: call failure")
		}
	}
	return sys.Clock().Now().Sub(t0) / time.Duration(calls)
}
