package member

import (
	"sync"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

func TestStaticNeverReportsDown(t *testing.T) {
	s := NewStatic()
	if s.Down(1) {
		t.Fatal("static membership reported a failure")
	}
	fired := false
	unsub := s.Subscribe(func(Change) { fired = true })
	unsub()
	if fired {
		t.Fatal("static membership delivered a change")
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle()
	var got []Change
	unsub := o.Subscribe(func(c Change) { got = append(got, c) })
	defer unsub()

	o.Fail(3)
	o.Fail(3) // idempotent
	if !o.Down(3) || o.Down(4) {
		t.Fatal("Down wrong after Fail")
	}
	o.Recover(3)
	o.Recover(3) // idempotent
	if o.Down(3) {
		t.Fatal("Down wrong after Recover")
	}
	o.Recover(5) // recover of an up process: no-op

	want := []Change{{Who: 3, Kind: Failure}, {Who: 3, Kind: Recovery}}
	if len(got) != len(want) {
		t.Fatalf("changes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("changes = %v, want %v", got, want)
		}
	}
}

func TestOracleUnsubscribe(t *testing.T) {
	o := NewOracle()
	count := 0
	unsub := o.Subscribe(func(Change) { count++ })
	o.Fail(1)
	unsub()
	o.Fail(2)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestKindString(t *testing.T) {
	if Failure.String() != "FAILURE" || Recovery.String() != "RECOVERY" || Kind(9).String() != "UNKNOWN" {
		t.Fatal("Kind strings wrong")
	}
}

// detectorHarness runs a Detector on a simulated clock with a recorded
// send function.
type detectorHarness struct {
	clk *clock.Sim
	det *Detector

	mu      sync.Mutex
	sent    map[msg.ProcID]int
	changes []Change
}

func newDetectorHarness(peers []msg.ProcID, interval, suspect time.Duration) *detectorHarness {
	h := &detectorHarness{clk: clock.NewSim(), sent: make(map[msg.ProcID]int)}
	h.det = NewDetector(h.clk, 1, peers, interval, suspect, func(to msg.ProcID) {
		h.mu.Lock()
		h.sent[to]++
		h.mu.Unlock()
	})
	h.det.Subscribe(func(c Change) {
		h.mu.Lock()
		h.changes = append(h.changes, c)
		h.mu.Unlock()
	})
	return h
}

func (h *detectorHarness) sentTo(p msg.ProcID) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sent[p]
}

func (h *detectorHarness) changeLog() []Change {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Change(nil), h.changes...)
}

func TestDetectorHeartbeatsPeers(t *testing.T) {
	h := newDetectorHarness([]msg.ProcID{1, 2, 3}, 10*time.Millisecond, 50*time.Millisecond)
	h.det.Start()
	defer h.det.Stop()

	h.clk.Advance(35 * time.Millisecond)
	// Ticks at t=0 (Start), 10, 20, 30 → 4 heartbeats per peer.
	if got := h.sentTo(2); got != 4 {
		t.Fatalf("heartbeats to 2 = %d, want 4", got)
	}
	if got := h.sentTo(1); got != 0 {
		t.Fatalf("detector heartbeats itself: %d", got)
	}
}

func TestDetectorSuspectsSilentPeer(t *testing.T) {
	h := newDetectorHarness([]msg.ProcID{2, 3}, 10*time.Millisecond, 45*time.Millisecond)
	h.det.Start()
	defer h.det.Stop()

	// Peer 3 keeps talking; peer 2 stays silent.
	for i := 0; i < 10; i++ {
		h.clk.Advance(10 * time.Millisecond)
		h.det.Observe(3)
	}
	if !h.det.Down(2) {
		t.Fatal("silent peer 2 not suspected")
	}
	if h.det.Down(3) {
		t.Fatal("talking peer 3 suspected")
	}
	log := h.changeLog()
	if len(log) != 1 || log[0].Who != 2 || log[0].Kind != Failure {
		t.Fatalf("changes = %v, want one failure of 2", log)
	}
}

func TestDetectorRecoversOnHeartbeat(t *testing.T) {
	h := newDetectorHarness([]msg.ProcID{2}, 10*time.Millisecond, 25*time.Millisecond)
	h.det.Start()
	defer h.det.Stop()

	h.clk.Advance(100 * time.Millisecond)
	if !h.det.Down(2) {
		t.Fatal("peer 2 not suspected")
	}
	h.det.Observe(2)
	if h.det.Down(2) {
		t.Fatal("peer 2 still down after heartbeat")
	}
	log := h.changeLog()
	if len(log) != 2 || log[1].Kind != Recovery {
		t.Fatalf("changes = %v, want failure then recovery", log)
	}
}

func TestDetectorIgnoresUnknownPeers(t *testing.T) {
	h := newDetectorHarness([]msg.ProcID{2}, 10*time.Millisecond, 25*time.Millisecond)
	h.det.Start()
	defer h.det.Stop()
	h.det.Observe(99) // not monitored; must not panic or add state
	h.clk.Advance(100 * time.Millisecond)
	if h.det.Down(99) {
		t.Fatal("unmonitored peer reported down")
	}
}

func TestDetectorStopHaltsTicks(t *testing.T) {
	h := newDetectorHarness([]msg.ProcID{2}, 10*time.Millisecond, 25*time.Millisecond)
	h.det.Start()
	h.clk.Advance(15 * time.Millisecond)
	before := h.sentTo(2)
	h.det.Stop()
	h.det.Stop() // idempotent
	h.clk.Advance(100 * time.Millisecond)
	if got := h.sentTo(2); got != before {
		t.Fatalf("heartbeats after Stop: %d -> %d", before, got)
	}
}

// TestDetectorToleratesGraySlowPeer pins the property the adversarial
// gray-slow profile (D19) exploits: suspicion is driven by the gap between
// successive heartbeats, not their absolute latency. A peer whose every
// message arrives a constant lag late — even a lag close to the suspicion
// threshold — still shows ~interval spacing and is never declared down.
func TestDetectorToleratesGraySlowPeer(t *testing.T) {
	const (
		interval = 10 * time.Millisecond
		suspect  = 45 * time.Millisecond
		lag      = 40 * time.Millisecond // just under the threshold
	)
	h := newDetectorHarness([]msg.ProcID{2, 3}, interval, suspect)
	h.det.Start()
	defer h.det.Stop()

	// Both peers heartbeat every interval; peer 2's arrive `lag` late.
	// Observed arrival times: peer 3 at t, peer 2 at t+lag — so between
	// consecutive observations of 2 the gap is still exactly `interval`.
	for tick := 0; tick < 20; tick++ {
		h.clk.Advance(interval)
		h.det.Observe(3)
		h.det.Observe(2) // the delayed copy of an older heartbeat
	}
	if got := h.det.Suspected(); len(got) != 0 {
		t.Fatalf("gray-slow peer suspected: %v", got)
	}
	if log := h.changeLog(); len(log) != 0 {
		t.Fatalf("changes = %v, want none for a delayed but steady peer", log)
	}
	if _, ok := h.det.LastHeard(2); !ok {
		t.Fatal("peer 2 not monitored")
	}

	// Sanity check the contrast: once the gray peer's messages stop
	// entirely, the same detector does suspect it.
	for tick := 0; tick < 10; tick++ {
		h.clk.Advance(interval)
		h.det.Observe(3)
	}
	if got := h.det.Suspected(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Suspected() = %v, want [2]", got)
	}
}

// TestDetectorAddPeer pins the late-joiner contract: a peer added after
// Start is heartbeated from the next tick, gets a full SuspectAfter window
// before it can be suspected, and is suspected once it stays silent. The
// composite layer relies on this when nodes join an already-running group —
// the first node of a group would otherwise heartbeat to nobody and end up
// wrongly suspected by everyone that joined after it.
func TestDetectorAddPeer(t *testing.T) {
	h := newDetectorHarness([]msg.ProcID{2}, 10*time.Millisecond, 25*time.Millisecond)
	h.det.Start()
	defer h.det.Stop()

	h.clk.Advance(40 * time.Millisecond) // peer 3 does not exist yet
	if got := h.sentTo(3); got != 0 {
		t.Fatalf("heartbeats to unknown peer: %d", got)
	}
	h.det.AddPeer(3)
	h.det.AddPeer(3) // idempotent
	h.det.AddPeer(1) // self: no-op
	if _, ok := h.det.LastHeard(3); !ok {
		t.Fatal("added peer not monitored")
	}
	h.det.Observe(2)
	h.clk.Advance(20 * time.Millisecond) // inside 3's fresh suspicion window
	if got := h.sentTo(3); got == 0 {
		t.Fatal("added peer not heartbeated")
	}
	if got := h.sentTo(1); got != 0 {
		t.Fatalf("detector heartbeats itself after AddPeer: %d", got)
	}
	if h.det.Down(3) {
		t.Fatal("added peer suspected inside its fresh window")
	}
	h.clk.Advance(20 * time.Millisecond) // now past it, still silent
	if !h.det.Down(3) {
		t.Fatal("silent added peer not suspected")
	}
}
