// Package member provides the membership service assumed by the Acceptance
// and Total Order micro-protocols: it tracks which processes of a group are
// up and notifies subscribers of failures and recoveries, which the
// composite protocol turns into MEMBERSHIP_CHANGE events.
//
// Three implementations are provided, matching the paper's discussion:
//
//   - Static: no membership service at all. Members never change, so (per
//     §4.4.5) MEMBERSHIP_CHANGE is never triggered and a call terminates
//     only when enough responses arrive or bounded termination fires.
//   - Oracle: a perfect membership service driven by the test/experiment
//     orchestrator, which knows exactly when it crashes a site.
//   - Detector: a heartbeat failure detector running over the (unreliable)
//     network substrate, which can therefore be late or — under partitions —
//     wrong, exactly like a real asynchronous-system detector.
package member

import (
	"sort"
	"sync"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
)

// Kind distinguishes the two membership changes (Mem_Change in the paper).
type Kind uint8

// Membership change kinds.
const (
	Failure Kind = iota + 1
	Recovery
)

// String returns the paper's name for the change kind.
func (k Kind) String() string {
	switch k {
	case Failure:
		return "FAILURE"
	case Recovery:
		return "RECOVERY"
	default:
		return "UNKNOWN"
	}
}

// Change is one membership event.
type Change struct {
	Who  msg.ProcID
	Kind Kind
}

// Listener receives membership changes. Listeners are invoked synchronously
// on the goroutine that detected the change and must not block for long.
type Listener func(Change)

// Service is the membership interface consumed by the micro-protocols.
type Service interface {
	// Down reports whether p is currently considered failed.
	Down(p msg.ProcID) bool
	// Subscribe registers l for future changes; the returned function
	// unsubscribes it.
	Subscribe(l Listener) (unsubscribe func())
}

// hub implements listener bookkeeping shared by the implementations.
type hub struct {
	mu        sync.Mutex
	nextID    int
	listeners map[int]Listener
}

func (h *hub) subscribe(l Listener) func() {
	h.mu.Lock()
	if h.listeners == nil {
		h.listeners = make(map[int]Listener)
	}
	id := h.nextID
	h.nextID++
	h.listeners[id] = l
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		delete(h.listeners, id)
		h.mu.Unlock()
	}
}

func (h *hub) notify(c Change) {
	h.mu.Lock()
	ls := make([]Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		ls = append(ls, l)
	}
	h.mu.Unlock()
	for _, l := range ls {
		l(c)
	}
}

// Static is the absence of a membership service: nothing is ever reported
// down and no changes are ever delivered.
type Static struct{ hub }

var _ Service = (*Static)(nil)

// NewStatic returns the no-op membership service.
func NewStatic() *Static { return &Static{} }

// Down implements Service; it is always false.
func (*Static) Down(msg.ProcID) bool { return false }

// Subscribe implements Service; listeners are retained but never called.
func (s *Static) Subscribe(l Listener) func() { return s.subscribe(l) }

// Oracle is a perfect membership service driven explicitly by the
// orchestrator that injects the crashes.
type Oracle struct {
	hub

	mu   sync.Mutex
	down map[msg.ProcID]bool
}

var _ Service = (*Oracle)(nil)

// NewOracle returns an oracle with every process up.
func NewOracle() *Oracle {
	return &Oracle{down: make(map[msg.ProcID]bool)}
}

// Down implements Service.
func (o *Oracle) Down(p msg.ProcID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.down[p]
}

// Subscribe implements Service.
func (o *Oracle) Subscribe(l Listener) func() { return o.subscribe(l) }

// Fail reports p failed, notifying subscribers. Idempotent.
func (o *Oracle) Fail(p msg.ProcID) {
	o.mu.Lock()
	if o.down[p] {
		o.mu.Unlock()
		return
	}
	o.down[p] = true
	o.mu.Unlock()
	o.notify(Change{Who: p, Kind: Failure})
}

// Recover reports p recovered, notifying subscribers. Idempotent.
func (o *Oracle) Recover(p msg.ProcID) {
	o.mu.Lock()
	if !o.down[p] {
		o.mu.Unlock()
		return
	}
	delete(o.down, p)
	o.mu.Unlock()
	o.notify(Change{Who: p, Kind: Recovery})
}

// Detector is a heartbeat failure detector. Every Interval it invokes send
// for each monitored peer; a peer not heard from within SuspectAfter is
// declared failed, and declared recovered on the next heartbeat received.
type Detector struct {
	hub

	clk          clock.Clock
	self         msg.ProcID
	interval     time.Duration
	suspectAfter time.Duration
	send         func(to msg.ProcID)

	mu       sync.Mutex
	peers    map[msg.ProcID]time.Time // last heard
	down     map[msg.ProcID]bool
	running  bool
	stopped  chan struct{}
	stopOnce sync.Once
	timer    clock.Timer
}

var _ Service = (*Detector)(nil)

// NewDetector creates a detector for self monitoring peers. send transmits
// one heartbeat to a peer (typically an Endpoint.Push of an OpHeartbeat
// message); it must not block.
func NewDetector(clk clock.Clock, self msg.ProcID, peers []msg.ProcID,
	interval, suspectAfter time.Duration, send func(to msg.ProcID)) *Detector {
	d := &Detector{
		clk:          clk,
		self:         self,
		interval:     interval,
		suspectAfter: suspectAfter,
		send:         send,
		peers:        make(map[msg.ProcID]time.Time, len(peers)),
		down:         make(map[msg.ProcID]bool),
		stopped:      make(chan struct{}),
	}
	now := clk.Now()
	for _, p := range peers {
		if p != self {
			d.peers[p] = now
		}
	}
	return d
}

// Start begins heartbeating and monitoring. Stop must be called to release
// the timer.
func (d *Detector) Start() {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return
	}
	d.running = true
	d.mu.Unlock()
	d.tick()
}

// Stop halts the detector. Idempotent.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stopped) })
	d.mu.Lock()
	d.running = false
	if d.timer != nil {
		d.timer.Stop()
	}
	d.mu.Unlock()
}

// Observe records a heartbeat (or any message) received from p. The
// composite protocol calls it for OpHeartbeat messages; calling it for all
// traffic makes the detector strictly more accurate.
func (d *Detector) Observe(p msg.ProcID) {
	d.mu.Lock()
	if _, monitored := d.peers[p]; !monitored {
		d.mu.Unlock()
		return
	}
	d.peers[p] = d.clk.Now()
	wasDown := d.down[p]
	if wasDown {
		delete(d.down, p)
	}
	d.mu.Unlock()
	if wasDown {
		d.notify(Change{Who: p, Kind: Recovery})
	}
}

// AddPeer begins monitoring (and heartbeating) p. The peer counts as
// freshly heard, so it gets a full SuspectAfter window before it can be
// suspected. Adding self or an already-monitored peer is a no-op. The
// composite layer uses this to tell running detectors about late joiners:
// without it the first node of a group would heartbeat to nobody and the
// rest of the group would eventually — wrongly — suspect it.
func (d *Detector) AddPeer(p msg.ProcID) {
	if p == d.self {
		return
	}
	d.mu.Lock()
	if _, monitored := d.peers[p]; !monitored {
		d.peers[p] = d.clk.Now()
	}
	d.mu.Unlock()
}

// Down implements Service.
func (d *Detector) Down(p msg.ProcID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down[p]
}

// Suspected returns the peers currently considered failed, sorted by id.
// Tests and operators use it to audit the detector's beliefs against
// ground truth — in particular that a gray-slow member (delayed, but
// heartbeating steadily) is never on this list.
func (d *Detector) Suspected() []msg.ProcID {
	d.mu.Lock()
	out := make([]msg.ProcID, 0, len(d.down))
	for p := range d.down {
		out = append(out, p)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastHeard returns when the detector last heard from p, and whether p is
// monitored at all. The gap between successive heartbeats — not their
// absolute latency — is what drives suspicion: a member whose every
// message is delayed by a constant gray-slow lag still shows ~Interval
// spacing and is never declared down.
func (d *Detector) LastHeard(p msg.ProcID) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.peers[p]
	return t, ok
}

// Subscribe implements Service.
func (d *Detector) Subscribe(l Listener) func() { return d.subscribe(l) }

func (d *Detector) tick() {
	select {
	case <-d.stopped:
		return
	default:
	}

	d.mu.Lock()
	if !d.running {
		d.mu.Unlock()
		return
	}
	now := d.clk.Now()
	var newlyDown []msg.ProcID
	targets := make([]msg.ProcID, 0, len(d.peers))
	for p, last := range d.peers {
		targets = append(targets, p)
		if !d.down[p] && now.Sub(last) > d.suspectAfter {
			d.down[p] = true
			newlyDown = append(newlyDown, p)
		}
	}
	d.timer = d.clk.AfterFunc(d.interval, d.tick)
	d.mu.Unlock()

	for _, p := range targets {
		d.send(p)
	}
	for _, p := range newlyDown {
		d.notify(Change{Who: p, Kind: Failure})
	}
}
