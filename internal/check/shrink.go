package check

// Shrink minimizes a violating scenario: it repeatedly tries dropping
// schedule steps (crash/recover pairs as a unit when dropping one alone is
// invalid), halving call batches, halving flap cycle trains, and clearing
// the adversarial network profile fields, keeping any reduction that still
// violates, until no single reduction helps or the run budget is spent.
// It returns the smallest violating scenario found and its result; if the
// input does not violate (or fails to run), it is returned unchanged.
func Shrink(sc Scenario, budget int) (Scenario, *Result) {
	res, err := Run(sc)
	if err != nil || len(res.Violations) == 0 {
		return sc, res
	}
	best, bestRes := sc, res

	try := func(cand Scenario) bool {
		if cand.Validate() != nil {
			return false
		}
		r, err := Run(cand)
		if err != nil || len(r.Violations) == 0 {
			return false
		}
		best, bestRes = cand, r
		return true
	}

	improved := true
	for improved && budget > 0 {
		improved = false

		// Drop one step (or a crash/recover pair) at a time.
		for i := 0; i < len(best.Steps) && budget > 0; i++ {
			budget--
			if try(withoutSteps(best, i)) {
				improved = true
				break
			}
			if best.Steps[i].Kind == StepCrash {
				if j := matchingRecover(best.Steps, i); j >= 0 && budget > 0 {
					budget--
					if try(withoutSteps(best, i, j)) {
						improved = true
						break
					}
				}
			}
		}
		if improved {
			continue
		}

		// Halve a call batch or a flap cycle train.
		for i := 0; i < len(best.Steps) && budget > 0; i++ {
			st := best.Steps[i]
			var cand Scenario
			switch {
			case st.Kind == StepCalls && st.N > 1:
				cand = best
				cand.Steps = append([]Step(nil), best.Steps...)
				cand.Steps[i].N = st.N / 2
			case st.Kind == StepFlap && st.Cycles > 1:
				cand = best
				cand.Steps = append([]Step(nil), best.Steps...)
				cand.Steps[i].Cycles = st.Cycles / 2
			default:
				continue
			}
			budget--
			if try(cand) {
				improved = true
				break
			}
		}
		if improved {
			continue
		}

		// Strip one adversarial profile dimension: if the violation does not
		// need reordering, a WAN topology, or the failure detector, drop it.
		for _, reduce := range []func(*Scenario) bool{
			func(s *Scenario) bool {
				if s.ReorderPct == 0 {
					return false
				}
				s.ReorderPct, s.ReorderWindow, s.ReorderSpreadUS = 0, 0, 0
				return true
			},
			func(s *Scenario) bool {
				if len(s.Wan) == 0 {
					return false
				}
				s.Wan = nil
				return true
			},
			func(s *Scenario) bool {
				if s.Detector == nil {
					return false
				}
				s.Detector = nil
				return true
			},
		} {
			if budget <= 0 {
				break
			}
			cand := best
			cand.Steps = append([]Step(nil), best.Steps...)
			if !reduce(&cand) {
				continue
			}
			budget--
			if try(cand) {
				improved = true
				break
			}
		}
	}
	return best, bestRes
}

// withoutSteps copies sc with the given step indices removed.
func withoutSteps(sc Scenario, drop ...int) Scenario {
	skip := make(map[int]bool, len(drop))
	for _, i := range drop {
		skip[i] = true
	}
	out := sc
	out.Steps = make([]Step, 0, len(sc.Steps))
	for i, st := range sc.Steps {
		if !skip[i] {
			out.Steps = append(out.Steps, st)
		}
	}
	return out
}

// matchingRecover finds the first recover step after i for the same node.
func matchingRecover(steps []Step, i int) int {
	for j := i + 1; j < len(steps); j++ {
		if steps[j].Kind == StepRecover && steps[j].Node == steps[i].Node {
			return j
		}
	}
	return -1
}
