package check

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mrpc/internal/msg"
	"mrpc/internal/proc"
)

// OpWork is the single operation the conformance workload issues: it echoes
// its arguments and folds them into the app's running state.
const OpWork = msg.OpID(1)

// checkApp is the workload application. Every executed call mutates state
// (a count and a byte sum) so atomic execution has something real to
// checkpoint and restore; the reply echoes the arguments so collation sees
// distinct payloads.
type checkApp struct {
	mu    sync.Mutex
	count int64
	sum   int64
}

func newCheckApp() *checkApp { return &checkApp{} }

// Pop executes one call.
func (a *checkApp) Pop(th *proc.Thread, op msg.OpID, args []byte) []byte {
	a.mu.Lock()
	a.count++
	for _, b := range args {
		a.sum += int64(b)
	}
	a.mu.Unlock()
	return args
}

// Snapshot implements core.Checkpointable.
func (a *checkApp) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[0:8], uint64(a.count))
	binary.BigEndian.PutUint64(buf[8:16], uint64(a.sum))
	return buf
}

// Restore implements core.Checkpointable.
func (a *checkApp) Restore(data []byte) error {
	if len(data) != 16 {
		return fmt.Errorf("check: bad checkpoint length %d", len(data))
	}
	a.mu.Lock()
	a.count = int64(binary.BigEndian.Uint64(data[0:8]))
	a.sum = int64(binary.BigEndian.Uint64(data[8:16]))
	a.mu.Unlock()
	return nil
}
