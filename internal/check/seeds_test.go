package check

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSeeds replays the pinned edge-case corpus in testdata/seeds.json.
// Each entry is a scenario that once stressed a bug-prone interaction and is
// now held as a regression: it must run to completion, satisfy every
// applicable oracle, and reproduce its digest on a rerun.
//
// The corpus:
//
//   - total-leader-crash-election: the total-order leader (the highest live
//     id) crashes mid-run, forcing the §4.4.6 ORDER_QUERY/ORDER_INFO
//     takeover agreement, while the client is partitioned from the new
//     leader — its calls reach the sequencer only via follower nudging. The
//     old leader then recovers quiescently at the end of the run: with no
//     traffic after rejoin the group must still settle (a recovered member
//     under total order is crash-stop for sequencing purposes, see D15, so
//     the corpus does not demand liveness for post-recovery calls).
//
//   - drain-reconfig-crash: a no-wait call batch races a drain-class
//     reconfiguration (attaching FIFO order spans call lifetimes, so
//     admission must quiesce first), and a member then crashes and recovers
//     across the configuration boundary.
//
//   - gray-slow-member: a heartbeat failure detector watches the group
//     while member 2 turns gray-slow (every message delayed 12ms, a fifth
//     of the 60ms suspicion threshold) under accept-all acceptance — every
//     call stalls on the slow lane, yet the detector must leave no stuck
//     suspicion and every call completes OK (D19).
//
//   - flap-during-reconfigure: a scripted split/heal cycle train on the
//     client's link to member 1 races a no-wait batch AND a drain-class
//     none→FIFO reconfiguration — admission's quiesce and the reliable
//     layer's retransmissions both thread the flapping window (D19).
func TestGoldenSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("golden seeds skipped in -short mode")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "seeds.json"))
	if err != nil {
		t.Fatal(err)
	}
	var seeds []Scenario
	if err := json.Unmarshal(data, &seeds); err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty seed corpus")
	}
	for _, sc := range seeds {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			first, err := Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, v := range first.Violations {
				t.Errorf("violation: %s", v)
			}
			second, err := Run(sc)
			if err != nil {
				t.Fatalf("rerun: %v", err)
			}
			if first.Digest != second.Digest {
				t.Fatalf("digest did not reproduce: %s vs %s", first.Digest, second.Digest)
			}
		})
	}
}
