package check

import (
	"fmt"
	"time"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/core"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/trace"
)

// Result is one conformance run's outcome: the structured trace, the
// violations found by the applicable oracles (empty when the run
// conforms), and the timing-independent digest a -repro run must
// reproduce.
type Result struct {
	Scenario   Scenario
	Profile    Profile
	Events     []trace.Event
	Violations []Violation
	Digest     string
}

const (
	// runRetransTimeout replaces the 20ms retransmission default so lossy
	// runs converge quickly.
	runRetransTimeout = 5 * time.Millisecond
	// defaultTimeBound is the per-call deadline when a scenario enables
	// bounded termination without choosing one: generous enough that only
	// a deliberate blackhole produces timeouts.
	defaultTimeBound = 5 * time.Second
	// runDeadline bounds the whole run — call batches, worker joins, and
	// the settle loop. A run that cannot settle is reported as an error,
	// not a violation.
	runDeadline = 30 * time.Second
)

// normalizeRun applies the driver's speed defaults to a scenario
// configuration.
func normalizeRun(c mrpc.Config) mrpc.Config {
	c.RetransTimeout = runRetransTimeout
	if c.Bounded && c.TimeBound <= 0 {
		c.TimeBound = defaultTimeBound
	}
	return c
}

// TransportFactory builds the substrate a conformance run attaches its
// nodes to, using the run's clock. nil selects the simulator configured
// from the scenario's fault parameters.
type TransportFactory func(clk clock.Clock) mrpc.Transport

// Run executes one scenario over the simulator and replays its trace
// through every applicable oracle. The fault schedule is step-indexed
// (each step completes before the next begins) and every random source is
// seeded from the scenario, so a rerun reproduces the same digest.
func Run(sc Scenario) (*Result, error) { return RunOver(sc, nil) }

// RunOver executes one scenario over the substrate newTransport builds —
// the cross-transport conformance entry point: a fault-free scenario's
// digest is timing-independent (sorted terminal statuses, exec sets), so
// it must agree between the simulator and a real transport. Scenarios
// using simulator-only machinery (loss, duplication, delay, partitions)
// are rejected when newTransport is non-nil; crash/recover steps are fine
// (endpoint up/down is part of the seam).
func RunOver(sc Scenario, newTransport TransportFactory) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if newTransport != nil {
		if sc.LossPct > 0 || sc.DupPct > 0 || sc.MaxDelayUS > 0 ||
			sc.ReorderPct > 0 || len(sc.Wan) > 0 || sc.Detector != nil {
			return nil, fmt.Errorf("check: scenario %s needs simulated faults; run it on the simulator", sc.Name)
		}
		for _, st := range sc.Steps {
			switch st.Kind {
			case StepPartition, StepHeal:
				return nil, fmt.Errorf("check: scenario %s partitions links; run it on the simulator", sc.Name)
			case StepGray, StepFlap:
				return nil, fmt.Errorf("check: scenario %s uses adversarial profiles; run it on the simulator", sc.Name)
			}
		}
	}
	timeline, err := sc.ConfigTimeline()
	if err != nil {
		return nil, err
	}
	cfg := normalizeRun(timeline[0])

	membership := mrpc.MembershipNone
	for _, st := range sc.Steps {
		if st.Kind == StepCrash {
			membership = mrpc.MembershipOracle
		}
	}

	log := trace.NewLog()
	opts := mrpc.SystemOptions{
		Net: mrpc.NetParams{
			Seed:     sc.Seed,
			LossProb: float64(sc.LossPct) / 100,
			DupProb:  float64(sc.DupPct) / 100,
			MaxDelay: time.Duration(sc.MaxDelayUS) * time.Microsecond,
		},
		Membership: membership,
		Trace:      log,
	}
	if sc.ReorderPct > 0 {
		window, spread := sc.ReorderWindow, sc.ReorderSpreadUS
		if window <= 0 {
			window = 4
		}
		if spread <= 0 {
			spread = 500
		}
		opts.Net.Reorder = mrpc.ReorderParams{
			Prob:   float64(sc.ReorderPct) / 100,
			Window: window,
			Spread: time.Duration(spread) * time.Microsecond,
		}
	}
	if sc.Detector != nil {
		// A detector spec overrides the crash oracle: the run's membership
		// view is the heartbeat detector's belief, crashes and all.
		opts.Membership = mrpc.MembershipDetector
		opts.HeartbeatInterval = time.Duration(sc.Detector.HeartbeatUS) * time.Microsecond
		opts.SuspectAfter = time.Duration(sc.Detector.SuspectUS) * time.Microsecond
	}
	if newTransport != nil {
		opts.Clock = clock.NewReal()
		opts.Transport = newTransport(opts.Clock)
	}
	sys := mrpc.NewSystem(opts)
	defer sys.Stop()
	clk := sys.Clock()

	for _, w := range sc.Wan {
		sys.Sim().SetLinkProfile(w.From, w.To, mrpc.LinkProfile{
			MinDelay:    time.Duration(w.MinUS) * time.Microsecond,
			MaxDelay:    time.Duration(w.MaxUS) * time.Microsecond,
			SpikeProb:   float64(w.SpikePct) / 100,
			SpikeDelay:  time.Duration(w.SpikeUS) * time.Microsecond,
			BytesPerSec: int64(w.KBps) * 1000,
		})
	}

	members := make([]msg.ProcID, 0, sc.Servers)
	for i := 1; i <= sc.Servers; i++ {
		id := msg.ProcID(i)
		if _, err := sys.AddServer(id, cfg, func() mrpc.App { return newCheckApp() }); err != nil {
			return nil, err
		}
		members = append(members, id)
	}
	group := sys.Group(members...)

	clients := make(map[msg.ProcID]*mrpc.Node)
	for _, st := range sc.Steps {
		if st.Kind != StepCalls || clients[st.Client] != nil {
			continue
		}
		n, err := sys.AddClient(st.Client, cfg)
		if err != nil {
			return nil, err
		}
		clients[st.Client] = n
	}

	deadline := clk.Now().Add(runDeadline)
	var workers []*workerHandle
	var blocked [][2]msg.ProcID
	var flaps []<-chan struct{}

	for i, st := range sc.Steps {
		switch st.Kind {
		case StepCalls:
			w := startBatch(clients[st.Client], st.N, group)
			if st.Wait {
				if !w.join(clk, deadline) {
					return nil, fmt.Errorf("check: step %d: call batch did not complete", i)
				}
			} else {
				workers = append(workers, w)
			}
		case StepPartition:
			sys.Sim().Partition(st.A, st.B, true)
			blocked = append(blocked, [2]msg.ProcID{st.A, st.B})
		case StepHeal:
			for _, p := range blocked {
				sys.Sim().Partition(p[0], p[1], false)
			}
			blocked = nil
		case StepCrash:
			n, ok := sys.Node(st.Node)
			if !ok {
				return nil, fmt.Errorf("check: step %d: no node %d", i, st.Node)
			}
			n.Crash()
		case StepRecover:
			n, ok := sys.Node(st.Node)
			if !ok {
				return nil, fmt.Errorf("check: step %d: no node %d", i, st.Node)
			}
			if err := n.Recover(); err != nil {
				return nil, err
			}
		case StepReconfigure:
			next, err := st.To.Config()
			if err != nil {
				return nil, err
			}
			if err := sys.Reconfigure(normalizeRun(next)); err != nil {
				return nil, fmt.Errorf("check: step %d: %w", i, err)
			}
		case StepGray:
			d := time.Duration(st.DelayUS) * time.Microsecond
			sys.Sim().SetGraySlow(st.Node, d)
			k := trace.KGrayEnd
			if d > 0 {
				k = trace.KGrayStart
			}
			log.Record(trace.Event{Kind: k, Site: st.Node, Note: d.String()})
		case StepFlap:
			period := time.Duration(st.PeriodUS) * time.Microsecond
			log.Record(trace.Event{Kind: trace.KFlap, Site: st.A, From: st.B,
				Op: msg.OpID(st.Cycles), Note: period.String()})
			done := sys.Sim().StartFlap(st.A, st.B, period, st.Cycles)
			if st.Wait {
				if !waitChan(clk, done, deadline) {
					return nil, fmt.Errorf("check: step %d: flap did not complete", i)
				}
			} else {
				flaps = append(flaps, done)
			}
		}
	}

	for _, w := range workers {
		if !w.join(clk, deadline) {
			return nil, fmt.Errorf("check: no-wait call batch did not complete")
		}
	}
	for _, done := range flaps {
		if !waitChan(clk, done, deadline) {
			return nil, fmt.Errorf("check: flap cycle train did not complete")
		}
	}

	// Settle: wait until no server holds a call and no reliable-layer
	// (re)transmission is outstanding, so the trace contains every event a
	// lingering delivery could still produce.
	if err := settle(sys, sc.Servers, deadline); err != nil {
		return nil, err
	}

	if sc.Detector != nil {
		// Grace window: a transient suspicion raised near the end of the
		// run (a scheduler stall under CPU contention can open a heartbeat
		// gap) needs one more delayed heartbeat to clear. The no-false-
		// suspicion oracle only faults beliefs still stuck when the trace
		// is sealed, so sleep a full suspicion threshold plus the residual
		// gray lag — enough for a fresh heartbeat round even if the stall
		// that caused the suspicion bleeds into the grace window.
		grace := time.Duration(sc.Detector.SuspectUS+3*sc.Detector.HeartbeatUS) * time.Microsecond
		for _, st := range sc.Steps {
			if st.Kind == StepGray {
				grace += time.Duration(st.DelayUS) * time.Microsecond
			}
		}
		clk.Sleep(grace)
	}

	events := log.Events()
	t := NewTrace(events)
	p := Profile{
		Configs:    timeline,
		Group:      group,
		Lossy:      sc.Lossy(),
		Reordering: sc.Reordering(),
		Gray:       sc.GrayUnderThreshold(),
	}
	return &Result{
		Scenario:   sc,
		Profile:    p,
		Events:     events,
		Violations: Evaluate(p, t),
		Digest:     Digest(p, t),
	}, nil
}

// settle polls the group until server-side call tables and the reliable
// layer's transmission entries drain.
func settle(sys *mrpc.System, servers int, deadline time.Time) error {
	clk := sys.Clock()
	for {
		sys.Quiesce()
		pending := 0
		for i := 1; i <= servers; i++ {
			n, ok := sys.Node(msg.ProcID(i))
			if !ok || n.Down() {
				continue
			}
			pending += n.Composite().Framework().PendingServerCalls()
		}
		if rc, ok := outstandingOf(sys, servers); ok {
			pending += rc
		}
		if pending == 0 {
			return nil
		}
		if clk.Now().After(deadline) {
			detail := ""
			for i := 1; i <= servers; i++ {
				n, ok := sys.Node(msg.ProcID(i))
				if !ok || n.Down() {
					continue
				}
				if held := n.Composite().Framework().PendingServerCalls(); held > 0 {
					detail += fmt.Sprintf(" node%d:held=%d", i, held)
				}
			}
			if rc, ok := outstandingOf(sys, servers); ok && rc > 0 {
				detail += fmt.Sprintf(" retrans=%d", rc)
			}
			return fmt.Errorf("check: settle timed out with %d pending%s", pending, detail)
		}
		clk.Sleep(time.Millisecond)
	}
}

// outstandingOf sums ReliableCommunication.Outstanding over every up node.
func outstandingOf(sys *mrpc.System, servers int) (int, bool) {
	total := 0
	found := false
	for id := msg.ProcID(1); int(id) <= servers+1; id++ {
		probe := id
		if int(id) == servers+1 {
			probe = ClientID
		}
		n, ok := sys.Node(probe)
		if !ok || n.Down() {
			continue
		}
		if rc, ok := n.Composite().Protocol("Reliable Communication").(*core.ReliableCommunication); ok {
			total += rc.Outstanding()
			found = true
		}
	}
	return total, found
}

// workerHandle tracks one call batch running on its own thread.
type workerHandle struct {
	th *proc.Thread
}

// startBatch issues count sequential calls from n on a dedicated thread;
// statuses and errors are not inspected here — the structured trace is the
// record the oracles judge.
func startBatch(n *mrpc.Node, count int, group mrpc.Group) *workerHandle {
	th := proc.Go(func(*proc.Thread) {
		for j := 0; j < count; j++ {
			_, _, _ = n.Call(OpWork, []byte{byte(j + 1)}, group)
		}
	})
	return &workerHandle{th: th}
}

// join waits for the batch to finish, polling against the run deadline.
func (w *workerHandle) join(clk clock.Clock, deadline time.Time) bool {
	return waitChan(clk, w.th.Done(), deadline)
}

// waitChan polls a completion channel against the run deadline.
func waitChan(clk clock.Clock, done <-chan struct{}, deadline time.Time) bool {
	for {
		select {
		case <-done:
			return true
		default:
		}
		if clk.Now().After(deadline) {
			return false
		}
		clk.Sleep(time.Millisecond)
	}
}
