package check

import (
	"fmt"

	"mrpc/internal/config"
	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// Violation is one oracle finding: a property the trace fails to satisfy.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// Oracle is one executable property check. Applies decides from the run
// profile whether the property was promised by the configuration timeline
// (a trace can only violate what its configuration guarantees); Check scans
// the trace and returns every violation found.
type Oracle struct {
	// Name identifies the oracle in violations and seed artifacts.
	Name string
	// Property is the paper property (micro-protocol) the oracle checks.
	Property string
	// Applies reports whether the property is promised for this run.
	Applies func(p Profile, t *Trace) bool
	// Check scans the trace for violations of the property.
	Check func(p Profile, t *Trace) []Violation
}

// Oracles returns the full oracle set, one or more per micro-protocol of
// the paper's Figure 4 (plus the causal-order extension). The order is the
// evaluation order; it has no semantic weight.
func Oracles() []Oracle {
	return []Oracle{
		wellFormedOracle(),
		completionOracle(),
		statusValidityOracle(),
		boundedTerminationOracle(),
		sameSetOracle(),
		atMostOnceOracle(),
		serialExecOracle(),
		atomicDeliveryOracle(),
		fifoOrderOracle(),
		totalOrderOracle(),
		causalOrderOracle(),
		replyDedupOracle(),
		collationCountOracle(),
		orphanInterferenceOracle(),
		orphanTerminateOracle(),
		noFalseSuspicionOracle(),
	}
}

// Evaluate runs every applicable oracle over the trace and returns the
// combined violations (nil when the trace conforms).
func Evaluate(p Profile, t *Trace) []Violation {
	var out []Violation
	for _, o := range Oracles() {
		if o.Applies != nil && !o.Applies(p, t) {
			continue
		}
		out = append(out, o.Check(p, t)...)
	}
	return out
}

func violation(oracle, format string, args ...any) Violation {
	return Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

func always(Profile, *Trace) bool { return true }

// anyTimeout reports whether any call in the trace ended TIMEOUT. Oracles
// that reason about the executed-call sets use it: a timed-out call's
// retransmissions stop when the client collects it, so partial delivery to
// the group is legitimate.
func anyTimeout(t *Trace) bool {
	for _, ci := range t.calls {
		for _, d := range ci.dones {
			if d.Status == msg.StatusTimeout {
				return true
			}
		}
	}
	return false
}

// inGroup reports whether p is a member of g.
func inGroup(g msg.Group, p msg.ProcID) bool {
	for _, m := range g {
		if m == p {
			return true
		}
	}
	return false
}

// --- RPC Main: structural well-formedness ----------------------------------

// wellFormedOracle checks the structural sanity every configuration
// promises: completions and accepted replies belong to issued calls, a call
// reaches at most one terminal status, terminal statuses are legal, and
// exec begin/end events pair up per call at each site incarnation.
func wellFormedOracle() Oracle {
	const name = "well-formed"
	return Oracle{
		Name:     name,
		Property: "RPC Main",
		Applies:  always,
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, ci := range t.calls {
				if ci.issued == nil && (len(ci.dones) > 0 || len(ci.accepted) > 0) {
					out = append(out, violation(name,
						"call %v has completions or accepted replies but was never issued", ci.key))
					continue
				}
				if len(ci.dones) > 1 {
					out = append(out, violation(name,
						"call %v reached %d terminal statuses (want at most 1)", ci.key, len(ci.dones)))
				}
				for _, d := range ci.dones {
					switch d.Status {
					case msg.StatusOK, msg.StatusTimeout, msg.StatusAborted:
					default:
						out = append(out, violation(name,
							"call %v completed with non-terminal status %v", ci.key, d.Status))
					}
				}
			}
			// Exec begin/end pairing per (site, incarnation, call).
			for _, site := range t.Sites() {
				open := make(map[siteInc]map[msg.CallKey]int)
				for _, e := range t.SiteEvents(site) {
					si := siteInc{e.Site, e.SiteInc}
					if open[si] == nil {
						open[si] = make(map[msg.CallKey]int)
					}
					switch e.Kind {
					case trace.KExecBegin:
						open[si][e.Key()]++
					case trace.KExecEnd:
						if open[si][e.Key()] <= 0 {
							out = append(out, violation(name,
								"site %d inc %d: exec end without begin for call %v", site, e.SiteInc, e.Key()))
						} else {
							open[si][e.Key()]--
						}
					}
				}
			}
			return out
		},
	}
}

// --- Synchronous/Asynchronous Call: completion ------------------------------

// completionOracle checks that every issued call reaches a terminal status.
// Calls issued by a client incarnation that crashed are exempt (their
// completion died with the client), as are calls issued under an unreliable
// configuration in a lossy run (the network is allowed to eat them; Bounded
// Termination, when configured, is what turns those into TIMEOUT — see
// boundedTerminationOracle).
func completionOracle() Oracle {
	const name = "completion"
	return Oracle{
		Name:     name,
		Property: "Synchronous/Asynchronous Call",
		Applies:  always,
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, k := range t.Calls() {
				ci := t.calls[k]
				if t.ClientIncCrashed(k.Client, trace.CallInc(k.ID)) {
					continue
				}
				cfg := p.ConfigAt(t, ci.issued.Seq)
				if !cfg.Reliable && p.Lossy && !cfg.Bounded {
					continue
				}
				if len(ci.dones) == 0 {
					out = append(out, violation(name,
						"call %v (cfg %s) never reached a terminal status", k, cfg))
				}
			}
			return out
		},
	}
}

// statusValidityOracle checks that terminal statuses are justified: TIMEOUT
// only under Bounded Termination, ABORTED only for calls whose client
// incarnation crashed or calls an unreliable lossy network legitimately
// starved (released at shutdown).
func statusValidityOracle() Oracle {
	const name = "status-validity"
	return Oracle{
		Name:     name,
		Property: "Synchronous/Asynchronous Call",
		Applies:  always,
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, k := range t.Calls() {
				ci := t.calls[k]
				cfg := p.ConfigAt(t, ci.issued.Seq)
				for _, d := range ci.dones {
					switch d.Status {
					case msg.StatusTimeout:
						if !cfg.Bounded {
							out = append(out, violation(name,
								"call %v timed out but its configuration has no bounded termination", k))
						}
					case msg.StatusAborted:
						crashed := t.ClientIncCrashed(k.Client, trace.CallInc(k.ID))
						starved := !cfg.Reliable && p.Lossy
						if !crashed && !starved {
							out = append(out, violation(name,
								"call %v aborted without a client crash or lossy unreliable network", k))
						}
					}
				}
			}
			return out
		},
	}
}

// --- Bounded Termination ----------------------------------------------------

// boundedTerminationOracle checks the §4.4.3 guarantee: a call issued under
// Bounded Termination reaches a terminal status no matter what the network
// does. (The bound itself is wall-clock and not checked — the harness
// asserts termination, not latency.)
func boundedTerminationOracle() Oracle {
	const name = "bounded-termination"
	return Oracle{
		Name:     name,
		Property: "Bounded Termination",
		Applies: func(p Profile, t *Trace) bool {
			for _, c := range p.Configs {
				if c.Bounded {
					return true
				}
			}
			return false
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, k := range t.Calls() {
				ci := t.calls[k]
				if !p.ConfigAt(t, ci.issued.Seq).Bounded {
					continue
				}
				if t.ClientIncCrashed(k.Client, trace.CallInc(k.ID)) {
					continue
				}
				if len(ci.dones) == 0 {
					out = append(out, violation(name,
						"bounded call %v never terminated", k))
				}
			}
			return out
		},
	}
}

// --- Reliable Communication: same set at every member -----------------------

// sameSetOracle checks Figure 2's reliable-communication property: every
// functioning member of the group executes the same set of calls, and that
// set covers every call that completed OK. It applies only to crash-free,
// timeout-free reliable runs — a crash legitimately truncates a member's
// set, and a timed-out call's retransmissions stop mid-spread. It also
// excludes lossy runs of synchronous FIFO configurations: first-arrival
// lane initialization (D10) lets a member that first hears a client
// mid-sequence — because the network withheld the earlier call — judge
// that call already served and discard its retransmission, so the member's
// executed set legitimately misses it (DESIGN.md D15). A reordering
// network erodes the same configurations the same way — the member can
// simply hear call 2 before call 1 — so the gate covers both (D19).
func sameSetOracle() Oracle {
	const name = "same-set"
	return Oracle{
		Name:     name,
		Property: "Reliable Communication",
		Applies: func(p Profile, t *Trace) bool {
			if !p.All(func(c config.Config) bool { return c.Reliable }) ||
				t.HadCrash() || anyTimeout(t) {
				return false
			}
			if p.Lossy || p.Reordering {
				for _, c := range p.Configs {
					if c.Ordering == config.OrderFIFO && c.Call == config.CallSynchronous {
						return false
					}
				}
			}
			return true
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			sets := make(map[msg.ProcID]map[msg.CallKey]bool, len(p.Group))
			for _, site := range p.Group {
				set := make(map[msg.CallKey]bool)
				for _, k := range t.ExecutedKeys(site) {
					set[k] = true
				}
				sets[site] = set
			}
			ref := p.Group[0]
			for _, site := range p.Group[1:] {
				for k := range sets[ref] {
					if !sets[site][k] {
						out = append(out, violation(name,
							"call %v executed at member %d but not at member %d", k, ref, site))
					}
				}
				for k := range sets[site] {
					if !sets[ref][k] {
						out = append(out, violation(name,
							"call %v executed at member %d but not at member %d", k, site, ref))
					}
				}
			}
			for _, k := range t.Calls() {
				ci := t.calls[k]
				ok := false
				for _, d := range ci.dones {
					if d.Status == msg.StatusOK {
						ok = true
					}
				}
				if !ok {
					continue
				}
				for _, site := range p.Group {
					if !sets[site][k] {
						out = append(out, violation(name,
							"call %v completed OK but never executed at member %d", k, site))
					}
				}
			}
			return out
		},
	}
}

// --- Unique Execution: at most once per incarnation -------------------------

// atMostOnceOracle checks §4.4.5's unique-execution property: within one
// server incarnation, no call's procedure begins executing twice. (Across a
// server crash the old-calls table is volatile, so a re-execution in a new
// incarnation is the documented at-least-once residue — the incarnation
// scoping matches the implementation's guarantee.)
func atMostOnceOracle() Oracle {
	const name = "at-most-once"
	return Oracle{
		Name:     name,
		Property: "Unique Execution",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Unique })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, site := range t.Sites() {
				begun := make(map[siteInc]map[msg.CallKey]int)
				for _, e := range t.SiteEvents(site) {
					if e.Kind != trace.KExecBegin {
						continue
					}
					si := siteInc{e.Site, e.SiteInc}
					if begun[si] == nil {
						begun[si] = make(map[msg.CallKey]int)
					}
					begun[si][e.Key()]++
					if begun[si][e.Key()] == 2 {
						out = append(out, violation(name,
							"site %d inc %d executed call %v more than once", site, e.SiteInc, e.Key()))
					}
				}
			}
			return out
		},
	}
}

// --- Serial Execution: non-overlapping exec intervals -----------------------

// serialExecOracle checks §4.4.5's serial-execution property: within one
// server incarnation, execution intervals never overlap — a begin while
// another call's interval is open is a violation. The serial drain loop
// runs executions on a single goroutine, so the event sequence numbers
// order the intervals faithfully.
func serialExecOracle() Oracle {
	const name = "serial-exec"
	return Oracle{
		Name:     name,
		Property: "Serial Execution",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Execution != config.ExecConcurrent })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, site := range t.Sites() {
				open := make(map[siteInc]msg.CallKey)
				active := make(map[siteInc]bool)
				for _, e := range t.SiteEvents(site) {
					si := siteInc{e.Site, e.SiteInc}
					switch e.Kind {
					case trace.KExecBegin:
						if active[si] {
							out = append(out, violation(name,
								"site %d inc %d began call %v while call %v was still executing",
								site, e.SiteInc, e.Key(), open[si]))
						}
						active[si] = true
						open[si] = e.Key()
					case trace.KExecEnd:
						active[si] = false
					}
				}
			}
			return out
		},
	}
}

// --- Atomic Execution: a reply implies a completed execution ----------------

// atomicDeliveryOracle checks the delivery face of §4.4.5's atomic
// execution: a reply sent by a server incarnation implies a complete
// begin/end execution interval in that same incarnation before the reply —
// recovery never yields a reply backed by a half-executed (rolled-back)
// call. State-level atomicity (checkpoint restore) is covered by the
// existing atomic-execution crash tests; see DESIGN.md D15.
func atomicDeliveryOracle() Oracle {
	const name = "atomic-delivery"
	return Oracle{
		Name:     name,
		Property: "Atomic Execution",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Execution == config.ExecAtomic })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			type incKey struct {
				si  siteInc
				key msg.CallKey
			}
			for _, site := range t.Sites() {
				done := make(map[incKey]bool) // completed begin/end pairs
				opened := make(map[incKey]bool)
				for _, e := range t.SiteEvents(site) {
					ik := incKey{siteInc{e.Site, e.SiteInc}, e.Key()}
					switch e.Kind {
					case trace.KExecBegin:
						opened[ik] = true
					case trace.KExecEnd:
						if opened[ik] {
							done[ik] = true
						}
					case trace.KReplySent:
						if !done[ik] {
							out = append(out, violation(name,
								"site %d inc %d replied to call %v without a completed execution in that incarnation",
								site, e.SiteInc, e.Key()))
						}
					}
				}
			}
			return out
		},
	}
}

// --- FIFO Order -------------------------------------------------------------

// fifoOrderOracle checks §2.2's FIFO property: at each server incarnation,
// calls from one client incarnation begin executing in issue order (call
// ids from one incarnation are densely increasing). Causal order subsumes
// FIFO per sender, so the oracle applies to both.
func fifoOrderOracle() Oracle {
	const name = "fifo-order"
	return Oracle{
		Name:     name,
		Property: "FIFO Order",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool {
				return c.Ordering == config.OrderFIFO || c.Ordering == config.OrderCausal
			})
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			type lane struct {
				si     siteInc
				client msg.ProcID
				cinc   msg.Incarnation
			}
			for _, site := range t.Sites() {
				last := make(map[lane]msg.CallID)
				for _, e := range t.SiteEvents(site) {
					if e.Kind != trace.KExecBegin {
						continue
					}
					l := lane{siteInc{e.Site, e.SiteInc}, e.Client, trace.CallInc(e.ID)}
					if prev, ok := last[l]; ok && e.ID <= prev {
						out = append(out, violation(name,
							"site %d inc %d executed client %d call %d after call %d (FIFO inversion)",
							site, e.SiteInc, e.Client, e.ID, prev))
					}
					if e.ID > last[l] {
						last[l] = e.ID
					}
				}
			}
			return out
		},
	}
}

// --- Total Order ------------------------------------------------------------

// totalOrderOracle checks §2.2's total-order property: any two calls
// executed at two members begin executing in the same relative order at
// both. Each site's execution stream is deduplicated to first occurrences,
// then every pair of streams is checked for an order inversion on their
// common calls.
func totalOrderOracle() Oracle {
	const name = "total-order"
	return Oracle{
		Name:     name,
		Property: "Total Order",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Ordering == config.OrderTotal })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			sites := t.Sites()
			streams := make(map[msg.ProcID][]msg.CallKey, len(sites))
			for _, s := range sites {
				streams[s] = t.ExecutedKeys(s)
			}
			for i, a := range sites {
				for _, b := range sites[i+1:] {
					pos := make(map[msg.CallKey]int, len(streams[b]))
					for idx, k := range streams[b] {
						pos[k] = idx
					}
					lastIdx := -1
					var lastKey msg.CallKey
					for _, k := range streams[a] {
						idx, ok := pos[k]
						if !ok {
							continue
						}
						if idx < lastIdx {
							out = append(out, violation(name,
								"members %d and %d executed calls %v and %v in opposite orders",
								a, b, lastKey, k))
						}
						if idx > lastIdx {
							lastIdx = idx
							lastKey = k
						}
					}
				}
			}
			return out
		},
	}
}

// --- Causal Order -----------------------------------------------------------

// causalOrderOracle checks the causal-order extension: at each member, if
// call a's issue-time vector clock happens-before call b's, then b does not
// begin executing before a. Issue-time clocks come from the KCallIssued
// events; calls without a clock (issued before Causal Order attached) are
// skipped.
func causalOrderOracle() Oracle {
	const name = "causal-order"
	return Oracle{
		Name:     name,
		Property: "Causal Order",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Ordering == config.OrderCausal })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, site := range t.Sites() {
				keys := t.ExecutedKeys(site)
				for i, a := range keys {
					va := t.vcOf(a)
					if va == nil {
						continue
					}
					for _, b := range keys[:i] {
						vb := t.vcOf(b)
						if vb == nil {
							continue
						}
						// b executed before a: a must not happen-before b.
						if vcBefore(va, vb) {
							out = append(out, violation(name,
								"member %d executed call %v before causally earlier call %v", site, b, a))
						}
					}
				}
			}
			return out
		},
	}
}

// vcOf returns the issue-time vector clock of a call (nil if unknown).
func (t *Trace) vcOf(k msg.CallKey) msg.VClock {
	ci := t.calls[k]
	if ci == nil || ci.issued == nil {
		return nil
	}
	return ci.issued.VC
}

// vcBefore reports a happens-before b: a ≤ b entry-wise with at least one
// strict inequality.
func vcBefore(a, b msg.VClock) bool {
	strict := false
	for p, n := range a {
		bn := b.Get(p)
		if n > bn {
			return false
		}
		if n < bn {
			strict = true
		}
	}
	for p, n := range b {
		if a.Get(p) < n {
			strict = true
		}
	}
	return strict
}

// --- Acceptance: reply deduplication ----------------------------------------

// replyDedupOracle checks the acceptance bookkeeping of §4.4.5: a call
// folds in at most one reply per group member, and only from members of the
// called group.
func replyDedupOracle() Oracle {
	const name = "reply-dedup"
	return Oracle{
		Name:     name,
		Property: "Acceptance",
		Applies:  always,
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, k := range t.Calls() {
				ci := t.calls[k]
				seen := make(map[msg.ProcID]bool)
				for _, a := range ci.accepted {
					if seen[a.From] {
						out = append(out, violation(name,
							"call %v accepted two replies from member %d", k, a.From))
					}
					seen[a.From] = true
					if !inGroup(p.Group, a.From) {
						out = append(out, violation(name,
							"call %v accepted a reply from %d, not a member of the called group", k, a.From))
					}
				}
			}
			return out
		},
	}
}

// --- Collation: accepted-reply counts ---------------------------------------

// collationCountOracle checks that a call completing OK folded at least its
// acceptance threshold of replies (min(limit, group size)) and at most one
// per member. Replies racing past the threshold before the completion
// stage runs may legitimately push the count above the threshold, so only
// the lower bound is exact. Crash and timeout runs are exempt: a failure
// can satisfy acceptance without a reply, and timeouts complete with fewer.
func collationCountOracle() Oracle {
	const name = "collation-count"
	return Oracle{
		Name:     name,
		Property: "Acceptance/Collation",
		Applies: func(p Profile, t *Trace) bool {
			return !t.HadCrash() && !anyTimeout(t)
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, k := range t.Calls() {
				ci := t.calls[k]
				ok := false
				for _, d := range ci.dones {
					if d.Status == msg.StatusOK {
						ok = true
					}
				}
				if !ok {
					continue
				}
				limit := p.ConfigAt(t, ci.issued.Seq).AcceptanceLimit
				want := limit
				if want > len(p.Group) {
					want = len(p.Group)
				}
				if len(ci.accepted) < want {
					out = append(out, violation(name,
						"call %v completed OK with %d accepted replies (threshold %d)",
						k, len(ci.accepted), want))
				}
				if len(ci.accepted) > len(p.Group) {
					out = append(out, violation(name,
						"call %v accepted %d replies from a group of %d",
						k, len(ci.accepted), len(p.Group)))
				}
			}
			return out
		},
	}
}

// --- Interference Avoidance -------------------------------------------------

// orphanInterferenceOracle checks §4.4.4's interference-avoidance property:
// once a server incarnation has begun executing a call from client
// incarnation i, it never begins a call from an earlier incarnation of the
// same client — orphans of a crashed incarnation are excluded rather than
// interleaved with the recovered client's new calls.
func orphanInterferenceOracle() Oracle {
	const name = "orphan-interference"
	return Oracle{
		Name:     name,
		Property: "Interference Avoidance",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Orphan == config.OrphanAvoidInterference })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			type lane struct {
				si     siteInc
				client msg.ProcID
			}
			for _, site := range t.Sites() {
				top := make(map[lane]msg.Incarnation)
				for _, e := range t.SiteEvents(site) {
					if e.Kind != trace.KExecBegin {
						continue
					}
					l := lane{siteInc{e.Site, e.SiteInc}, e.Client}
					inc := trace.CallInc(e.ID)
					if prev, ok := top[l]; ok && inc < prev {
						out = append(out, violation(name,
							"site %d inc %d executed call %d from client %d incarnation %d after serving incarnation %d",
							site, e.SiteInc, e.ID, e.Client, inc, prev))
					}
					if inc > top[l] {
						top[l] = inc
					}
				}
			}
			return out
		},
	}
}

// --- Terminate Orphan -------------------------------------------------------

// orphanTerminateOracle checks §4.4.4's extermination property: once a site
// kills a call's computation as an orphan, that site never sends a reply
// for the call — the exterminated computation's effects do not escape.
func orphanTerminateOracle() Oracle {
	const name = "orphan-terminate"
	return Oracle{
		Name:     name,
		Property: "Terminate Orphan",
		Applies: func(p Profile, t *Trace) bool {
			return p.All(func(c config.Config) bool { return c.Orphan == config.OrphanTerminate })
		},
		Check: func(p Profile, t *Trace) []Violation {
			var out []Violation
			for _, site := range t.Sites() {
				killed := make(map[msg.CallKey]bool)
				for _, e := range t.SiteEvents(site) {
					switch e.Kind {
					case trace.KOrphanKilled:
						killed[e.Key()] = true
					case trace.KReplySent:
						if killed[e.Key()] {
							out = append(out, violation(name,
								"site %d sent a reply for call %v after killing it as an orphan", site, e.Key()))
						}
					}
				}
			}
			return out
		},
	}
}

// --- Gray failure: no false suspicion ----------------------------------------

// noFalseSuspicionOracle checks the D19 gray-failure property: a member
// that is merely gray-slow — every message delayed by less than the
// detector's suspicion threshold — must not end the run on any observer's
// suspect list. Heartbeat *gaps* stay at the send interval under a
// constant lag, so an accurate detector never suspects it; an
// asynchronous detector is allowed to be transiently wrong (a scheduler
// stall can open a gap), but a KSuspect with no later KSuspectClear from
// the same observer means the belief stuck: the gray member would be
// excluded from acceptance forever despite functioning. Crashy runs are
// exempt — there real failures race the gray window and suspicion of the
// gray member can be legitimate collateral of partitioned heartbeats.
func noFalseSuspicionOracle() Oracle {
	const name = "no-false-suspicion"
	return Oracle{
		Name:     name,
		Property: "Membership (gray failure)",
		Applies: func(p Profile, t *Trace) bool {
			return len(p.Gray) > 0 && !t.HadCrash()
		},
		Check: func(p Profile, t *Trace) []Violation {
			gray := make(map[msg.ProcID]bool, len(p.Gray))
			for _, g := range p.Gray {
				gray[g] = true
			}
			type belief struct{ observer, suspect msg.ProcID }
			stuck := make(map[belief]bool)
			var order []belief
			for _, e := range t.SuspectEvents() {
				if !gray[e.From] {
					continue
				}
				b := belief{e.Site, e.From}
				switch e.Kind {
				case trace.KSuspect:
					if !stuck[b] {
						stuck[b] = true
						order = append(order, b)
					}
				case trace.KSuspectClear:
					stuck[b] = false
				}
			}
			var out []Violation
			for _, b := range order {
				if stuck[b] {
					out = append(out, violation(name,
						"observer %d left gray-slow member %d stuck suspected (no clear before run end)",
						b.observer, b.suspect))
				}
			}
			return out
		},
	}
}
