// Package check is the conformance harness for the configurable group RPC
// service: it encodes each paper property as an executable oracle over
// structured trace events (internal/trace), drives seeded workloads under
// scripted fault schedules across the 198-configuration space, and shrinks
// any violation to a small reproducible seed artifact. See DESIGN.md
// deviation D15 for the property → oracle map.
package check

import (
	"sort"

	"mrpc/internal/config"
	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// callInfo aggregates the per-call events of one call key.
type callInfo struct {
	key      msg.CallKey
	issued   *trace.Event
	dones    []trace.Event // terminal-status events, Seq order
	accepted []trace.Event // KReplyAccepted, Seq order
}

// siteInc identifies one incarnation of one site.
type siteInc struct {
	site msg.ProcID
	inc  msg.Incarnation
}

// Trace is an indexed view over a structured event stream, in Seq order.
// Oracles consume it instead of the raw slice so the per-call and per-site
// groupings are computed once.
type Trace struct {
	Events []trace.Event

	reconfigs []int64                      // Seq of each KReconfigure marker
	calls     map[msg.CallKey]*callInfo    // per-call lifecycle
	callOrder []msg.CallKey                // issue order (Seq of KCallIssued)
	execs     map[msg.ProcID][]trace.Event // exec-side events per site, Seq order
	crashed   map[siteInc]bool             // site incarnations that crashed
	hadCrash  bool
	suspects  []trace.Event // KSuspect and KSuspectClear, Seq order
}

// NewTrace indexes events (which must be in Seq order, as produced by
// trace.Log.Events).
func NewTrace(events []trace.Event) *Trace {
	t := &Trace{
		Events:  events,
		calls:   make(map[msg.CallKey]*callInfo),
		execs:   make(map[msg.ProcID][]trace.Event),
		crashed: make(map[siteInc]bool),
	}
	call := func(k msg.CallKey) *callInfo {
		ci := t.calls[k]
		if ci == nil {
			ci = &callInfo{key: k}
			t.calls[k] = ci
		}
		return ci
	}
	for i, e := range events {
		switch e.Kind {
		case trace.KReconfigure:
			t.reconfigs = append(t.reconfigs, e.Seq)
		case trace.KCallIssued:
			ci := call(e.Key())
			if ci.issued == nil {
				ci.issued = &events[i]
				t.callOrder = append(t.callOrder, e.Key())
			}
		case trace.KCallDone:
			call(e.Key()).dones = append(call(e.Key()).dones, e)
		case trace.KReplyAccepted:
			call(e.Key()).accepted = append(call(e.Key()).accepted, e)
		case trace.KExecBegin, trace.KExecEnd, trace.KReplySent, trace.KOrphanKilled:
			t.execs[e.Site] = append(t.execs[e.Site], e)
		case trace.KCrash:
			t.crashed[siteInc{e.Site, e.SiteInc}] = true
			t.hadCrash = true
		case trace.KSuspect, trace.KSuspectClear:
			t.suspects = append(t.suspects, e)
		}
	}
	return t
}

// SegmentOf returns the configuration-segment index of a Seq position:
// segment i covers the events between the i-th and (i+1)-th KReconfigure
// markers (segment 0 precedes the first marker).
func (t *Trace) SegmentOf(seq int64) int {
	return sort.Search(len(t.reconfigs), func(i int) bool { return t.reconfigs[i] > seq })
}

// Segments returns the number of configuration segments (reconfigurations
// observed + 1).
func (t *Trace) Segments() int { return len(t.reconfigs) + 1 }

// HadCrash reports whether any node crashed during the run.
func (t *Trace) HadCrash() bool { return t.hadCrash }

// ClientIncCrashed reports whether the given incarnation of a client site
// crashed during the run (its in-flight calls may legitimately end ABORTED
// or not at all).
func (t *Trace) ClientIncCrashed(client msg.ProcID, inc msg.Incarnation) bool {
	return t.crashed[siteInc{client, inc}]
}

// Calls returns the call keys in issue order.
func (t *Trace) Calls() []msg.CallKey { return t.callOrder }

// Sites returns the sites with execution-side events, in ascending order.
func (t *Trace) Sites() []msg.ProcID {
	out := make([]msg.ProcID, 0, len(t.execs))
	for s := range t.execs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SiteEvents returns a site's execution-side events in Seq order.
func (t *Trace) SiteEvents(site msg.ProcID) []trace.Event { return t.execs[site] }

// SuspectEvents returns the failure-detector belief events (KSuspect and
// KSuspectClear) in Seq order. Empty for runs without a detector.
func (t *Trace) SuspectEvents() []trace.Event { return t.suspects }

// ExecutedKeys returns the first-occurrence-deduplicated sequence of call
// keys whose execution began at site, in Seq order.
func (t *Trace) ExecutedKeys(site msg.ProcID) []msg.CallKey {
	seen := make(map[msg.CallKey]bool)
	var out []msg.CallKey
	for _, e := range t.execs[site] {
		if e.Kind != trace.KExecBegin || seen[e.Key()] {
			continue
		}
		seen[e.Key()] = true
		out = append(out, e.Key())
	}
	return out
}

// Profile describes the run a trace came from: the configuration timeline
// (one entry per segment) and the fault envelope. Oracles use it to decide
// applicability — a property can only be demanded of a run whose
// configuration promises it.
type Profile struct {
	// Configs is the configuration timeline: Configs[i] was active during
	// trace segment i. A run without reconfiguration has one entry.
	Configs []config.Config
	// Group is the server group called by every workload call.
	Group msg.Group
	// Lossy reports whether the network could drop messages (loss
	// probability, partitions, or flaps): without reliable communication,
	// completion cannot be demanded of such a run.
	Lossy bool
	// Reordering reports whether the network could deliver out of send
	// order (reorder storms, random delay, WAN jitter/spikes/bandwidth).
	// It weakens the same sync-FIFO same-set guarantee loss does (D19).
	Reordering bool
	// Gray lists members the run made gray-slow by less than the failure
	// detector's suspicion threshold: the no-false-suspicion oracle
	// demands none of them is left stuck suspected. Empty without a
	// detector.
	Gray []msg.ProcID
}

// ConfigAt returns the configuration active when the given event was
// recorded.
func (p Profile) ConfigAt(t *Trace, seq int64) config.Config {
	i := t.SegmentOf(seq)
	if i >= len(p.Configs) {
		i = len(p.Configs) - 1
	}
	return p.Configs[i]
}

// All reports whether f holds for every segment's configuration.
func (p Profile) All(f func(config.Config) bool) bool {
	for _, c := range p.Configs {
		if !f(c) {
			return false
		}
	}
	return true
}
