package check

import (
	"testing"

	"mrpc"
	"mrpc/internal/clock"
	"mrpc/internal/nettcp"
)

func tcpFactory(clk clock.Clock) mrpc.Transport {
	return nettcp.New(clk, nettcp.Options{})
}

// TestCrossTransportDigest is the seam's conformance proof: a fault-free
// scenario run over real TCP loopback sockets must produce exactly the
// digest the deterministic simulator produces — same terminal statuses,
// same per-member exec sets. netsim stays the deterministic twin of the
// real transport (ROADMAP).
func TestCrossTransportDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket runs in -short mode")
	}
	ran := 0
	for _, sc := range Generate(7, 60) {
		if !sc.CrossTransportSafe() {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sim, err := Run(sc)
			if err != nil {
				t.Fatalf("sim run: %v", err)
			}
			if len(sim.Violations) > 0 {
				t.Fatalf("sim run violates: %v", sim.Violations)
			}
			tcp, err := RunOver(sc, tcpFactory)
			if err != nil {
				t.Fatalf("tcp run: %v", err)
			}
			if len(tcp.Violations) > 0 {
				t.Fatalf("tcp run violates: %v", tcp.Violations)
			}
			if sim.Digest != tcp.Digest {
				t.Fatalf("digest diverges across transports:\n  sim %s\n  tcp %s", sim.Digest, tcp.Digest)
			}
		})
		if ran++; ran >= 4 {
			break
		}
	}
	if ran == 0 {
		t.Fatal("generator produced no cross-transport-safe scenario")
	}
}

// TestRunOverRejectsSimOnlyScenarios pins the guard: partition steps and
// fault parameters are simulator machinery and must not silently no-op on
// a real transport.
func TestRunOverRejectsSimOnlyScenarios(t *testing.T) {
	lossy := Scenario{
		Name: "lossy", Seed: 1, Servers: 2, LossPct: 10,
		Config: SpecOf(mrpc.ExactlyOnce()),
		Steps:  []Step{{Kind: StepCalls, Client: ClientID, N: 1, Wait: true}},
	}
	if _, err := RunOver(lossy, tcpFactory); err == nil {
		t.Fatal("lossy scenario accepted on a real transport")
	}
	parted := Scenario{
		Name: "parted", Seed: 1, Servers: 2,
		Config: SpecOf(mrpc.ExactlyOnce()),
		Steps: []Step{
			{Kind: StepPartition, A: 1, B: 2},
			{Kind: StepCalls, Client: ClientID, N: 1, Wait: true},
		},
	}
	if _, err := RunOver(parted, tcpFactory); err == nil {
		t.Fatal("partition scenario accepted on a real transport")
	}
}
