package check

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// Digest summarizes a trace into a hash over its timing-independent
// projections, so a seeded -repro run can be checked for reproducibility
// without demanding bit-identical event interleavings:
//
//   - the completion set: (client, id, status) of every call, sorted,
//     excluding calls issued by a client incarnation that crashed (whether
//     such a call was admitted before the crash is a race);
//   - the per-member executed-call sets, but only for runs with no crash,
//     no timeout, and a network that never withholds or reorders messages —
//     otherwise which members a lingering retransmission still reached, or
//     which call first opened a sync-FIFO lane (D10), is timing.
func Digest(p Profile, t *Trace) string {
	var lines []string
	for _, k := range t.Calls() {
		if t.ClientIncCrashed(k.Client, trace.CallInc(k.ID)) {
			continue
		}
		status := "NONE"
		ci := t.calls[k]
		if len(ci.dones) > 0 {
			status = ci.dones[0].Status.String()
		}
		lines = append(lines, fmt.Sprintf("call %d/%d %s", k.Client, k.ID, status))
	}
	sort.Strings(lines)

	if !t.HadCrash() && !anyTimeout(t) && !p.Lossy && !p.Reordering {
		for _, site := range p.Group {
			keys := t.ExecutedKeys(site)
			sorted := make([]msg.CallKey, len(keys))
			copy(sorted, keys)
			sort.Slice(sorted, func(i, j int) bool {
				if sorted[i].Client != sorted[j].Client {
					return sorted[i].Client < sorted[j].Client
				}
				return sorted[i].ID < sorted[j].ID
			})
			line := fmt.Sprintf("exec %d", site)
			for _, k := range sorted {
				line += fmt.Sprintf(" %d/%d", k.Client, k.ID)
			}
			lines = append(lines, line)
		}
	}

	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
