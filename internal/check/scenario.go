package check

import (
	"fmt"
	"math/rand"
	"time"

	"mrpc/internal/config"
	"mrpc/internal/core"
	"mrpc/internal/msg"
)

// ConfigSpec is the JSON-serializable mirror of config.Config used in seed
// artifacts. Collation is excluded (a function does not serialize; every
// enumerated configuration uses the default last-reply-wins collation).
type ConfigSpec struct {
	Call        string `json:"call"` // "sync" | "async"
	Reliable    bool   `json:"reliable"`
	Bounded     bool   `json:"bounded"`
	TimeBoundMS int    `json:"time_bound_ms,omitempty"`
	Unique      bool   `json:"unique"`
	Exec        string `json:"exec"`   // "concurrent" | "serial" | "atomic"
	Order       string `json:"order"`  // "none" | "fifo" | "total" | "causal"
	Orphan      string `json:"orphan"` // "ignore" | "avoid-interference" | "terminate"
	Accept      int    `json:"accept"` // acceptance limit; -1 = all members
	Flush       int    `json:"flush,omitempty"`
	Diss        string `json:"diss,omitempty"`   // "" | "flat" | "tree" (D17)
	TreeK       int    `json:"tree_k,omitempty"` // tree fanout; 0 = default
}

// SpecOf converts a configuration into its serializable spec.
func SpecOf(c config.Config) ConfigSpec {
	s := ConfigSpec{
		Reliable:    c.Reliable,
		Bounded:     c.Bounded,
		TimeBoundMS: int(c.TimeBound / time.Millisecond),
		Unique:      c.Unique,
		Accept:      c.AcceptanceLimit,
		Flush:       c.FlushSize,
	}
	if c.AcceptanceLimit >= core.AcceptAll {
		s.Accept = -1
	}
	switch c.Call {
	case config.CallAsynchronous:
		s.Call = "async"
	default:
		s.Call = "sync"
	}
	switch c.Execution {
	case config.ExecSerial:
		s.Exec = "serial"
	case config.ExecAtomic:
		s.Exec = "atomic"
	default:
		s.Exec = "concurrent"
	}
	switch c.Ordering {
	case config.OrderFIFO:
		s.Order = "fifo"
	case config.OrderTotal:
		s.Order = "total"
	case config.OrderCausal:
		s.Order = "causal"
	default:
		s.Order = "none"
	}
	switch c.Orphan {
	case config.OrphanAvoidInterference:
		s.Orphan = "avoid-interference"
	case config.OrphanTerminate:
		s.Orphan = "terminate"
	default:
		s.Orphan = "ignore"
	}
	if c.Dissemination == config.DissTree {
		s.Diss = "tree"
		s.TreeK = c.TreeFanout
	}
	return s
}

// Config converts the spec back into a validated configuration.
func (s ConfigSpec) Config() (config.Config, error) {
	c := config.Config{
		Reliable:  s.Reliable,
		Bounded:   s.Bounded,
		TimeBound: time.Duration(s.TimeBoundMS) * time.Millisecond,
		Unique:    s.Unique,
		FlushSize: s.Flush,
	}
	switch s.Call {
	case "sync", "":
		c.Call = config.CallSynchronous
	case "async":
		c.Call = config.CallAsynchronous
	default:
		return c, fmt.Errorf("check: unknown call mode %q", s.Call)
	}
	switch s.Exec {
	case "concurrent", "":
		c.Execution = config.ExecConcurrent
	case "serial":
		c.Execution = config.ExecSerial
	case "atomic":
		c.Execution = config.ExecAtomic
	default:
		return c, fmt.Errorf("check: unknown exec mode %q", s.Exec)
	}
	switch s.Order {
	case "none", "":
		c.Ordering = config.OrderNone
	case "fifo":
		c.Ordering = config.OrderFIFO
	case "total":
		c.Ordering = config.OrderTotal
	case "causal":
		c.Ordering = config.OrderCausal
	default:
		return c, fmt.Errorf("check: unknown order mode %q", s.Order)
	}
	switch s.Orphan {
	case "ignore", "":
		c.Orphan = config.OrphanIgnore
	case "avoid-interference":
		c.Orphan = config.OrphanAvoidInterference
	case "terminate":
		c.Orphan = config.OrphanTerminate
	default:
		return c, fmt.Errorf("check: unknown orphan mode %q", s.Orphan)
	}
	switch {
	case s.Accept < 0:
		c.AcceptanceLimit = core.AcceptAll
	case s.Accept == 0:
		c.AcceptanceLimit = 1
	default:
		c.AcceptanceLimit = s.Accept
	}
	switch s.Diss {
	case "", "flat":
		c.Dissemination = config.DissFlat
	case "tree":
		c.Dissemination = config.DissTree
		c.TreeFanout = s.TreeK
	default:
		return c, fmt.Errorf("check: unknown dissemination mode %q", s.Diss)
	}
	return c, c.Validate()
}

// Step kinds. A scenario's fault schedule is step-indexed rather than
// time-indexed: each step completes before the next begins, which is what
// makes a seeded run reproduce the same trace digest.
const (
	StepCalls       = "calls"       // issue N calls from Client (Wait: sequentially, to completion)
	StepPartition   = "partition"   // block the A<->B link
	StepHeal        = "heal"        // unblock every partitioned link
	StepCrash       = "crash"       // crash Node
	StepRecover     = "recover"     // recover Node
	StepReconfigure = "reconfigure" // system-wide reconfiguration to To
	StepGray        = "gray"        // make Node gray-slow by DelayUS (0 clears) — D19
	StepFlap        = "flap"        // flap the A<->B link: Cycles split/heal cycles of PeriodUS
)

// Step is one entry of a scenario's schedule.
type Step struct {
	Kind   string      `json:"kind"`
	Client msg.ProcID  `json:"client,omitempty"`
	N      int         `json:"n,omitempty"`
	Wait   bool        `json:"wait,omitempty"`
	A      msg.ProcID  `json:"a,omitempty"`
	B      msg.ProcID  `json:"b,omitempty"`
	Node   msg.ProcID  `json:"node,omitempty"`
	To     *ConfigSpec `json:"to,omitempty"`
	// DelayUS is the gray-slow delay (StepGray; 0 clears the state).
	DelayUS int `json:"delay_us,omitempty"`
	// PeriodUS and Cycles script a partition flap (StepFlap). A flap step
	// with Wait runs to completion before the next step; without Wait it
	// races the following steps and is joined before the run settles.
	PeriodUS int `json:"period_us,omitempty"`
	Cycles   int `json:"cycles,omitempty"`
}

// WanLink is one directed adversarial link profile (D19): asymmetric
// latency bounds, optional heavy-tail spikes, optional bandwidth cap.
type WanLink struct {
	From     msg.ProcID `json:"from"`
	To       msg.ProcID `json:"to"`
	MinUS    int        `json:"min_us,omitempty"`
	MaxUS    int        `json:"max_us,omitempty"`
	SpikePct int        `json:"spike_pct,omitempty"`
	SpikeUS  int        `json:"spike_us,omitempty"`
	KBps     int        `json:"kbps,omitempty"` // kilobytes per second
}

// DetectorSpec enables heartbeat failure detection (MembershipDetector)
// for the run, replacing the crash oracle. Gray-slow scenarios use it: a
// member delayed by less than SuspectUS must never be reported down.
type DetectorSpec struct {
	HeartbeatUS int `json:"heartbeat_us"`
	SuspectUS   int `json:"suspect_us"`
}

// Scenario is one reproducible conformance run: a configuration, a network
// fault model, and a step schedule. It is the seed artifact the harness
// writes on a violation and replays with `mrpccheck -repro`.
type Scenario struct {
	Name       string     `json:"name"`
	Seed       int64      `json:"seed"`
	Servers    int        `json:"servers"`
	Config     ConfigSpec `json:"config"`
	LossPct    int        `json:"loss_pct,omitempty"`
	DupPct     int        `json:"dup_pct,omitempty"`
	MaxDelayUS int        `json:"max_delay_us,omitempty"`
	// Adversarial network profiles (D19). ReorderPct arms bounded reorder
	// storms: each storm scrambles up to ReorderWindow consecutive messages
	// per link within ReorderSpreadUS. Wan installs per-directed-link
	// latency/bandwidth profiles. Detector switches membership from the
	// crash oracle to the heartbeat failure detector.
	ReorderPct      int           `json:"reorder_pct,omitempty"`
	ReorderWindow   int           `json:"reorder_window,omitempty"`
	ReorderSpreadUS int           `json:"reorder_spread_us,omitempty"`
	Wan             []WanLink     `json:"wan,omitempty"`
	Detector        *DetectorSpec `json:"detector,omitempty"`
	Steps           []Step        `json:"steps"`
}

// ClientID is the process id every generated scenario uses for its client.
const ClientID = msg.ProcID(100)

// Lossy reports whether the scenario's network can withhold messages (loss
// probability or partition steps) — the Profile.Lossy input.
func (sc Scenario) Lossy() bool {
	if sc.LossPct > 0 {
		return true
	}
	for _, st := range sc.Steps {
		if st.Kind == StepPartition || st.Kind == StepFlap {
			return true
		}
	}
	return false
}

// Reordering reports whether the scenario's network can deliver messages
// out of send order on a link: reorder storms, plain random delay, or any
// WAN profile with jitter, spikes, or a bandwidth cap (different-size
// messages then take different serialization delays and can overtake).
// Oracles scoped to in-order substrates (the sync-FIFO same-set erosion,
// D15/D19) gate on it the same way they gate on Lossy.
func (sc Scenario) Reordering() bool {
	if sc.ReorderPct > 0 || sc.MaxDelayUS > 0 {
		return true
	}
	for _, w := range sc.Wan {
		if w.MaxUS > w.MinUS || w.SpikePct > 0 || w.KBps > 0 {
			return true
		}
	}
	return false
}

// GrayUnderThreshold returns the nodes some gray step delays by less than
// the detector's suspicion threshold — the members the no-false-suspicion
// oracle insists are never *stuck* suspected. Empty without a Detector.
func (sc Scenario) GrayUnderThreshold() []msg.ProcID {
	if sc.Detector == nil {
		return nil
	}
	seen := make(map[msg.ProcID]bool)
	var out []msg.ProcID
	for _, st := range sc.Steps {
		if st.Kind == StepGray && st.DelayUS > 0 && st.DelayUS < sc.Detector.SuspectUS && !seen[st.Node] {
			seen[st.Node] = true
			out = append(out, st.Node)
		}
	}
	return out
}

// CrossTransportSafe reports whether the scenario's digest is comparable
// across substrates: no simulated faults (loss, duplication, delay) and no
// timing-sensitive steps — only call batches and reconfigurations. A
// fault-free run completes every call OK and executes every call at every
// member, so its digest is fully timing-independent and the simulator and
// a real transport must produce the same one (mrpccheck -transport tcp).
func (sc Scenario) CrossTransportSafe() bool {
	if sc.LossPct > 0 || sc.DupPct > 0 || sc.MaxDelayUS > 0 {
		return false
	}
	if sc.ReorderPct > 0 || len(sc.Wan) > 0 || sc.Detector != nil {
		// Adversarial profiles are simulator features; the detector's
		// suspicion timing is also substrate-dependent (D19).
		return false
	}
	for _, st := range sc.Steps {
		if st.Kind != StepCalls && st.Kind != StepReconfigure {
			return false
		}
	}
	return true
}

// Validate checks the scenario's structural sanity: known step kinds,
// crash/recover pairing, call counts, and a convertible configuration. The
// shrinker relies on it to discard broken reductions before running them.
func (sc Scenario) Validate() error {
	if sc.Servers < 1 {
		return fmt.Errorf("check: scenario needs at least one server")
	}
	if _, err := sc.Config.Config(); err != nil {
		return err
	}
	if sc.ReorderPct < 0 || sc.ReorderWindow < 0 || sc.ReorderSpreadUS < 0 {
		return fmt.Errorf("check: negative reorder parameters")
	}
	for i, w := range sc.Wan {
		if w.From == w.To {
			return fmt.Errorf("check: wan link %d: self link %d->%d", i, w.From, w.To)
		}
		if w.MinUS < 0 || w.MaxUS < w.MinUS || w.SpikePct < 0 || w.SpikePct > 100 ||
			w.SpikeUS < 0 || w.KBps < 0 {
			return fmt.Errorf("check: wan link %d: bad profile %+v", i, w)
		}
	}
	if d := sc.Detector; d != nil {
		if d.HeartbeatUS < 1 || d.SuspectUS <= d.HeartbeatUS {
			return fmt.Errorf("check: detector spec needs 0 < heartbeat < suspect, got %+v", *d)
		}
	}
	down := make(map[msg.ProcID]bool)
	for i, st := range sc.Steps {
		switch st.Kind {
		case StepCalls:
			if st.N < 1 {
				return fmt.Errorf("check: step %d: calls step with n=%d", i, st.N)
			}
			if down[st.Client] {
				return fmt.Errorf("check: step %d: calls from down node %d", i, st.Client)
			}
		case StepPartition, StepHeal:
		case StepCrash:
			if down[st.Node] {
				return fmt.Errorf("check: step %d: node %d is already down", i, st.Node)
			}
			down[st.Node] = true
		case StepRecover:
			if !down[st.Node] {
				return fmt.Errorf("check: step %d: node %d is not down", i, st.Node)
			}
			down[st.Node] = false
		case StepReconfigure:
			if st.To == nil {
				return fmt.Errorf("check: step %d: reconfigure without a target", i)
			}
			if _, err := st.To.Config(); err != nil {
				return err
			}
		case StepGray:
			if st.Node == 0 {
				return fmt.Errorf("check: step %d: gray step without a node", i)
			}
			if st.DelayUS < 0 {
				return fmt.Errorf("check: step %d: negative gray delay", i)
			}
		case StepFlap:
			if st.A == st.B {
				return fmt.Errorf("check: step %d: flap of self link %d<->%d", i, st.A, st.B)
			}
			if st.PeriodUS < 2 {
				return fmt.Errorf("check: step %d: flap period %dus too short", i, st.PeriodUS)
			}
			if st.Cycles < 1 {
				return fmt.Errorf("check: step %d: flap with %d cycles", i, st.Cycles)
			}
		default:
			return fmt.Errorf("check: step %d: unknown kind %q", i, st.Kind)
		}
	}
	for n, d := range down {
		if d {
			return fmt.Errorf("check: node %d is left down at scenario end", n)
		}
	}
	return nil
}

// ConfigTimeline returns the configuration active in each trace segment:
// the starting configuration followed by each reconfiguration target.
func (sc Scenario) ConfigTimeline() ([]config.Config, error) {
	cfg, err := sc.Config.Config()
	if err != nil {
		return nil, err
	}
	out := []config.Config{cfg}
	for _, st := range sc.Steps {
		if st.Kind != StepReconfigure {
			continue
		}
		next, err := st.To.Config()
		if err != nil {
			return nil, err
		}
		out = append(out, next)
	}
	return out, nil
}

// Generate samples n scenarios from the configuration space under scripted
// fault templates, deterministically from masterSeed. Templates:
//
//   - faulty-net: message loss/duplication/delay plus a transient partition
//     of the client from one non-leader server (reliable configurations).
//   - crash-recover: a server crash between call batches, with calls issued
//     while it is down, then recovery (oracle membership).
//   - orphan: a no-wait call batch orphaned by a client crash, recovery,
//     and a post-recovery batch racing the orphans.
//   - reconfig: a legal mid-run reconfiguration with a no-wait batch racing
//     the drain.
//   - blackhole: full client partition under bounded termination — every
//     call in the dark window must still terminate (TIMEOUT), then heal.
//
// Adversarial network templates (D19), sampled about a third of the time:
//
//   - wan-asym: asymmetric per-direction latency on every client link, one
//     direction with heavy-tail spikes and one bandwidth-capped.
//   - reorder-storm: bounded reorder storms scrambling windows of
//     consecutive messages on every link.
//   - gray-slow: a member delayed just under the failure detector's
//     suspicion threshold — lanes stall, but it must never end up stuck on
//     the suspect list.
//   - flap: a scripted split/heal cycle train on the client link racing a
//     no-wait batch.
//   - churn: rolling or cascading member crash/recover cycles over a
//     degraded network, biased toward tree dissemination (D17
//     re-parenting).
func Generate(masterSeed int64, n int) []Scenario {
	rng := rand.New(rand.NewSource(masterSeed))
	cfgs := config.Enumerate()
	out := make([]Scenario, 0, n)
	for len(out) < n {
		cfg := cfgs[rng.Intn(len(cfgs))]
		var (
			sc Scenario
			ok bool
		)
		// 15 slots: two per classic template, one per adversarial template,
		// so adversarial profiles make up a third of the sampled stream.
		switch pick := rng.Intn(15); pick {
		case 10:
			sc, ok = wanAsymScenario(cfg, rng)
		case 11:
			sc, ok = reorderStormScenario(cfg, rng)
		case 12:
			sc, ok = graySlowScenario(cfg, rng)
		case 13:
			sc, ok = flapScenario(cfg, rng)
		case 14:
			sc, ok = churnScenario(cfg, rng)
		default:
			switch pick / 2 {
			case 0:
				sc, ok = faultyNetScenario(cfg, rng)
			case 1:
				sc, ok = crashRecoverScenario(cfg, rng)
			case 2:
				sc, ok = orphanScenario(cfg, rng)
			case 3:
				sc, ok = reconfigScenario(cfg, rng)
			case 4:
				sc, ok = blackholeScenario(cfg, rng)
			}
		}
		if !ok {
			continue
		}
		// A slice of every template runs with a tiny flush size, so batch
		// frames form under ordinary traffic (not just explicit pipelines)
		// and the oracles verify the batched call path too. Flush 1 disables
		// coalescing entirely — the other boundary worth sampling.
		switch rng.Intn(3) {
		case 0:
			sc.Config.Flush = 1 + rng.Intn(3) // 1 (no batching), 2, or 3
			for i := range sc.Steps {
				if sc.Steps[i].To != nil {
					sc.Steps[i].To.Flush = sc.Config.Flush
				}
			}
		}
		// A slice of every template runs over tree dissemination (D17) so
		// the oracles verify the relayed call path — in crash-recover that
		// includes re-parenting around a crashed interior member. A tree
		// only engages when the group is larger than the fanout, so these
		// scenarios get a bigger group — except blackhole, whose full-
		// partition semantics assume exactly the 3 servers its steps name
		// (tree(2) still relays at g=3).
		switch rng.Intn(3) {
		case 0:
			k := 2 + rng.Intn(2) // tree(2) or tree(3)
			if sc.Name == "blackhole" {
				k = 2
			} else if sc.Servers < k+3 {
				sc.Servers = k + 3
			}
			sc.Config.Diss, sc.Config.TreeK = "tree", k
			for i := range sc.Steps {
				if sc.Steps[i].To != nil {
					// Reconfigurations keep the dissemination dimension
					// fixed: changing it is drain-class and orthogonal to
					// the transition the template is exercising.
					sc.Steps[i].To.Diss, sc.Steps[i].To.TreeK = "tree", k
				}
			}
		}
		sc.Seed = rng.Int63()
		sc.Name = fmt.Sprintf("%s-%d", sc.Name, len(out))
		out = append(out, sc)
	}
	return out
}

// strictFIFO reports whether a configuration composes FIFO order with
// strict lane initialization (asynchronous-call services, deviation D10):
// every server lane then insists on starting at an incarnation's first
// call, so a lane created mid-stream (member recovery, mid-run attach)
// can never resynchronize.
func strictFIFO(c config.Config) bool {
	return c.Ordering == config.OrderFIFO && c.Call == config.CallAsynchronous
}

// nonLeader picks a server that is not the total-order leader (the highest
// id), so a generated fault never stalls sequencing; without total order
// any server will do.
func nonLeader(cfg config.Config, servers int, rng *rand.Rand) msg.ProcID {
	if cfg.Ordering == config.OrderTotal && servers > 1 {
		return msg.ProcID(1 + rng.Intn(servers-1))
	}
	return msg.ProcID(1 + rng.Intn(servers))
}

func faultyNetScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if !cfg.Reliable {
		// Without reliable communication a lossy run cannot promise
		// completion, so waiting call batches could block the schedule.
		return Scenario{}, false
	}
	victim := nonLeader(cfg, 3, rng)
	return Scenario{
		Name:       "faulty-net",
		Servers:    3,
		Config:     SpecOf(cfg),
		LossPct:    10 + rng.Intn(21),
		DupPct:     rng.Intn(2) * 20,
		MaxDelayUS: rng.Intn(2) * 500,
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 3, Wait: true},
			{Kind: StepPartition, A: ClientID, B: victim},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepHeal},
			{Kind: StepCalls, Client: ClientID, N: 3, Wait: true},
		},
	}, true
}

func crashRecoverScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if cfg.Ordering == config.OrderTotal {
		// Total order is crash-stop for group members: a recovered member
		// rejoins with a fresh entry sequence and would hold newly
		// sequenced calls forever (the paper's §4.4.6 agreement covers
		// leader failure, not member rejoin — DESIGN.md D4). Client
		// crashes under total order are covered by the orphan template.
		return Scenario{}, false
	}
	if strictFIFO(cfg) {
		// Asynchronous FIFO uses strict lane initialization (D10): a
		// recovered member's fresh lane expects the incarnation's first
		// call and would hold the client's post-recovery calls forever.
		// Ordered-group member rejoin without state transfer is a
		// documented gap (EXPERIMENTS.md "Known gaps", DESIGN.md D15).
		return Scenario{}, false
	}
	victim := nonLeader(cfg, 3, rng)
	steps := []Step{
		{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		{Kind: StepCrash, Node: victim},
	}
	// Calls issued while a member is down exercise acceptance against the
	// membership oracle; ordered configurations instead recover first, so
	// the down window cannot stall a sequencing hole.
	if cfg.Ordering == config.OrderNone {
		steps = append(steps, Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true})
	}
	steps = append(steps,
		Step{Kind: StepRecover, Node: victim},
		Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
	)
	return Scenario{
		Name:    "crash-recover",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps:   steps,
	}, true
}

func orphanScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	return Scenario{
		Name:    "orphan",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 3},
			{Kind: StepCrash, Node: ClientID},
			{Kind: StepRecover, Node: ClientID},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

func reconfigScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	// Find a legal transition target among the enumerated configurations,
	// scanning from a random start so the sampled transitions vary.
	cfgs := config.Enumerate()
	start := rng.Intn(len(cfgs))
	var target *config.Config
	for i := range cfgs {
		cand := cfgs[(start+i)%len(cfgs)]
		if SpecOf(cand) == SpecOf(cfg) {
			continue
		}
		if strictFIFO(cand) && !strictFIFO(cfg) {
			// Attaching strict-init FIFO (asynchronous call, D10) to a
			// stream whose client is already past its first call leaves
			// every fresh server lane waiting for calls served under the
			// previous regime — member lanes have no sequence handoff
			// (DESIGN.md D15).
			continue
		}
		if _, err := config.PlanTransition(cfg, cand); err == nil {
			target = &cand
			break
		}
	}
	if target == nil {
		return Scenario{}, false
	}
	to := SpecOf(*target)
	return Scenario{
		Name:    "reconfig",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 2},
			{Kind: StepReconfigure, To: &to},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

func blackholeScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if !cfg.Bounded {
		return Scenario{}, false
	}
	spec := SpecOf(cfg)
	spec.TimeBoundMS = 40
	return Scenario{
		Name:    "blackhole",
		Servers: 3,
		Config:  spec,
		Steps: []Step{
			{Kind: StepPartition, A: ClientID, B: 1},
			{Kind: StepPartition, A: ClientID, B: 2},
			{Kind: StepPartition, A: ClientID, B: 3},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepHeal},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

// wanAsymScenario gives every client<->server link a WAN-like profile with
// independently drawn per-direction latency bounds, then makes one
// direction heavy-tailed (spikes) and one bandwidth-capped. No messages
// are lost — every oracle that tolerates reordering still applies.
func wanAsymScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	us := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }
	wan := make([]WanLink, 0, 6)
	for s := 1; s <= 3; s++ {
		wan = append(wan,
			WanLink{From: ClientID, To: msg.ProcID(s), MinUS: us(50, 200), MaxUS: us(300, 900)},
			WanLink{From: msg.ProcID(s), To: ClientID, MinUS: us(50, 200), MaxUS: us(300, 900)})
	}
	spiked := rng.Intn(len(wan))
	wan[spiked].SpikePct = 20 + rng.Intn(21)
	wan[spiked].SpikeUS = 2000 + rng.Intn(3001)
	capped := rng.Intn(len(wan))
	wan[capped].KBps = 200 + rng.Intn(801)
	return Scenario{
		Name:    "wan-asym",
		Servers: 3,
		Config:  SpecOf(cfg),
		Wan:     wan,
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 3, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 2},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

// reorderStormScenario arms bounded reorder storms on every link: with
// the drawn probability a storm starts and the next window of consecutive
// messages on that link is scrambled within the spread. Nothing is lost
// or duplicated, so completion and acceptance semantics are unweakened;
// order-sensitive oracles gate on Reordering().
func reorderStormScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	return Scenario{
		Name:            "reorder-storm",
		Servers:         3,
		Config:          SpecOf(cfg),
		ReorderPct:      25 + rng.Intn(51),
		ReorderWindow:   3 + rng.Intn(4),
		ReorderSpreadUS: 200 + rng.Intn(601),
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 4, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 3},
			{Kind: StepCalls, Client: ClientID, N: 3, Wait: true},
		},
	}, true
}

// graySlowScenario runs a heartbeat failure detector and makes one member
// gray-slow: every message in and out is delayed by far less than the
// suspicion threshold. The member's lanes stall — calls waiting on it take
// the delay — but heartbeat *gaps* stay at the interval, so the detector
// must never leave it stuck on the suspect list (no-false-suspicion
// oracle, D19).
func graySlowScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	victim := nonLeader(cfg, 3, rng)
	return Scenario{
		Name:    "gray-slow",
		Servers: 3,
		Config:  SpecOf(cfg),
		// Real-clock margins: heartbeats every 3ms, suspicion only after a
		// 60ms silent gap, gray lag 8-15ms. A false suspicion needs the
		// scheduler to stall heartbeats for 20 intervals.
		Detector: &DetectorSpec{HeartbeatUS: 3000, SuspectUS: 60000},
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepGray, Node: victim, DelayUS: 8000 + rng.Intn(7001)},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepGray, Node: victim}, // DelayUS 0: clear
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

// flapScenario splits and heals the client<->victim link in a scripted
// cycle train while a no-wait batch is in flight. Reliable communication
// is required for the same reason as faulty-net: the flap withholds
// messages, and only retransmission guarantees the racing batch drains.
func flapScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if !cfg.Reliable {
		return Scenario{}, false
	}
	victim := nonLeader(cfg, 3, rng)
	return Scenario{
		Name:    "flap",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 3},
			{Kind: StepFlap, A: ClientID, B: victim,
				PeriodUS: 4000 + rng.Intn(6001), Cycles: 2 + rng.Intn(3), Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

// churnScenario layers membership churn — rolling recoveries or cascading
// crashes — over a degraded network (reorder storms or random delay). Two
// thirds of the samples use tree dissemination, so churn exercises D17
// re-parenting with in-flight frames under adversarial delivery.
//
// Only unordered configurations host churn: a message delayed across the
// crash/recover window can arrive at the rejoined member first and open
// its hold-back lane (FIFO/causal, D10 first-arrival init) at a stale
// position — later calls then wait forever for calls the client already
// collected, since member rejoin has no ordering-state transfer (the
// crash-recover gap of DESIGN.md D15, reached through delay instead of
// loss; see D19). crash-recover keeps its ordered coverage because it
// runs over an undegraded network, where nothing straggles across the
// crash window.
func churnScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if cfg.Ordering != config.OrderNone {
		return Scenario{}, false
	}
	sc := Scenario{Name: "churn", Servers: 3, Config: SpecOf(cfg)}
	if rng.Intn(2) == 0 {
		sc.ReorderPct = 15 + rng.Intn(21)
		sc.ReorderWindow = 3
		sc.ReorderSpreadUS = 200 + rng.Intn(401)
	} else {
		sc.MaxDelayUS = 300 + rng.Intn(501)
	}
	if rng.Intn(3) != 0 {
		k := 2 + rng.Intn(2)
		sc.Servers = k + 3
		sc.Config.Diss, sc.Config.TreeK = "tree", k
	}
	v1 := msg.ProcID(1 + rng.Intn(3))
	v2 := v1%3 + 1 // distinct from v1, still in 1..3
	steps := []Step{{Kind: StepCalls, Client: ClientID, N: 2, Wait: true}}
	if rng.Intn(2) == 0 {
		// Rolling: one member down at a time, calls between each cycle.
		for _, v := range []msg.ProcID{v1, v2} {
			steps = append(steps,
				Step{Kind: StepCrash, Node: v},
				Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
				Step{Kind: StepRecover, Node: v},
				Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true})
		}
	} else {
		// Cascading: overlapping down windows, recovered in reverse order.
		steps = append(steps,
			Step{Kind: StepCrash, Node: v1},
			Step{Kind: StepCrash, Node: v2},
			Step{Kind: StepRecover, Node: v2},
			Step{Kind: StepRecover, Node: v1},
			Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true})
	}
	sc.Steps = steps
	return sc, true
}
