package check

import (
	"fmt"
	"math/rand"
	"time"

	"mrpc/internal/config"
	"mrpc/internal/core"
	"mrpc/internal/msg"
)

// ConfigSpec is the JSON-serializable mirror of config.Config used in seed
// artifacts. Collation is excluded (a function does not serialize; every
// enumerated configuration uses the default last-reply-wins collation).
type ConfigSpec struct {
	Call        string `json:"call"` // "sync" | "async"
	Reliable    bool   `json:"reliable"`
	Bounded     bool   `json:"bounded"`
	TimeBoundMS int    `json:"time_bound_ms,omitempty"`
	Unique      bool   `json:"unique"`
	Exec        string `json:"exec"`   // "concurrent" | "serial" | "atomic"
	Order       string `json:"order"`  // "none" | "fifo" | "total" | "causal"
	Orphan      string `json:"orphan"` // "ignore" | "avoid-interference" | "terminate"
	Accept      int    `json:"accept"` // acceptance limit; -1 = all members
	Flush       int    `json:"flush,omitempty"`
	Diss        string `json:"diss,omitempty"`   // "" | "flat" | "tree" (D17)
	TreeK       int    `json:"tree_k,omitempty"` // tree fanout; 0 = default
}

// SpecOf converts a configuration into its serializable spec.
func SpecOf(c config.Config) ConfigSpec {
	s := ConfigSpec{
		Reliable:    c.Reliable,
		Bounded:     c.Bounded,
		TimeBoundMS: int(c.TimeBound / time.Millisecond),
		Unique:      c.Unique,
		Accept:      c.AcceptanceLimit,
		Flush:       c.FlushSize,
	}
	if c.AcceptanceLimit >= core.AcceptAll {
		s.Accept = -1
	}
	switch c.Call {
	case config.CallAsynchronous:
		s.Call = "async"
	default:
		s.Call = "sync"
	}
	switch c.Execution {
	case config.ExecSerial:
		s.Exec = "serial"
	case config.ExecAtomic:
		s.Exec = "atomic"
	default:
		s.Exec = "concurrent"
	}
	switch c.Ordering {
	case config.OrderFIFO:
		s.Order = "fifo"
	case config.OrderTotal:
		s.Order = "total"
	case config.OrderCausal:
		s.Order = "causal"
	default:
		s.Order = "none"
	}
	switch c.Orphan {
	case config.OrphanAvoidInterference:
		s.Orphan = "avoid-interference"
	case config.OrphanTerminate:
		s.Orphan = "terminate"
	default:
		s.Orphan = "ignore"
	}
	if c.Dissemination == config.DissTree {
		s.Diss = "tree"
		s.TreeK = c.TreeFanout
	}
	return s
}

// Config converts the spec back into a validated configuration.
func (s ConfigSpec) Config() (config.Config, error) {
	c := config.Config{
		Reliable:  s.Reliable,
		Bounded:   s.Bounded,
		TimeBound: time.Duration(s.TimeBoundMS) * time.Millisecond,
		Unique:    s.Unique,
		FlushSize: s.Flush,
	}
	switch s.Call {
	case "sync", "":
		c.Call = config.CallSynchronous
	case "async":
		c.Call = config.CallAsynchronous
	default:
		return c, fmt.Errorf("check: unknown call mode %q", s.Call)
	}
	switch s.Exec {
	case "concurrent", "":
		c.Execution = config.ExecConcurrent
	case "serial":
		c.Execution = config.ExecSerial
	case "atomic":
		c.Execution = config.ExecAtomic
	default:
		return c, fmt.Errorf("check: unknown exec mode %q", s.Exec)
	}
	switch s.Order {
	case "none", "":
		c.Ordering = config.OrderNone
	case "fifo":
		c.Ordering = config.OrderFIFO
	case "total":
		c.Ordering = config.OrderTotal
	case "causal":
		c.Ordering = config.OrderCausal
	default:
		return c, fmt.Errorf("check: unknown order mode %q", s.Order)
	}
	switch s.Orphan {
	case "ignore", "":
		c.Orphan = config.OrphanIgnore
	case "avoid-interference":
		c.Orphan = config.OrphanAvoidInterference
	case "terminate":
		c.Orphan = config.OrphanTerminate
	default:
		return c, fmt.Errorf("check: unknown orphan mode %q", s.Orphan)
	}
	switch {
	case s.Accept < 0:
		c.AcceptanceLimit = core.AcceptAll
	case s.Accept == 0:
		c.AcceptanceLimit = 1
	default:
		c.AcceptanceLimit = s.Accept
	}
	switch s.Diss {
	case "", "flat":
		c.Dissemination = config.DissFlat
	case "tree":
		c.Dissemination = config.DissTree
		c.TreeFanout = s.TreeK
	default:
		return c, fmt.Errorf("check: unknown dissemination mode %q", s.Diss)
	}
	return c, c.Validate()
}

// Step kinds. A scenario's fault schedule is step-indexed rather than
// time-indexed: each step completes before the next begins, which is what
// makes a seeded run reproduce the same trace digest.
const (
	StepCalls       = "calls"       // issue N calls from Client (Wait: sequentially, to completion)
	StepPartition   = "partition"   // block the A<->B link
	StepHeal        = "heal"        // unblock every partitioned link
	StepCrash       = "crash"       // crash Node
	StepRecover     = "recover"     // recover Node
	StepReconfigure = "reconfigure" // system-wide reconfiguration to To
)

// Step is one entry of a scenario's schedule.
type Step struct {
	Kind   string      `json:"kind"`
	Client msg.ProcID  `json:"client,omitempty"`
	N      int         `json:"n,omitempty"`
	Wait   bool        `json:"wait,omitempty"`
	A      msg.ProcID  `json:"a,omitempty"`
	B      msg.ProcID  `json:"b,omitempty"`
	Node   msg.ProcID  `json:"node,omitempty"`
	To     *ConfigSpec `json:"to,omitempty"`
}

// Scenario is one reproducible conformance run: a configuration, a network
// fault model, and a step schedule. It is the seed artifact the harness
// writes on a violation and replays with `mrpccheck -repro`.
type Scenario struct {
	Name       string     `json:"name"`
	Seed       int64      `json:"seed"`
	Servers    int        `json:"servers"`
	Config     ConfigSpec `json:"config"`
	LossPct    int        `json:"loss_pct,omitempty"`
	DupPct     int        `json:"dup_pct,omitempty"`
	MaxDelayUS int        `json:"max_delay_us,omitempty"`
	Steps      []Step     `json:"steps"`
}

// ClientID is the process id every generated scenario uses for its client.
const ClientID = msg.ProcID(100)

// Lossy reports whether the scenario's network can withhold messages (loss
// probability or partition steps) — the Profile.Lossy input.
func (sc Scenario) Lossy() bool {
	if sc.LossPct > 0 {
		return true
	}
	for _, st := range sc.Steps {
		if st.Kind == StepPartition {
			return true
		}
	}
	return false
}

// CrossTransportSafe reports whether the scenario's digest is comparable
// across substrates: no simulated faults (loss, duplication, delay) and no
// timing-sensitive steps — only call batches and reconfigurations. A
// fault-free run completes every call OK and executes every call at every
// member, so its digest is fully timing-independent and the simulator and
// a real transport must produce the same one (mrpccheck -transport tcp).
func (sc Scenario) CrossTransportSafe() bool {
	if sc.LossPct > 0 || sc.DupPct > 0 || sc.MaxDelayUS > 0 {
		return false
	}
	for _, st := range sc.Steps {
		if st.Kind != StepCalls && st.Kind != StepReconfigure {
			return false
		}
	}
	return true
}

// Validate checks the scenario's structural sanity: known step kinds,
// crash/recover pairing, call counts, and a convertible configuration. The
// shrinker relies on it to discard broken reductions before running them.
func (sc Scenario) Validate() error {
	if sc.Servers < 1 {
		return fmt.Errorf("check: scenario needs at least one server")
	}
	if _, err := sc.Config.Config(); err != nil {
		return err
	}
	down := make(map[msg.ProcID]bool)
	for i, st := range sc.Steps {
		switch st.Kind {
		case StepCalls:
			if st.N < 1 {
				return fmt.Errorf("check: step %d: calls step with n=%d", i, st.N)
			}
			if down[st.Client] {
				return fmt.Errorf("check: step %d: calls from down node %d", i, st.Client)
			}
		case StepPartition, StepHeal:
		case StepCrash:
			if down[st.Node] {
				return fmt.Errorf("check: step %d: node %d is already down", i, st.Node)
			}
			down[st.Node] = true
		case StepRecover:
			if !down[st.Node] {
				return fmt.Errorf("check: step %d: node %d is not down", i, st.Node)
			}
			down[st.Node] = false
		case StepReconfigure:
			if st.To == nil {
				return fmt.Errorf("check: step %d: reconfigure without a target", i)
			}
			if _, err := st.To.Config(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("check: step %d: unknown kind %q", i, st.Kind)
		}
	}
	for n, d := range down {
		if d {
			return fmt.Errorf("check: node %d is left down at scenario end", n)
		}
	}
	return nil
}

// ConfigTimeline returns the configuration active in each trace segment:
// the starting configuration followed by each reconfiguration target.
func (sc Scenario) ConfigTimeline() ([]config.Config, error) {
	cfg, err := sc.Config.Config()
	if err != nil {
		return nil, err
	}
	out := []config.Config{cfg}
	for _, st := range sc.Steps {
		if st.Kind != StepReconfigure {
			continue
		}
		next, err := st.To.Config()
		if err != nil {
			return nil, err
		}
		out = append(out, next)
	}
	return out, nil
}

// Generate samples n scenarios from the configuration space under scripted
// fault templates, deterministically from masterSeed. Templates:
//
//   - faulty-net: message loss/duplication/delay plus a transient partition
//     of the client from one non-leader server (reliable configurations).
//   - crash-recover: a server crash between call batches, with calls issued
//     while it is down, then recovery (oracle membership).
//   - orphan: a no-wait call batch orphaned by a client crash, recovery,
//     and a post-recovery batch racing the orphans.
//   - reconfig: a legal mid-run reconfiguration with a no-wait batch racing
//     the drain.
//   - blackhole: full client partition under bounded termination — every
//     call in the dark window must still terminate (TIMEOUT), then heal.
func Generate(masterSeed int64, n int) []Scenario {
	rng := rand.New(rand.NewSource(masterSeed))
	cfgs := config.Enumerate()
	out := make([]Scenario, 0, n)
	for len(out) < n {
		cfg := cfgs[rng.Intn(len(cfgs))]
		var (
			sc Scenario
			ok bool
		)
		switch rng.Intn(5) {
		case 0:
			sc, ok = faultyNetScenario(cfg, rng)
		case 1:
			sc, ok = crashRecoverScenario(cfg, rng)
		case 2:
			sc, ok = orphanScenario(cfg, rng)
		case 3:
			sc, ok = reconfigScenario(cfg, rng)
		case 4:
			sc, ok = blackholeScenario(cfg, rng)
		}
		if !ok {
			continue
		}
		// A slice of every template runs with a tiny flush size, so batch
		// frames form under ordinary traffic (not just explicit pipelines)
		// and the oracles verify the batched call path too. Flush 1 disables
		// coalescing entirely — the other boundary worth sampling.
		switch rng.Intn(3) {
		case 0:
			sc.Config.Flush = 1 + rng.Intn(3) // 1 (no batching), 2, or 3
			for i := range sc.Steps {
				if sc.Steps[i].To != nil {
					sc.Steps[i].To.Flush = sc.Config.Flush
				}
			}
		}
		// A slice of every template runs over tree dissemination (D17) so
		// the oracles verify the relayed call path — in crash-recover that
		// includes re-parenting around a crashed interior member. A tree
		// only engages when the group is larger than the fanout, so these
		// scenarios get a bigger group — except blackhole, whose full-
		// partition semantics assume exactly the 3 servers its steps name
		// (tree(2) still relays at g=3).
		switch rng.Intn(3) {
		case 0:
			k := 2 + rng.Intn(2) // tree(2) or tree(3)
			if sc.Name == "blackhole" {
				k = 2
			} else if sc.Servers < k+3 {
				sc.Servers = k + 3
			}
			sc.Config.Diss, sc.Config.TreeK = "tree", k
			for i := range sc.Steps {
				if sc.Steps[i].To != nil {
					// Reconfigurations keep the dissemination dimension
					// fixed: changing it is drain-class and orthogonal to
					// the transition the template is exercising.
					sc.Steps[i].To.Diss, sc.Steps[i].To.TreeK = "tree", k
				}
			}
		}
		sc.Seed = rng.Int63()
		sc.Name = fmt.Sprintf("%s-%d", sc.Name, len(out))
		out = append(out, sc)
	}
	return out
}

// strictFIFO reports whether a configuration composes FIFO order with
// strict lane initialization (asynchronous-call services, deviation D10):
// every server lane then insists on starting at an incarnation's first
// call, so a lane created mid-stream (member recovery, mid-run attach)
// can never resynchronize.
func strictFIFO(c config.Config) bool {
	return c.Ordering == config.OrderFIFO && c.Call == config.CallAsynchronous
}

// nonLeader picks a server that is not the total-order leader (the highest
// id), so a generated fault never stalls sequencing; without total order
// any server will do.
func nonLeader(cfg config.Config, servers int, rng *rand.Rand) msg.ProcID {
	if cfg.Ordering == config.OrderTotal && servers > 1 {
		return msg.ProcID(1 + rng.Intn(servers-1))
	}
	return msg.ProcID(1 + rng.Intn(servers))
}

func faultyNetScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if !cfg.Reliable {
		// Without reliable communication a lossy run cannot promise
		// completion, so waiting call batches could block the schedule.
		return Scenario{}, false
	}
	victim := nonLeader(cfg, 3, rng)
	return Scenario{
		Name:       "faulty-net",
		Servers:    3,
		Config:     SpecOf(cfg),
		LossPct:    10 + rng.Intn(21),
		DupPct:     rng.Intn(2) * 20,
		MaxDelayUS: rng.Intn(2) * 500,
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 3, Wait: true},
			{Kind: StepPartition, A: ClientID, B: victim},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepHeal},
			{Kind: StepCalls, Client: ClientID, N: 3, Wait: true},
		},
	}, true
}

func crashRecoverScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if cfg.Ordering == config.OrderTotal {
		// Total order is crash-stop for group members: a recovered member
		// rejoins with a fresh entry sequence and would hold newly
		// sequenced calls forever (the paper's §4.4.6 agreement covers
		// leader failure, not member rejoin — DESIGN.md D4). Client
		// crashes under total order are covered by the orphan template.
		return Scenario{}, false
	}
	if strictFIFO(cfg) {
		// Asynchronous FIFO uses strict lane initialization (D10): a
		// recovered member's fresh lane expects the incarnation's first
		// call and would hold the client's post-recovery calls forever.
		// Ordered-group member rejoin without state transfer is a
		// documented gap (EXPERIMENTS.md "Known gaps", DESIGN.md D15).
		return Scenario{}, false
	}
	victim := nonLeader(cfg, 3, rng)
	steps := []Step{
		{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		{Kind: StepCrash, Node: victim},
	}
	// Calls issued while a member is down exercise acceptance against the
	// membership oracle; ordered configurations instead recover first, so
	// the down window cannot stall a sequencing hole.
	if cfg.Ordering == config.OrderNone {
		steps = append(steps, Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true})
	}
	steps = append(steps,
		Step{Kind: StepRecover, Node: victim},
		Step{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
	)
	return Scenario{
		Name:    "crash-recover",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps:   steps,
	}, true
}

func orphanScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	return Scenario{
		Name:    "orphan",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 3},
			{Kind: StepCrash, Node: ClientID},
			{Kind: StepRecover, Node: ClientID},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

func reconfigScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	// Find a legal transition target among the enumerated configurations,
	// scanning from a random start so the sampled transitions vary.
	cfgs := config.Enumerate()
	start := rng.Intn(len(cfgs))
	var target *config.Config
	for i := range cfgs {
		cand := cfgs[(start+i)%len(cfgs)]
		if SpecOf(cand) == SpecOf(cfg) {
			continue
		}
		if strictFIFO(cand) && !strictFIFO(cfg) {
			// Attaching strict-init FIFO (asynchronous call, D10) to a
			// stream whose client is already past its first call leaves
			// every fresh server lane waiting for calls served under the
			// previous regime — member lanes have no sequence handoff
			// (DESIGN.md D15).
			continue
		}
		if _, err := config.PlanTransition(cfg, cand); err == nil {
			target = &cand
			break
		}
	}
	if target == nil {
		return Scenario{}, false
	}
	to := SpecOf(*target)
	return Scenario{
		Name:    "reconfig",
		Servers: 3,
		Config:  SpecOf(cfg),
		Steps: []Step{
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepCalls, Client: ClientID, N: 2},
			{Kind: StepReconfigure, To: &to},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}

func blackholeScenario(cfg config.Config, rng *rand.Rand) (Scenario, bool) {
	if !cfg.Bounded {
		return Scenario{}, false
	}
	spec := SpecOf(cfg)
	spec.TimeBoundMS = 40
	return Scenario{
		Name:    "blackhole",
		Servers: 3,
		Config:  spec,
		Steps: []Step{
			{Kind: StepPartition, A: ClientID, B: 1},
			{Kind: StepPartition, A: ClientID, B: 2},
			{Kind: StepPartition, A: ClientID, B: 3},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
			{Kind: StepHeal},
			{Kind: StepCalls, Client: ClientID, N: 2, Wait: true},
		},
	}, true
}
