package check

import (
	"strings"
	"testing"

	"mrpc/internal/config"
	"mrpc/internal/msg"
	"mrpc/internal/trace"
)

// The self-tests below feed each oracle a hand-crafted violating trace and
// assert it rejects it, then a conforming twin and assert it does not — a
// mutation-style check that the checkers themselves have teeth. Traces are
// minimal: only the events the oracle under test reads.

const (
	client = msg.ProcID(100)
	s1     = msg.ProcID(1)
	s2     = msg.ProcID(2)
)

// cid builds a call id with the client incarnation in the upper 32 bits
// (deviation D9), matching what the framework assigns.
func cid(inc msg.Incarnation, n int64) msg.CallID {
	return msg.CallID(int64(inc)<<32 | n)
}

// seqd assigns Seq 1..n in slice order, as trace.Log would.
func seqd(events []trace.Event) []trace.Event {
	for i := range events {
		events[i].Seq = int64(i + 1)
	}
	return events
}

func issued(id msg.CallID, vc msg.VClock) trace.Event {
	return trace.Event{Kind: trace.KCallIssued, Site: client, SiteInc: 1, Client: client, ID: id, VC: vc}
}

func done(id msg.CallID, st msg.Status) trace.Event {
	return trace.Event{Kind: trace.KCallDone, Site: client, SiteInc: 1, Client: client, ID: id, Status: st}
}

func accepted(id msg.CallID, from msg.ProcID) trace.Event {
	return trace.Event{Kind: trace.KReplyAccepted, Site: client, SiteInc: 1, Client: client, ID: id, From: from}
}

func begin(site msg.ProcID, id msg.CallID) trace.Event {
	return trace.Event{Kind: trace.KExecBegin, Site: site, SiteInc: 1, Client: client, ID: id}
}

func end(site msg.ProcID, id msg.CallID) trace.Event {
	return trace.Event{Kind: trace.KExecEnd, Site: site, SiteInc: 1, Client: client, ID: id}
}

func replySent(site msg.ProcID, id msg.CallID) trace.Event {
	return trace.Event{Kind: trace.KReplySent, Site: site, SiteInc: 1, Client: client, ID: id}
}

func orphanKilled(site msg.ProcID, id msg.CallID) trace.Event {
	return trace.Event{Kind: trace.KOrphanKilled, Site: site, SiteInc: 1, Client: client, ID: id}
}

func suspect(observer, who msg.ProcID) trace.Event {
	return trace.Event{Kind: trace.KSuspect, Site: observer, SiteInc: 1, From: who}
}

func suspectClear(observer, who msg.ProcID) trace.Event {
	return trace.Event{Kind: trace.KSuspectClear, Site: observer, SiteInc: 1, From: who}
}

// baseCfg is a valid configuration the cases mutate per property.
func baseCfg(mut func(*config.Config)) config.Config {
	c := config.Config{
		Call:            config.CallSynchronous,
		Reliable:        true,
		Unique:          true,
		Execution:       config.ExecConcurrent,
		Ordering:        config.OrderNone,
		Orphan:          config.OrphanIgnore,
		AcceptanceLimit: 1,
	}
	if mut != nil {
		mut(&c)
	}
	return c
}

func prof(c config.Config) Profile {
	return Profile{Configs: []config.Config{c}, Group: msg.Group{s1, s2}}
}

func oracleByName(t *testing.T, name string) Oracle {
	t.Helper()
	for _, o := range Oracles() {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("no oracle named %q", name)
	return Oracle{}
}

func TestOracleSelfTests(t *testing.T) {
	k1, k2 := cid(1, 1), cid(1, 2)
	cases := []struct {
		oracle     string
		profile    Profile
		violating  []trace.Event
		conforming []trace.Event
		wantDetail string
	}{
		{
			oracle:     "well-formed",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{issued(k1, nil), done(k1, msg.StatusOK), done(k1, msg.StatusOK)},
			conforming: []trace.Event{issued(k1, nil), done(k1, msg.StatusOK)},
			wantDetail: "terminal statuses",
		},
		{
			oracle:     "well-formed",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{end(s1, k1)},
			conforming: []trace.Event{begin(s1, k1), end(s1, k1)},
			wantDetail: "end without begin",
		},
		{
			oracle:     "completion",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{issued(k1, nil)},
			conforming: []trace.Event{issued(k1, nil), done(k1, msg.StatusOK)},
			wantDetail: "never reached a terminal status",
		},
		{
			oracle:     "status-validity",
			profile:    prof(baseCfg(nil)), // no bounded termination configured
			violating:  []trace.Event{issued(k1, nil), done(k1, msg.StatusTimeout)},
			conforming: []trace.Event{issued(k1, nil), done(k1, msg.StatusOK)},
			wantDetail: "no bounded termination",
		},
		{
			oracle:     "status-validity",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{issued(k1, nil), done(k1, msg.StatusAborted)},
			conforming: []trace.Event{issued(k1, nil), done(k1, msg.StatusOK)},
			wantDetail: "aborted without a client crash",
		},
		{
			oracle:     "bounded-termination",
			profile:    prof(baseCfg(func(c *config.Config) { c.Bounded = true; c.TimeBound = 1 })),
			violating:  []trace.Event{issued(k1, nil)},
			conforming: []trace.Event{issued(k1, nil), done(k1, msg.StatusTimeout)},
			wantDetail: "never terminated",
		},
		{
			oracle:  "same-set",
			profile: prof(baseCfg(nil)),
			violating: []trace.Event{
				issued(k1, nil),
				begin(s1, k1), end(s1, k1), // executed at member 1 only
				done(k1, msg.StatusOK),
			},
			conforming: []trace.Event{
				issued(k1, nil),
				begin(s1, k1), end(s1, k1),
				begin(s2, k1), end(s2, k1),
				done(k1, msg.StatusOK),
			},
			wantDetail: "but not at member",
		},
		{
			oracle:     "at-most-once",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{begin(s1, k1), end(s1, k1), begin(s1, k1), end(s1, k1)},
			conforming: []trace.Event{begin(s1, k1), end(s1, k1), begin(s2, k1), end(s2, k1)},
			wantDetail: "more than once",
		},
		{
			oracle:     "serial-exec",
			profile:    prof(baseCfg(func(c *config.Config) { c.Execution = config.ExecSerial })),
			violating:  []trace.Event{begin(s1, k1), begin(s1, k2), end(s1, k2), end(s1, k1)},
			conforming: []trace.Event{begin(s1, k1), end(s1, k1), begin(s1, k2), end(s1, k2)},
			wantDetail: "still executing",
		},
		{
			oracle:     "atomic-delivery",
			profile:    prof(baseCfg(func(c *config.Config) { c.Execution = config.ExecAtomic })),
			violating:  []trace.Event{begin(s1, k1), replySent(s1, k1), end(s1, k1)},
			conforming: []trace.Event{begin(s1, k1), end(s1, k1), replySent(s1, k1)},
			wantDetail: "without a completed execution",
		},
		{
			oracle:     "fifo-order",
			profile:    prof(baseCfg(func(c *config.Config) { c.Ordering = config.OrderFIFO })),
			violating:  []trace.Event{begin(s1, k2), end(s1, k2), begin(s1, k1), end(s1, k1)},
			conforming: []trace.Event{begin(s1, k1), end(s1, k1), begin(s1, k2), end(s1, k2)},
			wantDetail: "FIFO inversion",
		},
		{
			oracle: "total-order",
			profile: prof(baseCfg(func(c *config.Config) {
				c.Ordering = config.OrderTotal
			})),
			violating: []trace.Event{
				begin(s1, k1), end(s1, k1), begin(s1, k2), end(s1, k2),
				begin(s2, k2), end(s2, k2), begin(s2, k1), end(s2, k1),
			},
			conforming: []trace.Event{
				begin(s1, k1), end(s1, k1), begin(s1, k2), end(s1, k2),
				begin(s2, k1), end(s2, k1), begin(s2, k2), end(s2, k2),
			},
			wantDetail: "opposite orders",
		},
		{
			oracle: "causal-order",
			profile: prof(baseCfg(func(c *config.Config) {
				c.Ordering = config.OrderCausal
			})),
			violating: []trace.Event{
				issued(k1, msg.VClock{client: 1}),
				issued(k2, msg.VClock{client: 2}), // k1 happens-before k2
				begin(s1, k2), end(s1, k2),
				begin(s1, k1), end(s1, k1),
			},
			conforming: []trace.Event{
				issued(k1, msg.VClock{client: 1}),
				issued(k2, msg.VClock{client: 2}),
				begin(s1, k1), end(s1, k1),
				begin(s1, k2), end(s1, k2),
			},
			wantDetail: "causally earlier",
		},
		{
			oracle:     "reply-dedup",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{issued(k1, nil), accepted(k1, s1), accepted(k1, s1)},
			conforming: []trace.Event{issued(k1, nil), accepted(k1, s1), accepted(k1, s2)},
			wantDetail: "two replies",
		},
		{
			oracle:     "reply-dedup",
			profile:    prof(baseCfg(nil)),
			violating:  []trace.Event{issued(k1, nil), accepted(k1, msg.ProcID(99))},
			conforming: []trace.Event{issued(k1, nil), accepted(k1, s2)},
			wantDetail: "not a member",
		},
		{
			oracle:     "collation-count",
			profile:    prof(baseCfg(func(c *config.Config) { c.AcceptanceLimit = 2 })),
			violating:  []trace.Event{issued(k1, nil), accepted(k1, s1), done(k1, msg.StatusOK)},
			conforming: []trace.Event{issued(k1, nil), accepted(k1, s1), accepted(k1, s2), done(k1, msg.StatusOK)},
			wantDetail: "threshold",
		},
		{
			oracle: "orphan-interference",
			profile: prof(baseCfg(func(c *config.Config) {
				c.Orphan = config.OrphanAvoidInterference
			})),
			violating: []trace.Event{
				begin(s1, cid(2, 5)), end(s1, cid(2, 5)),
				begin(s1, cid(1, 3)), end(s1, cid(1, 3)), // older incarnation after newer
			},
			conforming: []trace.Event{
				begin(s1, cid(1, 3)), end(s1, cid(1, 3)),
				begin(s1, cid(2, 5)), end(s1, cid(2, 5)),
			},
			wantDetail: "after serving incarnation",
		},
		{
			oracle: "orphan-terminate",
			profile: prof(baseCfg(func(c *config.Config) {
				c.Orphan = config.OrphanTerminate
			})),
			violating:  []trace.Event{orphanKilled(s1, k1), replySent(s1, k1)},
			conforming: []trace.Event{begin(s1, k1), end(s1, k1), replySent(s1, k1)},
			wantDetail: "after killing",
		},
		{
			oracle: "no-false-suspicion",
			profile: func() Profile {
				p := prof(baseCfg(nil))
				p.Gray = []msg.ProcID{s2}
				return p
			}(),
			// s1's detector suspects the gray-slow member s2 and never
			// clears the belief; the conforming twin is transiently wrong
			// but recovers — that is the tolerance asynchronous detectors
			// are granted (D19).
			violating:  []trace.Event{suspect(s1, s2)},
			conforming: []trace.Event{suspect(s1, s2), suspectClear(s1, s2)},
			wantDetail: "stuck suspected",
		},
	}

	for _, tc := range cases {
		t.Run(tc.oracle+"/"+tc.wantDetail, func(t *testing.T) {
			o := oracleByName(t, tc.oracle)
			bad := NewTrace(seqd(tc.violating))
			if o.Applies != nil && !o.Applies(tc.profile, bad) {
				t.Fatalf("oracle %s does not apply to its own violating case", tc.oracle)
			}
			vs := o.Check(tc.profile, bad)
			if len(vs) == 0 {
				t.Fatalf("oracle %s accepted the violating trace", tc.oracle)
			}
			found := false
			for _, v := range vs {
				if v.Oracle != tc.oracle {
					t.Errorf("violation labeled %q, want %q", v.Oracle, tc.oracle)
				}
				if strings.Contains(v.Detail, tc.wantDetail) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no violation mentions %q; got %v", tc.wantDetail, vs)
			}
			good := NewTrace(seqd(tc.conforming))
			if vs := o.Check(tc.profile, good); len(vs) > 0 {
				t.Fatalf("oracle %s rejected the conforming trace: %v", tc.oracle, vs)
			}
		})
	}
}

// TestEveryOracleHasSelfTest pins the acceptance criterion: each oracle in
// the registry appears in the self-test table above.
func TestEveryOracleHasSelfTest(t *testing.T) {
	tested := map[string]bool{
		"well-formed": true, "completion": true, "status-validity": true,
		"bounded-termination": true, "same-set": true, "at-most-once": true,
		"serial-exec": true, "atomic-delivery": true, "fifo-order": true,
		"total-order": true, "causal-order": true, "reply-dedup": true,
		"collation-count": true, "orphan-interference": true, "orphan-terminate": true,
		"no-false-suspicion": true,
	}
	for _, o := range Oracles() {
		if !tested[o.Name] {
			t.Errorf("oracle %q has no violating-trace self-test", o.Name)
		}
	}
}

// TestOracleProperties checks every user-visible micro-protocol property of
// the paper's composition space is covered by at least one oracle.
func TestOracleProperties(t *testing.T) {
	want := []string{
		"RPC Main",
		"Synchronous/Asynchronous Call",
		"Bounded Termination",
		"Reliable Communication",
		"Unique Execution",
		"Serial Execution",
		"Atomic Execution",
		"FIFO Order",
		"Total Order",
		"Causal Order",
		"Acceptance",
		"Acceptance/Collation",
		"Interference Avoidance",
		"Terminate Orphan",
		"Membership (gray failure)",
	}
	have := map[string]bool{}
	for _, o := range Oracles() {
		have[o.Property] = true
	}
	for _, p := range want {
		if !have[p] {
			t.Errorf("no oracle covers property %q", p)
		}
	}
}

// TestEvaluateApplicability checks Evaluate only runs oracles whose property
// the configuration promises: an unordered profile must not flag a trace
// that inverts FIFO order.
func TestEvaluateApplicability(t *testing.T) {
	k1, k2 := cid(1, 1), cid(1, 2)
	events := seqd([]trace.Event{
		issued(k1, nil), issued(k2, nil),
		begin(s1, k2), end(s1, k2), begin(s1, k1), end(s1, k1),
		begin(s2, k2), end(s2, k2), begin(s2, k1), end(s2, k1),
		accepted(k1, s1), accepted(k2, s1),
		done(k1, msg.StatusOK), done(k2, msg.StatusOK),
	})
	p := prof(baseCfg(nil)) // no ordering promised
	if vs := Evaluate(p, NewTrace(events)); len(vs) > 0 {
		t.Fatalf("unordered profile flagged order-free trace: %v", vs)
	}
}

// TestSameSetReorderGate pins the D19 extension of the D15 scoped limit:
// the same-set oracle withdraws from synchronous-FIFO runs under a
// reordering network exactly as it does under a lossy one — first-arrival
// lane initialization (D10) lets a member that hears call 2 first judge
// call 1 already served — while still applying to reordering runs of
// order-free configurations.
func TestSameSetReorderGate(t *testing.T) {
	o := oracleByName(t, "same-set")
	syncFIFO := baseCfg(func(c *config.Config) { c.Ordering = config.OrderFIFO })
	tr := NewTrace(nil)

	p := prof(syncFIFO)
	if !o.Applies(p, tr) {
		t.Fatal("same-set must apply to a clean sync-FIFO run")
	}
	p.Reordering = true
	if o.Applies(p, tr) {
		t.Fatal("same-set must withdraw from sync-FIFO under reordering")
	}
	p = prof(baseCfg(nil))
	p.Reordering = true
	if !o.Applies(p, tr) {
		t.Fatal("same-set must still apply to order-free runs under reordering")
	}
}

// TestNoFalseSuspicionScope pins the oracle's applicability: it demands
// nothing of runs without gray members, and exempts crashy runs (where
// suspicion of the gray member can be legitimate collateral).
func TestNoFalseSuspicionScope(t *testing.T) {
	o := oracleByName(t, "no-false-suspicion")
	p := prof(baseCfg(nil))
	if o.Applies(p, NewTrace(nil)) {
		t.Fatal("oracle applied to a run without gray members")
	}
	p.Gray = []msg.ProcID{s2}
	crashy := NewTrace(seqd([]trace.Event{
		{Kind: trace.KCrash, Site: s1, SiteInc: 1},
		suspect(s1, s2),
	}))
	if o.Applies(p, crashy) {
		t.Fatal("oracle applied to a crashy run")
	}
	// Suspicion of a non-gray member never violates, stuck or not.
	clean := NewTrace(seqd([]trace.Event{suspect(s2, s1)}))
	if !o.Applies(p, clean) {
		t.Fatal("oracle must apply to a crash-free gray run")
	}
	if vs := o.Check(p, clean); len(vs) > 0 {
		t.Fatalf("suspicion of a non-gray member flagged: %v", vs)
	}
}

// TestSegments checks the reconfiguration markers split the trace into
// segments and ConfigAt picks the segment's configuration.
func TestSegments(t *testing.T) {
	k1 := cid(1, 1)
	events := seqd([]trace.Event{
		issued(k1, nil),
		{Kind: trace.KReconfigure, Note: "live"},
		done(k1, msg.StatusOK),
	})
	tr := NewTrace(events)
	if tr.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", tr.Segments())
	}
	if tr.SegmentOf(events[0].Seq) != 0 || tr.SegmentOf(events[2].Seq) != 1 {
		t.Fatal("SegmentOf misplaced events around the marker")
	}
	a := baseCfg(nil)
	b := baseCfg(func(c *config.Config) { c.AcceptanceLimit = 2 })
	p := Profile{Configs: []config.Config{a, b}, Group: msg.Group{s1, s2}}
	if got := p.ConfigAt(tr, events[0].Seq); got.AcceptanceLimit != 1 {
		t.Fatalf("segment 0 config = %+v", got)
	}
	if got := p.ConfigAt(tr, events[2].Seq); got.AcceptanceLimit != 2 {
		t.Fatalf("segment 1 config = %+v", got)
	}
}
