package check

import (
	"strings"
	"testing"

	"mrpc/internal/config"
)

// TestSmokeSample is the go-test entry point for the harness: a small
// deterministic sample of the generated scenario space must run violation-
// free. CI's `mrpccheck -smoke` runs the larger sample.
func TestSmokeSample(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sample skipped in -short mode")
	}
	for _, sc := range Generate(7, 10) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestDigestReproducible pins the -repro contract: the same scenario run
// twice yields the same trace digest.
func TestDigestReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sample skipped in -short mode")
	}
	scs := Generate(11, 5)
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Run(sc)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(sc)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Digest != b.Digest {
				t.Fatalf("digest did not reproduce: %s vs %s", a.Digest, b.Digest)
			}
		})
	}
}

// TestGenerateDeterministic checks scenario sampling itself is a pure
// function of the master seed (names, seeds, and schedules all match).
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 12)
	b := Generate(42, 12)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Seed != b[i].Seed || len(a[i].Steps) != len(b[i].Steps) {
			t.Fatalf("scenario %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestGenerateValid checks every generated scenario passes its own
// validation and carries a convertible configuration.
func TestGenerateValid(t *testing.T) {
	for _, sc := range Generate(3, 40) {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
}

// TestScenarioValidate checks the validator rejects the malformed schedules
// the shrinker can produce.
func TestScenarioValidate(t *testing.T) {
	base := Scenario{
		Name:    "v",
		Servers: 3,
		Config:  SpecOf(config.Config{Call: config.CallSynchronous, Reliable: true, Execution: config.ExecConcurrent, Ordering: config.OrderNone, Orphan: config.OrphanIgnore, AcceptanceLimit: 1}),
	}
	cases := []struct {
		name  string
		steps []Step
		bad   bool
	}{
		{"ok", []Step{{Kind: StepCalls, Client: ClientID, N: 1, Wait: true}}, false},
		{"zero calls", []Step{{Kind: StepCalls, Client: ClientID, N: 0}}, true},
		{"recover without crash", []Step{{Kind: StepRecover, Node: 1}}, true},
		{"double crash", []Step{{Kind: StepCrash, Node: 1}, {Kind: StepCrash, Node: 1}}, true},
		{"left down", []Step{{Kind: StepCrash, Node: 1}}, true},
		{"calls from down client", []Step{
			{Kind: StepCrash, Node: ClientID},
			{Kind: StepCalls, Client: ClientID, N: 1},
			{Kind: StepRecover, Node: ClientID},
		}, true},
		{"unknown kind", []Step{{Kind: "warp"}}, true},
		{"reconfigure without target", []Step{{Kind: StepReconfigure}}, true},
		{"gray and clear", []Step{
			{Kind: StepGray, Node: 2, DelayUS: 10000},
			{Kind: StepCalls, Client: ClientID, N: 1, Wait: true},
			{Kind: StepGray, Node: 2},
		}, false},
		{"gray without node", []Step{{Kind: StepGray, DelayUS: 10000}}, true},
		{"gray negative delay", []Step{{Kind: StepGray, Node: 2, DelayUS: -1}}, true},
		{"flap", []Step{{Kind: StepFlap, A: ClientID, B: 2, PeriodUS: 5000, Cycles: 3}}, false},
		{"flap self link", []Step{{Kind: StepFlap, A: 2, B: 2, PeriodUS: 5000, Cycles: 3}}, true},
		{"flap period too short", []Step{{Kind: StepFlap, A: ClientID, B: 2, PeriodUS: 1, Cycles: 3}}, true},
		{"flap zero cycles", []Step{{Kind: StepFlap, A: ClientID, B: 2, PeriodUS: 5000}}, true},
	}
	for _, tc := range cases {
		sc := base
		sc.Steps = tc.steps
		err := sc.Validate()
		if tc.bad && err == nil {
			t.Errorf("%s: validated", tc.name)
		}
		if !tc.bad && err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}

	ok := base
	ok.Steps = []Step{{Kind: StepCalls, Client: ClientID, N: 1, Wait: true}}

	wanSelf := ok
	wanSelf.Wan = []WanLink{{From: 1, To: 1, MaxUS: 100}}
	if wanSelf.Validate() == nil {
		t.Error("self wan link validated")
	}
	wanBad := ok
	wanBad.Wan = []WanLink{{From: ClientID, To: 1, MinUS: 500, MaxUS: 100}}
	if wanBad.Validate() == nil {
		t.Error("wan link with max < min validated")
	}
	detBad := ok
	detBad.Detector = &DetectorSpec{HeartbeatUS: 5000, SuspectUS: 5000}
	if detBad.Validate() == nil {
		t.Error("detector with suspect <= heartbeat validated")
	}
	reorderBad := ok
	reorderBad.ReorderPct = -5
	if reorderBad.Validate() == nil {
		t.Error("negative reorder probability validated")
	}
}

// TestScenarioPredicates pins the profile-deriving helpers the oracles and
// digest gate on: Lossy covers flaps, Reordering covers storms, delay, and
// WAN jitter/spikes/bandwidth (but not fixed-latency links), and
// GrayUnderThreshold only reports gray members a detector watches.
func TestScenarioPredicates(t *testing.T) {
	base := Scenario{Servers: 3}
	flap := base
	flap.Steps = []Step{{Kind: StepFlap, A: ClientID, B: 1, PeriodUS: 5000, Cycles: 2}}
	if !flap.Lossy() {
		t.Error("flap scenario not Lossy")
	}
	if base.Reordering() {
		t.Error("clean scenario reported Reordering")
	}
	for name, sc := range map[string]Scenario{
		"storm":     {ReorderPct: 10},
		"delay":     {MaxDelayUS: 100},
		"jitter":    {Wan: []WanLink{{From: 1, To: 2, MinUS: 10, MaxUS: 20}}},
		"spikes":    {Wan: []WanLink{{From: 1, To: 2, SpikePct: 5, SpikeUS: 100}}},
		"bandwidth": {Wan: []WanLink{{From: 1, To: 2, KBps: 100}}},
	} {
		if !sc.Reordering() {
			t.Errorf("%s scenario not Reordering", name)
		}
	}
	fixed := Scenario{Wan: []WanLink{{From: 1, To: 2, MinUS: 50, MaxUS: 50}}}
	if fixed.Reordering() {
		t.Error("fixed-latency wan link reported Reordering")
	}

	gray := Scenario{
		Detector: &DetectorSpec{HeartbeatUS: 3000, SuspectUS: 60000},
		Steps: []Step{
			{Kind: StepGray, Node: 2, DelayUS: 10000},  // under threshold
			{Kind: StepGray, Node: 3, DelayUS: 100000}, // over: a real failure
		},
	}
	got := gray.GrayUnderThreshold()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("GrayUnderThreshold = %v, want [2]", got)
	}
	gray.Detector = nil
	if gray.GrayUnderThreshold() != nil {
		t.Error("gray members reported without a detector")
	}
}

// TestGenerateSamplesAdversarial checks the generator gives the D19
// adversarial templates a healthy slice of the sampled stream (two slots
// of fifteen per classic template, one each for the five adversarial
// ones ≈ a third) and that every template actually appears across a
// sweep-sized sample.
func TestGenerateSamplesAdversarial(t *testing.T) {
	templates := []string{"wan-asym", "reorder-storm", "gray-slow", "flap", "churn"}
	isAdversarial := func(name string) string {
		for _, tpl := range templates {
			if strings.HasPrefix(name, tpl) {
				return tpl
			}
		}
		return ""
	}

	smoke := Generate(1, 30) // the default `mrpccheck -smoke` sample
	adv := 0
	for _, sc := range smoke {
		if isAdversarial(sc.Name) != "" {
			adv++
		}
	}
	if adv < 5 || adv > 20 {
		t.Fatalf("adversarial scenarios = %d of %d, want a healthy slice (~1/3)", adv, len(smoke))
	}

	seen := map[string]int{}
	for _, sc := range Generate(2, 150) {
		if tpl := isAdversarial(sc.Name); tpl != "" {
			seen[tpl]++
		}
	}
	for _, tpl := range templates {
		if seen[tpl] == 0 {
			t.Errorf("template %q never sampled in a sweep-sized stream", tpl)
		}
	}
}

// TestSpecRoundTrip checks ConfigSpec survives a round trip for every
// enumerated configuration — including the dissemination dimension (D17) —
// so the seed-artifact serialization is lossless over the sweep space.
func TestSpecRoundTrip(t *testing.T) {
	for _, c := range config.EnumerateWithDissemination() {
		back, err := SpecOf(c).Config()
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if SpecOf(back) != SpecOf(c) {
			t.Fatalf("round trip changed %s into %s", c, back)
		}
	}
}

// TestGenerateSamplesTree checks the generator actually exercises tree
// dissemination: across a smoke-sized sample, some scenarios run over
// tree(2)/tree(3) — among them a crash-recover (the member-crash
// re-parenting path) — and tree scenarios outside blackhole get a group
// larger than the fanout, so the tree engages rather than falling back
// flat.
func TestGenerateSamplesTree(t *testing.T) {
	scs := Generate(1, 30) // the default `mrpccheck -smoke` sample
	trees, crashTrees := 0, 0
	for _, sc := range scs {
		if sc.Config.Diss != "tree" {
			continue
		}
		trees++
		if sc.Config.TreeK < 2 || sc.Config.TreeK > 3 {
			t.Fatalf("%s: tree_k = %d, want 2 or 3", sc.Name, sc.Config.TreeK)
		}
		if sc.Name[:5] != "black" && sc.Servers <= sc.Config.TreeK {
			t.Fatalf("%s: %d servers with tree(%d) never relays", sc.Name, sc.Servers, sc.Config.TreeK)
		}
		if len(sc.Name) >= 5 && sc.Name[:5] == "crash" {
			crashTrees++
		}
	}
	if trees < 5 {
		t.Fatalf("tree scenarios = %d of %d, want a healthy slice (~1/3)", trees, len(scs))
	}
	if crashTrees < 1 {
		t.Fatalf("no crash-recover scenario sampled tree dissemination (re-parenting untested)")
	}
}

// TestShrinkKeepsConformingScenario checks Shrink leaves a violation-free
// scenario untouched (it only minimizes actual violations).
func TestShrinkKeepsConformingScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sample skipped in -short mode")
	}
	sc := Generate(5, 1)[0]
	got, res := Shrink(sc, 10)
	if res == nil || len(res.Violations) > 0 {
		t.Fatalf("sample scenario violated: %+v", res)
	}
	if len(got.Steps) != len(sc.Steps) {
		t.Fatalf("shrink altered a conforming scenario: %+v", got)
	}
}

// TestShrinkHelpers covers the schedule-editing primitives the shrinker
// composes.
func TestShrinkHelpers(t *testing.T) {
	sc := Scenario{Steps: []Step{
		{Kind: StepCalls, N: 2},
		{Kind: StepCrash, Node: 1},
		{Kind: StepHeal},
		{Kind: StepRecover, Node: 1},
	}}
	out := withoutSteps(sc, 0, 2)
	if len(out.Steps) != 2 || out.Steps[0].Kind != StepCrash || out.Steps[1].Kind != StepRecover {
		t.Fatalf("withoutSteps = %+v", out.Steps)
	}
	if j := matchingRecover(sc.Steps, 1); j != 3 {
		t.Fatalf("matchingRecover = %d, want 3", j)
	}
	if j := matchingRecover(sc.Steps[:3], 1); j != -1 {
		t.Fatalf("matchingRecover without recover = %d, want -1", j)
	}
}
