// Package stable provides the stable storage substrate required by the
// Atomic Execution micro-protocol: checkpoint() writes a snapshot of server
// state to storage that survives crashes, and load() restores it.
//
// Substitution note (DESIGN.md §2): the paper assumes a disk; here storage
// is a crash-surviving in-memory store with an optional simulated write
// latency. Atomic Execution depends only on checkpoints outliving the wipe
// of volatile state on crash, which this preserves: a Site crash discards
// the composite protocol and the server's in-memory state but never touches
// the Store.
package stable

import (
	"errors"
	"sync"
	"time"

	"mrpc/internal/clock"
)

// ErrNoCheckpoint is returned by Load when the address has never been
// written (e.g. recovery before the first checkpoint).
var ErrNoCheckpoint = errors.New("stable: no checkpoint at address")

// Addr addresses a checkpoint in stable storage, as returned by Checkpoint.
type Addr int64

// Store is a stable storage device shared by the processes of one simulated
// system. It is safe for concurrent use.
type Store struct {
	clk          clock.Clock
	writeLatency time.Duration

	mu     sync.Mutex
	next   Addr
	blocks map[Addr][]byte
	writes int64
	bytes  int64
}

// NewStore returns a store whose writes take writeLatency of simulated time
// (0 for instantaneous storage).
func NewStore(clk clock.Clock, writeLatency time.Duration) *Store {
	return &Store{
		clk:          clk,
		writeLatency: writeLatency,
		next:         1,
		blocks:       make(map[Addr][]byte),
	}
}

// Checkpoint durably writes state and returns its address (the paper's
// checkpoint() operation). The data is copied; the caller may reuse it.
func (s *Store) Checkpoint(state []byte) Addr {
	if s.writeLatency > 0 {
		s.clk.Sleep(s.writeLatency)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	addr := s.next
	s.next++
	s.blocks[addr] = append([]byte(nil), state...)
	s.writes++
	s.bytes += int64(len(state))
	return addr
}

// Load reads the checkpoint at addr (the paper's load(address)).
func (s *Store) Load(addr Addr) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blocks[addr]
	if !ok {
		return nil, ErrNoCheckpoint
	}
	return append([]byte(nil), b...), nil
}

// Release frees the checkpoint at addr; Atomic Execution calls it for the
// superseded checkpoint after a new one is written (the paper's old/new
// address rotation).
func (s *Store) Release(addr Addr) {
	s.mu.Lock()
	delete(s.blocks, addr)
	s.mu.Unlock()
}

// Writes returns the number of checkpoints written, and BytesWritten the
// total payload volume — the cost metrics for the atomic-execution ablation.
func (s *Store) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// BytesWritten returns the total bytes checkpointed.
func (s *Store) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Log is a crash-surviving checkpoint chain: one base checkpoint address
// plus the addresses of the deltas written since, in order. It backs the
// delta-checkpoint optimization of Atomic Execution (§4.4.5: "storing the
// changes ('deltas') from one checkpoint to the next"). The zero value is
// an empty chain.
type Log struct {
	mu     sync.Mutex
	base   Addr
	hasB   bool
	deltas []Addr
}

// Reset makes base the chain's new full checkpoint and clears the deltas,
// returning the superseded addresses so the caller can release them.
func (l *Log) Reset(base Addr) (released []Addr) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hasB {
		released = append(released, l.base)
	}
	released = append(released, l.deltas...)
	l.base = base
	l.hasB = true
	l.deltas = nil
	return released
}

// Append adds a delta checkpoint to the chain.
func (l *Log) Append(a Addr) {
	l.mu.Lock()
	l.deltas = append(l.deltas, a)
	l.mu.Unlock()
}

// Chain returns the base (if any) and the delta addresses in write order.
func (l *Log) Chain() (base Addr, ok bool, deltas []Addr) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base, l.hasB, append([]Addr(nil), l.deltas...)
}

// DeltaCount returns the number of deltas since the last full checkpoint.
func (l *Log) DeltaCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.deltas)
}

// Cell is a single crash-surviving variable (the paper's "stable address"
// variables old and new in Atomic Execution). The zero value holds no
// address.
type Cell struct {
	mu   sync.Mutex
	addr Addr
	set  bool
}

// Set atomically assigns the cell.
func (c *Cell) Set(a Addr) {
	c.mu.Lock()
	c.addr, c.set = a, true
	c.mu.Unlock()
}

// Get returns the stored address, if any.
func (c *Cell) Get() (Addr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr, c.set
}
