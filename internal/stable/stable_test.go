package stable

import (
	"errors"
	"testing"
	"time"

	"mrpc/internal/clock"
)

func TestCheckpointLoad(t *testing.T) {
	s := NewStore(clock.NewReal(), 0)
	a1 := s.Checkpoint([]byte("state-1"))
	a2 := s.Checkpoint([]byte("state-2"))
	if a1 == a2 {
		t.Fatal("addresses collide")
	}
	got, err := s.Load(a1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state-1" {
		t.Fatalf("loaded %q", got)
	}
}

func TestLoadMissing(t *testing.T) {
	s := NewStore(clock.NewReal(), 0)
	if _, err := s.Load(42); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointCopiesData(t *testing.T) {
	s := NewStore(clock.NewReal(), 0)
	buf := []byte("abc")
	a := s.Checkpoint(buf)
	buf[0] = 'z'
	got, _ := s.Load(a)
	if string(got) != "abc" {
		t.Fatal("checkpoint shares caller's buffer")
	}
	// And Load's result is a copy too.
	got[0] = 'q'
	again, _ := s.Load(a)
	if string(again) != "abc" {
		t.Fatal("Load exposes internal storage")
	}
}

func TestRelease(t *testing.T) {
	s := NewStore(clock.NewReal(), 0)
	a := s.Checkpoint([]byte("x"))
	s.Release(a)
	if _, err := s.Load(a); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("released checkpoint still loadable")
	}
	s.Release(a) // idempotent
}

func TestWriteAccounting(t *testing.T) {
	s := NewStore(clock.NewReal(), 0)
	s.Checkpoint(make([]byte, 10))
	s.Checkpoint(make([]byte, 5))
	if s.Writes() != 2 || s.BytesWritten() != 15 {
		t.Fatalf("writes=%d bytes=%d, want 2/15", s.Writes(), s.BytesWritten())
	}
}

func TestWriteLatencyUsesClock(t *testing.T) {
	clk := clock.NewSim()
	s := NewStore(clk, 5*time.Millisecond)
	done := make(chan Addr, 1)
	go func() { done <- s.Checkpoint([]byte("x")) }()
	select {
	case <-done:
		t.Fatal("checkpoint returned before simulated latency elapsed")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(5 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("checkpoint never completed")
	}
}

func TestLogChain(t *testing.T) {
	var l Log
	if _, ok, _ := l.Chain(); ok {
		t.Fatal("zero log has a base")
	}
	if released := l.Reset(1); len(released) != 0 {
		t.Fatalf("first Reset released %v", released)
	}
	l.Append(2)
	l.Append(3)
	if l.DeltaCount() != 2 {
		t.Fatalf("delta count = %d", l.DeltaCount())
	}
	base, ok, deltas := l.Chain()
	if !ok || base != 1 || len(deltas) != 2 || deltas[0] != 2 || deltas[1] != 3 {
		t.Fatalf("chain = (%v,%v,%v)", base, ok, deltas)
	}
	// Chain snapshot is a copy.
	deltas[0] = 99
	if _, _, again := l.Chain(); again[0] != 2 {
		t.Fatal("Chain aliases internal storage")
	}

	released := l.Reset(10)
	if len(released) != 3 || released[0] != 1 || released[1] != 2 || released[2] != 3 {
		t.Fatalf("Reset released %v, want [1 2 3]", released)
	}
	if l.DeltaCount() != 0 {
		t.Fatal("deltas survive Reset")
	}
	if base, _, _ := l.Chain(); base != 10 {
		t.Fatalf("base = %v", base)
	}
}

func TestCell(t *testing.T) {
	var c Cell
	if _, ok := c.Get(); ok {
		t.Fatal("zero cell holds an address")
	}
	c.Set(7)
	if a, ok := c.Get(); !ok || a != 7 {
		t.Fatalf("cell = (%d,%t), want (7,true)", a, ok)
	}
	c.Set(9)
	if a, _ := c.Get(); a != 9 {
		t.Fatalf("cell = %d after second Set", a)
	}
}
