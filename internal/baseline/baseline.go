// Package baseline implements a conventional, monolithic group RPC with
// fixed semantics — the historical one-system-per-semantics alternative the
// paper argues against. Its semantics are hard-wired to one point in the
// configuration space (synchronous calls, reliable communication,
// exactly-once execution, k-of-n acceptance, last-reply collation, no
// ordering, orphans ignored), with all mechanisms fused into two tight
// loops instead of composed micro-protocols.
//
// Experiment E8 runs this against the equivalently-configured composite
// protocol to measure the cost of configurability.
package baseline

import (
	"sync"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/proc"
	"mrpc/internal/transport"
)

// Handler executes one operation at a baseline server.
type Handler func(op msg.OpID, args []byte) []byte

// Server is a monolithic RPC server with fused exactly-once duplicate
// suppression (seen-call table, retained replies, ACK-based release).
type Server struct {
	id msg.ProcID
	ep transport.Endpoint
	h  Handler

	mu         sync.Mutex
	oldCalls   map[msg.CallKey]bool
	oldResults map[msg.CallKey][]byte
}

// NewServer attaches a baseline server to the transport.
func NewServer(net transport.Transport, id msg.ProcID, h Handler) (*Server, error) {
	s := &Server{
		id:         id,
		h:          h,
		oldCalls:   make(map[msg.CallKey]bool),
		oldResults: make(map[msg.CallKey][]byte),
	}
	ep, err := net.Attach(id, s.handle)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	return s, nil
}

func (s *Server) handle(m *msg.NetMsg) {
	switch m.Type {
	case msg.OpCall:
		key := m.Key()
		s.mu.Lock()
		if res, done := s.oldResults[key]; done {
			s.mu.Unlock()
			s.reply(m, res)
			return
		}
		if s.oldCalls[key] {
			s.mu.Unlock()
			return
		}
		s.oldCalls[key] = true
		s.mu.Unlock()

		res := s.h(m.Op, m.Args)

		s.mu.Lock()
		s.oldResults[key] = res
		s.mu.Unlock()
		s.reply(m, res)

	case msg.OpAck:
		s.mu.Lock()
		delete(s.oldResults, msg.CallKey{Client: m.Client, ID: m.AckID})
		s.mu.Unlock()
	}
}

func (s *Server) reply(call *msg.NetMsg, res []byte) {
	s.ep.Push(call.Sender, &msg.NetMsg{
		Type:   msg.OpReply,
		ID:     call.ID,
		Client: call.Client,
		Op:     call.Op,
		Args:   res,
		Server: call.Server,
		Sender: s.id,
	})
}

type pendingCall struct {
	group   msg.Group
	op      msg.OpID
	args    []byte
	need    int
	replied map[msg.ProcID]bool
	acked   map[msg.ProcID]bool
	result  []byte
	done    chan struct{}
	once    sync.Once
}

// Client is a monolithic RPC client with fused retransmission, reply
// acknowledgement, k-of-n acceptance and last-reply collation.
type Client struct {
	id      msg.ProcID
	ep      transport.Endpoint
	clk     clock.Clock
	retrans time.Duration

	mu      sync.Mutex
	next    msg.CallID
	pending map[msg.CallID]*pendingCall

	loop *proc.Thread
}

// NewClient attaches a baseline client to the transport. retrans is the
// retransmission period.
func NewClient(net transport.Transport, clk clock.Clock, id msg.ProcID, retrans time.Duration) (*Client, error) {
	c := &Client{
		id:      id,
		clk:     clk,
		retrans: retrans,
		next:    1,
		pending: make(map[msg.CallID]*pendingCall),
	}
	ep, err := net.Attach(id, c.handle)
	if err != nil {
		return nil, err
	}
	c.ep = ep
	c.loop = proc.Go(c.retransmitLoop)
	return c, nil
}

// Close stops the client's retransmission loop. Idempotent.
func (c *Client) Close() {
	c.loop.Kill()
	<-c.loop.Done()
}

func (c *Client) handle(m *msg.NetMsg) {
	if m.Type != msg.OpReply {
		return
	}
	// Acknowledge so the server can release the retained reply.
	c.ep.Push(m.Sender, &msg.NetMsg{
		Type:   msg.OpAck,
		Client: c.id,
		Sender: c.id,
		AckID:  m.ID,
	})
	c.mu.Lock()
	pc, ok := c.pending[m.ID]
	if !ok {
		c.mu.Unlock()
		return
	}
	pc.acked[m.Sender] = true
	if pc.replied[m.Sender] {
		c.mu.Unlock()
		return
	}
	pc.replied[m.Sender] = true
	pc.result = m.Args
	pc.need--
	complete := pc.need <= 0
	c.mu.Unlock()
	if complete {
		pc.once.Do(func() { close(pc.done) })
	}
}

func (c *Client) retransmitLoop(th *proc.Thread) {
	for {
		timer := make(chan struct{})
		t := c.clk.AfterFunc(c.retrans, func() { close(timer) })
		select {
		case <-th.Killed():
			t.Stop()
			return
		case <-timer:
		}
		type resend struct {
			to msg.ProcID
			m  *msg.NetMsg
		}
		var out []resend
		c.mu.Lock()
		for id, pc := range c.pending {
			for _, p := range pc.group {
				if pc.acked[p] {
					continue
				}
				out = append(out, resend{to: p, m: &msg.NetMsg{
					Type:   msg.OpCall,
					ID:     id,
					Client: c.id,
					Op:     pc.op,
					Args:   pc.args,
					Server: pc.group,
					Sender: c.id,
				}})
			}
		}
		c.mu.Unlock()
		for _, rs := range out {
			c.ep.Push(rs.to, rs.m)
		}
	}
}

// Call synchronously invokes op on the group, completing once accept
// servers have replied (clamped to the group size); the result is the last
// reply received.
func (c *Client) Call(op msg.OpID, args []byte, group msg.Group, accept int) []byte {
	if accept > len(group) {
		accept = len(group)
	}
	if accept < 1 {
		accept = 1
	}
	pc := &pendingCall{
		group:   group.Clone(),
		op:      op,
		args:    args,
		need:    accept,
		replied: make(map[msg.ProcID]bool, len(group)),
		acked:   make(map[msg.ProcID]bool, len(group)),
		done:    make(chan struct{}),
	}
	c.mu.Lock()
	id := c.next
	c.next++
	c.pending[id] = pc
	c.mu.Unlock()

	c.ep.Multicast(group, &msg.NetMsg{
		Type:   msg.OpCall,
		ID:     id,
		Client: c.id,
		Op:     op,
		Args:   args,
		Server: group,
		Sender: c.id,
	})

	<-pc.done
	c.mu.Lock()
	res := pc.result
	delete(c.pending, id)
	c.mu.Unlock()
	return res
}

// RegistryHandler adapts a stub registry's Pop to a baseline Handler (the
// thread token is nil: baseline servers have no killable thread model).
func RegistryHandler(pop func(th *proc.Thread, op msg.OpID, args []byte) []byte) Handler {
	return func(op msg.OpID, args []byte) []byte { return pop(nil, op, args) }
}
