package baseline

import (
	"sync"
	"testing"
	"time"

	"mrpc/internal/clock"
	"mrpc/internal/msg"
	"mrpc/internal/netsim"
)

func TestBaselineCallPerfectNetwork(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	defer net.Stop()

	if _, err := NewServer(net, 1, func(_ msg.OpID, args []byte) []byte {
		return append([]byte("r:"), args...)
	}); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(net, clk, 100, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got := c.Call(1, []byte("x"), msg.NewGroup(1), 1)
	if string(got) != "r:x" {
		t.Fatalf("reply = %q", got)
	}
}

func TestBaselineGroupAcceptance(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	defer net.Stop()

	group := msg.NewGroup(1, 2, 3)
	for _, id := range group {
		if _, err := NewServer(net, id, func(_ msg.OpID, args []byte) []byte {
			return args
		}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewClient(net, clk, 100, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Acceptance larger than the group is clamped; zero is clamped to 1.
	if got := c.Call(1, []byte("a"), group, 99); string(got) != "a" {
		t.Fatalf("reply = %q", got)
	}
	if got := c.Call(1, []byte("b"), group, 0); string(got) != "b" {
		t.Fatalf("reply = %q", got)
	}
}

func TestBaselineMasksLossViaRetransmission(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{
		Seed: 5, LossProb: 0.3, MinDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond,
	})
	defer net.Stop()

	var mu sync.Mutex
	execs := make(map[string]int)
	if _, err := NewServer(net, 1, func(_ msg.OpID, args []byte) []byte {
		mu.Lock()
		execs[string(args)]++
		mu.Unlock()
		return args
	}); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(net, clk, 100, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	group := msg.NewGroup(1)
	for i := 0; i < 20; i++ {
		payload := []byte{byte(i)}
		if got := c.Call(1, payload, group, 1); string(got) != string(payload) {
			t.Fatalf("call %d: reply %v", i, got)
		}
	}
	// Exactly-once: despite retransmissions, each call executed once.
	mu.Lock()
	defer mu.Unlock()
	for k, n := range execs {
		if n != 1 {
			t.Fatalf("call %q executed %d times", k, n)
		}
	}
	if len(execs) != 20 {
		t.Fatalf("%d distinct calls executed, want 20", len(execs))
	}
}

func TestBaselineClientCloseIdempotent(t *testing.T) {
	clk := clock.NewReal()
	net := netsim.New(clk, netsim.Params{})
	defer net.Stop()
	c, err := NewClient(net, clk, 100, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
}
